// Quickstart: synthesize a combiner for one command and use it to run the
// command data-parallel.
//
//   $ ./build/examples/quickstart
//
// Walks through the core API: build a Command, call synth::synthesize,
// inspect the plausible combiners, then split/map/combine an input.

#include <iostream>

#include "dsl/kway.h"
#include "exec/parallel.h"
#include "exec/splitter.h"
#include "synth/synthesize.h"
#include "text/shellwords.h"
#include "unixcmd/registry.h"

int main() {
  using namespace kq;

  // 1. A black-box command. Built-ins come from the registry; real host
  //    binaries work the same way via procexec::make_external_command.
  const std::string command_line = "wc -l";
  auto argv = text::shell_split(command_line);
  cmd::CommandPtr command = cmd::make_command(*argv);

  // 2. Synthesize its combiner (Algorithm 1).
  synth::SynthesisResult result = synth::synthesize(*command, *argv);
  if (!result.success) {
    std::cerr << "no combiner: " << result.failure_reason << "\n";
    return 1;
  }
  std::cout << "command:   " << command->display_name() << "\n"
            << "space:     " << result.space.total() << " candidates over "
            << result.delims.size() << " delimiter(s)\n"
            << "combiner:  " << result.combiner.to_string() << "\n\n";

  // 3. Run the command data-parallel: split, map, combine.
  std::string input;
  for (int i = 0; i < 100000; ++i) input += "line " + std::to_string(i) + "\n";

  exec::ThreadPool pool(4);
  auto chunks = exec::split_stream(input, 4);
  std::vector<std::string> outputs = exec::map_chunks(*command, chunks, pool);

  dsl::EvalContext ctx{command.get()};
  auto combined = result.combiner.apply_k(outputs, ctx);

  std::cout << "serial   f(x)        = " << command->run(input);
  std::cout << "parallel g(f(x_i)..) = " << *combined;
  std::cout << (*combined == command->run(input) ? "outputs match\n"
                                                 : "MISMATCH\n");
  return 0;
}
