// Domain scenario: synthesizing combiners for *real host binaries* — the
// black-box property that makes KumQuat work for commands it has never
// seen. Runs the synthesizer against /usr/bin/tr, wc, sort through the
// fork/exec substrate and parallelizes them with the synthesized combiner.
//
//   $ ./build/examples/external_tools

#include <iostream>

#include "dsl/kway.h"
#include "exec/parallel.h"
#include "exec/splitter.h"
#include "procexec/external_command.h"
#include "synth/synthesize.h"
#include "text/shellwords.h"

int main() {
  using namespace kq;
  const char* kCommands[] = {"wc -l", "tr a-z A-Z", "sort -n"};

  std::string input;
  for (int i = 2000; i > 0; --i) input += std::to_string(i % 97) + "\n";

  exec::ThreadPool pool(4);
  for (const char* line : kCommands) {
    auto argv = text::shell_split(line);
    if (!procexec::program_exists((*argv)[0])) {
      std::cout << line << ": binary not installed, skipping\n";
      continue;
    }
    cmd::CommandPtr command =
        std::make_shared<procexec::ExternalCommand>(*argv);

    // Synthesis drives the *real process* as a black box: every
    // observation is a fork/exec round trip, like the paper's
    // implementation (which is why its synthesis times are minutes —
    // 39-331 s in Table 10). Keep the search budget minimal for a demo.
    synth::SynthesisConfig config;
    config.max_rounds = 1;
    config.input_search.iterations = 1;
    config.input_search.pairs_per_shape = 1;
    synth::SynthesisResult result = synth::synthesize(*command, *argv,
                                                      config);
    if (!result.success) {
      std::cout << line << ": no combiner (" << result.failure_reason
                << ")\n";
      continue;
    }
    std::cout << line << "\n  combiner: " << result.combiner.to_string()
              << "  (" << result.observation_count << " observations, "
              << result.seconds << " s)\n";

    auto chunks = exec::split_stream(input, 4);
    auto outputs = exec::map_chunks(*command, chunks, pool);
    dsl::EvalContext ctx{command.get()};
    auto combined = result.combiner.apply_k(outputs, ctx);
    std::cout << "  4-way parallel output "
              << (combined && *combined == command->run(input)
                      ? "matches serial run\n"
                      : "MISMATCH\n");
  }
  return 0;
}
