// The paper's §2 motivating scenario as a library user would write it:
// take an existing shell pipeline, compile it into a data-parallel
// pipeline, and run both to compare.
//
//   $ ./build/examples/word_frequency [k]

#include <cstdlib>
#include <iostream>

#include "bench_support/workloads.h"
#include "compile/optimize.h"
#include "compile/plan.h"
#include "exec/executor.h"

int main(int argc, char** argv) {
  using namespace kq;
  int k = argc > 1 ? std::atoi(argv[1]) : 4;

  const std::string script =
      "cat $IN | tr -cs A-Za-z '\\n' | tr A-Z a-z | sort | uniq -c | "
      "sort -rn";
  std::cout << "pipeline: " << script << "\nparallelism: " << k << "\n\n";

  // Parse and compile: one synthesis per unique stage command.
  auto parsed = compile::parse_pipeline(script);
  synth::SynthesisCache cache;
  compile::Plan plan = compile::compile_pipeline(*parsed, cache);
  compile::eliminate_intermediate_combiners(plan);

  for (const auto& stage : plan.stages) {
    std::cout << "  " << stage.parsed.display << "\n    -> "
              << (stage.synthesis && stage.synthesis->success
                      ? stage.synthesis->combiner.to_string()
                      : "no combiner")
              << (stage.parallel ? "" : "  [sequential]")
              << (stage.eliminate ? "  [combiner eliminated]" : "") << "\n";
  }

  // A ~4 MB synthetic Gutenberg-style input.
  vfs::Vfs fs;
  std::string input =
      bench::generate_workload(bench::Workload::kGutenberg, 4 << 20, 1, fs);

  auto stages = compile::lower_plan(plan);
  kq::ExecOptions serial_options;
  serial_options.mode = kq::ExecMode::kSerial;
  kq::ExecResult serial =
      kq::Executor(serial_options).run_collect(stages, input);
  kq::ExecOptions batch_options;
  batch_options.mode = kq::ExecMode::kBatch;
  batch_options.parallelism = k;
  kq::ExecResult parallel =
      kq::Executor(batch_options).run_collect(stages, input);

  std::cout << "\nserial " << serial.seconds << " s, " << k << "-way "
            << parallel.seconds << " s ("
            << serial.seconds / parallel.seconds << "x), outputs "
            << (serial.output == parallel.output ? "match" : "MISMATCH")
            << "\n\ntop five words:\n";
  std::size_t pos = 0;
  for (int i = 0; i < 5 && pos < parallel.output.size(); ++i) {
    std::size_t end = parallel.output.find('\n', pos);
    std::cout << "  " << parallel.output.substr(pos, end - pos) << "\n";
    pos = end + 1;
  }
  return 0;
}
