// Domain scenario: the mass-transit analytics suite (§4, analytics-mts).
// Compiles and runs all four telemetry pipelines over synthetic bus data,
// reporting per-stage plans and end-to-end speedups — the workload the
// paper's COVID-19 case study used.
//
//   $ ./build/examples/transit_analytics [k]

#include <cstdlib>
#include <iostream>

#include "bench_support/catalog.h"
#include "bench_support/harness.h"
#include "bench_support/tables.h"

int main(int argc, char** argv) {
  using namespace kq::bench;
  int k = argc > 1 ? std::atoi(argv[1]) : 4;

  HarnessOptions options;
  options.input_bytes = 2 << 20;
  options.parallelism = {1, k};
  options.measure_original = false;

  kq::synth::SynthesisCache cache;
  kq::vfs::Vfs fs;

  std::cout << "analytics-mts over " << options.input_bytes
            << " bytes of synthetic telemetry, k=" << k << "\n\n";
  for (const Script& script : all_scripts()) {
    if (script.suite != "analytics-mts") continue;
    ScriptReport r = run_script(script, cache, options, fs);
    double u1 = r.unoptimized.at(1);
    double tk = r.optimized.at(k);
    std::cout << script.name << "\n  parallelized " << r.parallelized_cell()
              << ", eliminated " << r.eliminated_cell() << "\n  serial "
              << format_seconds(u1) << " -> optimized "
              << format_seconds(tk) << " " << format_speedup(u1, tk)
              << (r.outputs_match ? "" : "  OUTPUT MISMATCH") << "\n";
  }
  std::cout << "\nEach pipeline keeps every stage parallel (8/8 and 7/7 in "
               "the paper) with three combiners eliminated.\n";
  return 0;
}
