#!/usr/bin/env python3
"""CI trace-smoke validator: structural checks on a --trace-json artifact.

    bench/check_trace_json.py <trace.json> [--min-events N]

Asserts the file is what Perfetto / chrome://tracing will accept:

  - top level is an object with a "traceEvents" list
  - every event has name (str), ph (str), pid (int), tid (int)
  - ph is one of the phases the tracer emits: M (metadata), X (complete
    span), i (instant)
  - X events carry numeric ts >= 0 and dur >= 0
  - i events carry numeric ts >= 0 and scope "s": "t"
  - M events are thread_name/process_name with a string args.name
  - at least --min-events non-metadata events (default 1): a pipeline run
    with tracing on always records source-fill and node spans, so an
    empty trace means the tracer was never threaded into the run

Exit status: 0 valid, 1 structural problem, 2 usage/IO error.
"""

import json
import sys

ALLOWED_PHASES = {"M", "X", "i"}
METADATA_NAMES = {"thread_name", "process_name"}


def main() -> int:
    args = sys.argv[1:]
    min_events = 1
    if "--min-events" in args:
        i = args.index("--min-events")
        try:
            min_events = int(args[i + 1])
        except (IndexError, ValueError):
            print(__doc__, file=sys.stderr)
            return 2
        del args[i:i + 2]
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        with open(args[0]) as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_trace_json: {e}", file=sys.stderr)
        return 2

    problems = []
    events = trace.get("traceEvents") if isinstance(trace, dict) else None
    if not isinstance(events, list):
        print("check_trace_json: no traceEvents list at top level",
              file=sys.stderr)
        return 1

    spans = instants = metadata = 0
    for n, ev in enumerate(events):
        where = f"event {n}"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        name, ph = ev.get("name"), ev.get("ph")
        if not isinstance(name, str) or not name:
            problems.append(f"{where}: missing or empty name")
        if not isinstance(ph, str) or ph not in ALLOWED_PHASES:
            problems.append(f"{where} ({name!r}): bad ph {ph!r}")
            continue
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                problems.append(f"{where} ({name!r}): missing int {key}")
        if ph == "X":
            spans += 1
            for key in ("ts", "dur"):
                v = ev.get(key)
                if not isinstance(v, (int, float)) or v < 0:
                    problems.append(
                        f"{where} ({name!r}): X needs {key} >= 0, got {v!r}")
        elif ph == "i":
            instants += 1
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(
                    f"{where} ({name!r}): i needs ts >= 0, got {ts!r}")
            if ev.get("s") != "t":
                problems.append(
                    f"{where} ({name!r}): i needs thread scope s=t")
        else:
            metadata += 1
            if name not in METADATA_NAMES:
                problems.append(f"{where}: unexpected metadata name {name!r}")
            args_obj = ev.get("args")
            if not (isinstance(args_obj, dict)
                    and isinstance(args_obj.get("name"), str)):
                problems.append(
                    f"{where} ({name!r}): M needs string args.name")

    if spans + instants < min_events:
        problems.append(
            f"only {spans + instants} non-metadata events; expected at least "
            f"{min_events} — was the tracer attached to the run?")

    if problems:
        print("trace-smoke FAILED:", file=sys.stderr)
        for p in problems[:40]:
            print(f"  {p}", file=sys.stderr)
        if len(problems) > 40:
            print(f"  ... and {len(problems) - 40} more", file=sys.stderr)
        return 1
    print(f"trace ok: {spans} spans, {instants} instants, "
          f"{metadata} metadata events")
    return 0


if __name__ == "__main__":
    sys.exit(main())
