// The §2 worked example: the word-frequency pipeline
//   cat $IN | tr -cs A-Za-z '\n' | tr A-Z a-z | sort | uniq -c | sort -rn
// Reports the synthesized combiner per stage, the plan (sequential /
// parallel / eliminated), and serial vs 16-way unoptimized vs optimized
// times (the paper measured 2089 s / 196 s (10.7x) / 146 s (14.4x) on 3 GB).

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace kq::bench;
  HarnessOptions options = standard_options(argc, argv, 1 << 20);
  options.parallelism = {1, 16};

  const Script* wf = find_script("oneliners", "wf.sh");
  if (!wf) return 1;

  std::string input =
      prepare_input(*wf, options.input_bytes, options.seed, bench_fs());
  auto parsed = kq::compile::parse_pipeline(wf->pipelines[0]);
  kq::compile::PlanOptions plan_options;
  plan_options.synthesis = options.synthesis;
  auto plan = kq::compile::compile_pipeline(*parsed, bench_cache(),
                                            plan_options, &bench_fs());
  kq::compile::eliminate_intermediate_combiners(plan);

  std::cout << "Section 2 example: " << wf->pipelines[0] << "\n\n";
  TextTable table({"Stage", "Combiner", "Execution"});
  for (const auto& stage : plan.stages) {
    std::string combiner =
        stage.synthesis && stage.synthesis->success
            ? stage.synthesis->combiner.to_string()
            : "none";
    std::string mode = !stage.parallel
                           ? (stage.sequential_rerun
                                  ? "sequential (rerun does not reduce)"
                                  : "sequential")
                           : (stage.eliminate ? "parallel, combiner "
                                                "eliminated"
                                              : "parallel");
    table.add_row({stage.parsed.display, combiner, mode});
  }
  table.print(std::cout);

  ScriptReport r =
      run_script(*wf, bench_cache(), options, bench_fs());
  double u1 = r.unoptimized.at(1);
  double u16 = r.unoptimized.at(16);
  double t16 = r.optimized.at(16);
  std::printf(
      "\nserial %s | 16-way unoptimized %s %s | optimized %s %s | "
      "outputs %s\n",
      format_seconds(u1).c_str(), format_seconds(u16).c_str(),
      format_speedup(u1, u16).c_str(), format_seconds(t16).c_str(),
      format_speedup(u1, t16).c_str(),
      r.outputs_match ? "match" : "MISMATCH");
  std::cout << "Paper: 2089 s serial, 196 s (10.7x) unoptimized, 146 s "
               "(14.4x) optimized on a 3 GB input and 80 cores.\n";
  return 0;
}
