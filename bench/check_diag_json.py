#!/usr/bin/env python3
"""CI check-lint validator: structural checks on a `kumquat check --json`
document (schema v1, produced by src/check/check.cpp, documented in
docs/CHECKS.md).

    bench/check_diag_json.py <check.json> [--max-errors N] [--min-pipelines N]

Asserts:

  - top level is an object with kumquat_check_version == 1
  - status is one of clean/info/warnings/errors and exit_code is 0/1/2,
    and the two agree (errors <=> 2, warnings <=> 1, clean|info <=> 0)
  - summary carries integer pipelines/stages/errors/warnings/infos and the
    counts re-add from the per-pipeline diagnostics exactly
  - every pipeline entry has name, pipeline, status, a stages list
    (index/display/mode/seq_reason/memory_class/rss_model) and a
    diagnostics list
  - every diagnostic has a KQ-* code, a known severity, a stage span with
    0 <= stage_begin <= stage_end < len(stages), and non-empty message
  - at most --max-errors error-severity diagnostics (default 0: the
    analyzer finding an unrunnable stage in a checked-in catalog is a CI
    failure, not a lint note)
  - at least --min-pipelines pipeline entries (default 1)

Exit status: 0 valid, 1 structural problem or error budget exceeded,
2 usage/IO error.
"""

import json
import sys

STATUSES = {"clean", "info", "warnings", "errors"}
SEVERITIES = {"info", "warning", "error"}
STAGE_KEYS = ("display", "mode", "seq_reason", "memory_class", "rss_model")


def main() -> int:
    args = sys.argv[1:]
    max_errors = 0
    min_pipelines = 1
    for flag, default in (("--max-errors", 0), ("--min-pipelines", 1)):
        if flag in args:
            i = args.index(flag)
            try:
                value = int(args[i + 1])
            except (IndexError, ValueError):
                print(__doc__, file=sys.stderr)
                return 2
            del args[i:i + 2]
            if flag == "--max-errors":
                max_errors = value
            else:
                min_pipelines = value
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        with open(args[0]) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_diag_json: {e}", file=sys.stderr)
        return 2

    problems = []
    if not isinstance(doc, dict) or doc.get("kumquat_check_version") != 1:
        print("check_diag_json: not a kumquat_check_version 1 document",
              file=sys.stderr)
        return 1

    status = doc.get("status")
    exit_code = doc.get("exit_code")
    if status not in STATUSES:
        problems.append(f"bad status {status!r}")
    if exit_code not in (0, 1, 2):
        problems.append(f"bad exit_code {exit_code!r}")
    want_code = {"errors": 2, "warnings": 1}.get(status, 0)
    if exit_code != want_code:
        problems.append(
            f"status {status!r} and exit_code {exit_code!r} disagree")

    summary = doc.get("summary")
    if not isinstance(summary, dict):
        problems.append("missing summary object")
        summary = {}
    for key in ("pipelines", "stages", "errors", "warnings", "infos"):
        if not isinstance(summary.get(key), int):
            problems.append(f"summary.{key} missing or not an int")

    pipelines = doc.get("pipelines")
    if not isinstance(pipelines, list):
        print("check_diag_json: no pipelines list", file=sys.stderr)
        return 1

    counts = {"error": 0, "warning": 0, "info": 0}
    total_stages = 0
    for n, entry in enumerate(pipelines):
        where = f"pipeline {n}"
        if not isinstance(entry, dict):
            problems.append(f"{where}: not an object")
            continue
        name = entry.get("name")
        where = f"pipeline {n} ({name!r})"
        for key in ("name", "pipeline"):
            if not isinstance(entry.get(key), str) or not entry.get(key):
                problems.append(f"{where}: missing {key}")
        if entry.get("status") not in STATUSES:
            problems.append(f"{where}: bad status {entry.get('status')!r}")
        stages = entry.get("stages")
        if not isinstance(stages, list) or not stages:
            problems.append(f"{where}: missing stages list")
            stages = []
        total_stages += len(stages)
        for i, stage in enumerate(stages):
            if not isinstance(stage, dict):
                problems.append(f"{where} stage {i}: not an object")
                continue
            if stage.get("index") != i:
                problems.append(f"{where} stage {i}: index mismatch")
            for key in STAGE_KEYS:
                if not isinstance(stage.get(key), str) or not stage.get(key):
                    problems.append(f"{where} stage {i}: missing {key}")
            if stage.get("mode") not in ("parallel", "sequential"):
                problems.append(
                    f"{where} stage {i}: bad mode {stage.get('mode')!r}")
        diags = entry.get("diagnostics")
        if not isinstance(diags, list):
            problems.append(f"{where}: missing diagnostics list")
            diags = []
        for i, d in enumerate(diags):
            dwhere = f"{where} diagnostic {i}"
            if not isinstance(d, dict):
                problems.append(f"{dwhere}: not an object")
                continue
            code = d.get("code")
            if not isinstance(code, str) or not code.startswith("KQ-"):
                problems.append(f"{dwhere}: bad code {code!r}")
            severity = d.get("severity")
            if severity not in SEVERITIES:
                problems.append(f"{dwhere}: bad severity {severity!r}")
            else:
                counts[severity] += 1
            begin, end = d.get("stage_begin"), d.get("stage_end")
            if (not isinstance(begin, int) or not isinstance(end, int)
                    or not 0 <= begin <= end < max(len(stages), 1)):
                problems.append(
                    f"{dwhere}: bad stage span [{begin!r}, {end!r}]")
            if not isinstance(d.get("message"), str) or not d.get("message"):
                problems.append(f"{dwhere}: missing message")
            if not isinstance(d.get("hint"), str):
                problems.append(f"{dwhere}: missing hint (may be empty)")

    for key, severity in (("errors", "error"), ("warnings", "warning"),
                          ("infos", "info")):
        if summary.get(key) != counts[severity]:
            problems.append(
                f"summary.{key} = {summary.get(key)!r} but counted "
                f"{counts[severity]}")
    if summary.get("pipelines") != len(pipelines):
        problems.append(
            f"summary.pipelines = {summary.get('pipelines')!r} but counted "
            f"{len(pipelines)}")
    if summary.get("stages") != total_stages:
        problems.append(
            f"summary.stages = {summary.get('stages')!r} but counted "
            f"{total_stages}")
    if len(pipelines) < min_pipelines:
        problems.append(
            f"only {len(pipelines)} pipelines; expected at least "
            f"{min_pipelines}")
    if counts["error"] > max_errors:
        problems.append(
            f"{counts['error']} error-severity diagnostics exceed the "
            f"budget of {max_errors}")

    if problems:
        print("check-lint FAILED:", file=sys.stderr)
        for p in problems[:40]:
            print(f"  {p}", file=sys.stderr)
        if len(problems) > 40:
            print(f"  ... and {len(problems) - 40} more", file=sys.stderr)
        return 1
    print(f"check diagnostics ok: {len(pipelines)} pipelines, "
          f"{total_stages} stages, {counts['error']} errors, "
          f"{counts['warning']} warnings, {counts['info']} infos")
    return 0


if __name__ == "__main__":
    sys.exit(main())
