// Table 5: unoptimized parallel execution times u1, u2, u4, u8, u16 with
// speedups, for all 70 scripts.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace kq::bench;
  HarnessOptions options = standard_options(argc, argv, 384 * 1024);
  options.parallelism = {1, 2, 4, 8, 16};
  options.measure_original = false;

  std::cout << "Table 5: unoptimized scaling (u_k)\n\n";
  TextTable table({"Benchmark", "Script", "u1", "u2", "u4", "u8", "u16"});
  for (const Script& script : all_scripts()) {
    ScriptReport r =
        run_script(script, bench_cache(), options, bench_fs());
    double u1 = r.unoptimized.at(1);
    auto cell = [&](int k) {
      double u = r.unoptimized.at(k);
      return format_seconds(u) + " " + format_speedup(u1, u);
    };
    table.add_row({script.suite, script.name, format_seconds(u1), cell(2),
                   cell(4), cell(8), cell(16)});
  }
  table.print(std::cout);
  std::cout << "\nPaper reference medians: u2 1.5x, u4 2.8x, u8 4.2x, "
               "u16 5.3x (80-core server; here speedups saturate at the "
               "machine's core count).\n";
  return 0;
}
