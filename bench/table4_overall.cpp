// Table 4: T_orig, u1, u16, T16 (+ speedups) for all 70 benchmark scripts,
// with the min/mean/median/max footer the paper reports.

#include <algorithm>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace kq::bench;
  HarnessOptions options = standard_options(argc, argv, 384 * 1024);
  options.parallelism = {1, 16};

  std::cout << "Table 4: overall performance, all scripts (input "
            << options.input_bytes << " bytes/script)\n\n";
  TextTable table({"Benchmark", "Script", "T_orig", "u1", "u16", "T16"});
  std::vector<double> u_speedups, t_speedups;
  int mismatches = 0;
  for (const Script& script : all_scripts()) {
    ScriptReport r =
        run_script(script, bench_cache(), options, bench_fs());
    double u1 = r.unoptimized.at(1);
    double u16 = r.unoptimized.at(16);
    double t16 = r.optimized.at(16);
    table.add_row({script.suite, script.name,
                   format_seconds(r.t_orig) + " " +
                       format_speedup(u1, r.t_orig),
                   format_seconds(u1),
                   format_seconds(u16) + " " + format_speedup(u1, u16),
                   format_seconds(t16) + " " + format_speedup(u1, t16)});
    if (u16 > 0) u_speedups.push_back(u1 / u16);
    if (t16 > 0) t_speedups.push_back(u1 / t16);
    if (!r.outputs_match) ++mismatches;
  }
  table.print(std::cout);

  auto stats = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    double mean = 0;
    for (double x : v) mean += x;
    mean /= v.empty() ? 1 : static_cast<double>(v.size());
    return std::tuple{v.front(), mean, v[v.size() / 2], v.back()};
  };
  auto [umin, umean, umed, umax] = stats(u_speedups);
  auto [tmin, tmean, tmed, tmax] = stats(t_speedups);
  std::printf(
      "\nUnoptimized speedup: min %.1fx mean %.1fx median %.1fx max %.1fx\n"
      "Optimized speedup:   min %.1fx mean %.1fx median %.1fx max %.1fx\n",
      umin, umean, umed, umax, tmin, tmean, tmed, tmax);
  std::printf("Output mismatches: %d (must be 0)\n", mismatches);
  std::cout << "Paper reference (80 cores): unoptimized 0.5x-14.9x median "
               "5.3x; optimized 0.6x-26.9x median 7.1x. On this "
               "machine speedups cap near the core count.\n";
  return 0;
}
