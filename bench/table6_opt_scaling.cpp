// Table 6: optimized parallel execution times T1..T16 (intermediate
// combiners eliminated) with speedups relative to u1, for all 70 scripts.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace kq::bench;
  HarnessOptions options = standard_options(argc, argv, 384 * 1024);
  options.parallelism = {1, 2, 4, 8, 16};
  options.measure_original = false;

  std::cout << "Table 6: optimized scaling (T_k)\n\n";
  TextTable table(
      {"Benchmark", "Script", "u1", "T2", "T4", "T8", "T16"});
  for (const Script& script : all_scripts()) {
    ScriptReport r =
        run_script(script, bench_cache(), options, bench_fs());
    double u1 = r.unoptimized.at(1);
    auto cell = [&](int k) {
      double t = r.optimized.at(k);
      return format_seconds(t) + " " + format_speedup(u1, t);
    };
    table.add_row({script.suite, script.name, format_seconds(u1), cell(2),
                   cell(4), cell(8), cell(16)});
  }
  table.print(std::cout);
  std::cout << "\nPaper reference medians: T2 2.0x, T4 3.5x, T8 5.1x, "
               "T16 7.1x.\n";
  return 0;
}
