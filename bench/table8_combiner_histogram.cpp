// Table 8: histogram of synthesized plausible combiners across every
// unique command in the benchmark suite (the paper counts concat 81,
// rerun 30, merge 16, back-'\n'-add 12, plus first/second/fuse/stitch/
// stitch2 variants).

#include <map>

#include "bench_common.h"
#include "text/shellwords.h"
#include "unixcmd/registry.h"

int main(int argc, char** argv) {
  using namespace kq::bench;
  (void)standard_options(argc, argv);
  kq::vfs::Vfs& fs = bench_fs();
  // Fixtures for file-consuming and dictionary commands.
  generate_workload(Workload::kBookList, 1 << 14, 1, fs);
  generate_workload(Workload::kScriptList, 1 << 14, 1, fs);
  install_spell_dictionary(fs, 1);

  std::map<std::string, int> plausible_hist;
  std::map<std::string, int> selected_hist;
  int synthesized = 0, failed = 0;
  for (const std::string& command_line : unique_commands()) {
    auto argv_words = kq::text::shell_split(command_line);
    if (!argv_words) continue;
    std::string error;
    kq::cmd::CommandPtr command =
        kq::cmd::make_command(*argv_words, &error, &fs);
    if (!command) continue;
    const auto& result = bench_cache().get_or_synthesize(
        *command, *argv_words, kq::synth::SynthesisConfig{}, &fs);
    if (!result.success) {
      ++failed;
      continue;
    }
    ++synthesized;
    for (const auto& g : result.plausible) plausible_hist[to_string(g)]++;
    // The paper's counts correspond to the class-preferred selection
    // (rerun only counts when no RecOp/StructOp combiner survived).
    for (const auto& g : result.combiner.combiners())
      selected_hist[to_string(g)]++;
  }

  std::cout << "Table 8: synthesized combiners across " << synthesized
            << " commands (" << failed << " without a combiner)\n";
  auto print_hist = [](const std::map<std::string, int>& hist,
                       const char* title) {
    std::cout << "\n" << title << "\n";
    std::vector<std::pair<int, std::string>> sorted;
    for (const auto& [name, count] : hist) sorted.push_back({count, name});
    std::sort(sorted.rbegin(), sorted.rend());
    TextTable table({"Count", "Combiner"});
    for (const auto& [count, name] : sorted)
      table.add_row({std::to_string(count), name});
    table.print(std::cout);
  };
  print_hist(selected_hist,
             "Selected (class-preferred) combiners -- the paper's counting:");
  print_hist(plausible_hist, "All plausible combiners:");
  std::cout << "\nPaper reference: concat 81, rerun 30 (22 a-b + 8 b-a), "
               "merge(*) 16, (back '\\n' add) 12, plus first/second/fuse/"
               "stitch/stitch2/offset variants; 113 of 121 commands "
               "synthesized.\n";
  return 0;
}
