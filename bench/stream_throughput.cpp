// Streaming vs batch execution: wall-clock throughput and peak RSS on a
// generated input much larger than the streaming runtime's block budget.
//
//   ./build/bench/stream_throughput [--mb=N] [--block-kb=N] [--k=N]
//
// Defaults: 256 MiB input, 1 MiB blocks, k=4 — the input is ~10x the
// streaming block budget (max_inflight · block_size per segment), so a
// bounded-memory runtime shows a peak RSS far below the input size while
// the batch runner's RSS scales with it. CI runs the fast smoke
// configuration (--mb=8) to keep throughput regressions visible per-PR.
//
// The input file is written incrementally (never materialized in memory)
// and streaming runs BEFORE batch: VmHWM is monotonic per process, so the
// streaming high-water mark is untainted by the batch slurp.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <random>
#include <string>

#include "compile/optimize.h"
#include "compile/plan.h"
#include "stream/dataflow.h"

namespace {

using namespace kq;

std::size_t arg_value(int argc, char** argv, const char* name,
                      std::size_t fallback) {
  std::size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      long v = std::atol(argv[i] + len + 1);
      if (v > 0) return static_cast<std::size_t>(v);
    }
  }
  return fallback;
}

// VmHWM (peak resident set) in bytes from /proc/self/status; 0 if absent.
std::size_t peak_rss_bytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0)
      return static_cast<std::size_t>(std::atol(line.c_str() + 6)) * 1024;
  }
  return 0;
}

// Writes `total` bytes of pseudo-random word lines without ever holding
// more than ~1 MiB in memory.
void generate_input(const std::string& path, std::size_t total) {
  static const char* kWords[] = {"apple",  "Banana", "cherry", "date",
                                 "Elder",  "fig",    "grape",  "honey",
                                 "iris",   "Jasmine"};
  std::mt19937_64 rng(42);
  std::ofstream out(path, std::ios::binary);
  std::string buf;
  buf.reserve(1 << 20);
  std::size_t written = 0;
  while (written < total) {
    buf.clear();
    while (buf.size() < (1 << 20) && written + buf.size() < total) {
      int words = 3 + static_cast<int>(rng() % 8);
      for (int w = 0; w < words; ++w) {
        if (w) buf += ' ';
        buf += kWords[rng() % 10];
      }
      buf += '\n';
    }
    out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    written += buf.size();
  }
}

struct Compiled {
  compile::Plan plan;
  std::vector<exec::ExecStage> stages;
};

Compiled compile_one(const std::string& pipeline, synth::SynthesisCache& cache) {
  auto parsed = compile::parse_pipeline(pipeline);
  Compiled out{compile::compile_pipeline(*parsed, cache), {}};
  compile::eliminate_intermediate_combiners(out.plan);
  out.stages = compile::lower_plan(out.plan);
  return out;
}

struct Measurement {
  double seconds = 0;
  std::size_t peak_rss = 0;       // process VmHWM after the run
  std::size_t out_bytes = 0;
  std::size_t peak_inflight = 0;  // streaming only
};

Measurement run_streaming_file(const Compiled& compiled,
                               const std::string& path,
                               exec::ThreadPool& pool,
                               const stream::StreamConfig& config) {
  Measurement m;
  std::ifstream in(path, std::ios::binary);
  std::size_t out_bytes = 0;
  stream::Sink sink = [&out_bytes](std::string_view bytes) {
    out_bytes += bytes.size();  // count, don't retain: the bounded-RSS path
    return true;
  };
  stream::StreamResult r =
      stream::run_streaming(compiled.stages, in, sink, pool, config);
  if (!r.ok) std::cerr << "streaming failed: " << r.error << "\n";
  m.seconds = r.seconds;
  m.out_bytes = out_bytes;
  m.peak_inflight = r.peak_inflight_bytes;
  m.peak_rss = peak_rss_bytes();
  return m;
}

Measurement run_batch_file(const Compiled& compiled, const std::string& path,
                           exec::ThreadPool& pool, int k) {
  Measurement m;
  auto start = std::chrono::steady_clock::now();
  std::ifstream in(path, std::ios::binary);
  std::string input((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  exec::RunResult r = exec::run_pipeline(compiled.stages, input, pool,
                                         {k, /*use_elimination=*/true});
  m.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
  m.out_bytes = r.output.size();
  m.peak_rss = peak_rss_bytes();
  return m;
}

double mib_per_s(std::size_t bytes, double seconds) {
  if (seconds <= 0) return 0;
  return static_cast<double>(bytes) / (1024.0 * 1024.0) / seconds;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t input_mb = arg_value(argc, argv, "--mb", 256);
  std::size_t block_kb = arg_value(argc, argv, "--block-kb", 1024);
  int k = static_cast<int>(arg_value(argc, argv, "--k", 4));
  std::size_t input_bytes = input_mb << 20;

  stream::StreamConfig config;
  config.parallelism = k;
  config.block_size = block_kb << 10;
  std::size_t budget =
      (2 * static_cast<std::size_t>(k) + 2) * config.block_size;

  std::string path = "/tmp/kumquat_stream_bench_" +
                     std::to_string(::getpid()) + ".txt";
  std::cout << "generating " << input_mb << " MiB input at " << path
            << " (block " << block_kb << " KiB, k=" << k
            << ", per-segment block budget " << (budget >> 20) << " MiB, "
            << "input/budget = "
            << static_cast<double>(input_bytes) /
                   static_cast<double>(budget)
            << "x)\n";
  generate_input(path, input_bytes);

  // One concat-combined pipeline (fully streamable, the bounded-memory
  // showcase) and one folding pipeline (count accumulation).
  const char* kPipelines[] = {
      "tr A-Z a-z | grep a | cut -c 1-32",
      "tr A-Z a-z | grep apple | wc -l",
  };

  synth::SynthesisCache cache;
  exec::ThreadPool pool(k);
  bool all_faster = true;
  bool bounded = true;
  // The memory verdict compares RSS growth against the input size, so it is
  // only meaningful once the input dwarfs fixed overheads (thread stacks,
  // synthesis scratch) — the full-size run, not the CI smoke configuration.
  const bool enforce_bounded =
      input_bytes >= 10 * budget && input_mb >= 64;

  // Synthesize every combiner up front so the RSS baseline below excludes
  // synthesis scratch allocations (VmHWM is monotonic).
  std::vector<Compiled> compiled_pipelines;
  for (const char* pipeline : kPipelines)
    compiled_pipelines.push_back(compile_one(pipeline, cache));
  std::size_t baseline_rss = peak_rss_bytes();

  for (std::size_t p = 0; p < compiled_pipelines.size(); ++p) {
    const char* pipeline = kPipelines[p];
    const Compiled& compiled = compiled_pipelines[p];
    std::cout << "\npipeline: " << pipeline << "  ("
              << compiled.plan.parallelized() << "/" << compiled.plan.total()
              << " parallel, " << compiled.plan.eliminated()
              << " eliminated)\n";

    // Streaming first: VmHWM is monotonic, so this measurement must not be
    // polluted by the batch slurp.
    Measurement s = run_streaming_file(compiled, path, pool, config);
    std::cout << "  stream: " << s.seconds << " s, "
              << mib_per_s(input_bytes, s.seconds) << " MiB/s, peak RSS "
              << (s.peak_rss >> 20) << " MiB, peak in-flight "
              << (s.peak_inflight >> 10) << " KiB\n";

    Measurement b = run_batch_file(compiled, path, pool, k);
    std::cout << "  batch:  " << b.seconds << " s, "
              << mib_per_s(input_bytes, b.seconds) << " MiB/s, peak RSS "
              << (b.peak_rss >> 20) << " MiB\n";

    if (s.out_bytes != b.out_bytes)
      std::cout << "  WARNING: output size mismatch (stream " << s.out_bytes
                << " vs batch " << b.out_bytes << ")\n";
    std::cout << "  speedup stream/batch: " << b.seconds / s.seconds
              << "x\n";
    if (s.seconds > b.seconds * 1.05) all_faster = false;

    // The first (concat) pipeline is the bounded-memory witness: its
    // streaming peak RSS must stay far below the input size.
    if (enforce_bounded && p == 0 &&
        s.peak_rss > baseline_rss + input_bytes / 2)
      bounded = false;
  }

  std::cout << "\nverdict: streaming "
            << (all_faster ? "matches or beats" : "SLOWER than")
            << " batch at k=" << k << "; memory "
            << (!enforce_bounded
                    ? "verdict skipped (input too small to dominate fixed "
                      "overheads; run with --mb=256)"
                    : (bounded ? "bounded" : "NOT bounded"))
            << "\n";
  std::remove(path.c_str());
  return (all_faster && bounded) ? 0 : 1;
}
