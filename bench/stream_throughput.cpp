// Streaming vs batch execution: wall-clock throughput and peak RSS on a
// generated input much larger than the streaming runtime's block budget.
//
//   ./build/bench/stream_throughput [--mb=N] [--block-kb=N] [--k=N]
//                                   [--spill-mb=N] [--no-speed-check]
//                                   [--no-memory-check] [--json=PATH]
//                                   [--io-backend=auto|uring|poll]
//
// --io-backend forces the kq::io engine for every streaming scenario
// (default auto: kernel probe). Independent of that, the saturating-read
// scenario always measures poll and io_uring explicitly side by side; its
// io_uring leg records a skipped marker in the --json artifact when the
// kernel probe fails, so the baseline diff reports the gap instead of
// flagging a missing scenario.
//
// --no-memory-check skips the RSS verdicts (the input-relative bound and
// the absolute 16 MiB window gate) for sanitizer builds, where shadow
// memory and redzones make absolute RSS meaningless; the output checks
// still run.
//
// --json writes a machine-readable artifact (one record per streaming
// scenario: wall seconds, RSS growth, bytes read) that CI's bench-gate job
// diffs against the checked-in baselines in bench/baselines/ — see
// bench/check_bench_gate.py.
//
// Defaults: 256 MiB input, 1 MiB blocks, k=4, spill threshold
// max(8 MiB, input/8) — the input is ~10x the streaming block budget
// (max_inflight · block_size per segment), so a bounded-memory runtime
// shows a peak RSS far below the input size while the batch runner's RSS
// scales with it. CI runs the fast smoke configuration (--mb=16) to keep
// throughput regressions visible per-PR; --no-speed-check drops the
// stream-vs-batch timing verdict for sanitizer builds, where timing is
// meaningless but the memory/output checks still matter.
//
// RSS measurement: VmHWM is monotonic per process, so a naive read would
// hand whichever run goes second the first run's peak — and an in-process
// reset (/proc/self/clear_refs) cannot shed pages an earlier run left
// resident in the allocator arenas, skewing later growth readings in both
// directions. Each measurement therefore forks a child: the kernel resets
// the child's VmHWM to its current RSS at fork (dup_mm), the run executes
// with its own thread pool in that clean address space, and the POD
// Measurement ships back over a pipe. The input file is written
// incrementally so generation never inflates the pre-fork footprint.

#include <fcntl.h>
#include <malloc.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <random>
#include <string>
#include <thread>

#include "compile/optimize.h"
#include "compile/plan.h"
#include "exec/executor.h"
#include "io/engine.h"
#include "obs/trace.h"

namespace {

using namespace kq;

std::size_t arg_value(int argc, char** argv, const char* name,
                      std::size_t fallback) {
  std::size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      long v = std::atol(argv[i] + len + 1);
      if (v > 0) return static_cast<std::size_t>(v);
    }
  }
  return fallback;
}

std::string arg_string(int argc, char** argv, const char* name) {
  std::size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=')
      return std::string(argv[i] + len + 1);
  }
  return {};
}

// VmHWM (peak resident set) in bytes from /proc/self/status; 0 if absent.
std::size_t peak_rss_bytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0)
      return static_cast<std::size_t>(std::atol(line.c_str() + 6)) * 1024;
  }
  return 0;
}

// Writes `total` bytes of pseudo-random word lines without ever holding
// more than ~1 MiB in memory.
void generate_input(const std::string& path, std::size_t total) {
  static const char* kWords[] = {"apple",  "Banana", "cherry", "date",
                                 "Elder",  "fig",    "grape",  "honey",
                                 "iris",   "Jasmine"};
  std::mt19937_64 rng(42);
  std::ofstream out(path, std::ios::binary);
  std::string buf;
  buf.reserve(1 << 20);
  std::size_t written = 0;
  while (written < total) {
    buf.clear();
    while (buf.size() < (1 << 20) && written + buf.size() < total) {
      int words = 3 + static_cast<int>(rng() % 8);
      for (int w = 0; w < words; ++w) {
        if (w) buf += ' ';
        buf += kWords[rng() % 10];
      }
      buf += '\n';
    }
    out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    written += buf.size();
  }
}

struct Compiled {
  compile::Plan plan;
  std::vector<exec::ExecStage> stages;
};

Compiled compile_one(const std::string& pipeline, synth::SynthesisCache& cache,
                     bool rewrite = true) {
  auto parsed = compile::parse_pipeline(pipeline);
  Compiled out{compile::compile_pipeline(*parsed, cache), {}};
  // Mirror the CLI's default compile: bounded top-n/top-k rewriting first
  // (no-op for pipelines without a target), then combiner elimination.
  // rewrite = false is the --no-rewrite twin, used as the batch baseline
  // for the rewritten window scenarios.
  if (rewrite) compile::rewrite_bounded_windows(out.plan);
  compile::eliminate_intermediate_combiners(out.plan);
  out.stages = compile::lower_plan(out.plan);
  return out;
}

struct Measurement {  // POD: shipped over a pipe from the forked child
  bool ok = true;                 // run completed; false fails the bench
  double seconds = 0;
  std::size_t rss_growth = 0;     // VmHWM delta over the post-fork baseline
  std::size_t out_bytes = 0;
  std::size_t peak_inflight = 0;  // streaming only
  std::size_t spilled = 0;        // streaming only
  std::size_t bytes_read = 0;     // input bytes the BlockReader delivered
  std::size_t spill_runs = 0;     // sorted runs written across all nodes
};

// Set when any measurement ran in-process because fork was unavailable:
// such runs share the parent's monotonic VmHWM, so their growth readings
// can under-report and the memory verdict must not be trusted.
bool fork_fallback_used = false;

// Runs `body` in a forked child for an isolated VmHWM (see the header
// comment) and returns its Measurement via a pipe. The child builds its own
// thread pool — the parent stays single-threaded, keeping fork safe — and
// _exit()s without running destructors. Falls back to an in-process run if
// fork is unavailable.
template <typename Body>
Measurement run_isolated(Body&& body) {
  int fds[2];
  if (::pipe(fds) != 0) {
    fork_fallback_used = true;
    return body();
  }
  std::cout.flush();
  std::cerr.flush();
  pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    fork_fallback_used = true;
    return body();
  }
  if (pid == 0) {
    ::close(fds[0]);
    Measurement m = body();
    ssize_t wrote = ::write(fds[1], &m, sizeof(m));
    ::_exit(wrote == static_cast<ssize_t>(sizeof(m)) ? 0 : 1);
  }
  ::close(fds[1]);
  Measurement m{};
  std::size_t got = 0;
  while (got < sizeof(m)) {
    ssize_t n = ::read(fds[0], reinterpret_cast<char*>(&m) + got,
                       sizeof(m) - got);
    if (n <= 0) break;
    got += static_cast<std::size_t>(n);
  }
  ::close(fds[0]);
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (got != sizeof(m) || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    // A crashed or failed child must fail the bench, not score 0 seconds.
    std::cerr << "ERROR: measurement child "
              << (got != sizeof(m) ? "died before reporting" : "failed")
              << "\n";
    m.ok = false;
  }
  return m;
}

Measurement run_streaming_file(const Compiled& compiled,
                               const std::string& path, int k,
                               kq::ExecOptions options) {
  Measurement m;
#ifdef __GLIBC__
  // Pin the mmap threshold (the CLI streaming path does the same): glibc's
  // dynamic threshold otherwise promotes the per-chunk block strings into
  // ever-growing arenas, and freed-but-resident arena pages would read as
  // ~150 MiB of RSS growth that is allocator policy, not runtime state.
  mallopt(M_MMAP_THRESHOLD, 128 << 10);
#endif
  std::size_t baseline = peak_rss_bytes();  // == current RSS post-fork
  options.mode = kq::ExecMode::kStream;
  options.parallelism = k;
  kq::Executor executor(options);
  std::ifstream in(path, std::ios::binary);
  std::size_t out_bytes = 0;
  stream::Sink sink = [&out_bytes](std::string_view bytes) {
    out_bytes += bytes.size();  // count, don't retain: the bounded-RSS path
    return true;
  };
  kq::ExecResult r = executor.run(compiled.stages, in, sink);
  if (!r.ok) std::cerr << "streaming failed: " << r.error << "\n";
  m.ok = r.ok;
  std::size_t peak = peak_rss_bytes();
  m.rss_growth = peak > baseline ? peak - baseline : 0;
  m.seconds = r.seconds;
  m.out_bytes = out_bytes;
  m.peak_inflight = r.peak_inflight_bytes;
  m.spilled = r.spilled_bytes;
  m.bytes_read = r.bytes_read;
  for (const stream::NodeMetrics& node : r.nodes)
    m.spill_runs += static_cast<std::size_t>(node.spill_runs);
  return m;
}

// The fd-source twin: drives the run from a real file descriptor so the
// SOURCE read path routes through the configured kq::io engine — the
// istream adapter used by run_streaming_file only exercises the engine on
// spill I/O. This is the harness for the per-backend saturating-read
// scenario.
Measurement run_streaming_fd_file(const Compiled& compiled,
                                  const std::string& path, int k,
                                  kq::ExecOptions options) {
  Measurement m;
#ifdef __GLIBC__
  mallopt(M_MMAP_THRESHOLD, 128 << 10);
#endif
  std::size_t baseline = peak_rss_bytes();
  options.mode = kq::ExecMode::kStream;
  options.parallelism = k;
  kq::Executor executor(options);
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    std::cerr << "open " << path << " failed: " << std::strerror(errno)
              << "\n";
    m.ok = false;
    return m;
  }
  std::size_t out_bytes = 0;
  stream::Sink sink = [&out_bytes](std::string_view bytes) {
    out_bytes += bytes.size();
    return true;
  };
  kq::ExecResult r =
      executor.run(compiled.stages, kq::Source::from_fd(fd), sink);
  ::close(fd);
  if (!r.ok) std::cerr << "streaming failed: " << r.error << "\n";
  m.ok = r.ok;
  std::size_t peak = peak_rss_bytes();
  m.rss_growth = peak > baseline ? peak - baseline : 0;
  m.seconds = r.seconds;
  m.out_bytes = out_bytes;
  m.peak_inflight = r.peak_inflight_bytes;
  m.spilled = r.spilled_bytes;
  m.bytes_read = r.bytes_read;
  for (const stream::NodeMetrics& node : r.nodes)
    m.spill_runs += static_cast<std::size_t>(node.spill_runs);
  return m;
}

// The telemetry-overhead twin: same run with per-stage counters on (and
// optionally a live tracer). The trace is discarded — only the wall-clock
// cost of recording matters here.
Measurement run_streaming_telemetry(const Compiled& compiled,
                                    const std::string& path, int k,
                                    kq::ExecOptions options,
                                    bool with_trace) {
  options.stats = true;
  std::unique_ptr<obs::Tracer> tracer;
  if (with_trace) {
    tracer = std::make_unique<obs::Tracer>();
    options.tracer = tracer.get();
  }
  return run_streaming_file(compiled, path, k, options);
}

Measurement run_batch_file(const Compiled& compiled, const std::string& path,
                           int k) {
  Measurement m;
  std::size_t baseline = peak_rss_bytes();
  kq::ExecOptions options;
  options.mode = kq::ExecMode::kBatch;
  options.parallelism = k;
  kq::Executor executor(options);
  auto start = std::chrono::steady_clock::now();
  std::ifstream in(path, std::ios::binary);
  // The istream source is slurped inside the facade, so the measured wall
  // time still covers reading the file — same span the old inline slurp
  // + run_pipeline timed.
  kq::ExecResult r = executor.run_collect(compiled.stages, in);
  m.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
  std::size_t peak = peak_rss_bytes();
  m.rss_growth = peak > baseline ? peak - baseline : 0;
  m.out_bytes = r.output.size();
  return m;
}

double mib_per_s(std::size_t bytes, double seconds) {
  if (seconds <= 0) return 0;
  return static_cast<double>(bytes) / (1024.0 * 1024.0) / seconds;
}

// One bench-gate scenario: a streaming measurement under a stable name,
// serialized to the --json artifact for CI's regression diff.
struct GateRecord {
  GateRecord() = default;
  GateRecord(std::string name_, Measurement m_)
      : name(std::move(name_)), m(m_) {}
  std::string name;
  Measurement m;
  // Set when the scenario could not run in this environment (e.g. the
  // io_uring kernel probe failed): the artifact carries the reason instead
  // of numbers, and check_bench_gate.py reports it rather than treating
  // the scenario as missing.
  std::string skipped;
};

void write_json(const std::string& path, std::size_t input_mb,
                const std::vector<GateRecord>& records) {
  std::ofstream out(path);
  out << "{\n  \"input_mb\": " << input_mb << ",\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const GateRecord& r = records[i];
    if (!r.skipped.empty()) {
      out << "    {\"name\": \"" << r.name << "\", \"skipped\": \""
          << r.skipped << "\"}" << (i + 1 < records.size() ? "," : "")
          << "\n";
      continue;
    }
    out << "    {\"name\": \"" << r.name << "\", \"wall_s\": " << r.m.seconds
        << ", \"rss_growth_bytes\": " << r.m.rss_growth
        << ", \"bytes_read\": " << r.m.bytes_read
        << ", \"spill_runs\": " << r.m.spill_runs << "}"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

bool has_flag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return true;
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t input_mb = arg_value(argc, argv, "--mb", 256);
  std::size_t block_kb = arg_value(argc, argv, "--block-kb", 1024);
  int k = static_cast<int>(arg_value(argc, argv, "--k", 4));
  std::size_t spill_mb =
      arg_value(argc, argv, "--spill-mb", std::max<std::size_t>(8, input_mb / 8));
  const bool speed_check = !has_flag(argc, argv, "--no-speed-check");
  const bool memory_check = !has_flag(argc, argv, "--no-memory-check");
  const std::string json_path = arg_string(argc, argv, "--json");
  io::Backend io_backend = io::Backend::kAuto;
  {
    std::string value = arg_string(argc, argv, "--io-backend");
    if (!value.empty() && !io::parse_backend(value, &io_backend)) {
      std::cerr << "stream_throughput: --io-backend must be auto, uring, or "
                   "poll (got '"
                << value << "')\n";
      return 2;
    }
  }
  std::vector<GateRecord> gate_records;
  std::size_t input_bytes = input_mb << 20;

  kq::ExecOptions config;
  config.parallelism = k;
  config.block_size = block_kb << 10;
  config.spill_threshold = spill_mb << 20;
  config.io_backend = io_backend;
  std::size_t budget =
      (2 * static_cast<std::size_t>(k) + 2) * config.block_size;

  std::string path = "/tmp/kumquat_stream_bench_" +
                     std::to_string(::getpid()) + ".txt";
  std::cout << "generating " << input_mb << " MiB input at " << path
            << " (block " << block_kb << " KiB, k=" << k << ", spill "
            << spill_mb << " MiB, per-segment block budget " << (budget >> 20)
            << " MiB, input/budget = "
            << static_cast<double>(input_bytes) /
                   static_cast<double>(budget)
            << "x)\n";
  generate_input(path, input_bytes);

  // A concat-combined pipeline (fully streamable), a folding pipeline
  // (count accumulation), and a merge-combined sort pipeline — the
  // spill-to-disk witness: its chunk outputs exceed the threshold and must
  // external-merge from disk instead of accumulating. Gates are explicit
  // per pipeline: disk-bound runs trade wall-clock for bounded memory, so
  // the sort pipeline skips the speed gate; the fold pipeline's tiny
  // output makes its RSS uninteresting either way.
  struct BenchPipeline {
    const char* cmd;
    bool gate_speed;
    bool gate_memory;
  };
  const BenchPipeline kPipelines[] = {
      {"tr A-Z a-z | grep a | cut -c 1-32", true, true},
      {"tr A-Z a-z | grep apple | wc -l", true, false},
      {"tr A-Z a-z | sort", false, true},
  };

  synth::SynthesisCache cache;
  bool all_ok = true;
  bool all_faster = true;
  bool bounded = true;
  // The memory verdict compares per-run RSS growth against the input size,
  // so it is only meaningful once the input dwarfs fixed overheads (thread
  // stacks, allocator slack) — the full-size run, not the CI smoke
  // configuration.
  const bool enforce_bounded =
      memory_check && input_bytes >= 10 * budget && input_mb >= 64;

  std::vector<Compiled> compiled_pipelines;
  for (const BenchPipeline& pipeline : kPipelines)
    compiled_pipelines.push_back(compile_one(pipeline.cmd, cache));

  for (std::size_t p = 0; p < compiled_pipelines.size(); ++p) {
    const BenchPipeline& pipeline = kPipelines[p];
    const Compiled& compiled = compiled_pipelines[p];
    std::cout << "\npipeline: " << pipeline.cmd << "  ("
              << compiled.plan.parallelized() << "/" << compiled.plan.total()
              << " parallel, " << compiled.plan.eliminated()
              << " eliminated)\n";
    Measurement s = run_isolated(
        [&] { return run_streaming_file(compiled, path, k, config); });
    std::cout << "  stream: " << s.seconds << " s, "
              << mib_per_s(input_bytes, s.seconds) << " MiB/s, RSS growth "
              << (s.rss_growth >> 20) << " MiB, peak in-flight "
              << (s.peak_inflight >> 10) << " KiB, spilled "
              << (s.spilled >> 20) << " MiB\n";
    gate_records.push_back({std::string("stream:") + pipeline.cmd, s});

    Measurement b =
        run_isolated([&] { return run_batch_file(compiled, path, k); });
    std::cout << "  batch:  " << b.seconds << " s, "
              << mib_per_s(input_bytes, b.seconds) << " MiB/s, RSS growth "
              << (b.rss_growth >> 20) << " MiB\n";

    if (!s.ok || !b.ok) all_ok = false;
    if (s.out_bytes != b.out_bytes) {
      std::cout << "  ERROR: output size mismatch (stream " << s.out_bytes
                << " vs batch " << b.out_bytes << ")\n";
      all_ok = false;
    }
    std::cout << "  speedup stream/batch: " << b.seconds / s.seconds
              << "x\n";
    if (speed_check && pipeline.gate_speed && s.seconds > b.seconds * 1.05)
      all_faster = false;

    // Bounded-memory witnesses must keep streaming RSS growth well under
    // the input size — pure streaming and spill-backed external merge alike.
    if (enforce_bounded && pipeline.gate_memory &&
        s.rss_growth > input_bytes / 2)
      bounded = false;
  }

  // Per-block stream-chain section: the same streamable chain lowered
  // sequentially runs as one fused kStatelessStream node; its twin with
  // the memory class forced back to kMaterialize is the PR 2 baseline
  // (drain + spool + one whole-stream execution per stage). The chain must
  // be at least as fast and stay block-bounded.
  {
    const char* kChain = "grep a | tr a-z A-Z | cut -c 1-32";
    Compiled seq = compile_one(kChain, cache);
    for (auto& stage : seq.plan.stages) stage.parallel = false;
    seq.stages = compile::lower_plan(seq.plan);
    Compiled mat = seq;
    for (auto& stage : mat.stages) {
      // Re-wrap each command as an opaque lambda: same semantics, no
      // streamability declaration, so the runtime cannot re-upgrade the
      // baseline to a stream chain.
      cmd::CommandPtr orig = stage.command;
      stage.command = cmd::make_lambda_command(
          orig->display_name(),
          [orig](std::string_view in) { return orig->run(in); });
      stage.memory_class = exec::MemoryClass::kMaterialize;
    }

    std::cout << "\nsequential streamable chain: " << kChain << "\n";
    Measurement chain_m = run_isolated(
        [&] { return run_streaming_file(seq, path, 1, config); });
    std::cout << "  stream-chain: " << chain_m.seconds << " s, "
              << mib_per_s(input_bytes, chain_m.seconds)
              << " MiB/s, RSS growth " << (chain_m.rss_growth >> 20)
              << " MiB\n";
    Measurement mat_m = run_isolated(
        [&] { return run_streaming_file(mat, path, 1, config); });
    std::cout << "  materialize:  " << mat_m.seconds << " s, "
              << mib_per_s(input_bytes, mat_m.seconds)
              << " MiB/s, RSS growth " << (mat_m.rss_growth >> 20)
              << " MiB, spilled " << (mat_m.spilled >> 20) << " MiB\n"
              << "  speedup chain/materialize: "
              << mat_m.seconds / chain_m.seconds << "x\n";
    if (!chain_m.ok || !mat_m.ok) all_ok = false;
    if (chain_m.out_bytes != mat_m.out_bytes) {
      std::cout << "  ERROR: output size mismatch (chain "
                << chain_m.out_bytes << " vs materialize " << mat_m.out_bytes
                << ")\n";
      all_ok = false;
    }
    if (speed_check && chain_m.seconds > mat_m.seconds * 1.05)
      all_faster = false;
    if (enforce_bounded && chain_m.rss_growth > input_bytes / 2)
      bounded = false;
    gate_records.push_back({std::string("chain:") + kChain, chain_m});
  }

  // Window-bounded streaming: tail -n N holds a ring of N records, uniq one
  // run, wc a few counters — lowered sequentially these run as
  // kWindowStream nodes, so RSS growth must stay O(MiB) regardless of input
  // size (the pre-window runtime materialized each stage's whole input:
  // O(input) RSS). The rewritten top-n/top-k scenarios ride the same gate:
  // `sort | head -n 10` fuses into a 10-record window (the unrewritten
  // plan external-merge-sorts the whole input) and `uniq -c | sort -rn |
  // head -n 5` into one run + 5 counted lines. The gate is absolute —
  // under 16 MiB of growth — and applies at smoke size already, since the
  // window does not scale with the input.
  bool window_bounded = true;
  {
    const char* kWindowPipelines[] = {"tail -n 10", "uniq | wc -l",
                                      "sort | head -n 10",
                                      "uniq -c | sort -rn | head -n 5"};
    for (const char* wcmd : kWindowPipelines) {
      Compiled win = compile_one(wcmd, cache);
      for (auto& stage : win.plan.stages) stage.parallel = false;
      win.stages = compile::lower_plan(win.plan);
      bool windowed = false;
      for (const auto& stage : win.stages)
        if (stage.memory_class == exec::MemoryClass::kWindowStream)
          windowed = true;
      std::cout << "\nwindow pipeline: " << wcmd
                << (windowed ? "" : "  (ERROR: not window-lowered)") << "\n";
      if (!windowed) all_ok = false;

      // Sequential lowering runs at k=1: size the channel/pool budgets for
      // one worker (a k=4 config would give these single-threaded nodes a
      // 10-block channel budget and mask the window's own footprint) —
      // run_streaming_file resolves parallelism from its k argument.
      Measurement w = run_isolated(
          [&] { return run_streaming_file(win, path, 1, config); });
      std::cout << "  window-stream: " << w.seconds << " s, "
                << mib_per_s(input_bytes, w.seconds) << " MiB/s, RSS growth "
                << (w.rss_growth >> 20) << " MiB (gate < 16 MiB)\n";
      // The batch twin compiles with the rewrite SKIPPED: it measures the
      // original multi-stage plan (for sort|head, a full in-memory sort),
      // and its output doubles as a cross-plan identity witness for the
      // rewritten window node at bench scale.
      Compiled base = compile_one(wcmd, cache, /*rewrite=*/false);
      Measurement b =
          run_isolated([&] { return run_batch_file(base, path, 1); });
      std::cout << "  batch:         " << b.seconds << " s, RSS growth "
                << (b.rss_growth >> 20) << " MiB\n";
      if (!w.ok || !b.ok) all_ok = false;
      if (w.out_bytes != b.out_bytes) {
        std::cout << "  ERROR: output size mismatch (window " << w.out_bytes
                  << " vs batch " << b.out_bytes << ")\n";
        all_ok = false;
      }
      if (memory_check && !fork_fallback_used &&
          w.rss_growth > (std::size_t(16) << 20)) {
        std::cout << "  ERROR: window RSS growth exceeds 16 MiB — the "
                     "window is not bounded\n";
        window_bounded = false;
      }
      gate_records.push_back({std::string("window:") + wcmd, w});
    }
  }

  // Telemetry overhead: the same fully-streamable pipeline with telemetry
  // off, with per-stage counters, and with a live tracer. The disabled
  // path's instrumentation is one branch per block, so counters-on must
  // stay within 2% of off (plus a small absolute floor that absorbs
  // smoke-size scheduling noise); the full-trace run is reported but not
  // gated — recording spans has a real cost by design, the contract is
  // about what the *disabled* path pays.
  bool telemetry_cheap = true;
  {
    const Compiled& compiled = compiled_pipelines[0];
    std::cout << "\ntelemetry overhead: " << kPipelines[0].cmd << "\n";
    Measurement off = run_isolated(
        [&] { return run_streaming_file(compiled, path, k, config); });
    Measurement counted = run_isolated([&] {
      return run_streaming_telemetry(compiled, path, k, config, false);
    });
    Measurement traced = run_isolated([&] {
      return run_streaming_telemetry(compiled, path, k, config, true);
    });
    std::cout << "  off:      " << off.seconds << " s\n"
              << "  counters: " << counted.seconds << " s ("
              << (off.seconds > 0 ? counted.seconds / off.seconds : 0)
              << "x)\n"
              << "  traced:   " << traced.seconds << " s ("
              << (off.seconds > 0 ? traced.seconds / off.seconds : 0)
              << "x)\n";
    if (!off.ok || !counted.ok || !traced.ok) all_ok = false;
    if (off.out_bytes != counted.out_bytes ||
        off.out_bytes != traced.out_bytes) {
      std::cout << "  ERROR: telemetry changed the output ("
                << off.out_bytes << "/" << counted.out_bytes << "/"
                << traced.out_bytes << " bytes)\n";
      all_ok = false;
    }
    if (speed_check && counted.seconds > off.seconds * 1.02 + 0.1) {
      std::cout << "  ERROR: stats counters cost more than 2% wall "
                   "overhead\n";
      telemetry_cheap = false;
    }
  }

  // Sharded scaling: the fully-streamable pipeline again, k=1 vs k=4, both
  // through the sharded runtime (every stage is shardable, so the parallel
  // segment runs per-shard stream sub-chains into the combining tree).
  // Gates — k=4 at least 2.5x faster than k=1 and RSS growth under 4x the
  // k=1 growth — are enforced only at full input size on a machine with
  // >= 8 hardware threads; the smoke configuration records the numbers for
  // CI's baseline diff without a verdict.
  bool shard_scaling_ok = true;
  {
    const Compiled& compiled = compiled_pipelines[0];
    std::cout << "\nsharded scaling: " << kPipelines[0].cmd << "\n";
    Measurement one = run_isolated(
        [&] { return run_streaming_file(compiled, path, 1, config); });
    Measurement four = run_isolated(
        [&] { return run_streaming_file(compiled, path, 4, config); });
    std::cout << "  k=1: " << one.seconds << " s, RSS growth "
              << (one.rss_growth >> 20) << " MiB\n"
              << "  k=4: " << four.seconds << " s, RSS growth "
              << (four.rss_growth >> 20) << " MiB\n"
              << "  speedup k=4/k=1: "
              << (four.seconds > 0 ? one.seconds / four.seconds : 0)
              << "x (gate >= 2.5x at full size)\n";
    if (!one.ok || !four.ok) all_ok = false;
    if (one.out_bytes != four.out_bytes) {
      std::cout << "  ERROR: output size mismatch (k=1 " << one.out_bytes
                << " vs k=4 " << four.out_bytes << ")\n";
      all_ok = false;
    }
    const bool enforce_scaling =
        speed_check && input_mb >= 64 &&
        std::thread::hardware_concurrency() >= 8 && !fork_fallback_used;
    if (enforce_scaling && four.seconds * 2.5 > one.seconds) {
      std::cout << "  ERROR: sharded k=4 is under 2.5x over k=1\n";
      shard_scaling_ok = false;
    }
    // The RSS comparison needs a floor: at smoke sizes both growths are a
    // few MiB of fixed overhead and the ratio is noise.
    std::size_t rss_floor = std::max(one.rss_growth, std::size_t(8) << 20);
    if (enforce_bounded && memory_check && four.rss_growth > 4 * rss_floor) {
      std::cout << "  ERROR: sharded k=4 RSS growth exceeds 4x the k=1 "
                   "growth\n";
      shard_scaling_ok = false;
    }
    gate_records.push_back(
        {std::string("shard-k1:") + kPipelines[0].cmd, one});
    gate_records.push_back(
        {std::string("shard-k4:") + kPipelines[0].cmd, four});
  }

  // Prefix early-exit: head -n 10 must cancel the upstream reader after
  // O(blocks), not drain the input — a bytes-read budget, not a timing.
  {
    Compiled head = compile_one("head -n 10", cache);
    Measurement h = run_isolated(
        [&] { return run_streaming_file(head, path, k, config); });
    std::size_t read_budget = 4 * config.block_size + (1 << 20);
    std::cout << "\nearly exit: head -n 10 read " << (h.bytes_read >> 10)
              << " KiB of " << (input_bytes >> 20) << " MiB in " << h.seconds
              << " s (budget " << (read_budget >> 10) << " KiB)\n";
    if (!h.ok) all_ok = false;
    if (h.bytes_read > read_budget) {
      std::cout << "  ERROR: early exit read past the budget — upstream "
                   "cancellation is not propagating\n";
      all_ok = false;
    }
    gate_records.push_back({"early-exit:head -n 10", h});
  }

  // Saturating read: the folding pipeline driven from a real file
  // descriptor, once per I/O backend. The fold's output is tiny and its
  // per-record work is cheap, so the run is read-dominated — exactly where
  // a submission-batched backend has to show up. The gate (full size only)
  // requires the io_uring leg to match or beat poll on wall clock at
  // equal-or-lower RSS growth modulo the fixed ring overhead; at smoke
  // sizes both legs are still recorded for CI's baseline diff.
  bool io_backend_ok = true;
  {
    const Compiled& compiled = compiled_pipelines[1];
    std::cout << "\nsaturating read (fd source): " << kPipelines[1].cmd
              << "\n";
    kq::ExecOptions io_config = config;
    io_config.io_backend = io::Backend::kPoll;
    Measurement pollm = run_isolated(
        [&] { return run_streaming_fd_file(compiled, path, k, io_config); });
    std::cout << "  poll:  " << pollm.seconds << " s ("
              << mib_per_s(input_bytes, pollm.seconds) << " MiB/s), RSS growth "
              << (pollm.rss_growth >> 20) << " MiB\n";
    if (!pollm.ok) all_ok = false;
    gate_records.push_back(
        {std::string("io-poll:") + kPipelines[1].cmd, pollm});
    if (io::uring_supported()) {
      io_config.io_backend = io::Backend::kUring;
      Measurement uring = run_isolated([&] {
        return run_streaming_fd_file(compiled, path, k, io_config);
      });
      std::cout << "  uring: " << uring.seconds << " s ("
                << mib_per_s(input_bytes, uring.seconds)
                << " MiB/s), RSS growth " << (uring.rss_growth >> 20)
                << " MiB\n";
      if (!uring.ok) all_ok = false;
      if (pollm.out_bytes != uring.out_bytes) {
        std::cout << "  ERROR: backends disagree on output size (poll "
                  << pollm.out_bytes << " vs uring " << uring.out_bytes
                  << ")\n";
        all_ok = false;
      }
      gate_records.push_back(
          {std::string("io-uring:") + kPipelines[1].cmd, uring});
      const bool enforce_io =
          speed_check && input_mb >= 64 && !fork_fallback_used;
      if (enforce_io && uring.seconds > pollm.seconds * 1.05 + 0.05) {
        std::cout << "  ERROR: io_uring is slower than poll on a "
                     "read-dominated pipeline\n";
        io_backend_ok = false;
      }
      // Equal-or-lower memory, with a fixed floor: the ring and its
      // registered staging slots cost a bounded amount that smoke sizes
      // would read as ratio noise.
      if (enforce_io && memory_check &&
          uring.rss_growth > pollm.rss_growth + (std::size_t(4) << 20)) {
        std::cout << "  ERROR: io_uring RSS growth exceeds poll by more "
                     "than the fixed ring overhead\n";
        io_backend_ok = false;
      }
    } else {
      std::cout << "  uring: skipped (io_uring unavailable on this "
                   "kernel)\n";
      GateRecord rec;
      rec.name = std::string("io-uring:") + kPipelines[1].cmd;
      rec.skipped = "io_uring unavailable on this kernel";
      gate_records.push_back(std::move(rec));
    }
  }

  if (!json_path.empty()) {
    write_json(json_path, input_mb, gate_records);
    std::cout << "\nwrote " << gate_records.size() << " scenarios to "
              << json_path << "\n";
  }

  std::cout << "\nverdict: streaming "
            << (!speed_check
                    ? "speed check skipped"
                    : (all_faster ? "matches or beats batch"
                                  : "SLOWER than batch"))
            << " at k=" << k << "; memory "
            << (fork_fallback_used
                    ? "verdict skipped (fork unavailable: in-process VmHWM "
                      "is monotonic, growth readings unreliable)"
                    : (!enforce_bounded
                           ? "verdict skipped (input too small to dominate "
                             "fixed overheads; run with --mb=256)"
                           : (bounded ? "bounded" : "NOT bounded")))
            << "; window "
            << (fork_fallback_used || !memory_check
                    ? "verdict skipped"
                    : (window_bounded ? "bounded (< 16 MiB)"
                                      : "NOT bounded"))
            << "; telemetry "
            << (!speed_check ? "check skipped"
                             : (telemetry_cheap ? "within 2% when disabled"
                                                : "TOO EXPENSIVE"))
            << "; sharded scaling "
            << (shard_scaling_ok ? "ok (or not enforced at this size)"
                                 : "FAILED")
            << "; io backend "
            << (!io::uring_supported()
                    ? "comparison skipped (io_uring unavailable)"
                    : (io_backend_ok ? "ok (or not enforced at this size)"
                                     : "io_uring REGRESSED vs poll"))
            << "\n";
  std::remove(path.c_str());
  if (fork_fallback_used) bounded = window_bounded = true;  // unreliable
  if (!all_ok) std::cout << "verdict: FAILED (run or output error above)\n";
  return (all_ok && all_faster && bounded && window_bounded &&
          telemetry_cheap && shard_scaling_ok && io_backend_ok)
             ? 0
             : 1;
}
