// Shared scaffolding for the table-reproduction binaries: each bench
// compiles catalog scripts through the full synthesis pipeline, measures
// them, and prints a table in the layout of the corresponding paper table
// alongside the paper's reference numbers where useful.
#pragma once

#include <cstdio>
#include <iostream>

#include "bench_support/catalog.h"
#include "bench_support/harness.h"
#include "bench_support/tables.h"

namespace kq::bench {

inline HarnessOptions standard_options(int argc, char** argv,
                                       std::size_t base_bytes = 256 * 1024) {
  HarnessOptions options;
  options.input_bytes = base_bytes * parse_scale(argc, argv);
  return options;
}

inline synth::SynthesisCache& bench_cache() {
  static synth::SynthesisCache cache;
  return cache;
}

inline vfs::Vfs& bench_fs() { return vfs::Vfs::global(); }

}  // namespace kq::bench
