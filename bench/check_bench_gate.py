#!/usr/bin/env python3
"""CI bench-regression gate: diff a stream_throughput --json artifact
against the checked-in baselines.

    bench/check_bench_gate.py <artifact.json> <baseline.json>

A scenario regresses when it exceeds the baseline by more than the
per-metric threshold:

  - RSS growth:  max(baseline * 1.25, baseline + 4 MiB)
  - wall time:   baseline * 1.15 + 0.25 s
  - spill runs:  max(baseline * 1.5, baseline + 1)
  - bytes read:  baseline * 1.25 + 256 KiB

The relative parts are the gate the ISSUE specifies (>25% RSS, >15% wall);
the absolute floors keep small smoke-size numbers (a 3 MiB RSS reading, a
40 ms wall reading) from flapping on runner noise while still catching the
order-of-magnitude regressions the gate exists for (a window stage falling
back to materialize reads as +40 MiB, not +4).

The last two are *structural* counters, not timings, so they are nearly
deterministic at fixed --mb/--spill-mb: spill_runs catches a node whose
accumulation stopped respecting the threshold (more runs = smaller
effective batches = threshold regression; runs appearing where the
baseline has none = a resident path started spilling), and bytes_read
catches broken upstream cancellation (the early-exit scenario's baseline
reads ~64 KiB of a 16 MiB input — a reader that stops noticing cancel
drains everything, two orders of magnitude past the limit). Scenarios
whose baseline predates a counter simply skip that check.

A scenario may carry a "skipped" reason instead of numbers (the runner
could not execute it in its environment — e.g. the io_uring kernel probe
failed). Skipped scenarios are reported and excluded from the diff; only
a scenario absent from the artifact entirely counts as missing.

Exit status: 0 clean, 1 regression or missing scenario, 2 usage/IO error.
"""

import json
import sys

RSS_REL = 1.25
RSS_ABS_FLOOR = 4 * 1024 * 1024
WALL_REL = 1.15
WALL_ABS_FLOOR = 0.25
SPILL_RUNS_REL = 1.5
SPILL_RUNS_ABS_FLOOR = 1
BYTES_READ_REL = 1.25
BYTES_READ_ABS_FLOOR = 256 * 1024


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        with open(sys.argv[1]) as f:
            artifact = json.load(f)
        with open(sys.argv[2]) as f:
            baseline = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench_gate: {e}", file=sys.stderr)
        return 2

    if artifact.get("input_mb") != baseline.get("input_mb"):
        print(
            f"check_bench_gate: artifact ran --mb={artifact.get('input_mb')} "
            f"but baselines are for --mb={baseline.get('input_mb')}",
            file=sys.stderr,
        )
        return 2

    measured = {s["name"]: s for s in artifact.get("scenarios", [])}
    failures = []
    for base in baseline.get("scenarios", []):
        name = base["name"]
        got = measured.get(name)
        if got is None:
            failures.append(f"{name}: missing from artifact")
            continue
        if "skipped" in got:
            # The runner recorded why the scenario could not execute in its
            # environment (e.g. the io_uring kernel probe failed). That is
            # an environmental gap, not a regression.
            print(f"  {name}: skipped ({got['skipped']})")
            continue
        if "skipped" in base:
            # Baseline was recorded in an environment that could not run the
            # scenario; there is nothing to diff against.
            print(f"  {name}: no baseline (recorded as skipped: "
                  f"{base['skipped']})")
            continue
        rss_limit = max(
            base["rss_growth_bytes"] * RSS_REL,
            base["rss_growth_bytes"] + RSS_ABS_FLOOR,
        )
        wall_limit = base["wall_s"] * WALL_REL + WALL_ABS_FLOOR
        rss, wall = got["rss_growth_bytes"], got["wall_s"]
        verdict = "ok"
        if rss > rss_limit:
            failures.append(
                f"{name}: RSS growth {rss / 2**20:.1f} MiB exceeds limit "
                f"{rss_limit / 2**20:.1f} MiB "
                f"(baseline {base['rss_growth_bytes'] / 2**20:.1f} MiB)"
            )
            verdict = "RSS REGRESSION"
        if wall > wall_limit:
            failures.append(
                f"{name}: wall {wall:.3f} s exceeds limit {wall_limit:.3f} s "
                f"(baseline {base['wall_s']:.3f} s)"
            )
            verdict = "WALL REGRESSION" if verdict == "ok" else verdict
        structural = ""
        if "spill_runs" in base and "spill_runs" in got:
            runs_limit = max(
                base["spill_runs"] * SPILL_RUNS_REL,
                base["spill_runs"] + SPILL_RUNS_ABS_FLOOR,
            )
            if got["spill_runs"] > runs_limit:
                failures.append(
                    f"{name}: spill runs {got['spill_runs']} exceed limit "
                    f"{runs_limit:.0f} (baseline {base['spill_runs']})"
                )
                verdict = "SPILL REGRESSION" if verdict == "ok" else verdict
            structural += (
                f", spill runs {got['spill_runs']}/{runs_limit:.0f}"
            )
        if "bytes_read" in base and "bytes_read" in got:
            read_limit = (
                base["bytes_read"] * BYTES_READ_REL + BYTES_READ_ABS_FLOOR
            )
            if got["bytes_read"] > read_limit:
                failures.append(
                    f"{name}: read {got['bytes_read']} bytes, limit "
                    f"{read_limit:.0f} (baseline {base['bytes_read']}) — "
                    f"upstream cancellation or block accounting regressed"
                )
                verdict = "READ REGRESSION" if verdict == "ok" else verdict
            structural += (
                f", read {got['bytes_read']}/{read_limit:.0f} B"
            )
        print(
            f"  {name}: rss {rss / 2**20:.1f}/{rss_limit / 2**20:.1f} MiB, "
            f"wall {wall:.3f}/{wall_limit:.3f} s{structural} -> {verdict}"
        )

    if failures:
        print("\nbench-gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        print(
            "\nIf the regression is intended (e.g. a scenario now does "
            "strictly more work), update bench/baselines/bench_gate.json "
            "with fresh numbers from a CI run and say why in the commit.",
            file=sys.stderr,
        )
        return 1
    print("bench-gate: all scenarios within thresholds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
