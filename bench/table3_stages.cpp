// Table 3: pipeline stages parallelized with synthesized combiners and
// combiners eliminated by the optimization, for all 70 scripts (synthesis
// + planning only; no timing).

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace kq::bench;
  HarnessOptions options = standard_options(argc, argv, 16 * 1024);
  options.parallelism = {};      // plan only
  options.measure_original = false;
  options.verify_outputs = false;

  std::cout << "Table 3: parallelized / eliminated stages per script\n\n";
  TextTable table({"Benchmark", "Script", "Parallelized", "Eliminated"});
  int total_stages = 0, total_parallel = 0, total_eliminated = 0;
  for (const Script& script : all_scripts()) {
    ScriptReport r =
        run_script(script, bench_cache(), options, bench_fs());
    table.add_row({script.suite, script.name, r.parallelized_cell(),
                   r.eliminated_cell()});
    total_stages += r.stages_total();
    total_parallel += r.parallelized_total();
    total_eliminated += r.eliminated_total();
  }
  table.print(std::cout);
  std::printf(
      "\nTotal: %d/%d stages parallelized (%.1f%%), %d combiners "
      "eliminated (%.1f%% of parallelized)\n",
      total_parallel, total_stages,
      100.0 * total_parallel / total_stages, total_eliminated,
      total_parallel ? 100.0 * total_eliminated / total_parallel : 0.0);
  std::cout << "Paper reference: 325/427 stages (76.1%), 144 eliminated "
               "(44.3%).\n";
  return 0;
}
