// Table 1: performance results for the two longest-running scripts from
// each benchmark suite — Parallelized k/n, Eliminated, T_orig, u1, u16,
// T16 (with speedups relative to u1).

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace kq::bench;
  HarnessOptions options = standard_options(argc, argv, 2 << 20);
  options.parallelism = {1, 16};

  std::cout << "Table 1: headline performance (input "
            << options.input_bytes << " bytes/script; paper inputs were "
            << "1-3.4 GB on 80 cores — compare shapes, not seconds)\n\n";

  TextTable table({"Benchmark", "Script", "Parallelized", "Eliminated",
                   "T_orig", "u1", "u16", "T16"});
  for (const Script* script : headline_scripts()) {
    ScriptReport r =
        run_script(*script, bench_cache(), options, bench_fs());
    double u1 = r.unoptimized.at(1);
    double u16 = r.unoptimized.at(16);
    double t16 = r.optimized.at(16);
    table.add_row({script->suite, script->name, r.parallelized_cell(),
                   r.eliminated_cell(),
                   format_seconds(r.t_orig) + " " +
                       format_speedup(u1, r.t_orig),
                   format_seconds(u1),
                   format_seconds(u16) + " " + format_speedup(u1, u16),
                   format_seconds(t16) + " " + format_speedup(u1, t16)});
    if (!r.outputs_match)
      std::cout << "WARNING: output mismatch in " << script->name << "\n";
  }
  table.print(std::cout);
  std::cout << "\nPaper reference (Table 1): analytics-mts 2.sh 8/8, elim 3, "
               "u16 9.3x, T16 13.5x; oneliners wf.sh 4/5, elim 1, u16 "
               "10.7x, T16 14.4x; unix50 23.sh 6/6, elim 4, u16 8.8x, T16 "
               "19.8x.\n";
  return 0;
}
