// Ablation: the gradient-style input-shape search (Algorithm 2) vs fixed
// random shapes. The design claim (§3.2) is that shape mutations guided by
// elimination counts discard incorrect candidates with fewer observations.
// We compare surviving-candidate counts after equal observation budgets.

#include <random>

#include "bench_common.h"
#include "dsl/enumerate.h"
#include "synth/filter.h"
#include "synth/input_search.h"
#include "text/shellwords.h"
#include "unixcmd/registry.h"

int main(int argc, char** argv) {
  using namespace kq;
  (void)argc;
  (void)argv;
  const char* kCommands[] = {"uniq -c", "uniq", "wc -l", "grep -c a",
                             "sort", "tr A-Z a-z"};
  std::cout << "Ablation: gradient input search vs fixed random shapes\n"
               "(candidates remaining after one equal-budget round; lower "
               "is better)\n\n";
  bench::TextTable table({"Command", "Initial", "Gradient search",
                          "Fixed seed shape"});
  for (const char* line : kCommands) {
    auto words = text::shell_split(line);
    cmd::CommandPtr command = cmd::make_command(*words);
    if (!command) continue;

    dsl::SpaceSpec spec;
    spec.delims = {'\n', ' '};
    dsl::CandidateSpace space = dsl::enumerate_candidates(spec);
    dsl::EvalContext ctx{command.get()};
    synth::InputSearchConfig config;

    // Arm 1: gradient-guided mutations.
    std::mt19937_64 rng1(11);
    auto guided = synth::effective_inputs(
        *command, space.candidates, shape::seed_shape(), {}, config, ctx,
        rng1);
    auto survivors_guided = synth::filter_candidates(
        space.candidates, guided.observations, ctx);

    // Arm 2: same number of observations, all from the unmutated seed
    // shape.
    std::mt19937_64 rng2(11);
    std::vector<shape::InputPair> pairs;
    shape::GenOptions gen;
    for (std::size_t i = 0; i < guided.pairs.size(); ++i)
      pairs.push_back(shape::generate_pair(shape::seed_shape(), gen, rng2));
    auto fixed_obs = synth::observe_all(*command, pairs);
    auto survivors_fixed =
        synth::filter_candidates(space.candidates, fixed_obs, ctx);

    table.add_row({line, std::to_string(space.candidates.size()),
                   std::to_string(survivors_guided.size()),
                   std::to_string(survivors_fixed.size())});
  }
  table.print(std::cout);
  std::cout << "\nThe gradient arm should match or beat the fixed arm, "
               "most visibly on table-shaped commands (uniq -c) whose "
               "counterexamples need low line-diversity shapes.\n";
  return 0;
}
