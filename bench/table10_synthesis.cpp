// Table 10: per-command synthesis results — candidate-space size with the
// RecOp/StructOp/RunOp breakdown (reproduced exactly; see DESIGN.md §3),
// wall-clock synthesis time, and the synthesized plausible combiner set —
// plus the §4 synthesis-time summary footer.

#include <algorithm>

#include "bench_common.h"
#include "text/shellwords.h"
#include "unixcmd/registry.h"

int main(int argc, char** argv) {
  using namespace kq::bench;
  (void)standard_options(argc, argv);
  kq::vfs::Vfs& fs = bench_fs();
  generate_workload(Workload::kBookList, 1 << 14, 1, fs);
  generate_workload(Workload::kScriptList, 1 << 14, 1, fs);
  install_spell_dictionary(fs, 1);

  std::cout << "Table 10: per-command synthesis results\n\n";
  TextTable table({"Command", "Search space (Rec+Struct+Run)", "Time",
                   "#P", "Synthesized plausible combiners"});
  std::vector<double> times;
  int no_combiner = 0;
  for (const std::string& command_line : unique_commands()) {
    auto words = kq::text::shell_split(command_line);
    if (!words) continue;
    std::string error;
    kq::cmd::CommandPtr command = kq::cmd::make_command(*words, &error, &fs);
    if (!command) continue;
    auto result =
        kq::synth::synthesize(*command, *words, kq::synth::SynthesisConfig{},
                              &fs);
    times.push_back(result.seconds);
    std::string space = std::to_string(result.space.total()) + " (=" +
                        std::to_string(result.space.rec) + "+" +
                        std::to_string(result.space.strct) + "+" +
                        std::to_string(result.space.run) + ")";
    std::string plausible;
    constexpr std::size_t kShow = 4;
    for (std::size_t i = 0;
         i < result.plausible.size() && i < kShow; ++i) {
      if (i) plausible += ", ";
      plausible += to_string(result.plausible[i]);
    }
    if (result.plausible.size() > kShow)
      plausible += ", ... (" +
                   std::to_string(result.plausible.size() - kShow) + " more)";
    if (!result.success) {
      plausible = "nil";
      ++no_combiner;
    }
    table.add_row({command_line, space, format_seconds(result.seconds),
                   std::to_string(result.plausible.size()), plausible});
  }
  table.print(std::cout);

  std::sort(times.begin(), times.end());
  if (!times.empty()) {
    std::printf(
        "\nSynthesis time: min %s median %s max %s over %zu commands "
        "(%d without a combiner)\n",
        format_seconds(times.front()).c_str(),
        format_seconds(times[times.size() / 2]).c_str(),
        format_seconds(times.back()).c_str(), times.size(), no_combiner);
  }
  std::cout << "Paper reference: spaces 2700 (=968+1728+4), 26404 "
               "(=12440+13960+4), 110444 (=59048+51392+4) — reproduced "
               "exactly by construction; times 39-331 s median 60 s "
               "(process-spawn bound; ours run commands in-process).\n";
  return 0;
}
