// google-benchmark micro suite for the runtime primitives: stream
// splitting, k-way merge, combiner evaluation, regex search, and the
// built-in commands on realistic data.

#include <benchmark/benchmark.h>

#include "bench_support/workloads.h"
#include "dsl/eval.h"
#include "dsl/kway.h"
#include "exec/parallel.h"
#include "exec/splitter.h"
#include "regex/regex.h"
#include "unixcmd/registry.h"
#include "unixcmd/sort_cmd.h"

namespace {

std::string sample_text(std::size_t bytes) {
  static kq::vfs::Vfs fs;
  return kq::bench::generate_workload(kq::bench::Workload::kGutenberg, bytes,
                                      42, fs);
}

void BM_SplitStream(benchmark::State& state) {
  std::string input = sample_text(1 << 20);
  for (auto _ : state) {
    auto chunks =
        kq::exec::split_stream(input, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(chunks);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(input.size()));
}
BENCHMARK(BM_SplitStream)->Arg(2)->Arg(16);

void BM_KWayMerge(benchmark::State& state) {
  auto spec = kq::cmd::SortSpec::parse({});
  std::string sorted = spec->sort_stream(sample_text(1 << 18));
  auto chunks = kq::exec::split_stream(sorted, static_cast<int>(
                                                   state.range(0)));
  std::vector<std::string> parts;
  for (auto c : chunks) parts.push_back(spec->sort_stream(c));
  std::vector<std::string_view> views(parts.begin(), parts.end());
  for (auto _ : state) {
    std::string merged = spec->merge_streams(views);
    benchmark::DoNotOptimize(merged);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(sorted.size()));
}
BENCHMARK(BM_KWayMerge)->Arg(2)->Arg(16);

void BM_Stitch2Eval(benchmark::State& state) {
  kq::cmd::CommandPtr uniq = kq::cmd::make_command_line("uniq -c");
  kq::cmd::CommandPtr sort = kq::cmd::make_command_line("sort");
  std::string sorted = sort->run(sample_text(1 << 16));
  auto chunks = kq::exec::split_stream(sorted, 2);
  std::string y1 = uniq->run(chunks[0]);
  std::string y2 = uniq->run(chunks.size() > 1 ? chunks[1] : chunks[0]);
  kq::dsl::Combiner g = kq::dsl::combiner_stitch2_add_first(' ');
  for (auto _ : state) {
    auto v = kq::dsl::eval(g, y1, y2);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_Stitch2Eval);

void BM_RegexSearch(benchmark::State& state) {
  auto re = kq::regex::Regex::compile("light.*light");
  std::string text = sample_text(1 << 16);
  for (auto _ : state) {
    bool hit = re->search(text);
    benchmark::DoNotOptimize(hit);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_RegexSearch);

void BM_BuiltinCommand(benchmark::State& state, const char* line) {
  kq::cmd::CommandPtr command = kq::cmd::make_command_line(line);
  std::string input = sample_text(1 << 18);
  for (auto _ : state) {
    std::string out = command->run(input);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(input.size()));
}
BENCHMARK_CAPTURE(BM_BuiltinCommand, tr, "tr A-Z a-z");
BENCHMARK_CAPTURE(BM_BuiltinCommand, sort, "sort");
BENCHMARK_CAPTURE(BM_BuiltinCommand, uniq_c, "uniq -c");
BENCHMARK_CAPTURE(BM_BuiltinCommand, grep, "grep light");
BENCHMARK_CAPTURE(BM_BuiltinCommand, wc_l, "wc -l");
BENCHMARK_CAPTURE(BM_BuiltinCommand, awk_nf, "awk '{print NF}'");

void BM_ParallelMap(benchmark::State& state) {
  kq::exec::ThreadPool pool(static_cast<int>(state.range(0)));
  kq::cmd::CommandPtr command = kq::cmd::make_command_line("tr A-Z a-z");
  std::string input = sample_text(1 << 20);
  auto chunks =
      kq::exec::split_stream(input, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto outputs = kq::exec::map_chunks(*command, chunks, pool);
    benchmark::DoNotOptimize(outputs);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(input.size()));
}
BENCHMARK(BM_ParallelMap)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
