// Table 9: commands for which no correct combiner exists. The synthesizer
// must return nil for each, and we report the reason in the paper's terms
// (counterexample input streams).

#include "bench_common.h"
#include "text/shellwords.h"
#include "unixcmd/registry.h"

int main(int argc, char** argv) {
  using namespace kq::bench;
  (void)argc;
  (void)argv;
  struct Entry {
    const char* command;
    const char* reason;
  };
  const Entry kUnsupported[] = {
      {"sed 1d", "no combiner exists: each of x1,x2 has >= 1 line"},
      {"sed 2d", "no combiner exists: each of x1,x2 has >= 2 lines"},
      {"sed 3d", "no combiner exists: each of x1,x2 has >= 3 lines"},
      {"sed 4d", "no combiner exists: each of x1,x2 has >= 4 lines"},
      {"sed 5d", "no combiner exists: each of x1,x2 has >= 5 lines"},
      {"tail +2", "no combiner exists: each of x1,x2 has >= 1 line"},
      {"tail +3", "no combiner exists: each of x1,x2 has >= 2 lines"},
      {"awk '$1 == 2 {print $2, $3}'",
       "generated inputs never make the command produce output, so no "
       "combiner is validated (paper Table 9, same reason)"},
  };

  std::cout << "Table 9: unsupported commands (synthesizer must return "
               "nil)\n\n";
  TextTable table({"Command", "Synthesis", "Reason unsupported (paper)"});
  int correctly_rejected = 0;
  for (const Entry& e : kUnsupported) {
    auto argv_words = kq::text::shell_split(e.command);
    std::string error;
    kq::cmd::CommandPtr command =
        kq::cmd::make_command(*argv_words, &error, &bench_fs());
    if (!command) {
      table.add_row({e.command, "unsupported flags", e.reason});
      continue;
    }
    auto result = kq::synth::synthesize(*command, *argv_words);
    std::string verdict;
    if (result.success) {
      verdict = "combiner found: " + result.combiner.to_string();
    } else {
      verdict = "nil (correct)";
      ++correctly_rejected;
    }
    table.add_row({e.command, verdict, e.reason});
  }
  table.print(std::cout);
  std::cout << "\n" << correctly_rejected
            << " of 8 unsupported commands rejected "
               "(paper: 8 unsupported of 121 unique commands).\n";
  return 0;
}
