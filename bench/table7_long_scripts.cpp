// Table 7: performance results restricted to the scripts whose serial
// execution time was at least 3 minutes in the paper (we run the same
// named subset at a larger input size than the other tables).

#include <algorithm>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace kq::bench;
  HarnessOptions options = standard_options(argc, argv, 1 << 20);
  options.parallelism = {1, 16};

  std::cout << "Table 7: long-running scripts (paper's u1 >= 3 min subset)\n\n";
  TextTable table({"Benchmark", "Script", "Parallelized", "Eliminated",
                   "T_orig", "u1", "u16", "T16"});
  std::vector<double> u_speedups, t_speedups;
  for (const Script* script : long_scripts()) {
    ScriptReport r =
        run_script(*script, bench_cache(), options, bench_fs());
    double u1 = r.unoptimized.at(1);
    double u16 = r.unoptimized.at(16);
    double t16 = r.optimized.at(16);
    table.add_row({script->suite, script->name, r.parallelized_cell(),
                   r.eliminated_cell(),
                   format_seconds(r.t_orig) + " " +
                       format_speedup(u1, r.t_orig),
                   format_seconds(u1),
                   format_seconds(u16) + " " + format_speedup(u1, u16),
                   format_seconds(t16) + " " + format_speedup(u1, t16)});
    if (u16 > 0) u_speedups.push_back(u1 / u16);
    if (t16 > 0) t_speedups.push_back(u1 / t16);
  }
  table.print(std::cout);
  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v.empty() ? 0.0 : v[v.size() / 2];
  };
  std::printf("\nMedian speedups: u16 %.1fx, T16 %.1fx\n",
              median(u_speedups), median(t_speedups));
  std::cout << "Paper reference: median u16 8.5x, median T16 11.3x.\n";
  return 0;
}
