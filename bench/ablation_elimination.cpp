// Ablation: intermediate-combiner elimination (Theorem 5, Figure 5) on
// elimination-heavy scripts — optimized vs unoptimized time per
// parallelism width. The paper attributes its superlinear optimized
// speedups to exactly this optimization.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace kq::bench;
  HarnessOptions options = standard_options(argc, argv, 1 << 20);
  options.parallelism = {1, 2, 4, 8, 16};
  options.measure_original = false;

  const std::pair<const char*, const char*> kPicks[] = {
      {"oneliners", "wf.sh"},
      {"oneliners", "shortest-scripts.sh"},
      {"unix50", "23.sh"},
      {"analytics-mts", "2.sh"},
  };
  std::cout << "Ablation: combiner elimination (optimized T_k vs "
               "unoptimized u_k)\n\n";
  TextTable table({"Script", "k", "u_k", "T_k", "elimination gain"});
  for (const auto& [suite, name] : kPicks) {
    const Script* script = find_script(suite, name);
    if (!script) continue;
    ScriptReport r =
        run_script(*script, bench_cache(), options, bench_fs());
    for (int k : {2, 4, 8, 16}) {
      double u = r.unoptimized.at(k);
      double t = r.optimized.at(k);
      table.add_row({std::string(suite) + "/" + name, std::to_string(k),
                     format_seconds(u), format_seconds(t),
                     format_speedup(u, t)});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: T_k <= u_k wherever a combiner was "
               "eliminated (gain > 1.0x), growing with k.\n";
  return 0;
}
