// Maps a parsed argv onto a built-in Command instance. The registry is the
// single entry point the pipeline compiler uses to instantiate stages.
#pragma once

#include <string>
#include <vector>

#include "unixcmd/command.h"
#include "vfs/vfs.h"

namespace kq::cmd {

// Creates a command for `argv` (argv[0] is the program name). Returns
// nullptr with *error set for unknown programs or unsupported flags.
// `fs` supplies the virtual file system for file-touching commands
// (default: vfs::Vfs::global()).
CommandPtr make_command(const std::vector<std::string>& argv,
                        std::string* error = nullptr,
                        const vfs::Vfs* fs = nullptr);

// Convenience: parses `command_line` with shell-word rules first.
CommandPtr make_command_line(std::string_view command_line,
                             std::string* error = nullptr,
                             const vfs::Vfs* fs = nullptr);

// True if `program` names a built-in.
bool is_builtin(std::string_view program);

}  // namespace kq::cmd
