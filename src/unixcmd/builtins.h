// Factories for the built-in command substrate. Each factory parses its own
// argv (argv[0] is the program name) and returns nullptr with *error set if
// the flag combination is not supported. The supported combinations cover
// every command/flag pair in the paper's benchmark suite (Table 10 and
// Table 9) plus common nearby variants.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "unixcmd/command.h"
#include "vfs/vfs.h"

namespace kq::cmd {

using Argv = std::vector<std::string>;

// Parses a nonnegative decimal count, saturating at the type's maximum
// instead of overflowing (signed overflow would be UB and yield a garbage
// count): `head -n 99999999999999999999` means "all of it", matching GNU,
// which accepts absurd counts as effectively infinite. Returns nullopt on
// empty or non-digit input. Shared by every built-in that parses counts
// (head/tail line counts, sed addresses, sort -k field numbers, cut
// position lists, fmt widths).
std::optional<long> parse_count(std::string_view s);
std::optional<std::size_t> parse_size_count(std::string_view s);

CommandPtr make_cat(const Argv& argv, const vfs::Vfs* fs, std::string* error);
CommandPtr make_tr(const Argv& argv, std::string* error);
CommandPtr make_sort(const Argv& argv, std::string* error);
CommandPtr make_uniq(const Argv& argv, std::string* error);
CommandPtr make_wc(const Argv& argv, std::string* error);
CommandPtr make_grep(const Argv& argv, std::string* error);
CommandPtr make_cut(const Argv& argv, std::string* error);
CommandPtr make_sed(const Argv& argv, std::string* error);
CommandPtr make_awk(const Argv& argv, std::string* error);
CommandPtr make_head(const Argv& argv, std::string* error);
CommandPtr make_tail(const Argv& argv, std::string* error);
CommandPtr make_comm(const Argv& argv, const vfs::Vfs* fs, std::string* error);
CommandPtr make_xargs(const Argv& argv, const vfs::Vfs* fs,
                      std::string* error);
CommandPtr make_col(const Argv& argv, std::string* error);
CommandPtr make_paste(const Argv& argv, std::string* error);
CommandPtr make_fmt(const Argv& argv, std::string* error);
CommandPtr make_rev(const Argv& argv, std::string* error);
CommandPtr make_iconv(const Argv& argv, std::string* error);

// The line count of a built-in `head -n N` (or `head -N` / bare `head`)
// instance; nullopt when `command` is not one or runs in -c byte mode.
// Lets the pipeline-rewrite pass (compile::rewrite_bounded_windows) match
// `sort | head -n N` without re-parsing argv.
std::optional<long> head_line_count(const Command& command);

// True iff `command` is the built-in uniq (any flag combination). The
// rewrite pass fuses `uniq … | sort | head -n K` into one bounded top-k
// node; uniq qualifies because its window is O(1) — the current run.
bool is_uniq_command(const Command& command);

}  // namespace kq::cmd
