// The black-box command abstraction at the heart of KumQuat (Definition
// 3.2): a command is a deterministic function from input stream to output
// stream. The synthesizer, runtime, and compiler only ever interact with
// commands through this interface, which enforces the paper's black-box
// assumption by construction.
//
// Implementations must be thread-safe: the parallel runtime calls
// `execute` concurrently from multiple worker threads on one instance.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace kq::cmd {

// The outcome of running a command on an input stream. `status != 0`
// models a Unix command exiting with an error (used by preprocessing's
// probe-input classification, §3.2); `out` still carries any partial
// output the command produced.
struct Result {
  std::string out;
  int status = 0;
  std::string err;

  bool ok() const { return status == 0; }
};

// How a command's output relates to record-aligned prefixes of its input.
// This is the streamability declaration that lets the streaming runtime
// (stream/dataflow.cpp) run a stage per block instead of materializing its
// whole input — the order-aware-dataflow / PaSh notion of a pure
// stateless/streaming command, declared rather than inferred because the
// built-ins know their own semantics.
//
// The contract every tier shares: blocks are *record-aligned* — each block
// the runtime feeds ends at a record boundary (the final block may not),
// and each block a processor emits must end at a record boundary too,
// except the emission that is genuinely the end of its output stream. A
// command whose output can break that alignment (tr -d '\n' deletes the
// delimiter) must declare kNone. See docs/ARCHITECTURE.md for how the
// executor maps each tier onto a dataflow node.
enum class Streamability {
  // Black box: the command may need the whole input at once.
  kNone,
  // Record-wise: there is a processor p (possibly stateful, with bounded
  // state) such that feeding record-aligned blocks in order and
  // concatenating the outputs equals one whole-input execute(). Pure
  // per-record filters/maps (grep, tr, cut, rev) and bounded-state
  // line-counting forms (tail +N, sed Nd) fall here.
  kPerRecord,
  // Record-wise over a bounded prefix: after some point the output is
  // complete and further input cannot change it (head -n N, sed Nq). The
  // runtime may cancel the upstream graph once the processor reports done.
  kPrefix,
  // Window-bounded: the command needs the *whole* input but only a bounded
  // window of state at any moment — `tail -n N` holds the last N records,
  // `uniq` one run, `wc` a few counters, `sort -u` its distinct set. A
  // WindowProcessor absorbs record-aligned blocks (emitting any output that
  // is already final, like uniq's completed runs) and flushes the residue
  // at end of input through finish(). Because finish() reorders emission
  // relative to input, a window stage terminates a fused stream chain.
  kWindow,
};

// Stateful per-block executor behind a streamable command. One processor
// serves exactly one stream: the runtime feeds record-aligned blocks in
// input order and concatenates the appended outputs, which must equal
// execute() over the concatenated blocks.
//
// Contract (kPerRecord / kPrefix):
//   - input blocks arrive record-aligned and in order; outputs must stay
//     record-aligned (only the final emission may end mid-record, and only
//     because the output stream genuinely ends there);
//   - state carried across blocks must be bounded by the command's own
//     constants (a squeeze run, a skip counter, a remaining-count), never
//     by the input size — unbounded state belongs in a WindowProcessor;
//   - finish() emits any end-of-input tail; after finish() the processor
//     is spent.
// Unlike Command (shared across worker threads), a processor is owned by a
// single dataflow node and need not be thread-safe.
class StreamProcessor {
 public:
  virtual ~StreamProcessor() = default;
  // Processes one record-aligned block, appending output to *out. Returns
  // false once the output is complete regardless of further input (a
  // kPrefix command satisfied its bound): the caller stops feeding this
  // stream and may cancel upstream work. Must append nothing on any call
  // after the one that returned false.
  virtual bool process(std::string_view block, std::string* out) = 0;
  // Appends any end-of-input tail output. Most streamable commands emit
  // everything in process(); the default is a no-op.
  virtual void finish(std::string* out) { (void)out; }
};

// Stateful bounded-window executor behind a kWindow command. One processor
// serves exactly one stream: the runtime feeds record-aligned blocks in
// input order; output that later input can no longer change may be appended
// during push() (uniq's completed runs), everything still held in the
// window flushes at end of input through finish(). The concatenation of all
// push() outputs followed by the finish() emission must equal execute()
// over the concatenated blocks.
//
// Contract (kWindow):
//   - input blocks arrive record-aligned and in order; push() emissions
//     must stay record-aligned, and finish()'s pieces must each end at a
//     record boundary except the last (an unterminated final record is the
//     command's own stream end, as in GNU tail);
//   - the resident window must be bounded by the command's semantics
//     (tail's N records, uniq's one run, top-n's N entries), and
//     state_bytes() must report it honestly — it is the runtime's spill
//     trigger and the denominator of every O(window) memory claim;
//   - finish() is single-shot and terminal; a window stage therefore ends
//     a fused stream chain (its emission order is finish()'s, not the
//     input's);
//   - drain_sorted_run()/seal()/output_limit() exist for the spill path
//     and default to "unsupported"/no-op/unlimited — see each below.
// Owned by a single dataflow node; need not be thread-safe.
class WindowProcessor {
 public:
  // Receives finish()'s residue in record-aligned pieces; returns false to
  // stop emission early (the consumer closed — cancellation propagates
  // through finish()).
  using Sink = std::function<bool(std::string_view)>;

  virtual ~WindowProcessor() = default;

  // Absorbs one record-aligned block into the window, appending any output
  // that is already final to *out.
  virtual void push(std::string_view block, std::string* out) = 0;

  // Emits everything still held in the window at end of input. Stops early
  // (and may discard the rest) once `sink` returns false. Single-shot.
  virtual void finish(const Sink& sink) = 0;

  // Bytes currently resident in the window — the node's spill trigger and
  // the honest denominator of the O(window) memory claim.
  virtual std::size_t state_bytes() const = 0;

  // For windows whose state is itself a sorted stream under the owning
  // stage's comparator (sort -u's distinct set, top-n's bounded heap):
  // moves the state into *out as a newline-terminated sorted stream and
  // resets the window, so the runtime can spill it as one sorted run and
  // keep the window bounded by the spill threshold. Default: unsupported
  // (the runtime then keeps the window resident).
  virtual bool drain_sorted_run(std::string* out) {
    (void)out;
    return false;
  }

  // Called once at end of input, before the *final* drain_sorted_run on
  // the spill path: absorbs any cross-record residue that normally flushes
  // inside finish() into the window state (a fused top-k's pending uniq
  // run), appending output the sealing finalizes to *out. Plain windows
  // have no such residue; the default is a no-op. Never called when
  // finish() will run — finish() subsumes it.
  virtual void seal(std::string* out) { (void)out; }

  // For windows whose output is a bounded prefix of their merged sorted
  // state (top-n emits only its first N records): the maximum number of
  // records finish() may emit. The runtime caps the external merge's
  // re-streamed emission at this many records when the window spilled;
  // nullopt means unlimited. Must agree with finish(), which enforces the
  // same bound on the unspilled path itself.
  virtual std::optional<std::size_t> output_limit() const {
    return std::nullopt;
  }
};

class Command {
 public:
  virtual ~Command() = default;

  Command(const Command&) = delete;
  Command& operator=(const Command&) = delete;

  // The command line this instance models, e.g. "tr -cs A-Za-z '\n'".
  const std::string& display_name() const { return display_name_; }

  // Runs the command on `input`, producing output and an exit status.
  virtual Result execute(std::string_view input) const = 0;

  // Convenience wrapper for the common success path.
  std::string run(std::string_view input) const { return execute(input).out; }

  // This command's streamability class; kNone unless a built-in declares
  // otherwise. Must agree with the processor factories: stream_processor()
  // is non-null iff kPerRecord/kPrefix, window_processor() iff kWindow.
  virtual Streamability streamability() const { return Streamability::kNone; }

  // The largest input scale (in records or bytes) at which this command's
  // behavior changes, parsed from its own arguments — head/tail counts,
  // sed line addresses — or nullopt when behavior is scale-free.
  // Certification probes straddle numeric literals only up to
  // synth::kProbeCountCap, so the planner keeps a stage whose bound
  // exceeds every probe sequential: below the bound such a command is
  // indistinguishable from `cat`, and a combiner certified purely on
  // those observations is wrong exactly on the inputs too big to probe.
  virtual std::optional<long> scale_bound() const { return std::nullopt; }

  // A fresh per-stream processor for a streamable command (the instance
  // must outlive the processor). Null for kNone and kWindow commands.
  virtual std::unique_ptr<StreamProcessor> stream_processor() const {
    return nullptr;
  }

  // A fresh per-stream window processor for a kWindow command (the
  // instance must outlive the processor). Null otherwise.
  virtual std::unique_ptr<WindowProcessor> window_processor() const {
    return nullptr;
  }

 protected:
  explicit Command(std::string display_name)
      : display_name_(std::move(display_name)) {}

 private:
  std::string display_name_;
};

// Processor for commands whose execute() is already record-wise pure:
// running the command block-by-block and concatenating equals one
// whole-input run (no state crosses a record boundary). Shared by grep,
// cut, rev, and the other stateless per-record built-ins.
class PerBlockProcessor final : public StreamProcessor {
 public:
  explicit PerBlockProcessor(const Command& command) : command_(command) {}
  bool process(std::string_view block, std::string* out) override {
    Result r = command_.execute(block);
    if (out->empty())
      *out = std::move(r.out);
    else
      out->append(r.out);
    return true;
  }

 private:
  const Command& command_;
};

using CommandPtr = std::shared_ptr<const Command>;

// Renders argv back into a display string (quoting words with spaces or
// backslashes so the name round-trips through the pipeline parser).
std::string argv_to_display(const std::vector<std::string>& argv);

// Wraps a C++ callable as a Command; handy in tests and examples.
template <typename Fn>
class LambdaCommand final : public Command {
 public:
  LambdaCommand(std::string name, Fn fn)
      : Command(std::move(name)), fn_(std::move(fn)) {}
  Result execute(std::string_view input) const override {
    return Result{fn_(input), 0, {}};
  }

 private:
  Fn fn_;
};

template <typename Fn>
CommandPtr make_lambda_command(std::string name, Fn fn) {
  return std::make_shared<LambdaCommand<Fn>>(std::move(name), std::move(fn));
}

}  // namespace kq::cmd
