// The black-box command abstraction at the heart of KumQuat (Definition
// 3.2): a command is a deterministic function from input stream to output
// stream. The synthesizer, runtime, and compiler only ever interact with
// commands through this interface, which enforces the paper's black-box
// assumption by construction.
//
// Implementations must be thread-safe: the parallel runtime calls
// `execute` concurrently from multiple worker threads on one instance.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace kq::cmd {

// The outcome of running a command on an input stream. `status != 0`
// models a Unix command exiting with an error (used by preprocessing's
// probe-input classification, §3.2); `out` still carries any partial
// output the command produced.
struct Result {
  std::string out;
  int status = 0;
  std::string err;

  bool ok() const { return status == 0; }
};

class Command {
 public:
  virtual ~Command() = default;

  Command(const Command&) = delete;
  Command& operator=(const Command&) = delete;

  // The command line this instance models, e.g. "tr -cs A-Za-z '\n'".
  const std::string& display_name() const { return display_name_; }

  // Runs the command on `input`, producing output and an exit status.
  virtual Result execute(std::string_view input) const = 0;

  // Convenience wrapper for the common success path.
  std::string run(std::string_view input) const { return execute(input).out; }

 protected:
  explicit Command(std::string display_name)
      : display_name_(std::move(display_name)) {}

 private:
  std::string display_name_;
};

using CommandPtr = std::shared_ptr<const Command>;

// Renders argv back into a display string (quoting words with spaces or
// backslashes so the name round-trips through the pipeline parser).
std::string argv_to_display(const std::vector<std::string>& argv);

// Wraps a C++ callable as a Command; handy in tests and examples.
template <typename Fn>
class LambdaCommand final : public Command {
 public:
  LambdaCommand(std::string name, Fn fn)
      : Command(std::move(name)), fn_(std::move(fn)) {}
  Result execute(std::string_view input) const override {
    return Result{fn_(input), 0, {}};
  }

 private:
  Fn fn_;
};

template <typename Fn>
CommandPtr make_lambda_command(std::string name, Fn fn) {
  return std::make_shared<LambdaCommand<Fn>>(std::move(name), std::move(fn));
}

}  // namespace kq::cmd
