// Built-in `xargs` for the file-consuming idioms in the benchmarks:
//   xargs cat          concatenate the named (virtual) files
//   xargs file         report a type line per file ("NAME: ASCII text")
//   xargs -L 1 wc -l   run `wc -l FILE` per input line ("COUNT NAME")
//
// Input tokens are whitespace-separated file names resolved against the
// virtual file system. Missing files produce an error line on stderr and a
// non-zero exit status (matching the probe-classification behaviour the
// paper relies on: xargs fails on word inputs that are not file names).

#include <cctype>

#include "text/streams.h"
#include "unixcmd/builtins.h"

namespace kq::cmd {
namespace {

std::vector<std::string> tokens(std::string_view input) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < input.size()) {
    while (i < input.size() &&
           std::isspace(static_cast<unsigned char>(input[i])))
      ++i;
    if (i >= input.size()) break;
    std::size_t start = i;
    while (i < input.size() &&
           !std::isspace(static_cast<unsigned char>(input[i])))
      ++i;
    out.emplace_back(input.substr(start, i - start));
  }
  return out;
}

enum class Mode { kCat, kFile, kWcPerLine };

class XargsCommand final : public Command {
 public:
  XargsCommand(std::string name, Mode mode, const vfs::Vfs* fs)
      : Command(std::move(name)), mode_(mode), fs_(fs) {}

  Result execute(std::string_view input) const override {
    std::string out;
    int status = 0;
    std::string err;
    for (const std::string& name : tokens(input)) {
      auto contents = fs_->read(name);
      if (!contents) {
        status = 1;
        err += name + ": No such file or directory\n";
        continue;
      }
      switch (mode_) {
        case Mode::kCat:
          out += *contents;
          break;
        case Mode::kFile:
          out += name;
          if (contents->empty()) {
            out += ": empty";
          } else if (contents->rfind("#!", 0) == 0) {
            // file(1)'s classification for executable scripts.
            out += ": POSIX shell script, ASCII text executable";
          } else {
            out += ": ASCII text";
          }
          out.push_back('\n');
          break;
        case Mode::kWcPerLine: {
          std::size_t count = 0;
          for (char c : *contents)
            if (c == '\n') ++count;
          out += std::to_string(count);
          out.push_back(' ');
          out += name;
          out.push_back('\n');
          break;
        }
      }
    }
    return {std::move(out), status, std::move(err)};
  }

 private:
  Mode mode_;
  const vfs::Vfs* fs_;
};

}  // namespace

CommandPtr make_xargs(const Argv& argv, const vfs::Vfs* fs,
                      std::string* error) {
  std::vector<std::string> rest;
  for (std::size_t i = 1; i < argv.size(); ++i) {
    const std::string& a = argv[i];
    if (a == "-L") {
      if (i + 1 >= argv.size() || argv[i + 1] != "1") {
        if (error) *error = "xargs: only -L 1 is supported";
        return nullptr;
      }
      ++i;
      continue;
    }
    rest.push_back(a);
  }
  Mode mode;
  if (rest.size() == 1 && rest[0] == "cat") {
    mode = Mode::kCat;
  } else if (rest.size() == 1 && rest[0] == "file") {
    mode = Mode::kFile;
  } else if (rest.size() == 2 && rest[0] == "wc" && rest[1] == "-l") {
    mode = Mode::kWcPerLine;
  } else {
    if (error) *error = "xargs: unsupported utility";
    return nullptr;
  }
  if (!fs) fs = &vfs::Vfs::global();
  return std::make_shared<XargsCommand>(argv_to_display(argv), mode, fs);
}

}  // namespace kq::cmd
