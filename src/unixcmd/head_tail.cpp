// Built-in `head` and `tail`. head: default 10 lines, -N, -n N, and -c N
// (first N bytes). tail: -n N (last N lines), +N / -n +N (from line N
// onward, the form whose combiner provably does not exist — Table 9),
// -c N (last N bytes), -c +N (from byte N onward).
//
// All forms preserve a missing final newline: like GNU head/tail they copy
// the input's bytes, so an unterminated last line stays unterminated (the
// old code re-terminated every emitted line). Counts — line and byte modes
// alike — parse through the shared saturating parse_count, so `head -c
// 99999999999999999999` means "all of it" instead of signed-overflow
// garbage, and malformed counts reject the command loudly.
//
// head is the canonical prefix-bounded streamable command: its processor
// reports done once the count is satisfied, which lets the streaming
// runtime cancel the upstream graph — `head -n 10` over a multi-GiB input
// reads O(blocks), not the whole file (`head -c N` exits after N bytes the
// same way). `tail +N` / `tail -c +N` stream too (skip a bounded prefix,
// then pass through); `tail -n N` / `tail -c N` need the end of the input
// but only the last N records/bytes of it at any moment, so they are
// window-bounded (cmd::Streamability::kWindow): a bounded ring absorbs
// blocks and flushes at end of input.

#include <algorithm>
#include <deque>
#include <optional>

#include "text/streams.h"
#include "unixcmd/builtins.h"

namespace kq::cmd {
namespace {

// Appends the lines of `input` with indices in [begin, end) to *out,
// re-terminating each except an unterminated final input line (GNU
// behavior: the missing newline is preserved, not invented).
void append_lines(std::string_view input,
                  const std::vector<std::string_view>& ls, std::size_t begin,
                  std::size_t end, std::string* out) {
  end = std::min(end, ls.size());
  for (std::size_t i = begin; i < end; ++i) {
    *out += ls[i];
    if (i + 1 < ls.size() || input.ends_with('\n')) out->push_back('\n');
  }
}

class HeadStreamProcessor final : public StreamProcessor {
 public:
  explicit HeadStreamProcessor(long n) : remaining_(n) {}

  bool process(std::string_view block, std::string* out) override {
    if (remaining_ <= 0) return false;
    auto ls = text::lines(block);
    std::size_t take = ls.size();
    if (remaining_ < static_cast<long>(ls.size()))
      take = static_cast<std::size_t>(remaining_);
    append_lines(block, ls, 0, take, out);
    remaining_ -= static_cast<long>(take);
    return remaining_ > 0;
  }

 private:
  long remaining_;
};

// `head -c N`: pass bytes through until the budget is spent. Every
// emission but the last is a whole record-aligned input block, and the
// last is the genuine end of the output stream, so byte mode is safe
// inside a fused stream chain.
class HeadBytesStreamProcessor final : public StreamProcessor {
 public:
  explicit HeadBytesStreamProcessor(long n)
      : remaining_(n > 0 ? static_cast<std::size_t>(n) : 0) {}

  bool process(std::string_view block, std::string* out) override {
    if (remaining_ == 0) return false;
    std::size_t take = std::min(block.size(), remaining_);
    out->append(block.substr(0, take));
    remaining_ -= take;
    return remaining_ > 0;
  }

 private:
  std::size_t remaining_;
};

class HeadCommand final : public Command {
 public:
  HeadCommand(std::string name, long n, bool bytes)
      : Command(std::move(name)), n_(n), bytes_(bytes) {}

  Result execute(std::string_view input) const override {
    std::string out;
    if (bytes_) {
      std::size_t take = input.size();
      if (n_ >= 0 && static_cast<unsigned long>(n_) < input.size())
        take = static_cast<std::size_t>(n_);
      out.assign(input.substr(0, take));
      return {std::move(out), 0, {}};
    }
    auto ls = text::lines(input);
    std::size_t take =
        n_ < static_cast<long>(ls.size()) && n_ >= 0
            ? static_cast<std::size_t>(n_)
            : ls.size();
    append_lines(input, ls, 0, take, &out);
    return {std::move(out), 0, {}};
  }

  Streamability streamability() const override {
    return Streamability::kPrefix;
  }
  std::unique_ptr<StreamProcessor> stream_processor() const override {
    if (bytes_) return std::make_unique<HeadBytesStreamProcessor>(n_);
    return std::make_unique<HeadStreamProcessor>(n_);
  }

  std::optional<long> scale_bound() const override { return n_; }

  long count() const { return n_; }
  bool bytes_mode() const { return bytes_; }

 private:
  long n_;
  bool bytes_;
};

// `tail +N`: drop the first N-1 lines, then pass records through — a
// bounded-state per-record stream (the skip counter).
class TailFromStreamProcessor final : public StreamProcessor {
 public:
  explicit TailFromStreamProcessor(long from_line)
      : skip_(from_line > 0 ? from_line - 1 : 0) {}

  bool process(std::string_view block, std::string* out) override {
    if (skip_ == 0) {  // steady state: pure pass-through
      out->append(block);
      return true;
    }
    auto ls = text::lines(block);
    std::size_t drop = ls.size();
    if (skip_ < static_cast<long>(ls.size()))
      drop = static_cast<std::size_t>(skip_);
    skip_ -= static_cast<long>(drop);
    append_lines(block, ls, drop, ls.size(), out);
    return true;
  }

 private:
  long skip_;
};

// `tail -c +N`: drop the first N-1 bytes, then pass through. The first
// emission may start mid-record — that partial piece is the genuine start
// of the output stream (exactly GNU's), and it still ends at its block's
// record boundary, so downstream stages stay aligned.
class TailFromByteStreamProcessor final : public StreamProcessor {
 public:
  explicit TailFromByteStreamProcessor(long from_byte)
      : skip_(from_byte > 0 ? static_cast<std::size_t>(from_byte) - 1 : 0) {}

  bool process(std::string_view block, std::string* out) override {
    if (skip_ >= block.size()) {
      skip_ -= block.size();
      return true;
    }
    out->append(block.substr(skip_));
    skip_ = 0;
    return true;
  }

 private:
  std::size_t skip_;
};

// `tail -n N`: a ring buffer of the last N records — the window is N lines,
// regardless of input size. Nothing is final until end of input (any record
// can still be evicted), so push() emits nothing and finish() flushes the
// ring. The missing-final-newline audit carries through: the ring remembers
// whether the last absorbed record was terminated, so an unterminated last
// input line stays unterminated like GNU tail (and like execute()).
class TailLastWindowProcessor final : public WindowProcessor {
 public:
  explicit TailLastWindowProcessor(long n)
      : limit_(n > 0 ? static_cast<std::size_t>(n) : 0) {}

  void push(std::string_view block, std::string* out) override {
    (void)out;
    if (block.empty()) return;
    terminated_ = block.back() == '\n';
    if (limit_ == 0) return;
    auto ls = text::lines(block);
    // A block with >= N lines replaces the whole window: everything held
    // so far (and the block's own earlier lines) is evicted unseen, so
    // copy only the last N instead of churning one string per input line.
    std::size_t first = 0;
    if (ls.size() >= limit_) {
      first = ls.size() - limit_;
      ring_.clear();
      bytes_ = 0;
    }
    for (std::size_t i = first; i < ls.size(); ++i) {
      if (ring_.size() == limit_) {
        // Steady state: recycle the evictee's allocation for the newcomer.
        std::string recycled = std::move(ring_.front());
        ring_.pop_front();
        bytes_ -= recycled.size();
        recycled.assign(ls[i]);
        bytes_ += recycled.size();
        ring_.push_back(std::move(recycled));
      } else {
        ring_.emplace_back(ls[i]);
        bytes_ += ls[i].size();
      }
    }
  }

  void finish(const Sink& sink) override {
    std::string buf;
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      buf += ring_[i];
      if (i + 1 < ring_.size() || terminated_) buf.push_back('\n');
      if (buf.size() >= kFlushBytes) {
        if (!sink(buf)) return;
        buf.clear();
      }
    }
    if (!buf.empty()) sink(buf);
  }

  std::size_t state_bytes() const override {
    return bytes_ + ring_.size() * sizeof(std::string);
  }

 private:
  static constexpr std::size_t kFlushBytes = 64 << 10;
  const std::size_t limit_;
  std::deque<std::string> ring_;
  std::size_t bytes_ = 0;
  bool terminated_ = true;
};

// `tail -c N`: the last N bytes, as a rolling byte window. The flushed
// stream may start mid-record (GNU's exact bytes); finish() still cuts its
// pieces at record boundaries so downstream re-blocking stays aligned.
class TailBytesWindowProcessor final : public WindowProcessor {
 public:
  explicit TailBytesWindowProcessor(long n)
      : limit_(n > 0 ? static_cast<std::size_t>(n) : 0) {}

  void push(std::string_view block, std::string* out) override {
    (void)out;
    if (limit_ == 0 || block.empty()) return;
    if (block.size() >= limit_) {
      buf_.assign(block.substr(block.size() - limit_));
      return;
    }
    buf_.append(block);
    // Amortized trim: let the buffer run to twice the window before
    // cutting back — erasing the front per block would memmove the whole
    // window every block (quadratic in input for a large -c N).
    if (buf_.size() > 2 * limit_) buf_.erase(0, buf_.size() - limit_);
  }

  void finish(const Sink& sink) override {
    std::string_view rest = buf_;
    if (rest.size() > limit_) rest.remove_prefix(rest.size() - limit_);
    while (rest.size() > kFlushBytes) {
      std::size_t cut = rest.rfind('\n', kFlushBytes - 1);
      if (cut == std::string_view::npos) {
        cut = rest.find('\n', kFlushBytes);
        if (cut == std::string_view::npos) break;  // one giant record
      }
      if (!sink(rest.substr(0, cut + 1))) return;
      rest.remove_prefix(cut + 1);
    }
    if (!rest.empty()) sink(rest);
  }

  std::size_t state_bytes() const override { return buf_.size(); }

 private:
  static constexpr std::size_t kFlushBytes = 64 << 10;
  const std::size_t limit_;
  std::string buf_;
};

class TailCommand final : public Command {
 public:
  // from_line > 0: `tail +N` (output starting at line/byte N).
  // last_n >= 0: `tail -n N` / `tail -c N` (output the final N lines/bytes).
  TailCommand(std::string name, long from_line, long last_n, bool bytes)
      : Command(std::move(name)),
        from_line_(from_line),
        last_n_(last_n),
        bytes_(bytes) {}

  Result execute(std::string_view input) const override {
    std::string out;
    if (bytes_) {
      if (from_line_ > 0) {
        std::size_t begin = input.size();
        if (static_cast<unsigned long>(from_line_ - 1) < input.size())
          begin = static_cast<std::size_t>(from_line_ - 1);
        out.assign(input.substr(begin));
      } else {
        std::size_t take = input.size();
        if (last_n_ >= 0 && static_cast<unsigned long>(last_n_) < input.size())
          take = static_cast<std::size_t>(last_n_);
        out.assign(input.substr(input.size() - take));
      }
      return {std::move(out), 0, {}};
    }
    auto ls = text::lines(input);
    std::size_t begin = 0;
    if (from_line_ > 0) {
      begin = static_cast<std::size_t>(from_line_ - 1);
    } else if (ls.size() > static_cast<std::size_t>(last_n_)) {
      begin = ls.size() - static_cast<std::size_t>(last_n_);
    }
    append_lines(input, ls, begin, ls.size(), &out);
    return {std::move(out), 0, {}};
  }

  Streamability streamability() const override {
    return from_line_ > 0 ? Streamability::kPerRecord
                          : Streamability::kWindow;
  }
  std::unique_ptr<StreamProcessor> stream_processor() const override {
    if (from_line_ <= 0) return nullptr;
    if (bytes_) return std::make_unique<TailFromByteStreamProcessor>(from_line_);
    return std::make_unique<TailFromStreamProcessor>(from_line_);
  }
  std::unique_ptr<WindowProcessor> window_processor() const override {
    if (from_line_ > 0) return nullptr;
    if (bytes_) return std::make_unique<TailBytesWindowProcessor>(last_n_);
    return std::make_unique<TailLastWindowProcessor>(last_n_);
  }

  std::optional<long> scale_bound() const override {
    return from_line_ > 0 ? from_line_ : last_n_;
  }

 private:
  long from_line_;
  long last_n_;
  bool bytes_;
};

}  // namespace

std::optional<long> head_line_count(const Command& command) {
  const auto* head = dynamic_cast<const HeadCommand*>(&command);
  if (head == nullptr || head->bytes_mode()) return std::nullopt;
  return head->count();
}

CommandPtr make_head(const Argv& argv, std::string* error) {
  long n = 10;
  bool bytes = false;
  for (std::size_t i = 1; i < argv.size(); ++i) {
    const std::string& a = argv[i];
    if (a == "-n" || a == "-c") {
      if (i + 1 >= argv.size()) {
        if (error) *error = "head: " + a + " needs a count";
        return nullptr;
      }
      auto v = parse_count(argv[++i]);
      if (!v) {
        if (error)
          *error = a == "-c" ? "head: bad byte count" : "head: bad count";
        return nullptr;
      }
      n = *v;
      bytes = a == "-c";
    } else if (a.size() > 2 && (a.rfind("-c", 0) == 0 ||
                                a.rfind("-n", 0) == 0)) {
      // Bundled counts, GNU-style: head -n5 / head -c5.
      auto v = parse_count(std::string_view(a).substr(2));
      if (!v) {
        if (error)
          *error = a[1] == 'c' ? "head: bad byte count" : "head: bad count";
        return nullptr;
      }
      n = *v;
      bytes = a[1] == 'c';
    } else if (a.size() >= 2 && a[0] == '-') {
      auto v = parse_count(a.substr(1));
      if (!v) {
        if (error) *error = "head: unsupported flag " + a;
        return nullptr;
      }
      n = *v;
      bytes = false;
    } else {
      if (error) *error = "head: file operands not supported";
      return nullptr;
    }
  }
  return std::make_shared<HeadCommand>(argv_to_display(argv), n, bytes);
}

CommandPtr make_tail(const Argv& argv, std::string* error) {
  long from_line = 0, last_n = 10;
  bool bytes = false;
  // GNU treats `tail +0` / `tail -n +0` / `tail -c +0` like +1: the whole
  // input.
  auto from = [](long n) { return n > 0 ? n : 1; };
  // Applies one count value ("N" or "+N") shared by -n and -c.
  auto apply = [&](std::string_view v) {
    if (!v.empty() && v[0] == '+') {
      auto n = parse_count(v.substr(1));
      if (!n) return false;
      from_line = from(*n);
    } else {
      auto n = parse_count(v);
      if (!n) return false;
      last_n = *n;
      from_line = 0;
    }
    return true;
  };
  for (std::size_t i = 1; i < argv.size(); ++i) {
    const std::string& a = argv[i];
    if (a == "-n" || a == "-c") {
      if (i + 1 >= argv.size()) {
        if (error) *error = "tail: " + a + " needs a count";
        return nullptr;
      }
      if (!apply(argv[++i])) {
        if (error)
          *error = a == "-c" ? "tail: bad byte count" : "tail: bad count";
        return nullptr;
      }
      bytes = a == "-c";
    } else if (a.size() > 2 && (a.rfind("-c", 0) == 0 ||
                                a.rfind("-n", 0) == 0)) {
      // Bundled counts, GNU-style: tail -n5 / tail -c5 / tail -c+13.
      if (!apply(std::string_view(a).substr(2))) {
        if (error)
          *error = a[1] == 'c' ? "tail: bad byte count" : "tail: bad count";
        return nullptr;
      }
      bytes = a[1] == 'c';
    } else if (!a.empty() && a[0] == '+') {
      auto n = parse_count(std::string_view(a).substr(1));
      if (!n) {
        if (error) *error = "tail: bad count";
        return nullptr;
      }
      from_line = from(*n);
      bytes = false;
    } else if (a.size() >= 2 && a[0] == '-') {
      auto n = parse_count(std::string_view(a).substr(1));
      if (!n) {
        if (error) *error = "tail: unsupported flag " + a;
        return nullptr;
      }
      last_n = *n;
      from_line = 0;
      bytes = false;
    } else {
      if (error) *error = "tail: file operands not supported";
      return nullptr;
    }
  }
  return std::make_shared<TailCommand>(argv_to_display(argv), from_line,
                                       last_n, bytes);
}

}  // namespace kq::cmd
