// Built-in `head` and `tail`. head: default 10 lines, -N, -n N.
// tail: -n N (last N lines), +N / -n +N (from line N onward, the form whose
// combiner provably does not exist — Table 9).
//
// Both preserve a missing final newline: like GNU head/tail they copy the
// input's bytes, so an unterminated last line stays unterminated (the old
// code re-terminated every emitted line). Counts parse through the shared
// saturating parse_count, so `head -n 99999999999999999999` means "all of
// it" instead of signed-overflow garbage.
//
// head is the canonical prefix-bounded streamable command: its processor
// reports done once the count is satisfied, which lets the streaming
// runtime cancel the upstream graph — `head -n 10` over a multi-GiB input
// reads O(blocks), not the whole file. `tail +N` streams too (skip a
// bounded prefix, then pass through); `tail -n N` needs the end of the
// input but only the last N records of it at any moment, so it is the
// canonical *window*-bounded command: a ring buffer of N records absorbs
// blocks and flushes at end of input (cmd::Streamability::kWindow).

#include <algorithm>
#include <deque>
#include <optional>

#include "text/streams.h"
#include "unixcmd/builtins.h"

namespace kq::cmd {
namespace {

// Appends the lines of `input` with indices in [begin, end) to *out,
// re-terminating each except an unterminated final input line (GNU
// behavior: the missing newline is preserved, not invented).
void append_lines(std::string_view input,
                  const std::vector<std::string_view>& ls, std::size_t begin,
                  std::size_t end, std::string* out) {
  end = std::min(end, ls.size());
  for (std::size_t i = begin; i < end; ++i) {
    *out += ls[i];
    if (i + 1 < ls.size() || input.ends_with('\n')) out->push_back('\n');
  }
}

class HeadStreamProcessor final : public StreamProcessor {
 public:
  explicit HeadStreamProcessor(long n) : remaining_(n) {}

  bool process(std::string_view block, std::string* out) override {
    if (remaining_ <= 0) return false;
    auto ls = text::lines(block);
    std::size_t take = ls.size();
    if (remaining_ < static_cast<long>(ls.size()))
      take = static_cast<std::size_t>(remaining_);
    append_lines(block, ls, 0, take, out);
    remaining_ -= static_cast<long>(take);
    return remaining_ > 0;
  }

 private:
  long remaining_;
};

class HeadCommand final : public Command {
 public:
  HeadCommand(std::string name, long n) : Command(std::move(name)), n_(n) {}

  Result execute(std::string_view input) const override {
    std::string out;
    auto ls = text::lines(input);
    std::size_t take =
        n_ < static_cast<long>(ls.size()) && n_ >= 0
            ? static_cast<std::size_t>(n_)
            : ls.size();
    append_lines(input, ls, 0, take, &out);
    return {std::move(out), 0, {}};
  }

  Streamability streamability() const override {
    return Streamability::kPrefix;
  }
  std::unique_ptr<StreamProcessor> stream_processor() const override {
    return std::make_unique<HeadStreamProcessor>(n_);
  }

 private:
  long n_;
};

// `tail +N`: drop the first N-1 lines, then pass records through — a
// bounded-state per-record stream (the skip counter).
class TailFromStreamProcessor final : public StreamProcessor {
 public:
  explicit TailFromStreamProcessor(long from_line)
      : skip_(from_line > 0 ? from_line - 1 : 0) {}

  bool process(std::string_view block, std::string* out) override {
    if (skip_ == 0) {  // steady state: pure pass-through
      out->append(block);
      return true;
    }
    auto ls = text::lines(block);
    std::size_t drop = ls.size();
    if (skip_ < static_cast<long>(ls.size()))
      drop = static_cast<std::size_t>(skip_);
    skip_ -= static_cast<long>(drop);
    append_lines(block, ls, drop, ls.size(), out);
    return true;
  }

 private:
  long skip_;
};

// `tail -n N`: a ring buffer of the last N records — the window is N lines,
// regardless of input size. Nothing is final until end of input (any record
// can still be evicted), so push() emits nothing and finish() flushes the
// ring. The missing-final-newline audit carries through: the ring remembers
// whether the last absorbed record was terminated, so an unterminated last
// input line stays unterminated like GNU tail (and like execute()).
class TailLastWindowProcessor final : public WindowProcessor {
 public:
  explicit TailLastWindowProcessor(long n)
      : limit_(n > 0 ? static_cast<std::size_t>(n) : 0) {}

  void push(std::string_view block, std::string* out) override {
    (void)out;
    if (block.empty()) return;
    terminated_ = block.back() == '\n';
    if (limit_ == 0) return;
    auto ls = text::lines(block);
    // A block with >= N lines replaces the whole window: everything held
    // so far (and the block's own earlier lines) is evicted unseen, so
    // copy only the last N instead of churning one string per input line.
    std::size_t first = 0;
    if (ls.size() >= limit_) {
      first = ls.size() - limit_;
      ring_.clear();
      bytes_ = 0;
    }
    for (std::size_t i = first; i < ls.size(); ++i) {
      if (ring_.size() == limit_) {
        // Steady state: recycle the evictee's allocation for the newcomer.
        std::string recycled = std::move(ring_.front());
        ring_.pop_front();
        bytes_ -= recycled.size();
        recycled.assign(ls[i]);
        bytes_ += recycled.size();
        ring_.push_back(std::move(recycled));
      } else {
        ring_.emplace_back(ls[i]);
        bytes_ += ls[i].size();
      }
    }
  }

  void finish(const Sink& sink) override {
    std::string buf;
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      buf += ring_[i];
      if (i + 1 < ring_.size() || terminated_) buf.push_back('\n');
      if (buf.size() >= kFlushBytes) {
        if (!sink(buf)) return;
        buf.clear();
      }
    }
    if (!buf.empty()) sink(buf);
  }

  std::size_t state_bytes() const override {
    return bytes_ + ring_.size() * sizeof(std::string);
  }

 private:
  static constexpr std::size_t kFlushBytes = 64 << 10;
  const std::size_t limit_;
  std::deque<std::string> ring_;
  std::size_t bytes_ = 0;
  bool terminated_ = true;
};

class TailCommand final : public Command {
 public:
  // from_line > 0: `tail +N` (output starting at line N).
  // last_n >= 0: `tail -n N` (output the final N lines).
  TailCommand(std::string name, long from_line, long last_n)
      : Command(std::move(name)), from_line_(from_line), last_n_(last_n) {}

  Result execute(std::string_view input) const override {
    auto ls = text::lines(input);
    std::string out;
    std::size_t begin = 0;
    if (from_line_ > 0) {
      begin = static_cast<std::size_t>(from_line_ - 1);
    } else if (ls.size() > static_cast<std::size_t>(last_n_)) {
      begin = ls.size() - static_cast<std::size_t>(last_n_);
    }
    append_lines(input, ls, begin, ls.size(), &out);
    return {std::move(out), 0, {}};
  }

  Streamability streamability() const override {
    return from_line_ > 0 ? Streamability::kPerRecord
                          : Streamability::kWindow;
  }
  std::unique_ptr<StreamProcessor> stream_processor() const override {
    if (from_line_ <= 0) return nullptr;
    return std::make_unique<TailFromStreamProcessor>(from_line_);
  }
  std::unique_ptr<WindowProcessor> window_processor() const override {
    if (from_line_ > 0) return nullptr;
    return std::make_unique<TailLastWindowProcessor>(last_n_);
  }

 private:
  long from_line_;
  long last_n_;
};

}  // namespace

CommandPtr make_head(const Argv& argv, std::string* error) {
  long n = 10;
  for (std::size_t i = 1; i < argv.size(); ++i) {
    const std::string& a = argv[i];
    if (a == "-n") {
      if (i + 1 >= argv.size()) {
        if (error) *error = "head: -n needs a count";
        return nullptr;
      }
      auto v = parse_count(argv[++i]);
      if (!v) {
        if (error) *error = "head: bad count";
        return nullptr;
      }
      n = *v;
    } else if (a.size() >= 2 && a[0] == '-') {
      auto v = parse_count(a.substr(1));
      if (!v) {
        if (error) *error = "head: unsupported flag " + a;
        return nullptr;
      }
      n = *v;
    } else {
      if (error) *error = "head: file operands not supported";
      return nullptr;
    }
  }
  return std::make_shared<HeadCommand>(argv_to_display(argv), n);
}

CommandPtr make_tail(const Argv& argv, std::string* error) {
  long from_line = 0, last_n = 10;
  // GNU treats `tail +0` / `tail -n +0` like +1: output the whole input.
  auto from = [](long n) { return n > 0 ? n : 1; };
  for (std::size_t i = 1; i < argv.size(); ++i) {
    const std::string& a = argv[i];
    if (a == "-n") {
      if (i + 1 >= argv.size()) {
        if (error) *error = "tail: -n needs a count";
        return nullptr;
      }
      const std::string& v = argv[++i];
      if (!v.empty() && v[0] == '+') {
        auto n = parse_count(std::string_view(v).substr(1));
        if (!n) {
          if (error) *error = "tail: bad count";
          return nullptr;
        }
        from_line = from(*n);
      } else {
        auto n = parse_count(v);
        if (!n) {
          if (error) *error = "tail: bad count";
          return nullptr;
        }
        last_n = *n;
      }
    } else if (!a.empty() && a[0] == '+') {
      auto n = parse_count(std::string_view(a).substr(1));
      if (!n) {
        if (error) *error = "tail: bad count";
        return nullptr;
      }
      from_line = from(*n);
    } else if (a.size() >= 2 && a[0] == '-') {
      auto n = parse_count(std::string_view(a).substr(1));
      if (!n) {
        if (error) *error = "tail: unsupported flag " + a;
        return nullptr;
      }
      last_n = *n;
    } else {
      if (error) *error = "tail: file operands not supported";
      return nullptr;
    }
  }
  return std::make_shared<TailCommand>(argv_to_display(argv), from_line,
                                       last_n);
}

}  // namespace kq::cmd
