// Built-in `head` and `tail`. head: default 10 lines, -N, -n N.
// tail: -n N (last N lines), +N / -n +N (from line N onward, the form whose
// combiner provably does not exist — Table 9).

#include <cctype>
#include <optional>

#include "text/streams.h"
#include "unixcmd/builtins.h"

namespace kq::cmd {
namespace {

std::optional<long> parse_count(std::string_view s) {
  if (s.empty()) return std::nullopt;
  long v = 0;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
    v = v * 10 + (c - '0');
  }
  return v;
}

class HeadCommand final : public Command {
 public:
  HeadCommand(std::string name, long n) : Command(std::move(name)), n_(n) {}

  Result execute(std::string_view input) const override {
    std::string out;
    long emitted = 0;
    for (std::string_view line : text::lines(input)) {
      if (emitted >= n_) break;
      out += line;
      out.push_back('\n');
      ++emitted;
    }
    return {std::move(out), 0, {}};
  }

 private:
  long n_;
};

class TailCommand final : public Command {
 public:
  // from_line > 0: `tail +N` (output starting at line N).
  // last_n >= 0: `tail -n N` (output the final N lines).
  TailCommand(std::string name, long from_line, long last_n)
      : Command(std::move(name)), from_line_(from_line), last_n_(last_n) {}

  Result execute(std::string_view input) const override {
    auto ls = text::lines(input);
    std::string out;
    std::size_t begin = 0;
    if (from_line_ > 0) {
      begin = static_cast<std::size_t>(from_line_ - 1);
    } else if (ls.size() > static_cast<std::size_t>(last_n_)) {
      begin = ls.size() - static_cast<std::size_t>(last_n_);
    }
    for (std::size_t i = begin; i < ls.size(); ++i) {
      out += ls[i];
      out.push_back('\n');
    }
    return {std::move(out), 0, {}};
  }

 private:
  long from_line_;
  long last_n_;
};

}  // namespace

CommandPtr make_head(const Argv& argv, std::string* error) {
  long n = 10;
  for (std::size_t i = 1; i < argv.size(); ++i) {
    const std::string& a = argv[i];
    if (a == "-n") {
      if (i + 1 >= argv.size()) {
        if (error) *error = "head: -n needs a count";
        return nullptr;
      }
      auto v = parse_count(argv[++i]);
      if (!v) {
        if (error) *error = "head: bad count";
        return nullptr;
      }
      n = *v;
    } else if (a.size() >= 2 && a[0] == '-') {
      auto v = parse_count(a.substr(1));
      if (!v) {
        if (error) *error = "head: unsupported flag " + a;
        return nullptr;
      }
      n = *v;
    } else {
      if (error) *error = "head: file operands not supported";
      return nullptr;
    }
  }
  return std::make_shared<HeadCommand>(argv_to_display(argv), n);
}

CommandPtr make_tail(const Argv& argv, std::string* error) {
  long from_line = 0, last_n = 10;
  for (std::size_t i = 1; i < argv.size(); ++i) {
    const std::string& a = argv[i];
    if (a == "-n") {
      if (i + 1 >= argv.size()) {
        if (error) *error = "tail: -n needs a count";
        return nullptr;
      }
      const std::string& v = argv[++i];
      if (!v.empty() && v[0] == '+') {
        auto n = parse_count(v.substr(1));
        if (!n) {
          if (error) *error = "tail: bad count";
          return nullptr;
        }
        from_line = *n;
      } else {
        auto n = parse_count(v);
        if (!n) {
          if (error) *error = "tail: bad count";
          return nullptr;
        }
        last_n = *n;
      }
    } else if (!a.empty() && a[0] == '+') {
      auto n = parse_count(a.substr(1));
      if (!n) {
        if (error) *error = "tail: bad count";
        return nullptr;
      }
      from_line = *n;
    } else if (a.size() >= 2 && a[0] == '-') {
      auto n = parse_count(a.substr(1));
      if (!n) {
        if (error) *error = "tail: unsupported flag " + a;
        return nullptr;
      }
      last_n = *n;
    } else {
      if (error) *error = "tail: file operands not supported";
      return nullptr;
    }
  }
  return std::make_shared<TailCommand>(argv_to_display(argv), from_line,
                                       last_n);
}

}  // namespace kq::cmd
