// Built-in `grep` over the BRE engine. Flags: -v (invert), -c (count),
// -i (case-insensitive), combined forms (-vc, -vi, -vci). Exit status
// follows grep: 0 if any line selected, 1 otherwise.

#include <cctype>

#include "regex/regex.h"
#include "text/streams.h"
#include "text/strings.h"
#include "unixcmd/builtins.h"

namespace kq::cmd {
namespace {

class GrepCommand final : public Command {
 public:
  GrepCommand(std::string name, regex::Regex re, bool invert, bool count,
              bool fold)
      : Command(std::move(name)), re_(std::move(re)), invert_(invert),
        count_(count), fold_(fold) {}

  Result execute(std::string_view input) const override {
    std::string lowered;
    std::uint64_t selected = 0;
    std::string out;
    for (std::string_view line : text::lines(input)) {
      bool hit;
      if (fold_) {
        lowered = text::to_lower(line);
        hit = re_.search(lowered);
      } else {
        hit = re_.search(line);
      }
      if (hit == invert_) continue;
      ++selected;
      if (!count_) {
        out += line;
        out.push_back('\n');
      }
    }
    if (count_) {
      out = std::to_string(selected);
      out.push_back('\n');
    }
    return {std::move(out), selected > 0 ? 0 : 1, {}};
  }

  // Plain grep is a pure per-line filter (GNU grep re-terminates a matched
  // unterminated final line, so even that case composes per block); -c
  // aggregates a global count and must see the whole input.
  Streamability streamability() const override {
    return count_ ? Streamability::kNone : Streamability::kPerRecord;
  }
  std::unique_ptr<StreamProcessor> stream_processor() const override {
    if (count_) return nullptr;
    return std::make_unique<PerBlockProcessor>(*this);
  }

 private:
  regex::Regex re_;
  bool invert_, count_, fold_;
};

}  // namespace

CommandPtr make_grep(const Argv& argv, std::string* error) {
  bool invert = false, count = false, fold = false;
  std::string pattern;
  bool have_pattern = false;
  for (std::size_t i = 1; i < argv.size(); ++i) {
    const std::string& a = argv[i];
    if (!have_pattern && a.size() >= 2 && a[0] == '-') {
      for (std::size_t j = 1; j < a.size(); ++j) {
        switch (a[j]) {
          case 'v': invert = true; break;
          case 'c': count = true; break;
          case 'i': fold = true; break;
          case 'e': break;  // -e PATTERN handled by position
          default:
            if (error) *error = "grep: unsupported flag";
            return nullptr;
        }
      }
    } else if (!have_pattern) {
      pattern = a;
      have_pattern = true;
    } else {
      if (error) *error = "grep: file operands not supported";
      return nullptr;
    }
  }
  if (!have_pattern) {
    if (error) *error = "grep: missing pattern";
    return nullptr;
  }
  // Case-insensitivity: we lower-case both the scanned line and the literal
  // characters of the pattern (classes already cover both cases or are
  // lowered the same way).
  std::string compiled_pattern = fold ? text::to_lower(pattern) : pattern;
  std::string err;
  auto re = regex::Regex::compile(compiled_pattern, &err);
  if (!re) {
    if (error) *error = "grep: bad pattern: " + err;
    return nullptr;
  }
  return std::make_shared<GrepCommand>(argv_to_display(argv), std::move(*re),
                                       invert, count, fold);
}

}  // namespace kq::cmd
