// Built-in `wc`: line/word/char/byte counts (-l/-w/-m/-c; no flags means
// -lwc like GNU). Reading from standard input, GNU wc prints bare numbers
// for a single count and right-aligned 7-column fields for multiple counts,
// in the fixed order lines, words, chars, bytes; we reproduce both formats.
// -m counts characters as UTF-8 code points (continuation bytes excluded),
// which matches GNU under a UTF-8 locale and equals -c on ASCII input.
//
// wc's window is three integers and a word-boundary flag, so it is the
// cheapest kWindow command: the processor absorbs blocks into counters and
// emits one line at end of input. execute() runs the same processor over
// the whole input, keeping the batch and window paths byte-identical.

#include <cctype>

#include "unixcmd/builtins.h"

namespace kq::cmd {
namespace {

struct WcFlags {
  bool lines = false;
  bool words = false;
  bool chars = false;  // -m
  bool bytes = false;
};

class WcWindowProcessor final : public WindowProcessor {
 public:
  explicit WcWindowProcessor(WcFlags flags) : flags_(flags) {}

  void push(std::string_view block, std::string* out) override {
    (void)out;  // nothing is final until end of input
    bytes_ += block.size();
    for (char ch : block) {
      if (ch == '\n') ++lines_;
      // UTF-8 continuation bytes (10xxxxxx) extend the current character.
      if ((static_cast<unsigned char>(ch) & 0xC0) != 0x80) ++chars_;
      if (std::isspace(static_cast<unsigned char>(ch))) {
        in_word_ = false;
      } else if (!in_word_) {
        in_word_ = true;
        ++words_;
      }
    }
  }

  void finish(const Sink& sink) override {
    std::vector<std::uint64_t> selected;
    if (flags_.lines) selected.push_back(lines_);
    if (flags_.words) selected.push_back(words_);
    if (flags_.chars) selected.push_back(chars_);
    if (flags_.bytes) selected.push_back(bytes_);
    std::string out;
    if (selected.size() == 1) {
      out = std::to_string(selected[0]);
    } else {
      // GNU pads each column to width 7 when reading a pipe.
      for (std::size_t i = 0; i < selected.size(); ++i) {
        std::string v = std::to_string(selected[i]);
        if (i != 0) out.push_back(' ');
        if (v.size() < 7) out.append(7 - v.size(), ' ');
        out += v;
      }
    }
    out.push_back('\n');
    sink(out);
  }

  std::size_t state_bytes() const override { return sizeof(*this); }

 private:
  const WcFlags flags_;
  std::uint64_t lines_ = 0;
  std::uint64_t words_ = 0;
  std::uint64_t chars_ = 0;
  std::uint64_t bytes_ = 0;
  bool in_word_ = false;
};

class WcCommand final : public Command {
 public:
  WcCommand(std::string name, WcFlags flags)
      : Command(std::move(name)), flags_(flags) {}

  Result execute(std::string_view input) const override {
    WcWindowProcessor window(flags_);
    std::string out;
    window.push(input, &out);
    window.finish([&out](std::string_view tail) {
      out.append(tail);
      return true;
    });
    return {std::move(out), 0, {}};
  }

  Streamability streamability() const override {
    return Streamability::kWindow;
  }
  std::unique_ptr<WindowProcessor> window_processor() const override {
    return std::make_unique<WcWindowProcessor>(flags_);
  }

 private:
  WcFlags flags_;
};

}  // namespace

CommandPtr make_wc(const Argv& argv, std::string* error) {
  WcFlags flags;
  for (std::size_t i = 1; i < argv.size(); ++i) {
    const std::string& a = argv[i];
    if (a.size() < 2 || a[0] != '-') {
      if (error) *error = "wc: unsupported operand " + a;
      return nullptr;
    }
    for (std::size_t j = 1; j < a.size(); ++j) {
      switch (a[j]) {
        case 'l': flags.lines = true; break;
        case 'w': flags.words = true; break;
        case 'm': flags.chars = true; break;
        case 'c': flags.bytes = true; break;
        default:
          if (error) *error = "wc: unsupported flag";
          return nullptr;
      }
    }
  }
  if (!flags.lines && !flags.words && !flags.chars && !flags.bytes)
    flags.lines = flags.words = flags.bytes = true;
  return std::make_shared<WcCommand>(argv_to_display(argv), flags);
}

}  // namespace kq::cmd
