// Built-in `wc`: line/word/byte counts. Reading from standard input, GNU wc
// prints bare numbers for a single count and right-aligned columns for
// multiple counts; we reproduce both formats.

#include <cctype>

#include "unixcmd/builtins.h"

namespace kq::cmd {
namespace {

struct Counts {
  std::uint64_t lines = 0;
  std::uint64_t words = 0;
  std::uint64_t bytes = 0;
};

Counts count(std::string_view input) {
  Counts c;
  c.bytes = input.size();
  bool in_word = false;
  for (char ch : input) {
    if (ch == '\n') ++c.lines;
    if (std::isspace(static_cast<unsigned char>(ch))) {
      in_word = false;
    } else if (!in_word) {
      in_word = true;
      ++c.words;
    }
  }
  return c;
}

class WcCommand final : public Command {
 public:
  WcCommand(std::string name, bool lines, bool words, bool bytes)
      : Command(std::move(name)), lines_(lines), words_(words),
        bytes_(bytes) {}

  Result execute(std::string_view input) const override {
    Counts c = count(input);
    std::vector<std::uint64_t> selected;
    if (lines_) selected.push_back(c.lines);
    if (words_) selected.push_back(c.words);
    if (bytes_) selected.push_back(c.bytes);
    std::string out;
    if (selected.size() == 1) {
      out = std::to_string(selected[0]);
    } else {
      // GNU pads each column to width 7 when reading a pipe.
      for (std::size_t i = 0; i < selected.size(); ++i) {
        std::string v = std::to_string(selected[i]);
        if (i != 0) out.push_back(' ');
        if (v.size() < 7) out.append(7 - v.size(), ' ');
        out += v;
      }
    }
    out.push_back('\n');
    return {std::move(out), 0, {}};
  }

 private:
  bool lines_, words_, bytes_;
};

}  // namespace

CommandPtr make_wc(const Argv& argv, std::string* error) {
  bool lines = false, words = false, bytes = false;
  for (std::size_t i = 1; i < argv.size(); ++i) {
    const std::string& a = argv[i];
    if (a.size() < 2 || a[0] != '-') {
      if (error) *error = "wc: unsupported operand " + a;
      return nullptr;
    }
    for (std::size_t j = 1; j < a.size(); ++j) {
      switch (a[j]) {
        case 'l': lines = true; break;
        case 'w': words = true; break;
        case 'c': bytes = true; break;
        default:
          if (error) *error = "wc: unsupported flag";
          return nullptr;
      }
    }
  }
  if (!lines && !words && !bytes) lines = words = bytes = true;
  return std::make_shared<WcCommand>(argv_to_display(argv), lines, words,
                                     bytes);
}

}  // namespace kq::cmd
