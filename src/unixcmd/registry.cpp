#include "unixcmd/registry.h"

#include "text/shellwords.h"
#include "unixcmd/builtins.h"
#include "unixcmd/sort_cmd.h"

namespace kq::cmd {

CommandPtr make_command(const std::vector<std::string>& argv,
                        std::string* error, const vfs::Vfs* fs) {
  if (argv.empty()) {
    if (error) *error = "empty command";
    return nullptr;
  }
  // Strip a leading path (e.g. /usr/bin/tr).
  std::string prog = argv[0];
  if (auto slash = prog.rfind('/'); slash != std::string::npos)
    prog = prog.substr(slash + 1);

  if (prog == "cat") return make_cat(argv, fs, error);
  if (prog == "tr") return make_tr(argv, error);
  if (prog == "sort") return make_sort_command(argv, error);
  if (prog == "uniq") return make_uniq(argv, error);
  if (prog == "wc") return make_wc(argv, error);
  if (prog == "grep") return make_grep(argv, error);
  if (prog == "cut") return make_cut(argv, error);
  if (prog == "sed") return make_sed(argv, error);
  if (prog == "awk" || prog == "gawk" || prog == "mawk")
    return make_awk(argv, error);
  if (prog == "head") return make_head(argv, error);
  if (prog == "tail") return make_tail(argv, error);
  if (prog == "comm") return make_comm(argv, fs, error);
  if (prog == "xargs") return make_xargs(argv, fs, error);
  if (prog == "col") return make_col(argv, error);
  if (prog == "paste") return make_paste(argv, error);
  if (prog == "fmt") return make_fmt(argv, error);
  if (prog == "rev") return make_rev(argv, error);
  if (prog == "iconv") return make_iconv(argv, error);

  if (error) *error = "unknown command: " + prog;
  return nullptr;
}

CommandPtr make_command_line(std::string_view command_line, std::string* error,
                             const vfs::Vfs* fs) {
  auto words = text::shell_split(command_line);
  if (!words) {
    if (error) *error = "unterminated quote in command line";
    return nullptr;
  }
  return make_command(*words, error, fs);
}

bool is_builtin(std::string_view program) {
  static constexpr std::string_view kBuiltins[] = {
      "cat", "tr", "sort", "uniq", "wc", "grep", "cut", "sed", "awk",
      "gawk", "mawk", "head", "tail", "comm", "xargs", "col", "fmt",
      "rev", "iconv", "paste"};
  std::string_view prog = program;
  if (auto slash = prog.rfind('/'); slash != std::string_view::npos)
    prog = prog.substr(slash + 1);
  for (std::string_view b : kBuiltins)
    if (b == prog) return true;
  return false;
}

}  // namespace kq::cmd
