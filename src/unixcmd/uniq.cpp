// Built-in `uniq`: collapse adjacent duplicate lines. Supported flags, all
// combinable like GNU uniq:
//   -c  prefix each kept line with its run length right-aligned in a
//       7-column field (GNU format)
//   -d  print only the first line of runs longer than one
//   -u  print only lines that do not repeat (-d -u together prints nothing,
//       matching GNU)
//
// uniq is the canonical window-bounded command (Streamability::kWindow):
// the only state that later input can still change is the *current* run
// (its line and count), so the window processor emits each run the moment
// the next one starts and flushes the final run at end of input. execute()
// runs the same processor over the whole input, so the batch and window
// paths are byte-identical by construction.

#include "text/streams.h"
#include "unixcmd/builtins.h"

namespace kq::cmd {
namespace {

struct UniqFlags {
  bool count = false;      // -c
  bool dup_only = false;   // -d
  bool uniq_only = false;  // -u
};

class UniqWindowProcessor final : public WindowProcessor {
 public:
  explicit UniqWindowProcessor(UniqFlags flags) : flags_(flags) {}

  void push(std::string_view block, std::string* out) override {
    for (std::string_view line : text::lines(block)) {
      if (have_run_ && line == run_line_) {
        ++run_count_;
        continue;
      }
      append_run(out);
      run_line_.assign(line);
      run_count_ = 1;
      have_run_ = true;
    }
  }

  void finish(const Sink& sink) override {
    std::string out;
    append_run(&out);
    if (!out.empty()) sink(out);
  }

  std::size_t state_bytes() const override { return run_line_.size(); }

 private:
  // Flushes the completed run, applying the -c/-d/-u selection. Output
  // lines are always newline-terminated (GNU uniq re-terminates an
  // unterminated final input line).
  void append_run(std::string* out) {
    if (!have_run_) return;
    const bool keep =
        run_count_ > 1 ? !flags_.uniq_only : !flags_.dup_only;
    if (!keep) return;
    if (flags_.count) {
      std::string count = std::to_string(run_count_);
      if (count.size() < 7) out->append(7 - count.size(), ' ');
      *out += count;
      out->push_back(' ');
    }
    *out += run_line_;
    out->push_back('\n');
  }

  const UniqFlags flags_;
  std::string run_line_;
  std::size_t run_count_ = 0;
  bool have_run_ = false;
};

class UniqCommand final : public Command {
 public:
  UniqCommand(std::string name, UniqFlags flags)
      : Command(std::move(name)), flags_(flags) {}

  Result execute(std::string_view input) const override {
    UniqWindowProcessor window(flags_);
    std::string out;
    out.reserve(input.size() / 2);
    window.push(input, &out);
    window.finish([&out](std::string_view tail) {
      out.append(tail);
      return true;
    });
    return {std::move(out), 0, {}};
  }

  Streamability streamability() const override {
    return Streamability::kWindow;
  }
  std::unique_ptr<WindowProcessor> window_processor() const override {
    return std::make_unique<UniqWindowProcessor>(flags_);
  }

 private:
  UniqFlags flags_;
};

}  // namespace

bool is_uniq_command(const Command& command) {
  return dynamic_cast<const UniqCommand*>(&command) != nullptr;
}

CommandPtr make_uniq(const Argv& argv, std::string* error) {
  UniqFlags flags;
  for (std::size_t i = 1; i < argv.size(); ++i) {
    const std::string& a = argv[i];
    if (a.size() < 2 || a[0] != '-') {
      if (error) *error = "uniq: unsupported operand " + a;
      return nullptr;
    }
    for (std::size_t j = 1; j < a.size(); ++j) {
      switch (a[j]) {
        case 'c': flags.count = true; break;
        case 'd': flags.dup_only = true; break;
        case 'u': flags.uniq_only = true; break;
        default:
          if (error) *error = "uniq: unsupported flag " + a;
          return nullptr;
      }
    }
  }
  return std::make_shared<UniqCommand>(argv_to_display(argv), flags);
}

}  // namespace kq::cmd
