// Built-in `uniq`: collapse adjacent duplicate lines; -c prefixes each kept
// line with its run length right-aligned in a 7-column field (GNU format).

#include "text/streams.h"
#include "unixcmd/builtins.h"

namespace kq::cmd {
namespace {

class UniqCommand final : public Command {
 public:
  UniqCommand(std::string name, bool count)
      : Command(std::move(name)), count_(count) {}

  Result execute(std::string_view input) const override {
    auto ls = text::lines(input);
    std::string out;
    out.reserve(input.size());
    std::size_t i = 0;
    while (i < ls.size()) {
      std::size_t j = i + 1;
      while (j < ls.size() && ls[j] == ls[i]) ++j;
      if (count_) {
        std::string count = std::to_string(j - i);
        if (count.size() < 7) out.append(7 - count.size(), ' ');
        out += count;
        out.push_back(' ');
      }
      out += ls[i];
      out.push_back('\n');
      i = j;
    }
    return {std::move(out), 0, {}};
  }

 private:
  bool count_;
};

}  // namespace

CommandPtr make_uniq(const Argv& argv, std::string* error) {
  bool count = false;
  for (std::size_t i = 1; i < argv.size(); ++i) {
    if (argv[i] == "-c") {
      count = true;
    } else {
      if (error) *error = "uniq: unsupported flag " + argv[i];
      return nullptr;
    }
  }
  return std::make_shared<UniqCommand>(argv_to_display(argv), count);
}

}  // namespace kq::cmd
