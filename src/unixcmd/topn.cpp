#include "unixcmd/topn.h"

#include <cstdint>
#include <set>
#include <utility>

#include "text/streams.h"

namespace kq::cmd {
namespace {

// The bounded top-N window: an ordered multiset of at most `limit` records
// under (spec order, input sequence). The sequence tie-break reproduces
// stable_sort — among compare()-equal lines the earlier input line comes
// first — so iterating the set IS the first N lines of `sort <spec>`.
class TopNWindowProcessor final : public WindowProcessor {
 public:
  TopNWindowProcessor(const SortSpec* spec, long n)
      : spec_(spec),
        unique_(spec->unique()),
        limit_(n > 0 ? static_cast<std::size_t>(n) : 0),
        set_(Cmp{spec}) {}

  void push(std::string_view block, std::string* out) override {
    (void)out;  // nothing is final until end of input
    if (limit_ == 0) return;
    for (std::string_view line : text::lines(block)) {
      ++seq_;
      if (set_.size() == limit_ &&
          spec_->compare(line, std::prev(set_.end())->line) >= 0) {
        // Full window and the line sorts at-or-after the current maximum:
        // a later-sequence tie or greater line can never enter the top N
        // (and under -u an equal key is a duplicate of the maximum).
        continue;
      }
      auto it = set_.lower_bound(line);
      if (unique_ && it != set_.end() &&
          spec_->compare(line, it->line) == 0) {
        // -u keeps the first occurrence of each key class, and sequence
        // numbers only grow, so the resident representative wins.
        continue;
      }
      bytes_ += line.size() + kPerEntryOverhead;
      set_.emplace_hint(it, Entry{std::string(line), seq_});
      if (set_.size() > limit_) {
        auto last = std::prev(set_.end());
        bytes_ -= last->line.size() + kPerEntryOverhead;
        set_.erase(last);
      }
    }
  }

  void finish(const Sink& sink) override {
    std::string buf;
    for (const Entry& e : set_) {
      buf += e.line;
      buf.push_back('\n');
      if (buf.size() >= kFlushBytes) {
        if (!sink(buf)) return;
        buf.clear();
      }
    }
    if (!buf.empty()) sink(buf);
  }

  std::size_t state_bytes() const override { return bytes_; }

  bool drain_sorted_run(std::string* out) override {
    out->clear();
    out->reserve(bytes_);
    for (const Entry& e : set_) {
      *out += e.line;
      out->push_back('\n');
    }
    set_.clear();
    bytes_ = 0;
    // seq_ keeps running: within the merged union, run order equals
    // sequence order, so cross-epoch stability falls to the merge's
    // run-index tie-break.
    return true;
  }

  std::optional<std::size_t> output_limit() const override { return limit_; }

 private:
  struct Entry {
    std::string line;
    std::uint64_t seq;
  };
  // Strict weak order (spec order, then sequence). A string_view probe
  // compares as sequence -inf: lower_bound(line) is the first entry with
  // compare >= 0, which doubles as the -u duplicate check and the
  // insertion hint.
  struct Cmp {
    using is_transparent = void;
    const SortSpec* spec;
    bool operator()(const Entry& a, const Entry& b) const {
      int c = spec->compare(a.line, b.line);
      if (c != 0) return c < 0;
      return a.seq < b.seq;
    }
    bool operator()(std::string_view probe, const Entry& b) const {
      return spec->compare(probe, b.line) <= 0;
    }
    bool operator()(const Entry& a, std::string_view probe) const {
      return spec->compare(a.line, probe) < 0;
    }
  };
  // Rough allocator cost of a multiset node beyond the line's own bytes.
  static constexpr std::size_t kPerEntryOverhead =
      sizeof(Entry) + 4 * sizeof(void*);
  static constexpr std::size_t kFlushBytes = 64 << 10;

  const SortSpec* spec_;
  const bool unique_;
  const std::size_t limit_;
  std::multiset<Entry, Cmp> set_;
  std::uint64_t seq_ = 0;
  std::size_t bytes_ = 0;
};

// Two window processors composed into one node: `first` (uniq's run
// window) feeds `second` (the top-n window). push() routes first's
// already-final emission into second; the residue first holds at end of
// input reaches second through seal(), which finish() runs itself when the
// runtime has not (the spill path seals explicitly before the final
// drain).
class WindowPipeProcessor final : public WindowProcessor {
 public:
  WindowPipeProcessor(std::unique_ptr<WindowProcessor> first,
                      std::unique_ptr<WindowProcessor> second)
      : first_(std::move(first)), second_(std::move(second)) {}

  void push(std::string_view block, std::string* out) override {
    buf_.clear();
    first_->push(block, &buf_);
    if (!buf_.empty()) second_->push(buf_, out);
  }

  void seal(std::string* out) override {
    if (sealed_) return;
    sealed_ = true;
    first_->finish([this, out](std::string_view piece) {
      if (!piece.empty()) second_->push(piece, out);
      return true;
    });
    second_->seal(out);
  }

  void finish(const Sink& sink) override {
    std::string sealed_out;
    seal(&sealed_out);
    if (!sealed_out.empty() && !sink(sealed_out)) return;
    second_->finish(sink);
  }

  std::size_t state_bytes() const override {
    return first_->state_bytes() + second_->state_bytes();
  }

  bool drain_sorted_run(std::string* out) override {
    // Only the sorted second window exports; first's bounded residue (a
    // pending uniq run) stays resident until seal().
    return second_->drain_sorted_run(out);
  }

  std::optional<std::size_t> output_limit() const override {
    return second_->output_limit();
  }

 private:
  std::unique_ptr<WindowProcessor> first_;
  std::unique_ptr<WindowProcessor> second_;
  std::string buf_;  // first's per-block emission, reused across blocks
  bool sealed_ = false;
};

// Runs a command's window processor over the whole input — execute() for
// the fused commands, byte-identical to the streamed path by construction.
Result run_window(const Command& command, std::string_view input) {
  auto window = command.window_processor();
  std::string out;
  window->push(input, &out);
  window->finish([&out](std::string_view tail) {
    out.append(tail);
    return true;
  });
  return {std::move(out), 0, {}};
}

class TopNCommand final : public Command {
 public:
  TopNCommand(std::string display, std::shared_ptr<const SortSpec> spec,
              long n)
      : Command(std::move(display)), spec_(std::move(spec)), n_(n) {}

  Result execute(std::string_view input) const override {
    // The window processor is the semantics: run it over the whole input,
    // which also keeps execute() at O(N) extra memory.
    return run_window(*this, input);
  }

  Streamability streamability() const override {
    return Streamability::kWindow;
  }
  std::unique_ptr<WindowProcessor> window_processor() const override {
    return std::make_unique<TopNWindowProcessor>(spec_.get(), n_);
  }

  const std::shared_ptr<const SortSpec>& spec() const { return spec_; }

 private:
  std::shared_ptr<const SortSpec> spec_;
  long n_;
};

class WindowTopNCommand final : public Command {
 public:
  WindowTopNCommand(std::string display, CommandPtr first,
                    std::shared_ptr<const SortSpec> spec, long n)
      : Command(std::move(display)),
        first_(std::move(first)),
        spec_(std::move(spec)),
        n_(n) {}

  Result execute(std::string_view input) const override {
    return run_window(*this, input);
  }

  Streamability streamability() const override {
    return Streamability::kWindow;
  }
  std::unique_ptr<WindowProcessor> window_processor() const override {
    return std::make_unique<WindowPipeProcessor>(
        first_->window_processor(),
        std::make_unique<TopNWindowProcessor>(spec_.get(), n_));
  }

  const std::shared_ptr<const SortSpec>& spec() const { return spec_; }

 private:
  CommandPtr first_;
  std::shared_ptr<const SortSpec> spec_;
  long n_;
};

}  // namespace

CommandPtr make_top_n_command(std::shared_ptr<const SortSpec> spec, long n,
                              std::string display) {
  return std::make_shared<TopNCommand>(std::move(display), std::move(spec),
                                       n);
}

CommandPtr make_window_top_n_command(CommandPtr first,
                                     std::shared_ptr<const SortSpec> spec,
                                     long n, std::string display) {
  return std::make_shared<WindowTopNCommand>(
      std::move(display), std::move(first), std::move(spec), n);
}

std::shared_ptr<const SortSpec> fused_sort_spec_of(const Command& command) {
  if (const auto* top = dynamic_cast<const TopNCommand*>(&command))
    return top->spec();
  if (const auto* top = dynamic_cast<const WindowTopNCommand*>(&command))
    return top->spec();
  return nullptr;
}

}  // namespace kq::cmd
