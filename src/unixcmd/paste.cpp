// Built-in `paste - -` (N dashes): groups consecutive input lines into rows
// of N columns joined by tabs (or -d's delimiter). This is the bigram idiom
// from Unix-for-Poets (`paste book shifted_book` approximated in stream
// form). Its output depends on line positions modulo N, so no combiner in
// the DSL exists and the stage correctly stays sequential.

#include "text/streams.h"
#include "unixcmd/builtins.h"

namespace kq::cmd {
namespace {

class PasteCommand final : public Command {
 public:
  PasteCommand(std::string name, int columns, char delim)
      : Command(std::move(name)), columns_(columns), delim_(delim) {}

  Result execute(std::string_view input) const override {
    auto ls = text::lines(input);
    std::string out;
    out.reserve(input.size());
    for (std::size_t i = 0; i < ls.size(); i += static_cast<std::size_t>(
                                                    columns_)) {
      for (int c = 0; c < columns_; ++c) {
        if (c != 0) out.push_back(delim_);
        std::size_t idx = i + static_cast<std::size_t>(c);
        if (idx < ls.size()) out += ls[idx];
      }
      out.push_back('\n');
    }
    return {std::move(out), 0, {}};
  }

 private:
  int columns_;
  char delim_;
};

}  // namespace

CommandPtr make_paste(const Argv& argv, std::string* error) {
  int columns = 0;
  char delim = '\t';
  for (std::size_t i = 1; i < argv.size(); ++i) {
    const std::string& a = argv[i];
    if (a == "-d" && i + 1 < argv.size()) {
      const std::string& d = argv[++i];
      if (d.size() != 1) {
        if (error) *error = "paste: delimiter must be one character";
        return nullptr;
      }
      delim = d[0];
    } else if (a == "-") {
      ++columns;
    } else {
      if (error) *error = "paste: only `paste [-d C] - -...` is supported";
      return nullptr;
    }
  }
  if (columns < 2) {
    if (error) *error = "paste: need at least two '-' operands";
    return nullptr;
  }
  return std::make_shared<PasteCommand>(argv_to_display(argv), columns,
                                        delim);
}

}  // namespace kq::cmd
