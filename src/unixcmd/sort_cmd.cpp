#include "unixcmd/sort_cmd.h"

#include <algorithm>
#include <cctype>
#include <limits>
#include <set>

#include "text/streams.h"

namespace kq::cmd {
namespace {

bool is_blank(char c) { return c == ' ' || c == '\t'; }

// GNU-style numeric comparison of string prefixes: optional blanks, optional
// minus sign, digits, optional fraction. Non-numeric prefixes compare as 0.
struct NumView {
  bool negative = false;
  std::string_view integer;   // leading zeros stripped
  std::string_view fraction;  // trailing zeros stripped
  bool zero() const { return integer.empty() && fraction.empty(); }
};

NumView parse_numeric(std::string_view s) {
  std::size_t i = 0;
  while (i < s.size() && is_blank(s[i])) ++i;
  NumView v;
  if (i < s.size() && s[i] == '-') {
    v.negative = true;
    ++i;
  }
  std::size_t int_start = i;
  while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
  std::string_view integer = s.substr(int_start, i - int_start);
  while (!integer.empty() && integer.front() == '0') integer.remove_prefix(1);
  v.integer = integer;
  if (i < s.size() && s[i] == '.') {
    ++i;
    std::size_t frac_start = i;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
    std::string_view fraction = s.substr(frac_start, i - frac_start);
    while (!fraction.empty() && fraction.back() == '0')
      fraction.remove_suffix(1);
    v.fraction = fraction;
  }
  if (v.zero()) v.negative = false;  // -0 == 0
  return v;
}

int numeric_compare(std::string_view a, std::string_view b) {
  NumView x = parse_numeric(a), y = parse_numeric(b);
  if (x.negative != y.negative) return x.negative ? -1 : 1;
  int sign = x.negative ? -1 : 1;
  if (x.integer.size() != y.integer.size())
    return sign * (x.integer.size() < y.integer.size() ? -1 : 1);
  if (int c = x.integer.compare(y.integer); c != 0)
    return sign * (c < 0 ? -1 : 1);
  if (int c = x.fraction.compare(y.fraction); c != 0)
    return sign * (c < 0 ? -1 : 1);
  return 0;
}

int raw_compare(std::string_view a, std::string_view b) {
  // Bytewise (LC_ALL=C) comparison treating chars as unsigned.
  std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    unsigned char ca = static_cast<unsigned char>(a[i]);
    unsigned char cb = static_cast<unsigned char>(b[i]);
    if (ca != cb) return ca < cb ? -1 : 1;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

int text_compare(std::string_view a, std::string_view b, bool fold,
                 bool dictionary) {
  std::size_t i = 0, j = 0;
  while (true) {
    if (dictionary) {
      auto skippable = [](char c) {
        unsigned char uc = static_cast<unsigned char>(c);
        return !(std::isalnum(uc) || is_blank(c));
      };
      while (i < a.size() && skippable(a[i])) ++i;
      while (j < b.size() && skippable(b[j])) ++j;
    }
    if (i >= a.size() || j >= b.size()) break;
    unsigned char ca = static_cast<unsigned char>(a[i]);
    unsigned char cb = static_cast<unsigned char>(b[j]);
    if (fold) {
      ca = static_cast<unsigned char>(std::toupper(ca));
      cb = static_cast<unsigned char>(std::toupper(cb));
    }
    if (ca != cb) return ca < cb ? -1 : 1;
    ++i;
    ++j;
  }
  bool a_done = i >= a.size(), b_done = j >= b.size();
  if (a_done && b_done) return 0;
  return a_done ? -1 : 1;
}

// Extracts fields `start..end` (1-based; end 0 = end of line). Fields are
// maximal non-blank runs; this simplified model matches GNU for the key
// specs used in the benchmarks (-k1n, -k1,1, -k2).
std::string_view extract_key(std::string_view line, int start_field,
                             int end_field) {
  std::size_t pos = 0;
  int field = 0;
  std::size_t key_begin = line.size();
  std::size_t key_end = line.size();
  while (pos < line.size()) {
    while (pos < line.size() && is_blank(line[pos])) ++pos;
    if (pos >= line.size()) break;
    ++field;
    std::size_t fstart = pos;
    while (pos < line.size() && !is_blank(line[pos])) ++pos;
    if (field == start_field) key_begin = fstart;
    if (end_field != 0 && field == end_field) {
      key_end = pos;
      break;
    }
  }
  if (key_begin >= line.size()) return {};
  if (end_field == 0 || key_end < key_begin) key_end = line.size();
  return line.substr(key_begin, key_end - key_begin);
}

}  // namespace

std::optional<SortSpec> SortSpec::parse(const std::vector<std::string>& flags,
                                        std::string* error) {
  SortSpec spec;
  for (const std::string& f : flags) {
    if (f.rfind("--parallel", 0) == 0) continue;  // accepted, ignored
    if (f == "--stable") {
      spec.stable_only_ = true;
      continue;
    }
    if (f.size() < 2 || f[0] != '-') {
      if (error) *error = "sort: unsupported operand " + f;
      return std::nullopt;
    }
    if (f[1] == 'k') {
      // -kF[.C][opts][,G[.C][opts]]
      SortKey key;
      std::size_t i = 2;
      auto read_int = [&](int& out) {
        // Saturating: a field number past INT_MAX selects a field no line
        // has (like GNU) instead of overflowing into a garbage index.
        std::size_t start = i;
        while (i < f.size() && std::isdigit(static_cast<unsigned char>(f[i])))
          ++i;
        if (i == start) return false;
        auto v = parse_count(std::string_view(f).substr(start, i - start));
        out = static_cast<int>(
            std::min<long>(*v, std::numeric_limits<int>::max()));
        return true;
      };
      if (!read_int(key.start_field)) {
        if (error) *error = "sort: bad key spec " + f;
        return std::nullopt;
      }
      auto read_opts = [&](SortKey& k) {
        while (i < f.size() && f[i] != ',') {
          switch (f[i]) {
            case 'n': k.numeric = true; break;
            case 'r': k.reverse = true; break;
            case 'f': k.fold = true; break;
            case 'd': k.dictionary = true; break;
            default: return false;
          }
          ++i;
        }
        return true;
      };
      if (!read_opts(key)) {
        if (error) *error = "sort: bad key option in " + f;
        return std::nullopt;
      }
      if (i < f.size() && f[i] == ',') {
        ++i;
        if (!read_int(key.end_field)) {
          if (error) *error = "sort: bad key spec " + f;
          return std::nullopt;
        }
        if (!read_opts(key)) {
          if (error) *error = "sort: bad key option in " + f;
          return std::nullopt;
        }
      }
      spec.keys_.push_back(key);
      continue;
    }
    for (std::size_t i = 1; i < f.size(); ++i) {
      switch (f[i]) {
        case 'n': spec.numeric_ = true; break;
        case 'r': spec.reverse_ = true; break;
        case 'f': spec.fold_ = true; break;
        case 'd': spec.dictionary_ = true; break;
        case 'u': spec.unique_ = true; break;
        case 'm': spec.merge_mode_ = true; break;
        case 's': spec.stable_only_ = true; break;
        case 'b': break;  // leading-blank skipping is implied by our keys
        default:
          if (error) *error = std::string("sort: unsupported flag -") + f[i];
          return std::nullopt;
      }
    }
  }
  std::string global;
  if (spec.numeric_) global += "n";
  if (spec.reverse_) global += "r";
  if (spec.fold_) global += "f";
  if (spec.dictionary_) global += "d";
  if (spec.unique_) global += "u";
  // Appended, not `"-" + global`: the rvalue operator+ form trips GCC 12's
  // -Wrestrict false positive inside libstdc++ (GCC PR 105329).
  std::string canon;
  if (!global.empty()) {
    canon = "-";
    canon += global;
  }
  for (const SortKey& k : spec.keys_) {
    if (!canon.empty()) canon += " ";
    canon += "-k";
    canon += std::to_string(k.start_field);
    if (k.end_field) {
      canon += ",";
      canon += std::to_string(k.end_field);
    }
    if (k.numeric) canon += "n";
    if (k.reverse) canon += "r";
    if (k.fold) canon += "f";
  }
  spec.canonical_flags_ = canon;
  return spec;
}

int SortSpec::compare_keys(std::string_view a, std::string_view b) const {
  if (keys_.empty()) {
    if (numeric_) return numeric_compare(a, b);
    if (fold_ || dictionary_) return text_compare(a, b, fold_, dictionary_);
    return raw_compare(a, b);
  }
  for (const SortKey& key : keys_) {
    std::string_view ka = extract_key(a, key.start_field, key.end_field);
    std::string_view kb = extract_key(b, key.start_field, key.end_field);
    bool numeric = key.numeric || numeric_;
    bool fold = key.fold || fold_;
    bool dict = key.dictionary || dictionary_;
    int c = numeric ? numeric_compare(ka, kb)
                    : (fold || dict ? text_compare(ka, kb, fold, dict)
                                    : raw_compare(ka, kb));
    if (key.reverse) c = -c;
    if (c != 0) return c;
  }
  return 0;
}

int SortSpec::compare(std::string_view a, std::string_view b) const {
  int c = compare_keys(a, b);
  if (c == 0 && !stable_only_ && !unique_) c = raw_compare(a, b);
  return reverse_ ? -c : c;
}

std::string SortSpec::sort_stream(std::string_view input) const {
  auto ls = text::lines(input);
  std::stable_sort(ls.begin(), ls.end(),
                   [this](std::string_view a, std::string_view b) {
                     return compare(a, b) < 0;
                   });
  if (unique_) {
    std::vector<std::string_view> kept;
    kept.reserve(ls.size());
    for (std::string_view l : ls) {
      if (!kept.empty() && compare_keys(kept.back(), l) == 0) continue;
      kept.push_back(l);
    }
    ls = std::move(kept);
  }
  return text::unlines_views(ls);
}

std::string SortSpec::merge_streams(
    const std::vector<std::string_view>& streams) const {
  std::vector<std::vector<std::string_view>> queues;
  queues.reserve(streams.size());
  for (std::string_view s : streams) queues.push_back(text::lines(s));
  std::vector<std::size_t> idx(streams.size(), 0);
  std::vector<std::string_view> out;

  // k-way merge through a binary min-heap of queue indices; ties break on
  // the queue index, giving sort -m's stable earlier-file-first order.
  auto heap_less = [&](std::size_t a, std::size_t b) {
    int c = compare(queues[a][idx[a]], queues[b][idx[b]]);
    if (c != 0) return c > 0;  // std::*_heap builds a max-heap: invert
    return a > b;
  };
  std::vector<std::size_t> heap;
  heap.reserve(queues.size());
  for (std::size_t q = 0; q < queues.size(); ++q)
    if (!queues[q].empty()) heap.push_back(q);
  std::make_heap(heap.begin(), heap.end(), heap_less);

  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), heap_less);
    std::size_t q = heap.back();
    heap.pop_back();
    std::string_view line = queues[q][idx[q]++];
    if (!unique_ || out.empty() || compare_keys(out.back(), line) != 0)
      out.push_back(line);
    if (idx[q] < queues[q].size()) {
      heap.push_back(q);
      std::push_heap(heap.begin(), heap.end(), heap_less);
    }
  }
  return text::unlines_views(out);
}

bool SortSpec::is_sorted_stream(std::string_view input) const {
  auto ls = text::lines(input);
  for (std::size_t i = 1; i < ls.size(); ++i)
    if (compare(ls[i - 1], ls[i]) > 0) return false;
  return true;
}

namespace {

// `sort -u` as a window: the only state the output depends on is the set of
// *distinct* lines, ordered by the spec's comparator. An ordered set keyed
// by compare() reproduces execute() exactly — stable_sort puts the
// earliest-input line first within each equal-key class and -u keeps it,
// and std::set::insert likewise keeps the first-inserted element — so the
// window is O(distinct output), not O(input). When the distinct set itself
// outgrows the runtime's budget, drain_sorted_run() exports it as one
// sorted run (the state *is* a sorted -u stream) and the dataflow node
// spills it through the external merge, whose cross-run -u dedup and
// run-index tie-break preserve the same first-occurrence choice.
class SortUniqueWindowProcessor final : public WindowProcessor {
 public:
  explicit SortUniqueWindowProcessor(const SortSpec* spec)
      : set_(Cmp{spec}) {}

  void push(std::string_view block, std::string* out) override {
    (void)out;  // any line can still be preceded; nothing is final
    for (std::string_view line : text::lines(block)) {
      // One tree walk per line: lower_bound doubles as the duplicate
      // check and the insertion hint.
      auto it = set_.lower_bound(line);
      if (it != set_.end() && !set_.key_comp()(line, *it)) continue;
      set_.emplace_hint(it, line);
      bytes_ += line.size() + kPerLineOverhead;
    }
  }

  void finish(const Sink& sink) override {
    std::string buf;
    for (const std::string& line : set_) {
      buf += line;
      buf.push_back('\n');
      if (buf.size() >= kFlushBytes) {
        if (!sink(buf)) return;
        buf.clear();
      }
    }
    if (!buf.empty()) sink(buf);
  }

  std::size_t state_bytes() const override { return bytes_; }

  bool drain_sorted_run(std::string* out) override {
    out->clear();
    out->reserve(bytes_);
    for (const std::string& line : set_) {
      *out += line;
      out->push_back('\n');
    }
    set_.clear();
    bytes_ = 0;
    return true;
  }

 private:
  struct Cmp {
    using is_transparent = void;  // heterogeneous find: no alloc on dups
    const SortSpec* spec;
    bool operator()(std::string_view a, std::string_view b) const {
      return spec->compare(a, b) < 0;
    }
  };
  // Rough allocator cost of a set node beyond the line's own bytes.
  static constexpr std::size_t kPerLineOverhead =
      sizeof(std::string) + 4 * sizeof(void*);
  static constexpr std::size_t kFlushBytes = 64 << 10;

  std::set<std::string, Cmp> set_;
  std::size_t bytes_ = 0;
};

class SortCommand final : public Command {
 public:
  SortCommand(std::string name, SortSpec spec)
      : Command(std::move(name)), spec_(std::move(spec)) {}

  Result execute(std::string_view input) const override {
    return {spec_.sort_stream(input), 0, {}};
  }

  // Without -u, sort's state is the whole input (the external merge sort
  // bounds it instead); with -u the distinct set is the window, and every
  // supported comparator yields the same first-occurrence representative
  // as stable_sort + dedup, so the window declaration is safe whenever -u
  // parses.
  Streamability streamability() const override {
    return spec_.unique() ? Streamability::kWindow : Streamability::kNone;
  }
  std::unique_ptr<WindowProcessor> window_processor() const override {
    if (!spec_.unique()) return nullptr;
    return std::make_unique<SortUniqueWindowProcessor>(&spec_);
  }

  const SortSpec& spec() const { return spec_; }

 private:
  SortSpec spec_;
};

}  // namespace

std::shared_ptr<const SortSpec> sort_spec_of(const Command& command) {
  const auto* sort = dynamic_cast<const SortCommand*>(&command);
  if (sort == nullptr) return nullptr;
  return std::make_shared<const SortSpec>(sort->spec());
}

CommandPtr make_sort_command(const Argv& argv, std::string* error) {
  std::vector<std::string> flags(argv.begin() + 1, argv.end());
  auto spec = SortSpec::parse(flags, error);
  if (!spec) return nullptr;
  if (spec->merge_mode()) {
    if (error) *error = "sort: -m as a pipeline stage is not supported";
    return nullptr;
  }
  return std::make_shared<SortCommand>(argv_to_display(argv),
                                       std::move(*spec));
}

CommandPtr make_sort(const Argv& argv, std::string* error) {
  return make_sort_command(argv, error);
}

}  // namespace kq::cmd
