// Built-in micro-awk covering the programs in the benchmark suite:
// pattern-only rules ($1 >= 1000, length >= 16, 1), print actions with
// field/NF/$0 expressions and OFS joining, record-rebuilding assignments
// ({$1=$1}), -v OFS=... pre-assignments, and ';'-separated rules.
//
// Field semantics follow awk defaults: records split on runs of blanks with
// leading blanks ignored; assigning any field rebuilds $0 joined by OFS.

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>

#include "text/streams.h"
#include "unixcmd/builtins.h"

namespace kq::cmd {
namespace {

// ---------------------------------------------------------------- values --

struct Value {
  std::string str;
  double num = 0;
  bool numeric = false;  // a number literal / NF / length / numeric-string

  static Value number(double d) {
    Value v;
    v.num = d;
    v.numeric = true;
    return v;
  }
  static Value text(std::string s, bool strnum) {
    Value v;
    v.str = std::move(s);
    if (strnum) {
      v.numeric = true;
      v.num = std::strtod(v.str.c_str(), nullptr);
    }
    return v;
  }

  std::string to_output() const {
    if (!str.empty() || !numeric) return str;
    double intpart;
    if (std::modf(num, &intpart) == 0.0 && std::abs(num) < 1e15) {
      return std::to_string(static_cast<long long>(num));
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", num);
    return buf;
  }
};

bool looks_numeric(std::string_view s) {
  std::size_t i = 0;
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
  std::size_t start = i;
  if (i < s.size() && (s[i] == '-' || s[i] == '+')) ++i;
  bool digits = false;
  while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
    ++i;
    digits = true;
  }
  if (i < s.size() && s[i] == '.') {
    ++i;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
      ++i;
      digits = true;
    }
  }
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
  return digits && i == s.size() && start < s.size();
}

// ---------------------------------------------------------------- record --

class Record {
 public:
  explicit Record(std::string_view line) : line_(line) {}

  const std::string& whole(const std::string& ofs) {
    if (rebuilt_) rebuild(ofs);
    return line_;
  }

  std::string field(std::size_t n, const std::string& ofs) {
    if (n == 0) return whole(ofs);
    split();
    return n <= fields_.size() ? fields_[n - 1] : std::string();
  }

  std::size_t nf() {
    split();
    return fields_.size();
  }

  void assign_field(std::size_t n, std::string value) {
    split();
    if (n == 0) {
      line_ = std::move(value);
      split_done_ = false;
      fields_.clear();
      rebuilt_ = false;
      return;
    }
    if (n > fields_.size()) fields_.resize(n);
    fields_[n - 1] = std::move(value);
    rebuilt_ = true;
  }

 private:
  void split() {
    if (split_done_) return;
    split_done_ = true;
    fields_.clear();
    std::size_t i = 0;
    while (i < line_.size()) {
      while (i < line_.size() && (line_[i] == ' ' || line_[i] == '\t')) ++i;
      if (i >= line_.size()) break;
      std::size_t start = i;
      while (i < line_.size() && line_[i] != ' ' && line_[i] != '\t') ++i;
      fields_.emplace_back(line_.substr(start, i - start));
    }
  }

  void rebuild(const std::string& ofs) {
    std::string out;
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i != 0) out += ofs;
      out += fields_[i];
    }
    line_ = std::move(out);
    rebuilt_ = false;
  }

  std::string line_;
  std::vector<std::string> fields_;
  bool split_done_ = false;
  bool rebuilt_ = false;
};

// ------------------------------------------------------------------- ast --

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind { kNumber, kString, kField, kNf, kLength, kVar, kCompare };
  Kind kind;
  double number = 0;
  std::string text;        // kString literal / kVar name / kCompare operator
  ExprPtr lhs, rhs;        // kField index in lhs; kCompare operands
};

struct Statement {
  enum class Kind { kPrint, kAssignField, kExpr };
  Kind kind;
  std::vector<ExprPtr> args;  // print arguments
  ExprPtr target_index;       // assignment: field index
  ExprPtr value;              // assignment RHS / expression statement
};

struct Rule {
  ExprPtr pattern;  // null = match every record
  std::vector<Statement> action;
  bool has_action = false;  // pattern-only rules print $0
};

// ----------------------------------------------------------------- lexer --

struct Token {
  enum class Kind {
    kNumber, kString, kDollar, kIdent, kOp, kLbrace, kRbrace, kSemi,
    kComma, kEnd
  };
  Kind kind;
  double number = 0;
  std::string text;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) { advance(); }

  const Token& peek() const { return tok_; }
  Token take() {
    Token t = tok_;
    advance();
    return t;
  }

  bool failed() const { return failed_; }

 private:
  void advance() {
    while (pos_ < src_.size() &&
           (src_[pos_] == ' ' || src_[pos_] == '\t' || src_[pos_] == '\n'))
      ++pos_;
    if (pos_ >= src_.size()) {
      tok_ = {Token::Kind::kEnd, 0, ""};
      return;
    }
    char c = src_[pos_];
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && pos_ + 1 < src_.size() &&
         std::isdigit(static_cast<unsigned char>(src_[pos_ + 1])))) {
      std::size_t end = pos_;
      while (end < src_.size() &&
             (std::isdigit(static_cast<unsigned char>(src_[end])) ||
              src_[end] == '.'))
        ++end;
      tok_ = {Token::Kind::kNumber,
              std::strtod(std::string(src_.substr(pos_, end - pos_)).c_str(),
                          nullptr),
              ""};
      pos_ = end;
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t end = pos_;
      while (end < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[end])) ||
              src_[end] == '_'))
        ++end;
      tok_ = {Token::Kind::kIdent, 0,
              std::string(src_.substr(pos_, end - pos_))};
      pos_ = end;
      return;
    }
    switch (c) {
      case '$': tok_ = {Token::Kind::kDollar, 0, ""}; ++pos_; return;
      case '{': tok_ = {Token::Kind::kLbrace, 0, ""}; ++pos_; return;
      case '}': tok_ = {Token::Kind::kRbrace, 0, ""}; ++pos_; return;
      case ';': tok_ = {Token::Kind::kSemi, 0, ""}; ++pos_; return;
      case ',': tok_ = {Token::Kind::kComma, 0, ""}; ++pos_; return;
      case '"': {
        std::string text;
        ++pos_;
        while (pos_ < src_.size() && src_[pos_] != '"') {
          if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
            char e = src_[pos_ + 1];
            text.push_back(e == 'n' ? '\n' : e == 't' ? '\t' : e);
            pos_ += 2;
          } else {
            text.push_back(src_[pos_]);
            ++pos_;
          }
        }
        if (pos_ >= src_.size()) {
          failed_ = true;
          tok_ = {Token::Kind::kEnd, 0, ""};
          return;
        }
        ++pos_;
        tok_ = {Token::Kind::kString, 0, std::move(text)};
        return;
      }
      default: break;
    }
    // Operators: >= <= == != > < =
    for (std::string_view op : {">=", "<=", "==", "!="}) {
      if (src_.substr(pos_, 2) == op) {
        tok_ = {Token::Kind::kOp, 0, std::string(op)};
        pos_ += 2;
        return;
      }
    }
    if (c == '>' || c == '<' || c == '=') {
      tok_ = {Token::Kind::kOp, 0, std::string(1, c)};
      ++pos_;
      return;
    }
    failed_ = true;
    tok_ = {Token::Kind::kEnd, 0, ""};
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  Token tok_;
  bool failed_ = false;
};

// ---------------------------------------------------------------- parser --

class Parser {
 public:
  explicit Parser(std::string_view src) : lex_(src) {}

  std::optional<std::vector<Rule>> parse() {
    std::vector<Rule> rules;
    while (lex_.peek().kind != Token::Kind::kEnd) {
      if (lex_.peek().kind == Token::Kind::kSemi) {
        lex_.take();
        continue;
      }
      Rule rule;
      if (lex_.peek().kind != Token::Kind::kLbrace) {
        rule.pattern = parse_expr();
        if (!rule.pattern) return std::nullopt;
      }
      if (lex_.peek().kind == Token::Kind::kLbrace) {
        lex_.take();
        rule.has_action = true;
        while (lex_.peek().kind != Token::Kind::kRbrace) {
          if (lex_.peek().kind == Token::Kind::kEnd) return std::nullopt;
          if (lex_.peek().kind == Token::Kind::kSemi) {
            lex_.take();
            continue;
          }
          auto stmt = parse_statement();
          if (!stmt) return std::nullopt;
          rule.action.push_back(std::move(*stmt));
        }
        lex_.take();  // consume '}'
      }
      if (!rule.pattern && !rule.has_action) return std::nullopt;
      rules.push_back(std::move(rule));
    }
    if (lex_.failed() || rules.empty()) return std::nullopt;
    return rules;
  }

 private:
  std::optional<Statement> parse_statement() {
    if (lex_.peek().kind == Token::Kind::kIdent &&
        lex_.peek().text == "print") {
      lex_.take();
      Statement stmt;
      stmt.kind = Statement::Kind::kPrint;
      if (lex_.peek().kind != Token::Kind::kSemi &&
          lex_.peek().kind != Token::Kind::kRbrace) {
        while (true) {
          ExprPtr e = parse_expr();
          if (!e) return std::nullopt;
          stmt.args.push_back(std::move(e));
          if (lex_.peek().kind == Token::Kind::kComma) {
            lex_.take();
            continue;
          }
          break;
        }
      }
      return stmt;
    }
    if (lex_.peek().kind == Token::Kind::kDollar) {
      lex_.take();
      ExprPtr index = parse_primary();
      if (!index) return std::nullopt;
      if (lex_.peek().kind == Token::Kind::kOp && lex_.peek().text == "=") {
        lex_.take();
        ExprPtr value = parse_expr();
        if (!value) return std::nullopt;
        Statement stmt;
        stmt.kind = Statement::Kind::kAssignField;
        stmt.target_index = std::move(index);
        stmt.value = std::move(value);
        return stmt;
      }
      // Bare field expression statement ($1;): evaluate and discard.
      auto field = std::make_unique<Expr>();
      field->kind = Expr::Kind::kField;
      field->lhs = std::move(index);
      Statement stmt;
      stmt.kind = Statement::Kind::kExpr;
      stmt.value = finish_compare(std::move(field));
      if (!stmt.value) return std::nullopt;
      return stmt;
    }
    ExprPtr e = parse_expr();
    if (!e) return std::nullopt;
    Statement stmt;
    stmt.kind = Statement::Kind::kExpr;
    stmt.value = std::move(e);
    return stmt;
  }

  ExprPtr parse_expr() {
    ExprPtr lhs = parse_primary();
    if (!lhs) return nullptr;
    return finish_compare(std::move(lhs));
  }

  ExprPtr finish_compare(ExprPtr lhs) {
    if (lex_.peek().kind == Token::Kind::kOp && lex_.peek().text != "=") {
      std::string op = lex_.take().text;
      ExprPtr rhs = parse_primary();
      if (!rhs) return nullptr;
      auto cmp = std::make_unique<Expr>();
      cmp->kind = Expr::Kind::kCompare;
      cmp->text = std::move(op);
      cmp->lhs = std::move(lhs);
      cmp->rhs = std::move(rhs);
      return cmp;
    }
    return lhs;
  }

  ExprPtr parse_primary() {
    const Token& t = lex_.peek();
    switch (t.kind) {
      case Token::Kind::kNumber: {
        auto e = std::make_unique<Expr>();
        e->kind = Expr::Kind::kNumber;
        e->number = lex_.take().number;
        return e;
      }
      case Token::Kind::kString: {
        auto e = std::make_unique<Expr>();
        e->kind = Expr::Kind::kString;
        e->text = lex_.take().text;
        return e;
      }
      case Token::Kind::kDollar: {
        lex_.take();
        ExprPtr index = parse_primary();
        if (!index) return nullptr;
        auto e = std::make_unique<Expr>();
        e->kind = Expr::Kind::kField;
        e->lhs = std::move(index);
        return e;
      }
      case Token::Kind::kIdent: {
        std::string name = lex_.take().text;
        auto e = std::make_unique<Expr>();
        if (name == "NF") {
          e->kind = Expr::Kind::kNf;
        } else if (name == "length") {
          e->kind = Expr::Kind::kLength;
        } else {
          e->kind = Expr::Kind::kVar;
          e->text = std::move(name);
        }
        return e;
      }
      default:
        return nullptr;
    }
  }

  Lexer lex_;
};

// ------------------------------------------------------------ evaluation --

class AwkProgram {
 public:
  AwkProgram(std::vector<Rule> rules,
             std::map<std::string, std::string> vars)
      : rules_(std::move(rules)), vars_(std::move(vars)) {
    if (!vars_.count("OFS")) vars_["OFS"] = " ";
  }

  std::string run(std::string_view input) const {
    std::string out;
    for (std::string_view line : text::lines(input)) {
      Record rec(line);
      for (const Rule& rule : rules_) {
        bool matched = true;
        if (rule.pattern) matched = truthy(eval(*rule.pattern, rec));
        if (!matched) continue;
        if (!rule.has_action) {
          out += rec.whole(ofs());
          out.push_back('\n');
          continue;
        }
        for (const Statement& stmt : rule.action) exec(stmt, rec, out);
      }
    }
    return out;
  }

 private:
  const std::string& ofs() const { return vars_.at("OFS"); }

  static bool truthy(const Value& v) {
    if (v.numeric && v.str.empty()) return v.num != 0;
    return !v.str.empty();
  }

  Value eval(const Expr& e, Record& rec) const {
    switch (e.kind) {
      case Expr::Kind::kNumber:
        return Value::number(e.number);
      case Expr::Kind::kString:
        return Value::text(e.text, false);
      case Expr::Kind::kNf:
        return Value::number(static_cast<double>(rec.nf()));
      case Expr::Kind::kLength:
        return Value::number(static_cast<double>(rec.whole(ofs()).size()));
      case Expr::Kind::kVar: {
        auto it = vars_.find(e.text);
        std::string v = it == vars_.end() ? std::string() : it->second;
        return Value::text(std::move(v), false);
      }
      case Expr::Kind::kField: {
        Value idx = eval(*e.lhs, rec);
        std::size_t n = static_cast<std::size_t>(idx.num);
        std::string f = rec.field(n, ofs());
        bool strnum = looks_numeric(f);
        return Value::text(std::move(f), strnum);
      }
      case Expr::Kind::kCompare: {
        Value a = eval(*e.lhs, rec);
        Value b = eval(*e.rhs, rec);
        int c;
        if (a.numeric && b.numeric) {
          c = a.num < b.num ? -1 : a.num > b.num ? 1 : 0;
        } else {
          std::string sa = a.to_output(), sb = b.to_output();
          c = sa < sb ? -1 : sa > sb ? 1 : 0;
        }
        bool r = e.text == ">=" ? c >= 0
               : e.text == "<=" ? c <= 0
               : e.text == "==" ? c == 0
               : e.text == "!=" ? c != 0
               : e.text == ">" ? c > 0
               : c < 0;
        return Value::number(r ? 1 : 0);
      }
    }
    return Value::number(0);
  }

  void exec(const Statement& stmt, Record& rec, std::string& out) const {
    switch (stmt.kind) {
      case Statement::Kind::kPrint: {
        if (stmt.args.empty()) {
          out += rec.whole(ofs());
        } else {
          for (std::size_t i = 0; i < stmt.args.size(); ++i) {
            if (i != 0) out += ofs();
            out += eval(*stmt.args[i], rec).to_output();
          }
        }
        out.push_back('\n');
        break;
      }
      case Statement::Kind::kAssignField: {
        Value idx = eval(*stmt.target_index, rec);
        Value v = eval(*stmt.value, rec);
        rec.assign_field(static_cast<std::size_t>(idx.num), v.to_output());
        break;
      }
      case Statement::Kind::kExpr:
        (void)eval(*stmt.value, rec);
        break;
    }
  }

  std::vector<Rule> rules_;
  std::map<std::string, std::string> vars_;
};

class AwkCommand final : public Command {
 public:
  AwkCommand(std::string name, AwkProgram program)
      : Command(std::move(name)), program_(std::move(program)) {}

  Result execute(std::string_view input) const override {
    return {program_.run(input), 0, {}};
  }

 private:
  AwkProgram program_;
};

std::string unescape_assignment_value(std::string_view v) {
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i] == '\\' && i + 1 < v.size()) {
      char e = v[++i];
      out.push_back(e == 'n' ? '\n' : e == 't' ? '\t' : e);
    } else {
      out.push_back(v[i]);
    }
  }
  return out;
}

}  // namespace

CommandPtr make_awk(const Argv& argv, std::string* error) {
  std::map<std::string, std::string> vars;
  std::string program_text;
  bool have_program = false;
  for (std::size_t i = 1; i < argv.size(); ++i) {
    const std::string& a = argv[i];
    if (a == "-v") {
      if (i + 1 >= argv.size()) {
        if (error) *error = "awk: -v needs an assignment";
        return nullptr;
      }
      const std::string& assignment = argv[++i];
      std::size_t eq = assignment.find('=');
      if (eq == std::string::npos) {
        if (error) *error = "awk: bad -v assignment";
        return nullptr;
      }
      vars[assignment.substr(0, eq)] =
          unescape_assignment_value(assignment.substr(eq + 1));
      continue;
    }
    if (!have_program) {
      program_text = a;
      have_program = true;
      continue;
    }
    if (error) *error = "awk: file operands not supported";
    return nullptr;
  }
  if (!have_program) {
    if (error) *error = "awk: missing program";
    return nullptr;
  }
  Parser parser(program_text);
  auto rules = parser.parse();
  if (!rules) {
    if (error) *error = "awk: unsupported program";
    return nullptr;
  }
  return std::make_shared<AwkCommand>(
      argv_to_display(argv), AwkProgram(std::move(*rules), std::move(vars)));
}

}  // namespace kq::cmd
