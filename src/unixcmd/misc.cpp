// Small built-in commands: cat, rev, col -bx, fmt -wN, iconv //TRANSLIT.

#include <array>
#include <cctype>

#include "text/streams.h"
#include "unixcmd/builtins.h"

namespace kq::cmd {
namespace {

class CatCommand final : public Command {
 public:
  CatCommand(std::string name, std::vector<std::string> files,
             const vfs::Vfs* fs)
      : Command(std::move(name)), files_(std::move(files)), fs_(fs) {}

  Result execute(std::string_view input) const override {
    if (files_.empty()) return {std::string(input), 0, {}};
    std::string out;
    int status = 0;
    std::string err;
    for (const std::string& name : files_) {
      if (name == "-") {
        out += input;
        continue;
      }
      auto contents = fs_->read(name);
      if (!contents) {
        status = 1;
        err += "cat: " + name + ": No such file or directory\n";
        continue;
      }
      out += *contents;
    }
    return {std::move(out), status, std::move(err)};
  }

  // Bare `cat` is the identity and streams trivially; with file operands
  // the output is (partly) input-independent and a per-block run would
  // repeat the files once per block.
  Streamability streamability() const override {
    return files_.empty() ? Streamability::kPerRecord : Streamability::kNone;
  }
  std::unique_ptr<StreamProcessor> stream_processor() const override {
    if (!files_.empty()) return nullptr;
    return std::make_unique<PerBlockProcessor>(*this);
  }

 private:
  std::vector<std::string> files_;
  const vfs::Vfs* fs_;
};

class RevCommand final : public Command {
 public:
  explicit RevCommand(std::string name) : Command(std::move(name)) {}

  Result execute(std::string_view input) const override {
    std::string out;
    out.reserve(input.size());
    auto ls = text::lines(input);
    for (std::size_t i = 0; i < ls.size(); ++i) {
      out.append(ls[i].rbegin(), ls[i].rend());
      // util-linux rev preserves a missing final newline.
      if (i + 1 < ls.size() || input.ends_with('\n')) out.push_back('\n');
    }
    return {std::move(out), 0, {}};
  }

  // Pure per-line map.
  Streamability streamability() const override {
    return Streamability::kPerRecord;
  }
  std::unique_ptr<StreamProcessor> stream_processor() const override {
    return std::make_unique<PerBlockProcessor>(*this);
  }
};

// col -b: resolve backspace overstrikes (keep the final character);
// col -x: expand tabs to the next multiple of 8.
class ColCommand final : public Command {
 public:
  ColCommand(std::string name, bool no_backspace, bool expand_tabs)
      : Command(std::move(name)), no_backspace_(no_backspace),
        expand_tabs_(expand_tabs) {}

  Result execute(std::string_view input) const override {
    std::string out;
    out.reserve(input.size());
    std::size_t column = 0;
    for (char c : input) {
      if (c == '\b' && no_backspace_) {
        if (!out.empty() && out.back() != '\n') {
          out.pop_back();
          if (column > 0) --column;
        }
        continue;
      }
      if (c == '\t' && expand_tabs_) {
        std::size_t next = (column / 8 + 1) * 8;
        out.append(next - column, ' ');
        column = next;
        continue;
      }
      out.push_back(c);
      column = c == '\n' ? 0 : column + 1;
    }
    return {std::move(out), 0, {}};
  }

  // Byte-level with per-line state only: record-aligned blocks start right
  // after a newline, where the column is 0 and a backspace has nothing to
  // erase — exactly the whole-input state at that byte.
  Streamability streamability() const override {
    return Streamability::kPerRecord;
  }
  std::unique_ptr<StreamProcessor> stream_processor() const override {
    return std::make_unique<PerBlockProcessor>(*this);
  }

 private:
  bool no_backspace_;
  bool expand_tabs_;
};

// fmt -wN: greedy refill of words into lines at most N columns wide (a long
// word occupies its own line), with blank lines preserved as paragraph
// separators. fmt -w1 therefore emits one word per line, the idiom the
// benchmarks use. GNU fmt's indentation-sensitive paragraph detection is
// intentionally not modelled: the benchmark pipelines feed fmt
// machine-generated non-indented text (see tests/crossval_test.cpp).
class FmtCommand final : public Command {
 public:
  FmtCommand(std::string name, std::size_t width)
      : Command(std::move(name)), width_(width) {}

  Result execute(std::string_view input) const override {
    std::string out;
    out.reserve(input.size());
    std::string current;
    auto flush = [&] {
      if (!current.empty()) {
        out += current;
        out.push_back('\n');
        current.clear();
      }
    };
    for (std::string_view line : text::lines(input)) {
      if (line.find_first_not_of(" \t") == std::string_view::npos) {
        flush();
        out.push_back('\n');  // blank line separates paragraphs
        continue;
      }
      std::size_t i = 0;
      while (i < line.size()) {
        while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
        if (i >= line.size()) break;
        std::size_t start = i;
        while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
        std::string_view word = line.substr(start, i - start);
        if (current.empty()) {
          current = word;
        } else if (current.size() + 1 + word.size() <= width_) {
          current.push_back(' ');
          current += word;
        } else {
          flush();
          current = word;
        }
      }
    }
    flush();
    return {std::move(out), 0, {}};
  }

 private:
  std::size_t width_;
};

// iconv -f utf-8 -t ascii//translit: transliterate Latin-1-range accented
// letters to their base ASCII letter; other multi-byte sequences become '?'.
class IconvTranslitCommand final : public Command {
 public:
  explicit IconvTranslitCommand(std::string name)
      : Command(std::move(name)) {}

  Result execute(std::string_view input) const override {
    std::string out;
    out.reserve(input.size());
    std::size_t i = 0;
    while (i < input.size()) {
      unsigned char c = static_cast<unsigned char>(input[i]);
      if (c < 0x80) {
        out.push_back(static_cast<char>(c));
        ++i;
        continue;
      }
      // Decode a UTF-8 sequence (2-4 bytes); map U+00C0..U+00FF to ASCII.
      unsigned cp = 0;
      std::size_t len = 0;
      if ((c & 0xE0) == 0xC0) {
        cp = c & 0x1Fu;
        len = 2;
      } else if ((c & 0xF0) == 0xE0) {
        cp = c & 0x0Fu;
        len = 3;
      } else if ((c & 0xF8) == 0xF0) {
        cp = c & 0x07u;
        len = 4;
      } else {
        out.push_back('?');
        ++i;
        continue;
      }
      if (i + len > input.size()) {
        out.push_back('?');
        ++i;
        continue;
      }
      bool valid = true;
      for (std::size_t j = 1; j < len; ++j) {
        unsigned char cc = static_cast<unsigned char>(input[i + j]);
        if ((cc & 0xC0) != 0x80) {
          valid = false;
          break;
        }
        cp = (cp << 6) | (cc & 0x3Fu);
      }
      if (!valid) {
        out.push_back('?');
        ++i;
        continue;
      }
      out += translit(cp);
      i += len;
    }
    return {std::move(out), 0, {}};
  }

  // Per-byte over UTF-8 sequences, which never contain '\n' (continuation
  // bytes are 0x80..0xBF), so no sequence straddles a record-aligned block
  // boundary and per-block runs compose.
  Streamability streamability() const override {
    return Streamability::kPerRecord;
  }
  std::unique_ptr<StreamProcessor> stream_processor() const override {
    return std::make_unique<PerBlockProcessor>(*this);
  }

 private:
  static std::string translit(unsigned cp) {
    struct Entry {
      unsigned lo, hi;
      const char* text;
    };
    static constexpr Entry kTable[] = {
        {0xC0, 0xC5, "A"}, {0xC6, 0xC6, "AE"}, {0xC7, 0xC7, "C"},
        {0xC8, 0xCB, "E"}, {0xCC, 0xCF, "I"},  {0xD1, 0xD1, "N"},
        {0xD2, 0xD6, "O"}, {0xD8, 0xD8, "O"},  {0xD9, 0xDC, "U"},
        {0xDD, 0xDD, "Y"}, {0xDF, 0xDF, "ss"}, {0xE0, 0xE5, "a"},
        {0xE6, 0xE6, "ae"}, {0xE7, 0xE7, "c"}, {0xE8, 0xEB, "e"},
        {0xEC, 0xEF, "i"}, {0xF1, 0xF1, "n"},  {0xF2, 0xF6, "o"},
        {0xF8, 0xF8, "o"}, {0xF9, 0xFC, "u"},  {0xFD, 0xFD, "y"},
        {0xFF, 0xFF, "y"}, {0x2018, 0x2019, "'"}, {0x201C, 0x201D, "\""},
        {0x2013, 0x2014, "-"},
    };
    for (const Entry& e : kTable)
      if (cp >= e.lo && cp <= e.hi) return e.text;
    return "?";
  }
};

}  // namespace

CommandPtr make_cat(const Argv& argv, const vfs::Vfs* fs,
                    std::string* error) {
  std::vector<std::string> files;
  for (std::size_t i = 1; i < argv.size(); ++i) {
    if (argv[i].size() >= 2 && argv[i][0] == '-') {
      if (error) *error = "cat: unsupported flag " + argv[i];
      return nullptr;
    }
    files.push_back(argv[i]);
  }
  if (!fs) fs = &vfs::Vfs::global();
  return std::make_shared<CatCommand>(argv_to_display(argv),
                                      std::move(files), fs);
}

CommandPtr make_rev(const Argv& argv, std::string* error) {
  if (argv.size() != 1) {
    if (error) *error = "rev: no flags supported";
    return nullptr;
  }
  return std::make_shared<RevCommand>(argv_to_display(argv));
}

CommandPtr make_col(const Argv& argv, std::string* error) {
  bool no_backspace = false, expand_tabs = false;
  for (std::size_t i = 1; i < argv.size(); ++i) {
    const std::string& a = argv[i];
    if (a.size() < 2 || a[0] != '-') {
      if (error) *error = "col: unsupported operand " + a;
      return nullptr;
    }
    for (std::size_t j = 1; j < a.size(); ++j) {
      switch (a[j]) {
        case 'b': no_backspace = true; break;
        case 'x': expand_tabs = true; break;
        default:
          if (error) *error = "col: unsupported flag";
          return nullptr;
      }
    }
  }
  return std::make_shared<ColCommand>(argv_to_display(argv), no_backspace,
                                      expand_tabs);
}

CommandPtr make_fmt(const Argv& argv, std::string* error) {
  std::size_t width = 75;
  for (std::size_t i = 1; i < argv.size(); ++i) {
    const std::string& a = argv[i];
    std::optional<std::size_t> w;
    if (a.rfind("-w", 0) == 0 && a.size() > 2) {
      w = parse_size_count(std::string_view(a).substr(2));
    } else if (a == "-w" && i + 1 < argv.size()) {
      w = parse_size_count(argv[++i]);
    } else {
      if (error) *error = "fmt: unsupported flag " + a;
      return nullptr;
    }
    if (!w) {
      if (error) *error = "fmt: bad width";
      return nullptr;
    }
    width = *w;
  }
  return std::make_shared<FmtCommand>(argv_to_display(argv), width);
}

CommandPtr make_iconv(const Argv& argv, std::string* error) {
  // Accept `iconv -f utf-8 -t ascii//translit` (case-insensitive target).
  std::string from, to;
  for (std::size_t i = 1; i < argv.size(); ++i) {
    const std::string& a = argv[i];
    if (a == "-f" && i + 1 < argv.size()) from = argv[++i];
    else if (a == "-t" && i + 1 < argv.size()) to = argv[++i];
    else if (a.rfind("-f", 0) == 0) from = a.substr(2);
    else if (a.rfind("-t", 0) == 0) to = a.substr(2);
    else {
      if (error) *error = "iconv: unsupported flag " + a;
      return nullptr;
    }
  }
  auto lower = [](std::string s) {
    for (char& c : s)
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
  };
  if (lower(from) != "utf-8" || lower(to) != "ascii//translit") {
    if (error) *error = "iconv: only utf-8 -> ascii//translit is supported";
    return nullptr;
  }
  return std::make_shared<IconvTranslitCommand>(argv_to_display(argv));
}

}  // namespace kq::cmd
