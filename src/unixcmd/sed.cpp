// Built-in `sed` for the script forms used by the benchmarks:
//   [N]s<D>regex<D>replacement<D>[g]   substitute (any delimiter character)
//   Nq                                 quit after line N (prints 1..N)
//   Nd  /  $d                          delete line N / the last line
// Multiple ';'-separated commands are applied left to right per line.

#include <algorithm>
#include <cctype>
#include <optional>

#include "regex/regex.h"
#include "text/streams.h"
#include "unixcmd/builtins.h"

namespace kq::cmd {
namespace {

struct SedCommandSpec {
  enum class Kind { kSubstitute, kQuit, kDelete } kind;
  // Address: 0 = every line, >0 = that line, -1 = last line ($).
  long address = 0;
  std::optional<regex::Regex> re;
  std::string replacement;
  bool global = false;
};

std::optional<std::vector<SedCommandSpec>> parse_script(
    std::string_view script, std::string* error) {
  std::vector<SedCommandSpec> cmds;
  std::size_t i = 0;
  auto fail = [&](const char* msg) {
    if (error) *error = std::string("sed: ") + msg;
    return std::nullopt;
  };
  while (i < script.size()) {
    while (i < script.size() && (script[i] == ';' || script[i] == ' ')) ++i;
    if (i >= script.size()) break;
    SedCommandSpec spec{SedCommandSpec::Kind::kSubstitute, 0, std::nullopt,
                        "", false};
    // Optional numeric or $ address (saturating parse: an address past
    // LONG_MAX acts as "beyond every line" instead of overflowing).
    if (std::isdigit(static_cast<unsigned char>(script[i]))) {
      std::size_t start = i;
      while (i < script.size() &&
             std::isdigit(static_cast<unsigned char>(script[i])))
        ++i;
      spec.address = *parse_count(script.substr(start, i - start));
    } else if (script[i] == '$') {
      spec.address = -1;
      ++i;
    }
    if (i >= script.size()) return fail("missing command");
    char c = script[i];
    if (c == 'q') {
      spec.kind = SedCommandSpec::Kind::kQuit;
      ++i;
      if (spec.address == 0) return fail("q requires an address");
      cmds.push_back(std::move(spec));
      continue;
    }
    if (c == 'd') {
      spec.kind = SedCommandSpec::Kind::kDelete;
      ++i;
      if (spec.address == 0) return fail("unaddressed d deletes everything");
      cmds.push_back(std::move(spec));
      continue;
    }
    if (c == 's') {
      ++i;
      if (i >= script.size()) return fail("missing s delimiter");
      char delim = script[i];
      ++i;
      auto read_until_delim = [&](std::string& out) {
        while (i < script.size() && script[i] != delim) {
          if (script[i] == '\\' && i + 1 < script.size()) {
            if (script[i + 1] == delim) {
              out.push_back(delim);
              i += 2;
              continue;
            }
            out.push_back(script[i]);
            out.push_back(script[i + 1]);
            i += 2;
            continue;
          }
          out.push_back(script[i]);
          ++i;
        }
        if (i >= script.size()) return false;
        ++i;  // consume delimiter
        return true;
      };
      std::string pattern, replacement;
      if (!read_until_delim(pattern)) return fail("unterminated s pattern");
      if (!read_until_delim(replacement))
        return fail("unterminated s replacement");
      while (i < script.size() && script[i] != ';') {
        if (script[i] == 'g') {
          spec.global = true;
        } else if (script[i] != ' ') {
          return fail("unsupported s flag");
        }
        ++i;
      }
      std::string re_err;
      auto re = regex::Regex::compile(pattern, &re_err);
      if (!re) return fail("bad pattern");
      spec.kind = SedCommandSpec::Kind::kSubstitute;
      spec.re = std::move(*re);
      spec.replacement = std::move(replacement);
      cmds.push_back(std::move(spec));
      continue;
    }
    return fail("unsupported command");
  }
  if (cmds.empty()) return fail("empty script");
  return cmds;
}

// Applies every spec to one line (1-based line_no; last_line is the final
// line's number, or 0 when unknown — legal only for scripts without `$`
// addresses). Returns false when the line is deleted; *quit is set when a
// q command fires (the line itself still prints).
bool apply_specs(const std::vector<SedCommandSpec>& cmds, std::string* line,
                 long line_no, long last_line, bool* quit) {
  for (const SedCommandSpec& spec : cmds) {
    bool addressed = spec.address == 0 || spec.address == line_no ||
                     (spec.address == -1 && line_no == last_line);
    if (!addressed) continue;
    switch (spec.kind) {
      case SedCommandSpec::Kind::kSubstitute:
        *line = spec.re->replace(*line, spec.replacement, spec.global);
        break;
      case SedCommandSpec::Kind::kDelete:
        return false;
      case SedCommandSpec::Kind::kQuit:
        *quit = true;
        break;
    }
  }
  return true;
}

// Runs the script over the lines of `text`, appending kept lines to *out
// and advancing the 1-based running counter *line_no. `whole_input`
// resolves `$` addresses against text's own line count; false means the
// last line's number is unknowable (streaming — the caller's
// streamability contract excludes `$`). Every kept line re-terminates
// except an unterminated final line of `text` (GNU sed preserves the
// missing newline). Returns true once a q command fires. Both execute()
// and the stream processor run through here, so batch and per-block
// output cannot diverge.
bool run_script(const std::vector<SedCommandSpec>& cmds,
                std::string_view text, long* line_no, bool whole_input,
                std::string* out) {
  auto ls = text::lines(text);
  const long last_line =
      whole_input ? *line_no + static_cast<long>(ls.size()) : 0;
  for (std::size_t i = 0; i < ls.size(); ++i) {
    ++*line_no;
    std::string current(ls[i]);
    bool quit = false;
    if (apply_specs(cmds, &current, *line_no, last_line, &quit)) {
      *out += current;
      if (i + 1 < ls.size() || text.ends_with('\n')) out->push_back('\n');
    }
    if (quit) return true;
  }
  return false;
}

class SedCommand final : public Command {
 public:
  SedCommand(std::string name, std::vector<SedCommandSpec> cmds)
      : Command(std::move(name)), cmds_(std::move(cmds)) {
    for (const SedCommandSpec& spec : cmds_) {
      if (spec.address == -1) needs_last_line_ = true;
      if (spec.kind == SedCommandSpec::Kind::kQuit) has_quit_ = true;
    }
  }

  Result execute(std::string_view input) const override {
    std::string out;
    out.reserve(input.size());
    long line_no = 0;
    run_script(cmds_, input, &line_no, /*whole_input=*/true, &out);
    return {std::move(out), 0, {}};
  }

  // Line-addressed scripts stream with a line counter as the only state;
  // `Nq` is prefix-bounded (output complete once it fires); `$` needs the
  // last line's number, which a streaming node cannot know.
  Streamability streamability() const override {
    if (needs_last_line_) return Streamability::kNone;
    return has_quit_ ? Streamability::kPrefix : Streamability::kPerRecord;
  }
  std::unique_ptr<StreamProcessor> stream_processor() const override;

  // A line-addressed command changes behavior at its largest address:
  // below it `sed 5000q` / `5000d` / `5000s…` are indistinguishable from
  // cat / the unaddressed script, so certification can be blind past it.
  std::optional<long> scale_bound() const override {
    long max_address = 0;
    for (const SedCommandSpec& spec : cmds_)
      max_address = std::max(max_address, spec.address);
    if (max_address == 0) return std::nullopt;
    return max_address;
  }

 private:
  friend class SedStreamProcessor;
  std::vector<SedCommandSpec> cmds_;
  bool needs_last_line_ = false;
  bool has_quit_ = false;
};

class SedStreamProcessor final : public StreamProcessor {
 public:
  explicit SedStreamProcessor(const SedCommand& command)
      : command_(command) {}

  bool process(std::string_view block, std::string* out) override {
    if (quit_) return false;
    quit_ = run_script(command_.cmds_, block, &line_no_,
                       /*whole_input=*/false, out);
    return !quit_;
  }

 private:
  const SedCommand& command_;
  long line_no_ = 0;
  bool quit_ = false;
};

std::unique_ptr<StreamProcessor> SedCommand::stream_processor() const {
  if (needs_last_line_) return nullptr;
  return std::make_unique<SedStreamProcessor>(*this);
}

}  // namespace

CommandPtr make_sed(const Argv& argv, std::string* error) {
  std::string script;
  bool have_script = false;
  for (std::size_t i = 1; i < argv.size(); ++i) {
    const std::string& a = argv[i];
    if (a == "-e") continue;
    if (a == "-n" || (a.size() >= 2 && a[0] == '-' && a != "-")) {
      if (error) *error = "sed: unsupported flag " + a;
      return nullptr;
    }
    if (have_script) {
      if (error) *error = "sed: file operands not supported";
      return nullptr;
    }
    script = a;
    have_script = true;
  }
  if (!have_script) {
    if (error) *error = "sed: missing script";
    return nullptr;
  }
  auto cmds = parse_script(script, error);
  if (!cmds) return nullptr;
  return std::make_shared<SedCommand>(argv_to_display(argv),
                                      std::move(*cmds));
}

}  // namespace kq::cmd
