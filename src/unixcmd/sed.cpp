// Built-in `sed` for the script forms used by the benchmarks:
//   [N]s<D>regex<D>replacement<D>[g]   substitute (any delimiter character)
//   Nq                                 quit after line N (prints 1..N)
//   Nd  /  $d                          delete line N / the last line
// Multiple ';'-separated commands are applied left to right per line.

#include <cctype>
#include <optional>

#include "regex/regex.h"
#include "text/streams.h"
#include "unixcmd/builtins.h"

namespace kq::cmd {
namespace {

struct SedCommandSpec {
  enum class Kind { kSubstitute, kQuit, kDelete } kind;
  // Address: 0 = every line, >0 = that line, -1 = last line ($).
  long address = 0;
  std::optional<regex::Regex> re;
  std::string replacement;
  bool global = false;
};

std::optional<std::vector<SedCommandSpec>> parse_script(
    std::string_view script, std::string* error) {
  std::vector<SedCommandSpec> cmds;
  std::size_t i = 0;
  auto fail = [&](const char* msg) {
    if (error) *error = std::string("sed: ") + msg;
    return std::nullopt;
  };
  while (i < script.size()) {
    while (i < script.size() && (script[i] == ';' || script[i] == ' ')) ++i;
    if (i >= script.size()) break;
    SedCommandSpec spec{SedCommandSpec::Kind::kSubstitute, 0, std::nullopt,
                        "", false};
    // Optional numeric or $ address.
    if (std::isdigit(static_cast<unsigned char>(script[i]))) {
      long addr = 0;
      while (i < script.size() &&
             std::isdigit(static_cast<unsigned char>(script[i]))) {
        addr = addr * 10 + (script[i] - '0');
        ++i;
      }
      spec.address = addr;
    } else if (script[i] == '$') {
      spec.address = -1;
      ++i;
    }
    if (i >= script.size()) return fail("missing command");
    char c = script[i];
    if (c == 'q') {
      spec.kind = SedCommandSpec::Kind::kQuit;
      ++i;
      if (spec.address == 0) return fail("q requires an address");
      cmds.push_back(std::move(spec));
      continue;
    }
    if (c == 'd') {
      spec.kind = SedCommandSpec::Kind::kDelete;
      ++i;
      if (spec.address == 0) return fail("unaddressed d deletes everything");
      cmds.push_back(std::move(spec));
      continue;
    }
    if (c == 's') {
      ++i;
      if (i >= script.size()) return fail("missing s delimiter");
      char delim = script[i];
      ++i;
      auto read_until_delim = [&](std::string& out) {
        while (i < script.size() && script[i] != delim) {
          if (script[i] == '\\' && i + 1 < script.size()) {
            if (script[i + 1] == delim) {
              out.push_back(delim);
              i += 2;
              continue;
            }
            out.push_back(script[i]);
            out.push_back(script[i + 1]);
            i += 2;
            continue;
          }
          out.push_back(script[i]);
          ++i;
        }
        if (i >= script.size()) return false;
        ++i;  // consume delimiter
        return true;
      };
      std::string pattern, replacement;
      if (!read_until_delim(pattern)) return fail("unterminated s pattern");
      if (!read_until_delim(replacement))
        return fail("unterminated s replacement");
      while (i < script.size() && script[i] != ';') {
        if (script[i] == 'g') {
          spec.global = true;
        } else if (script[i] != ' ') {
          return fail("unsupported s flag");
        }
        ++i;
      }
      std::string re_err;
      auto re = regex::Regex::compile(pattern, &re_err);
      if (!re) return fail("bad pattern");
      spec.kind = SedCommandSpec::Kind::kSubstitute;
      spec.re = std::move(*re);
      spec.replacement = std::move(replacement);
      cmds.push_back(std::move(spec));
      continue;
    }
    return fail("unsupported command");
  }
  if (cmds.empty()) return fail("empty script");
  return cmds;
}

class SedCommand final : public Command {
 public:
  SedCommand(std::string name, std::vector<SedCommandSpec> cmds)
      : Command(std::move(name)), cmds_(std::move(cmds)) {}

  Result execute(std::string_view input) const override {
    auto ls = text::lines(input);
    std::string out;
    out.reserve(input.size());
    long line_no = 0;
    for (std::string_view line : ls) {
      ++line_no;
      std::string current(line);
      bool deleted = false;
      bool quit = false;
      for (const SedCommandSpec& spec : cmds_) {
        bool addressed =
            spec.address == 0 || spec.address == line_no ||
            (spec.address == -1 &&
             line_no == static_cast<long>(ls.size()));
        if (!addressed) continue;
        switch (spec.kind) {
          case SedCommandSpec::Kind::kSubstitute:
            current = spec.re->replace(current, spec.replacement,
                                       spec.global);
            break;
          case SedCommandSpec::Kind::kDelete:
            deleted = true;
            break;
          case SedCommandSpec::Kind::kQuit:
            quit = true;
            break;
        }
        if (deleted) break;
      }
      if (!deleted) {
        out += current;
        out.push_back('\n');
      }
      if (quit) break;
    }
    return {std::move(out), 0, {}};
  }

 private:
  std::vector<SedCommandSpec> cmds_;
};

}  // namespace

CommandPtr make_sed(const Argv& argv, std::string* error) {
  std::string script;
  bool have_script = false;
  for (std::size_t i = 1; i < argv.size(); ++i) {
    const std::string& a = argv[i];
    if (a == "-e") continue;
    if (a == "-n" || (a.size() >= 2 && a[0] == '-' && a != "-")) {
      if (error) *error = "sed: unsupported flag " + a;
      return nullptr;
    }
    if (have_script) {
      if (error) *error = "sed: file operands not supported";
      return nullptr;
    }
    script = a;
    have_script = true;
  }
  if (!have_script) {
    if (error) *error = "sed: missing script";
    return nullptr;
  }
  auto cmds = parse_script(script, error);
  if (!cmds) return nullptr;
  return std::make_shared<SedCommand>(argv_to_display(argv),
                                      std::move(*cmds));
}

}  // namespace kq::cmd
