// Built-in `tr`: translate, delete, squeeze. Supports the POSIX/GNU set
// syntax used throughout the benchmark suite: ranges (a-z, A-Za-z), escapes
// (\n \t \\ and octal \012), character classes ([:punct:], [:lower:], ...),
// repetition fill ([c*], [\012*]), complement (-c), squeeze (-s), delete
// (-d), and their combinations (-cs, -sc, -d).

#include <array>
#include <cctype>
#include <optional>

#include "unixcmd/builtins.h"

namespace kq::cmd {
namespace {

struct ExpandedSet {
  std::string chars;
  // Position in `chars` where a [c*] fill marker appeared (SET2 only);
  // the fill character repeats to pad SET2 to SET1's length.
  int fill_pos = -1;
  char fill_char = 0;
};

// Decodes one possibly-escaped character at s[i]; advances i.
std::optional<char> decode_escape(std::string_view s, std::size_t& i) {
  if (s[i] != '\\') return s[i++];
  ++i;
  if (i >= s.size()) return '\\';
  char c = s[i];
  if (c >= '0' && c <= '7') {
    int value = 0, digits = 0;
    while (i < s.size() && digits < 3 && s[i] >= '0' && s[i] <= '7') {
      value = value * 8 + (s[i] - '0');
      ++i;
      ++digits;
    }
    return static_cast<char>(value);
  }
  ++i;
  switch (c) {
    case 'n': return '\n';
    case 't': return '\t';
    case 'r': return '\r';
    case 'a': return '\a';
    case 'b': return '\b';
    case 'f': return '\f';
    case 'v': return '\v';
    default: return c;
  }
}

bool append_named_class(std::string_view name, std::string& out) {
  for (int c = 0; c < 256; ++c) {
    unsigned char uc = static_cast<unsigned char>(c);
    bool in = false;
    if (name == "alpha") in = std::isalpha(uc);
    else if (name == "digit") in = std::isdigit(uc);
    else if (name == "alnum") in = std::isalnum(uc);
    else if (name == "upper") in = std::isupper(uc);
    else if (name == "lower") in = std::islower(uc);
    else if (name == "punct") in = std::ispunct(uc);
    else if (name == "space") in = std::isspace(uc);
    else if (name == "blank") in = (c == ' ' || c == '\t');
    else if (name == "cntrl") in = std::iscntrl(uc);
    else if (name == "print") in = std::isprint(uc);
    else if (name == "graph") in = std::isgraph(uc);
    else if (name == "xdigit") in = std::isxdigit(uc);
    else return false;
    if (in) out.push_back(static_cast<char>(c));
  }
  return true;
}

std::optional<ExpandedSet> expand_set(std::string_view spec,
                                      std::string* error) {
  ExpandedSet set;
  std::size_t i = 0;
  while (i < spec.size()) {
    // Bracket forms: [:class:], [=c=], [c*n].
    if (spec[i] == '[') {
      if (i + 1 < spec.size() && spec[i + 1] == ':') {
        std::size_t close = spec.find(":]", i + 2);
        if (close != std::string_view::npos) {
          if (!append_named_class(spec.substr(i + 2, close - i - 2),
                                  set.chars)) {
            if (error) *error = "tr: invalid character class";
            return std::nullopt;
          }
          i = close + 2;
          continue;
        }
      }
      if (i + 3 < spec.size() && spec[i + 1] == '=' && spec[i + 3] == '=' &&
          i + 4 < spec.size() && spec[i + 4] == ']') {
        set.chars.push_back(spec[i + 2]);
        i += 5;
        continue;
      }
      // [c*n] or [c*] where c may itself be escaped.
      std::size_t j = i + 1;
      if (j < spec.size()) {
        std::size_t char_start = j;
        auto c = decode_escape(spec, j);
        if (c && j < spec.size() && spec[j] == '*') {
          std::size_t k = j + 1;
          std::size_t digits_start = k;
          while (k < spec.size() && std::isdigit(
                     static_cast<unsigned char>(spec[k])))
            ++k;
          if (k < spec.size() && spec[k] == ']') {
            std::string_view digits = spec.substr(
                digits_start, k - digits_start);
            if (digits.empty() || digits == "0") {
              set.fill_pos = static_cast<int>(set.chars.size());
              set.fill_char = *c;
            } else {
              // Checked repeat count (octal with a leading 0, else
              // decimal): an overflowing std::stol would abort the
              // process, and the eager expansion below cannot honor a
              // multi-GiB repeat anyway, so counts past the cap (and
              // digits invalid for the base) are rejected — truncating
              // instead would silently re-pair every later SET1/SET2
              // position.
              constexpr unsigned long long kMaxRepeat = 1 << 20;
              const unsigned long long base = digits[0] == '0' ? 8 : 10;
              unsigned long long n = 0;
              bool valid = true;
              for (char dch : digits) {
                const unsigned long long dv =
                    static_cast<unsigned long long>(dch - '0');
                if (dv >= base) {
                  valid = false;
                  break;
                }
                n = n * base + dv;
                if (n > kMaxRepeat) break;  // rejected below; no overflow
              }
              if (!valid || n > kMaxRepeat) {
                if (error) *error = "tr: invalid or too large repeat count";
                return std::nullopt;
              }
              set.chars.append(static_cast<std::size_t>(n), *c);
            }
            i = k + 1;
            continue;
          }
        }
        (void)char_start;
      }
      // Fall through: literal '['.
    }
    std::size_t before = i;
    auto c1 = decode_escape(spec, i);
    if (!c1) {
      if (error) *error = "tr: bad escape";
      return std::nullopt;
    }
    // Range c1-c2 (the '-' must be followed by a character).
    if (i + 1 < spec.size() && spec[i] == '-' && spec[i + 1] != '\0') {
      std::size_t j = i + 1;
      auto c2 = decode_escape(spec, j);
      if (c2 && static_cast<unsigned char>(*c1) <=
                    static_cast<unsigned char>(*c2)) {
        for (int ch = static_cast<unsigned char>(*c1);
             ch <= static_cast<unsigned char>(*c2); ++ch)
          set.chars.push_back(static_cast<char>(ch));
        i = j;
        continue;
      }
      if (error) *error = "tr: range endpoints out of order";
      return std::nullopt;
    }
    (void)before;
    set.chars.push_back(*c1);
  }
  return set;
}

std::string complement_chars(std::string_view chars) {
  std::array<bool, 256> in{};
  for (char c : chars) in[static_cast<unsigned char>(c)] = true;
  std::string out;
  for (int c = 0; c < 256; ++c)
    if (!in[static_cast<std::size_t>(c)]) out.push_back(static_cast<char>(c));
  return out;
}

class TrCommand final : public Command {
 public:
  TrCommand(std::string name, bool del, bool squeeze, std::string set1,
            std::string set2, std::string squeeze_set)
      : Command(std::move(name)), delete_(del), squeeze_(squeeze) {
    member1_.fill(false);
    squeeze_members_.fill(false);
    for (int c = 0; c < 256; ++c) map_[static_cast<std::size_t>(c)] =
        static_cast<char>(c);
    for (char c : set1) member1_[static_cast<unsigned char>(c)] = true;
    if (!set2.empty()) {
      for (std::size_t i = 0; i < set1.size(); ++i) {
        char to = i < set2.size() ? set2[i] : set2.back();
        map_[static_cast<unsigned char>(set1[i])] = to;
      }
    }
    for (char c : squeeze_set) squeeze_members_[static_cast<unsigned char>(c)] =
        true;
  }

  // The byte-level transform; `last_squeezed` carries the squeeze run
  // across calls so per-block streaming matches one whole-input pass even
  // when a squeezed run straddles a block boundary.
  void transform(std::string_view input, std::string* out,
                 int* last_squeezed) const {
    out->reserve(out->size() + input.size());
    for (char c : input) {
      unsigned char uc = static_cast<unsigned char>(c);
      if (delete_) {
        if (member1_[uc]) continue;
        if (squeeze_ && squeeze_members_[uc] && *last_squeezed == c) continue;
        out->push_back(c);
        *last_squeezed = squeeze_members_[uc] ? c : -1;
        continue;
      }
      char t = map_[uc];
      unsigned char ut = static_cast<unsigned char>(t);
      if (squeeze_ && squeeze_members_[ut] && *last_squeezed == t) continue;
      out->push_back(t);
      *last_squeezed = squeeze_members_[ut] ? t : -1;
    }
  }

  Result execute(std::string_view input) const override {
    std::string out;
    int last_squeezed = -1;
    transform(input, &out, &last_squeezed);
    return {std::move(out), 0, {}};
  }

  // Per-byte, but streamable only while record alignment survives: every
  // downstream consumer (stream chains, parallel feeders, spill sorts)
  // assumes mid-stream blocks end on a record boundary. A tr that deletes
  // or translates away '\n' emits blocks that end mid-record — the exact
  // case the batch path guards with outputs_newline_terminated — so it
  // must materialize. Translating *into* '\n' or squeezing it is fine: the
  // final byte of an aligned block stays '\n' (a squeeze can only drop a
  // leading repeat, never the block's last newline).
  Streamability streamability() const override {
    const auto nl = static_cast<unsigned char>('\n');
    const bool keeps_alignment =
        delete_ ? !member1_[nl] : map_[nl] == '\n';
    return keeps_alignment ? Streamability::kPerRecord
                           : Streamability::kNone;
  }
  std::unique_ptr<StreamProcessor> stream_processor() const override;

 private:
  bool delete_;
  bool squeeze_;
  std::array<bool, 256> member1_;
  std::array<bool, 256> squeeze_members_;
  std::array<char, 256> map_;
};

// tr is a per-byte map/filter; only the squeeze run survives a block
// boundary, carried here as the processor's one int of state.
class TrStreamProcessor final : public StreamProcessor {
 public:
  explicit TrStreamProcessor(const TrCommand& command) : command_(command) {}
  bool process(std::string_view block, std::string* out) override {
    command_.transform(block, out, &last_squeezed_);
    return true;
  }

 private:
  const TrCommand& command_;
  int last_squeezed_ = -1;
};

std::unique_ptr<StreamProcessor> TrCommand::stream_processor() const {
  if (streamability() == Streamability::kNone) return nullptr;
  return std::make_unique<TrStreamProcessor>(*this);
}

}  // namespace

CommandPtr make_tr(const Argv& argv, std::string* error) {
  bool complement = false, del = false, squeeze = false, truncate = false;
  std::vector<std::string> sets;
  for (std::size_t i = 1; i < argv.size(); ++i) {
    const std::string& a = argv[i];
    if (a.size() >= 2 && a[0] == '-' && a != "-" &&
        !std::isdigit(static_cast<unsigned char>(a[1])) && sets.empty()) {
      for (std::size_t j = 1; j < a.size(); ++j) {
        switch (a[j]) {
          case 'c': case 'C': complement = true; break;
          case 'd': del = true; break;
          case 's': squeeze = true; break;
          case 't': truncate = true; break;
          default:
            if (error) *error = "tr: unsupported flag";
            return nullptr;
        }
      }
    } else {
      sets.push_back(a);
    }
  }
  if (sets.empty() || sets.size() > 2) {
    if (error) *error = "tr: expected one or two sets";
    return nullptr;
  }
  auto e1 = expand_set(sets[0], error);
  if (!e1) return nullptr;
  std::string set1 = e1->chars;
  if (complement) set1 = complement_chars(set1);

  std::string set2;
  if (sets.size() == 2) {
    auto e2 = expand_set(sets[1], error);
    if (!e2) return nullptr;
    set2 = e2->chars;
    if (e2->fill_pos >= 0 && set2.size() < set1.size()) {
      set2.insert(static_cast<std::size_t>(e2->fill_pos),
                  std::string(set1.size() - set2.size(), e2->fill_char));
    }
    if (truncate && set1.size() > set2.size()) set1.resize(set2.size());
  }
  if (del && sets.size() == 2 && !squeeze) {
    if (error) *error = "tr: extra operand with -d";
    return nullptr;
  }
  // Squeeze applies to SET2 when translating, otherwise to SET1.
  std::string squeeze_set;
  if (squeeze) squeeze_set = sets.size() == 2 && !del ? set2 : set1;
  if (del && squeeze && sets.size() == 2) squeeze_set = set2;

  return std::make_shared<TrCommand>(argv_to_display(argv), del, squeeze,
                                     std::move(set1), std::move(set2),
                                     std::move(squeeze_set));
}

}  // namespace kq::cmd
