#include "unixcmd/command.h"

#include <cctype>
#include <limits>

#include "unixcmd/builtins.h"

namespace kq::cmd {
namespace {

template <typename T>
std::optional<T> parse_saturating(std::string_view s) {
  if (s.empty()) return std::nullopt;
  constexpr T kMax = std::numeric_limits<T>::max();
  T v = 0;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
    T digit = static_cast<T>(c - '0');
    if (v > (kMax - digit) / 10) {
      v = kMax;  // saturate: keep scanning to validate the digits
      continue;
    }
    v = static_cast<T>(v * 10 + digit);
  }
  return v;
}

}  // namespace

std::optional<long> parse_count(std::string_view s) {
  return parse_saturating<long>(s);
}

std::optional<std::size_t> parse_size_count(std::string_view s) {
  return parse_saturating<std::size_t>(s);
}

std::string argv_to_display(const std::vector<std::string>& argv) {
  std::string out;
  for (std::size_t i = 0; i < argv.size(); ++i) {
    if (i != 0) out.push_back(' ');
    const std::string& w = argv[i];
    bool needs_quote = w.empty();
    for (char c : w) {
      if (c == ' ' || c == '\t' || c == '\n' || c == '\'' || c == '"' ||
          c == '\\' || c == '|' || c == '$' || c == '*' || c == '(' ||
          c == ')' || c == ';' || c == '&') {
        needs_quote = true;
        break;
      }
    }
    if (!needs_quote) {
      out += w;
      continue;
    }
    // Single-quote, escaping embedded single quotes and newlines readably.
    out.push_back('\'');
    for (char c : w) {
      if (c == '\'') {
        out += "'\\''";
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out.push_back(c);
      }
    }
    out.push_back('\'');
  }
  return out;
}

}  // namespace kq::cmd
