#include "unixcmd/command.h"

namespace kq::cmd {

std::string argv_to_display(const std::vector<std::string>& argv) {
  std::string out;
  for (std::size_t i = 0; i < argv.size(); ++i) {
    if (i != 0) out.push_back(' ');
    const std::string& w = argv[i];
    bool needs_quote = w.empty();
    for (char c : w) {
      if (c == ' ' || c == '\t' || c == '\n' || c == '\'' || c == '"' ||
          c == '\\' || c == '|' || c == '$' || c == '*' || c == '(' ||
          c == ')' || c == ';' || c == '&') {
        needs_quote = true;
        break;
      }
    }
    if (!needs_quote) {
      out += w;
      continue;
    }
    // Single-quote, escaping embedded single quotes and newlines readably.
    out.push_back('\'');
    for (char c : w) {
      if (c == '\'') {
        out += "'\\''";
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out.push_back(c);
      }
    }
    out.push_back('\'');
  }
  return out;
}

}  // namespace kq::cmd
