// Fused bounded top-N commands — the targets of the pipeline-rewrite pass
// (compile::rewrite_bounded_windows):
//
//   sort <spec> | head -n N            ->  top-n command (make_top_n_command)
//   uniq … | sort <spec> | head -n N   ->  top-k command
//                                          (make_window_top_n_command)
//
// A top-n command is a kWindow command whose window is a bounded ordered
// multiset of at most N records under the sort comparator, with an input
// sequence number as the tie-break — exactly the order stable_sort gives
// sort's output — so finish() emits the first N lines of `sort <spec>`
// byte-for-byte while holding O(N) records instead of materializing (or
// external-merge-sorting) the whole input. The -u comparators dedup by key
// class keeping the first occurrence, mirroring SortSpec::sort_stream.
//
// The top-k form composes a preceding window command's processor (uniq's
// O(1) run window) in front of the top-n window, so `uniq -c | sort -rn |
// head -n K` runs as ONE node holding one run plus K counted lines.
//
// For pathological N (a top-n wider than the spill threshold) the window
// exports its current set as a sorted run (drain_sorted_run) — every
// record it ever evicted had N surviving smaller records in the same
// epoch, so the merged union of all exported runs still contains the true
// top N — and output_limit() caps the re-streamed external merge at N
// records.
#pragma once

#include <memory>

#include "unixcmd/command.h"
#include "unixcmd/sort_cmd.h"

namespace kq::cmd {

// `sort <spec> | head -n N` fused. `display` is the command's display name;
// `n` < 0 is treated as 0 (head never emits a negative count).
CommandPtr make_top_n_command(std::shared_ptr<const SortSpec> spec, long n,
                              std::string display);

// `<window command> | sort <spec> | head -n N` fused. `first` must declare
// Streamability::kWindow with a bounded resident window (uniq); its
// processor's emission feeds the top-n window.
CommandPtr make_window_top_n_command(CommandPtr first,
                                     std::shared_ptr<const SortSpec> spec,
                                     long n, std::string display);

// The sort comparator behind a fused top-n/top-k command, or nullptr when
// `command` is not one. The streaming runtime spills an oversized top-n
// window as sorted runs under this spec (compile::lower_plan consults it
// alongside sort_spec_of).
std::shared_ptr<const SortSpec> fused_sort_spec_of(const Command& command);

}  // namespace kq::cmd
