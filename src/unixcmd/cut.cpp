// Built-in `cut`: -c LIST for character positions and -d CHAR -f LIST for
// fields. Like GNU cut, selected positions are emitted in input order
// (specifying `-f 3,1` yields fields 1 then 3) and lines without the field
// delimiter pass through whole unless -s is given.

#include <algorithm>
#include <cctype>
#include <optional>

#include "text/streams.h"
#include "text/strings.h"
#include "unixcmd/builtins.h"

namespace kq::cmd {
namespace {

struct Range {
  std::size_t lo;  // 1-based, inclusive
  std::size_t hi;  // inclusive; npos = open-ended
};

std::optional<std::vector<Range>> parse_list(std::string_view list) {
  std::vector<Range> out;
  for (std::string_view part : text::split(list, ',')) {
    if (part.empty()) return std::nullopt;
    std::size_t dash = part.find('-');
    // Saturating parse: a range bound past SIZE_MAX collapses to the
    // open-ended sentinel instead of wrapping into a garbage position.
    auto parse_num = [](std::string_view s) { return parse_size_count(s); };
    if (dash == std::string_view::npos) {
      auto n = parse_num(part);
      if (!n || *n == 0) return std::nullopt;
      out.push_back({*n, *n});
    } else {
      std::string_view lo_s = part.substr(0, dash);
      std::string_view hi_s = part.substr(dash + 1);
      std::size_t lo = 1, hi = std::string_view::npos;
      if (!lo_s.empty()) {
        auto n = parse_num(lo_s);
        if (!n || *n == 0) return std::nullopt;
        lo = *n;
      }
      if (!hi_s.empty()) {
        auto n = parse_num(hi_s);
        if (!n || *n == 0) return std::nullopt;
        hi = *n;
      }
      if (hi != std::string_view::npos && hi < lo) return std::nullopt;
      out.push_back({lo, hi});
    }
  }
  return out;
}

bool selected(const std::vector<Range>& ranges, std::size_t pos) {
  for (const Range& r : ranges)
    if (pos >= r.lo && pos <= r.hi) return true;
  return false;
}

class CutCommand final : public Command {
 public:
  CutCommand(std::string name, bool by_chars, char delim,
             std::vector<Range> ranges, bool only_delimited)
      : Command(std::move(name)), by_chars_(by_chars), delim_(delim),
        ranges_(std::move(ranges)), only_delimited_(only_delimited) {}

  Result execute(std::string_view input) const override {
    std::string out;
    out.reserve(input.size());
    for (std::string_view line : text::lines(input)) {
      if (by_chars_) {
        for (std::size_t i = 0; i < line.size(); ++i)
          if (selected(ranges_, i + 1)) out.push_back(line[i]);
      } else {
        if (line.find(delim_) == std::string_view::npos) {
          if (!only_delimited_) out += line;
          if (!only_delimited_) out.push_back('\n');
          continue;
        }
        auto fields = text::split(line, delim_);
        bool first = true;
        for (std::size_t i = 0; i < fields.size(); ++i) {
          if (!selected(ranges_, i + 1)) continue;
          if (!first) out.push_back(delim_);
          out += fields[i];
          first = false;
        }
      }
      out.push_back('\n');
    }
    return {std::move(out), 0, {}};
  }

  // Pure per-line map (GNU cut re-terminates an unterminated final line,
  // which composes per block).
  Streamability streamability() const override {
    return Streamability::kPerRecord;
  }
  std::unique_ptr<StreamProcessor> stream_processor() const override {
    return std::make_unique<PerBlockProcessor>(*this);
  }

 private:
  bool by_chars_;
  char delim_;
  std::vector<Range> ranges_;
  bool only_delimited_;
};

}  // namespace

CommandPtr make_cut(const Argv& argv, std::string* error) {
  std::optional<std::string> char_list, field_list;
  char delim = '\t';
  bool only_delimited = false;
  for (std::size_t i = 1; i < argv.size(); ++i) {
    const std::string& a = argv[i];
    auto take_value = [&](std::string_view flag) -> std::optional<std::string> {
      if (a.size() > flag.size()) return a.substr(flag.size());
      if (i + 1 < argv.size()) return argv[++i];
      return std::nullopt;
    };
    if (a.rfind("-c", 0) == 0) {
      char_list = take_value("-c");
      if (!char_list) {
        if (error) *error = "cut: missing -c list";
        return nullptr;
      }
    } else if (a.rfind("-f", 0) == 0) {
      field_list = take_value("-f");
      if (!field_list) {
        if (error) *error = "cut: missing -f list";
        return nullptr;
      }
    } else if (a.rfind("-d", 0) == 0) {
      auto v = take_value("-d");
      if (!v || v->size() != 1) {
        if (error) *error = "cut: delimiter must be a single character";
        return nullptr;
      }
      delim = (*v)[0];
    } else if (a == "-s") {
      only_delimited = true;
    } else {
      if (error) *error = "cut: unsupported flag " + a;
      return nullptr;
    }
  }
  if (char_list.has_value() == field_list.has_value()) {
    if (error) *error = "cut: exactly one of -c / -f required";
    return nullptr;
  }
  auto ranges = parse_list(char_list ? *char_list : *field_list);
  if (!ranges) {
    if (error) *error = "cut: bad list";
    return nullptr;
  }
  return std::make_shared<CutCommand>(argv_to_display(argv),
                                      char_list.has_value(), delim,
                                      std::move(*ranges), only_delimited);
}

}  // namespace kq::cmd
