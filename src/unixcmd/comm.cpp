// Built-in `comm`: compares two sorted inputs line by line. The pipeline
// form used by the benchmarks is `comm -23 - dictfile`: stdin as file 1, a
// dictionary from the (virtual) file system as file 2, suppressing columns
// 2 and 3 so only lines unique to stdin remain — the `spell` idiom.
//
// Like the paper's probe classification expects (§3.2 "Preprocessing"),
// unsorted input produces a non-zero exit status and an error message.

#include "text/streams.h"
#include "unixcmd/builtins.h"

namespace kq::cmd {
namespace {

int raw_compare(std::string_view a, std::string_view b) {
  std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    unsigned char ca = static_cast<unsigned char>(a[i]);
    unsigned char cb = static_cast<unsigned char>(b[i]);
    if (ca != cb) return ca < cb ? -1 : 1;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

class CommCommand final : public Command {
 public:
  CommCommand(std::string name, bool show1, bool show2, bool show3,
              std::string file2_name, const vfs::Vfs* fs)
      : Command(std::move(name)), show1_(show1), show2_(show2),
        show3_(show3), file2_name_(std::move(file2_name)), fs_(fs) {}

  Result execute(std::string_view input) const override {
    auto file2 = fs_->read(file2_name_);
    if (!file2) {
      return {"", 1, "comm: " + file2_name_ + ": no such file"};
    }
    auto a = text::lines(input);
    auto b = text::lines(*file2);
    for (std::size_t i = 1; i < a.size(); ++i) {
      if (raw_compare(a[i - 1], a[i]) > 0)
        return {"", 1, "comm: file 1 is not in sorted order"};
    }
    std::string out;
    std::string col2_prefix = show1_ ? "\t" : "";
    std::string col3_prefix;
    if (show1_) col3_prefix += "\t";
    if (show2_) col3_prefix += "\t";
    std::size_t i = 0, j = 0;
    while (i < a.size() || j < b.size()) {
      int c;
      if (i >= a.size()) c = 1;
      else if (j >= b.size()) c = -1;
      else c = raw_compare(a[i], b[j]);
      if (c < 0) {
        if (show1_) {
          out += a[i];
          out.push_back('\n');
        }
        ++i;
      } else if (c > 0) {
        if (show2_) {
          out += col2_prefix;
          out += b[j];
          out.push_back('\n');
        }
        ++j;
      } else {
        if (show3_) {
          out += col3_prefix;
          out += a[i];
          out.push_back('\n');
        }
        ++i;
        ++j;
      }
    }
    return {std::move(out), 0, {}};
  }

 private:
  bool show1_, show2_, show3_;
  std::string file2_name_;
  const vfs::Vfs* fs_;
};

}  // namespace

CommandPtr make_comm(const Argv& argv, const vfs::Vfs* fs,
                     std::string* error) {
  bool show1 = true, show2 = true, show3 = true;
  std::vector<std::string> files;
  for (std::size_t i = 1; i < argv.size(); ++i) {
    const std::string& a = argv[i];
    if (a.size() >= 2 && a[0] == '-' && a != "-") {
      for (std::size_t j = 1; j < a.size(); ++j) {
        switch (a[j]) {
          case '1': show1 = false; break;
          case '2': show2 = false; break;
          case '3': show3 = false; break;
          default:
            if (error) *error = "comm: unsupported flag";
            return nullptr;
        }
      }
    } else {
      files.push_back(a);
    }
  }
  if (files.size() != 2 || files[0] != "-") {
    if (error) *error = "comm: expected `comm [-123] - FILE`";
    return nullptr;
  }
  if (!fs) fs = &vfs::Vfs::global();
  return std::make_shared<CommCommand>(argv_to_display(argv), show1, show2,
                                       show3, files[1], fs);
}

}  // namespace kq::cmd
