// Built-in `sort` and the comparator/merge machinery shared with the DSL's
// `merge <flags>` combiner (§3.5: merge is "sort -m <flags>").
//
// Supported flags: -n (numeric), -r (reverse), -f (fold case), -u (unique),
// -d (dictionary order), -m (merge mode), -kF[opts] single-key specs like
// -k1n / -k1,1 / -k2, and --parallel=N (accepted, ignored — the evaluation
// infrastructure forces serial sort just like the paper's, §4).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "unixcmd/builtins.h"

namespace kq::cmd {

struct SortKey {
  int start_field = 1;   // 1-based
  int end_field = 0;     // 0 = through end of line
  bool numeric = false;
  bool reverse = false;
  bool fold = false;
  bool dictionary = false;
};

class SortSpec {
 public:
  // Parses sort flags (argv without the program name). Returns nullopt on
  // unsupported flags.
  static std::optional<SortSpec> parse(const std::vector<std::string>& flags,
                                       std::string* error = nullptr);

  // Three-way comparison of two lines under this spec (ignoring -r at the
  // top level when `apply_reverse` is false; merge needs the forward order).
  int compare(std::string_view a, std::string_view b) const;

  // True iff a precedes-or-equals b in output order.
  bool less_equal(std::string_view a, std::string_view b) const {
    return compare(a, b) <= 0;
  }

  // Sorts the lines of stream `input` (uniq-filtering if -u).
  std::string sort_stream(std::string_view input) const;

  // Merges k pre-sorted streams stably (`sort -m`); streams that are not
  // sorted produce the same garbage real sort -m would, so callers check
  // sortedness for legality first (see dsl::domain).
  std::string merge_streams(const std::vector<std::string_view>& streams) const;

  // True iff the lines of `input` are already in output order.
  bool is_sorted_stream(std::string_view input) const;

  bool unique() const { return unique_; }
  bool merge_mode() const { return merge_mode_; }
  const std::string& canonical_flags() const { return canonical_flags_; }

 private:
  int compare_keys(std::string_view a, std::string_view b) const;

  bool numeric_ = false;
  bool reverse_ = false;
  bool fold_ = false;
  bool dictionary_ = false;
  bool unique_ = false;
  bool merge_mode_ = false;
  bool stable_only_ = false;  // -s: no last-resort comparison
  std::vector<SortKey> keys_;
  std::string canonical_flags_;
};

CommandPtr make_sort_command(const Argv& argv, std::string* error);

// The SortSpec behind a built-in `sort` command instance, or nullptr when
// `command` is not one. Lets the streaming runtime (stream/spill.*) run a
// sequential sort stage as an external merge sort — spec->sort_stream is
// the command's exact semantics, so spilled sorted runs re-merged under the
// same comparator reproduce its output byte-for-byte.
std::shared_ptr<const SortSpec> sort_spec_of(const Command& command);

}  // namespace kq::cmd
