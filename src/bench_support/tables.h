// Plain-text table formatting for the benchmark binaries, in the layout of
// the paper's tables (script rows, time columns with "(N.N x)" speedups).
#pragma once

#include <iostream>
#include <string>
#include <vector>

namespace kq::bench {

// Formats seconds compactly: "12.34 s" / "0.123 s".
std::string format_seconds(double seconds);

// "(8.4x)" speedup of `t` relative to `base`; "(n/a)" for nonpositive input.
std::string format_speedup(double base, double t);

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace kq::bench
