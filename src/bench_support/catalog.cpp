#include "bench_support/catalog.h"

#include <set>

#include "text/shellwords.h"
#include "text/strings.h"

namespace kq::bench {
namespace {

// Shorthand: the poets scripts all start by mapping book names to paths
// and concatenating the books (Unix-for-Poets structure).
const std::string kPoets = "sed 's;^;pg/;' | xargs cat | ";

std::vector<Script> build_catalog() {
  std::vector<Script> scripts;
  auto add = [&scripts](std::string suite, std::string name, Workload input,
                        std::vector<std::string> pipelines,
                        std::size_t bytes = 1 << 20) {
    scripts.push_back(Script{std::move(suite), std::move(name),
                             std::move(pipelines), input, bytes});
  };

  // ----------------------------------------------------- analytics-mts --
  // Athens bus telemetry: f1=datetime, f2=line, f3=vehicle.
  add("analytics-mts", "1.sh (vehicles per day)", Workload::kTransitCsv,
      {"sed 's/T..:..:..//' | cut -d ',' -f 1,3 | sort -u | "
       "cut -d ',' -f 1 | sort | uniq -c | awk -v OFS='\\t' '{print $2,$1}'"});
  add("analytics-mts", "2.sh (vehicle days on road)", Workload::kTransitCsv,
      {"sed 's/T..:..:..//' | cut -d ',' -f 1,3 | sort -u | "
       "cut -d ',' -f 2 | sort | uniq -c | sort -k1n | "
       "awk -v OFS='\\t' '{print $2,$1}'"});
  add("analytics-mts", "3.sh (vehicle hours on road)", Workload::kTransitCsv,
      {"sed 's/T\\(..\\):..:../,\\1/' | cut -d ',' -f 1,2,4 | sort -u | "
       "cut -d ',' -f 3 | sort | uniq -c | sort -k1n | "
       "awk -v OFS='\\t' '{print $2,$1}'"});
  add("analytics-mts", "4.sh (hours monitored per day)",
      Workload::kTransitCsv,
      {"sed 's/T\\(..\\):..:../,\\1/' | cut -d ',' -f 1,2 | sort -u | "
       "cut -d ',' -f 1 | sort | uniq -c | "
       "awk -v OFS='\\t' '{print $2,$1}'"});

  // --------------------------------------------------------- oneliners --
  add("oneliners", "bi-grams.sh", Workload::kGutenberg,
      {"tr -cs A-Za-z '\\n' | tr A-Z a-z | paste - - | sort | uniq"});
  add("oneliners", "diff.sh", Workload::kGutenberg,
      {"sed 1d",
       "tr '[:lower:]' '[:upper:]' | sort",
       "tr '[:upper:]' '[:lower:]' | sort",
       "tail +2",
       "paste - -"});
  add("oneliners", "nfa-regex.sh", Workload::kGutenberg,
      {"tr A-Z a-z | grep '\\(.\\).*\\1\\(.\\).*\\2\\(.\\).*\\3\\(.\\).*\\4'"});
  add("oneliners", "set-diff.sh", Workload::kGutenberg,
      {"sed 1d",
       "cut -d ' ' -f 1 | tr A-Z a-z | sort",
       "tr '[:lower:]' '[:upper:]' | sort",
       "tail +2",
       "paste - -"});
  add("oneliners", "shortest-scripts.sh", Workload::kScriptList,
      {"xargs file | grep 'shell script' | cut -d: -f1 | xargs -L 1 wc -l | "
       "grep -v '^0$' | sort -n | head -15"});
  add("oneliners", "sort-sort.sh", Workload::kGutenberg,
      {"tr A-Z a-z | sort | sort -r"});
  add("oneliners", "sort.sh", Workload::kGutenberg, {"sort"});
  add("oneliners", "spell.sh", Workload::kGutenberg,
      {"iconv -f utf-8 -t ascii//translit | col -bx | tr -cs A-Za-z '\\n' | "
       "tr A-Z a-z | tr -d '[:punct:]' | sort | uniq | comm -23 - "
       "dict.sorted"});
  add("oneliners", "top-n.sh", Workload::kGutenberg,
      {"tr -cs A-Za-z '\\n' | tr A-Z a-z | sort | uniq -c | sort -rn | "
       "sed 100q"});
  add("oneliners", "wf.sh", Workload::kGutenberg,
      {"tr -cs A-Za-z '\\n' | tr A-Z a-z | sort | uniq -c | sort -rn"});

  // ------------------------------------------------------------- poets --
  add("poets", "1_1.sh (count_words)", Workload::kBookList,
      {kPoets + "tr -sc '[A-Z][a-z]' '[\\012*]' | sort | uniq -c | sort -rn"});
  add("poets", "2_1.sh (merge_upper)", Workload::kBookList,
      {kPoets + "tr '[a-z]' '[A-Z]' | tr -sc '[A-Z]' '[\\012*]' | sort | "
                "uniq -c | sort -rn"});
  add("poets", "2_2.sh (count_vowel_seq)", Workload::kBookList,
      {kPoets + "tr 'a-z' '[A-Z]' | tr -sc 'AEIOU' '[\\012*]' | sort | "
                "uniq -c | sort -rn"});
  add("poets", "3_1.sh (sort)", Workload::kBookList,
      {kPoets + "tr -sc '[A-Z][a-z]' '[\\012*]' | sort | uniq -c | sort -nr | "
                "head"});
  add("poets", "3_2.sh (sort_words_by_folding)", Workload::kBookList,
      {kPoets + "tr -sc '[A-Z][a-z]' '[\\012*]' | sort -f | uniq -c | "
                "sort -nr | head"});
  add("poets", "3_3.sh (sort_words_by_rhyming)", Workload::kBookList,
      {kPoets + "tr -sc '[A-Z][a-z]' '[\\012*]' | rev | sort | rev | "
                "uniq -c | sort -nr | head"});
  add("poets", "4_3.sh (bigrams)", Workload::kBookList,
      {kPoets + "tr -sc '[A-Z][a-z]' '[\\012*]' | tr A-Z a-z",
       "tail +2",
       "paste - - | sort | uniq -c"});
  add("poets", "4_3b.sh (count_trigrams)", Workload::kBookList,
      {kPoets + "tr -sc '[A-Z][a-z]' '[\\012*]' | tr A-Z a-z",
       "tail +2",
       "tail +3",
       "paste - - - | sort | uniq -c"});
  add("poets", "6_1.sh (trigram_rec)", Workload::kBookList,
      {kPoets + "grep 'the land of' | sort | uniq -c | sort -nr | sed 5q",
       kPoets + "grep 'And he said' | sort | uniq -c | sort -nr | sed 5q"});
  add("poets", "6_1_1.sh (uppercase_by_token)", Workload::kBookList,
      {kPoets + "tr -sc '[A-Z][a-z]' '[\\012*]' | grep '^[A-Z]' | wc -l"});
  add("poets", "6_1_2.sh (uppercase_by_type)", Workload::kBookList,
      {kPoets + "tr -sc '[A-Z][a-z]' '[\\012*]' | sort | uniq | "
                "grep -c '^[A-Z]'"});
  add("poets", "6_2.sh (4letter_words)", Workload::kBookList,
      {kPoets + "tr -sc '[A-Z][a-z]' '[\\012*]' | tr A-Z a-z | "
                "grep -c '^....$'",
       kPoets + "tr -sc '[A-Z][a-z]' '[\\012*]' | grep '^....$' | sort -u | "
                "wc -l"});
  add("poets", "6_3.sh (words_no_vowels)", Workload::kBookList,
      {kPoets + "tr -sc '[A-Z][a-z]' '[\\012*]' | grep -vi '[aeiou]' | "
                "sort | uniq -c | sort -nr"});
  add("poets", "6_4.sh (1syllable_words)", Workload::kBookList,
      {kPoets + "tr -sc '[A-Z][a-z]' '[\\012*]' | tr A-Z a-z | "
                "grep -i '^[^aeiou]*[aeiou][^aeiou]*$' | sort | uniq -c | "
                "sort -nr"});
  add("poets", "6_5.sh (2syllable_words)", Workload::kBookList,
      {kPoets + "tr -sc '[A-Z][a-z]' '[\\012*]' | tr A-Z a-z | "
                "grep -i '^[^aeiou]*[aeiou][^aeiou]*[aeiou][^aeiou]*$' | "
                "sort | uniq -c | sort -nr"});
  add("poets", "6_7.sh (verses_2om_3om_2instances)", Workload::kBookList,
      {kPoets + "grep 'light.*light' | wc -l",
       kPoets + "grep 'light.*light.*light' | wc -l",
       kPoets + "grep 'light' | grep 'light.*light' | "
                "grep -vc 'light.*light.*light'"});
  add("poets", "7_2.sh (count_consonant_seq)", Workload::kBookList,
      {kPoets + "tr 'a-z' '[A-Z]' | tr -sc 'BCDFGHJKLMNPQRSTVWXYZ' "
                "'[\\012*]' | sort | uniq -c | sort -nr"});
  add("poets", "8.2_1.sh (vowel_sequencies_gr_1K)", Workload::kBookList,
      {kPoets + "tr -sc 'AEIOUaeiou' '[\\012*]' | sort | uniq -c | "
                "awk '$1 >= 1000' | sort -rn | head"});
  add("poets", "8.2_2.sh (bigrams_appear_twice)", Workload::kBookList,
      {kPoets + "tr -sc '[A-Z][a-z]' '[\\012*]' | tr A-Z a-z",
       "tail +2",
       "paste - - | sort | uniq -c",
       "sed 1d"});
  add("poets", "8.3_2.sh (find_anagrams)", Workload::kBookList,
      {kPoets + "tr -sc '[A-Z][a-z]' '[\\012*]' | sort -u",
       "rev",
       "sort",
       "uniq -c | awk '$1 >= 2 {print $2}' | sort"});
  add("poets", "8.3_3.sh (compare_exodus_genesis)", Workload::kBookList,
      {kPoets + "tr -sc '[A-Z][a-z]' '[\\012*]' | sort | uniq",
       "sort | head",
       "sort | uniq -c | head"});
  add("poets", "8_1.sh (sort_words_by_n_syllables)", Workload::kBookList,
      {kPoets + "tr -sc '[A-Z][a-z]' '[\\012*]' | tr A-Z a-z | sort -u",
       "tr -sc '[AEIOUaeiou\\012]' ' ' | awk '{print NF}'",
       "paste - - | sort -n | uniq -c"});

  // ------------------------------------------------------------ unix50 --
  add("unix50", "1.sh (1.0: extract last name)", Workload::kNameList,
      {"cut -d ' ' -f 2"});
  add("unix50", "2.sh (1.1: extract names and sort)", Workload::kNameList,
      {"cut -d ' ' -f 2 | sort"});
  add("unix50", "3.sh (1.2: extract names and sort)", Workload::kNameList,
      {"sort | head -n 2"});
  add("unix50", "4.sh (1.3: sort top first names)", Workload::kNameList,
      {"cut -d ' ' -f 1 | sort | uniq -c | sort -rn"});
  add("unix50", "5.sh (2.1: all Unix utilities)", Workload::kFreeText,
      {"cut -d ' ' -f 4 | tr -d ','"});
  add("unix50", "6.sh (3.1: first letter of last names)", Workload::kNameList,
      {"cut -d ' ' -f 2 | cut -c 1-1 | sort | uniq -c"});
  add("unix50", "7.sh (4.1: number of rounds)", Workload::kChessGames,
      {"tr ' ' '\\n' | grep '\\.' | wc -l"});
  add("unix50", "8.sh (4.2: pieces captured)", Workload::kChessGames,
      {"tr ' ' '\\n' | grep 'x' | grep '\\.' | wc -l"});
  add("unix50", "9.sh (4.3: pieces captured with pawn)",
      Workload::kChessGames,
      {"tr ' ' '\\n' | grep 'x' | grep '\\.' | cut -d '.' -f 2 | "
       "grep -v '[KQRBN]' | wc -l"});
  add("unix50", "10.sh (4.4: histogram by piece)", Workload::kChessGames,
      {"tr ' ' '\\n' | grep 'x' | grep '\\.' | cut -d '.' -f 2 | "
       "grep '[KQRBN]' | cut -c 1-1 | sort | uniq -c | sort -rn"});
  add("unix50", "11.sh (4.5: histogram by piece and pawn)",
      Workload::kChessGames,
      {"tr ' ' '\\n' | grep 'x' | grep '\\.' | cut -d '.' -f 2 | "
       "tr '[a-z]' 'P' | cut -c 1-1 | sort | uniq -c | sort -rn"});
  add("unix50", "12.sh (4.6: piece used most)", Workload::kChessGames,
      {"tr ' ' '\\n' | grep '\\.' | cut -d '.' -f 2 | cut -c 1-1 | sort | "
       "uniq -c | sort -rn | head -n 3 | tail -n 1"});
  add("unix50", "13.sh (5.1: extract hellow world)", Workload::kCodeText,
      {"grep 'print' | cut -d '\"' -f 2 | cut -c 1-12"});
  add("unix50", "14.sh (6.1: order bodies)", Workload::kNameList,
      {"awk '{print $2, $0}' | sort -nr | cut -d ' ' -f 2"});
  add("unix50", "15.sh (7.1: number of versions)", Workload::kTabRecords,
      {"cut -f 1 | grep 'AT&T' | wc -l"});
  add("unix50", "16.sh (7.2: most frequent machine)", Workload::kTabRecords,
      {"cut -f 2 | sort | uniq -c | sort -rn | head -n 1 | tr -s ' ' '\\n' | "
       "tail -n 1"});
  add("unix50", "17.sh (7.3: decades unix released)", Workload::kTabRecords,
      {"cut -f 4 | cut -c 3-3 | sort | uniq | sed s/$/0s/"});
  add("unix50", "18.sh (8.1: count unix birth-year)", Workload::kFreeText,
      {"tr ' ' '\\n' | grep 1969 | wc -l"});
  add("unix50", "19.sh (8.2: location office)", Workload::kFreeText,
      {"grep 'Bell' | awk 'length <= 45' | sort -u | awk '{$1=$1};1'"});
  add("unix50", "20.sh (8.3: four most involved)", Workload::kFreeText,
      {"grep '(' | cut -d '(' -f 2 | cut -d ')' -f 1 | head -n 4"});
  add("unix50", "21.sh (8.4: longest words w/o hyphens)",
      Workload::kGutenberg,
      {"tr -c '[a-z][A-Z]' '\\n' | sort -u | awk 'length >= 16'"});
  add("unix50", "23.sh (9.1: extract word PORT)", Workload::kFreeText,
      {"tr -s ' ' '\\n' | grep '[A-Z]' | tr '[a-z]' '\\n' | grep -v '^$' | "
       "tr -d '\\n' | cut -c 1-4"});
  add("unix50", "24.sh (9.2: extract word BELL)", Workload::kFreeText,
      {"tr -s ' ' '\\n' | grep 'BELL'"});
  add("unix50", "25.sh (9.3: animal decorate)", Workload::kFreeText,
      {"cut -c 1-2 | sort -u"});
  add("unix50", "26.sh (9.4: four corners)", Workload::kFreeText,
      {"grep '\"' | cut -d '\"' -f 2 | head -n 4 | sort | uniq"});
  add("unix50", "28.sh (9.6: follow directions)", Workload::kFreeText,
      {"tr -c '[A-Z]' '\\n' | grep -v '^$' | cut -c 1-1 | head -n 40 | "
       "tail -n 20 | sort | uniq -c | sort -rn | head -n 5 | rev"});
  add("unix50", "29.sh (9.7: four corners)", Workload::kFreeText,
      {"head -n 10 | tail -n 3 | cut -c 1-2 | rev"});
  add("unix50", "30.sh (9.8: TELE-communications)", Workload::kFreeText,
      {"tr -c '[a-z][A-Z]' '\\n' | grep -v '^$' | cut -c 1-4 | sort | "
       "uniq -c | sort -rn | head -n 8 | rev"});
  add("unix50", "31.sh (9.9)", Workload::kFreeText,
      {"tr -c '[a-z][A-Z]' '\\n' | grep -v '^$' | rev | cut -c 1-2 | sort | "
       "uniq -c | sort -rn | head -n 10 | tail -n 3"});
  add("unix50", "32.sh (10.1: count recipients)", Workload::kMailText,
      {"grep 'To:' | tr -s ' ' '\\n' | grep '@' | wc -l"});
  add("unix50", "33.sh (10.2: list recipients)", Workload::kMailText,
      {"grep 'To:' | cut -d ' ' -f 2 | sort -u"});
  add("unix50", "34.sh (10.3: extract username)", Workload::kMailText,
      {"grep '@' | tr -s ' ' '\\n' | grep '@' | fmt -w1 | sed 's/@.*//' | "
       "sort -u | tr '[A-Z]' '[a-z]'"});
  add("unix50", "35.sh (11.1: year received medal)", Workload::kTabRecords,
      {"grep 'Unix' | cut -f 4"});
  add("unix50", "36.sh (11.2: most repeated first name)",
      Workload::kNameList,
      {"cut -d ' ' -f 1 | sort | uniq -c | sort -rn | head -n 1 | "
       "tr -s ' ' '\\n' | grep -v '^$' | tail -n 1"});

  return scripts;
}

}  // namespace

const std::vector<Script>& all_scripts() {
  static const std::vector<Script> catalog = build_catalog();
  return catalog;
}

const Script* find_script(const std::string& suite,
                          const std::string& name_prefix) {
  for (const Script& s : all_scripts()) {
    if (s.suite == suite && s.name.rfind(name_prefix, 0) == 0) return &s;
  }
  return nullptr;
}

std::vector<const Script*> headline_scripts() {
  // Table 1: the two longest-running scripts per suite.
  static const std::pair<const char*, const char*> kPicks[] = {
      {"analytics-mts", "2.sh"}, {"analytics-mts", "3.sh"},
      {"oneliners", "set-diff.sh"}, {"oneliners", "wf.sh"},
      {"poets", "4_3b.sh"}, {"poets", "8.2_2.sh"},
      {"unix50", "21.sh"}, {"unix50", "23.sh"},
  };
  std::vector<const Script*> out;
  for (const auto& [suite, name] : kPicks) {
    const Script* s = find_script(suite, name);
    if (s) out.push_back(s);
  }
  return out;
}

std::vector<const Script*> long_scripts() {
  // Table 7: scripts with serial time >= 3 minutes in the paper.
  static const std::pair<const char*, const char*> kPicks[] = {
      {"analytics-mts", "1.sh"}, {"analytics-mts", "2.sh"},
      {"analytics-mts", "3.sh"}, {"oneliners", "bi-grams.sh"},
      {"oneliners", "diff.sh"}, {"oneliners", "nfa-regex.sh"},
      {"oneliners", "set-diff.sh"}, {"oneliners", "sort.sh"},
      {"oneliners", "spell.sh"}, {"oneliners", "top-n.sh"},
      {"oneliners", "wf.sh"}, {"poets", "1_1.sh"}, {"poets", "2_1.sh"},
      {"poets", "3_1.sh"}, {"poets", "3_2.sh"}, {"poets", "3_3.sh"},
      {"poets", "4_3.sh"}, {"poets", "4_3b.sh"}, {"poets", "6_1_2.sh"},
      {"poets", "6_2.sh"}, {"poets", "6_3.sh"}, {"poets", "6_4.sh"},
      {"poets", "6_5.sh"}, {"poets", "7_2.sh"}, {"poets", "8.2_1.sh"},
      {"poets", "8.2_2.sh"}, {"poets", "8.3_2.sh"}, {"poets", "8.3_3.sh"},
      {"poets", "8_1.sh"}, {"unix50", "14.sh"}, {"unix50", "21.sh"},
      {"unix50", "23.sh"}, {"unix50", "28.sh"},
  };
  std::vector<const Script*> out;
  for (const auto& [suite, name] : kPicks) {
    const Script* s = find_script(suite, name);
    if (s) out.push_back(s);
  }
  return out;
}

std::vector<std::string> unique_commands() {
  std::vector<std::string> out;
  std::set<std::string> seen;
  for (const Script& script : all_scripts()) {
    for (const std::string& pipeline : script.pipelines) {
      auto stages = text::split_pipeline(pipeline);
      if (!stages) continue;
      for (const std::string& stage : *stages) {
        std::string display = std::string(text::trim(stage));
        if (display.empty()) continue;
        if (display.rfind("cat ", 0) == 0 || display == "cat") continue;
        if (seen.insert(display).second) out.push_back(display);
      }
    }
  }
  return out;
}

std::string prepare_input(const Script& script, std::size_t bytes,
                          std::uint64_t seed, vfs::Vfs& fs) {
  std::string input = generate_workload(script.input, bytes, seed, fs);
  for (const std::string& pipeline : script.pipelines) {
    if (pipeline.find("dict.sorted") != std::string::npos) {
      install_spell_dictionary(fs, seed);
      break;
    }
  }
  return input;
}

}  // namespace kq::bench
