// Synthetic workload generators standing in for the paper's benchmark
// inputs (DESIGN.md §2): Project Gutenberg books, Athens bus telemetry,
// chess game logs, and the themed Unix50 record files. Each generator is
// deterministic in its seed and preserves the statistical features the
// pipelines are sensitive to (duplicate ratios, field structure,
// sortedness, capitalization, punctuation).
#pragma once

#include <cstdint>
#include <string>

#include "vfs/vfs.h"

namespace kq::bench {

// Kinds of script input; each catalog entry names one.
enum class Workload {
  kGutenberg,     // English-like prose (poets, oneliners text scripts)
  kBookList,      // list of book file names; the books live in the VFS
  kTransitCsv,    // "YYYY-MM-DDTHH:MM:SS,line,vehicle" telemetry
  kChessGames,    // move lists with pieces/captures ("4.x" Unix50 puzzles)
  kNameList,      // "First Last" rows (Unix50 1.x)
  kTabRecords,    // name<TAB>machine<TAB>version<TAB>year rows (Unix50 7.x)
  kFreeText,      // mixed-case prose with quotes/parens (Unix50 8.x/9.x)
  kMailText,      // mail headers with To:/From: lines (Unix50 10.x)
  kCodeText,      // source-like lines with print statements (Unix50 5.x)
  kScriptList,    // file names, some of which are shell scripts (oneliners)
};

const char* to_string(Workload w);

// Generates approximately `bytes` of the given workload. Generators that
// dereference files (kBookList, kScriptList) install their fixture files
// into `fs` and return the file-name stream.
std::string generate_workload(Workload w, std::size_t bytes,
                              std::uint64_t seed, vfs::Vfs& fs);

// Installs the sorted dictionary used by the `spell` script (comm -23 -
// dict.sorted) and returns its VFS name.
std::string install_spell_dictionary(vfs::Vfs& fs, std::uint64_t seed);

}  // namespace kq::bench
