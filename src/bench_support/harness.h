// The benchmark harness: compiles a catalog script, runs it serially and
// at each parallelism width (optimized and unoptimized), verifies parallel
// outputs against serial ones, and optionally measures the original script
// through a real shell (the paper's T_orig column).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bench_support/catalog.h"
#include "compile/optimize.h"
#include "compile/plan.h"
#include "exec/executor.h"

namespace kq::bench {

struct HarnessOptions {
  std::size_t input_bytes = 1 << 20;      // per script
  std::vector<int> parallelism = {1, 2, 4, 8, 16};
  bool measure_original = true;           // run via /bin/sh when available
  bool verify_outputs = true;
  std::uint64_t seed = 7;
  synth::SynthesisConfig synthesis;
};

struct PipelineReport {
  std::string pipeline;
  int stages = 0;
  int parallelized = 0;
  int eliminated = 0;
};

struct ScriptReport {
  const Script* script = nullptr;
  std::vector<PipelineReport> pipelines;
  double t_orig = -1;                      // real-shell time, -1 if n/a
  std::map<int, double> unoptimized;       // u_k
  std::map<int, double> optimized;         // T_k
  bool outputs_match = true;

  int stages_total() const;
  int parallelized_total() const;
  int eliminated_total() const;
  // "k/n (k1/n1, k2/n2, ...)" in the paper's Table 3 format.
  std::string parallelized_cell() const;
  std::string eliminated_cell() const;
};

// Executes through kq::Executor (serial reference + batch at each width);
// the facade owns the worker pools, so callers no longer pass one.
ScriptReport run_script(const Script& script, synth::SynthesisCache& cache,
                        const HarnessOptions& options, vfs::Vfs& fs);

// Reads a byte-size scale factor from argv ("--scale=N" multiplies every
// script's input size; default 1).
std::size_t parse_scale(int argc, char** argv);

// Runs the original pipeline text through /bin/sh with the VFS materialized
// into a temporary directory. Returns nullopt if the shell or any command
// is unavailable or fails.
std::optional<double> run_original_script(const Script& script,
                                          const std::string& input,
                                          const vfs::Vfs& fs);

}  // namespace kq::bench
