#include "bench_support/workloads.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdio>
#include <random>
#include <vector>

namespace kq::bench {
namespace {

// A Zipf-ish English vocabulary: early words are drawn far more often,
// giving the duplicate-heavy distribution word-frequency pipelines expect.
constexpr std::array<std::string_view, 64> kVocabulary = {
    "the",     "of",     "and",    "to",      "a",        "in",
    "that",    "he",     "was",    "it",      "his",      "is",
    "with",    "as",     "for",    "had",     "you",      "not",
    "be",      "her",    "on",     "at",      "by",       "which",
    "have",    "or",     "from",   "this",    "him",      "but",
    "all",     "she",    "they",   "were",    "my",       "are",
    "me",      "one",    "their",  "so",      "an",       "said",
    "them",    "we",     "who",    "would",   "been",     "will",
    "no",      "when",   "there",  "if",      "more",     "out",
    "up",      "into",   "light",  "moonlight", "daylight", "kumquat",
    "rhythm",  "syllable", "anagram", "lighthouse"};

std::string_view pick_word(std::mt19937_64& rng) {
  // Squared-uniform index approximates a Zipf distribution.
  std::uniform_real_distribution<double> u(0.0, 1.0);
  double x = u(rng);
  auto idx = static_cast<std::size_t>(x * x * kVocabulary.size());
  if (idx >= kVocabulary.size()) idx = kVocabulary.size() - 1;
  return kVocabulary[idx];
}

std::string gutenberg(std::size_t bytes, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> words_per_line(4, 12);
  std::uniform_int_distribution<int> punct(0, 19);
  std::string out;
  out.reserve(bytes + 80);
  while (out.size() < bytes) {
    int n = words_per_line(rng);
    for (int i = 0; i < n; ++i) {
      std::string word(pick_word(rng));
      if (i == 0 || punct(rng) == 0)
        word[0] = static_cast<char>(std::toupper(
            static_cast<unsigned char>(word[0])));
      if (i != 0) out.push_back(' ');
      out += word;
      int p = punct(rng);
      if (p == 1) out.push_back(',');
      if (p == 2 && i == n - 1) out.push_back('.');
    }
    // Occasional accented word exercises iconv//translit.
    if (punct(rng) == 3) out += " caf\xC3\xA9";
    out.push_back('\n');
    if (punct(rng) == 4) out.push_back('\n');  // paragraph break
  }
  return out;
}

std::string transit_csv(std::size_t bytes, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> day(1, 28), month(1, 12), hour(5, 23),
      minute(0, 59), vehicle(1, 40), line(1, 12);
  std::string out;
  out.reserve(bytes + 64);
  char buf[64];
  while (out.size() < bytes) {
    std::snprintf(buf, sizeof(buf),
                  "2020-%02d-%02dT%02d:%02d:%02d,L%d,V%03d\n", month(rng),
                  day(rng), hour(rng), minute(rng), minute(rng), line(rng),
                  vehicle(rng));
    out += buf;
  }
  return out;
}

std::string chess_games(std::size_t bytes, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  constexpr std::array<std::string_view, 10> kMoves = {
      "e4", "e5", "Nf3", "Nc6", "Bb5", "a6", "Qxd5", "Kxe7", "Rxa8", "cxd4"};
  std::uniform_int_distribution<std::size_t> pick(0, kMoves.size() - 1);
  std::uniform_int_distribution<int> moves_per_line(2, 6);
  std::string out;
  out.reserve(bytes + 64);
  int move_no = 1;
  while (out.size() < bytes) {
    int n = moves_per_line(rng);
    for (int i = 0; i < n; ++i) {
      if (i != 0) out.push_back(' ');
      out += std::to_string(move_no++);
      out.push_back('.');
      out += kMoves[pick(rng)];
    }
    out.push_back('\n');
    if (move_no > 400) move_no = 1;
  }
  return out;
}

std::string name_list(std::size_t bytes, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  constexpr std::array<std::string_view, 12> kFirst = {
      "Ken", "Dennis", "Brian", "Doug", "Rob", "Bjarne", "Grace", "Ada",
      "Alan", "Barbara", "Donald", "Edsger"};
  constexpr std::array<std::string_view, 12> kLast = {
      "Thompson", "Ritchie", "Kernighan", "McIlroy", "Pike", "Stroustrup",
      "Hopper", "Lovelace", "Turing", "Liskov", "Knuth", "Dijkstra"};
  std::uniform_int_distribution<std::size_t> pf(0, kFirst.size() - 1);
  std::uniform_int_distribution<std::size_t> pl(0, kLast.size() - 1);
  std::string out;
  out.reserve(bytes + 32);
  while (out.size() < bytes) {
    out += kFirst[pf(rng)];
    out.push_back(' ');
    out += kLast[pl(rng)];
    out.push_back('\n');
  }
  return out;
}

std::string tab_records(std::size_t bytes, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  constexpr std::array<std::string_view, 6> kSystems = {
      "Unix", "Multics", "Plan9", "Inferno", "CTSS", "ITS"};
  constexpr std::array<std::string_view, 6> kMachines = {
      "PDP-7", "PDP-11", "VAX-11", "IBM-7094", "GE-645", "Interdata"};
  constexpr std::array<std::string_view, 4> kOrigins = {"AT&T", "MIT", "GE",
                                                        "Bell"};
  std::uniform_int_distribution<std::size_t> ps(0, kSystems.size() - 1);
  std::uniform_int_distribution<std::size_t> pm(0, kMachines.size() - 1);
  std::uniform_int_distribution<std::size_t> po(0, kOrigins.size() - 1);
  std::uniform_int_distribution<int> year(1964, 1979), version(1, 10);
  std::string out;
  out.reserve(bytes + 64);
  while (out.size() < bytes) {
    out += kSystems[ps(rng)];
    out.push_back('\t');
    out += kMachines[pm(rng)];
    out.push_back('\t');
    out += std::to_string(version(rng));
    out.push_back('\t');
    out += std::to_string(year(rng));
    out.push_back('\t');
    out += kOrigins[po(rng)];
    out.push_back('\n');
  }
  return out;
}

std::string free_text(std::size_t bytes, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> kind(0, 9);
  std::string base = gutenberg(bytes, seed ^ 0x5a5a);
  // Decorate with quotes, parentheses, PORT/BELL tokens, and hyphens so
  // the 8.x/9.x puzzle pipelines have something to find.
  std::string out;
  out.reserve(base.size() + base.size() / 8);
  for (std::size_t i = 0; i < base.size(); ++i) {
    char c = base[i];
    if (c == '\n') {
      switch (kind(rng)) {
        case 0: out += " \"four corners\""; break;
        case 1: out += " (Bell Labs)"; break;
        case 2: out += " PORTmanteau"; break;
        case 3: out += " BELLwether"; break;
        case 4: out += " tele-communications"; break;
        case 5: out += " 1969"; break;
        default: break;
      }
    }
    out.push_back(c);
  }
  return out;
}

std::string mail_text(std::size_t bytes, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  constexpr std::array<std::string_view, 8> kUsers = {
      "ken", "dmr", "bwk", "doug", "rob", "ewd", "gnu", "uucp"};
  constexpr std::array<std::string_view, 4> kHosts = {
      "research.att.com", "mit.edu", "bell-labs.com", "berkeley.edu"};
  std::uniform_int_distribution<std::size_t> pu(0, kUsers.size() - 1);
  std::uniform_int_distribution<std::size_t> ph(0, kHosts.size() - 1);
  std::uniform_int_distribution<int> body_lines(1, 4);
  std::string out;
  out.reserve(bytes + 128);
  std::string prose = gutenberg(bytes, seed ^ 0x77);
  std::size_t prose_pos = 0;
  auto next_prose_line = [&]() {
    std::size_t end = prose.find('\n', prose_pos);
    if (end == std::string::npos) {
      prose_pos = 0;
      end = prose.find('\n');
    }
    std::string line = prose.substr(prose_pos, end - prose_pos);
    prose_pos = end + 1;
    return line;
  };
  while (out.size() < bytes) {
    out += "From: ";
    out += kUsers[pu(rng)];
    out.push_back('@');
    out += kHosts[ph(rng)];
    out.push_back('\n');
    out += "To: ";
    out += kUsers[pu(rng)];
    out.push_back('@');
    out += kHosts[ph(rng)];
    out.push_back('\n');
    int n = body_lines(rng);
    for (int i = 0; i < n; ++i) {
      out += next_prose_line();
      out.push_back('\n');
    }
    out.push_back('\n');
  }
  return out;
}

std::string code_text(std::size_t bytes, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> kind(0, 5);
  std::uniform_int_distribution<int> value(0, 999);
  std::string out;
  out.reserve(bytes + 64);
  while (out.size() < bytes) {
    switch (kind(rng)) {
      case 0:
        out += "    print(\"hello world #" + std::to_string(value(rng)) +
               "\")\n";
        break;
      case 1:
        out += "x = " + std::to_string(value(rng)) + "\n";
        break;
      case 2:
        out += "if x > " + std::to_string(value(rng)) + ":\n";
        break;
      case 3:
        out += "# comment about value " + std::to_string(value(rng)) + "\n";
        break;
      case 4:
        out += "def f_" + std::to_string(value(rng)) + "(y):\n";
        break;
      default:
        out += "    return y\n";
        break;
    }
  }
  return out;
}

std::string install_files(vfs::Vfs& fs, std::size_t bytes,
                          std::uint64_t seed, bool scripts) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> lines(3, 40);
  // Spread the byte budget over a fixed fan-out of files.
  constexpr int kFiles = 24;
  std::size_t per_file = bytes / kFiles + 1;
  std::string file_list;
  for (int i = 0; i < kFiles; ++i) {
    std::string name;
    std::string listed;  // the name as it appears on the input stream
    std::string contents;
    if (scripts && i % 3 == 0) {
      name = "bin/tool" + std::to_string(i) + ".sh";
      listed = name;
      contents = "#!/bin/sh\n";
      int n = lines(rng);
      for (int l = 0; l < n; ++l)
        contents += "echo step " + std::to_string(l) + "\n";
    } else if (scripts) {
      name = "bin/data" + std::to_string(i) + ".txt";
      listed = name;
      contents = gutenberg(per_file / 4 + 16, seed + static_cast<unsigned>(i));
    } else {
      // Books are installed under pg/ but listed bare: the poets scripts
      // prepend the path with `sed 's;^;pg/;'`.
      listed = "book" + std::to_string(i) + ".txt";
      name = "pg/" + listed;
      contents = gutenberg(per_file, seed + static_cast<unsigned>(i));
    }
    fs.write(name, std::move(contents));
    file_list += listed;
    file_list.push_back('\n');
  }
  return file_list;
}

}  // namespace

const char* to_string(Workload w) {
  switch (w) {
    case Workload::kGutenberg: return "gutenberg";
    case Workload::kBookList: return "book-list";
    case Workload::kTransitCsv: return "transit-csv";
    case Workload::kChessGames: return "chess-games";
    case Workload::kNameList: return "name-list";
    case Workload::kTabRecords: return "tab-records";
    case Workload::kFreeText: return "free-text";
    case Workload::kMailText: return "mail-text";
    case Workload::kCodeText: return "code-text";
    case Workload::kScriptList: return "script-list";
  }
  return "?";
}

std::string generate_workload(Workload w, std::size_t bytes,
                              std::uint64_t seed, vfs::Vfs& fs) {
  switch (w) {
    case Workload::kGutenberg: return gutenberg(bytes, seed);
    case Workload::kBookList: return install_files(fs, bytes, seed, false);
    case Workload::kTransitCsv: return transit_csv(bytes, seed);
    case Workload::kChessGames: return chess_games(bytes, seed);
    case Workload::kNameList: return name_list(bytes, seed);
    case Workload::kTabRecords: return tab_records(bytes, seed);
    case Workload::kFreeText: return free_text(bytes, seed);
    case Workload::kMailText: return mail_text(bytes, seed);
    case Workload::kCodeText: return code_text(bytes, seed);
    case Workload::kScriptList: return install_files(fs, bytes, seed, true);
  }
  return {};
}

std::string install_spell_dictionary(vfs::Vfs& fs, std::uint64_t seed) {
  (void)seed;
  // Sorted lowercase dictionary covering most of the vocabulary; the
  // uncovered words are the "spelling mistakes" the pipeline reports.
  std::string dict;
  std::vector<std::string> entries;
  for (std::string_view w : kVocabulary) entries.emplace_back(w);
  entries.emplace_back("cafe");
  std::sort(entries.begin(), entries.end());
  // Drop a couple of entries so comm -23 has output.
  for (const std::string& e : entries) {
    if (e == "kumquat" || e == "moonlight") continue;
    dict += e;
    dict.push_back('\n');
  }
  fs.write("dict.sorted", dict);
  return "dict.sorted";
}

}  // namespace kq::bench
