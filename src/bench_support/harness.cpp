#include "bench_support/harness.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "procexec/external_command.h"

namespace kq::bench {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct CompiledPipeline {
  compile::Plan plan;
  std::vector<exec::ExecStage> stages;
};

std::vector<CompiledPipeline> compile_script(const Script& script,
                                             synth::SynthesisCache& cache,
                                             const HarnessOptions& options,
                                             vfs::Vfs& fs) {
  std::vector<CompiledPipeline> out;
  for (const std::string& pipeline : script.pipelines) {
    auto parsed = compile::parse_pipeline(pipeline);
    if (!parsed) continue;
    compile::PlanOptions plan_options;
    plan_options.synthesis = options.synthesis;
    compile::Plan plan =
        compile::compile_pipeline(*parsed, cache, plan_options, &fs);
    compile::eliminate_intermediate_combiners(plan);
    auto stages = compile::lower_plan(plan);
    out.push_back({std::move(plan), std::move(stages)});
  }
  return out;
}

}  // namespace

int ScriptReport::stages_total() const {
  int n = 0;
  for (const auto& p : pipelines) n += p.stages;
  return n;
}

int ScriptReport::parallelized_total() const {
  int n = 0;
  for (const auto& p : pipelines) n += p.parallelized;
  return n;
}

int ScriptReport::eliminated_total() const {
  int n = 0;
  for (const auto& p : pipelines) n += p.eliminated;
  return n;
}

std::string ScriptReport::parallelized_cell() const {
  std::string cell = std::to_string(parallelized_total()) + "/" +
                     std::to_string(stages_total());
  if (pipelines.size() > 1) {
    cell += " (";
    for (std::size_t i = 0; i < pipelines.size(); ++i) {
      if (i) cell += ", ";
      cell += std::to_string(pipelines[i].parallelized) + "/" +
              std::to_string(pipelines[i].stages);
    }
    cell += ")";
  }
  return cell;
}

std::string ScriptReport::eliminated_cell() const {
  std::string cell = std::to_string(eliminated_total());
  if (pipelines.size() > 1) {
    cell += " (";
    for (std::size_t i = 0; i < pipelines.size(); ++i) {
      if (i) cell += ", ";
      cell += std::to_string(pipelines[i].eliminated);
    }
    cell += ")";
  }
  return cell;
}

ScriptReport run_script(const Script& script, synth::SynthesisCache& cache,
                        const HarnessOptions& options, vfs::Vfs& fs) {
  ScriptReport report;
  report.script = &script;

  std::string input =
      prepare_input(script, options.input_bytes, options.seed, fs);
  std::vector<CompiledPipeline> compiled =
      compile_script(script, cache, options, fs);

  for (std::size_t i = 0; i < compiled.size(); ++i) {
    PipelineReport p;
    p.pipeline = script.pipelines[i];
    p.stages = compiled[i].plan.total();
    p.parallelized = compiled[i].plan.parallelized();
    p.eliminated = compiled[i].plan.eliminated();
    report.pipelines.push_back(std::move(p));
  }

  auto batch_options = [&](int k, bool eliminate) {
    kq::ExecOptions o;
    o.mode = kq::ExecMode::kBatch;
    o.parallelism = k;
    o.use_elimination = eliminate;
    return o;
  };

  // Serial reference outputs (also the u_1 measurement).
  std::vector<std::string> serial_outputs;
  {
    kq::ExecOptions serial;
    serial.mode = kq::ExecMode::kSerial;
    serial.parallelism = 1;
    kq::Executor executor(serial);
    auto start = Clock::now();
    for (const CompiledPipeline& c : compiled)
      serial_outputs.push_back(
          executor.run_collect(c.stages, input).output);
    double elapsed = seconds_since(start);
    report.unoptimized[1] = elapsed;
    report.optimized[1] = elapsed;
  }

  for (int k : options.parallelism) {
    if (k <= 1) continue;
    kq::Executor unopt(batch_options(k, /*eliminate=*/false));
    auto u_start = Clock::now();
    std::vector<std::string> u_outputs;
    for (const CompiledPipeline& c : compiled)
      u_outputs.push_back(unopt.run_collect(c.stages, input).output);
    report.unoptimized[k] = seconds_since(u_start);

    kq::Executor opt(batch_options(k, /*eliminate=*/true));
    auto t_start = Clock::now();
    std::vector<std::string> t_outputs;
    for (const CompiledPipeline& c : compiled)
      t_outputs.push_back(opt.run_collect(c.stages, input).output);
    report.optimized[k] = seconds_since(t_start);

    if (options.verify_outputs) {
      for (std::size_t i = 0; i < serial_outputs.size(); ++i) {
        if (u_outputs[i] != serial_outputs[i] ||
            t_outputs[i] != serial_outputs[i])
          report.outputs_match = false;
      }
    }
  }

  if (options.measure_original) {
    auto t = run_original_script(script, input, fs);
    report.t_orig = t.value_or(-1);
  }
  return report;
}

std::optional<double> run_original_script(const Script& script,
                                          const std::string& input,
                                          const vfs::Vfs& fs) {
  namespace fsys = std::filesystem;
  if (!procexec::program_exists("sh")) return std::nullopt;

  std::error_code ec;
  fsys::path dir =
      fsys::temp_directory_path(ec) /
      ("kumquat-orig-" + std::to_string(::getpid()));
  if (ec) return std::nullopt;
  fsys::create_directories(dir, ec);
  if (ec) return std::nullopt;

  // Materialize the virtual file system so xargs/comm/cat stages resolve.
  for (const std::string& name : fs.names()) {
    fsys::path path = dir / name;
    fsys::create_directories(path.parent_path(), ec);
    std::ofstream out(path, std::ios::binary);
    auto contents = fs.read(name);
    if (contents) out.write(contents->data(),
                            static_cast<std::streamsize>(contents->size()));
  }

  auto start = Clock::now();
  bool ok = true;
  for (const std::string& pipeline : script.pipelines) {
    std::string command = "cd '" + dir.string() + "' && LC_ALL=C sh -c " +
                          "'" /* open quote for sh -c argument */;
    // Escape single quotes in the pipeline for embedding.
    for (char c : pipeline) {
      if (c == '\'') command += "'\\''";
      else command.push_back(c);
    }
    command += "' > /dev/null";
    auto result =
        procexec::run_process({"sh", "-c", command}, input);
    if (!result || result->status != 0) {
      ok = false;
      break;
    }
  }
  double elapsed = seconds_since(start);
  fsys::remove_all(dir, ec);
  if (!ok) return std::nullopt;
  return elapsed;
}

std::size_t parse_scale(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      long v = std::atol(argv[i] + 8);
      if (v > 0) return static_cast<std::size_t>(v);
    }
  }
  return 1;
}

}  // namespace kq::bench
