// The 70-script benchmark catalog (§4): analytics-mts (4), oneliners (10),
// poets (22), unix50 (34). Each script is reconstructed from the commands
// the paper's Table 10 attributes to it and the per-pipeline stage counts
// of Table 3; where the original script is not public, a faithful
// stand-in with the same command mix and stage count is used (noted in
// DESIGN.md §2).
#pragma once

#include <string>
#include <vector>

#include "bench_support/workloads.h"

namespace kq::bench {

struct Script {
  std::string suite;              // "analytics-mts" | "oneliners" | ...
  std::string name;               // "2.sh (vehicle days on road)"
  std::vector<std::string> pipelines;  // each "cmd | cmd | ..." (no cat)
  Workload input;
  // Baseline input size used by the quick benchmark profile; the harness
  // scales this with its --scale flag.
  std::size_t default_bytes = 1 << 20;
};

// All 70 scripts, in suite order.
const std::vector<Script>& all_scripts();

// The paper's Table 1/7 "two longest-running scripts per suite" selection.
std::vector<const Script*> headline_scripts();

// Scripts in the paper's Table 7 (serial time >= 3 minutes) — used for the
// long-script table.
std::vector<const Script*> long_scripts();

// Finds a script by "<suite>/<name prefix>"; nullptr if absent.
const Script* find_script(const std::string& suite,
                          const std::string& name_prefix);

// Every unique stage command line across the catalog, in first-appearance
// order (the paper's "121 unique commands" universe for Tables 8-10).
std::vector<std::string> unique_commands();

// Prepares the VFS fixtures a script needs (book files, dictionaries,
// script trees) and returns the stdin stream for the script.
std::string prepare_input(const Script& script, std::size_t bytes,
                          std::uint64_t seed, vfs::Vfs& fs);

}  // namespace kq::bench
