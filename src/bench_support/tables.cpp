#include "bench_support/tables.h"

#include <algorithm>
#include <cstdio>

namespace kq::bench {

std::string format_seconds(double seconds) {
  char buf[32];
  if (seconds < 0) return "n/a";
  if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
  } else if (seconds < 100.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f s", seconds);
  }
  return buf;
}

std::string format_speedup(double base, double t) {
  if (base <= 0 || t <= 0) return "(n/a)";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "(%.1fx)", base / t);
  return buf;
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size())
        os << std::string(widths[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace kq::bench
