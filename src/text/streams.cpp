#include "text/streams.h"

namespace kq::text {

bool is_stream(std::string_view s) noexcept {
  return !s.empty() && s.back() == '\n';
}

std::string ensure_stream(std::string_view s) {
  std::string out(s);
  if (!s.empty() && s.back() != '\n') out.push_back('\n');
  return out;
}

std::vector<std::string_view> lines(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (start < s.size()) {
    std::size_t pos = s.find('\n', start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string unlines(const std::vector<std::string>& ls) {
  std::string out;
  std::size_t total = ls.size();
  for (const auto& l : ls) total += l.size();
  out.reserve(total);
  for (const auto& l : ls) {
    out += l;
    out.push_back('\n');
  }
  return out;
}

std::string unlines_views(const std::vector<std::string_view>& ls) {
  std::string out;
  std::size_t total = ls.size();
  for (const auto& l : ls) total += l.size();
  out.reserve(total);
  for (const auto& l : ls) {
    out += l;
    out.push_back('\n');
  }
  return out;
}

SplitAt split_first(std::string_view y, char d) noexcept {
  std::size_t pos = y.find(d);
  if (pos == std::string_view::npos) return {y, std::nullopt};
  return {y.substr(0, pos), y.substr(pos + 1)};
}

SplitAt split_last(std::string_view y, char d) noexcept {
  std::size_t pos = y.rfind(d);
  if (pos == std::string_view::npos) return {y, std::nullopt};
  return {y.substr(0, pos), y.substr(pos + 1)};
}

LineSplit split_last_line(std::string_view y) noexcept {
  if (!is_stream(y)) return {};
  // Drop the final newline, then find the previous newline (if any).
  std::string_view body = y.substr(0, y.size() - 1);
  std::size_t pos = body.rfind('\n');
  if (pos == std::string_view::npos) return {true, {}, body};
  return {true, y.substr(0, pos + 1), body.substr(pos + 1)};
}

FirstLineSplit split_first_line(std::string_view y) noexcept {
  std::size_t pos = y.find('\n');
  if (pos == std::string_view::npos) return {};
  return {true, y.substr(0, pos), y.substr(pos + 1)};
}

NonemptyLineSplit split_last_nonempty_line(std::string_view y) noexcept {
  if (y.empty()) return {};
  // Scan backwards over lines.
  std::string_view s = y;
  if (s.back() == '\n') s.remove_suffix(1);
  while (true) {
    std::size_t pos = s.rfind('\n');
    std::string_view line =
        pos == std::string_view::npos ? s : s.substr(pos + 1);
    if (!line.empty()) {
      std::size_t head_len =
          pos == std::string_view::npos ? 0 : pos + 1;
      return {true, y.substr(0, head_len), line};
    }
    if (pos == std::string_view::npos) return {};
    s = s.substr(0, pos);
  }
}

}  // namespace kq::text
