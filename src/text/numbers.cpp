#include "text/numbers.h"

#include <limits>

namespace kq::text {

bool is_all_digits(std::string_view s) noexcept {
  if (s.empty()) return false;
  for (char c : s)
    if (c < '0' || c > '9') return false;
  return true;
}

std::optional<std::uint64_t> parse_digits(std::string_view s) noexcept {
  if (!is_all_digits(s)) return std::nullopt;
  std::uint64_t v = 0;
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  for (char c : s) {
    std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (kMax - digit) / 10) return std::nullopt;
    v = v * 10 + digit;
  }
  return v;
}

std::string digits_to_string(std::uint64_t v) { return std::to_string(v); }

std::optional<std::string> add_digit_strings(std::string_view a,
                                             std::string_view b) {
  auto ia = parse_digits(a);
  auto ib = parse_digits(b);
  if (!ia || !ib) return std::nullopt;
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  if (*ia > kMax - *ib) return std::nullopt;
  return digits_to_string(*ia + *ib);
}

}  // namespace kq::text
