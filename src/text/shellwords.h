// POSIX-shell word splitting for pipeline command lines.
//
// Supports the quoting forms that appear in the benchmark scripts:
// single quotes (literal), double quotes (literal except \" \\ \$),
// backslash escapes outside quotes, and whitespace separation. Variable
// expansion is NOT performed; callers substitute variables before parsing.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace kq::text {

// Splits a command line into words. Returns nullopt on unterminated quotes.
std::optional<std::vector<std::string>> shell_split(std::string_view line);

// Splits a pipeline "cmd1 | cmd2 | cmd3" into stage command lines,
// respecting quotes (a '|' inside quotes does not split).
std::optional<std::vector<std::string>> split_pipeline(std::string_view line);

}  // namespace kq::text
