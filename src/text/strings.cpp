#include "text/strings.h"

#include <algorithm>
#include <cctype>

namespace kq::text {

std::vector<std::string_view> split(std::string_view s, char d) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(d, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, char d) {
  std::string out;
  std::size_t total = parts.empty() ? 0 : parts.size() - 1;
  for (const auto& p : parts) total += p.size();
  out.reserve(total);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.push_back(d);
    out += parts[i];
  }
  return out;
}

std::string join_views(const std::vector<std::string_view>& parts, char d) {
  std::string out;
  std::size_t total = parts.empty() ? 0 : parts.size() - 1;
  for (const auto& p : parts) total += p.size();
  out.reserve(total);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.push_back(d);
    out += parts[i];
  }
  return out;
}

std::size_t count_char(std::string_view s, char c) noexcept {
  return static_cast<std::size_t>(std::count(s.begin(), s.end(), c));
}

bool contains_char(std::string_view s, char c) noexcept {
  return s.find(c) != std::string_view::npos;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  for (char& c : out)
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string replace_all(std::string_view s, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      return out;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

std::string_view trim(std::string_view s, std::string_view set) {
  std::size_t b = s.find_first_not_of(set);
  if (b == std::string_view::npos) return {};
  std::size_t e = s.find_last_not_of(set);
  return s.substr(b, e - b + 1);
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string repeat(std::string_view s, std::size_t n) {
  std::string out;
  out.reserve(s.size() * n);
  for (std::size_t i = 0; i < n; ++i) out.append(s);
  return out;
}

}  // namespace kq::text
