// Stream primitives implementing the paper's Definitions 3.1/B.2 and the
// helper functions of the DSL semantics (Appendix A): splitFirst, splitLast,
// splitFirstLine, splitLastLine, splitLastNonemptyLine.
//
// A *stream* is a string that ends with a newline (Definition 3.1); the
// empty string is the degenerate "no output" case produced by commands like
// `grep` with no matches and is handled explicitly by callers (footnote 6).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace kq::text {

// True iff `s` is a stream in the paper's sense: non-empty and
// newline-terminated.
bool is_stream(std::string_view s) noexcept;

// Appends a final newline unless `s` is empty or already newline-terminated.
std::string ensure_stream(std::string_view s);

// The lines of a newline-terminated stream, without their trailing
// newlines. lines("a\nb\n") == {"a","b"}; lines("\n") == {""};
// lines("") == {}. A non-newline-terminated tail counts as a final line.
std::vector<std::string_view> lines(std::string_view s);

// Joins lines, appending '\n' after each (inverse of `lines`).
std::string unlines(const std::vector<std::string>& ls);
std::string unlines_views(const std::vector<std::string_view>& ls);

// splitFirst d y: splits y at the *first* occurrence of d.
// Returns (head, tail) with y == head ++ d ++ tail, or nullopt tail if d
// does not occur (the paper's "t = nil").
struct SplitAt {
  std::string_view head;
  std::optional<std::string_view> tail;
};
SplitAt split_first(std::string_view y, char d) noexcept;

// splitLast d y: splits y at the *last* occurrence of d; returns
// (head, last) with y == head ++ d ++ last, or nullopt tail if absent.
SplitAt split_last(std::string_view y, char d) noexcept;

// splitLastLine y for a stream y: returns (head, line) such that
// y == head ++ line ++ "\n", where head is empty or newline-terminated.
// Fails (ok == false) if y is not a stream.
struct LineSplit {
  bool ok = false;
  std::string_view head;  // includes its trailing newline if non-empty
  std::string_view line;  // without trailing newline
};
LineSplit split_last_line(std::string_view y) noexcept;

// splitFirstLine y: returns (line, tail) such that
// y == line ++ "\n" ++ tail. Fails if y contains no newline.
struct FirstLineSplit {
  bool ok = false;
  std::string_view line;  // without trailing newline
  std::string_view tail;  // remainder after the first newline
};
FirstLineSplit split_first_line(std::string_view y) noexcept;

// splitLastNonemptyLine y: the last non-empty line of stream y, plus the
// prefix before it. Fails if y has no non-empty line.
struct NonemptyLineSplit {
  bool ok = false;
  std::string_view head;  // everything before the line
  std::string_view line;  // the last non-empty line, no newline
};
NonemptyLineSplit split_last_nonempty_line(std::string_view y) noexcept;

// True iff every line of stream `y` is sorted no worse than its successor
// under `less_equal` (used by merge-combiner legality checks).
template <typename LessEq>
bool lines_sorted(std::string_view y, LessEq&& le) {
  auto ls = lines(y);
  for (std::size_t i = 1; i < ls.size(); ++i)
    if (!le(ls[i - 1], ls[i])) return false;
  return true;
}

}  // namespace kq::text
