// Padding helpers implementing the paper's delPad / addPad / calcPad
// (Appendix A). These model the left-padded count column produced by
// `uniq -c`-style commands: a line is `p ++ h ++ d ++ t` where `p` is a run
// of spaces (or a single tab), `h` the first field, `t` the rest.
#pragma once

#include <string>
#include <string_view>

namespace kq::text {

// delPad: strips the leading padding of `l` and reports how many columns it
// occupied. A single leading tab counts as padding of width 1 with
// `tab == true`.
struct Unpadded {
  std::size_t pad = 0;        // number of padding characters removed
  bool tab = false;           // the padding was a single '\t'
  std::string_view rest;      // the line after padding removal
};
Unpadded del_pad(std::string_view l) noexcept;

// addPad: right-aligns `s` in a field of `width` columns using spaces.
// If `s` is already at least `width` wide, returns it unchanged.
std::string add_pad(std::string_view s, std::size_t width);

// calcPad: given that the first operand's field (padding plus head) occupied
// `first_width` columns and the combined head is `combined`, the padding for
// the combined line keeps the column width stable (the behaviour of
// `uniq -c` output whose counts stay right-aligned).
std::string pad_to_width(std::string_view combined_head,
                         std::string_view tail_after_delim, char delim,
                         std::size_t first_width);

}  // namespace kq::text
