// Digit-string helpers implementing the paper's strToInt / intToStr for the
// `add` combiner, whose legal domain is L(add) = [0-9]+ (Definition B.1).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace kq::text {

// True iff `s` is one or more ASCII digits (the add domain).
bool is_all_digits(std::string_view s) noexcept;

// strToInt: parses a [0-9]+ string. Returns nullopt on empty input,
// non-digits, or overflow of uint64.
std::optional<std::uint64_t> parse_digits(std::string_view s) noexcept;

// intToStr: canonical decimal rendering (no leading zeros).
std::string digits_to_string(std::uint64_t v);

// Sum of two digit strings rendered canonically, or nullopt if either
// operand is outside [0-9]+ or the sum overflows.
std::optional<std::string> add_digit_strings(std::string_view a,
                                             std::string_view b);

}  // namespace kq::text
