#include "text/padding.h"

namespace kq::text {

Unpadded del_pad(std::string_view l) noexcept {
  if (!l.empty() && l.front() == '\t') return {1, true, l.substr(1)};
  std::size_t i = 0;
  while (i < l.size() && l[i] == ' ') ++i;
  return {i, false, l.substr(i)};
}

std::string add_pad(std::string_view s, std::size_t width) {
  std::string out;
  if (s.size() < width) out.assign(width - s.size(), ' ');
  out.append(s);
  return out;
}

std::string pad_to_width(std::string_view combined_head,
                         std::string_view tail_after_delim, char delim,
                         std::size_t first_width) {
  std::string out = add_pad(combined_head, first_width);
  out.push_back(delim);
  out.append(tail_after_delim);
  return out;
}

}  // namespace kq::text
