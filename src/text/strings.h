// Basic string utilities shared across the library.
//
// All functions are pure and allocation-conscious: splitting returns
// string_views into the caller's buffer, so callers must keep the source
// string alive while using the pieces.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace kq::text {

// Splits `s` on every occurrence of `d`, keeping empty fields.
// split("a,,b", ',') == {"a", "", "b"}; split("", ',') == {""}.
std::vector<std::string_view> split(std::string_view s, char d);

// Joins `parts` with `d` between consecutive elements.
std::string join(const std::vector<std::string>& parts, char d);
std::string join_views(const std::vector<std::string_view>& parts, char d);

// Number of occurrences of `c` in `s` (the paper's C(d, y)).
std::size_t count_char(std::string_view s, char c) noexcept;

// True if `c` occurs in `s` (the paper's d ∈ y).
bool contains_char(std::string_view s, char c) noexcept;

// ASCII-only case conversion.
std::string to_lower(std::string_view s);
std::string to_upper(std::string_view s);

// Replaces every occurrence of `from` (non-empty) with `to`.
std::string replace_all(std::string_view s, std::string_view from,
                        std::string_view to);

// Removes leading/trailing characters from `set`.
std::string_view trim(std::string_view s, std::string_view set = " \t\r\n");

// True if `s` starts/ends with the given prefix/suffix.
bool starts_with(std::string_view s, std::string_view prefix) noexcept;
bool ends_with(std::string_view s, std::string_view suffix) noexcept;

// Repeats `s` `n` times.
std::string repeat(std::string_view s, std::size_t n);

}  // namespace kq::text
