#include "text/shellwords.h"

namespace kq::text {

std::optional<std::vector<std::string>> shell_split(std::string_view line) {
  std::vector<std::string> words;
  std::string cur;
  bool in_word = false;
  std::size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (c == ' ' || c == '\t' || c == '\n') {
      if (in_word) {
        words.push_back(cur);
        cur.clear();
        in_word = false;
      }
      ++i;
      continue;
    }
    in_word = true;
    if (c == '\'') {
      std::size_t close = line.find('\'', i + 1);
      if (close == std::string_view::npos) return std::nullopt;
      cur.append(line.substr(i + 1, close - i - 1));
      i = close + 1;
    } else if (c == '"') {
      ++i;
      bool closed = false;
      while (i < line.size()) {
        char d = line[i];
        if (d == '"') {
          closed = true;
          ++i;
          break;
        }
        if (d == '\\' && i + 1 < line.size() &&
            (line[i + 1] == '"' || line[i + 1] == '\\' ||
             line[i + 1] == '$' || line[i + 1] == '`')) {
          cur.push_back(line[i + 1]);
          i += 2;
        } else {
          cur.push_back(d);
          ++i;
        }
      }
      if (!closed) return std::nullopt;
    } else if (c == '\\' && i + 1 < line.size()) {
      cur.push_back(line[i + 1]);
      i += 2;
    } else {
      cur.push_back(c);
      ++i;
    }
  }
  if (in_word) words.push_back(cur);
  return words;
}

std::optional<std::vector<std::string>> split_pipeline(std::string_view line) {
  std::vector<std::string> stages;
  std::string cur;
  std::size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (c == '\'') {
      std::size_t close = line.find('\'', i + 1);
      if (close == std::string_view::npos) return std::nullopt;
      cur.append(line.substr(i, close - i + 1));
      i = close + 1;
    } else if (c == '"') {
      cur.push_back(c);
      ++i;
      bool closed = false;
      while (i < line.size()) {
        cur.push_back(line[i]);
        if (line[i] == '\\' && i + 1 < line.size()) {
          cur.push_back(line[i + 1]);
          i += 2;
          continue;
        }
        if (line[i] == '"') {
          closed = true;
          ++i;
          break;
        }
        ++i;
      }
      if (!closed) return std::nullopt;
    } else if (c == '|') {
      stages.push_back(cur);
      cur.clear();
      ++i;
    } else {
      cur.push_back(c);
      ++i;
    }
  }
  stages.push_back(cur);
  return stages;
}

}  // namespace kq::text
