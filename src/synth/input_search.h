// Algorithm 2 (GetEffectiveInputs): gradient-style search over input
// shapes. Each iteration tries all twelve mutations of the current shape,
// scores each by how many candidate combiners its generated inputs
// eliminate, and steps to the best mutation. All generated pairs are
// returned as evidence.
#pragma once

#include <random>
#include <vector>

#include "dsl/eval.h"
#include "shape/generate.h"
#include "shape/mutate.h"
#include "synth/observation.h"

namespace kq::synth {

struct InputSearchConfig {
  int iterations = 3;        // M in Algorithm 2
  int pairs_per_shape = 2;   // |GetInputStreamPairs(s)|
  std::size_t score_sample_cap = 2048;  // see count_eliminated
};

struct InputSearchResult {
  std::vector<shape::InputPair> pairs;
  std::vector<Observation> observations;
  shape::Shape final_shape;
  std::vector<int> chosen_mutations;  // j' per iteration, for diagnostics
};

InputSearchResult effective_inputs(const cmd::Command& f,
                                   const std::vector<dsl::Combiner>& candidates,
                                   const shape::Shape& initial,
                                   const shape::GenOptions& gen,
                                   const InputSearchConfig& config,
                                   const dsl::EvalContext& ctx,
                                   std::mt19937_64& rng);

}  // namespace kq::synth
