// Algorithm 1 (Synthesize): the top-level combiner synthesis loop.
//
//   C0 <- AllCandidates(n)
//   for r = 1, 2, ...:
//     I_r <- GetEffectiveInputs(f, C_{r-1}, RandomShape())
//     C_r <- FilterCandidates(f, C_{r-1}, I_r)
//     if C_r = {}: return nil
//     if not MakingProgress: return C_r
//
// Preprocessing (§3.2) runs first: literal/number extraction, probe-input
// classification, and delimiter-alphabet inference, which together fix the
// candidate space and the input-generation mode.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dsl/enumerate.h"
#include "prep/probe.h"
#include "synth/composite.h"
#include "synth/input_search.h"
#include "synth/sufficiency.h"

namespace kq::synth {

// Largest numeric literal the seed-input generator straddles
// (seed_shape_near_count in synthesize.cpp): a command whose behavior
// changes only past this bound looks identical to its below-bound twin on
// every observation, so certification is statistically blind there. The
// planner (compile_pipeline) consults this to keep such stages sequential
// — e.g. `tail -n 1000000` certifies a concat combiner that is simply
// `cat` at probe scale and wrong past the window.
inline constexpr long kProbeCountCap = 4096;

struct SynthesisConfig {
  int max_ops = 5;            // candidate size bound (|g| <= max_ops + 2)
  int max_rounds = 5;         // r limit in Algorithm 1
  int progress_window = 2;    // rounds without elimination before stopping
  InputSearchConfig input_search;
  std::uint64_t seed = 20220402;  // deterministic synthesis by default
};

struct SynthesisResult {
  bool success = false;             // at least one plausible combiner
  std::string failure_reason;       // set when !success
  std::vector<dsl::Combiner> plausible;  // final C_r
  CompositeCombiner combiner;            // class-preferred composite

  // Diagnostics for the Table 10 reproduction.
  dsl::SpaceCounts space;
  std::vector<char> delims;
  prep::InputClass input_class = prep::InputClass::kAnyText;
  int rounds = 0;
  std::size_t observation_count = 0;
  double seconds = 0;
  // Output/input byte ratio over all observations; drives the compiler's
  // sequential-fallback decision for rerun-only stages (§2).
  double reduction_ratio = 1.0;
  // Probe-bound introspection for the static analyzer (`kumquat check`):
  // numeric literals extracted from the command line that the seed-input
  // generator straddled with probes (1 < n <= kProbeCountCap), and those
  // past the cap — bounds no certification observation ever crossed, so
  // the combiner's behavior there is untested (the KQ-PROBE diagnostic).
  std::vector<long> probed_bounds;
  std::vector<long> unprobed_bounds;
  // True iff every observed output was newline-terminated or empty — the
  // precondition of the elimination optimization (Theorem 5).
  bool outputs_newline_terminated = true;
  // Appendix B certificate: whether the collected observations satisfy
  // the sufficiency predicate for the surviving candidate class, in which
  // case Theorems 2/4 guarantee all survivors are equivalent.
  SufficiencyReport sufficiency;
};

// Synthesizes a combiner for black-box command `f`. `argv` (optional)
// enables script preprocessing; `fs` supplies file names for probe
// classification (defaults to the global VFS).
SynthesisResult synthesize(const cmd::Command& f,
                           const std::vector<std::string>& argv,
                           const SynthesisConfig& config = {},
                           const vfs::Vfs* fs = nullptr);

// Memoizing wrapper keyed by the command's display name: the benchmark
// suite synthesizes each unique command/flag combination once (§4).
class SynthesisCache {
 public:
  const SynthesisResult& get_or_synthesize(const cmd::Command& f,
                                           const std::vector<std::string>& argv,
                                           const SynthesisConfig& config = {},
                                           const vfs::Vfs* fs = nullptr);

  std::size_t size() const { return cache_.size(); }
  const std::unordered_map<std::string, SynthesisResult>& entries() const {
    return cache_;
  }

 private:
  std::unordered_map<std::string, SynthesisResult> cache_;
};

}  // namespace kq::synth
