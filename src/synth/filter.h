// Plausibility filtering (Definitions 3.9/3.10): a candidate survives an
// observation iff the operands lie in its legal domain and it reproduces
// the serial output exactly.
#pragma once

#include <vector>

#include "dsl/eval.h"
#include "synth/observation.h"

namespace kq::synth {

// True iff g explains the observation (legal + exact output).
bool plausible(const dsl::Combiner& g, const Observation& obs,
               const dsl::EvalContext& ctx);

// Removes candidates eliminated by any of `observations`.
std::vector<dsl::Combiner> filter_candidates(
    std::vector<dsl::Combiner> candidates,
    const std::vector<Observation>& observations,
    const dsl::EvalContext& ctx);

// Counts how many of `candidates` would be eliminated by `observations`
// (the scoring function of Algorithm 2's IndexBestMutation). For large
// candidate sets a uniform sample of `sample_cap` candidates is scored
// instead — the mutation ranking is a search heuristic, so sampling
// preserves behaviour while bounding cost.
std::size_t count_eliminated(const std::vector<dsl::Combiner>& candidates,
                             const std::vector<Observation>& observations,
                             const dsl::EvalContext& ctx,
                             std::size_t sample_cap = 2048);

}  // namespace kq::synth
