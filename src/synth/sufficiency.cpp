#include "synth/sufficiency.h"

#include "dsl/domain.h"
#include "text/strings.h"
#include "text/numbers.h"
#include "text/padding.h"
#include "text/streams.h"

namespace kq::synth {
namespace {

// Strips a single front/back delimiter layer per Table 2's reductions
// (e.g. E(g_ba, Y) = E(g_a, Y') where Y' drops the trailing delimiter).
std::optional<std::string_view> strip_back(std::string_view y, char d) {
  if (y.empty() || y.back() != d) return std::nullopt;
  return y.substr(0, y.size() - 1);
}

std::optional<std::string_view> strip_front(std::string_view y, char d) {
  if (y.empty() || y.front() != d) return std::nullopt;
  return y.substr(1);
}

bool all_zero_digits(std::string_view s) {
  if (s.empty()) return true;
  for (char c : s)
    if (c != '0') return false;
  return true;
}

// E(g_a, Y): some y1 not all zeros, some y2 not all zeros (Table 2).
bool e_add(const std::vector<Observation>& observations) {
  bool y1_nonzero = false, y2_nonzero = false;
  for (const auto& obs : observations) {
    if (!all_zero_digits(obs.y1)) y1_nonzero = true;
    if (!all_zero_digits(obs.y2)) y2_nonzero = true;
  }
  return y1_nonzero && y2_nonzero;
}

// E(g_c, Y): some y1 non-empty, some y2 non-empty.
bool e_concat(const std::vector<Observation>& observations) {
  bool y1_nonempty = false, y2_nonempty = false;
  for (const auto& obs : observations) {
    if (!obs.y1.empty()) y1_nonempty = true;
    if (!obs.y2.empty()) y2_nonempty = true;
  }
  return y1_nonempty && y2_nonempty;
}

// E(g_f, Y): some y1 != y2; some y2 with a significant character
// (E(g_s, Y) swaps the roles).
bool e_select(const std::vector<Observation>& observations,
              bool first_selected) {
  bool differ = false, significant = false;
  for (const auto& obs : observations) {
    if (obs.y1 != obs.y2) differ = true;
    if (has_significant_char(first_selected ? obs.y2 : obs.y1))
      significant = true;
  }
  return differ && significant;
}

// Recursive reduction for composite representatives (back/front/fuse over
// add or concat): strip the formatting layer from every observation, then
// check the base predicate.
std::optional<std::vector<Observation>> strip_layer(
    const std::vector<Observation>& observations, dsl::Op op, char d) {
  std::vector<Observation> out;
  out.reserve(observations.size());
  for (const auto& obs : observations) {
    auto strip = [&](std::string_view y) -> std::optional<std::string_view> {
      return op == dsl::Op::kBack ? strip_back(y, d) : strip_front(y, d);
    };
    auto y1 = strip(obs.y1);
    auto y2 = strip(obs.y2);
    if (!y1 || !y2) return std::nullopt;
    // The E predicates only inspect the operand components; keep y12
    // best-effort (it may be absent in derived observation sets).
    auto y12 = strip(obs.y12);
    out.push_back({std::string(*y1), std::string(*y2),
                   y12 ? std::string(*y12) : std::string()});
  }
  return out;
}

// fuse layer: split every stream into its d-separated elements (Table 2's
// E(g_fa, Y') construction) producing one derived observation per element.
std::optional<std::vector<Observation>> split_fuse_layer(
    const std::vector<Observation>& observations, char d) {
  std::vector<Observation> out;
  for (const auto& obs : observations) {
    auto p1 = text::split(obs.y1, d);
    auto p2 = text::split(obs.y2, d);
    if (p1.size() < 2 || p1.size() != p2.size()) return std::nullopt;
    auto p12 = text::split(obs.y12, d);
    bool y12_usable = p12.size() == p1.size();
    for (std::size_t i = 0; i < p1.size(); ++i)
      out.push_back({std::string(p1[i]), std::string(p2[i]),
                     y12_usable ? std::string(p12[i]) : std::string()});
  }
  return out;
}

bool e_rec_node(const dsl::Node& g, const std::vector<Observation>& observations) {
  switch (g.op) {
    case dsl::Op::kAdd:
      return e_add(observations);
    case dsl::Op::kConcat:
      return e_concat(observations);
    case dsl::Op::kFirst:
      return e_select(observations, /*first_selected=*/true);
    case dsl::Op::kSecond:
      return e_select(observations, /*first_selected=*/false);
    case dsl::Op::kBack:
    case dsl::Op::kFront: {
      auto stripped = strip_layer(observations, g.op, g.delim);
      return stripped && e_rec_node(*g.child1, *stripped);
    }
    case dsl::Op::kFuse: {
      auto split = split_fuse_layer(observations, g.delim);
      return split && e_rec_node(*g.child1, *split);
    }
    default:
      return false;
  }
}

// Boundary-line witness for E(g_sf)/E(g_saf)/E_struct: an observation
// whose last-of-y1 line equals first-of-y2 with significant characters.
struct BoundaryWitness {
  bool found = false;
  bool next_line_nonempty = false;
};

BoundaryWitness boundary_witness(
    const std::vector<Observation>& observations) {
  BoundaryWitness w;
  for (const auto& obs : observations) {
    auto last = text::split_last_line(obs.y1);
    auto first = text::split_first_line(obs.y2);
    if (!last.ok || !first.ok) continue;
    if (last.line != first.line) continue;
    auto unpadded = text::del_pad(last.line);
    if (unpadded.rest.empty()) continue;
    if (is_delim_or_zero(unpadded.rest.front())) continue;
    if (is_delim_or_zero(last.line.back())) continue;
    w.found = true;
    auto next = text::split_first_line(first.tail);
    if (next.ok && !next.line.empty()) w.next_line_nonempty = true;
    if (w.next_line_nonempty) break;
  }
  return w;
}

// The deformatted-head observations of Definition B.15's second clause.
std::vector<Observation> deformatted_heads(
    const std::vector<Observation>& observations, char d) {
  std::vector<Observation> out;
  for (const auto& obs : observations) {
    auto last = text::split_last_line(obs.y1);
    auto first = text::split_first_line(obs.y2);
    if (!last.ok || !first.ok) continue;
    dsl::TableLine t1 = dsl::parse_table_line(last.line, d, /*require_padding=*/false);
    dsl::TableLine t2 = dsl::parse_table_line(first.line, d, /*require_padding=*/false);
    if (!t1.ok || !t2.ok) continue;
    if (t1.tail != t2.tail) continue;
    out.push_back({std::string(t1.head), std::string(t2.head), ""});
  }
  return out;
}

}  // namespace

bool is_delim_or_zero(char c) noexcept {
  if (c == '0') return true;
  for (char d : dsl::kDelims)
    if (c == d) return true;
  return false;
}

bool has_significant_char(std::string_view s) noexcept {
  for (char c : s)
    if (!is_delim_or_zero(c)) return true;
  return false;
}

bool e_rec(const std::vector<Observation>& observations) {
  bool differ = false, sig1 = false, sig2 = false;
  for (const auto& obs : observations) {
    if (obs.y1 != obs.y2) differ = true;
    if (has_significant_char(obs.y1)) sig1 = true;
    if (has_significant_char(obs.y2)) sig2 = true;
  }
  return differ && sig1 && sig2;
}

std::optional<char> table_delimiter(
    const std::vector<Observation>& observations) {
  for (char d : {' ', '\t', ','}) {
    bool ok = true;
    bool any_line = false;
    for (const auto& obs : observations) {
      for (std::string_view y :
           {std::string_view(obs.y1), std::string_view(obs.y2),
            std::string_view(obs.y12)}) {
        for (std::string_view line : text::lines(y)) {
          if (line.empty()) continue;
          any_line = true;
          dsl::TableLine t = dsl::parse_table_line(line, d, /*require_padding=*/false);
          if (!t.ok) {
            ok = false;
            break;
          }
        }
        if (!ok) break;
      }
      if (!ok) break;
    }
    if (ok && any_line) return d;
  }
  return std::nullopt;
}

bool t_pred(const std::vector<Observation>& observations) {
  return table_delimiter(observations).has_value();
}

bool e_struct(const std::vector<Observation>& observations) {
  BoundaryWitness w = boundary_witness(observations);
  if (!w.found || !w.next_line_nonempty) return false;
  auto d = table_delimiter(observations);
  if (!d) return true;  // T(Y) false: second clause vacuous
  return e_rec(deformatted_heads(observations, *d));
}

std::optional<bool> e_representative(
    const dsl::Combiner& g, const std::vector<Observation>& observations) {
  const dsl::Node& n = *g.node;
  switch (dsl::op_class(n.op)) {
    case dsl::OpClass::kRec:
      return e_rec_node(n, observations);
    case dsl::OpClass::kStruct: {
      // Representatives: stitch first, stitch2 d add first, offset d add.
      BoundaryWitness w = boundary_witness(observations);
      if (n.op == dsl::Op::kStitch) {
        if (!w.found) return false;
        // Clause (2) of E(g_sf): if the outputs are table-shaped, a
        // differing-heads witness is required.
        auto d = table_delimiter(observations);
        if (!d) return true;
        for (const auto& obs : deformatted_heads(observations, *d))
          if (obs.y1 != obs.y2) return true;
        // Same-tail rows always had equal heads: insufficient.
        return false;
      }
      if (n.op == dsl::Op::kStitch2) return w.found;
      if (n.op == dsl::Op::kOffset) {
        auto d = table_delimiter(observations);
        if (!d) return false;
        return e_add(deformatted_heads(observations, *d));
      }
      return std::nullopt;
    }
    case dsl::OpClass::kRun:
      return std::nullopt;  // not defined for RunOp (Definition B.12)
  }
  return std::nullopt;
}

SufficiencyReport certify(const std::vector<dsl::Combiner>& surviving,
                          const std::vector<Observation>& observations) {
  SufficiencyReport report;
  report.e_rec_holds = e_rec(observations);
  report.e_struct_holds = e_struct(observations);
  report.is_table = t_pred(observations);

  bool any_rec = false, any_struct = false;
  for (const dsl::Combiner& g : surviving) {
    if (g.cls() == dsl::OpClass::kRec) any_rec = true;
    if (g.cls() == dsl::OpClass::kStruct) any_struct = true;
  }
  if (any_rec && report.e_rec_holds) {
    report.verdict = "rec-certified";
  } else if (any_struct && report.e_struct_holds) {
    report.verdict = "struct-certified";
  } else {
    report.verdict = "uncertified";
  }
  return report;
}

}  // namespace kq::synth
