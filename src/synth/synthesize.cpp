#include "synth/synthesize.h"

#include <chrono>

#include "prep/delimiters.h"
#include "prep/literals.h"
#include "synth/filter.h"
#include "text/streams.h"
#include "unixcmd/sort_cmd.h"

namespace kq::synth {
namespace {

// Derives the merge-candidate flags: for `sort` commands the command's own
// comparison flags ("<flags> specific to command f", §3.1), otherwise the
// flagless merge.
std::string merge_flags_for(const std::vector<std::string>& argv) {
  if (argv.empty()) return "";
  std::string prog = argv[0];
  if (auto slash = prog.rfind('/'); slash != std::string::npos)
    prog = prog.substr(slash + 1);
  if (prog != "sort") return "";
  std::vector<std::string> flags(argv.begin() + 1, argv.end());
  auto spec = cmd::SortSpec::parse(flags);
  if (!spec) return "";
  return spec->canonical_flags();
}

}  // namespace

SynthesisResult synthesize(const cmd::Command& f,
                           const std::vector<std::string>& argv,
                           const SynthesisConfig& config, const vfs::Vfs* fs) {
  auto start = std::chrono::steady_clock::now();
  if (!fs) fs = &vfs::Vfs::global();
  SynthesisResult result;
  std::mt19937_64 rng(config.seed);

  // --- Preprocessing -----------------------------------------------------
  prep::CommandLiterals literals = prep::extract_literals(argv);
  result.input_class = prep::classify_inputs(f, *fs);

  shape::GenOptions gen;
  gen.sorted = result.input_class == prep::InputClass::kSortedText;
  if (result.input_class == prep::InputClass::kFileNames) {
    gen.dictionary = fs->names();
  } else {
    gen.dictionary = literals.dictionary;
  }

  // Seed inputs: sample outputs for delimiter inference and an initial
  // filtering round. When preprocessing found a numeric literal, one seed
  // shape straddles it so both behaviours of the command are exercised.
  std::vector<shape::Shape> number_shapes;
  for (long n : literals.numbers) {
    if (n > 1 && n <= kProbeCountCap) {
      number_shapes.push_back(shape::seed_shape_near_count(n));
      result.probed_bounds.push_back(n);
    } else if (n > kProbeCountCap) {
      result.unprobed_bounds.push_back(n);
    }
  }

  std::vector<shape::InputPair> seed_pairs;
  for (int i = 0; i < 3; ++i)
    seed_pairs.push_back(shape::generate_pair(shape::seed_shape(), gen, rng));
  for (const shape::Shape& s : number_shapes)
    for (int i = 0; i < 6; ++i)
      seed_pairs.push_back(shape::generate_pair(s, gen, rng));
  std::vector<Observation> observations = observe_all(f, seed_pairs);
  if (observations.empty()) {
    result.failure_reason =
        "command failed on every generated seed input";
    result.seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    return result;
  }

  std::vector<std::string_view> sample_outputs;
  for (const Observation& obs : observations) {
    sample_outputs.push_back(obs.y1);
    sample_outputs.push_back(obs.y2);
    sample_outputs.push_back(obs.y12);
  }
  result.delims = prep::infer_delims(sample_outputs);

  // --- Candidate space ---------------------------------------------------
  dsl::SpaceSpec space_spec;
  space_spec.delims = result.delims;
  space_spec.max_ops = config.max_ops;
  space_spec.merge_flags = merge_flags_for(argv);
  dsl::CandidateSpace space = dsl::enumerate_candidates(space_spec);
  result.space = dsl::count_candidates(result.delims.size(), config.max_ops);

  dsl::EvalContext ctx{&f};

  // Round 0: filter on the seed observations.
  std::vector<dsl::Combiner> candidates =
      filter_candidates(std::move(space.candidates), observations, ctx);

  // --- Algorithm 1 rounds ------------------------------------------------
  int stagnant = 0;
  for (int r = 1; r <= config.max_rounds && !candidates.empty(); ++r) {
    result.rounds = r;
    // Rounds rotate between random restarts and shapes straddling the
    // numeric literals preprocessing extracted, so size-sensitive
    // behaviour (e.g. `sed 100q`) keeps being exercised.
    shape::Shape start_shape =
        (!number_shapes.empty() && r % 2 == 0)
            ? number_shapes[static_cast<std::size_t>(r / 2 - 1) %
                            number_shapes.size()]
            : shape::random_shape(rng);
    InputSearchResult found =
        effective_inputs(f, candidates, start_shape, gen,
                         config.input_search, ctx, rng);
    std::size_t before = candidates.size();
    candidates = filter_candidates(std::move(candidates), found.observations,
                                   ctx);
    for (Observation& o : found.observations)
      observations.push_back(std::move(o));
    if (candidates.size() == before) {
      if (++stagnant >= config.progress_window) break;
    } else {
      stagnant = 0;
    }
  }

  result.observation_count = observations.size();

  // Degenerate-evidence check: if the command never produced output on any
  // generated input, every candidate is vacuously plausible and nothing
  // was validated. The paper reports such commands as unsupported (its
  // Table 9 lists awk "$1 == 2 ..." with the reason "KumQuat did not
  // generate inputs for the command to produce nonempty outputs").
  bool any_output = false;
  for (const Observation& obs : observations)
    if (!obs.y12.empty()) any_output = true;
  if (!any_output) {
    result.failure_reason =
        "generated inputs never made the command produce output";
    result.seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    return result;
  }

  result.plausible = candidates;
  result.success = !candidates.empty();
  if (!result.success)
    result.failure_reason = "no candidate combiner explains the observations";
  result.combiner = CompositeCombiner::select(candidates);
  result.sufficiency = certify(candidates, observations);

  // Diagnostics for the compiler.
  std::size_t in_bytes = 0, out_bytes = 0;
  bool newline_ok = true;
  for (const Observation& obs : observations) {
    out_bytes += obs.y12.size();
    for (std::string_view y : {std::string_view(obs.y1),
                               std::string_view(obs.y2)}) {
      if (!y.empty() && !text::is_stream(y)) newline_ok = false;
    }
  }
  for (const shape::InputPair& p : seed_pairs)
    in_bytes += p.x1.size() + p.x2.size();
  // seed_pairs only covers the initial round; scale by observation share to
  // keep the ratio meaningful.
  if (in_bytes > 0 && !observations.empty()) {
    double per_obs_out =
        static_cast<double>(out_bytes) / static_cast<double>(
                                             observations.size());
    double per_obs_in = static_cast<double>(in_bytes) /
                        static_cast<double>(
                            std::max<std::size_t>(1, seed_pairs.size()));
    if (per_obs_in > 0) result.reduction_ratio = per_obs_out / per_obs_in;
  }
  result.outputs_newline_terminated = newline_ok;

  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return result;
}

const SynthesisResult& SynthesisCache::get_or_synthesize(
    const cmd::Command& f, const std::vector<std::string>& argv,
    const SynthesisConfig& config, const vfs::Vfs* fs) {
  auto it = cache_.find(f.display_name());
  if (it != cache_.end()) return it->second;
  SynthesisResult result = synthesize(f, argv, config, fs);
  return cache_.emplace(f.display_name(), std::move(result)).first->second;
}

}  // namespace kq::synth
