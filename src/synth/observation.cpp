#include "synth/observation.h"

namespace kq::synth {

std::optional<Observation> observe(const cmd::Command& f,
                                   const shape::InputPair& pair) {
  cmd::Result r1 = f.execute(pair.x1);
  if (!r1.ok()) return std::nullopt;
  cmd::Result r2 = f.execute(pair.x2);
  if (!r2.ok()) return std::nullopt;
  cmd::Result r12 = f.execute(pair.joined());
  if (!r12.ok()) return std::nullopt;
  return Observation{std::move(r1.out), std::move(r2.out), std::move(r12.out)};
}

std::vector<Observation> observe_all(const cmd::Command& f,
                                     const std::vector<shape::InputPair>& xs) {
  std::vector<Observation> out;
  out.reserve(xs.size());
  for (const shape::InputPair& pair : xs) {
    if (auto obs = observe(f, pair)) out.push_back(std::move(*obs));
  }
  return out;
}

}  // namespace kq::synth
