// Composite combiner construction (§3.2 "Multiple Plausible Combiners").
// When several plausible combiners survive, the synthesizer keeps the most
// specific class available (RecOp, else StructOp, else RunOp) and composes
// them by domain dispatch: the first combiner whose domain contains the
// operands is applied. Theorems 1/3 guarantee the order does not matter
// when the correct combiner is among the representative sets.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dsl/eval.h"
#include "dsl/kway.h"

namespace kq::dsl {
class Combiner;  // fwd
}

namespace kq::synth {

class CompositeCombiner {
 public:
  CompositeCombiner() = default;

  // Selects the preferred class subset of `plausible` and orders it by
  // (size, printed form) for deterministic dispatch.
  static CompositeCombiner select(const std::vector<dsl::Combiner>& plausible);

  bool empty() const { return ordered_.empty(); }
  const std::vector<dsl::Combiner>& combiners() const { return ordered_; }
  const dsl::Combiner* primary() const {
    return ordered_.empty() ? nullptr : &ordered_.front();
  }

  // Applies the first combiner defined on (y1, y2).
  std::optional<std::string> apply(std::string_view y1, std::string_view y2,
                                   const dsl::EvalContext& ctx = {}) const;

  // k-way application (§3.5): tries each combiner's k-way form in order.
  std::optional<std::string> apply_k(const std::vector<std::string>& parts,
                                     const dsl::EvalContext& ctx = {}) const;

  // True if plain (unswapped) concat is among the plausible combiners —
  // the precondition for intermediate-combiner elimination (Theorem 5).
  bool concat_equivalent() const;

  // True if every plausible combiner is a rerun (the stages the compiler
  // may decide to keep sequential, §2).
  bool rerun_only() const;

  std::string to_string() const;

 private:
  std::vector<dsl::Combiner> ordered_;
};

}  // namespace kq::synth
