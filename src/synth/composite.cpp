#include "synth/composite.h"

#include <algorithm>

#include "dsl/ast.h"

namespace kq::synth {

CompositeCombiner CompositeCombiner::select(
    const std::vector<dsl::Combiner>& plausible) {
  CompositeCombiner out;
  for (dsl::OpClass cls :
       {dsl::OpClass::kRec, dsl::OpClass::kStruct, dsl::OpClass::kRun}) {
    for (const dsl::Combiner& g : plausible)
      if (g.cls() == cls) out.ordered_.push_back(g);
    if (!out.ordered_.empty()) break;
  }
  std::stable_sort(out.ordered_.begin(), out.ordered_.end(),
                   [](const dsl::Combiner& a, const dsl::Combiner& b) {
                     int sa = dsl::size(a), sb = dsl::size(b);
                     if (sa != sb) return sa < sb;
                     return dsl::to_string(a) < dsl::to_string(b);
                   });
  return out;
}

std::optional<std::string> CompositeCombiner::apply(
    std::string_view y1, std::string_view y2,
    const dsl::EvalContext& ctx) const {
  for (const dsl::Combiner& g : ordered_) {
    if (auto v = dsl::eval(g, y1, y2, ctx)) return v;
  }
  return std::nullopt;
}

std::optional<std::string> CompositeCombiner::apply_k(
    const std::vector<std::string>& parts, const dsl::EvalContext& ctx) const {
  for (const dsl::Combiner& g : ordered_) {
    if (auto v = dsl::combine_k(g, parts, ctx)) return v;
  }
  return std::nullopt;
}

bool CompositeCombiner::concat_equivalent() const {
  for (const dsl::Combiner& g : ordered_)
    if (g.node->op == dsl::Op::kConcat && !g.swapped) return true;
  return false;
}

bool CompositeCombiner::rerun_only() const {
  if (ordered_.empty()) return false;
  for (const dsl::Combiner& g : ordered_)
    if (g.node->op != dsl::Op::kRerun) return false;
  return true;
}

std::string CompositeCombiner::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < ordered_.size(); ++i) {
    if (i != 0) out += " | ";
    out += dsl::to_string(ordered_[i]);
  }
  return out;
}

}  // namespace kq::synth
