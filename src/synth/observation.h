// Observations (Definition 3.5): executing f on an input stream pair
// ⟨x1,x2⟩ yields ⟨f(x1), f(x2), f(x1 ++ x2)⟩, the only evidence the
// synthesizer ever sees about the black-box command.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "shape/generate.h"
#include "unixcmd/command.h"

namespace kq::synth {

struct Observation {
  std::string y1;
  std::string y2;
  std::string y12;
};

// Runs f on the pair; nullopt if any of the three executions fails (the
// pair is then discarded rather than used as evidence).
std::optional<Observation> observe(const cmd::Command& f,
                                   const shape::InputPair& pair);

std::vector<Observation> observe_all(const cmd::Command& f,
                                     const std::vector<shape::InputPair>& xs);

}  // namespace kq::synth
