// Sufficiency predicates from Appendix B (Table 2 and Definitions
// B.13–B.15): conservative checks that a set of observations carries
// enough evidence for the synthesis theorems to apply.
//
//  * E(g, Y)    — Table 2's per-representative conditions: when the
//                 correct combiner is g, Y suffices to eliminate every
//                 inequivalent candidate of g's class.
//  * E_rec(Y)   — Definition B.13: sufficiency for any correct g ∈ G_rec.
//  * T(Y)       — Definition B.14: Y is interpretable as a table
//                 (pad ++ head ++ d ++ tail rows).
//  * E_struct(Y)— Definition B.15: sufficiency for any correct
//                 g ∈ G_struct.
//
// The synthesizer does not need these to run (Algorithm 1 only filters),
// but they turn Theorems 2/4 into machine-checkable certificates: when
// E_rec(f(X)) holds and a RecOp candidate survives, every surviving RecOp
// candidate is equivalent-by-intersection to the correct combiner. The
// certification API below is used by tests and by diagnostics in the
// synthesis report.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "dsl/ast.h"
#include "synth/observation.h"

namespace kq::synth {

// Delimiter-or-zero characters: the theorems require witnessing characters
// outside Delim ∪ {'0'} (Definitions B.13/B.15).
bool is_delim_or_zero(char c) noexcept;

// True iff `s` contains a character outside Delim ∪ {'0'}.
bool has_significant_char(std::string_view s) noexcept;

// --- Definition B.13 -----------------------------------------------------
// E_rec(Y): (1) some observation has y1 != y2; (2) some y1 has a
// significant character; (3) some y2 has a significant character.
bool e_rec(const std::vector<Observation>& observations);

// --- Definition B.14 -----------------------------------------------------
// T(Y): there exist a padding style and a delimiter d such that every line
// of every y1, y2, y12 is nil or of the form pad ++ head ++ d ++ tail.
// Returns the witnessing delimiter, or nullopt.
std::optional<char> table_delimiter(
    const std::vector<Observation>& observations);
bool t_pred(const std::vector<Observation>& observations);

// --- Definition B.15 -----------------------------------------------------
// E_struct(Y): (1) some observation has y1's last line equal to y2's first
// line, with significant first/last characters, and y2 having a further
// non-empty line; (2) if T(Y), the deformatted heads satisfy E_rec.
bool e_struct(const std::vector<Observation>& observations);

// --- Table 2 -------------------------------------------------------------
// E(g, Y) for the representative combiners of Definition B.11. Returns
// nullopt when g is not one of the representatives (the predicate is only
// defined for G_rec ∪ G_struct).
std::optional<bool> e_representative(
    const dsl::Combiner& g, const std::vector<Observation>& observations);

// --- Certification -------------------------------------------------------
// Combines the predicates with the surviving candidate set: when the
// sufficiency predicate for the surviving class holds, Theorems 2/4
// guarantee all survivors of that class are ≡∩-equivalent.
struct SufficiencyReport {
  bool e_rec_holds = false;
  bool e_struct_holds = false;
  bool is_table = false;
  // The strongest applicable guarantee:
  //   "rec-certified"    E_rec holds and RecOp candidates survive
  //   "struct-certified" E_struct holds and StructOp candidates survive
  //   "uncertified"      neither predicate holds for the surviving class
  std::string_view verdict = "uncertified";
};

SufficiencyReport certify(const std::vector<dsl::Combiner>& surviving,
                          const std::vector<Observation>& observations);

}  // namespace kq::synth
