#include "synth/input_search.h"

#include "synth/filter.h"

namespace kq::synth {

InputSearchResult effective_inputs(const cmd::Command& f,
                                   const std::vector<dsl::Combiner>& candidates,
                                   const shape::Shape& initial,
                                   const shape::GenOptions& gen,
                                   const InputSearchConfig& config,
                                   const dsl::EvalContext& ctx,
                                   std::mt19937_64& rng) {
  InputSearchResult result;
  shape::Shape current = initial;
  for (int m = 0; m < config.iterations; ++m) {
    int best_j = 0;
    std::size_t best_score = 0;
    bool have_best = false;
    for (int j = 0; j < shape::kMutationCount; ++j) {
      shape::Shape mutated = shape::mutate_shape(current, j);
      std::vector<shape::InputPair> pairs;
      pairs.reserve(static_cast<std::size_t>(config.pairs_per_shape));
      for (int p = 0; p < config.pairs_per_shape; ++p)
        pairs.push_back(shape::generate_pair(mutated, gen, rng));
      std::vector<Observation> obs = observe_all(f, pairs);
      std::size_t score =
          count_eliminated(candidates, obs, ctx, config.score_sample_cap);
      for (shape::InputPair& pair : pairs)
        result.pairs.push_back(std::move(pair));
      for (Observation& o : obs) result.observations.push_back(std::move(o));
      if (!have_best || score > best_score) {
        have_best = true;
        best_score = score;
        best_j = j;
      }
    }
    result.chosen_mutations.push_back(best_j);
    current = shape::mutate_shape(current, best_j);
  }
  result.final_shape = current;
  return result;
}

}  // namespace kq::synth
