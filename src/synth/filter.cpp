#include "synth/filter.h"

#include <algorithm>

namespace kq::synth {

bool plausible(const dsl::Combiner& g, const Observation& obs,
               const dsl::EvalContext& ctx) {
  auto v = dsl::eval(g, obs.y1, obs.y2, ctx);
  return v.has_value() && *v == obs.y12;
}

std::vector<dsl::Combiner> filter_candidates(
    std::vector<dsl::Combiner> candidates,
    const std::vector<Observation>& observations,
    const dsl::EvalContext& ctx) {
  std::vector<dsl::Combiner> kept;
  kept.reserve(candidates.size());
  for (dsl::Combiner& g : candidates) {
    bool ok = true;
    for (const Observation& obs : observations) {
      if (!plausible(g, obs, ctx)) {
        ok = false;
        break;
      }
    }
    if (ok) kept.push_back(std::move(g));
  }
  return kept;
}

std::size_t count_eliminated(const std::vector<dsl::Combiner>& candidates,
                             const std::vector<Observation>& observations,
                             const dsl::EvalContext& ctx,
                             std::size_t sample_cap) {
  std::size_t stride = 1;
  if (sample_cap > 0 && candidates.size() > sample_cap)
    stride = candidates.size() / sample_cap;
  std::size_t eliminated = 0;
  for (std::size_t i = 0; i < candidates.size(); i += stride) {
    const dsl::Combiner& g = candidates[i];
    for (const Observation& obs : observations) {
      if (!plausible(g, obs, ctx)) {
        ++eliminated;
        break;
      }
    }
  }
  return eliminated;
}

}  // namespace kq::synth
