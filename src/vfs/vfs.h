// An in-memory file system used by commands that dereference file names
// (`xargs cat`, `xargs file`, `comm - dict`). Keeping file contents in
// memory makes synthesis and the benchmark suite hermetic: no temp files,
// no dependence on the host file system, and trivially thread-safe reads.
#pragma once

#include <map>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

namespace kq::vfs {

class Vfs {
 public:
  Vfs() = default;

  // Creates or replaces a file.
  void write(std::string name, std::string contents);

  // Reads a file; nullopt if absent.
  std::optional<std::string> read(const std::string& name) const;

  bool exists(const std::string& name) const;

  // All file names, sorted.
  std::vector<std::string> names() const;

  void clear();

  // Process-wide instance used by default-constructed commands.
  static Vfs& global();

 private:
  mutable std::shared_mutex mu_;
  std::map<std::string, std::string> files_;
};

}  // namespace kq::vfs
