// An in-memory file system used by commands that dereference file names
// (`xargs cat`, `xargs file`, `comm - dict`). Keeping file contents in
// memory makes synthesis and the benchmark suite hermetic: no temp files,
// no dependence on the host file system, and trivially thread-safe reads.
//
// Thread safety: reader/writer locking via sync::SharedMutex — parallel
// worker chunks read concurrently; writes (test setup, synthesis staging)
// are exclusive. files_ is GUARDED_BY(mu_), checked by the
// clang-threadsafety CI job.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "stream/sync.h"

namespace kq::vfs {

class Vfs {
 public:
  Vfs() = default;

  // Creates or replaces a file.
  void write(std::string name, std::string contents) EXCLUDES(mu_);

  // Reads a file; nullopt if absent.
  std::optional<std::string> read(const std::string& name) const
      EXCLUDES(mu_);

  bool exists(const std::string& name) const EXCLUDES(mu_);

  // All file names, sorted.
  std::vector<std::string> names() const EXCLUDES(mu_);

  void clear() EXCLUDES(mu_);

  // Process-wide instance used by default-constructed commands.
  static Vfs& global();

 private:
  mutable sync::SharedMutex mu_;
  std::map<std::string, std::string> files_ GUARDED_BY(mu_);
};

}  // namespace kq::vfs
