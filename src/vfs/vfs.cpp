#include "vfs/vfs.h"

namespace kq::vfs {

using sync::ReaderLock;
using sync::WriterLock;

void Vfs::write(std::string name, std::string contents) {
  WriterLock lock(mu_);
  files_[std::move(name)] = std::move(contents);
}

std::optional<std::string> Vfs::read(const std::string& name) const {
  ReaderLock lock(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) return std::nullopt;
  return it->second;
}

bool Vfs::exists(const std::string& name) const {
  ReaderLock lock(mu_);
  return files_.contains(name);
}

std::vector<std::string> Vfs::names() const {
  ReaderLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [name, _] : files_) out.push_back(name);
  return out;
}

void Vfs::clear() {
  WriterLock lock(mu_);
  files_.clear();
}

Vfs& Vfs::global() {
  static Vfs instance;
  return instance;
}

}  // namespace kq::vfs
