// The static pipeline analyzer behind `kumquat check` (and `--check` on
// run/compile): walks a compiled plan and its lowered ExecStages *without
// executing anything* and emits coded diagnostics — severity, stage span,
// explanation, fix hint. The diagnostic families and their exact meanings
// are cataloged in docs/CHECKS.md:
//
//   KQ-EXEC    error    stage resolves to no executable command
//   KQ-MEM     warning  unbounded-memory stage (kMaterialize, no spill path)
//   KQ-PROBE   warning  combiner certification blind past the probe cap
//   KQ-ORDER   info/warning  order- or collation-dependent recombination
//   KQ-DEAD    warning  redundant stage (cat mid-pipeline, sort|sort, ...)
//   KQ-REWRITE info     bounded-window rewrite almost matched; says why not
//
// Everything here reads the classification rationale compile_pipeline
// records (PlannedStage::seq_reason et al.) rather than re-deriving it, so
// `check` can never disagree with the plan that `run` executes. Output is
// a human table (render_human) or a versioned JSON document (write_json,
// schema validated by bench/check_diag_json.py); exit codes distinguish
// clean/warnings/errors so CI can gate on the analyzer.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "compile/plan.h"

namespace kq::check {

enum class Severity { kInfo, kWarning, kError };

const char* severity_name(Severity severity);

struct Diagnostic {
  std::string code;  // "KQ-MEM", "KQ-PROBE", ...
  Severity severity = Severity::kInfo;
  // Inclusive stage-index span in the compiled plan (a rewrite near-miss
  // spans the whole almost-matched run; most diagnostics span one stage).
  int stage_begin = 0;
  int stage_end = 0;
  std::string stage;    // display text of the span, " | "-joined
  std::string message;  // what is wrong and why
  std::string hint;     // how to fix or silence it (may be empty)
};

// Per-stage facts the analyzer derived — the machine-readable counterpart
// of `kumquat compile`'s annotations, carried in the JSON "stages" array.
struct StageSummary {
  std::string display;
  std::string mode;          // "parallel" | "sequential"
  std::string seq_reason;    // compile::seq_reason_name of the rationale
  std::string memory_class;  // exec::memory_class_name of the lowering
  std::string rss_model;     // worst-case resident-set model for the class
};

struct Options {
  // The spill threshold the memory models are phrased against (the `run`
  // default; `check --spill-threshold` overrides, 0 = spilling disabled).
  std::size_t spill_threshold = 64 << 20;
  // False when the plan was compiled with --no-rewrite: a fully matching
  // bounded-window pattern is then reported as blocked by the flag.
  bool rewrites_enabled = true;
};

struct Report {
  std::vector<StageSummary> stages;
  std::vector<Diagnostic> diagnostics;

  int errors() const;
  int warnings() const;
  int infos() const;
  // The CI contract: 0 clean (at most info), 1 warnings, 2 errors.
  int exit_code() const;
  // "clean" | "info" | "warnings" | "errors".
  const char* status() const;
};

// Analyzes a compiled plan against its lowering. `lowered` must be
// lower_plan(plan) (one ExecStage per planned stage, same order).
Report analyze(const compile::Plan& plan,
               const std::vector<exec::ExecStage>& lowered,
               const Options& options = {});

// One formatted line per diagnostic: "KQ-MEM warning: ... (fix: ...)".
// The single rendering path shared by `kumquat check`'s table and
// `kumquat compile`'s inline `check:` annotations.
std::string format_diagnostic(const Diagnostic& d);

// The human report: per-stage table plus every diagnostic and a verdict.
void render_human(const Report& report, const std::string& pipeline,
                  std::ostream& out);

// A named (pipeline, report) pair for the JSON document — `kumquat check
// --catalog` emits one entry per catalog pipeline, plain `check` one.
struct PipelineReport {
  std::string name;      // "oneliners/top-n.sh" or the pipeline itself
  std::string pipeline;  // the analyzed pipeline text
  Report report;
};

// Serializes the versioned kumquat-check JSON document (schema v1,
// documented in docs/CHECKS.md, validated by bench/check_diag_json.py).
void write_json(const std::vector<PipelineReport>& reports,
                std::ostream& out);

// Worst exit code across the documents' reports (the --catalog verdict).
int exit_code(const std::vector<PipelineReport>& reports);

}  // namespace kq::check
