#include "check/check.h"

#include <algorithm>
#include <initializer_list>
#include <ostream>
#include <string_view>

#include "synth/synthesize.h"
#include "unixcmd/builtins.h"
#include "unixcmd/sort_cmd.h"
#include "unixcmd/topn.h"

namespace kq::check {
namespace {

// Append-based concatenation. Diagnostic messages are built through this
// instead of chained string operator+ because the rvalue operator+ chain
// trips GCC 12's -Wrestrict false positive inside libstdc++ under -O3
// (GCC PR 105329), which the -Werror build no longer suppresses.
std::string concat(std::initializer_list<std::string_view> parts) {
  std::string out;
  for (std::string_view p : parts) out += p;
  return out;
}

// argv[0] with any leading path stripped — the registry's own notion of
// the program name, so near-miss detection sees `/usr/bin/sort` as sort.
std::string program_of(const compile::PlannedStage& stage) {
  if (stage.parsed.argv.empty()) return "";
  std::string prog = stage.parsed.argv[0];
  if (auto slash = prog.rfind('/'); slash != std::string::npos)
    prog = prog.substr(slash + 1);
  return prog;
}

std::shared_ptr<const cmd::SortSpec> spec_of(
    const compile::PlannedStage& stage) {
  if (!stage.command) return nullptr;
  return cmd::sort_spec_of(*stage.command);
}

// True when the comparator consults collation classes beyond raw bytes
// (-f fold case, -d dictionary order): the built-in comparator is fixed at
// byte order (LC_ALL=C semantics), so results can diverge from GNU sort
// under another locale. Canonical flags spell fold as 'f' and dictionary
// as 'd' in both the global and per-key positions.
bool collation_sensitive(const cmd::SortSpec& spec) {
  const std::string& flags = spec.canonical_flags();
  return flags.find('f') != std::string::npos ||
         flags.find('d') != std::string::npos;
}

std::string span_display(const compile::Plan& plan, int begin, int end) {
  std::string out;
  for (int i = begin; i <= end; ++i) {
    if (!out.empty()) out += " | ";
    out += plan.stages[static_cast<std::size_t>(i)].parsed.display;
  }
  return out;
}

// Worst-case resident-set model per memory class, phrased against the
// configured spill threshold. This is the "memory class → RSS" contract
// docs/ARCHITECTURE.md describes in prose, emitted per stage as data.
std::string rss_model(const compile::PlannedStage& planned,
                      const exec::ExecStage& lowered,
                      const Options& options) {
  bool spill_on = options.spill_threshold > 0;
  switch (lowered.memory_class) {
    case exec::MemoryClass::kStreaming:
      if (lowered.shardable)
        return "O(parallelism x slice): sharded stream sub-chains feed an "
               "incremental combining tree";
      return "O(parallelism x block): chunk outputs stream through";
    case exec::MemoryClass::kStatelessStream:
      return "O(block): fused per-block stream chain";
    case exec::MemoryClass::kWindowStream:
      if (!planned.rewritten_from.empty())
        return "O(N): fused bounded top-N window";
      if (lowered.sort_spec)
        return spill_on
                   ? "O(min(window, spill-threshold)): oversized window "
                     "exports sorted runs"
                   : "O(window): sorted-run export disabled "
                     "(--spill-threshold 0)";
      return "O(window): bounded by the command's own window";
    case exec::MemoryClass::kSortableSpill:
      if (!spill_on)
        return "O(input): spilling disabled (--spill-threshold 0)";
      if (lowered.shardable)
        return "O(parallelism x window + spill-threshold): sharded "
               "sub-chains spill sorted runs, external k-way merge";
      return "O(spill-threshold): sorted runs on disk, external k-way merge";
    case exec::MemoryClass::kMaterialize:
      return "O(input): whole stream materializes";
  }
  return "?";
}

class Analyzer {
 public:
  Analyzer(const compile::Plan& plan,
           const std::vector<exec::ExecStage>& lowered,
           const Options& options)
      : plan_(plan), lowered_(lowered), options_(options) {}

  Report run() {
    for (std::size_t i = 0; i < plan_.stages.size(); ++i) {
      summarize(static_cast<int>(i));
      check_exec(static_cast<int>(i));
      check_mem(static_cast<int>(i));
      check_probe(static_cast<int>(i));
      check_order(static_cast<int>(i));
    }
    check_dead();
    check_rewrite();
    std::stable_sort(report_.diagnostics.begin(), report_.diagnostics.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                       return a.stage_begin < b.stage_begin;
                     });
    return std::move(report_);
  }

 private:
  const compile::PlannedStage& planned(int i) const {
    return plan_.stages[static_cast<std::size_t>(i)];
  }
  const exec::ExecStage& lowered(int i) const {
    return lowered_[static_cast<std::size_t>(i)];
  }
  int total() const { return static_cast<int>(plan_.stages.size()); }

  void emit(std::string code, Severity severity, int begin, int end,
            std::string message, std::string hint) {
    report_.diagnostics.push_back(Diagnostic{
        std::move(code), severity, begin, end, span_display(plan_, begin, end),
        std::move(message), std::move(hint)});
  }

  void summarize(int i) {
    const compile::PlannedStage& p = planned(i);
    StageSummary s;
    s.display = p.parsed.display;
    s.mode = p.parallel ? "parallel" : "sequential";
    s.seq_reason = compile::seq_reason_name(p.seq_reason);
    s.memory_class = exec::memory_class_name(lowered(i).memory_class);
    s.rss_model = rss_model(p, lowered(i), options_);
    report_.stages.push_back(std::move(s));
  }

  // KQ-EXEC: the registry resolved the stage to nothing, so `kumquat run`
  // would emit a failure marker instead of output. Always an error — the
  // pipeline cannot produce correct results.
  void check_exec(int i) {
    const compile::PlannedStage& p = planned(i);
    if (p.command) return;
    emit("KQ-EXEC", Severity::kError, i, i,
         concat({"stage cannot execute: ",
                 p.seq_detail.empty() ? "command did not resolve"
                                      : std::string_view(p.seq_detail)}),
         "pipelines run built-in commands only; see src/unixcmd/registry.cpp "
         "for the supported set");
  }

  // KQ-MEM: the stage has no bounded-memory execution path — it
  // materializes its whole input (kMaterialize), or its only bound was the
  // spill path and --spill-threshold 0 disabled it.
  void check_mem(int i) {
    const compile::PlannedStage& p = planned(i);
    if (!p.command) return;  // KQ-EXEC already covers the stage
    const exec::ExecStage& l = lowered(i);
    bool spill_off = options_.spill_threshold == 0;
    if (l.memory_class == exec::MemoryClass::kMaterialize) {
      std::string message;
      if (l.parallel && l.rerun_combiner) {
        message =
            "parallel rerun combiner: the k partial outputs concatenate and "
            "rerun through the command whole, so worst-case RSS is O(input) "
            "(deferred parts spool through disk, the rerun reads them back)";
      } else {
        message =
            "stage declares no streamable or window-bounded form, so the "
            "runtime materializes its whole input: worst-case RSS is "
            "O(input) with no spill path at the configured spill threshold";
      }
      emit("KQ-MEM", Severity::kWarning, i, i, std::move(message),
           "bound it upstream (filter or head before this stage) or teach "
           "the built-in a StreamProcessor/WindowProcessor form");
      return;
    }
    if (spill_off && l.memory_class == exec::MemoryClass::kSortableSpill) {
      emit("KQ-MEM", Severity::kWarning, i, i,
           "sort-class stage with spilling disabled (--spill-threshold 0): "
           "the run accumulates unboundedly instead of exporting sorted "
           "runs; worst-case RSS is O(input)",
           "re-enable spilling (--spill-threshold N) to restore the "
           "external-merge bound");
      return;
    }
    if (spill_off && l.memory_class == exec::MemoryClass::kWindowStream &&
        l.sort_spec && p.rewritten_from.empty()) {
      emit("KQ-MEM", Severity::kWarning, i, i,
           "distinct-set window (sort -u class) with spilling disabled "
           "(--spill-threshold 0): the window grows with the number of "
           "distinct records; worst-case RSS is O(distinct input)",
           "re-enable spilling (--spill-threshold N) so the window exports "
           "sorted runs past the threshold");
    }
  }

  // KQ-PROBE: the probe-coverage guard fired — the command's declared
  // scale bound outran every certification probe, so the synthesized
  // combiner is statistically blind exactly where it matters and the
  // planner kept the stage sequential. Surfaced as an explained lint
  // instead of a silent fallback.
  void check_probe(int i) {
    const compile::PlannedStage& p = planned(i);
    if (p.seq_reason != compile::SeqReason::kProbeGuard) return;
    std::string message = concat(
        {"combiner certification is blind past the probe cap: ",
         p.seq_detail});
    if (p.synthesis) {
      message += "; probes straddled ";
      if (p.synthesis->probed_bounds.empty()) {
        message += "no literal bound";
      } else {
        message += "bound(s)";
        for (long b : p.synthesis->probed_bounds) {
          message += ' ';
          message += std::to_string(b);
        }
      }
      message += ", so the certified combiner was never observed crossing ";
      message += std::to_string(p.probe_bound);
    }
    emit("KQ-PROBE", Severity::kWarning, i, i, std::move(message),
         concat({"stage runs sequential (its streaming lowering is exact at "
                 "any size); lower the bound to <= ",
                 std::to_string(synth::kProbeCountCap),
                 " to make it certifiable and parallel"}));
  }

  // KQ-ORDER: the stage's result depends on input order or collation in a
  // way parallel recombination has to reconstruct. Collation-sensitive
  // comparators (-f/-d) are warnings — the built-in collates in byte order
  // (LC_ALL=C), so GNU tools under another locale can disagree; pure
  // merge-recombination order notes are info.
  void check_order(int i) {
    const compile::PlannedStage& p = planned(i);
    if (!p.command) return;
    auto spec = spec_of(p);
    if (!spec) spec = lowered(i).sort_spec;
    if (spec && collation_sensitive(*spec)) {
      emit("KQ-ORDER", Severity::kWarning, i, i,
           concat({"comparator is collation-sensitive (canonical flags ",
                   spec->canonical_flags().empty()
                       ? "(none)"
                       : std::string_view(spec->canonical_flags()),
                   "): the built-in collates in byte order (LC_ALL=C), so "
                   "GNU sort under a non-C locale may order differently"}),
           "run the reference pipeline under LC_ALL=C when comparing "
           "outputs");
      return;
    }
    if (p.parallel &&
        lowered(i).memory_class == exec::MemoryClass::kSortableSpill) {
      emit("KQ-ORDER", Severity::kInfo, i, i,
           "parallel recombination is a k-way merge: output order is "
           "re-established by the comparator, and equal keys across chunk "
           "boundaries keep input order only because the merge is stable "
           "over chunk order",
           "");
    }
  }

  // KQ-DEAD: stages that do no work — identity `cat` mid-pipeline, a sort
  // re-sorting an identically-sorted stream, `uniq` after `sort -u`.
  void check_dead() {
    for (int i = 0; i < total(); ++i) {
      const compile::PlannedStage& p = planned(i);
      if (p.parsed.argv.size() == 1 && program_of(p) == "cat") {
        emit("KQ-DEAD", Severity::kWarning, i, i,
             "`cat` with no operands is the identity on its stdin: the "
             "stage copies every byte without changing the stream",
             "remove the stage");
      }
      if (i + 1 < total()) {
        auto a = spec_of(planned(i));
        auto b = spec_of(planned(i + 1));
        if (a && b && a->canonical_flags() == b->canonical_flags() &&
            a->unique() == b->unique()) {
          emit("KQ-DEAD", Severity::kWarning, i + 1, i + 1,
               concat({"`", planned(i + 1).parsed.display,
                       "` re-sorts a stream the previous stage already "
                       "sorted under the same comparator: the second sort "
                       "is the identity"}),
               "remove the second sort stage");
        }
        if (a && a->unique() && planned(i + 1).command &&
            cmd::is_uniq_command(*planned(i + 1).command) &&
            planned(i + 1).parsed.argv.size() == 1) {
          emit("KQ-DEAD", Severity::kWarning, i + 1, i + 1,
               concat({"`uniq` after `", planned(i).parsed.display,
                       "`: -u already removed every duplicate, so uniq has "
                       "nothing left to collapse"}),
               "remove the uniq stage");
        }
      }
    }
  }

  // KQ-REWRITE: a bounded-window rewrite pattern (sort|head, or
  // uniq|sort|head) almost matched — name exactly the precondition that
  // blocked rewrite_bounded_windows, or the --no-rewrite flag when the
  // pattern matches fully but the pass was skipped. Fully-fused patterns
  // no longer appear here: the rewrite replaced them with one stage.
  void check_rewrite() {
    std::vector<bool> in_triple(static_cast<std::size_t>(total()), false);
    for (int i = 0; i + 2 < total(); ++i) {
      if (program_of(planned(i)) != "uniq" ||
          program_of(planned(i + 1)) != "sort" ||
          program_of(planned(i + 2)) != "head")
        continue;
      std::string blocked = blocked_reason(i + 1, i + 2);
      if (blocked.empty() && planned(i).command &&
          !cmd::is_uniq_command(*planned(i).command))
        blocked = "the first stage is not the built-in uniq";
      emit_rewrite(i, i + 2, "uniq | sort | head", "bounded top-k",
                   std::move(blocked));
      for (int j = i; j <= i + 2; ++j)
        in_triple[static_cast<std::size_t>(j)] = true;
    }
    for (int i = 0; i + 1 < total(); ++i) {
      if (in_triple[static_cast<std::size_t>(i)]) continue;
      if (program_of(planned(i)) != "sort" ||
          program_of(planned(i + 1)) != "head")
        continue;
      emit_rewrite(i, i + 1, "sort | head", "bounded top-n",
                   blocked_reason(i, i + 1));
    }
  }

  // Why the (sort at `si`, head at `hi`) pair cannot fuse; empty when
  // every precondition holds.
  std::string blocked_reason(int si, int hi) {
    const compile::PlannedStage& s = planned(si);
    const compile::PlannedStage& h = planned(hi);
    if (!s.command)
      return "the sort stage's flags are not supported by the built-in "
             "comparator, so no fusion spec exists";
    if (!spec_of(s))
      return "the sort stage carries no usable comparator spec";
    if (!h.command)
      return "the head stage did not resolve to the built-in head";
    if (!cmd::head_line_count(*h.command))
      return "head runs in byte mode (-c) or carries no line count: a byte "
             "cut can split mid-record, which no sorted window reproduces";
    return "";
  }

  void emit_rewrite(int begin, int end, const std::string& pattern,
                    const std::string& target, std::string blocked) {
    if (blocked.empty()) {
      if (options_.rewrites_enabled) return;  // would have fused
      emit("KQ-REWRITE", Severity::kInfo, begin, end,
           concat({"pattern `", pattern, "` matches the ", target,
                   " rewrite but the pass was disabled (--no-rewrite): the "
                   "stages run unfused at O(input) sort cost"}),
           "drop --no-rewrite to fuse into one O(N) window stage");
      return;
    }
    emit("KQ-REWRITE", Severity::kInfo, begin, end,
         concat({"pattern `", pattern, "` almost fused into a ", target,
                 " window stage, but ", blocked}),
         "adjust the stage so the precondition holds to get the O(N) "
         "fused form");
  }

  const compile::Plan& plan_;
  const std::vector<exec::ExecStage>& lowered_;
  Options options_;
  Report report_;
};

int count_severity(const Report& r, Severity s) {
  int n = 0;
  for (const Diagnostic& d : r.diagnostics)
    if (d.severity == s) ++n;
  return n;
}

void json_escape(const std::string& text, std::ostream& out) {
  for (char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          out << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          out << c;
        }
    }
  }
}

void write_string(const char* key, const std::string& value,
                  std::ostream& out) {
  out << '"' << key << "\": \"";
  json_escape(value, out);
  out << '"';
}

}  // namespace

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

int Report::errors() const { return count_severity(*this, Severity::kError); }
int Report::warnings() const {
  return count_severity(*this, Severity::kWarning);
}
int Report::infos() const { return count_severity(*this, Severity::kInfo); }

int Report::exit_code() const {
  if (errors() > 0) return 2;
  if (warnings() > 0) return 1;
  return 0;
}

const char* Report::status() const {
  if (errors() > 0) return "errors";
  if (warnings() > 0) return "warnings";
  return diagnostics.empty() ? "clean" : "info";
}

Report analyze(const compile::Plan& plan,
               const std::vector<exec::ExecStage>& lowered,
               const Options& options) {
  return Analyzer(plan, lowered, options).run();
}

std::string format_diagnostic(const Diagnostic& d) {
  std::string line = d.code;
  line += ' ';
  line += severity_name(d.severity);
  line += ": ";
  line += d.message;
  if (!d.hint.empty()) {
    line += " (fix: ";
    line += d.hint;
    line += ")";
  }
  return line;
}

void render_human(const Report& report, const std::string& pipeline,
                  std::ostream& out) {
  out << "kumquat check: " << pipeline << "\n";
  for (std::size_t i = 0; i < report.stages.size(); ++i) {
    const StageSummary& s = report.stages[i];
    out << "  [" << i << "] " << s.display << "\n      " << s.mode;
    if (s.mode == "sequential") out << " (" << s.seq_reason << ")";
    out << "  memory=" << s.memory_class << "  rss=" << s.rss_model << "\n";
  }
  if (report.diagnostics.empty()) {
    out << "diagnostics: none\n";
  } else {
    out << "diagnostics:\n";
    for (const Diagnostic& d : report.diagnostics) {
      out << "  [" << d.stage_begin;
      if (d.stage_end != d.stage_begin) out << "-" << d.stage_end;
      out << "] " << format_diagnostic(d) << "\n";
    }
  }
  out << "verdict: " << report.status() << " (" << report.errors()
      << " error(s), " << report.warnings() << " warning(s), "
      << report.infos() << " info)\n";
}

void write_json(const std::vector<PipelineReport>& reports,
                std::ostream& out) {
  int errors = 0, warnings = 0, infos = 0, stages = 0;
  for (const PipelineReport& p : reports) {
    errors += p.report.errors();
    warnings += p.report.warnings();
    infos += p.report.infos();
    stages += static_cast<int>(p.report.stages.size());
  }
  const char* status = errors > 0    ? "errors"
                       : warnings > 0 ? "warnings"
                       : infos > 0    ? "info"
                                      : "clean";
  out << "{\n  \"kumquat_check_version\": 1,\n  \"status\": \"" << status
      << "\",\n  \"exit_code\": " << exit_code(reports)
      << ",\n  \"summary\": {\"pipelines\": " << reports.size()
      << ", \"stages\": " << stages << ", \"errors\": " << errors
      << ", \"warnings\": " << warnings << ", \"infos\": " << infos
      << "},\n  \"pipelines\": [";
  for (std::size_t p = 0; p < reports.size(); ++p) {
    const PipelineReport& entry = reports[p];
    out << (p ? ",\n    {" : "\n    {");
    write_string("name", entry.name, out);
    out << ", ";
    write_string("pipeline", entry.pipeline, out);
    out << ", \"status\": \"" << entry.report.status()
        << "\",\n      \"stages\": [";
    for (std::size_t i = 0; i < entry.report.stages.size(); ++i) {
      const StageSummary& s = entry.report.stages[i];
      out << (i ? ",\n        {" : "\n        {") << "\"index\": " << i
          << ", ";
      write_string("display", s.display, out);
      out << ", ";
      write_string("mode", s.mode, out);
      out << ", ";
      write_string("seq_reason", s.seq_reason, out);
      out << ", ";
      write_string("memory_class", s.memory_class, out);
      out << ", ";
      write_string("rss_model", s.rss_model, out);
      out << "}";
    }
    out << (entry.report.stages.empty() ? "]" : "\n      ]");
    out << ",\n      \"diagnostics\": [";
    for (std::size_t i = 0; i < entry.report.diagnostics.size(); ++i) {
      const Diagnostic& d = entry.report.diagnostics[i];
      out << (i ? ",\n        {" : "\n        {");
      write_string("code", d.code, out);
      out << ", \"severity\": \"" << severity_name(d.severity)
          << "\", \"stage_begin\": " << d.stage_begin
          << ", \"stage_end\": " << d.stage_end << ", ";
      write_string("stage", d.stage, out);
      out << ", ";
      write_string("message", d.message, out);
      out << ", ";
      write_string("hint", d.hint, out);
      out << "}";
    }
    out << (entry.report.diagnostics.empty() ? "]" : "\n      ]");
    out << "\n    }";
  }
  out << (reports.empty() ? "]" : "\n  ]") << "\n}\n";
}

int exit_code(const std::vector<PipelineReport>& reports) {
  int worst = 0;
  for (const PipelineReport& p : reports)
    worst = std::max(worst, p.report.exit_code());
  return worst;
}

}  // namespace kq::check
