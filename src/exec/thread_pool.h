// A fixed-size worker pool with a FIFO task queue. Workers are joined in
// the destructor (RAII; no detached threads), and tasks communicate results
// through futures so worker exceptions surface at the call site.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace kq::exec {

class ThreadPool {
 public:
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int worker_count() const { return static_cast<int>(workers_.size()); }

  // Enqueues `fn`; the future delivers its result (or exception).
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace kq::exec
