// A fixed-size worker pool with a FIFO task queue. Workers are joined in
// the destructor (RAII; no detached threads), and tasks communicate results
// through futures so worker exceptions surface at the call site.
//
// Thread safety: the queue and the shutdown flag are GUARDED_BY(mu_)
// (sync::Mutex; checked by the clang-threadsafety CI job). mu_ is unranked:
// it is a leaf lock, released before any task body runs, so it can never
// participate in an ordering cycle with the dataflow's channel or tracer
// locks.
#pragma once

#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "stream/sync.h"

namespace kq::exec {

class ThreadPool {
 public:
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int worker_count() const { return static_cast<int>(workers_.size()); }

  // Work stealing: pops one queued task (if any) and runs it on the calling
  // thread. Returns false when the queue was empty. A dataflow node blocked
  // on its own segment's backlog (a feeder out of in-flight slots, a
  // collector waiting for the next chunk in input order) calls this instead
  // of sleeping, so an unlucky shard distribution can't leave pool workers
  // idle while a straggler serializes the combining tree. Safe from any
  // thread: tasks are self-contained closures and run outside mu_.
  bool try_run_one() EXCLUDES(mu_);

  // Enqueues `fn`; the future delivers its result (or exception).
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    {
      sync::MutexLock lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

 private:
  void worker_loop();

  sync::Mutex mu_;
  sync::CondVar cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  bool stopping_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace kq::exec
