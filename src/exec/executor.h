// The unified execution facade. One entry point — kq::Executor — replaces
// the historical sprawl of exec::run_serial / exec::run_pipeline /
// stream::run_streaming{,_fd,_string}: one options struct (ExecOptions,
// merging RunConfig and StreamConfig), one input shape (Source: a
// string_view, an istream, or a file descriptor), one result shape
// (ExecResult, unifying RunResult/StreamResult and mapping batch
// StageMetrics into stream NodeMetrics). The legacy free functions remain
// for one PR as the facade's implementation layer and as test oracles; new
// call sites go through the facade (CI's deprecation gate enforces it).
//
// Mode semantics:
//   kStream (default) — the dataflow runtime: record-aligned blocks,
//     bounded channels, fused stream chains, sharded parallel segments,
//     spill. Memory O(k · window + in-flight budget) regardless of input.
//   kBatch  — the paper's staged runner: input slurped whole, stage
//     barriers, k-way split + combine. Memory O(input).
//   kSerial — the reference: every stage whole-stream, no parallelism.
//
// Parallelism default: ExecOptions::parallelism == 0 derives
// default_parallelism() = min(max(1, std::thread::hardware_concurrency()),
// 16) — one worker per hardware thread, capped because the in-flight
// memory budget and combine fan-in grow with k while the paper's scaling
// (Table 5/6) flattens past 16. Both the CLI's --jobs/-k and every mode of
// the facade resolve the same default, closing the historical
// RunConfig=1 / StreamConfig=4 split.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "exec/runner.h"
#include "stream/dataflow.h"

namespace kq {

enum class ExecMode {
  kSerial,
  kBatch,
  kStream,
};

inline const char* exec_mode_name(ExecMode m) {
  switch (m) {
    case ExecMode::kSerial: return "serial";
    case ExecMode::kBatch: return "batch";
    case ExecMode::kStream: return "stream";
  }
  return "?";
}

// The hardware-derived parallelism used when ExecOptions::parallelism is 0.
int default_parallelism();

// One knob set for every mode. Streaming-only fields (block_size,
// max_inflight, spill_threshold, shard_slice, delimiter) are ignored by
// kBatch/kSerial; parallelism and use_elimination apply to both executors.
struct ExecOptions {
  ExecMode mode = ExecMode::kStream;
  // 0 = default_parallelism(). kSerial ignores it; kBatch and kStream
  // receive the identical resolved value.
  int parallelism = 0;
  bool use_elimination = true;
  std::size_t block_size = 1 << 20;
  std::size_t max_inflight = 0;      // 0 derives 2 · parallelism + 2
  char delimiter = '\n';
  std::size_t spill_threshold = 64 << 20;
  std::size_t shard_slice = 0;       // 0 derives 2 · block_size
  // Stream-mode I/O backend for the fd source and every spill file
  // (src/io/engine.h): kAuto resolves via KQ_IO_BACKEND and the kernel
  // probe; the CLI's --io-backend lands here. kBatch/kSerial slurp through
  // plain read(2) and ignore it.
  io::Backend io_backend = io::Backend::kAuto;
  // Deterministic fault-injection seam (tests only): scripted failpoints
  // every engine built for the run consults. Must outlive the run.
  io::FaultPlan* fault_plan = nullptr;
  bool stats = false;
  obs::Tracer* tracer = nullptr;
};

// Where the input bytes come from. Small value type: the referenced
// stream/buffer must outlive the run() call (the Executor never owns it).
class Source {
 public:
  Source(std::string_view bytes) : kind_(Kind::kString), bytes_(bytes) {}
  Source(const std::string& bytes)
      : kind_(Kind::kString), bytes_(bytes) {}
  Source(const char* bytes) : kind_(Kind::kString), bytes_(bytes) {}
  Source(std::istream& in) : kind_(Kind::kIstream), in_(&in) {}
  static Source from_fd(int fd) {
    Source s;
    s.kind_ = Kind::kFd;
    s.fd_ = fd;
    return s;
  }

 private:
  friend class Executor;
  enum class Kind { kString, kIstream, kFd };
  Source() = default;
  Kind kind_ = Kind::kString;
  std::string_view bytes_;
  std::istream* in_ = nullptr;
  int fd_ = -1;
};

// The one result shape. Stream runs fill the full telemetry; batch/serial
// runs map their StageMetrics into `nodes` (one entry per stage: command,
// combiner, chunks, bytes, elimination/fallback flags) and leave the
// stream-only gauges zero.
struct ExecResult {
  bool ok = true;
  std::string error;           // set when !ok
  std::string output;          // run_collect only (sink overloads leave it
                               // empty; batch/serial always collect)
  double seconds = 0;
  std::size_t peak_inflight_bytes = 0;  // stream: channel high-water mark
  std::size_t spilled_bytes = 0;        // stream: total spilled to disk
  std::size_t bytes_read = 0;           // stream: input bytes delivered
  // Resolved I/O backend a stream run used ("poll" or "uring"); empty for
  // batch/serial runs, which bypass the engine layer.
  std::string io_backend;
  bool stopped_early = false;      // the sink returned false (ok stays true)
  bool combine_undefined = false;  // !ok: a combiner bailed mid-fold
  bool batch_fallback = false;     // stream-over-string reran via batch
  std::vector<stream::NodeMetrics> nodes;
};

// The facade. Owns its worker pool (sized to the resolved parallelism,
// created lazily on first parallel use), so constructing one per
// configuration is cheap and running many pipelines through it amortizes
// thread startup.
class Executor {
 public:
  explicit Executor(ExecOptions options = {});
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  // The options with parallelism/max_inflight defaults resolved.
  const ExecOptions& options() const { return options_; }

  // Drains `input` through the pipeline into `sink` (streaming delivery;
  // batch/serial modes invoke the sink once with the whole output).
  ExecResult run(const std::vector<exec::ExecStage>& stages, Source input,
                 const stream::Sink& sink);

  // Same, writing to an ostream.
  ExecResult run(const std::vector<exec::ExecStage>& stages, Source input,
                 std::ostream& output);

  // Collects the output into ExecResult::output. For a string source in
  // stream mode this carries run_streaming_string's combine-fallback
  // semantics: a mid-stream undefined combine reruns through the batch
  // path (batch_fallback set) instead of failing.
  ExecResult run_collect(const std::vector<exec::ExecStage>& stages,
                         Source input);

 private:
  exec::ThreadPool& pool();
  ExecResult run_stream(const std::vector<exec::ExecStage>& stages,
                        Source input, const stream::Sink& sink,
                        std::string* collect);
  ExecResult run_whole(const std::vector<exec::ExecStage>& stages,
                       Source input);

  ExecOptions options_;
  std::unique_ptr<exec::ThreadPool> pool_;
};

}  // namespace kq
