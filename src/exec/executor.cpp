#include "exec/executor.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <istream>
#include <ostream>
#include <sstream>
#include <thread>

namespace kq {
namespace {

// Maps one batch/serial stage record into the unified node shape. The
// stream-only gauges stay zero; the batch-only combiner fields ride in the
// NodeMetrics extension block.
stream::NodeMetrics to_node(const exec::StageMetrics& s) {
  stream::NodeMetrics n;
  n.commands = s.command;
  n.combiner = s.combiner;
  n.parallel = s.parallel;
  n.chunks = s.chunks;
  n.in_bytes = s.in_bytes;
  n.out_bytes = s.out_bytes;
  n.seconds = s.seconds;
  n.combiner_eliminated = s.combiner_eliminated;
  n.combine_fallback = s.combine_fallback;
  return n;
}

ExecResult from_run_result(exec::RunResult&& r) {
  ExecResult out;
  out.output = std::move(r.output);
  out.seconds = r.seconds;
  out.nodes.reserve(r.stages.size());
  for (const exec::StageMetrics& s : r.stages) out.nodes.push_back(to_node(s));
  return out;
}

ExecResult from_stream_result(stream::StreamResult&& r) {
  ExecResult out;
  out.ok = r.ok;
  out.error = std::move(r.error);
  out.seconds = r.seconds;
  out.peak_inflight_bytes = r.peak_inflight_bytes;
  out.spilled_bytes = r.spilled_bytes;
  out.bytes_read = r.bytes_read;
  out.io_backend = std::move(r.io_backend);
  out.stopped_early = r.stopped_early;
  out.combine_undefined = r.combine_undefined;
  out.batch_fallback = r.batch_fallback;
  out.nodes = std::move(r.nodes);
  return out;
}

// Drains a file descriptor for the batch modes (which need the whole
// input). Returns false on a read error (errno preserved in `err`).
bool slurp_fd(int fd, std::string* out, int* err) {
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof buf);
    if (n > 0) {
      out->append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return true;
    if (errno == EINTR) continue;
    *err = errno;
    return false;
  }
}

}  // namespace

int default_parallelism() {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return static_cast<int>(std::min(hw, 16u));
}

Executor::Executor(ExecOptions options) : options_(options) {
  if (options_.parallelism <= 0) options_.parallelism = default_parallelism();
}

Executor::~Executor() = default;

exec::ThreadPool& Executor::pool() {
  if (!pool_) pool_ = std::make_unique<exec::ThreadPool>(options_.parallelism);
  return *pool_;
}

ExecResult Executor::run_whole(const std::vector<exec::ExecStage>& stages,
                               Source input) {
  // Batch and serial need the whole input resident (that is their memory
  // class); non-string sources are slurped here.
  std::string owned;
  std::string_view bytes;
  switch (input.kind_) {
    case Source::Kind::kString:
      bytes = input.bytes_;
      break;
    case Source::Kind::kIstream: {
      std::ostringstream ss;
      ss << input.in_->rdbuf();
      owned = std::move(ss).str();
      bytes = owned;
      break;
    }
    case Source::Kind::kFd: {
      int err = 0;
      if (!slurp_fd(input.fd_, &owned, &err)) {
        ExecResult failed;
        failed.ok = false;
        failed.error =
            "input read error (errno " + std::to_string(err) + ")";
        return failed;
      }
      bytes = owned;
      break;
    }
  }
  if (options_.mode == ExecMode::kSerial)
    return from_run_result(exec::run_serial(stages, bytes));
  exec::RunConfig config{options_.parallelism, options_.use_elimination};
  return from_run_result(exec::run_pipeline(stages, bytes, pool(), config));
}

ExecResult Executor::run_stream(const std::vector<exec::ExecStage>& stages,
                                Source input, const stream::Sink& sink,
                                std::string* collect) {
  stream::StreamConfig config;
  config.parallelism = options_.parallelism;
  config.block_size = options_.block_size;
  config.max_inflight = options_.max_inflight;
  config.use_elimination = options_.use_elimination;
  config.delimiter = options_.delimiter;
  config.spill_threshold = options_.spill_threshold;
  config.shard_slice = options_.shard_slice;
  config.io.backend = options_.io_backend;
  config.io.faults = options_.fault_plan;
  config.stats = options_.stats;
  config.tracer = options_.tracer;

  stream::Sink deliver = sink;
  if (collect) {
    deliver = [collect](std::string_view bytes) {
      collect->append(bytes);
      return true;
    };
  }

  switch (input.kind_) {
    case Source::Kind::kFd:
      return from_stream_result(stream::run_streaming_fd(
          stages, input.fd_, deliver, pool(), config));
    case Source::Kind::kIstream:
      return from_stream_result(
          stream::run_streaming(stages, *input.in_, deliver, pool(), config));
    case Source::Kind::kString: {
      // The string source keeps the original input at hand, so a mid-stream
      // undefined combine (the batch runner's combine-fallback guard) can
      // rerun through the batch path instead of failing — the semantics
      // run_streaming_string always had. Output is therefore buffered and
      // handed to the sink once at the end: a fallback after incremental
      // delivery would otherwise duplicate the already-delivered prefix.
      std::string buffered;
      std::string* target = collect ? collect : &buffered;
      std::istringstream in{std::string(input.bytes_)};
      stream::StreamResult r = stream::run_streaming(
          stages, in,
          [target](std::string_view bytes) {
            target->append(bytes);
            return true;
          },
          pool(), config);
      ExecResult out = from_stream_result(std::move(r));
      if (!out.ok && out.combine_undefined) {
        exec::RunConfig batch{options_.parallelism, options_.use_elimination};
        exec::RunResult rerun =
            exec::run_pipeline(stages, input.bytes_, pool(), batch);
        *target = std::move(rerun.output);
        out.ok = true;
        out.error.clear();
        out.batch_fallback = true;
      }
      if (out.ok && !collect && sink && !sink(buffered))
        out.stopped_early = true;
      return out;
    }
  }
  ExecResult unreachable;
  unreachable.ok = false;
  unreachable.error = "invalid source";
  return unreachable;
}

ExecResult Executor::run(const std::vector<exec::ExecStage>& stages,
                         Source input, const stream::Sink& sink) {
  if (options_.mode == ExecMode::kStream)
    return run_stream(stages, input, sink, nullptr);
  ExecResult result = run_whole(stages, input);
  if (result.ok && sink && !sink(result.output)) result.stopped_early = true;
  result.output.clear();
  return result;
}

ExecResult Executor::run(const std::vector<exec::ExecStage>& stages,
                         Source input, std::ostream& output) {
  return run(stages, input, [&output](std::string_view bytes) {
    output.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    return static_cast<bool>(output);
  });
}

ExecResult Executor::run_collect(const std::vector<exec::ExecStage>& stages,
                                 Source input) {
  if (options_.mode != ExecMode::kStream) return run_whole(stages, input);
  ExecResult result;
  std::string collected;
  result = run_stream(stages, input, nullptr, &collected);
  result.output = std::move(collected);
  return result;
}

}  // namespace kq
