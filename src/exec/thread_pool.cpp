#include "exec/thread_pool.h"

#include <algorithm>

namespace kq::exec {

ThreadPool::ThreadPool(int workers) {
  int n = std::max(1, workers);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace kq::exec
