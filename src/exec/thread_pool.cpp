#include "exec/thread_pool.h"

#include <algorithm>

namespace kq::exec {

ThreadPool::ThreadPool(int workers) {
  int n = std::max(1, workers);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    sync::MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool ThreadPool::try_run_one() {
  std::function<void()> task;
  {
    sync::MutexLock lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();  // outside the lock, like worker_loop
  return true;
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      sync::MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) cv_.wait(lock);
      if (queue_.empty()) return;  // stopping, and the backlog is drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // outside the lock: tasks may block or submit more work
  }
}

}  // namespace kq::exec
