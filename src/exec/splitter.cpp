#include "exec/splitter.h"

namespace kq::exec {

std::vector<std::string_view> split_stream(std::string_view input, int k) {
  if (k <= 1 || input.size() <= 1) return {input};
  std::vector<std::string_view> chunks;
  std::size_t target = input.size() / static_cast<std::size_t>(k);
  if (target == 0) target = 1;
  std::size_t start = 0;
  for (int i = 0; i < k - 1 && start < input.size(); ++i) {
    std::size_t want = start + target;
    if (want >= input.size()) break;
    // Advance to the next newline at or after the target point.
    std::size_t cut = input.find('\n', want);
    if (cut == std::string_view::npos) break;  // remainder is one chunk
    ++cut;  // keep the newline in the left chunk
    if (cut >= input.size()) break;
    chunks.push_back(input.substr(start, cut - start));
    start = cut;
  }
  chunks.push_back(input.substr(start));
  return chunks;
}

}  // namespace kq::exec
