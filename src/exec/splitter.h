// Input-stream splitting: divide a newline-terminated stream into up to k
// contiguous substreams of roughly equal byte size, cutting only at line
// boundaries so every substream is itself a stream (§2 "Model of
// Computation" requires x1, x2 to terminate with newlines).
#pragma once

#include <string_view>
#include <vector>

namespace kq::exec {

// Returns between 1 and k chunks covering `input` exactly. Fewer than k
// chunks are returned when the stream has fewer lines than k; chunks are
// never empty (except that a single empty input yields one empty chunk).
std::vector<std::string_view> split_stream(std::string_view input, int k);

}  // namespace kq::exec
