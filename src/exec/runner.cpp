#include "exec/runner.h"

#include <chrono>

#include "exec/parallel.h"

namespace kq::exec {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

RunResult run_pipeline(const std::vector<ExecStage>& stages,
                       std::string_view input, ThreadPool& pool,
                       const RunConfig& config) {
  RunResult result;
  auto total_start = Clock::now();

  // The in-flight data is either one combined stream or a set of
  // substreams left uncombined by an eliminated combiner.
  std::string current(input);
  std::vector<std::string> substreams;
  bool split_state = false;

  for (std::size_t s = 0; s < stages.size(); ++s) {
    const ExecStage& stage = stages[s];
    StageMetrics m;
    m.command = stage.command->display_name();
    m.combiner = stage.combiner_name;
    m.parallel = stage.parallel && config.parallelism > 1;
    auto stage_start = Clock::now();

    if (!m.parallel) {
      // Sequential stage. If substreams are pending, they came from an
      // eliminated concat combiner, so plain concatenation restores the
      // combined stream.
      if (split_state) {
        current.clear();
        for (const std::string& part : substreams) current += part;
        substreams.clear();
        split_state = false;
      }
      m.in_bytes = current.size();
      current = stage.command->run(current);
      m.out_bytes = current.size();
      m.chunks = 1;
    } else {
      std::vector<std::string_view> chunks;
      if (split_state) {
        chunks.reserve(substreams.size());
        for (const std::string& part : substreams) chunks.push_back(part);
      } else {
        chunks = split_stream(current, config.parallelism);
      }
      m.in_bytes = 0;
      for (std::string_view c : chunks) m.in_bytes += c.size();
      m.chunks = static_cast<int>(chunks.size());

      std::vector<std::string> outputs =
          map_chunks(*stage.command, chunks, pool);

      bool can_eliminate = config.use_elimination &&
                           stage.eliminate_combiner && s + 1 < stages.size() &&
                           stages[s + 1].parallel && config.parallelism > 1;
      if (can_eliminate) {
        m.combiner_eliminated = true;
        m.out_bytes = 0;
        for (const std::string& o : outputs) m.out_bytes += o.size();
        substreams = std::move(outputs);
        split_state = true;
        current.clear();
      } else {
        std::optional<std::string> combined;
        if (stage.combine) combined = stage.combine(outputs);
        if (!combined) {
          // Correctness guard: if k-way combination is undefined on these
          // outputs, fall back to running the stage serially.
          m.combine_fallback = true;
          std::string joined;
          for (std::string_view c : chunks) joined.append(c);
          combined = stage.command->run(joined);
        }
        substreams.clear();
        split_state = false;
        current = std::move(*combined);
        m.out_bytes = current.size();
      }
    }
    m.seconds = seconds_since(stage_start);
    result.stages.push_back(std::move(m));
  }

  if (split_state) {
    // Pipeline ended while substreams were pending (the planner avoids
    // this, but a trailing eliminated stage still needs its concat).
    current.clear();
    for (const std::string& part : substreams) current += part;
  }
  result.output = std::move(current);
  result.seconds = seconds_since(total_start);
  return result;
}

RunResult run_serial(const std::vector<ExecStage>& stages,
                     std::string_view input) {
  RunResult result;
  auto total_start = Clock::now();
  std::string current(input);
  for (const ExecStage& stage : stages) {
    StageMetrics m;
    m.command = stage.command->display_name();
    m.in_bytes = current.size();
    auto stage_start = Clock::now();
    current = stage.command->run(current);
    m.seconds = seconds_since(stage_start);
    m.out_bytes = current.size();
    result.stages.push_back(std::move(m));
  }
  result.output = std::move(current);
  result.seconds = seconds_since(total_start);
  return result;
}

}  // namespace kq::exec
