#include "exec/parallel.h"

#include <memory>

// Thread safety: no locks here by design. Each worker owns its chunk's
// string exclusively; `chain` and `chunks` are read-only for the duration
// of the call; and all cross-thread publication happens through
// ThreadPool::submit / future::get, whose synchronization orders the
// worker's writes before the caller's reads. Commands run through this
// path must be const-callable from multiple threads (cmd::Command::run is
// const and stateless; commands that dereference file names go through
// vfs::Vfs, which locks). run_slice_fused builds fresh processors per call,
// so processor state never crosses slices or threads.

namespace kq::exec {
namespace {

// Cuts `data` into record-aligned pieces of roughly `step` bytes (records
// longer than a step travel whole) and hands each to `fn`; stops early when
// `fn` returns false. Same cut rule as the runtime's emit_blocks.
template <typename Fn>
void for_each_step(std::string_view data, std::size_t step, char delimiter,
                   Fn&& fn) {
  while (data.size() > step) {
    std::size_t cut = data.rfind(delimiter, step - 1);
    if (cut == std::string_view::npos) {
      cut = data.find(delimiter, step);
      if (cut == std::string_view::npos) break;
    }
    if (!fn(data.substr(0, cut + 1))) return;
    data.remove_prefix(cut + 1);
  }
  if (!data.empty()) fn(data);
}

bool cascadable(const cmd::Command& c) {
  const cmd::Streamability s = c.streamability();
  return s == cmd::Streamability::kPerRecord ||
         s == cmd::Streamability::kPrefix;
}

}  // namespace

std::vector<std::string> map_chunks(const cmd::Command& command,
                                    const std::vector<std::string_view>& chunks,
                                    ThreadPool& pool) {
  std::vector<const cmd::Command*> chain = {&command};
  return map_chunks_chain(chain, chunks, pool);
}

std::vector<std::string> map_chunks_chain(
    const std::vector<const cmd::Command*>& chain,
    const std::vector<std::string_view>& chunks, ThreadPool& pool) {
  // Thin client of the fused slice executor: one pool task per chunk, each
  // running the whole chain over its contiguous slice. The 64 KiB step
  // keeps per-stage intermediates cache-resident without changing output.
  constexpr std::size_t kBatchStep = 64 << 10;
  std::vector<std::future<std::string>> futures;
  futures.reserve(chunks.size());
  for (std::string_view chunk : chunks) {
    futures.push_back(pool.submit(
        [&chain, chunk] { return run_slice_fused(chain, chunk, kBatchStep); }));
  }
  std::vector<std::string> outputs;
  outputs.reserve(futures.size());
  for (auto& f : futures) outputs.push_back(f.get());
  return outputs;
}

std::string run_slice_fused(const std::vector<const cmd::Command*>& chain,
                            std::string_view slice, std::size_t step,
                            char delimiter) {
  if (step == 0) step = 1;
  std::string owned;
  std::string_view cur = slice;
  const std::size_t n = chain.size();
  if (n == 0) return std::string(slice);
  std::size_t i = 0;
  while (i < n) {
    // Streamability speaks about '\n'-delimited records; under a custom
    // delimiter every stage runs whole (same rule as the runtime).
    if (delimiter != '\n' ||
        chain[i]->streamability() == cmd::Streamability::kNone) {
      owned = chain[i]->run(cur);
      cur = owned;
      ++i;
      continue;
    }

    // Collect the maximal cascade run: per-record/prefix processors,
    // optionally terminated by one window stage.
    std::vector<std::unique_ptr<cmd::StreamProcessor>> procs;
    std::size_t j = i;
    while (j < n && cascadable(*chain[j])) {
      auto p = chain[j]->stream_processor();
      if (!p) break;  // contract violation; fall back to run() below
      procs.push_back(std::move(p));
      ++j;
    }
    std::unique_ptr<cmd::WindowProcessor> window;
    if (j < n && chain[j]->streamability() == cmd::Streamability::kWindow) {
      window = chain[j]->window_processor();
      if (window) ++j;
    }
    if (j == i) {  // declared streamable but no processor: run whole
      owned = chain[i]->run(cur);
      cur = owned;
      ++i;
      continue;
    }

    const std::size_t m = procs.size();
    std::string out;
    std::vector<std::string> bufs(m);   // intermediates, reused per step
    std::vector<bool> done(m, false);   // output complete (kPrefix bound)
    auto feed = [&](std::string_view data, std::size_t from) {
      std::string_view c = data;
      for (std::size_t p = from; p < m; ++p) {
        if (done[p]) return;  // complete: the rest of the run saw all
        bufs[p].clear();
        if (!procs[p]->process(c, &bufs[p])) done[p] = true;
        c = bufs[p];
      }
      if (window) {
        if (!c.empty()) window->push(c, &out);
      } else {
        out.append(c);
      }
    };
    auto input_done = [&] {
      for (std::size_t p = 0; p < m; ++p)
        if (done[p]) return true;
      return false;
    };
    for_each_step(cur, step, delimiter, [&](std::string_view piece) {
      feed(piece, 0);
      return !input_done();
    });
    // End-of-slice flush, mirroring run_stream_chain: each still-open
    // processor's tail cascades through the rest of the run; stages before
    // a completed one are skipped.
    std::size_t first = 0;
    while (first < m && !done[first]) ++first;
    std::string tail;
    for (std::size_t p = (first < m ? first + 1 : 0); p < m; ++p) {
      if (done[p]) continue;
      tail.clear();
      procs[p]->finish(&tail);
      if (!tail.empty()) feed(tail, p + 1);
    }
    if (window) {
      window->finish([&](std::string_view piece) {
        out.append(piece);
        return true;
      });
    }
    owned = std::move(out);
    cur = owned;
    i = j;
  }
  if (cur.data() == slice.data() && cur.size() == slice.size())
    return std::string(slice);
  return owned;
}

}  // namespace kq::exec
