#include "exec/parallel.h"

// Thread safety: no locks here by design. Each worker owns its chunk's
// string exclusively; `chain` and `chunks` are read-only for the duration
// of the call; and all cross-thread publication happens through
// ThreadPool::submit / future::get, whose synchronization orders the
// worker's writes before the caller's reads. Commands run through this
// path must be const-callable from multiple threads (cmd::Command::run is
// const and stateless; commands that dereference file names go through
// vfs::Vfs, which locks).

namespace kq::exec {

std::vector<std::string> map_chunks(const cmd::Command& command,
                                    const std::vector<std::string_view>& chunks,
                                    ThreadPool& pool) {
  std::vector<const cmd::Command*> chain = {&command};
  return map_chunks_chain(chain, chunks, pool);
}

std::vector<std::string> map_chunks_chain(
    const std::vector<const cmd::Command*>& chain,
    const std::vector<std::string_view>& chunks, ThreadPool& pool) {
  std::vector<std::future<std::string>> futures;
  futures.reserve(chunks.size());
  for (std::string_view chunk : chunks) {
    futures.push_back(pool.submit([&chain, chunk] {
      std::string current(chunk);
      for (const cmd::Command* c : chain) current = c->run(current);
      return current;
    }));
  }
  std::vector<std::string> outputs;
  outputs.reserve(futures.size());
  for (auto& f : futures) outputs.push_back(f.get());
  return outputs;
}

}  // namespace kq::exec
