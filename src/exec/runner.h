// The staged pipeline runner. Mirrors the paper's evaluation infrastructure
// (§4): every stage executes to completion before the next starts, each
// parallelizable stage fans out to `parallelism` instances of the original
// command, and (in optimized mode) stages whose combiner was eliminated
// stream their output substreams directly into the next parallel stage.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "exec/splitter.h"
#include "exec/thread_pool.h"
#include "unixcmd/command.h"

namespace kq::cmd {
class SortSpec;  // fwd: comparator carried for external-merge spilling
}

namespace kq::exec {

// A k-way combiner as seen by the runtime (bound by the compiler from the
// synthesized CompositeCombiner; the runtime itself is combiner-agnostic).
using KWayCombine =
    std::function<std::optional<std::string>(const std::vector<std::string>&)>;

// How much of its input a stage must hold at once — drives the streaming
// runtime's node choice (src/stream/dataflow.cpp) and when it may spill.
// Each enumerator documents its tier's contract: what bounds the resident
// state, and what the executor may assume about record alignment and
// end-of-input semantics. Assigned by compile::lower_plan; the executor
// re-checks at runtime (a plan-parallel stage forced sequential at k=1
// falls back to its declared sequential tier). Prose walkthrough:
// docs/ARCHITECTURE.md.
enum class MemoryClass {
  // Bounded by construction: chunk outputs stream through (concat
  // emission) or fold into an accumulator of output size.
  kStreaming,
  // Order-insensitive under a sort comparator: bounded runs can spill to
  // disk sorted and re-stream through an external k-way merge
  // (stream/spill.*) — a sequential `sort` stage, or a parallel stage
  // whose combiner is a k-way merge.
  kSortableSpill,
  // Must see the whole input (or all partial outputs) at once: unknown
  // commands, rerun combiners. Accumulation can still spool through disk,
  // but the single whole-stream execution materializes once.
  kMaterialize,
  // Declared streamable (cmd::Streamability): the command runs per
  // record-aligned block through a StreamProcessor, holding O(block) at a
  // time. Adjacent such stages fuse into one chain node, and a
  // prefix-bounded command (head) cancels its upstream once satisfied.
  // Assigned to sequential per-record stages and to every prefix-bounded
  // stage (where early exit beats data parallelism).
  kStatelessStream,
  // Declared window-bounded (cmd::Streamability::kWindow): the command
  // needs the whole input but holds only a bounded window of state — tail
  // -n N its ring of N records, uniq its current run, wc its counters,
  // sort -u its distinct set, a fused top-n/top-k rewrite stage its N
  // records under the sort comparator — absorbed per block through a
  // cmd::WindowProcessor and flushed at end of input via finish(). Runs as
  // the *terminal* stage of a fused stream chain (finish() reorders
  // emission, so nothing fuses after it); a window that outgrows the spill
  // threshold and declares drain_sorted_run (sort -u, top-n) exports
  // sorted runs to disk (sort_spec carries the comparator) and re-streams
  // the external merge, capped at the window's output_limit(). Assigned to
  // sequential kWindow stages.
  kWindowStream,
};

// Human-readable memory-class names for plan reports and diagnostics.
inline const char* memory_class_name(MemoryClass m) {
  switch (m) {
    case MemoryClass::kStreaming: return "streaming";
    case MemoryClass::kSortableSpill: return "sortable-spill";
    case MemoryClass::kMaterialize: return "materialize";
    case MemoryClass::kStatelessStream: return "stateless-stream";
    case MemoryClass::kWindowStream: return "window-stream";
  }
  return "?";
}

struct ExecStage {
  cmd::CommandPtr command;
  KWayCombine combine;             // null for sequential stages
  bool parallel = false;           // data-parallel execution planned
  bool eliminate_combiner = false; // Theorem 5 optimization applies
  // Plain concat is plausible and outputs are newline-terminated streams:
  // the streaming runtime may emit chunk outputs downstream in input order
  // instead of materializing the combined stream (Theorem 5's precondition,
  // usable even where batch elimination does not apply).
  bool concat_combiner = false;
  // Every plausible combiner is merge or rerun: incremental pairwise folding
  // buys nothing (the partial outputs must be held whole anyway), so the
  // streaming runtime defers to one k-way combine at end of stream.
  bool defer_combine = false;
  // The primary combiner is a rerun (§3.4): k-way combining concatenates
  // the partial outputs and reruns the command once, so deferred parts can
  // spool through disk instead of accumulating in memory.
  bool rerun_combiner = false;
  // Set by compile::lower_plan. For kSortableSpill, `sort_spec` carries the
  // comparator: the synthesized merge combiner's spec when the stage is
  // parallel (it orders the chunk outputs being combined), the sort
  // command's own spec when sequential (it defines the stage itself).
  MemoryClass memory_class = MemoryClass::kMaterialize;
  std::shared_ptr<const cmd::SortSpec> sort_spec;
  // Set by compile::lower_plan: this parallel stage can run as a per-shard
  // stream sub-chain — it has a combiner and its command executes through a
  // cmd::StreamProcessor (kPerRecord) or cmd::WindowProcessor (kWindow), so
  // a shard worker holds O(block + window) instead of O(slice output) per
  // hop. The streaming runtime shards a parallel segment when every fused
  // member is shardable (and every non-terminal member is per-record);
  // check's KQ-MEM model reads the same bit. Prefix-bounded stages (head)
  // stay unshardable by design: their early exit beats data parallelism.
  bool shardable = false;
  std::string combiner_name;       // for reports
};

struct StageMetrics {
  std::string command;
  std::string combiner;
  double seconds = 0;
  std::size_t in_bytes = 0;
  std::size_t out_bytes = 0;
  int chunks = 1;                 // substreams actually processed
  bool parallel = false;
  bool combiner_eliminated = false;
  bool combine_fallback = false;  // combiner failed; reran serially
};

struct RunConfig {
  int parallelism = 1;
  bool use_elimination = true;  // false = the paper's "unoptimized" mode
};

struct RunResult {
  std::string output;
  double seconds = 0;
  std::vector<StageMetrics> stages;
};

// DEPRECATED entry points: new call sites should go through kq::Executor
// (exec/executor.h; modes kBatch and kSerial). They remain for one PR as
// the facade's implementation layer and as the crossval oracle (tests
// compare every runtime against run_serial); CI's deprecation gate rejects
// new uses in src/ and bench/ outside the wrapper TUs.
RunResult run_pipeline(const std::vector<ExecStage>& stages,
                       std::string_view input, ThreadPool& pool,
                       const RunConfig& config);

// Serial reference execution (every stage whole-stream, no parallelism).
RunResult run_serial(const std::vector<ExecStage>& stages,
                     std::string_view input);

}  // namespace kq::exec
