// Data-parallel primitives: map a command (or a fused chain of commands)
// over input chunks on the thread pool.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "exec/thread_pool.h"
#include "unixcmd/command.h"

namespace kq::exec {

// Runs `command` on every chunk concurrently; returns outputs in order.
std::vector<std::string> map_chunks(const cmd::Command& command,
                                    const std::vector<std::string_view>& chunks,
                                    ThreadPool& pool);

// Runs a chain of commands (stage fusion after combiner elimination) on
// every chunk: chunk -> cmd[0] -> cmd[1] -> ... -> output.
std::vector<std::string> map_chunks_chain(
    const std::vector<const cmd::Command*>& chain,
    const std::vector<std::string_view>& chunks, ThreadPool& pool);

// Runs a fused chain over one contiguous record-aligned slice the way a
// stream-chain node would: maximal runs of declared-streamable stages
// cascade block by block through their cmd::StreamProcessors (a window
// stage absorbs the run's output through its cmd::WindowProcessor and
// terminates the run), so per-stage intermediates stay O(step) instead of
// O(slice); black-box stages break the cascade and run whole on the
// materialized intermediate. `step` is the cascade's internal block size
// (records longer than a step travel whole). Byte-identical to chaining
// Command::run by the streamability contract — this is the single slice
// executor behind both the batch mapper and the sharded streaming workers.
std::string run_slice_fused(const std::vector<const cmd::Command*>& chain,
                            std::string_view slice, std::size_t step,
                            char delimiter = '\n');

}  // namespace kq::exec
