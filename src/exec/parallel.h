// Data-parallel primitives: map a command (or a fused chain of commands)
// over input chunks on the thread pool.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "exec/thread_pool.h"
#include "unixcmd/command.h"

namespace kq::exec {

// Runs `command` on every chunk concurrently; returns outputs in order.
std::vector<std::string> map_chunks(const cmd::Command& command,
                                    const std::vector<std::string_view>& chunks,
                                    ThreadPool& pool);

// Runs a chain of commands (stage fusion after combiner elimination) on
// every chunk: chunk -> cmd[0] -> cmd[1] -> ... -> output.
std::vector<std::string> map_chunks_chain(
    const std::vector<const cmd::Command*>& chain,
    const std::vector<std::string_view>& chunks, ThreadPool& pool);

}  // namespace kq::exec
