#include <cctype>
#include <string>

#include "regex/node.h"
#include "regex/regex.h"

namespace kq::regex {
namespace detail {
namespace {

class Parser {
 public:
  Parser(std::string_view pattern, std::string* error)
      : p_(pattern), error_(error) {}

  // pattern := branch ('\|' branch)*
  NodePtr parse_pattern(bool inside_group) {
    auto alt = std::make_shared<Node>();
    alt->kind = Kind::kAlt;
    alt->children.push_back(parse_branch(inside_group));
    if (failed_) return nullptr;
    while (peek_escaped('|')) {
      advance(2);
      alt->children.push_back(parse_branch(inside_group));
      if (failed_) return nullptr;
    }
    return alt;
  }

  int group_count() const { return group_count_; }
  bool at_end() const { return pos_ >= p_.size(); }
  bool failed() const { return failed_; }
  std::size_t pos() const { return pos_; }

 private:
  NodePtr parse_branch(bool inside_group) {
    auto seq = std::make_shared<Node>();
    seq->kind = Kind::kSeq;
    bool at_branch_start = true;
    while (!at_end()) {
      if (peek_escaped('|')) break;
      if (inside_group && peek_escaped(')')) break;
      NodePtr atom = parse_piece(at_branch_start, inside_group);
      if (failed_) return nullptr;
      if (atom) seq->children.push_back(std::move(atom));
      at_branch_start = false;
    }
    return seq;
  }

  // piece := atom ('*' | '\+' | '\?')*
  NodePtr parse_piece(bool at_branch_start, bool inside_group) {
    NodePtr atom = parse_atom(at_branch_start, inside_group);
    if (failed_ || !atom) return atom;
    while (!at_end()) {
      if (cur() == '*') {
        advance(1);
        atom = make_repeat(std::move(atom), 0, -1);
      } else if (peek_escaped('+')) {
        advance(2);
        atom = make_repeat(std::move(atom), 1, -1);
      } else if (peek_escaped('?')) {
        advance(2);
        atom = make_repeat(std::move(atom), 0, 1);
      } else {
        break;
      }
    }
    return atom;
  }

  NodePtr parse_atom(bool at_branch_start, bool inside_group) {
    char c = cur();
    if (c == '^') {
      advance(1);
      if (at_branch_start) return make_simple(Kind::kBolAnchor);
      return make_literal('^');
    }
    if (c == '$') {
      // Anchor only when nothing but a branch/group terminator follows.
      std::size_t next = pos_ + 1;
      bool terminal = next >= p_.size() ||
                      (p_[next] == '\\' && next + 1 < p_.size() &&
                       (p_[next + 1] == '|' ||
                        (inside_group && p_[next + 1] == ')')));
      advance(1);
      if (terminal) return make_simple(Kind::kEolAnchor);
      return make_literal('$');
    }
    if (c == '.') {
      advance(1);
      return make_simple(Kind::kAny);
    }
    if (c == '[') return parse_class();
    if (c == '\\') {
      if (pos_ + 1 >= p_.size()) return fail("trailing backslash");
      char e = p_[pos_ + 1];
      if (e == '(') {
        advance(2);
        int idx = ++group_count_;
        auto grp = std::make_shared<Node>();
        grp->kind = Kind::kGroup;
        grp->index = idx;
        grp->children.push_back(parse_pattern(/*inside_group=*/true));
        if (failed_) return nullptr;
        if (!peek_escaped(')')) return fail("unmatched \\(");
        advance(2);
        return grp;
      }
      if (e == ')') return fail("unmatched \\)");
      if (e >= '1' && e <= '9') {
        advance(2);
        auto n = std::make_shared<Node>();
        n->kind = Kind::kBackref;
        n->index = e - '0';
        return n;
      }
      if (e == 'n') {
        advance(2);
        return make_literal('\n');
      }
      if (e == 't') {
        advance(2);
        return make_literal('\t');
      }
      advance(2);
      return make_literal(e);  // escaped literal: \. \* \\ \$ \^ \[ ...
    }
    // '*' at branch start is a literal in BRE.
    advance(1);
    (void)at_branch_start;
    return make_literal(c);
  }

  NodePtr parse_class() {
    advance(1);  // consume '['
    auto n = std::make_shared<Node>();
    n->kind = Kind::kClass;
    bool negate = false;
    if (!at_end() && cur() == '^') {
      negate = true;
      advance(1);
    }
    bool first = true;
    while (true) {
      if (at_end()) return fail("unterminated bracket expression");
      char c = cur();
      if (c == ']' && !first) {
        advance(1);
        break;
      }
      first = false;
      if (c == '[' && pos_ + 1 < p_.size() && p_[pos_ + 1] == ':') {
        if (!parse_named_class(*n)) return nullptr;
        continue;
      }
      if (c == '\\' && pos_ + 1 < p_.size()) {
        // GNU tolerates escapes inside classes; we accept \n \t \\ \].
        char e = p_[pos_ + 1];
        char lit = e == 'n' ? '\n' : e == 't' ? '\t' : e;
        n->cls.set(static_cast<unsigned char>(lit));
        advance(2);
        continue;
      }
      // Range a-z (the '-' must not be last).
      if (pos_ + 2 < p_.size() && p_[pos_ + 1] == '-' && p_[pos_ + 2] != ']') {
        char lo = c, hi = p_[pos_ + 2];
        if (lo > hi) return fail("invalid range in bracket expression");
        for (int ch = lo; ch <= hi; ++ch)
          n->cls.set(static_cast<unsigned char>(ch));
        advance(3);
        continue;
      }
      n->cls.set(static_cast<unsigned char>(c));
      advance(1);
    }
    if (negate) {
      n->cls.flip();
      n->cls.reset(static_cast<unsigned char>('\n'));
    }
    return n;
  }

  bool parse_named_class(Node& n) {
    std::size_t close = p_.find(":]", pos_ + 2);
    if (close == std::string_view::npos) {
      fail("unterminated character class");
      return false;
    }
    std::string_view name = p_.substr(pos_ + 2, close - pos_ - 2);
    for (int c = 0; c < 256; ++c) {
      unsigned char uc = static_cast<unsigned char>(c);
      bool in = false;
      if (name == "alpha") in = std::isalpha(uc);
      else if (name == "digit") in = std::isdigit(uc);
      else if (name == "alnum") in = std::isalnum(uc);
      else if (name == "upper") in = std::isupper(uc);
      else if (name == "lower") in = std::islower(uc);
      else if (name == "punct") in = std::ispunct(uc);
      else if (name == "space") in = std::isspace(uc);
      else if (name == "blank") in = (c == ' ' || c == '\t');
      else {
        fail("unknown character class");
        return false;
      }
      if (in) n.cls.set(uc);
    }
    pos_ = close + 2;
    return true;
  }

  NodePtr make_repeat(NodePtr child, int min_rep, int max_rep) {
    auto n = std::make_shared<Node>();
    n->kind = Kind::kStar;
    n->min_repeat = min_rep;
    n->max_repeat = max_rep;
    n->children.push_back(std::move(child));
    return n;
  }

  NodePtr make_literal(char c) {
    auto n = std::make_shared<Node>();
    n->kind = Kind::kLiteral;
    n->ch = c;
    return n;
  }

  NodePtr make_simple(Kind k) {
    auto n = std::make_shared<Node>();
    n->kind = k;
    return n;
  }

  NodePtr fail(const char* msg) {
    failed_ = true;
    if (error_) *error_ = msg;
    return nullptr;
  }

  char cur() const { return p_[pos_]; }
  void advance(std::size_t n) { pos_ += n; }
  bool peek_escaped(char c) const {
    return pos_ + 1 < p_.size() && p_[pos_] == '\\' && p_[pos_ + 1] == c;
  }

  std::string_view p_;
  std::size_t pos_ = 0;
  int group_count_ = 0;
  bool failed_ = false;
  std::string* error_;
};

}  // namespace
}  // namespace detail

Regex::Regex() = default;
Regex::Regex(Regex&&) noexcept = default;
Regex& Regex::operator=(Regex&&) noexcept = default;
Regex::~Regex() = default;

std::optional<Regex> Regex::compile(std::string_view pattern,
                                    std::string* error) {
  detail::Parser parser(pattern, error);
  auto root = parser.parse_pattern(/*inside_group=*/false);
  if (parser.failed() || !root) return std::nullopt;
  if (!parser.at_end()) {
    if (error) *error = "unexpected token in pattern";
    return std::nullopt;
  }
  Regex re;
  re.pattern_ = std::string(pattern);
  re.root_ = std::move(root);
  re.group_count_ = parser.group_count();
  return re;
}

}  // namespace kq::regex
