// A small backtracking regular-expression engine for the POSIX BRE subset
// used by the paper's benchmark commands (`grep`, `sed s///`) plus the GNU
// extensions \+ \? \|.
//
// Supported syntax:
//   c          literal character
//   .          any character except newline
//   [abc]      bracket expression; ranges a-z; negation [^...];
//              character classes [:alpha:] [:digit:] [:punct:] [:space:]
//              [:upper:] [:lower:] [:alnum:]
//   *          zero or more of the previous atom (literal at branch start)
//   \+  \?     one-or-more / zero-or-one (GNU extensions)
//   \(..\)     capture group (up to 9)
//   \1..\9     backreference
//   \|         alternation (GNU extension)
//   ^  $       anchors at branch start / end (literal elsewhere)
//   \c         escaped literal
//
// Matching is greedy backtracking (leftmost match, greedy quantifiers);
// this agrees with GNU grep/sed on every pattern in the benchmark suite and
// is documented as the engine's semantics.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace kq::regex {

namespace detail {
struct Node;
}

// A successful match: [begin,end) of the whole match plus capture groups.
struct Match {
  std::size_t begin = 0;
  std::size_t end = 0;
  // groups[i] is the i-th capture (1-based like \1); npos pair if unset.
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
  std::array<std::pair<std::size_t, std::size_t>, 10> groups{};
  int group_count = 0;

  std::string_view group(std::string_view text, int i) const {
    auto [b, e] = groups[static_cast<std::size_t>(i)];
    if (b == kNpos) return {};
    return text.substr(b, e - b);
  }
};

class Regex {
 public:
  Regex(Regex&&) noexcept;
  Regex& operator=(Regex&&) noexcept;
  ~Regex();

  // Compiles `pattern`; returns nullopt and sets *error on syntax errors.
  static std::optional<Regex> compile(std::string_view pattern,
                                      std::string* error = nullptr);

  // True iff the pattern matches anywhere in `line` (grep semantics; `line`
  // must not contain the trailing newline).
  bool search(std::string_view line) const;

  // Leftmost match starting at or after `from`, or nullopt.
  std::optional<Match> find(std::string_view line, std::size_t from = 0) const;

  // sed `s///` semantics: replaces the first (or, with `global`, every
  // non-overlapping) match with `replacement`, where `\1`..`\9` and `&`
  // refer to captures / the whole match. Sets *replaced if any change.
  std::string replace(std::string_view line, std::string_view replacement,
                      bool global = false, bool* replaced = nullptr) const;

  // Generates up to `count` distinct strings matching the pattern, for the
  // preprocessing dictionary (§3.2 "Preprocessing"). Backreference-free
  // parts are sampled structurally; stars sample 0..3 repetitions.
  std::vector<std::string> sample_matches(std::size_t count,
                                          std::uint64_t seed) const;

  const std::string& pattern() const { return pattern_; }
  int group_count() const { return group_count_; }

 private:
  Regex();
  std::string pattern_;
  std::shared_ptr<detail::Node> root_;  // alternation of branches
  int group_count_ = 0;
  friend struct detail::Node;
};

}  // namespace kq::regex
