// Internal AST for the BRE engine. Shared by parser.cpp, matcher.cpp, and
// generator.cpp; not part of the public API.
#pragma once

#include <bitset>
#include <memory>
#include <vector>

namespace kq::regex::detail {

enum class Kind {
  kLiteral,   // ch
  kAny,       // .
  kClass,     // cls bitset (negation folded in)
  kStar,      // children[0]*   (min_repeat 0 or 1, opt => max 1)
  kGroup,     // \( children[0] \), index = capture number
  kBackref,   // \index
  kAlt,       // children = branches
  kSeq,       // children in order
  kBolAnchor, // ^
  kEolAnchor, // $
};

struct Node {
  Kind kind;
  char ch = 0;
  std::bitset<256> cls;
  int index = 0;        // group / backref number
  int min_repeat = 0;   // for kStar: 0 => '*'/'\?', 1 => '\+'
  int max_repeat = -1;  // for kStar: -1 unbounded, 1 => '\?'
  std::vector<std::shared_ptr<Node>> children;
};

using NodePtr = std::shared_ptr<Node>;

}  // namespace kq::regex::detail
