// Sample-string generation: given a compiled pattern, produce strings that
// match it. Used by preprocessing (§3.2) to build input dictionaries for
// commands like `grep 'light.\*light'` that output nothing unless the input
// contains matching lines.

#include <algorithm>
#include <random>
#include <set>

#include "regex/node.h"
#include "regex/regex.h"

namespace kq::regex {
namespace detail {
namespace {

constexpr std::string_view kFriendlyAlphabet =
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";

class Sampler {
 public:
  explicit Sampler(std::uint64_t seed) : rng_(seed) {}

  std::string generate(const Node& n) {
    std::string out;
    gen(n, out);
    return out;
  }

 private:
  void gen(const Node& n, std::string& out) {
    switch (n.kind) {
      case Kind::kLiteral:
        out.push_back(n.ch);
        break;
      case Kind::kAny:
        out.push_back(pick_friendly());
        break;
      case Kind::kClass:
        out.push_back(pick_from_class(n.cls));
        break;
      case Kind::kBolAnchor:
      case Kind::kEolAnchor:
        break;
      case Kind::kSeq:
        for (const auto& c : n.children) gen(*c, out);
        break;
      case Kind::kAlt: {
        std::uniform_int_distribution<std::size_t> d(0, n.children.size() - 1);
        gen(*n.children[d(rng_)], out);
        break;
      }
      case Kind::kGroup: {
        std::string sub;
        gen(*n.children[0], sub);
        group_values_[static_cast<std::size_t>(n.index)] = sub;
        out.append(sub);
        break;
      }
      case Kind::kBackref:
        out.append(group_values_[static_cast<std::size_t>(n.index)]);
        break;
      case Kind::kStar: {
        int lo = n.min_repeat;
        int hi = n.max_repeat < 0 ? std::max(3, lo) : n.max_repeat;
        std::uniform_int_distribution<int> d(lo, hi);
        int reps = d(rng_);
        for (int i = 0; i < reps; ++i) gen(*n.children[0], out);
        break;
      }
    }
  }

  char pick_friendly() {
    std::uniform_int_distribution<std::size_t> d(0,
                                                 kFriendlyAlphabet.size() - 1);
    return kFriendlyAlphabet[d(rng_)];
  }

  char pick_from_class(const std::bitset<256>& cls) {
    // Prefer printable friendly characters so generated lines survive
    // text-oriented commands; fall back to any member of the class.
    std::vector<char> friendly, any;
    for (int c = 1; c < 256; ++c) {
      if (!cls[static_cast<std::size_t>(c)]) continue;
      char ch = static_cast<char>(c);
      any.push_back(ch);
      if (kFriendlyAlphabet.find(ch) != std::string_view::npos)
        friendly.push_back(ch);
    }
    const auto& pool = friendly.empty() ? any : friendly;
    if (pool.empty()) return 'a';  // empty class can never match anyway
    std::uniform_int_distribution<std::size_t> d(0, pool.size() - 1);
    return pool[d(rng_)];
  }

  std::mt19937_64 rng_;
  std::array<std::string, 10> group_values_{};
};

}  // namespace
}  // namespace detail

std::vector<std::string> Regex::sample_matches(std::size_t count,
                                               std::uint64_t seed) const {
  std::set<std::string> seen;
  std::vector<std::string> out;
  detail::Sampler sampler(seed);
  // Generate with margin: structurally distinct draws may collide.
  for (std::size_t attempt = 0; attempt < count * 8 && out.size() < count;
       ++attempt) {
    std::string s = sampler.generate(*root_);
    // Strings containing newlines would break line-oriented input
    // generation; skip them (the dictionary feeds single-line units).
    if (s.find('\n') != std::string::npos) continue;
    if (seen.insert(s).second) out.push_back(std::move(s));
  }
  return out;
}

}  // namespace kq::regex
