#include <functional>

#include "regex/node.h"
#include "regex/regex.h"

namespace kq::regex {
namespace detail {
namespace {

using Caps = std::array<std::pair<std::size_t, std::size_t>, 10>;
using Cont = std::function<bool(std::size_t)>;

struct MatchContext {
  std::string_view text;
  Caps caps;
};

bool match_node(const Node& n, MatchContext& ctx, std::size_t pos,
                const Cont& k);

bool match_seq(const std::vector<NodePtr>& children, std::size_t idx,
               MatchContext& ctx, std::size_t pos, const Cont& k) {
  if (idx == children.size()) return k(pos);
  return match_node(*children[idx], ctx, pos, [&](std::size_t p2) {
    return match_seq(children, idx + 1, ctx, p2, k);
  });
}

bool match_node(const Node& n, MatchContext& ctx, std::size_t pos,
                const Cont& k) {
  switch (n.kind) {
    case Kind::kLiteral:
      return pos < ctx.text.size() && ctx.text[pos] == n.ch && k(pos + 1);
    case Kind::kAny:
      return pos < ctx.text.size() && ctx.text[pos] != '\n' && k(pos + 1);
    case Kind::kClass:
      return pos < ctx.text.size() &&
             n.cls[static_cast<unsigned char>(ctx.text[pos])] && k(pos + 1);
    case Kind::kBolAnchor:
      return pos == 0 && k(pos);
    case Kind::kEolAnchor:
      return pos == ctx.text.size() && k(pos);
    case Kind::kSeq:
      return match_seq(n.children, 0, ctx, pos, k);
    case Kind::kAlt:
      for (const auto& branch : n.children)
        if (match_node(*branch, ctx, pos, k)) return true;
      return false;
    case Kind::kGroup:
      return match_node(*n.children[0], ctx, pos, [&](std::size_t p2) {
        auto idx = static_cast<std::size_t>(n.index);
        auto saved = ctx.caps[idx];
        ctx.caps[idx] = {pos, p2};
        if (k(p2)) return true;
        ctx.caps[idx] = saved;
        return false;
      });
    case Kind::kBackref: {
      auto [b, e] = ctx.caps[static_cast<std::size_t>(n.index)];
      if (b == Match::kNpos) return false;  // unparticipating group
      std::string_view captured = ctx.text.substr(b, e - b);
      if (ctx.text.substr(pos, captured.size()) != captured) return false;
      return k(pos + captured.size());
    }
    case Kind::kStar: {
      // Greedy: try one more repetition first, fall back to continuing.
      const Node& child = *n.children[0];
      std::function<bool(int, std::size_t)> rep = [&](int count,
                                                      std::size_t p) {
        if (n.max_repeat < 0 || count < n.max_repeat) {
          bool extended = match_node(child, ctx, p, [&](std::size_t p2) {
            if (p2 == p) return false;  // refuse empty-width repetitions
            return rep(count + 1, p2);
          });
          if (extended) return true;
        }
        return count >= n.min_repeat && k(p);
      };
      return rep(0, pos);
    }
  }
  return false;
}

}  // namespace
}  // namespace detail

std::optional<Match> Regex::find(std::string_view line,
                                 std::size_t from) const {
  detail::MatchContext ctx{line, {}};
  for (std::size_t start = from; start <= line.size(); ++start) {
    ctx.caps.fill({Match::kNpos, Match::kNpos});
    std::size_t match_end = 0;
    bool ok = detail::match_node(*root_, ctx, start, [&](std::size_t p) {
      match_end = p;
      return true;
    });
    if (ok) {
      Match m;
      m.begin = start;
      m.end = match_end;
      m.groups = ctx.caps;
      m.group_count = group_count_;
      return m;
    }
  }
  return std::nullopt;
}

bool Regex::search(std::string_view line) const {
  return find(line).has_value();
}

namespace {

// Expands a sed-style replacement: & is the whole match, \1..\9 captures,
// \\ a literal backslash, \n a newline, \& a literal ampersand.
void expand_replacement(std::string& out, std::string_view replacement,
                        std::string_view text, const Match& m) {
  for (std::size_t i = 0; i < replacement.size(); ++i) {
    char c = replacement[i];
    if (c == '&') {
      out.append(text.substr(m.begin, m.end - m.begin));
    } else if (c == '\\' && i + 1 < replacement.size()) {
      char e = replacement[++i];
      if (e >= '1' && e <= '9') {
        out.append(m.group(text, e - '0'));
      } else if (e == 'n') {
        out.push_back('\n');
      } else if (e == 't') {
        out.push_back('\t');
      } else {
        out.push_back(e);
      }
    } else {
      out.push_back(c);
    }
  }
}

}  // namespace

std::string Regex::replace(std::string_view line, std::string_view replacement,
                           bool global, bool* replaced) const {
  std::string out;
  std::size_t pos = 0;
  bool any = false;
  while (pos <= line.size()) {
    auto m = find(line, pos);
    if (!m) break;
    out.append(line.substr(pos, m->begin - pos));
    expand_replacement(out, replacement, line, *m);
    any = true;
    if (m->end == m->begin) {
      // Empty-width match: emit the next character to guarantee progress.
      if (m->end < line.size()) out.push_back(line[m->end]);
      pos = m->end + 1;
    } else {
      pos = m->end;
    }
    if (!global) break;
  }
  if (pos <= line.size()) out.append(line.substr(pos));
  if (replaced) *replaced = any;
  return out;
}

}  // namespace kq::regex
