// Running real external processes behind the Command interface: fork/exec
// with pipe plumbing, feeding the input stream to the child's stdin and
// collecting stdout/stderr. This is the substrate that lets the synthesizer
// treat arbitrary host binaries as black boxes, exactly as the paper's
// implementation does.
//
// The plumbing handles the classic deadlock (child blocks writing a full
// stdout pipe while the parent blocks writing stdin) by multiplexing all
// three pipes with poll(2).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "unixcmd/command.h"

namespace kq::procexec {

// Runs `argv` as a child process with `input` on stdin; returns stdout,
// exit status, and stderr. Returns nullopt if the process could not be
// spawned at all.
std::optional<cmd::Result> run_process(const std::vector<std::string>& argv,
                                       std::string_view input);

class ExternalCommand final : public cmd::Command {
 public:
  explicit ExternalCommand(std::vector<std::string> argv);

  cmd::Result execute(std::string_view input) const override;

  const std::vector<std::string>& argv() const { return argv_; }

 private:
  std::vector<std::string> argv_;
};

// Factory mirroring cmd::make_command_line for external binaries.
cmd::CommandPtr make_external_command(std::string_view command_line,
                                      std::string* error = nullptr);

// True if `program` resolves to an executable on PATH (used by tests to
// skip cross-validation when coreutils are absent).
bool program_exists(const std::string& program);

}  // namespace kq::procexec
