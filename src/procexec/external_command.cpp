#include "procexec/external_command.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "text/shellwords.h"

namespace kq::procexec {
namespace {

// RAII file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept {
    reset(other.release());
    return *this;
  }
  ~Fd() { reset(); }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset(int fd = -1) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = fd;
  }

 private:
  int fd_ = -1;
};

struct Pipe {
  Fd read_end;
  Fd write_end;
};

std::optional<Pipe> make_pipe() {
  // O_CLOEXEC is essential: concurrent run_process calls fork from
  // multiple threads, and without it a child forked in between inherits a
  // sibling's pipe ends, keeping them open after the parent closes its
  // copy — the sibling's command then never sees stdin EOF and hangs.
  // dup2 onto the stdio fds clears the flag for the fds the child keeps.
  int fds[2];
  if (::pipe2(fds, O_CLOEXEC) != 0) return std::nullopt;
  Pipe p;
  p.read_end.reset(fds[0]);
  p.write_end.reset(fds[1]);
  return p;
}

void set_nonblocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

std::optional<cmd::Result> run_process(const std::vector<std::string>& argv,
                                       std::string_view input) {
  if (argv.empty()) return std::nullopt;
  auto stdin_pipe = make_pipe();
  auto stdout_pipe = make_pipe();
  auto stderr_pipe = make_pipe();
  if (!stdin_pipe || !stdout_pipe || !stderr_pipe) return std::nullopt;

  pid_t pid = ::fork();
  if (pid < 0) return std::nullopt;

  if (pid == 0) {
    // Child: wire the pipes to stdio and exec.
    ::dup2(stdin_pipe->read_end.get(), STDIN_FILENO);
    ::dup2(stdout_pipe->write_end.get(), STDOUT_FILENO);
    ::dup2(stderr_pipe->write_end.get(), STDERR_FILENO);
    stdin_pipe->read_end.reset();
    stdin_pipe->write_end.reset();
    stdout_pipe->read_end.reset();
    stdout_pipe->write_end.reset();
    stderr_pipe->read_end.reset();
    stderr_pipe->write_end.reset();
    // Force byte-oriented, locale-independent behaviour like the paper's
    // evaluation environment.
    ::setenv("LC_ALL", "C", 1);
    std::vector<char*> c_argv;
    c_argv.reserve(argv.size() + 1);
    for (const std::string& a : argv)
      c_argv.push_back(const_cast<char*>(a.c_str()));
    c_argv.push_back(nullptr);
    ::execvp(c_argv[0], c_argv.data());
    ::_exit(127);
  }

  // Parent: close child ends, multiplex the three pipes.
  stdin_pipe->read_end.reset();
  stdout_pipe->write_end.reset();
  stderr_pipe->write_end.reset();

  set_nonblocking(stdin_pipe->write_end.get());
  set_nonblocking(stdout_pipe->read_end.get());
  set_nonblocking(stderr_pipe->read_end.get());

  cmd::Result result;
  std::size_t written = 0;
  bool stdin_open = true, stdout_open = true, stderr_open = true;
  char buffer[64 * 1024];

  while (stdin_open || stdout_open || stderr_open) {
    struct pollfd fds[3];
    nfds_t nfds = 0;
    int stdin_slot = -1, stdout_slot = -1, stderr_slot = -1;
    if (stdin_open) {
      stdin_slot = static_cast<int>(nfds);
      fds[nfds++] = {stdin_pipe->write_end.get(), POLLOUT, 0};
    }
    if (stdout_open) {
      stdout_slot = static_cast<int>(nfds);
      fds[nfds++] = {stdout_pipe->read_end.get(), POLLIN, 0};
    }
    if (stderr_open) {
      stderr_slot = static_cast<int>(nfds);
      fds[nfds++] = {stderr_pipe->read_end.get(), POLLIN, 0};
    }
    int rc = ::poll(fds, nfds, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (stdin_slot >= 0 &&
        (fds[stdin_slot].revents & (POLLOUT | POLLERR | POLLHUP))) {
      if (fds[stdin_slot].revents & (POLLERR | POLLHUP)) {
        // Child closed stdin early (e.g. `head`): stop writing.
        stdin_pipe->write_end.reset();
        stdin_open = false;
      } else {
        ssize_t n = ::write(stdin_pipe->write_end.get(),
                            input.data() + written, input.size() - written);
        if (n > 0) written += static_cast<std::size_t>(n);
        if ((n < 0 && errno != EAGAIN && errno != EINTR) ||
            written == input.size()) {
          stdin_pipe->write_end.reset();
          stdin_open = false;
        }
      }
    }
    auto drain = [&](int slot, Fd& fd, std::string& sink, bool& open) {
      if (slot < 0 || !(fds[slot].revents & (POLLIN | POLLERR | POLLHUP)))
        return;
      ssize_t n = ::read(fd.get(), buffer, sizeof(buffer));
      if (n > 0) {
        sink.append(buffer, static_cast<std::size_t>(n));
      } else if (n == 0 || (n < 0 && errno != EAGAIN && errno != EINTR)) {
        fd.reset();
        open = false;
      }
    };
    drain(stdout_slot, stdout_pipe->read_end, result.out, stdout_open);
    drain(stderr_slot, stderr_pipe->read_end, result.err, stderr_open);
  }

  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  result.status = WIFEXITED(status) ? WEXITSTATUS(status) : 128;
  return result;
}

ExternalCommand::ExternalCommand(std::vector<std::string> argv)
    : Command(cmd::argv_to_display(argv)), argv_(std::move(argv)) {}

cmd::Result ExternalCommand::execute(std::string_view input) const {
  auto result = run_process(argv_, input);
  if (!result) return {"", 127, "failed to spawn " + display_name()};
  return *result;
}

cmd::CommandPtr make_external_command(std::string_view command_line,
                                      std::string* error) {
  auto words = text::shell_split(command_line);
  if (!words || words->empty()) {
    if (error) *error = "bad command line";
    return nullptr;
  }
  return std::make_shared<ExternalCommand>(std::move(*words));
}

bool program_exists(const std::string& program) {
  if (program.find('/') != std::string::npos)
    return ::access(program.c_str(), X_OK) == 0;
  const char* path = std::getenv("PATH");
  if (!path) return false;
  std::string_view rest(path);
  while (!rest.empty()) {
    std::size_t colon = rest.find(':');
    std::string_view dir =
        colon == std::string_view::npos ? rest : rest.substr(0, colon);
    rest = colon == std::string_view::npos ? std::string_view()
                                           : rest.substr(colon + 1);
    if (dir.empty()) continue;
    std::string candidate = std::string(dir) + "/" + program;
    if (::access(candidate.c_str(), X_OK) == 0) return true;
  }
  return false;
}

}  // namespace kq::procexec
