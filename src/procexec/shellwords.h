// Re-export of the shell-word splitter under the procexec module, kept for
// API discoverability: external-command users usually start here.
#pragma once

#include "text/shellwords.h"

namespace kq::procexec {
using kq::text::shell_split;
using kq::text::split_pipeline;
}  // namespace kq::procexec
