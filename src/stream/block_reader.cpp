#include "stream/block_reader.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <istream>

namespace kq::stream {
namespace {

BlockReaderOptions sanitize(BlockReaderOptions options) {
  options.block_size = std::max<std::size_t>(1, options.block_size);
  return options;
}

BlockReader::ReadFn stream_source(std::istream& in,
                                  std::shared_ptr<int> error) {
  return [&in, error = std::move(error)](char* buf,
                                         std::size_t n) -> std::size_t {
    in.read(buf, static_cast<std::streamsize>(n));
    if (in.bad()) *error = EIO;  // lost the stream, not just EOF
    return static_cast<std::size_t>(in.gcount());
  };
}

BlockReader::ReadFn fd_source(int fd, std::shared_ptr<int> error) {
  return [fd, error = std::move(error)](char* buf,
                                        std::size_t n) -> std::size_t {
    while (true) {
      ssize_t got = ::read(fd, buf, n);
      if (got >= 0) return static_cast<std::size_t>(got);
      if (errno != EINTR) {  // hard error: flag it, end the stream
        *error = errno;
        return 0;
      }
    }
  };
}

}  // namespace

BlockReader::BlockReader(std::istream& in, BlockReaderOptions options)
    : read_(stream_source(in, error_)), options_(sanitize(options)) {}

BlockReader::BlockReader(int fd, BlockReaderOptions options)
    : read_(fd_source(fd, error_)), options_(sanitize(options)) {}

BlockReader::BlockReader(ReadFn read, BlockReaderOptions options)
    : read_(std::move(read)), options_(sanitize(options)) {}

void BlockReader::fill() {
  std::size_t old = pending_.size();
  pending_.resize(old + options_.block_size);
  std::size_t got = read_(pending_.data() + old, options_.block_size);
  pending_.resize(old + got);
  if (got == 0) eof_ = true;
}

std::optional<std::string> BlockReader::next() {
  while (!eof_ && pending_.size() < options_.block_size) fill();
  if (pending_.empty()) return std::nullopt;

  std::size_t cut;
  if (eof_ && pending_.size() <= options_.block_size) {
    // Everything left fits in one block; a missing trailing delimiter just
    // means the final block carries a partial last record.
    cut = pending_.size();
  } else {
    std::size_t last = pending_.rfind(options_.delimiter,
                                      options_.block_size - 1);
    if (last != std::string::npos) {
      cut = last + 1;  // the delimiter stays with its record
    } else {
      // A single record longer than the block: extend until its terminating
      // delimiter (or end of input) so the record is never split. A
      // max_record_size cap bounds this growth: one delimiter-free record
      // would otherwise accumulate the rest of the input in pending_.
      std::size_t from = options_.block_size;
      std::size_t end = pending_.find(options_.delimiter, from);
      while (end == std::string::npos && !eof_) {
        if (options_.max_record_size != 0 &&
            pending_.size() > options_.max_record_size) {
          *error_ = EMSGSIZE;  // record too large to buffer; see header
          eof_ = true;
          pending_.clear();
          pending_.shrink_to_fit();
          return std::nullopt;
        }
        from = pending_.size();
        fill();
        end = pending_.find(options_.delimiter, from);
      }
      cut = (end == std::string::npos) ? pending_.size() : end + 1;
    }
  }

  std::string block = pending_.substr(0, cut);
  pending_.erase(0, cut);
  bytes_delivered_ += block.size();
  return block;
}

}  // namespace kq::stream
