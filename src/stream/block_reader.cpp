#include "stream/block_reader.h"

#include <algorithm>
#include <cerrno>
#include <istream>

#include "io/engine.h"
#include "obs/trace.h"

namespace kq::stream {
namespace {

BlockReaderOptions sanitize(BlockReaderOptions options) {
  options.block_size = std::max<std::size_t>(1, options.block_size);
  return options;
}

// Slice size for the istream source's cancellation checks: an istream read
// cannot be interrupted, so instead of asking for a whole block at once
// the source reads ≤4 KiB at a time and rechecks the cancel flag between
// slices — a cancel mid-fill is noticed within one slice (at most a few
// records) rather than at the next block boundary. Small enough for
// prompt embedded cancellation, large enough that the per-slice virtual
// call vanishes against the buffered stream read.
constexpr std::size_t kCancelSliceBytes = 4096;

BlockReader::ReadFn stream_source(std::istream& in, std::shared_ptr<int> error,
                                  std::shared_ptr<std::atomic<bool>> cancel) {
  return [&in, error = std::move(error),
          cancel = std::move(cancel)](char* buf,
                                      std::size_t n) -> std::size_t {
    std::size_t total = 0;
    while (total < n) {
      if (cancel->load()) break;  // mid-fill stop: deliver what we have
      std::size_t want = std::min(n - total, kCancelSliceBytes);
      in.read(buf + total, static_cast<std::streamsize>(want));
      if (in.bad()) {
        *error = EIO;  // lost the stream, not just EOF
        break;
      }
      std::size_t got = static_cast<std::size_t>(in.gcount());
      total += got;
      if (got < want) break;  // end of input
    }
    return total;
  };
}

// The fd source delegates the poll-vs-uring syscall strategy to the I/O
// engine (src/io/engine.h) — the poll engine's loop is the one that used
// to live right here; the engine seam is what makes the backend swappable
// and the cancellation/idle/wait contract testable on both. The lambda
// captures the reader's shared flag state and hands the engine a SourceCtl
// view of it per read.
BlockReader::ReadFn engine_source(
    io::Engine* engine, int fd, std::shared_ptr<int> error,
    std::shared_ptr<std::atomic<bool>> cancel,
    std::shared_ptr<std::atomic<bool>> idle,
    std::shared_ptr<std::atomic<bool>> time_waits,
    std::shared_ptr<std::atomic<std::uint64_t>> wait_ns) {
  return [engine, fd, error = std::move(error), cancel = std::move(cancel),
          idle = std::move(idle), time_waits = std::move(time_waits),
          wait_ns = std::move(wait_ns)](char* buf,
                                        std::size_t n) -> std::size_t {
    io::SourceCtl ctl;
    ctl.cancel = cancel.get();
    ctl.idle = idle.get();
    ctl.time_waits = time_waits.get();
    ctl.wait_ns = wait_ns.get();
    ctl.error = error.get();
    return engine->read_source(fd, buf, n, ctl);
  };
}

}  // namespace

BlockReader::BlockReader(std::istream& in, BlockReaderOptions options)
    : read_(stream_source(in, error_, cancel_)), options_(sanitize(options)) {}

BlockReader::BlockReader(int fd, BlockReaderOptions options)
    : owned_engine_(io::make_engine()),
      engine_(owned_engine_.get()),
      read_(engine_source(engine_, fd, error_, cancel_, idle_, time_waits_,
                          wait_ns_)),
      options_(sanitize(options)) {}

BlockReader::BlockReader(int fd, io::Engine* engine,
                         BlockReaderOptions options)
    : engine_(engine),
      read_(engine_source(engine_, fd, error_, cancel_, idle_, time_waits_,
                          wait_ns_)),
      options_(sanitize(options)) {}

BlockReader::BlockReader(ReadFn read, BlockReaderOptions options)
    : read_(std::move(read)), options_(sanitize(options)) {}

void BlockReader::fill() {
  if (cancel_->load()) {  // callback sources: noticed between fills
    eof_ = true;
    return;
  }
  auto span = obs::span(tracer_.load(std::memory_order_acquire),
                        "source-fill", "source");
  std::size_t old = pending_.size();
  pending_.resize(old + options_.block_size);
  std::size_t got = read_(pending_.data() + old, options_.block_size);
  pending_.resize(old + got);
  if (got == 0) eof_ = true;
  span.arg("bytes", got);
}

std::optional<std::string> BlockReader::next() {
  while (!eof_ && pending_.size() < options_.block_size) {
    // An idle source (the fd path's zero-timeout poll after the last read:
    // a pipe between bursts, never a regular file) has no more bytes
    // *right now*. Waiting for a full block would hold already-read
    // records hostage to a producer that may stay idle indefinitely
    // (`seq 20 | head -n 5` through a still-open pipe), so deliver the
    // complete records on hand and leave the partial tail pending. The
    // check runs *before* fill() blocks: a burst that overshot the block
    // boundary leaves complete records in pending_ across next() calls,
    // and those must flush without waiting for the producer's next write.
    // `flush_scan_` remembers how far previous idle checks got, keeping
    // the delimiter scan linear when an idle producer dribbles a long
    // delimiter-free record.
    if (idle_->load()) {
      if (pending_.find(options_.delimiter, flush_scan_) !=
          std::string::npos)
        break;
      flush_scan_ = pending_.size();
    }
    fill();
  }
  if (pending_.empty()) return std::nullopt;

  std::size_t cut;
  if (eof_ && pending_.size() <= options_.block_size) {
    // Everything left fits in one block; a missing trailing delimiter just
    // means the final block carries a partial last record.
    cut = pending_.size();
  } else {
    std::size_t last = pending_.rfind(options_.delimiter,
                                      options_.block_size - 1);
    if (last != std::string::npos) {
      cut = last + 1;  // the delimiter stays with its record
    } else {
      // A single record longer than the block: extend until its terminating
      // delimiter (or end of input) so the record is never split. A
      // max_record_size cap bounds this growth: one delimiter-free record
      // would otherwise accumulate the rest of the input in pending_.
      std::size_t from = options_.block_size;
      std::size_t end = pending_.find(options_.delimiter, from);
      while (end == std::string::npos && !eof_) {
        if (options_.max_record_size != 0 &&
            pending_.size() > options_.max_record_size) {
          *error_ = EMSGSIZE;  // record too large to buffer; see header
          eof_ = true;
          pending_.clear();
          pending_.shrink_to_fit();
          return std::nullopt;
        }
        from = pending_.size();
        fill();
        end = pending_.find(options_.delimiter, from);
      }
      cut = (end == std::string::npos) ? pending_.size() : end + 1;
    }
  }

  std::string block = pending_.substr(0, cut);
  pending_.erase(0, cut);
  flush_scan_ = 0;  // pending_ shifted: stale idle-scan offset
  bytes_delivered_ += block.size();
  return block;
}

}  // namespace kq::stream
