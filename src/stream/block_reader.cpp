#include "stream/block_reader.h"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <istream>

#include "obs/trace.h"

namespace kq::stream {
namespace {

BlockReaderOptions sanitize(BlockReaderOptions options) {
  options.block_size = std::max<std::size_t>(1, options.block_size);
  return options;
}

// Slice size for the istream source's cancellation checks: an istream read
// cannot be interrupted, so instead of asking for a whole block at once
// the source reads ≤4 KiB at a time and rechecks the cancel flag between
// slices — a cancel mid-fill is noticed within one slice (at most a few
// records) rather than at the next block boundary. Small enough for
// prompt embedded cancellation, large enough that the per-slice virtual
// call vanishes against the buffered stream read.
constexpr std::size_t kCancelSliceBytes = 4096;

BlockReader::ReadFn stream_source(std::istream& in, std::shared_ptr<int> error,
                                  std::shared_ptr<std::atomic<bool>> cancel) {
  return [&in, error = std::move(error),
          cancel = std::move(cancel)](char* buf,
                                      std::size_t n) -> std::size_t {
    std::size_t total = 0;
    while (total < n) {
      if (cancel->load()) break;  // mid-fill stop: deliver what we have
      std::size_t want = std::min(n - total, kCancelSliceBytes);
      in.read(buf + total, static_cast<std::streamsize>(want));
      if (in.bad()) {
        *error = EIO;  // lost the stream, not just EOF
        break;
      }
      std::size_t got = static_cast<std::size_t>(in.gcount());
      total += got;
      if (got < want) break;  // end of input
    }
    return total;
  };
}

// Poll interval for the fd source's cancellation check: short enough that
// a cancelled reader blocked on an idle pipe wakes promptly, long enough
// that an active stream pays one cheap always-ready poll per read.
constexpr int kCancelPollMs = 50;

BlockReader::ReadFn fd_source(
    int fd, std::shared_ptr<int> error,
    std::shared_ptr<std::atomic<bool>> cancel,
    std::shared_ptr<std::atomic<bool>> idle,
    std::shared_ptr<std::atomic<bool>> time_waits,
    std::shared_ptr<std::atomic<std::uint64_t>> wait_ns) {
  return [fd, error = std::move(error), cancel = std::move(cancel),
          idle = std::move(idle), time_waits = std::move(time_waits),
          wait_ns = std::move(wait_ns)](char* buf,
                                        std::size_t n) -> std::size_t {
    while (true) {
      if (cancel->load()) return 0;  // clean consumer-side stop, not error
      // Wait for readability with a timeout instead of blocking in
      // read(2): a cancel() while the producer pipe is idle is noticed at
      // the next poll tick, not at the next (possibly never-arriving)
      // block boundary. Regular files are always readable, so the poll is
      // one cheap syscall on the non-pipe path.
      struct pollfd pfd{fd, POLLIN, 0};
      // Wait timing is opt-in (see enable_wait_timing): only then is the
      // clock consulted, and only a timed-out poll — an actual wait for
      // the producer — is charged, so the saturated path stays clock-free
      // apart from one relaxed flag load per read.
      bool timing = time_waits->load(std::memory_order_relaxed);
      std::chrono::steady_clock::time_point t0;
      if (timing) t0 = std::chrono::steady_clock::now();
      int ready = ::poll(&pfd, 1, kCancelPollMs);
      if (timing && ready == 0) {
        wait_ns->fetch_add(
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count()),
            std::memory_order_relaxed);
      }
      if (ready < 0) {
        if (errno == EINTR) continue;
        *error = errno;
        return 0;
      }
      if (ready == 0) continue;  // timeout: recheck cancellation
      ssize_t got = ::read(fd, buf, n);
      if (got > 0) {
        // Source gone idle? (zero-timeout poll after a successful read).
        // A pipe read returns at most the pipe capacity (~64 KiB), so a
        // short read alone cannot distinguish "producer is saturating the
        // pipe" (keep batching toward a full block) from "producer went
        // quiet" (flush what we have — see BlockReader::next). The poll
        // must retry EINTR: a signal landing here would otherwise read as
        // "idle" (poll() == -1 != 0) and trigger a spurious early flush —
        // harmless for correctness but it shrinks blocks under signal
        // load. A non-EINTR poll failure reports not-idle (keep batching);
        // the main loop's poll will surface any persistent error.
        int now;
        do {
          pfd.revents = 0;
          now = ::poll(&pfd, 1, 0);
        } while (now < 0 && errno == EINTR);
        idle->store(now == 0);
        return static_cast<std::size_t>(got);
      }
      if (got == 0) return 0;
      if (errno == EINTR) continue;  // signal mid-read: re-poll and retry
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // O_NONBLOCK fd whose readability evaporated between poll and read
        // (another consumer, or a spurious wakeup): wait again rather than
        // misreporting a transient condition as a hard stream error.
        continue;
      }
      *error = errno;  // hard error: flag it, end the stream
      return 0;
    }
  };
}

}  // namespace

BlockReader::BlockReader(std::istream& in, BlockReaderOptions options)
    : read_(stream_source(in, error_, cancel_)), options_(sanitize(options)) {}

BlockReader::BlockReader(int fd, BlockReaderOptions options)
    : read_(fd_source(fd, error_, cancel_, idle_, time_waits_, wait_ns_)),
      options_(sanitize(options)) {}

BlockReader::BlockReader(ReadFn read, BlockReaderOptions options)
    : read_(std::move(read)), options_(sanitize(options)) {}

void BlockReader::fill() {
  if (cancel_->load()) {  // callback sources: noticed between fills
    eof_ = true;
    return;
  }
  auto span = obs::span(tracer_.load(std::memory_order_acquire),
                        "source-fill", "source");
  std::size_t old = pending_.size();
  pending_.resize(old + options_.block_size);
  std::size_t got = read_(pending_.data() + old, options_.block_size);
  pending_.resize(old + got);
  if (got == 0) eof_ = true;
  span.arg("bytes", got);
}

std::optional<std::string> BlockReader::next() {
  while (!eof_ && pending_.size() < options_.block_size) {
    // An idle source (the fd path's zero-timeout poll after the last read:
    // a pipe between bursts, never a regular file) has no more bytes
    // *right now*. Waiting for a full block would hold already-read
    // records hostage to a producer that may stay idle indefinitely
    // (`seq 20 | head -n 5` through a still-open pipe), so deliver the
    // complete records on hand and leave the partial tail pending. The
    // check runs *before* fill() blocks: a burst that overshot the block
    // boundary leaves complete records in pending_ across next() calls,
    // and those must flush without waiting for the producer's next write.
    // `flush_scan_` remembers how far previous idle checks got, keeping
    // the delimiter scan linear when an idle producer dribbles a long
    // delimiter-free record.
    if (idle_->load()) {
      if (pending_.find(options_.delimiter, flush_scan_) !=
          std::string::npos)
        break;
      flush_scan_ = pending_.size();
    }
    fill();
  }
  if (pending_.empty()) return std::nullopt;

  std::size_t cut;
  if (eof_ && pending_.size() <= options_.block_size) {
    // Everything left fits in one block; a missing trailing delimiter just
    // means the final block carries a partial last record.
    cut = pending_.size();
  } else {
    std::size_t last = pending_.rfind(options_.delimiter,
                                      options_.block_size - 1);
    if (last != std::string::npos) {
      cut = last + 1;  // the delimiter stays with its record
    } else {
      // A single record longer than the block: extend until its terminating
      // delimiter (or end of input) so the record is never split. A
      // max_record_size cap bounds this growth: one delimiter-free record
      // would otherwise accumulate the rest of the input in pending_.
      std::size_t from = options_.block_size;
      std::size_t end = pending_.find(options_.delimiter, from);
      while (end == std::string::npos && !eof_) {
        if (options_.max_record_size != 0 &&
            pending_.size() > options_.max_record_size) {
          *error_ = EMSGSIZE;  // record too large to buffer; see header
          eof_ = true;
          pending_.clear();
          pending_.shrink_to_fit();
          return std::nullopt;
        }
        from = pending_.size();
        fill();
        end = pending_.find(options_.delimiter, from);
      }
      cut = (end == std::string::npos) ? pending_.size() : end + 1;
    }
  }

  std::string block = pending_.substr(0, cut);
  pending_.erase(0, cut);
  flush_scan_ = 0;  // pending_ shifted: stale idle-scan offset
  bytes_delivered_ += block.size();
  return block;
}

}  // namespace kq::stream
