#include "stream/dataflow.h"

#include <cerrno>
#include <chrono>
#include <istream>
#include <map>
#include <memory>
#include <ostream>
#include <sstream>
#include <thread>

#include "exec/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stream/block_reader.h"
#include "stream/channel.h"
#include "stream/spill.h"
#include "stream/sync.h"
#include "text/streams.h"
#include "unixcmd/sort_cmd.h"

namespace kq::stream {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Per-node telemetry handles, both optional: `counters` exists only when
// StreamConfig::stats is on, `tracer` only under --trace-json. One
// NodeTelemetry per segment lives in run_streaming_core for the whole run
// (pool tasks may hold pointers into it until wait_idle()). With both null
// every instrumentation site below is a pointer test.
struct NodeTelemetry {
  obs::StageCounters* counters = nullptr;
  obs::Tracer* tracer = nullptr;
  std::string label;  // the segment's display name, used in span names
};

// A pipeline segment: one node of the dataflow graph. Sequential stages
// become single-stage drain nodes; consecutive parallel stages joined by
// eliminated combiners fuse into one worker chain whose chunk outputs are
// combined by the final stage's combiner; consecutive declared-streamable
// stages fuse into one per-block stream-chain node, optionally terminated
// by a single window-bounded stage (tail -n N, uniq, wc, sort -u) whose
// finish() flushes at end of input.
struct Segment {
  std::vector<const exec::ExecStage*> chain;
  bool parallel = false;
  bool stream = false;       // per-block chain of cmd::StreamProcessors
  bool window = false;       // chain.back() is a cmd::WindowProcessor stage
  // Parallel segment whose workers run fused per-shard stream sub-chains
  // (exec::run_slice_fused) over contiguous record-aligned slices instead
  // of whole-slice Command::run hops; the collector is its combining tree.
  bool sharded = false;
  bool emit_concat = false;  // combiner is concat: emit instead of folding
  const exec::ExecStage* combine_stage = nullptr;

  std::string display() const {
    std::string out;
    for (std::size_t i = 0; i < chain.size(); ++i) {
      if (i) out += " | ";
      out += chain[i]->command->display_name();
    }
    return out;
  }
};

// True when the runtime will actually fan this stage out to workers (the
// plan wanted parallelism and the config allows it). A plan-parallel stage
// at k = 1 falls back to a sequential node, where declared streamability
// is strictly better than the materialize drain.
bool runs_parallel(const exec::ExecStage& stage, const StreamConfig& config) {
  return stage.parallel && config.parallelism > 1 && stage.combine != nullptr;
}

// True when the stage may run as (part of) a per-block stream-chain node.
// Streamability is a statement about *record*-aligned blocks, and the
// line-based built-ins define records by '\n', so a custom delimiter keeps
// the materialize path (same rule as the line-based spill paths).
bool stream_chain_stage(const exec::ExecStage& stage,
                        const StreamConfig& config) {
  if (config.delimiter != '\n' || !stage.command) return false;
  const cmd::Streamability s = stage.command->streamability();
  if (s == cmd::Streamability::kNone || s == cmd::Streamability::kWindow)
    return false;
  if (stage.memory_class == exec::MemoryClass::kStatelessStream) return true;
  return !runs_parallel(stage, config) && s == cmd::Streamability::kPerRecord;
}

// True when the stage runs as the window-bounded terminal of a stream
// chain: declared kWindow and effectively sequential (the plan may still
// parallelize a window command like wc through its synthesized combiner;
// the window node only replaces the sequential materialize drain).
bool window_stage(const exec::ExecStage& stage, const StreamConfig& config) {
  if (config.delimiter != '\n' || !stage.command) return false;
  if (stage.command->streamability() != cmd::Streamability::kWindow)
    return false;
  if (stage.memory_class == exec::MemoryClass::kWindowStream) return true;
  return !runs_parallel(stage, config);
}

std::vector<Segment> build_segments(const std::vector<exec::ExecStage>& stages,
                                    const StreamConfig& config) {
  std::vector<Segment> segments;
  const bool parallel_ok = config.parallelism > 1;
  std::size_t i = 0;
  while (i < stages.size()) {
    Segment seg;
    seg.chain.push_back(&stages[i]);
    if (window_stage(stages[i], config)) {
      // A window stage is a complete (single-stage) chain: its finish()
      // emission happens after all input, so nothing can fuse behind it.
      seg.stream = true;
      seg.window = true;
    } else if (stream_chain_stage(stages[i], config)) {
      // Fuse the maximal run of streamable stages into one per-block node:
      // a `grep | tr | cut` chain costs one channel hop, not three. A
      // window stage may join as the chain's terminal member — `grep |
      // uniq` absorbs grep's per-block output directly into the run
      // window — but ends the fusion: its emission order is finish()'s,
      // not the input's.
      seg.stream = true;
      while (i + 1 < stages.size()) {
        if (stream_chain_stage(stages[i + 1], config)) {
          ++i;
          seg.chain.push_back(&stages[i]);
        } else if (window_stage(stages[i + 1], config)) {
          ++i;
          seg.chain.push_back(&stages[i]);
          seg.window = true;
          break;
        } else {
          break;
        }
      }
    } else if (stages[i].parallel && parallel_ok && stages[i].combine) {
      seg.parallel = true;
      // Mirror the batch runner's elimination condition: a stage whose
      // concat combiner is eliminated feeds its substreams straight into
      // the next parallel stage, which here means fusing both into one
      // worker chain. A streamable next stage is left out: it prefers its
      // own stream-chain node (head fused into a worker chain would lose
      // the early exit that makes it O(blocks)).
      while (config.use_elimination && seg.chain.back()->eliminate_combiner &&
             i + 1 < stages.size() && stages[i + 1].parallel &&
             stages[i + 1].combine &&
             !stream_chain_stage(stages[i + 1], config)) {
        ++i;
        seg.chain.push_back(&stages[i]);
      }
      seg.combine_stage = seg.chain.back();
      seg.emit_concat = seg.combine_stage->concat_combiner;
      // Sharded mode: every fused member was recorded shard-eligible by
      // lower_plan AND the chain shape admits a processor cascade — all
      // non-terminal members per-record, the terminal per-record or window
      // (a window's emission happens at slice end, so nothing can cascade
      // behind it inside a shard). Streamability is a statement about
      // '\n'-delimited records, so a custom delimiter keeps the whole-slice
      // worker path.
      if (config.delimiter == '\n') {
        bool ok = true;
        for (std::size_t j = 0; j < seg.chain.size(); ++j) {
          const exec::ExecStage* s = seg.chain[j];
          if (!s->shardable || !s->command) {
            ok = false;
            break;
          }
          const cmd::Streamability sb = s->command->streamability();
          const bool terminal = j + 1 == seg.chain.size();
          if (sb != cmd::Streamability::kPerRecord &&
              !(terminal && sb == cmd::Streamability::kWindow)) {
            ok = false;
            break;
          }
        }
        seg.sharded = ok;
      }
    }
    ++i;
    segments.push_back(std::move(seg));
  }
  return segments;
}

// State shared by every node of one run: the memory gauge, the chunk
// buffer pool, the first failure, and the teardown fan-out that unblocks
// all waiting nodes.
struct Shared {
  MemoryGauge gauge;
  BufferPool pool;  // recycled chunk buffers for per-block nodes
  std::atomic<bool> failed{false};
  std::atomic<bool> stopped{false};  // sink asked for an early stop
  std::atomic<bool> combine_undefined{false};
  sync::Mutex error_mu;  // unranked leaf: held only around the string copy
  std::string error GUARDED_BY(error_mu);
  std::vector<Channel*> channels;     // populated before threads start
  std::vector<Semaphore*> semaphores;
  BlockReader* reader = nullptr;      // cancelled on teardown: wakes a
                                      // node-0 read blocked on an idle pipe

  bool halted() const { return failed.load() || stopped.load(); }

  void teardown() {
    for (Channel* c : channels) c->abort();
    for (Semaphore* s : semaphores) s->cancel();
    if (reader) reader->cancel();
  }

  void fail(const std::string& message) {
    bool expected = false;
    if (failed.compare_exchange_strong(expected, true)) {
      sync::MutexLock lock(error_mu);
      error = message;
    }
    teardown();
  }

  void stop() {  // clean early exit, not an error
    stopped.store(true);
    teardown();
  }
};

using Pull = std::function<std::optional<std::string>()>;
using Push = std::function<bool(std::string&&)>;

// Re-blocks a combined stream for downstream consumption, cutting only at
// record boundaries (records longer than a block travel whole).
bool emit_blocks(std::string_view data, const Push& push,
                 const StreamConfig& config) {
  while (data.size() > config.block_size) {
    std::size_t cut = data.rfind(config.delimiter, config.block_size - 1);
    if (cut == std::string_view::npos) {
      cut = data.find(config.delimiter, config.block_size);
      if (cut == std::string_view::npos) break;
    }
    if (!push(std::string(data.substr(0, cut + 1)))) return false;
    data.remove_prefix(cut + 1);
  }
  if (!data.empty()) return push(std::string(data));
  return true;
}

// Per-parallel-segment runtime state. `completion` lets the driver wait for
// straggler pool tasks before tearing the graph down.
struct ParallelCtx {
  ParallelCtx(std::size_t inflight, MemoryGauge* gauge)
      : results(inflight + 1, gauge), slots(inflight) {}

  Channel results;
  Semaphore slots;
  std::vector<const cmd::Command*> chain;
  // Sharded segment: workers run exec::run_slice_fused over slices of
  // `slice_bytes` (cascading internally in `cascade_step` blocks) instead
  // of whole-slice Command::run hops.
  bool sharded = false;
  std::size_t slice_bytes = 0;   // the feeder's coalescing target
  std::size_t cascade_step = 0;  // block size inside a shard's cascade
  char delimiter = '\n';
  std::atomic<std::ptrdiff_t> expected{-1};  // chunk count, once known
  // Set by the collector when downstream closed its read side: the feeder
  // stops pulling (its own input channel is also read-closed, but node 0
  // pulls straight from the BlockReader, which only this flag can stop).
  std::atomic<bool> stop_input{false};

  // completion_mu is an unranked leaf: held only for counter updates, never
  // while pushing to a channel or recording a span.
  sync::Mutex completion_mu;
  sync::CondVar completion_cv;
  std::size_t tasks_submitted GUARDED_BY(completion_mu) = 0;
  std::size_t tasks_finished GUARDED_BY(completion_mu) = 0;

  void task_submitted() {
    sync::MutexLock lock(completion_mu);
    ++tasks_submitted;
  }

  std::ptrdiff_t submitted_so_far() {
    sync::MutexLock lock(completion_mu);
    return static_cast<std::ptrdiff_t>(tasks_submitted);
  }

  void task_done() {
    sync::MutexLock lock(completion_mu);
    ++tasks_finished;
    completion_cv.notify_all();
  }

  // Call only after the feeder thread has been joined (no new submissions).
  void wait_idle() {
    sync::MutexLock lock(completion_mu);
    while (tasks_finished != tasks_submitted) completion_cv.wait(lock);
  }
};

// Feeder: pulls record-aligned pieces, coalesces them toward the segment's
// chunk target (block_size, or the larger shard slice for sharded
// segments), and fans chunks out to the worker pool under the in-flight
// bound. A feeder out of slots steals queued pool tasks instead of
// sleeping, so an unlucky shard distribution can't idle workers while a
// straggler holds every slot.
void run_feeder(ParallelCtx& ctx, NodeMetrics& metrics, const Pull& pull,
                const NodeTelemetry& tele, Shared& shared,
                exec::ThreadPool& pool, const StreamConfig& config) {
  std::size_t index = 0;
  std::string buf;
  const std::size_t chunk_target =
      ctx.sharded ? ctx.slice_bytes : config.block_size;

  auto acquire_slot = [&] {
    for (;;) {
      if (ctx.slots.try_acquire()) return true;
      if (ctx.slots.cancelled()) return false;
      // No slot free: run someone else's queued task (possibly one of our
      // own in-flight slices, whose completion frees a slot). Worker
      // pushes never block — results capacity exceeds the slot count — so
      // an inlined task always terminates.
      if (!pool.try_run_one()) return ctx.slots.acquire();
    }
  };

  auto submit = [&](std::string&& data) {
    if (!acquire_slot()) return false;
    metrics.chunks += 1;
    metrics.in_bytes += data.size();
    shared.gauge.add(data.size());
    ctx.task_submitted();
    std::size_t idx = index++;
    ParallelCtx* c = &ctx;
    Shared* sh = &shared;
    const NodeTelemetry* t = &tele;
    pool.submit([data = std::move(data), idx, c, sh, t]() mutable {
      std::size_t in_size = data.size();
      try {
        // Worker span: one per pool task, on the worker's own trace row.
        // Name built only when tracing (it concatenates).
        obs::Tracer::Span span;
        if (t->tracer) {
          span = t->tracer->span(
              t->label + (c->sharded ? ": shard-slice" : ": worker-chunk"),
              "block");
          span.arg("chunk", idx);
          span.arg("bytes_in", in_size);
        }
        const auto busy_start = Clock::now();
        std::string current;
        if (c->sharded) {
          // Per-shard sub-chain: the slice cascades through fresh
          // StreamProcessors (window terminal included) in cascade_step
          // blocks — O(block + window) resident per shard, and
          // byte-identical to the Command::run hops by the streamability
          // contract.
          current = exec::run_slice_fused(c->chain, data, c->cascade_step,
                                          c->delimiter);
        } else {
          current = std::move(data);
          for (const cmd::Command* stage : c->chain)
            current = stage->run(current);
        }
        if (t->counters) {
          t->counters->shard_slices.fetch_add(1, std::memory_order_relaxed);
          t->counters->worker_busy_ns.fetch_add(
              static_cast<std::uint64_t>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(
                      Clock::now() - busy_start)
                      .count()),
              std::memory_order_relaxed);
        }
        span.arg("bytes_out", current.size());
        c->results.push(Chunk{idx, std::move(current)});
      } catch (const std::exception& e) {
        sh->fail(std::string("worker failed: ") + e.what());
      }
      sh->gauge.sub(in_size);
      c->task_done();
    });
    return true;
  };

  while (auto piece = pull()) {
    if (shared.halted() || ctx.stop_input.load()) break;
    if (buf.empty() && piece->size() >= chunk_target) {
      if (!submit(std::move(*piece))) break;
      continue;
    }
    buf += *piece;
    if (buf.size() >= chunk_target) {
      if (!submit(std::move(buf))) break;
      buf.clear();
    }
  }
  if (!shared.halted() && !ctx.stop_input.load()) {
    if (!buf.empty()) submit(std::move(buf));
    // Empty input still runs the chain once, mirroring the batch splitter's
    // single empty chunk, so f("") reaches the output.
    if (index == 0) submit(std::string());
  }
  ctx.expected.store(static_cast<std::ptrdiff_t>(index));
  ctx.results.push(Chunk{kControlChunk, {}});  // wake the collector
}

// Collector: the segment's combining tree. Restores input order, then
// either emits chunk outputs immediately (concat combiners: early handoff
// in shard order) or folds them incrementally with doubling group sizes
// (total fold work O(output · log chunks)); merge-mode combiners past the
// spill threshold hand the tree to SpillMerger. While waiting for the next
// part it steals queued pool tasks — often this segment's own straggler
// slices — so the tree keeps merging instead of idling. `out_closed`
// distinguishes a push that failed because downstream closed its read side
// (clean early exit: cancel upstream, no error) from a combine failure;
// `cancel_upstream` stops this segment's feeder and read-closes its input.
void run_collector(const Segment& seg, ParallelCtx& ctx, NodeMetrics& metrics,
                   const Push& push, const std::function<void()>& close_out,
                   const std::function<bool()>& out_closed,
                   const std::function<void()>& cancel_upstream,
                   const NodeTelemetry& tele, Shared& shared,
                   exec::ThreadPool& pool, const StreamConfig& config) {
  std::map<std::size_t, std::string> out_of_order;
  std::size_t next_emit = 0;
  std::string acc;
  bool have_acc = false;
  std::vector<std::string> group;
  std::size_t group_bytes = 0;

  // Merge-mode combiners (defer + sortable) stop deferring once the held
  // parts exceed the spill threshold: each part is a sorted run, so batches
  // spill to disk and one streaming k-way merge feeds the sink directly —
  // O(threshold) resident instead of O(sum of chunk outputs). Engaged
  // lazily so sub-threshold runs keep the exact apply_k path (including
  // composite-combiner fallback, which the spill path gives up: a part
  // failing the merge legality check below fails the run as
  // combine-undefined instead of trying a sibling combiner).
  // (Requires '\n' records: the merged result is newline-joined lines, so
  // under any other delimiter the re-blocked pushes could split records.)
  const exec::ExecStage& cstage = *seg.combine_stage;
  const bool spillable_merge =
      cstage.defer_combine && cstage.sort_spec != nullptr &&
      cstage.memory_class == exec::MemoryClass::kSortableSpill &&
      config.spill_threshold != 0 && config.delimiter == '\n';
  std::unique_ptr<SpillMerger> merger;

  // Rerun combiners concatenate all partial outputs and rerun the command
  // once (dsl::combine_k's kRerun), so past the threshold the held parts
  // spool to disk and the concatenation materializes only for that one
  // rerun — the same O(threshold)-while-draining bound as the sequential
  // materialize node.
  const bool spoolable_rerun =
      cstage.defer_combine && cstage.rerun_combiner && cstage.command &&
      config.spill_threshold != 0;
  std::unique_ptr<RawSpool> spool;

  // The merge combiner's legality predicate, as in dsl::combine_k's kMerge.
  auto mergeable_part = [&](std::string_view part) {
    return part.empty() || (text::is_stream(part) &&
                            cstage.sort_spec->is_sorted_stream(part));
  };

  auto flush_group = [&]() -> bool {
    if (group.empty()) return true;
    auto span = obs::span(tele.tracer, "combine-fold", "combine");
    span.arg("parts", group.size() + (have_acc ? 1 : 0));
    span.arg("bytes", group_bytes + acc.size());
    std::vector<std::string> parts;
    parts.reserve(group.size() + 1);
    if (have_acc) parts.push_back(std::move(acc));
    for (std::string& p : group) parts.push_back(std::move(p));
    group.clear();
    group_bytes = 0;
    std::optional<std::string> combined = seg.combine_stage->combine(parts);
    if (!combined) return false;
    acc = std::move(*combined);
    have_acc = true;
    return true;
  };

  auto spill_part = [&](std::string&& part) -> bool {
    if (!mergeable_part(part)) return false;  // combine undefined
    if (!merger->add(std::move(part))) {
      shared.fail("spill failed for stage '" +
                  cstage.command->display_name() + "': " + merger->error());
      return false;
    }
    return true;
  };

  auto spool_part = [&](std::string_view part) -> bool {
    if (!spool->add(part)) {
      shared.fail("spill failed for stage '" +
                  cstage.command->display_name() + "': " + spool->error());
      return false;
    }
    return true;
  };

  auto take_part = [&](std::string&& part) -> bool {
    if (seg.emit_concat) {
      // Concat early handoff: the part is next in shard order, so it goes
      // downstream the moment it arrives — no accumulation.
      auto span = obs::span(tele.tracer, "combine-emit", "combine");
      span.arg("bytes", part.size());
      metrics.out_bytes += part.size();
      if (part.empty()) return true;
      return push(std::move(part));
    }
    if (merger) return spill_part(std::move(part));
    if (spool) return spool_part(part);
    group_bytes += part.size();
    group.push_back(std::move(part));
    if (cstage.defer_combine) {
      // Merge/rerun combiners hold their partial outputs whole, so a single
      // k-way combine at end of stream beats incremental folding — until
      // the group outgrows the spill threshold and migrates to disk:
      // sorted runs for merge combiners, a raw spool for rerun combiners.
      // (Single parts stay on the apply_k path, which passes them through
      // unchecked; spilling engages only once there are parts to combine.)
      if (group_bytes >= config.spill_threshold && group.size() > 1) {
        if (spillable_merge) {
          merger = std::make_unique<SpillMerger>(
              cstage.sort_spec, SpillMerger::Input::kSortedParts,
              config.spill_threshold, &shared.gauge, config.io,
              tele.counters);
          merger->set_telemetry(tele.tracer, tele.label);
          for (std::string& held : group) {
            if (!spill_part(std::move(held))) return false;
          }
          group.clear();
          group_bytes = 0;
        } else if (spoolable_rerun) {
          spool = std::make_unique<RawSpool>(config.spill_threshold,
                                             &shared.gauge, config.io,
                                             tele.counters);
          spool->set_telemetry(tele.tracer, tele.label);
          for (const std::string& held : group) {
            if (!spool_part(held)) return false;
          }
          group.clear();
          group_bytes = 0;
        }
      }
      return true;
    }
    if (group_bytes >= std::max(config.block_size, acc.size()))
      return flush_group();
    return true;
  };

  bool failed_here = false;
  while (true) {
    std::ptrdiff_t expected = ctx.expected.load();
    if (expected >= 0 && next_emit == static_cast<std::size_t>(expected))
      break;
    // Work-stealing wait: drain the channel non-blocking first; when it is
    // empty, run a queued pool task (likely one of this segment's own
    // in-flight slices) instead of sleeping, and only block when the pool
    // has nothing either. Inlined tasks always terminate: worker pushes
    // never block (results capacity exceeds the slot count).
    std::optional<Chunk> chunk;
    for (;;) {
      chunk = ctx.results.try_pop();
      if (chunk) break;
      if (!pool.try_run_one()) {
        chunk = ctx.results.pop();
        break;
      }
    }
    if (!chunk) {  // aborted, or closed and drained
      failed_here = true;
      break;
    }
    if (chunk->index == kControlChunk) continue;  // nudge: recheck expected
    out_of_order[chunk->index] = std::move(chunk->bytes);
    while (!out_of_order.empty() &&
           out_of_order.begin()->first == next_emit) {
      std::string part = std::move(out_of_order.begin()->second);
      out_of_order.erase(out_of_order.begin());
      bool ok = take_part(std::move(part));
      ctx.slots.release();
      ++next_emit;
      if (!ok) {
        if (!shared.halted()) {
          if (out_closed()) {
            // Downstream has all it needs (a satisfied head, or a closed
            // sink further down): clean local stop, propagated upstream.
            if (tele.counters)
              tele.counters->note_early_exit(
                  obs::EarlyExit::kDownstreamClosed);
            cancel_upstream();
          } else {
            shared.combine_undefined.store(true);
            shared.fail("incremental combine undefined for stage '" +
                        seg.combine_stage->command->display_name() + "'");
          }
        }
        failed_here = true;
        break;
      }
    }
    if (failed_here) break;
  }

  if (!failed_here && !shared.halted()) {
    if (merger) {
      bool ok = merger->finish(
          [&](std::string&& block) {
            metrics.out_bytes += block.size();
            return push(std::move(block));
          },
          config.block_size);
      if (!ok && !shared.halted() && !out_closed())
        shared.fail("spill merge failed for stage '" +
                    cstage.command->display_name() +
                    "': " + merger->error());
    } else if (spool) {
      // The k-way rerun: run the command once over the concatenation of
      // every spooled part (mirroring dsl::combine_k's kRerun).
      std::string joined;
      if (!spool->take(&joined)) {
        shared.fail("spill failed for stage '" +
                    cstage.command->display_name() + "': " + spool->error());
      } else {
        auto span =
            obs::span(tele.tracer, tele.label + ": combine-rerun", "combine");
        span.arg("bytes_in", joined.size());
        cmd::Result rerun = cstage.command->execute(joined);
        joined.clear();
        joined.shrink_to_fit();
        if (!rerun.ok()) {
          shared.combine_undefined.store(true);
          shared.fail("incremental combine undefined for stage '" +
                      cstage.command->display_name() + "'");
        } else {
          metrics.out_bytes += rerun.out.size();
          emit_blocks(rerun.out, push, config);
        }
      }
    } else {
      bool ok = flush_group();
      if (ok && !seg.emit_concat && have_acc) {
        metrics.out_bytes += acc.size();
        ok = emit_blocks(acc, push, config);
      }
      if (!ok && !shared.halted() && !out_closed()) {
        shared.combine_undefined.store(true);
        shared.fail("incremental combine undefined for stage '" +
                    seg.combine_stage->command->display_name() + "'");
      }
    }
  }
  if (merger) {
    metrics.spilled_bytes = merger->spilled_bytes();
    metrics.spill_runs = merger->runs_spilled();
  } else if (spool) {
    metrics.spilled_bytes = spool->spilled_bytes();
  }
  if (tele.counters) {
    tele.counters->spill_runs.store(
        static_cast<std::uint64_t>(metrics.spill_runs),
        std::memory_order_relaxed);
    tele.counters->spill_bytes.store(metrics.spilled_bytes,
                                     std::memory_order_relaxed);
  }
  close_out();
}

// Sequential node. Built-in sort stages run as an external merge sort:
// bounded runs spill to disk sorted under the command's own comparator and
// stream back merged, byte-identical to running the command whole (the
// spec *is* the command) at O(threshold) resident. Everything else drains
// through a raw spool (disk past the spill threshold), runs the stage once
// on the whole stream — the floor for a black-box command — and re-blocks
// the output for downstream nodes.
void run_sequential(const Segment& seg, NodeMetrics& metrics, const Pull& pull,
                    const Push& push, const std::function<void()>& close_out,
                    const std::function<bool()>& out_closed,
                    const std::function<void()>& cancel_upstream,
                    const NodeTelemetry& tele, Shared& shared,
                    const StreamConfig& config) {
  const exec::ExecStage& stage = *seg.chain.front();
  // A dead downstream makes the whole drain-and-execute pointless: poll the
  // output side while pulling so a closed sink stops a materialize stage
  // mid-drain too, and propagate the close to our own upstream.
  bool abandoned = false;
  // External sorting needs the command's *own* spec and '\n' records (sort
  // is line-based). A plan-sequential sortable stage carries its own spec
  // in sort_spec (lower_plan); a plan-parallel stage forced sequential by
  // runtime parallelism carries its *merge* spec there, which orders f's
  // outputs, not raw input — re-derive the command's own spec for it (null
  // for non-sort commands, which then materialize below).
  std::shared_ptr<const cmd::SortSpec> spec;
  if (stage.memory_class == exec::MemoryClass::kSortableSpill &&
      config.delimiter == '\n' && stage.command)
    spec = stage.parallel ? cmd::sort_spec_of(*stage.command)
                          : stage.sort_spec;

  if (spec) {
    SpillMerger sorter(std::move(spec), SpillMerger::Input::kUnsortedBlocks,
                       config.spill_threshold, &shared.gauge, config.io,
                       tele.counters);
    sorter.set_telemetry(tele.tracer, tele.label);
    bool ok = true;
    while (auto piece = pull()) {
      if (shared.halted()) break;
      if (out_closed()) {
        abandoned = true;
        break;
      }
      metrics.chunks += 1;
      metrics.in_bytes += piece->size();
      if (!sorter.add(std::move(*piece))) {
        ok = false;
        break;
      }
    }
    if (abandoned) {
      if (tele.counters)
        tele.counters->note_early_exit(obs::EarlyExit::kDownstreamClosed);
      cancel_upstream();
    }
    if (ok && !abandoned && !shared.halted()) {
      ok = sorter.finish(
          [&](std::string&& block) {
            metrics.out_bytes += block.size();
            return push(std::move(block));
          },
          config.block_size);
      // A push that failed because the consumer closed mid-merge is the
      // downstream-closed early exit, not a sort failure (the !out_closed()
      // guard below already keeps it out of shared.fail).
      if (!ok && out_closed() && tele.counters)
        tele.counters->note_early_exit(obs::EarlyExit::kDownstreamClosed);
    }
    metrics.spilled_bytes = sorter.spilled_bytes();
    metrics.spill_runs = sorter.runs_spilled();
    if (tele.counters) {
      tele.counters->spill_runs.store(
          static_cast<std::uint64_t>(metrics.spill_runs),
          std::memory_order_relaxed);
      tele.counters->spill_bytes.store(metrics.spilled_bytes,
                                       std::memory_order_relaxed);
    }
    if (!ok && !shared.halted() && !out_closed())
      shared.fail("external sort failed for stage '" +
                  stage.command->display_name() + "': " + sorter.error());
    close_out();
    return;
  }

  RawSpool spool(config.spill_threshold, &shared.gauge, config.io,
                 tele.counters);
  spool.set_telemetry(tele.tracer, tele.label);
  bool ok = true;
  while (auto piece = pull()) {
    if (shared.halted()) break;
    if (out_closed()) {
      abandoned = true;
      break;
    }
    metrics.chunks += 1;
    metrics.in_bytes += piece->size();
    if (!spool.add(*piece)) {
      ok = false;
      break;
    }
  }
  if (abandoned) {
    if (tele.counters)
      tele.counters->note_early_exit(obs::EarlyExit::kDownstreamClosed);
    cancel_upstream();
  }
  if (!shared.halted() && !abandoned) {
    metrics.spilled_bytes = spool.spilled_bytes();
    if (tele.counters)
      tele.counters->spill_bytes.store(metrics.spilled_bytes,
                                       std::memory_order_relaxed);
    std::string all;
    if (ok) ok = spool.take(&all);
    if (!ok) {
      shared.fail("input spool failed for stage '" + seg.display() +
                  "': " + spool.error());
    } else {
      auto span = obs::span(tele.tracer, tele.label + ": execute", "node");
      span.arg("bytes_in", all.size());
      std::string out = stage.command->run(all);
      all.clear();
      all.shrink_to_fit();
      metrics.out_bytes = out.size();
      if (!emit_blocks(out, push, config) && out_closed() && tele.counters)
        tele.counters->note_early_exit(obs::EarlyExit::kDownstreamClosed);
    }
  }
  close_out();
}

// Per-block stream-chain node: the fused run of declared-streamable stages
// (exec::MemoryClass::kStatelessStream). Each pulled block cascades through
// the chain's StreamProcessors and the final output is pushed downstream —
// nothing is accumulated, so the node holds O(block) regardless of input
// size. When a prefix-bounded processor (head) reports its output complete,
// the node stops pulling and cancels upstream so the whole graph behind it
// (ultimately the BlockReader) stops; when downstream closes, the same
// cancellation propagates backward. Chain-intermediate buffers are reused
// across blocks, consumed input blocks return to the shared pool, and push
// buffers come from it — stateful processors (tr, sed, head) then append
// into recycled capacity; PerBlockProcessor-backed stages still pay their
// execute()'s internal allocation, which the pool cannot reach.
void run_stream_chain(const Segment& seg, NodeMetrics& metrics,
                      const Pull& pull, const Push& push,
                      const std::function<void()>& close_out,
                      const std::function<bool()>& out_closed,
                      const std::function<void()>& cancel_upstream,
                      const NodeTelemetry& tele, Shared& shared,
                      const StreamConfig& config) {
  // Pool-effectiveness counters, threaded into every acquire below (null
  // when stats are off — BufferPool then skips the bumps).
  std::atomic<std::uint64_t>* pool_hits =
      tele.counters ? &tele.counters->pool_hits : nullptr;
  std::atomic<std::uint64_t>* pool_misses =
      tele.counters ? &tele.counters->pool_misses : nullptr;
  const std::size_t n = seg.chain.size();
  // A window terminal (seg.window) absorbs the chain's output into a
  // WindowProcessor instead of pushing it; the first m stages are ordinary
  // per-block StreamProcessors.
  const std::size_t m = seg.window ? n - 1 : n;
  std::vector<std::unique_ptr<cmd::StreamProcessor>> procs;
  procs.reserve(m);
  for (std::size_t j = 0; j < m; ++j) {
    auto p = seg.chain[j]->command->stream_processor();
    if (!p) {  // classification bug; fail loudly rather than drop data
      shared.fail("stage '" + seg.chain[j]->command->display_name() +
                  "' classified streamable but has no stream processor");
      close_out();
      return;
    }
    procs.push_back(std::move(p));
  }
  const exec::ExecStage* wstage = seg.window ? seg.chain.back() : nullptr;
  std::unique_ptr<cmd::WindowProcessor> window;
  if (wstage) {
    window = wstage->command->window_processor();
    if (!window) {
      shared.fail("stage '" + wstage->command->display_name() +
                  "' classified window-bounded but has no window processor");
      close_out();
      return;
    }
  }

  // A sort -u window whose distinct set outgrows the spill threshold
  // exports sorted runs to disk (the window state is itself a sorted -u
  // stream) and re-streams the k-way merge at end of input — the same
  // external-merge bound as kSortableSpill, reached only when the window
  // stops being small. The merge needs the command's *own* spec: a
  // plan-parallel stage forced sequential at k = 1 carries its combiner's
  // merge spec in sort_spec (it orders f's outputs, not raw input), so
  // re-derive for it — the same rule run_sequential applies.
  std::shared_ptr<const cmd::SortSpec> wspec;
  if (wstage && config.spill_threshold != 0)
    wspec = wstage->parallel ? cmd::sort_spec_of(*wstage->command)
                             : wstage->sort_spec;
  bool window_spillable = wspec != nullptr;
  std::unique_ptr<SpillMerger> merger;
  auto spill_window = [&]() -> bool {
    if (!window_spillable ||
        window->state_bytes() < config.spill_threshold)
      return true;
    std::string run;
    if (!window->drain_sorted_run(&run)) {
      window_spillable = false;  // processor keeps its state resident
      return true;
    }
    if (!merger) {
      merger = std::make_unique<SpillMerger>(
          wspec, SpillMerger::Input::kSortedParts, config.spill_threshold,
          &shared.gauge, config.io, tele.counters);
      merger->set_telemetry(tele.tracer, tele.label);
    }
    if (!merger->add(std::move(run))) {
      shared.fail("spill failed for stage '" +
                  wstage->command->display_name() + "': " + merger->error());
      return false;
    }
    return true;
  };

  std::vector<std::string> bufs(m);      // intermediates, reused per block
  std::vector<bool> done(m, false);      // output complete (kPrefix bound)
  bool pushed_ok = true;

  // Cascades `data` through processors [from, m); the result is absorbed
  // by the window terminal when there is one, pushed downstream otherwise.
  // from == m delivers `data` itself (finish() tails).
  auto feed = [&](std::string_view data, std::size_t from) -> bool {
    std::string_view cur = data;
    std::string out;  // pooled buffer holding the final emission
    bool have_out = false;
    for (std::size_t j = from; j < m; ++j) {
      if (done[j]) return true;  // complete: the rest of the chain saw all
      std::string* target = &bufs[j];
      if (!window && j + 1 == m) {
        out = shared.pool.acquire(pool_hits, pool_misses);
        target = &out;
        have_out = true;
      }
      target->clear();
      if (!procs[j]->process(cur, target)) done[j] = true;
      cur = *target;
    }
    if (window) {
      if (cur.empty()) return true;
      out = shared.pool.acquire(pool_hits, pool_misses);
      window->push(cur, &out);  // emits only what later input can't change
      if (!spill_window()) {
        shared.pool.release(std::move(out));
        return false;
      }
      if (out.empty()) {
        shared.pool.release(std::move(out));
        return true;
      }
    } else {
      if (cur.empty()) {
        if (have_out) shared.pool.release(std::move(out));
        return true;
      }
      if (!have_out) out.assign(cur);
    }
    const std::size_t pushed = out.size();
    if (!push(std::move(out))) return false;
    metrics.out_bytes += pushed;  // count only what downstream accepted
    return true;
  };

  auto input_done = [&] {
    for (std::size_t j = 0; j < m; ++j)
      if (done[j]) return true;  // some stage needs no further input
    return false;
  };

  bool down_closed = false;
  while (!input_done()) {
    auto piece = pull();
    if (!piece) break;
    if (shared.halted()) break;
    if (out_closed()) {
      down_closed = true;
      break;
    }
    metrics.chunks += 1;
    metrics.in_bytes += piece->size();
    {
      auto span = obs::span(tele.tracer, "process-block", "block");
      span.arg("bytes", piece->size());
      pushed_ok = feed(*piece, 0);
    }
    shared.pool.release(std::move(*piece));
    if (!pushed_ok) {
      if (!shared.halted() && out_closed()) down_closed = true;
      break;
    }
  }

  const bool early = input_done();
  if (tele.counters) {
    if (early)
      tele.counters->note_early_exit(obs::EarlyExit::kPrefixSatisfied);
    else if (down_closed)
      tele.counters->note_early_exit(obs::EarlyExit::kDownstreamClosed);
  }
  if ((early || down_closed) && !shared.halted()) cancel_upstream();

  if (pushed_ok && !down_closed && !shared.halted()) {
    // End-of-input flush: tail state of each still-open processor cascades
    // through the rest of the chain (and into the window terminal). Stages
    // before a completed one are skipped — their output could only feed a
    // stage that needs nothing.
    std::size_t first = 0;
    while (first < m && !done[first]) ++first;
    std::string tail;
    bool flushed_ok = true;
    for (std::size_t j = (first < m ? first + 1 : 0); j < m; ++j) {
      if (done[j]) continue;
      tail.clear();
      procs[j]->finish(&tail);
      if (!tail.empty() && !feed(tail, j + 1)) {
        flushed_ok = false;
        break;
      }
    }
    if (window && flushed_ok && !shared.halted()) {
      if (merger) {
        // Spilled window: seal any cross-record residue into the window
        // state (a fused top-k's pending uniq run; plain windows no-op),
        // the resident remainder becomes the final sorted run, and the
        // external k-way merge re-streams the result — capped at the
        // window's output limit (a fused top-n emits only its first N
        // records of the merged union).
        auto span = obs::span(tele.tracer, "window-seal", "window");
        std::string sealed;
        window->seal(&sealed);
        bool ok = true;
        if (!sealed.empty()) {
          const std::size_t pushed = sealed.size();
          ok = push(std::move(sealed));
          if (ok) metrics.out_bytes += pushed;
        }
        std::string last;
        if (ok && window->drain_sorted_run(&last) && !last.empty())
          ok = merger->add(std::move(last));
        const std::optional<std::size_t> limit = window->output_limit();
        std::size_t remaining = limit.value_or(0);
        if (ok)
          ok = merger->finish(
              [&](std::string&& block) {
                bool more = true;
                if (limit) {
                  // Trim to the first `remaining` records. Merged blocks
                  // are record-aligned, so counting '\n' is exact.
                  std::size_t pos = 0, records = 0;
                  while (pos < block.size() && records < remaining) {
                    std::size_t nl = block.find('\n', pos);
                    pos = nl == std::string::npos ? block.size() : nl + 1;
                    ++records;
                  }
                  block.resize(pos);
                  remaining -= records;
                  more = remaining > 0;
                }
                if (block.empty()) return more;
                metrics.out_bytes += block.size();
                if (!push(std::move(block))) return false;
                return more;
              },
              config.block_size);
        if (!ok && !shared.halted() && !out_closed())
          shared.fail("spill merge failed for stage '" +
                      wstage->command->display_name() +
                      "': " + merger->error());
      } else {
        // Window flush: emission stops the moment downstream closes —
        // cancellation propagates through finish().
        auto span = obs::span(tele.tracer, "window-finish", "window");
        window->finish([&](std::string_view piece) {
          if (piece.empty()) return true;
          if (shared.halted() || out_closed()) return false;
          std::string out = shared.pool.acquire(pool_hits, pool_misses);
          out.assign(piece);
          const std::size_t pushed = out.size();
          if (!push(std::move(out))) return false;
          metrics.out_bytes += pushed;
          return true;
        });
      }
    }
  }
  if (merger) {
    metrics.spilled_bytes = merger->spilled_bytes();
    metrics.spill_runs = merger->runs_spilled();
    if (tele.counters) {
      tele.counters->spill_runs.store(
          static_cast<std::uint64_t>(metrics.spill_runs),
          std::memory_order_relaxed);
      tele.counters->spill_bytes.store(metrics.spilled_bytes,
                                       std::memory_order_relaxed);
    }
  }
  close_out();
}

StreamConfig sanitize(StreamConfig config) {
  if (config.parallelism < 1) config.parallelism = 1;
  if (config.block_size == 0) config.block_size = 1;
  if (config.max_inflight == 0)
    config.max_inflight =
        2 * static_cast<std::size_t>(config.parallelism) + 2;
  // Resolve kAuto once so every spill file and the result label agree on
  // the backend (KQ_IO_BACKEND / kernel probe; see src/io/engine.h).
  config.io.backend = io::resolve_backend(config.io.backend);
  return config;
}

// The memory class the runtime *actually* gives this node — mirrors the
// dispatch in run_streaming_core/run_sequential rather than echoing the
// plan's label (a plan-sortable stage under a custom delimiter
// materializes; a parallel segment's residency is its combiner's).
const char* node_memory_label(const Segment& seg, const StreamConfig& config) {
  if (seg.window) return "window-stream";
  if (seg.stream) return "stateless-stream";
  if (seg.parallel) {
    if (seg.sharded) {
      // Shard workers hold O(block + window) each; the combining tree's
      // residency is the combiner's (concat streams, merge spills).
      switch (seg.combine_stage->memory_class) {
        case exec::MemoryClass::kSortableSpill: return "sharded-spill-merge";
        case exec::MemoryClass::kStreaming: return "sharded-streaming";
        default: return "sharded";
      }
    }
    return exec::memory_class_name(seg.combine_stage->memory_class);
  }
  const exec::ExecStage& stage = *seg.chain.front();
  if (stage.memory_class == exec::MemoryClass::kSortableSpill &&
      config.delimiter == '\n' && stage.command)
    return "sortable-spill";
  return "materialize";
}

StreamResult run_streaming_core(const std::vector<exec::ExecStage>& stages,
                                BlockReader& reader, const Sink& sink,
                                exec::ThreadPool& pool,
                                const StreamConfig& raw_config) {
  const StreamConfig config = sanitize(raw_config);
  StreamResult result;
  result.io_backend = io::backend_name(config.io.backend);
  auto start = Clock::now();

  auto read_error_message = [&config](int err) {
    if (err == EMSGSIZE)
      return "input record larger than the spill threshold (" +
             std::to_string(config.spill_threshold) +
             " bytes) with no delimiter in sight; raise --spill-threshold "
             "or check --delimiter: output truncated";
    return "input read error (errno " + std::to_string(err) +
           "): output truncated";
  };

  if (stages.empty()) {  // identity pipeline: forward blocks
    while (auto block = reader.next()) {
      if (!sink(*block)) {
        result.stopped_early = true;
        break;
      }
    }
    if (!result.stopped_early && reader.error() != 0) {
      result.ok = false;
      result.error = read_error_message(reader.error());
    }
    result.bytes_read = reader.bytes_delivered();
    result.seconds = seconds_since(start);
    return result;
  }

  std::vector<Segment> segments = build_segments(stages, config);
  const std::size_t n = segments.size();

  Shared shared;
  shared.reader = &reader;
  if (config.tracer) reader.set_tracer(config.tracer);
  // The pool may retain at most one in-flight budget of free capacity:
  // enough for steady-state circulation, without letting a release-heavy
  // node (a window absorbing blocks and emitting nothing) park the whole
  // stream's blocks as dead pool capacity.
  shared.pool.set_budget(config.max_inflight * config.block_size);
  std::vector<std::unique_ptr<Channel>> links;  // segment i -> i+1
  for (std::size_t i = 0; i + 1 < n; ++i)
    links.push_back(
        std::make_unique<Channel>(config.max_inflight, &shared.gauge));

  std::vector<std::unique_ptr<ParallelCtx>> ctxs(n);
  // One telemetry bundle per node; counters allocate only under stats so
  // the disabled run carries null pointers everywhere.
  std::vector<std::unique_ptr<obs::StageCounters>> counters;
  std::vector<NodeTelemetry> teles(n);
  if (config.stats) {
    counters.resize(n);
    reader.enable_wait_timing();
  }
  result.nodes.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    result.nodes[i].commands = segments[i].display();
    result.nodes[i].parallel = segments[i].parallel;
    result.nodes[i].streamed_combine = segments[i].emit_concat;
    result.nodes[i].per_block = segments[i].stream;
    result.nodes[i].window = segments[i].window;
    result.nodes[i].sharded = segments[i].sharded;
    if (config.stats) {
      counters[i] = std::make_unique<obs::StageCounters>();
      teles[i].counters = counters[i].get();
      result.nodes[i].memory = node_memory_label(segments[i], config);
    }
    teles[i].tracer = config.tracer;
    teles[i].label = result.nodes[i].commands;
    if (segments[i].parallel) {
      // Sharded segments fan out in slices larger than a block (fewer
      // combine-tree parts, fewer processor setups) and scale the in-flight
      // slot count down to keep the same byte budget
      // (max_inflight · block_size); the floor of parallelism + 1 slots
      // keeps every worker busy plus one slice queued.
      std::size_t inflight = config.max_inflight;
      std::size_t slice = config.block_size;
      if (segments[i].sharded) {
        slice = config.shard_slice != 0 ? config.shard_slice
                                        : 2 * config.block_size;
        if (slice < config.block_size) slice = config.block_size;
        const std::size_t budget = config.max_inflight * config.block_size;
        inflight = std::max<std::size_t>(
            static_cast<std::size_t>(config.parallelism) + 1,
            (budget + slice - 1) / slice);
        result.nodes[i].shard_slice_bytes = slice;
      }
      ctxs[i] = std::make_unique<ParallelCtx>(inflight, &shared.gauge);
      ctxs[i]->sharded = segments[i].sharded;
      ctxs[i]->slice_bytes = slice;
      ctxs[i]->cascade_step = config.block_size;
      ctxs[i]->delimiter = config.delimiter;
      for (const exec::ExecStage* s : segments[i].chain)
        ctxs[i]->chain.push_back(s->command.get());
      // A feeder stalled on the in-flight bound is send-blocked: its
      // output backpressure arrives through the slot semaphore.
      if (config.stats)
        ctxs[i]->slots.set_telemetry(&counters[i]->send_blocked_ns);
    }
  }
  if (config.stats) {
    // Node 0 pulls straight from the reader: its fd-source engine's
    // sqe_batches/cqe_waits belong to node 0's counters (null engine for
    // istream sources; spill engines attach in their constructors).
    if (reader.engine()) reader.engine()->set_counters(counters[0].get());
    // links[i] connects node i's push side to node i+1's pull side. All
    // telemetry wiring (these calls, the semaphore attach above, and
    // reader.enable_wait_timing/set_tracer) completes before the `threads`
    // vector below spawns anything — and set_telemetry takes the channel
    // lock besides, so even a late attach would be race-free (it would
    // just miss waits that already happened).
    for (std::size_t i = 0; i + 1 < n; ++i)
      links[i]->set_telemetry(&counters[i]->send_blocked_ns,
                              &counters[i + 1]->recv_blocked_ns);
  }
  for (const auto& link : links) shared.channels.push_back(link.get());
  for (const auto& ctx : ctxs) {
    if (ctx) {
      shared.channels.push_back(&ctx->results);
      shared.semaphores.push_back(&ctx->slots);
    }
  }

  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < n; ++i) {
    Pull pull;
    if (i == 0) {
      pull = [&reader] { return reader.next(); };
    } else {
      Channel* in = links[i - 1].get();
      pull = [in]() -> std::optional<std::string> {
        std::optional<Chunk> c = in->pop();
        if (!c) return std::nullopt;
        return std::move(c->bytes);
      };
    }
    Push push;
    std::function<void()> close_out;
    std::function<bool()> out_closed;
    if (i + 1 == n) {
      push = [&sink, &shared](std::string&& bytes) {
        if (sink(bytes)) return true;
        shared.stop();  // sink asked to stop: clean teardown, still ok
        return false;
      };
      close_out = [] {};
      out_closed = [&shared] { return shared.stopped.load(); };
    } else {
      Channel* out = links[i].get();
      auto ordinal = std::make_shared<std::size_t>(0);
      push = [out, ordinal](std::string&& bytes) {
        return out->push(Chunk{(*ordinal)++, std::move(bytes)});
      };
      close_out = [out] { out->close(); };
      out_closed = [out] { return out->read_closed(); };
    }
    // Upstream cancellation: read-close the incoming channel (wakes a
    // blocked producer, whose failed push cascades the close further up)
    // and stop this segment's own feeder if it has one. The BlockReader is
    // cancelled outright — in a linear pipeline a close anywhere makes
    // everything upstream moot, and the reader's fd source polls, so even
    // a node-0 read blocked on an idle pipe wakes within one poll tick
    // instead of at the next (possibly never-arriving) block boundary.
    Channel* in_link = i > 0 ? links[i - 1].get() : nullptr;
    ParallelCtx* ctx_ptr = ctxs[i].get();
    BlockReader* reader_ptr = &reader;
    std::function<void()> cancel_upstream = [in_link, ctx_ptr, reader_ptr] {
      if (ctx_ptr) {
        ctx_ptr->stop_input.store(true);
        ctx_ptr->slots.cancel();
      }
      if (in_link) in_link->close_read();
      reader_ptr->cancel();
    };

    const Segment& seg = segments[i];
    NodeMetrics& metrics = result.nodes[i];
    const NodeTelemetry& tele = teles[i];

    // Stats wrappers: count blocks/bytes/records crossing the node's
    // boundaries without touching the node implementations. Pulled blocks
    // are record-aligned (BlockReader/emit_blocks cut at delimiters), so
    // per-block record counts sum exactly; pushes count only what
    // downstream accepted.
    if (tele.counters) {
      obs::StageCounters* sc = tele.counters;
      const char delim = config.delimiter;
      Pull base_pull = std::move(pull);
      pull = [base_pull = std::move(base_pull), sc,
              delim]() -> std::optional<std::string> {
        std::optional<std::string> piece = base_pull();
        if (piece) {
          sc->blocks.fetch_add(1, std::memory_order_relaxed);
          sc->bytes_in.fetch_add(piece->size(), std::memory_order_relaxed);
          sc->records_in.fetch_add(obs::count_records(*piece, delim),
                                   std::memory_order_relaxed);
        }
        return piece;
      };
      Push base_push = std::move(push);
      push = [base_push = std::move(base_push), sc,
              delim](std::string&& bytes) {
        const std::uint64_t out_bytes = bytes.size();
        const std::uint64_t out_records = obs::count_records(bytes, delim);
        if (!base_push(std::move(bytes))) return false;
        sc->bytes_out.fetch_add(out_bytes, std::memory_order_relaxed);
        sc->records_out.fetch_add(out_records, std::memory_order_relaxed);
        return true;
      };
    }

    if (seg.parallel) {
      ParallelCtx& ctx = *ctxs[i];
      threads.emplace_back(
          [&ctx, &metrics, pull, &tele, &shared, &pool, &config] {
            if (tele.tracer)
              tele.tracer->set_thread_name(tele.label + " (feeder)");
            auto span =
                obs::span(tele.tracer, "node: " + tele.label, "node");
            try {
              run_feeder(ctx, metrics, pull, tele, shared, pool, config);
            } catch (const std::exception& e) {
              shared.fail(std::string("feeder failed: ") + e.what());
              ctx.expected.store(ctx.submitted_so_far());
            }
          });
      threads.emplace_back([&seg, &ctx, &metrics, push, close_out, out_closed,
                            cancel_upstream, &tele, &shared, &pool, &config,
                            start] {
        if (tele.tracer)
          tele.tracer->set_thread_name(tele.label + " (collector)");
        auto span = obs::span(tele.tracer, "node: " + tele.label, "node");
        try {
          run_collector(seg, ctx, metrics, push, close_out, out_closed,
                        cancel_upstream, tele, shared, pool, config);
        } catch (const std::exception& e) {
          shared.fail(std::string("collector failed: ") + e.what());
          close_out();
        }
        metrics.seconds = seconds_since(start);
      });
    } else if (seg.stream) {
      threads.emplace_back([&seg, &metrics, pull, push, close_out, out_closed,
                            cancel_upstream, &tele, &shared, &config, start] {
        if (tele.tracer) tele.tracer->set_thread_name(tele.label);
        auto span = obs::span(tele.tracer, "node: " + tele.label, "node");
        try {
          run_stream_chain(seg, metrics, pull, push, close_out, out_closed,
                           cancel_upstream, tele, shared, config);
        } catch (const std::exception& e) {
          shared.fail(std::string("stream stage failed: ") + e.what());
          close_out();
        }
        metrics.seconds = seconds_since(start);
      });
    } else {
      threads.emplace_back([&seg, &metrics, pull, push, close_out, out_closed,
                            cancel_upstream, &tele, &shared, &config, start] {
        if (tele.tracer) tele.tracer->set_thread_name(tele.label);
        auto span = obs::span(tele.tracer, "node: " + tele.label, "node");
        try {
          run_sequential(seg, metrics, pull, push, close_out, out_closed,
                         cancel_upstream, tele, shared, config);
        } catch (const std::exception& e) {
          shared.fail(std::string("stage failed: ") + e.what());
          close_out();
        }
        metrics.seconds = seconds_since(start);
      });
    }
  }

  for (std::thread& t : threads) t.join();
  // Feeder threads are joined, so submission counts are final; wait out any
  // straggler pool tasks before the contexts go out of scope.
  for (const auto& ctx : ctxs) {
    if (ctx) ctx->wait_idle();
  }

  result.ok = !shared.failed.load();
  result.stopped_early = shared.stopped.load();
  result.combine_undefined = shared.combine_undefined.load();
  result.bytes_read = reader.bytes_delivered();
  if (!result.ok) {
    sync::MutexLock lock(shared.error_mu);
    result.error = shared.error;
  } else if (!result.stopped_early && reader.error() != 0) {
    // The source died mid-stream: everything downstream completed over a
    // truncated prefix, which must not pass as success.
    result.ok = false;
    result.error = read_error_message(reader.error());
  }
  result.peak_inflight_bytes = shared.gauge.peak();
  for (const NodeMetrics& node : result.nodes)
    result.spilled_bytes += node.spilled_bytes;
  if (config.stats) {
    // Every writer thread has been joined (and every pool task waited
    // out), so relaxed loads observe the final totals.
    for (std::size_t i = 0; i < n; ++i) {
      NodeMetrics& m = result.nodes[i];
      const obs::StageCounters& c = *counters[i];
      m.records_in = c.records_in.load(std::memory_order_relaxed);
      m.records_out = c.records_out.load(std::memory_order_relaxed);
      m.send_blocked_ns = c.send_blocked_ns.load(std::memory_order_relaxed);
      m.recv_blocked_ns = c.recv_blocked_ns.load(std::memory_order_relaxed);
      m.pool_hits = c.pool_hits.load(std::memory_order_relaxed);
      m.pool_misses = c.pool_misses.load(std::memory_order_relaxed);
      m.shard_slices = c.shard_slices.load(std::memory_order_relaxed);
      m.worker_busy_ns = c.worker_busy_ns.load(std::memory_order_relaxed);
      m.sqe_batches = c.sqe_batches.load(std::memory_order_relaxed);
      m.cqe_waits = c.cqe_waits.load(std::memory_order_relaxed);
      m.early_exit = obs::early_exit_name(c.early_exit_cause());
    }
    // Node 0 pulls straight from the BlockReader: its input-side blocked
    // time is the reader's poll waits, not a channel's.
    result.nodes[0].recv_blocked_ns += reader.wait_ns();
  }
  result.seconds = seconds_since(start);
  return result;
}

// Shared by every entry point: a record that cannot even be buffered
// within the spill budget fails loudly (EMSGSIZE) rather than growing
// pending_ without bound.
BlockReaderOptions reader_options(const StreamConfig& config) {
  return {config.block_size == 0 ? 1 : config.block_size, config.delimiter,
          config.spill_threshold};
}

Sink ostream_sink(std::ostream& output) {
  return [&output](std::string_view bytes) {
    output.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    return static_cast<bool>(output);
  };
}

}  // namespace

StreamResult run_streaming(const std::vector<exec::ExecStage>& stages,
                           std::istream& input, const Sink& sink,
                           exec::ThreadPool& pool,
                           const StreamConfig& config) {
  BlockReader reader(input, reader_options(config));
  return run_streaming_core(stages, reader, sink, pool, config);
}

StreamResult run_streaming(const std::vector<exec::ExecStage>& stages,
                           std::istream& input, std::ostream& output,
                           exec::ThreadPool& pool,
                           const StreamConfig& config) {
  return run_streaming(stages, input, ostream_sink(output), pool, config);
}

StreamResult run_streaming_fd(const std::vector<exec::ExecStage>& stages,
                              int input_fd, const Sink& sink,
                              exec::ThreadPool& pool,
                              const StreamConfig& config) {
  // The fd source's engine is built from the run's IoOptions so backend
  // overrides and the fault seam reach the source path, not just spills.
  std::unique_ptr<io::Engine> engine = io::make_engine(config.io);
  BlockReader reader(input_fd, engine.get(), reader_options(config));
  return run_streaming_core(stages, reader, sink, pool, config);
}

StreamResult run_streaming_fd(const std::vector<exec::ExecStage>& stages,
                              int input_fd, std::ostream& output,
                              exec::ThreadPool& pool,
                              const StreamConfig& config) {
  return run_streaming_fd(stages, input_fd, ostream_sink(output), pool,
                          config);
}

StreamResult run_streaming_string(const std::vector<exec::ExecStage>& stages,
                                  std::string_view input, std::string* output,
                                  exec::ThreadPool& pool,
                                  const StreamConfig& config) {
  std::istringstream in{std::string(input)};
  std::string collected;
  Sink sink = [&collected](std::string_view bytes) {
    collected.append(bytes);
    return true;
  };
  StreamResult result = run_streaming(stages, in, sink, pool, config);
  if (!result.ok && result.combine_undefined) {
    // The batch runner's combine-fallback guard: incremental combination
    // proved undefined on these chunk outputs, so rerun in memory where the
    // original input is still available. Other failures propagate as !ok.
    exec::RunConfig batch{config.parallelism, config.use_elimination};
    exec::RunResult rerun = exec::run_pipeline(stages, input, pool, batch);
    collected = std::move(rerun.output);
    result.ok = true;
    result.batch_fallback = true;
  }
  *output = std::move(collected);
  return result;
}

}  // namespace kq::stream
