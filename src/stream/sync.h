// Capability-annotated synchronization primitives for the concurrent
// runtime. Every mutex and condition variable in src/stream, src/exec and
// src/obs goes through the wrappers below, so Clang's -Wthread-safety
// capability analysis can prove — at compile time, for all interleavings —
// that each access to GUARDED_BY state happens under its lock and that
// every REQUIRES contract is met at every call site. Under GCC (the
// default local toolchain) the annotation macros expand to nothing and the
// wrappers cost exactly what the std primitives they hold cost; the
// clang-threadsafety CI job is the gate that keeps the annotations true.
//
// Conventions (full prose in docs/CONCURRENCY.md):
//   - Mutable state shared between threads is either std::atomic or
//     GUARDED_BY a Mutex. No third category.
//   - Private helpers that assume a held lock are annotated REQUIRES(mu)
//     instead of carrying a "caller must hold mu" comment.
//   - The escape hatch, ts_unchecked_read, is for reads the analysis
//     cannot see are ordered (e.g. a read after the writing thread was
//     joined). Every use must carry a written invariant naming the
//     happens-before edge it relies on.
//
// Lock ranks: the one property capability analysis cannot check is lock
// *order*. The runtime's discipline is a two-level rank —
//     LockRank::kChannel (Channel/Semaphore/BufferPool, and any other leaf
//         lock that never acquires another lock underneath)
//   < LockRank::kTracerShard (obs::Tracer shard and thread-name locks)
// — acquiring a lock of rank <= the highest rank already held on this
// thread aborts in checked builds (!NDEBUG, or -DKQ_LOCK_RANK_CHECKS which
// the TSan CI job sets so the assertion runs under CI's RelWithDebInfo).
// Unranked locks (LockRank::kNone) opt out: they are leaves that provably
// never nest with ranked locks (e.g. exec::ThreadPool's queue lock, which
// is released before any task body runs).
#pragma once

#include <cassert>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <shared_mutex>

// ------------------------------------------------------------- attributes --
// The standard Clang thread-safety attribute spellings (see
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). Non-Clang
// compilers see empty macros.
#if defined(__clang__) && !defined(SWIG)
#define KQ_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define KQ_THREAD_ANNOTATION__(x)
#endif

// Declares a class to be a capability (a lock the analysis tracks).
#define CAPABILITY(x) KQ_THREAD_ANNOTATION__(capability(x))
// Declares an RAII class that acquires on construction, releases on
// destruction.
#define SCOPED_CAPABILITY KQ_THREAD_ANNOTATION__(scoped_lockable)
// Data members: may only be read/written while holding the capability.
#define GUARDED_BY(x) KQ_THREAD_ANNOTATION__(guarded_by(x))
// Pointer members: the pointee (not the pointer) is guarded.
#define PT_GUARDED_BY(x) KQ_THREAD_ANNOTATION__(pt_guarded_by(x))
// Functions: the caller must hold the capability (exclusively / shared).
#define REQUIRES(...) \
  KQ_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  KQ_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))
// Functions: acquire/release the capability (exclusively / shared).
#define ACQUIRE(...) KQ_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  KQ_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) KQ_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  KQ_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
// Functions: acquire only on a `true` (or as declared) return value.
#define TRY_ACQUIRE(...) \
  KQ_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
// Functions: the caller must NOT hold the capability (deadlock guard for
// public entry points of a class that locks internally).
#define EXCLUDES(...) KQ_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
// Functions: runtime-assert the capability is held (teaches the analysis a
// fact it cannot derive).
#define ASSERT_CAPABILITY(x) KQ_THREAD_ANNOTATION__(assert_capability(x))
// Functions returning a reference to a capability (lets callers write
// GUARDED_BY(obj.mutex())).
#define RETURN_CAPABILITY(x) KQ_THREAD_ANNOTATION__(lock_returned(x))
// Last resort: skip analysis of one function body entirely. Prefer
// ts_unchecked_read for single reads.
#define NO_THREAD_SAFETY_ANALYSIS \
  KQ_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace kq::sync {

// ------------------------------------------------------------ lock ranks --
// See the header comment. Ranked acquisition order is strictly increasing;
// kNone opts a lock out of checking.
enum class LockRank : int {
  kNone = -1,
  kChannel = 0,      // stream::Channel / Semaphore / BufferPool
  kTracerShard = 1,  // obs::Tracer shard + thread-name locks
};

#if !defined(NDEBUG) || defined(KQ_LOCK_RANK_CHECKS)
#define KQ_LOCK_RANK_CHECKS_ENABLED 1
#else
#define KQ_LOCK_RANK_CHECKS_ENABLED 0
#endif

namespace detail {
#if KQ_LOCK_RANK_CHECKS_ENABLED
inline constexpr int kNumRanks = 2;
// Per-thread count of held locks at each rank. Plain thread_local state:
// only the owning thread ever touches its own counters.
inline thread_local int held_by_rank[kNumRanks] = {};

[[noreturn]] inline void rank_violation(int acquiring, int held) {
  std::fprintf(stderr,
               "lock-rank violation: acquiring rank %d while holding rank "
               "%d (order is channel < tracer-shard, strictly increasing)\n",
               acquiring, held);
  std::abort();
}

inline void rank_acquired(LockRank rank) {
  if (rank == LockRank::kNone) return;
  const int r = static_cast<int>(rank);
  // A new lock must out-rank everything already held — equal rank is also
  // a violation (two channel-class locks held at once has no defined
  // order, and is one self-deadlock away from a bug).
  for (int held = r; held < kNumRanks; ++held) {
    if (held_by_rank[held] != 0) rank_violation(r, held);
  }
  ++held_by_rank[r];
}

inline void rank_released(LockRank rank) {
  if (rank == LockRank::kNone) return;
  --held_by_rank[static_cast<int>(rank)];
}
#else
inline void rank_acquired(LockRank) {}
inline void rank_released(LockRank) {}
#endif
}  // namespace detail

// ----------------------------------------------------------------- Mutex --
// std::mutex with a capability the analysis tracks and an optional lock
// rank. Prefer MutexLock over calling lock()/unlock() directly.
class CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(LockRank rank = LockRank::kNone) : rank_(rank) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() {
    mu_.lock();
    detail::rank_acquired(rank_);
  }
  void unlock() RELEASE() {
    detail::rank_released(rank_);
    mu_.unlock();
  }
  bool try_lock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    detail::rank_acquired(rank_);
    return true;
  }

  LockRank rank() const { return rank_; }

 private:
  friend class MutexLock;
  std::mutex mu_;
  const LockRank rank_;
};

// ------------------------------------------------------------- MutexLock --
// RAII scoped lock over a Mutex (the std::lock_guard / std::unique_lock of
// this header — there is one shape, and it supports CondVar waits).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu), lock_(mu.mu_) {
    detail::rank_acquired(mu_.rank());
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  ~MutexLock() RELEASE() {
    detail::rank_released(mu_.rank());
    // lock_ unlocks the underlying std::mutex after this body.
  }

 private:
  friend class CondVar;
  Mutex& mu_;
  std::unique_lock<std::mutex> lock_;
};

// --------------------------------------------------------------- CondVar --
// Condition variable bound to Mutex/MutexLock. wait() asserts (at runtime)
// that the caller actually holds the lock it passes; the *static* half of
// the contract lives at call sites — waits happen inside REQUIRES(mu)
// helpers whose predicate reads are then visibly lock-protected, e.g.
//
//   void Channel::wait_not_full(MutexLock& lock) REQUIRES(mu_) {
//     while (!(closed_ || queue_.size() < capacity_)) not_full_.wait(lock);
//   }
//
// (A condition wait releases and reacquires the mutex internally; that is
// invisible to — and sound under — the analysis, because the capability is
// held again whenever control returns to the annotated function.)
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) {
    assert(lock.lock_.owns_lock() && "CondVar::wait without the lock held");
    detail::rank_released(lock.mu_.rank());  // the wait releases the mutex
    cv_.wait(lock.lock_);
    detail::rank_acquired(lock.mu_.rank());
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

// ----------------------------------------------------------- SharedMutex --
// Reader/writer capability over std::shared_mutex (used by vfs::Vfs, whose
// read side is hit concurrently by worker threads during synthesis).
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  void lock_shared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

// Exclusive (writer) scoped lock.
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;
  ~WriterLock() RELEASE() { mu_.unlock(); }

 private:
  SharedMutex& mu_;
};

// Shared (reader) scoped lock.
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;
  ~ReaderLock() RELEASE() { mu_.unlock_shared(); }

 private:
  SharedMutex& mu_;
};

// ------------------------------------------------------ ts_unchecked_read --
// Reads a GUARDED_BY value without the analysis seeing the access. The only
// legitimate uses are reads whose ordering comes from an edge the analysis
// cannot express — typically "the writing thread has been joined". Every
// call site must carry a comment naming that invariant; the clang CI job
// plus review keep this honest (grep TS_UNCHECKED / ts_unchecked_read).
template <typename T>
inline const T& ts_unchecked_read(const T& value) NO_THREAD_SAFETY_ANALYSIS {
  return value;
}

}  // namespace kq::sync
