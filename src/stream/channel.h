// Bounded chunk queues connecting dataflow nodes. A Channel carries
// record-aligned chunks between a producer node and a consumer node with
// blocking backpressure on both sides, so the bytes in flight across the
// whole graph stay O(capacity · block_size) regardless of input size — the
// property that lets the streaming runtime chew through inputs larger than
// RAM. A Semaphore bounds the number of chunks a segment may have in
// flight through the worker pool (its feeder acquires per submitted chunk,
// its collector releases per emitted chunk).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace kq::stream {

struct Chunk {
  std::size_t index = 0;  // position in the segment's input order
  std::string bytes;
};

// Chunks with this index are control nudges, not data (see dataflow.cpp).
inline constexpr std::size_t kControlChunk = static_cast<std::size_t>(-1);

// Shared accounting of bytes resident in channels; `peak` is the
// high-water mark over the run, the runtime's bounded-memory witness.
class MemoryGauge {
 public:
  void add(std::size_t n);
  void sub(std::size_t n);
  std::size_t current() const { return current_.load(); }
  std::size_t peak() const { return peak_.load(); }

 private:
  std::atomic<std::size_t> current_{0};
  std::atomic<std::size_t> peak_{0};
};

class Channel {
 public:
  explicit Channel(std::size_t capacity, MemoryGauge* gauge = nullptr);

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  // Blocks while the channel is full. Returns false (dropping the chunk)
  // once the channel is closed or aborted.
  bool push(Chunk chunk);

  // Blocks while the channel is empty. Returns nullopt once the channel is
  // closed and drained (or aborted).
  std::optional<Chunk> pop();

  // End of stream: no further pushes succeed; pending chunks remain
  // poppable.
  void close();

  // Error teardown: close and discard pending chunks so blocked peers wake
  // immediately.
  void abort();

  // Consumer-side close: the downstream node needs no more input (head
  // satisfied its count, or its own downstream closed). Pending chunks are
  // discarded, blocked producers wake with push() == false, and
  // read_closed() starts returning true — the signal a producer uses to
  // tell a clean early exit from an error teardown, and to propagate the
  // close to *its* upstream. This is how `head -n 10` stops the
  // BlockReader after O(blocks) instead of draining the input.
  void close_read();

  // True once the consumer closed its end (close_read), which a producer
  // may poll mid-drain to stop work whose output nobody will read.
  bool read_closed() const;

  std::size_t capacity() const { return capacity_; }

  // Telemetry (src/obs/): blocked-time accumulators for the producer side
  // (push waiting on a full queue) and the consumer side (pop waiting on an
  // empty one), in nanoseconds with relaxed ordering. Wire before the
  // connected nodes start; null (the default) keeps the wait paths
  // clock-free — time is taken only when a wait actually happens AND a
  // counter is attached.
  void set_telemetry(std::atomic<std::uint64_t>* send_blocked_ns,
                     std::atomic<std::uint64_t>* recv_blocked_ns) {
    send_blocked_ns_ = send_blocked_ns;
    recv_blocked_ns_ = recv_blocked_ns;
  }

 private:
  const std::size_t capacity_;
  MemoryGauge* const gauge_;
  std::atomic<std::uint64_t>* send_blocked_ns_ = nullptr;
  std::atomic<std::uint64_t>* recv_blocked_ns_ = nullptr;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<Chunk> queue_;
  bool closed_ = false;
  bool aborted_ = false;
  bool read_closed_ = false;
};

class Semaphore {
 public:
  explicit Semaphore(std::size_t slots);

  // Blocks until a slot is free; returns false once cancelled.
  bool acquire();
  void release();

  // Wakes every waiter and makes all future acquires fail (error teardown).
  void cancel();

  // Telemetry: blocked-time accumulator for acquire() waits (a parallel
  // feeder stalled on in-flight backpressure counts as send-blocked).
  void set_telemetry(std::atomic<std::uint64_t>* blocked_ns) {
    blocked_ns_ = blocked_ns;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t slots_;
  bool cancelled_ = false;
  std::atomic<std::uint64_t>* blocked_ns_ = nullptr;
};

// Recycles chunk-buffer allocations across blocks so the steady state of a
// per-block node reuses capacity instead of paying an allocator round trip
// (and the glibc mmap-threshold dance) per chunk. Buffers circulate: a
// stream-chain node releases each consumed input block and acquires its
// push buffers here, so adjacent per-block nodes trade the same strings
// through the connecting channel.
class BufferPool {
 public:
  // `budget_bytes` bounds the total capacity retained across free buffers
  // (excess releases just deallocate); 0 disables pooling entirely. The
  // byte bound matters for nodes that release much more than they acquire
  // — a window node (tail/uniq/wc) consumes input blocks but emits almost
  // nothing until finish(), so a count bound would retain
  // count · block_size bytes of dead capacity.
  explicit BufferPool(std::size_t budget_bytes = 8 << 20)
      : budget_bytes_(budget_bytes) {}

  // Re-sizes the retention budget; callers set it to the run's in-flight
  // block budget before the dataflow threads start.
  void set_budget(std::size_t budget_bytes) { budget_bytes_ = budget_bytes; }

  // An empty string, with a recycled allocation when one is available.
  // When telemetry counters are passed, a recycled allocation bumps `hits`
  // and a fresh (empty) one bumps `misses` — per-node pool effectiveness
  // for the --stats table.
  std::string acquire(std::atomic<std::uint64_t>* hits = nullptr,
                      std::atomic<std::uint64_t>* misses = nullptr);
  // Returns a buffer's allocation to the pool (contents are discarded).
  void release(std::string&& buf);

 private:
  std::mutex mu_;
  std::vector<std::string> free_;
  std::size_t cached_bytes_ = 0;
  std::size_t budget_bytes_;
};

}  // namespace kq::stream
