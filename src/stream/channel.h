// Bounded chunk queues connecting dataflow nodes. A Channel carries
// record-aligned chunks between a producer node and a consumer node with
// blocking backpressure on both sides, so the bytes in flight across the
// whole graph stay O(capacity · block_size) regardless of input size — the
// property that lets the streaming runtime chew through inputs larger than
// RAM. A Semaphore bounds the number of chunks a segment may have in
// flight through the worker pool (its feeder acquires per submitted chunk,
// its collector releases per emitted chunk).
//
// Thread safety: all three classes here are fully synchronized — every
// mutable field is GUARDED_BY its lock (sync::Mutex, rank kChannel) and
// the clang-threadsafety CI job proves every access holds it. See
// docs/CONCURRENCY.md for the runtime-wide locking model.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "stream/sync.h"

namespace kq::stream {

using sync::CondVar;
using sync::LockRank;
using sync::Mutex;
using sync::MutexLock;

struct Chunk {
  std::size_t index = 0;  // position in the segment's input order
  std::string bytes;
};

// Chunks with this index are control nudges, not data (see dataflow.cpp).
inline constexpr std::size_t kControlChunk = static_cast<std::size_t>(-1);

// Shared accounting of bytes resident in channels; `peak` is the
// high-water mark over the run, the runtime's bounded-memory witness.
class MemoryGauge {
 public:
  void add(std::size_t n);
  void sub(std::size_t n);
  std::size_t current() const { return current_.load(); }
  std::size_t peak() const { return peak_.load(); }

 private:
  std::atomic<std::size_t> current_{0};
  std::atomic<std::size_t> peak_{0};
};

class Channel {
 public:
  explicit Channel(std::size_t capacity, MemoryGauge* gauge = nullptr);

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  // Blocks while the channel is full. Returns false (dropping the chunk)
  // once the channel is closed or aborted.
  bool push(Chunk chunk) EXCLUDES(mu_);

  // Blocks while the channel is empty. Returns nullopt once the channel is
  // closed and drained (or aborted).
  std::optional<Chunk> pop() EXCLUDES(mu_);

  // Non-blocking pop: nullopt when the queue is empty right now, whether
  // the channel is still open or already closed. A consumer that wants to
  // overlap useful work with the wait (the work-stealing collector) calls
  // this first and falls back to the blocking pop() only when there is
  // nothing else to do.
  std::optional<Chunk> try_pop() EXCLUDES(mu_);

  // End of stream: no further pushes succeed; pending chunks remain
  // poppable.
  void close() EXCLUDES(mu_);

  // Error teardown: close and discard pending chunks so blocked peers wake
  // immediately.
  void abort() EXCLUDES(mu_);

  // Consumer-side close: the downstream node needs no more input (head
  // satisfied its count, or its own downstream closed). Pending chunks are
  // discarded, blocked producers wake with push() == false, and
  // read_closed() starts returning true — the signal a producer uses to
  // tell a clean early exit from an error teardown, and to propagate the
  // close to *its* upstream. This is how `head -n 10` stops the
  // BlockReader after O(blocks) instead of draining the input.
  void close_read() EXCLUDES(mu_);

  // True once the consumer closed its end (close_read), which a producer
  // may poll mid-drain to stop work whose output nobody will read.
  bool read_closed() const EXCLUDES(mu_);

  std::size_t capacity() const { return capacity_; }

  // Telemetry (src/obs/): blocked-time accumulators for the producer side
  // (push waiting on a full queue) and the consumer side (pop waiting on an
  // empty one), in nanoseconds with relaxed ordering. The pointers are
  // GUARDED_BY(mu_), so wiring is race-free at any point — though the
  // runtime always wires before the connected nodes start, since a late
  // attach silently misses earlier waits. Null (the default) keeps the wait
  // paths clock-free — time is taken only when a wait actually happens AND
  // a counter is attached.
  void set_telemetry(std::atomic<std::uint64_t>* send_blocked_ns,
                     std::atomic<std::uint64_t>* recv_blocked_ns)
      EXCLUDES(mu_) {
    MutexLock lock(mu_);
    send_blocked_ns_ = send_blocked_ns;
    recv_blocked_ns_ = recv_blocked_ns;
  }

 private:
  // Condition waits, with the blocked time charged to the attached
  // telemetry counter. REQUIRES records (and the clang job checks) that
  // the predicate reads happen under mu_.
  void wait_not_full(MutexLock& lock) REQUIRES(mu_);
  void wait_not_empty(MutexLock& lock) REQUIRES(mu_);
  // Close/abort/close_read share their wake-everyone epilogue.
  void drain_and_wake(bool discard) REQUIRES(mu_);

  const std::size_t capacity_;
  MemoryGauge* const gauge_;
  mutable Mutex mu_{LockRank::kChannel};
  CondVar not_full_;
  CondVar not_empty_;
  std::atomic<std::uint64_t>* send_blocked_ns_ GUARDED_BY(mu_) = nullptr;
  std::atomic<std::uint64_t>* recv_blocked_ns_ GUARDED_BY(mu_) = nullptr;
  std::deque<Chunk> queue_ GUARDED_BY(mu_);
  bool closed_ GUARDED_BY(mu_) = false;
  bool read_closed_ GUARDED_BY(mu_) = false;
};

class Semaphore {
 public:
  explicit Semaphore(std::size_t slots);

  // Blocks until a slot is free; returns false once cancelled.
  bool acquire() EXCLUDES(mu_);

  // Non-blocking acquire: true when a slot was taken. False means either
  // no slot is free right now or the semaphore is cancelled — callers that
  // steal work while waiting check cancelled() to tell the two apart.
  bool try_acquire() EXCLUDES(mu_);

  // True once cancel() ran (every subsequent acquire fails).
  bool cancelled() const EXCLUDES(mu_);

  void release() EXCLUDES(mu_);

  // Wakes every waiter and makes all future acquires fail (error teardown).
  void cancel() EXCLUDES(mu_);

  // Telemetry: blocked-time accumulator for acquire() waits (a parallel
  // feeder stalled on in-flight backpressure counts as send-blocked).
  // Guarded like Channel's — see the note there.
  void set_telemetry(std::atomic<std::uint64_t>* blocked_ns) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    blocked_ns_ = blocked_ns;
  }

 private:
  void wait_ready(MutexLock& lock) REQUIRES(mu_);

  mutable Mutex mu_{LockRank::kChannel};
  CondVar cv_;
  std::size_t slots_ GUARDED_BY(mu_);
  bool cancelled_ GUARDED_BY(mu_) = false;
  std::atomic<std::uint64_t>* blocked_ns_ GUARDED_BY(mu_) = nullptr;
};

// Recycles chunk-buffer allocations across blocks so the steady state of a
// per-block node reuses capacity instead of paying an allocator round trip
// (and the glibc mmap-threshold dance) per chunk. Buffers circulate: a
// stream-chain node releases each consumed input block and acquires its
// push buffers here, so adjacent per-block nodes trade the same strings
// through the connecting channel.
class BufferPool {
 public:
  // `budget_bytes` bounds the total capacity retained across free buffers
  // (excess releases just deallocate); 0 disables pooling entirely. The
  // byte bound matters for nodes that release much more than they acquire
  // — a window node (tail/uniq/wc) consumes input blocks but emits almost
  // nothing until finish(), so a count bound would retain
  // count · block_size bytes of dead capacity.
  explicit BufferPool(std::size_t budget_bytes = 8 << 20)
      : budget_bytes_(budget_bytes) {}

  // Re-sizes the retention budget; callers set it to the run's in-flight
  // block budget before the dataflow threads start.
  void set_budget(std::size_t budget_bytes) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    budget_bytes_ = budget_bytes;
  }

  // An empty string, with a recycled allocation when one is available.
  // When telemetry counters are passed, a recycled allocation bumps `hits`
  // and a fresh (empty) one bumps `misses` — per-node pool effectiveness
  // for the --stats table.
  std::string acquire(std::atomic<std::uint64_t>* hits = nullptr,
                      std::atomic<std::uint64_t>* misses = nullptr)
      EXCLUDES(mu_);
  // Returns a buffer's allocation to the pool (contents are discarded).
  void release(std::string&& buf) EXCLUDES(mu_);

 private:
  Mutex mu_{LockRank::kChannel};
  std::vector<std::string> free_ GUARDED_BY(mu_);
  std::size_t cached_bytes_ GUARDED_BY(mu_) = 0;
  std::size_t budget_bytes_ GUARDED_BY(mu_);
};

}  // namespace kq::stream
