#include "stream/spill.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "obs/trace.h"
#include "stream/channel.h"
#include "unixcmd/sort_cmd.h"

namespace kq::stream {
namespace {

// Cursor buffer target: small enough that merging hundreds of runs stays
// cheap, large enough to amortize pread syscalls.
constexpr std::size_t kCursorRead = 64 * 1024;

// Streams the lines of one sorted run — disk-backed (bounded buffer) or
// resident (the final never-spilled run). line() stays valid until the
// next advance() on the same cursor, which is all the merge heap needs.
class RunCursor {
 public:
  RunCursor(const SpillFile* file, std::size_t offset, std::size_t size)
      : file_(file), next_offset_(offset), remaining_(size) {}

  explicit RunCursor(std::string resident) : buf_(std::move(resident)) {}

  bool failed() const { return failed_; }
  std::string_view line() const { return line_; }

  bool advance() {
    if (failed_) return false;
    std::size_t nl = buf_.find('\n', pos_);
    while (nl == std::string::npos && remaining_ > 0) {
      if (pos_ > 0) {
        buf_.erase(0, pos_);
        pos_ = 0;
      }
      std::size_t want = std::min(remaining_, kCursorRead);
      std::size_t old = buf_.size();
      buf_.resize(old + want);
      if (!file_->read_exact(next_offset_, buf_.data() + old, want)) {
        failed_ = true;
        return false;
      }
      next_offset_ += want;
      remaining_ -= want;
      nl = buf_.find('\n', old);
    }
    if (nl == std::string::npos) {
      // Runs are newline-normalized by sort_stream/merge_streams, so this
      // only fires on a defensively-handled unterminated tail.
      if (pos_ >= buf_.size()) return false;
      line_ = std::string_view(buf_).substr(pos_);
      pos_ = buf_.size();
      return true;
    }
    line_ = std::string_view(buf_).substr(pos_, nl - pos_);
    pos_ = nl + 1;
    return true;
  }

 private:
  const SpillFile* file_ = nullptr;
  std::size_t next_offset_ = 0;
  std::size_t remaining_ = 0;
  std::string buf_;
  std::size_t pos_ = 0;
  std::string_view line_;
  bool failed_ = false;
};

}  // namespace

// -------------------------------------------------------------- SpillFile --

SpillFile::SpillFile(io::IoOptions io, obs::StageCounters* counters)
    : engine_(io::make_engine(io)) {
  engine_->set_counters(counters);
  const char* dir = std::getenv("TMPDIR");
  if (dir == nullptr || *dir == '\0') dir = "/tmp";
  std::string path = std::string(dir) + "/kumquat-spill-XXXXXX";
  fd_ = ::mkstemp(path.data());
  if (fd_ < 0) {
    error_ = io::coded_error("spill mkstemp", errno);
    return;
  }
  ::unlink(path.c_str());  // reclaimed even on abnormal exit
}

SpillFile::~SpillFile() {
  // The engine may still hold queued async writes against fd_: destroy it
  // (which drains its ring) before closing the descriptor.
  engine_.reset();
  if (fd_ >= 0) ::close(fd_);
}

bool SpillFile::append(std::string_view bytes) {
  if (fd_ < 0) return false;
  if (!error_.empty()) return false;
  // Appends are offset writes at the logical size: the uring engine queues
  // them and overlaps the device with the owner's next sort/merge batch,
  // so size_ advances with the queue (completion errors — including the
  // partial-write-then-ENOSPC shape that used to truncate a run silently —
  // surface as coded [KQ-IO] errors here or at the pre-read flush).
  if (!engine_->write_at(fd_, bytes, size_, &error_)) return false;
  size_ += bytes.size();
  return true;
}

bool SpillFile::read_exact(std::size_t offset, char* buf,
                           std::size_t n) const {
  if (!error_.empty()) return false;
  if (!engine_->flush(fd_, &error_)) return false;
  return engine_->read_at(fd_, buf, n, offset, &error_);
}

// --------------------------------------------------------------- RawSpool --

RawSpool::RawSpool(std::size_t threshold, MemoryGauge* gauge,
                   io::IoOptions io, obs::StageCounters* counters)
    : threshold_(threshold), gauge_(gauge), io_(io), counters_(counters) {}

RawSpool::~RawSpool() {
  if (gauge_) gauge_->sub(buffer_.size());
}

bool RawSpool::add(std::string_view bytes) {
  if (!error_.empty()) return false;
  buffer_.append(bytes);
  total_ += bytes.size();
  if (gauge_) gauge_->add(bytes.size());
  if (threshold_ == 0 || buffer_.size() < threshold_) return true;
  auto span = obs::span(tracer_, label_ + ": spool-spill", "spill");
  span.arg("bytes", buffer_.size());
  if (!file_) file_ = std::make_unique<SpillFile>(io_, counters_);
  if (!file_->append(buffer_)) {
    error_ = file_->error();
    return false;
  }
  spilled_bytes_ += buffer_.size();
  if (gauge_) gauge_->sub(buffer_.size());
  buffer_.clear();
  buffer_.shrink_to_fit();
  return true;
}

bool RawSpool::take(std::string* out) {
  if (!error_.empty()) return false;
  auto span = obs::span(tracer_, label_ + ": spool-take", "spill");
  span.arg("bytes", total_);
  if (gauge_) gauge_->sub(buffer_.size());
  total_ = 0;
  if (!file_) {  // nothing spilled: hand over the buffer without a copy
    *out = std::move(buffer_);
    buffer_ = std::string();
    return true;
  }
  out->clear();
  out->resize(file_->size());
  if (!file_->read_exact(0, out->data(), file_->size())) {
    error_ = file_->error();
    out->clear();
    buffer_.clear();  // gauge already subtracted above; keep ~RawSpool at 0
    buffer_.shrink_to_fit();
    return false;
  }
  file_.reset();
  out->append(buffer_);
  buffer_.clear();
  buffer_.shrink_to_fit();
  return true;
}

// ------------------------------------------------------------ SpillMerger --

SpillMerger::SpillMerger(std::shared_ptr<const cmd::SortSpec> spec,
                         Input mode, std::size_t threshold,
                         MemoryGauge* gauge, io::IoOptions io,
                         obs::StageCounters* counters)
    : spec_(std::move(spec)), mode_(mode), threshold_(threshold),
      gauge_(gauge), io_(io), counters_(counters) {}

SpillMerger::~SpillMerger() { drop_mem(mem_bytes_); }

void SpillMerger::drop_mem(std::size_t n) {
  if (gauge_) gauge_->sub(n);
  mem_bytes_ -= n;
}

bool SpillMerger::add(std::string&& piece) {
  if (!error_.empty()) return false;
  mem_bytes_ += piece.size();
  if (gauge_) gauge_->add(piece.size());
  if (mode_ == Input::kUnsortedBlocks) {
    buffer_ += piece;
  } else {
    if (!piece.empty()) parts_.push_back(std::move(piece));
  }
  if (threshold_ == 0 || mem_bytes_ < threshold_) return true;
  return flush_run();
}

std::string SpillMerger::take_resident_run() {
  std::string run;
  if (mode_ == Input::kUnsortedBlocks) {
    if (!buffer_.empty()) run = spec_->sort_stream(buffer_);
    buffer_.clear();
    buffer_.shrink_to_fit();
  } else if (parts_.size() == 1) {
    run = std::move(parts_.front());  // already sorted; nothing to merge
    parts_.clear();
  } else if (!parts_.empty()) {
    std::vector<std::string_view> views(parts_.begin(), parts_.end());
    run = spec_->merge_streams(views);
    parts_.clear();
  }
  drop_mem(mem_bytes_);
  return run;
}

bool SpillMerger::flush_run() {
  std::string run = take_resident_run();
  if (run.empty()) return true;
  auto span = obs::span(tracer_, label_ + ": spill-run", "spill");
  span.arg("bytes", run.size());
  if (!file_) file_ = std::make_unique<SpillFile>(io_, counters_);
  if (!file_->valid()) {
    error_ = file_->error();
    return false;
  }
  RunExtent extent{file_->size(), run.size()};
  if (!file_->append(run)) {
    error_ = file_->error();
    return false;
  }
  runs_.push_back(extent);
  spilled_bytes_ += run.size();
  return true;
}

bool SpillMerger::finish(const std::function<bool(std::string&&)>& push,
                         std::size_t block_size) {
  if (!error_.empty()) return false;
  auto merge_span = obs::span(tracer_, label_ + ": spill-merge", "spill");
  merge_span.arg("runs", runs_.size() + 1);  // disk runs + the resident run
  merge_span.arg("spilled_bytes", spilled_bytes_);
  std::string resident = take_resident_run();

  std::vector<RunCursor> cursors;
  cursors.reserve(runs_.size() + 1);
  for (const RunExtent& run : runs_)
    cursors.emplace_back(file_.get(), run.offset, run.size);
  if (!resident.empty()) cursors.emplace_back(std::move(resident));

  // k-way merge mirroring SortSpec::merge_streams: min-heap via inverted
  // comparison, ties to the lower run index (runs are input-ordered, so
  // this reproduces the in-memory paths' stability).
  auto heap_less = [&](std::size_t a, std::size_t b) {
    int c = spec_->compare(cursors[a].line(), cursors[b].line());
    if (c != 0) return c > 0;
    return a > b;
  };
  std::vector<std::size_t> heap;
  for (std::size_t i = 0; i < cursors.size(); ++i) {
    if (cursors[i].advance()) {
      heap.push_back(i);
    } else if (cursors[i].failed()) {
      error_ = file_->error();
      return false;
    }
  }
  std::make_heap(heap.begin(), heap.end(), heap_less);

  std::string out;
  std::string last_emitted;
  bool have_last = false;
  bool stopped = false;

  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), heap_less);
    std::size_t q = heap.back();
    heap.pop_back();
    std::string_view line = cursors[q].line();
    bool keep = !spec_->unique() || !have_last ||
                spec_->compare(last_emitted, line) != 0;
    if (keep) {
      if (spec_->unique()) {
        last_emitted.assign(line);
        have_last = true;
      }
      out += line;
      out += '\n';
      // `out` ends at a record boundary, so the whole buffer moves out.
      if (out.size() >= block_size) {
        if (!push(std::move(out))) {
          stopped = true;
          break;
        }
        out = std::string();
      }
    }
    if (cursors[q].advance()) {
      heap.push_back(q);
      std::push_heap(heap.begin(), heap.end(), heap_less);
    } else if (cursors[q].failed()) {
      error_ = file_->error();
      return false;
    }
  }
  if (!stopped && !out.empty()) push(std::move(out));
  file_.reset();  // release the disk now; runs_ stays for the stats
  return true;
}

}  // namespace kq::stream
