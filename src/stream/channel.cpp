#include "stream/channel.h"

#include <chrono>

namespace kq::stream {
namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ns_since(Clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

}  // namespace

void MemoryGauge::add(std::size_t n) {
  std::size_t now = current_.fetch_add(n) + n;
  std::size_t seen = peak_.load();
  while (seen < now && !peak_.compare_exchange_weak(seen, now)) {
  }
}

void MemoryGauge::sub(std::size_t n) { current_.fetch_sub(n); }

Channel::Channel(std::size_t capacity, MemoryGauge* gauge)
    : capacity_(capacity == 0 ? 1 : capacity), gauge_(gauge) {}

// The wait helpers read the clock only when a wait is actually needed AND a
// telemetry counter is attached, so untelemetered (or never-blocking) paths
// stay clock-free.
void Channel::wait_not_full(MutexLock& lock) {
  if (closed_ || queue_.size() < capacity_) return;
  if (send_blocked_ns_ == nullptr) {
    while (!closed_ && queue_.size() >= capacity_) not_full_.wait(lock);
    return;
  }
  const auto start = Clock::now();
  while (!closed_ && queue_.size() >= capacity_) not_full_.wait(lock);
  send_blocked_ns_->fetch_add(ns_since(start), std::memory_order_relaxed);
}

void Channel::wait_not_empty(MutexLock& lock) {
  if (closed_ || !queue_.empty()) return;
  if (recv_blocked_ns_ == nullptr) {
    while (!closed_ && queue_.empty()) not_empty_.wait(lock);
    return;
  }
  const auto start = Clock::now();
  while (!closed_ && queue_.empty()) not_empty_.wait(lock);
  recv_blocked_ns_->fetch_add(ns_since(start), std::memory_order_relaxed);
}

bool Channel::push(Chunk chunk) {
  MutexLock lock(mu_);
  wait_not_full(lock);
  if (closed_) return false;
  if (gauge_) gauge_->add(chunk.bytes.size());
  queue_.push_back(std::move(chunk));
  not_empty_.notify_one();
  return true;
}

std::optional<Chunk> Channel::pop() {
  MutexLock lock(mu_);
  wait_not_empty(lock);
  if (queue_.empty()) return std::nullopt;  // closed and drained
  Chunk chunk = std::move(queue_.front());
  queue_.pop_front();
  if (gauge_) gauge_->sub(chunk.bytes.size());
  not_full_.notify_one();
  return chunk;
}

std::optional<Chunk> Channel::try_pop() {
  MutexLock lock(mu_);
  if (queue_.empty()) return std::nullopt;
  Chunk chunk = std::move(queue_.front());
  queue_.pop_front();
  if (gauge_) gauge_->sub(chunk.bytes.size());
  not_full_.notify_one();
  return chunk;
}

void Channel::drain_and_wake(bool discard) {
  closed_ = true;
  if (discard) {
    if (gauge_) {
      for (const Chunk& c : queue_) gauge_->sub(c.bytes.size());
    }
    queue_.clear();
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

void Channel::close() {
  MutexLock lock(mu_);
  drain_and_wake(/*discard=*/false);
}

void Channel::abort() {
  MutexLock lock(mu_);
  drain_and_wake(/*discard=*/true);
}

void Channel::close_read() {
  MutexLock lock(mu_);
  read_closed_ = true;
  drain_and_wake(/*discard=*/true);
}

bool Channel::read_closed() const {
  MutexLock lock(mu_);
  return read_closed_;
}

Semaphore::Semaphore(std::size_t slots) : slots_(slots == 0 ? 1 : slots) {}

void Semaphore::wait_ready(MutexLock& lock) {
  if (cancelled_ || slots_ > 0) return;
  if (blocked_ns_ == nullptr) {
    while (!cancelled_ && slots_ == 0) cv_.wait(lock);
    return;
  }
  const auto start = Clock::now();
  while (!cancelled_ && slots_ == 0) cv_.wait(lock);
  blocked_ns_->fetch_add(ns_since(start), std::memory_order_relaxed);
}

bool Semaphore::acquire() {
  MutexLock lock(mu_);
  wait_ready(lock);
  if (cancelled_) return false;
  --slots_;
  return true;
}

bool Semaphore::try_acquire() {
  MutexLock lock(mu_);
  if (cancelled_ || slots_ == 0) return false;
  --slots_;
  return true;
}

bool Semaphore::cancelled() const {
  MutexLock lock(mu_);
  return cancelled_;
}

void Semaphore::release() {
  MutexLock lock(mu_);
  ++slots_;
  cv_.notify_one();
}

void Semaphore::cancel() {
  MutexLock lock(mu_);
  cancelled_ = true;
  cv_.notify_all();
}

std::string BufferPool::acquire(std::atomic<std::uint64_t>* hits,
                                std::atomic<std::uint64_t>* misses) {
  MutexLock lock(mu_);
  if (free_.empty()) {
    if (misses) misses->fetch_add(1, std::memory_order_relaxed);
    return {};
  }
  if (hits) hits->fetch_add(1, std::memory_order_relaxed);
  std::string buf = std::move(free_.back());
  free_.pop_back();
  cached_bytes_ -= buf.capacity();
  return buf;
}

void BufferPool::release(std::string&& buf) {
  if (buf.capacity() == 0) return;
  buf.clear();  // keeps the allocation
  MutexLock lock(mu_);
  if (cached_bytes_ + buf.capacity() > budget_bytes_) return;  // deallocate
  cached_bytes_ += buf.capacity();
  free_.push_back(std::move(buf));
}

}  // namespace kq::stream
