#include "stream/channel.h"

namespace kq::stream {

void MemoryGauge::add(std::size_t n) {
  std::size_t now = current_.fetch_add(n) + n;
  std::size_t seen = peak_.load();
  while (seen < now && !peak_.compare_exchange_weak(seen, now)) {
  }
}

void MemoryGauge::sub(std::size_t n) { current_.fetch_sub(n); }

Channel::Channel(std::size_t capacity, MemoryGauge* gauge)
    : capacity_(capacity == 0 ? 1 : capacity), gauge_(gauge) {}

bool Channel::push(Chunk chunk) {
  std::unique_lock lock(mu_);
  not_full_.wait(lock,
                 [this] { return closed_ || queue_.size() < capacity_; });
  if (closed_) return false;
  if (gauge_) gauge_->add(chunk.bytes.size());
  queue_.push_back(std::move(chunk));
  not_empty_.notify_one();
  return true;
}

std::optional<Chunk> Channel::pop() {
  std::unique_lock lock(mu_);
  not_empty_.wait(lock, [this] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return std::nullopt;  // closed and drained
  Chunk chunk = std::move(queue_.front());
  queue_.pop_front();
  if (gauge_) gauge_->sub(chunk.bytes.size());
  not_full_.notify_one();
  return chunk;
}

void Channel::close() {
  std::lock_guard lock(mu_);
  closed_ = true;
  not_full_.notify_all();
  not_empty_.notify_all();
}

void Channel::abort() {
  std::lock_guard lock(mu_);
  closed_ = true;
  aborted_ = true;
  if (gauge_) {
    for (const Chunk& c : queue_) gauge_->sub(c.bytes.size());
  }
  queue_.clear();
  not_full_.notify_all();
  not_empty_.notify_all();
}

void Channel::close_read() {
  std::lock_guard lock(mu_);
  closed_ = true;
  read_closed_ = true;
  if (gauge_) {
    for (const Chunk& c : queue_) gauge_->sub(c.bytes.size());
  }
  queue_.clear();
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool Channel::read_closed() const {
  std::lock_guard lock(mu_);
  return read_closed_;
}

Semaphore::Semaphore(std::size_t slots) : slots_(slots == 0 ? 1 : slots) {}

bool Semaphore::acquire() {
  std::unique_lock lock(mu_);
  cv_.wait(lock, [this] { return cancelled_ || slots_ > 0; });
  if (cancelled_) return false;
  --slots_;
  return true;
}

void Semaphore::release() {
  std::lock_guard lock(mu_);
  ++slots_;
  cv_.notify_one();
}

void Semaphore::cancel() {
  std::lock_guard lock(mu_);
  cancelled_ = true;
  cv_.notify_all();
}

std::string BufferPool::acquire() {
  std::lock_guard lock(mu_);
  if (free_.empty()) return {};
  std::string buf = std::move(free_.back());
  free_.pop_back();
  cached_bytes_ -= buf.capacity();
  return buf;
}

void BufferPool::release(std::string&& buf) {
  if (buf.capacity() == 0) return;
  buf.clear();  // keeps the allocation
  std::lock_guard lock(mu_);
  if (cached_bytes_ + buf.capacity() > budget_bytes_) return;  // deallocate
  cached_bytes_ += buf.capacity();
  free_.push_back(std::move(buf));
}

}  // namespace kq::stream
