#include "stream/channel.h"

#include <chrono>

namespace kq::stream {
namespace {

// Waits on `cv` until `ready`, charging the wait to `blocked_ns` when a
// counter is attached. The clock is read only when a wait is actually
// needed, so untelemetered (or never-blocking) paths stay clock-free.
template <typename Pred>
void timed_wait(std::condition_variable& cv,
                std::unique_lock<std::mutex>& lock, Pred ready,
                std::atomic<std::uint64_t>* blocked_ns) {
  if (ready()) return;
  if (blocked_ns == nullptr) {
    cv.wait(lock, ready);
    return;
  }
  auto start = std::chrono::steady_clock::now();
  cv.wait(lock, ready);
  blocked_ns->fetch_add(
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count()),
      std::memory_order_relaxed);
}

}  // namespace

void MemoryGauge::add(std::size_t n) {
  std::size_t now = current_.fetch_add(n) + n;
  std::size_t seen = peak_.load();
  while (seen < now && !peak_.compare_exchange_weak(seen, now)) {
  }
}

void MemoryGauge::sub(std::size_t n) { current_.fetch_sub(n); }

Channel::Channel(std::size_t capacity, MemoryGauge* gauge)
    : capacity_(capacity == 0 ? 1 : capacity), gauge_(gauge) {}

bool Channel::push(Chunk chunk) {
  std::unique_lock lock(mu_);
  timed_wait(
      not_full_, lock,
      [this] { return closed_ || queue_.size() < capacity_; },
      send_blocked_ns_);
  if (closed_) return false;
  if (gauge_) gauge_->add(chunk.bytes.size());
  queue_.push_back(std::move(chunk));
  not_empty_.notify_one();
  return true;
}

std::optional<Chunk> Channel::pop() {
  std::unique_lock lock(mu_);
  timed_wait(
      not_empty_, lock, [this] { return closed_ || !queue_.empty(); },
      recv_blocked_ns_);
  if (queue_.empty()) return std::nullopt;  // closed and drained
  Chunk chunk = std::move(queue_.front());
  queue_.pop_front();
  if (gauge_) gauge_->sub(chunk.bytes.size());
  not_full_.notify_one();
  return chunk;
}

void Channel::close() {
  std::lock_guard lock(mu_);
  closed_ = true;
  not_full_.notify_all();
  not_empty_.notify_all();
}

void Channel::abort() {
  std::lock_guard lock(mu_);
  closed_ = true;
  aborted_ = true;
  if (gauge_) {
    for (const Chunk& c : queue_) gauge_->sub(c.bytes.size());
  }
  queue_.clear();
  not_full_.notify_all();
  not_empty_.notify_all();
}

void Channel::close_read() {
  std::lock_guard lock(mu_);
  closed_ = true;
  read_closed_ = true;
  if (gauge_) {
    for (const Chunk& c : queue_) gauge_->sub(c.bytes.size());
  }
  queue_.clear();
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool Channel::read_closed() const {
  std::lock_guard lock(mu_);
  return read_closed_;
}

Semaphore::Semaphore(std::size_t slots) : slots_(slots == 0 ? 1 : slots) {}

bool Semaphore::acquire() {
  std::unique_lock lock(mu_);
  timed_wait(
      cv_, lock, [this] { return cancelled_ || slots_ > 0; }, blocked_ns_);
  if (cancelled_) return false;
  --slots_;
  return true;
}

void Semaphore::release() {
  std::lock_guard lock(mu_);
  ++slots_;
  cv_.notify_one();
}

void Semaphore::cancel() {
  std::lock_guard lock(mu_);
  cancelled_ = true;
  cv_.notify_all();
}

std::string BufferPool::acquire(std::atomic<std::uint64_t>* hits,
                                std::atomic<std::uint64_t>* misses) {
  std::lock_guard lock(mu_);
  if (free_.empty()) {
    if (misses) misses->fetch_add(1, std::memory_order_relaxed);
    return {};
  }
  if (hits) hits->fetch_add(1, std::memory_order_relaxed);
  std::string buf = std::move(free_.back());
  free_.pop_back();
  cached_bytes_ -= buf.capacity();
  return buf;
}

void BufferPool::release(std::string&& buf) {
  if (buf.capacity() == 0) return;
  buf.clear();  // keeps the allocation
  std::lock_guard lock(mu_);
  if (cached_bytes_ + buf.capacity() > budget_bytes_) return;  // deallocate
  cached_bytes_ += buf.capacity();
  free_.push_back(std::move(buf));
}

}  // namespace kq::stream
