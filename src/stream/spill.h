// Spill-to-disk machinery that makes *every* dataflow node's memory
// bounded, not just the parallel concat-combined ones. Three pieces:
//
//   - SpillFile: an anonymous (created-and-unlinked) temp file holding
//     spilled runs; positioned reads (pread) let many cursors share one fd.
//   - RawSpool: an accumulate-then-replay byte spool for stages that must
//     see their whole input (MemoryClass::kMaterialize). Accumulation past
//     the spill threshold moves to disk, so the in-memory footprint while
//     *draining* stays O(threshold); the single whole-stream execution
//     still materializes the input once, which is the floor for a
//     black-box command.
//   - SpillMerger: the external-merge engine behind
//     MemoryClass::kSortableSpill. Bounded in-memory batches become sorted
//     runs on disk (sorting each batch for a sequential `sort` stage,
//     merging pre-sorted chunk outputs for a merge-mode combiner), and a
//     final streaming k-way merge — the k-way `sort -m` of §3.5, lifted
//     from whole in-memory streams to disk-backed run cursors — re-streams
//     the result downstream in record-aligned blocks. Stability matches
//     the in-memory paths: runs are input-ordered, ties break on run
//     index, and -u dedupes across runs exactly like
//     SortSpec::merge_streams.
//
// One merge pass only: the number of runs is spilled_bytes / threshold, and
// each cursor buffers at most ~64 KiB, so merging stays O(runs · 64 KiB)
// resident. Multi-pass merging for pathological run counts is future work.
//
// Thread safety: these classes are deliberately lock-free because they are
// thread-COMPATIBLE, not thread-safe — each instance is owned by exactly
// one dataflow node thread for its whole lifetime (a window or sequential
// node's drain loop), so no concurrent access exists to synchronize. The
// one cross-thread touch point, pread(2) through a shared SpillFile fd, is
// safe because positioned reads carry their own offset and never mutate
// the file position. Do not share a RawSpool or SpillMerger across
// threads without adding external synchronization; docs/CONCURRENCY.md
// spells out this single-owner convention.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "io/engine.h"

namespace kq::cmd {
class SortSpec;
}

namespace kq::obs {
class Tracer;
struct StageCounters;
}

namespace kq::stream {

class MemoryGauge;

// An unlinked temp file (in $TMPDIR, else /tmp): append writes, positioned
// reads, auto-reclaimed on destruction or process death. All I/O goes
// through a kq::io::Engine built from `io` — on the uring backend appends
// are queued asynchronously (size() counts queued bytes; errors surface on
// a later append or the pre-read flush), on poll they complete in place.
class SpillFile {
 public:
  explicit SpillFile(io::IoOptions io = {},
                     obs::StageCounters* counters = nullptr);
  ~SpillFile();
  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  bool valid() const { return fd_ >= 0; }
  // Nonempty once creation or any write failed.
  const std::string& error() const { return error_; }

  std::size_t size() const { return size_; }
  bool append(std::string_view bytes);
  // Reads exactly `n` bytes at `offset`, after waiting out any queued
  // appends; false on I/O error or short read.
  bool read_exact(std::size_t offset, char* buf, std::size_t n) const;

 private:
  std::unique_ptr<io::Engine> engine_;
  int fd_ = -1;
  std::size_t size_ = 0;
  mutable std::string error_;
};

// Byte spool for materialize-class accumulation: buffers up to `threshold`
// in memory, spills the rest, and replays everything on take(). A
// threshold of 0 disables spilling (pure in-memory accumulation).
class RawSpool {
 public:
  explicit RawSpool(std::size_t threshold, MemoryGauge* gauge = nullptr,
                    io::IoOptions io = {},
                    obs::StageCounters* counters = nullptr);
  ~RawSpool();

  bool add(std::string_view bytes);
  // Moves the full accumulation (disk prefix + in-memory tail) into `out`.
  bool take(std::string* out);

  bool spilled() const { return file_ != nullptr; }
  std::size_t spilled_bytes() const { return spilled_bytes_; }
  std::size_t size() const { return total_; }
  const std::string& error() const { return error_; }

  // Telemetry (src/obs/): spans "spool-spill" (each tranche moved to disk)
  // and "spool-take" (the replay) are recorded under `label` (the owning
  // stage's display name). Null tracer = no cost beyond one branch.
  void set_telemetry(obs::Tracer* tracer, std::string label) {
    tracer_ = tracer;
    label_ = std::move(label);
  }

 private:
  const std::size_t threshold_;
  MemoryGauge* const gauge_;
  const io::IoOptions io_;
  obs::StageCounters* const counters_;
  obs::Tracer* tracer_ = nullptr;
  std::string label_;
  std::string buffer_;
  std::unique_ptr<SpillFile> file_;
  std::size_t spilled_bytes_ = 0;
  std::size_t total_ = 0;
  std::string error_;
};

// External merge: feeds become bounded sorted runs, finish() streams the
// k-way merge of all runs to `push` in record-aligned blocks.
class SpillMerger {
 public:
  enum class Input {
    kUnsortedBlocks,  // add() receives record-aligned raw input; each run
                      // is sorted with SortSpec::sort_stream (external sort)
    kSortedParts,     // add() receives whole pre-sorted chunk outputs; each
                      // run merges its batch with SortSpec::merge_streams
  };

  // `spec` supplies the comparator (and -u/-s semantics). `threshold` is
  // the in-memory batch budget; 0 means never spill (single in-memory run).
  SpillMerger(std::shared_ptr<const cmd::SortSpec> spec, Input mode,
              std::size_t threshold, MemoryGauge* gauge = nullptr,
              io::IoOptions io = {},
              obs::StageCounters* counters = nullptr);
  ~SpillMerger();

  // False on spill I/O error (see error()).
  bool add(std::string&& piece);

  // Merges every run and pushes the result in blocks of ~`block_size`
  // bytes, each ending at a record ('\n') boundary. Stops early (still
  // returning true) when `push` returns false; returns false only on I/O
  // error. Single-shot: the spill file is released before returning.
  bool finish(const std::function<bool(std::string&&)>& push,
              std::size_t block_size);

  int runs_spilled() const { return static_cast<int>(runs_.size()); }
  std::size_t spilled_bytes() const { return spilled_bytes_; }
  const std::string& error() const { return error_; }

  // Telemetry (src/obs/): spans "spill-run" (each sorted run written, with
  // a bytes arg) and "spill-merge" (the k-way merge in finish(), with a
  // runs arg) are recorded under `label` (the owning stage's display name).
  void set_telemetry(obs::Tracer* tracer, std::string label) {
    tracer_ = tracer;
    label_ = std::move(label);
  }

 private:
  struct RunExtent {
    std::size_t offset = 0;
    std::size_t size = 0;
  };

  bool flush_run();                 // batch -> one sorted run on disk
  std::string take_resident_run();  // sort/merge whatever never spilled
  void drop_mem(std::size_t n);

  const std::shared_ptr<const cmd::SortSpec> spec_;
  const Input mode_;
  const std::size_t threshold_;
  MemoryGauge* const gauge_;
  const io::IoOptions io_;
  obs::StageCounters* const counters_;
  obs::Tracer* tracer_ = nullptr;
  std::string label_;

  std::string buffer_;               // kUnsortedBlocks batch
  std::vector<std::string> parts_;   // kSortedParts batch
  std::size_t mem_bytes_ = 0;

  std::unique_ptr<SpillFile> file_;
  std::vector<RunExtent> runs_;
  std::size_t spilled_bytes_ = 0;
  std::string error_;
};

}  // namespace kq::stream
