// Record-aligned block acquisition for the streaming runtime. A BlockReader
// turns a byte source (std::istream, file descriptor, or arbitrary read
// callback) into a sequence of blocks of roughly `block_size` bytes whose
// boundaries always fall on record boundaries: every delivered block except
// possibly the last ends with the record delimiter, so no record is ever
// split across blocks and each block is itself a stream in the paper's
// Definition 3.1 sense (the splitter contract of §2, generalized from
// whole-input splitting to bounded incremental reads).
//
// The delimiter defaults to '\n' (the stream model's record terminator; see
// src/prep/delimiters.* for how per-command delimiter alphabets are probed)
// but is configurable for delimiter-probed stages. CRLF input needs no
// special casing — CR bytes travel with their record. A record longer than
// `block_size` is delivered as one oversized block rather than split; input
// with no trailing delimiter delivers its final partial record as the last
// block.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>

namespace kq::io {
class Engine;
}

namespace kq::obs {
class Tracer;
}

namespace kq::stream {

struct BlockReaderOptions {
  std::size_t block_size = 1 << 20;  // target block size in bytes
  char delimiter = '\n';             // record terminator to realign on
  // Cap on a single record's size while scanning for its delimiter past
  // the block size: a record that outgrows one block would otherwise
  // accumulate the rest of a delimiter-free input in pending_. When the
  // scan exceeds the cap the stream ends with error() == EMSGSIZE instead
  // of silently ballooning RSS. Records that fit in a block are already
  // bounded by block_size and are never checked, so the effective bound on
  // buffered bytes is max(block_size, max_record_size). 0 = unlimited.
  // The streaming runtime wires this to its spill threshold.
  std::size_t max_record_size = 0;
};

class BlockReader {
 public:
  // Reads up to `n` bytes into `buf`; returns the count, 0 at end of input.
  using ReadFn = std::function<std::size_t(char* buf, std::size_t n)>;

  BlockReader(std::istream& in, BlockReaderOptions options = {});
  // The fd source reads through a kq::io::Engine (src/io/engine.h). The
  // two-argument form builds its own engine with default IoOptions
  // (backend resolved from KQ_IO_BACKEND / the kernel probe); the runtime
  // passes an engine it configured and owns — `engine` must outlive the
  // reader and its single-owner thread is the reader's thread.
  BlockReader(int fd, BlockReaderOptions options = {});
  BlockReader(int fd, io::Engine* engine, BlockReaderOptions options = {});
  BlockReader(ReadFn read, BlockReaderOptions options = {});

  // The next record-aligned block, or nullopt once the source is exhausted.
  std::optional<std::string> next();

  std::size_t bytes_delivered() const { return bytes_delivered_; }
  const BlockReaderOptions& options() const { return options_; }

  // Nonzero errno-style code when the source failed mid-stream (read(2)
  // error, istream badbit) — the stream delivered so far is a truncated
  // prefix, not the whole input. 0 means clean end of input.
  int error() const { return *error_; }

  // Asks the reader to stop: the next fill ends the stream as a clean EOF
  // (cancellation is a consumer-side "no more input needed", not an
  // error). Safe to call from any thread. The fd source polls with a
  // short timeout between reads, so a reader blocked in a long read(2) on
  // an idle pipe wakes within ~one poll interval instead of at the next
  // block boundary; the istream source reads each block in small slices
  // and checks the flag per slice, so a cancel lands mid-fill after at
  // most one slice (~a few records) instead of a whole block — an istream
  // read itself cannot be interrupted portably, but it need never be asked
  // for more than a slice. The raw callback source checks between fills.
  void cancel() { cancel_->store(true); }
  bool cancelled() const { return cancel_->load(); }

  // Telemetry (src/obs/): a tracer records one "source-fill" span per fill.
  // The pointer is atomic so attaching is race-free even if it happens
  // after the reading thread started; the runtime still wires before
  // spawn (fills that precede the store just go untraced).
  void set_tracer(obs::Tracer* tracer) {
    tracer_.store(tracer, std::memory_order_release);
  }
  // Opts in to timing the fd source's idle waits (poll timeouts while the
  // producer has nothing to read). Off by default so the untelemetered
  // read loop never touches the clock.
  void enable_wait_timing() { time_waits_->store(true); }

  // The I/O engine behind an fd source (null for istream/callback
  // sources) — the runtime attaches per-node counters through it.
  io::Engine* engine() const { return engine_; }
  // Nanoseconds the fd source spent waiting for readability (the node-0
  // recv-blocked time in the --stats table). 0 unless wait timing is on.
  std::uint64_t wait_ns() const { return wait_ns_->load(); }

 private:
  void fill();  // pulls one more block-sized slab into pending_

  std::shared_ptr<int> error_ = std::make_shared<int>(0);
  std::shared_ptr<std::atomic<bool>> cancel_ =
      std::make_shared<std::atomic<bool>>(false);
  // Set by the fd source when a zero-timeout poll after a read finds no
  // more data immediately available (a pipe between bursts): next() then
  // flushes the complete records on hand instead of waiting for a full
  // block. Always false for istream/callback sources, whose blocking
  // reads only come up short at end of input.
  std::shared_ptr<std::atomic<bool>> idle_ =
      std::make_shared<std::atomic<bool>>(false);
  // Wait-time accounting for the fd source (shared with its lambda, like
  // cancel_/idle_): enabled on demand, read back via wait_ns().
  std::shared_ptr<std::atomic<bool>> time_waits_ =
      std::make_shared<std::atomic<bool>>(false);
  std::shared_ptr<std::atomic<std::uint64_t>> wait_ns_ =
      std::make_shared<std::atomic<std::uint64_t>>(0);
  std::atomic<obs::Tracer*> tracer_{nullptr};
  // Declared before read_: the fd-source lambda captures a raw engine
  // pointer, so the lambda must be destroyed before an owned engine is.
  std::unique_ptr<io::Engine> owned_engine_;
  io::Engine* engine_ = nullptr;
  ReadFn read_;
  BlockReaderOptions options_;
  std::string pending_;  // bytes read but not yet delivered
  bool eof_ = false;
  std::size_t flush_scan_ = 0;  // idle-flush delimiter scan resume offset
  std::size_t bytes_delivered_ = 0;
};

}  // namespace kq::stream
