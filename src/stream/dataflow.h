// The streaming dataflow execution runtime. Lowers the staged plan
// (compile::lower_plan's ExecStages) into a graph of concurrently running
// nodes — block reader → worker×k → incremental combiner per parallel
// segment, drain nodes for sequential stages — connected by bounded
// channels, in the spirit of PaSh-style dataflow shell runtimes.
//
// Contrasts with exec::run_pipeline (the batch path, kept as `--batch`):
//   - input is consumed in record-aligned blocks (stream::BlockReader)
//     rather than slurped whole, so memory stays O(capacity · block_size)
//     for concat-combined pipelines instead of O(input);
//   - declared-streamable stages (exec::MemoryClass::kStatelessStream:
//     per-record filters/maps like grep/tr/cut/sed, prefix-bounded head)
//     run per block through cmd::StreamProcessors, with adjacent streamable
//     stages fused into one chain node — a `grep | tr | cut` chain costs
//     one channel hop — and a satisfied prefix (head) closes its input,
//     the close propagating upstream channel by channel until the
//     BlockReader stops reading: `head -n 10` costs O(blocks), not
//     O(input);
//   - window-bounded stages (exec::MemoryClass::kWindowStream: tail -n N,
//     uniq, wc, sort -u, and the fused top-n/top-k rewrite stages from
//     compile::rewrite_bounded_windows) absorb blocks into a
//     cmd::WindowProcessor and flush the residue at end of input, holding
//     O(window) instead of materializing; a window stage fuses as the
//     *terminal* member of a stream chain (its finish() reorders emission,
//     so nothing fuses after it), and a window past the spill threshold
//     (sort -u's distinct set, a pathological-N top-n) exports sorted runs
//     through the external merge — sealed first so cross-record residue
//     survives, and re-streamed capped at the window's output limit;
//   - all pipeline segments run concurrently instead of in stage barriers;
//   - combining is incremental: each segment's combiner folds chunk
//     outputs as they arrive in input order (doubling group sizes keep the
//     total fold work near one k-way combine) instead of waiting for all
//     chunks. Segments whose combiner is plain concat over
//     newline-terminated outputs skip accumulation entirely and emit chunk
//     outputs downstream the moment they are next in order;
//   - accumulation past `spill_threshold` moves to disk (stream/spill.*,
//     per the stage's exec::MemoryClass): merge-mode combiners spill chunk
//     outputs as sorted runs and k-way-merge them back to the stream,
//     sequential built-in sort stages run as an external merge sort, and
//     rerun combiners and materialize stages spool their drain through a
//     temp file — so with '\n' records every node's resident footprint is
//     bounded, not just the parallel ones. (The sort/merge spill paths are
//     line-based and stay in memory under a custom delimiter.)
//
// Output is byte-identical to the batch runner whenever the synthesized
// combiners satisfy their defining property g(f(x), f(y)) = f(x · y) —
// both runtimes compute f over the whole stream, they just chunk
// differently.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "exec/runner.h"
#include "exec/thread_pool.h"
#include "io/engine.h"

namespace kq::obs {
class Tracer;
}

namespace kq::stream {

struct StreamConfig {
  int parallelism = 4;
  std::size_t block_size = 1 << 20;
  // Max chunks a segment may have in flight (its memory budget is
  // max_inflight · block_size). 0 derives 2 · parallelism + 2.
  std::size_t max_inflight = 0;
  bool use_elimination = true;  // fuse eliminated-combiner chains
  char delimiter = '\n';
  // In-memory accumulation budget per node before spilling to disk
  // (sorted-run external merge for sortable stages, raw spool for
  // materialize/rerun stages). Also caps a single delimiter-free record:
  // one that outgrows a block and this threshold fails loudly (EMSGSIZE)
  // instead of ballooning RSS, so the reader buffers at most
  // max(block_size, spill_threshold) per record. 0 disables spilling (and
  // the record cap) entirely.
  std::size_t spill_threshold = 64 << 20;
  // Slice size for sharded parallel segments (the contiguous record-aligned
  // unit a shard worker runs its fused sub-chain over). 0 derives
  // 2 · block_size. Larger slices mean fewer combine-tree parts and less
  // per-slice processor setup; the runtime scales the segment's in-flight
  // slot count down so the byte budget (max_inflight · block_size) is
  // unchanged.
  std::size_t shard_slice = 0;
  // I/O backend selection and the fault-injection seam (src/io/engine.h):
  // the fd source and every spill file route their syscalls through a
  // kq::io::Engine built from this. kAuto resolves via KQ_IO_BACKEND and
  // the kernel probe.
  io::IoOptions io;
  // Telemetry (src/obs/). `stats` allocates per-node obs::StageCounters and
  // wires blocked-time/record/pool accounting through the run — the
  // extended NodeMetrics fields below are zero without it. A non-null
  // `tracer` records spans (node lifetimes, block processing, spill runs,
  // merges) for --trace-json. Both default off; the disabled hot path pays
  // one branch per block and never touches the clock.
  bool stats = false;
  obs::Tracer* tracer = nullptr;
};

struct NodeMetrics {
  std::string commands;           // fused chain display, " | " separated
  bool parallel = false;
  bool streamed_combine = false;  // concat emission, no accumulation
  bool per_block = false;         // stream-chain node (kStatelessStream)
  bool window = false;            // chain ends in a window stage (kWindow)
  // Parallel segment ran sharded: each worker executed a fused
  // StreamProcessor/WindowProcessor sub-chain over a contiguous slice
  // (exec::run_slice_fused) instead of whole-string Command::run hops.
  bool sharded = false;
  std::size_t shard_slice_bytes = 0;  // slice size the feeder targeted
  int chunks = 0;                 // blocks processed by this node
  std::size_t in_bytes = 0;
  std::size_t out_bytes = 0;
  std::size_t spilled_bytes = 0;  // bytes written to disk by this node
  int spill_runs = 0;             // sorted runs spilled (external merge)
  double seconds = 0;             // active span (first input to close)

  // Populated only when StreamConfig::stats is on (see obs/metrics.h for
  // the counter semantics; docs/OBSERVABILITY.md for the full contract).
  std::string memory;                  // exec::memory_class_name of the node
  std::uint64_t records_in = 0;        // records pulled from upstream
  std::uint64_t records_out = 0;       // records downstream accepted
  std::uint64_t send_blocked_ns = 0;   // waiting on a full output channel
  std::uint64_t recv_blocked_ns = 0;   // waiting on an empty input channel
                                       // (node 0: the reader's poll waits)
  std::uint64_t pool_hits = 0;         // BufferPool acquires recycled
  std::uint64_t pool_misses = 0;       // BufferPool acquires fresh
  std::uint64_t shard_slices = 0;      // slices shard workers executed
  std::uint64_t worker_busy_ns = 0;    // summed shard-worker execution time
  std::uint64_t sqe_batches = 0;       // io_uring submit batches (0 on poll)
  std::uint64_t cqe_waits = 0;         // io_uring completion waits (0 on poll)
  std::string early_exit;              // why input stopped early ("" = ran
                                       // to end of stream)

  // Batch/serial unification (kq::Executor maps exec::StageMetrics into
  // NodeMetrics so every mode reports through one shape). Zero/false on
  // streaming runs, where combining is incremental and per-node.
  std::string combiner;                // synthesized combiner display name
  bool combiner_eliminated = false;    // Theorem 5 applied to this stage
  bool combine_fallback = false;       // combiner failed; reran serially
};

struct StreamResult {
  bool ok = true;
  std::string error;               // set when !ok
  double seconds = 0;
  std::size_t peak_inflight_bytes = 0;  // high-water mark across channels
  std::size_t spilled_bytes = 0;        // total spilled across nodes
  // Input bytes the BlockReader delivered — far below the input size when
  // a prefix-bounded stage (head) cancelled the upstream early.
  std::size_t bytes_read = 0;
  // Resolved I/O backend the run used ("poll" or "uring") — what kAuto
  // landed on, for the --stats footer and backend-equivalence tests.
  std::string io_backend;
  std::vector<NodeMetrics> nodes;
  bool stopped_early = false;      // the sink returned false (ok stays true)
  bool combine_undefined = false;  // !ok because a combiner bailed mid-fold
  bool batch_fallback = false;     // string overload reran via batch path
};

// Receives output in order; return false to stop the run early (the graph
// tears down, the result stays ok with stopped_early set).
using Sink = std::function<bool(std::string_view)>;

// DEPRECATED entry points: new call sites should go through kq::Executor
// (exec/executor.h), which folds these overloads, the batch runner, and the
// serial reference behind one options/result shape. They remain for one PR
// as the facade's implementation layer and for tests that exercise the
// stream runtime directly; CI's deprecation gate rejects new uses in src/
// and bench/ outside the wrapper TUs.

// Core entry point: drain `input` through the dataflow graph into `sink`.
StreamResult run_streaming(const std::vector<exec::ExecStage>& stages,
                           std::istream& input, const Sink& sink,
                           exec::ThreadPool& pool, const StreamConfig& config);

// Stream into an ostream (the CLI's stdin → stdout path).
StreamResult run_streaming(const std::vector<exec::ExecStage>& stages,
                           std::istream& input, std::ostream& output,
                           exec::ThreadPool& pool, const StreamConfig& config);

// Stream from a file descriptor. Unlike the istream overloads, the fd
// source is poll(2)-driven, so upstream cancellation (a satisfied head, a
// closed sink) wakes a node blocked in a long read on an idle pipe
// promptly instead of at the next block boundary.
StreamResult run_streaming_fd(const std::vector<exec::ExecStage>& stages,
                              int input_fd, const Sink& sink,
                              exec::ThreadPool& pool,
                              const StreamConfig& config);
StreamResult run_streaming_fd(const std::vector<exec::ExecStage>& stages,
                              int input_fd, std::ostream& output,
                              exec::ThreadPool& pool,
                              const StreamConfig& config);

// In-memory convenience for tests and benches. If (and only if)
// incremental combination turns out undefined mid-stream (the batch
// runner's combine-fallback guard), reruns through exec::run_pipeline and
// sets `batch_fallback`; other streaming failures propagate as !ok.
StreamResult run_streaming_string(const std::vector<exec::ExecStage>& stages,
                                  std::string_view input, std::string* output,
                                  exec::ThreadPool& pool,
                                  const StreamConfig& config);

}  // namespace kq::stream
