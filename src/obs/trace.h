// Span tracing for the streaming runtime. A Tracer records named,
// timestamped spans — node lifetimes, per-block fill/process work, spill
// run writes, merge phases, synthesis timing — and serializes them as
// Chrome trace-event JSON, loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. The span taxonomy is documented in
// docs/OBSERVABILITY.md.
//
// Concurrency: recording is lock-sharded — each thread appends to a shard
// keyed by its thread ordinal, so concurrent dataflow nodes almost never
// contend on the same mutex. Serialization (write_chrome_json) locks every
// shard once, after the run. Shard and thread-name locks are sync::Mutex
// at rank kTracerShard — the top of the lock order (docs/CONCURRENCY.md):
// a span may be recorded while a channel-rank lock is held, never the
// other way around — and each events vector is GUARDED_BY its shard's
// lock, checked by the clang-threadsafety CI job.
//
// Disabled cost: nothing in this header runs unless a caller holds a
// Tracer*. Instrumentation sites use the null-tolerant free helpers below
// (obs::span / obs::instant), so a null tracer costs one pointer test —
// the hot dataflow path pays one branch per block, nothing else.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "stream/sync.h"

namespace kq::obs {

class Tracer {
 public:
  // Numeric span argument (Chrome "args"). Keys must be string literals
  // (they are stored unowned).
  struct Arg {
    const char* key = nullptr;
    std::uint64_t value = 0;
  };
  static constexpr std::size_t kMaxArgs = 6;

  // RAII span: construction stamps the start time, destruction (or an
  // explicit finish()) records one complete ("X") trace event on the
  // recording thread. A default-constructed Span is inert — the shape the
  // null-tracer fast path returns.
  class Span {
   public:
    Span() = default;
    Span(Span&& other) noexcept { *this = std::move(other); }
    Span& operator=(Span&& other) noexcept {
      if (this != &other) {
        finish();
        tracer_ = other.tracer_;
        name_ = std::move(other.name_);
        cat_ = other.cat_;
        start_ns_ = other.start_ns_;
        args_ = other.args_;
        n_args_ = other.n_args_;
        other.tracer_ = nullptr;
      }
      return *this;
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { finish(); }

    // Attaches a numeric argument (up to kMaxArgs; extras are dropped).
    void arg(const char* key, std::uint64_t value) {
      if (tracer_ && n_args_ < kMaxArgs) args_[n_args_++] = {key, value};
    }

    // Records the span now instead of at scope exit. Idempotent.
    void finish();

   private:
    friend class Tracer;
    Span(Tracer* tracer, std::string name, const char* cat);

    Tracer* tracer_ = nullptr;
    std::string name_;
    const char* cat_ = "";
    std::uint64_t start_ns_ = 0;
    std::array<Arg, kMaxArgs> args_{};
    std::size_t n_args_ = 0;
  };

  // `shards` caps recording contention; 0 picks a default sized for the
  // machine (clamped to [4, 64]).
  explicit Tracer(std::size_t shards = 0);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Starts a complete-event span (category must be a string literal).
  Span span(std::string name, const char* cat);

  // Records a zero-duration instant event.
  void instant(std::string name, const char* cat);

  // Names the calling thread in the trace (Chrome "thread_name" metadata);
  // dataflow nodes call this so Perfetto rows read as pipeline stages.
  void set_thread_name(std::string name);

  // Total events recorded so far (spans + instants, excluding metadata).
  std::size_t event_count() const;

  // Serializes everything recorded so far as a Chrome trace-event JSON
  // object ({"traceEvents": [...], ...}); timestamps are microseconds
  // relative to Tracer construction. Safe to call while other threads
  // still record (their later events are simply absent).
  void write_chrome_json(std::ostream& out) const;

 private:
  struct Event {
    std::string name;
    const char* cat = "";
    char phase = 'X';  // 'X' complete, 'i' instant
    std::uint32_t tid = 0;
    std::uint64_t ts_ns = 0;
    std::uint64_t dur_ns = 0;
    std::array<Arg, kMaxArgs> args{};
    std::size_t n_args = 0;
  };
  struct Shard {
    sync::Mutex mu{sync::LockRank::kTracerShard};
    std::vector<Event> events GUARDED_BY(mu);
  };

  std::uint64_t now_ns() const;
  void record(Event event);

  const std::chrono::steady_clock::time_point epoch_;
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable sync::Mutex names_mu_{sync::LockRank::kTracerShard};
  std::vector<std::pair<std::uint32_t, std::string>> thread_names_
      GUARDED_BY(names_mu_);
};

// Null-tolerant helpers: the instrumentation idiom is
//   auto sp = obs::span(tracer, "spill-run", "spill");
// which is a single branch (and an inert Span) when `tracer` is null.
inline Tracer::Span span(Tracer* tracer, std::string name, const char* cat) {
  return tracer ? tracer->span(std::move(name), cat) : Tracer::Span();
}
inline void instant(Tracer* tracer, std::string name, const char* cat) {
  if (tracer) tracer->instant(std::move(name), cat);
}

}  // namespace kq::obs
