// Per-stage runtime counters for the streaming executor. One StageCounters
// lives per dataflow node while a run is in flight; the node's own thread,
// its pool workers, and the channels on either side all accumulate into it
// with relaxed atomics (counts are monotone sums — no ordering is needed,
// only eventual totals, which the post-join aggregation into
// stream::StreamResult observes after every writer thread has exited).
//
// Counter semantics (full prose in docs/OBSERVABILITY.md):
//   records/bytes in   — blocks pulled from upstream (the node's input)
//   records/bytes out  — pushes downstream actually accepted
//   blocks             — input blocks processed
//   send/recv blocked  — wall time spent waiting on a full output channel /
//                        an empty input channel (node 0's recv side is the
//                        BlockReader's poll wait); the "blocked %" column
//   pool hit/miss      — BufferPool acquires served from recycled capacity
//   spill runs/bytes   — sorted runs and bytes written to disk
//   shard slices       — slices executed by a sharded segment's workers
//   worker busy        — wall time the segment's shard workers spent
//                        executing slices (summed across workers; compare
//                        against the node's span for parallel efficiency)
//   sqe batches        — io_uring submission batches the node's I/O engine
//                        entered (0 on the poll backend)
//   cqe waits          — blocking completion waits the engine entered
//                        (0 on the poll backend)
//   early_exit         — why the node stopped consuming input early
//
// Disabled cost: when stats collection is off no StageCounters exists and
// every instrumentation site reduces to a null test — one branch per block.
#pragma once

#include <atomic>
#include <cstdint>
#include <string_view>

namespace kq::obs {

// Why a node stopped consuming input before end of stream.
enum class EarlyExit : int {
  kNone = 0,
  kPrefixSatisfied,   // a prefix-bounded stage (head) has all it needs
  kDownstreamClosed,  // the consumer side closed (propagated cancellation)
};

const char* early_exit_name(EarlyExit cause);

struct StageCounters {
  std::atomic<std::uint64_t> records_in{0};
  std::atomic<std::uint64_t> records_out{0};
  std::atomic<std::uint64_t> bytes_in{0};
  std::atomic<std::uint64_t> bytes_out{0};
  std::atomic<std::uint64_t> blocks{0};
  std::atomic<std::uint64_t> send_blocked_ns{0};
  std::atomic<std::uint64_t> recv_blocked_ns{0};
  std::atomic<std::uint64_t> pool_hits{0};
  std::atomic<std::uint64_t> pool_misses{0};
  std::atomic<std::uint64_t> spill_runs{0};
  std::atomic<std::uint64_t> spill_bytes{0};
  std::atomic<std::uint64_t> shard_slices{0};
  std::atomic<std::uint64_t> worker_busy_ns{0};
  std::atomic<std::uint64_t> sqe_batches{0};
  std::atomic<std::uint64_t> cqe_waits{0};
  std::atomic<int> early_exit{static_cast<int>(EarlyExit::kNone)};

  void note_early_exit(EarlyExit cause) {
    early_exit.store(static_cast<int>(cause), std::memory_order_relaxed);
  }
  EarlyExit early_exit_cause() const {
    return static_cast<EarlyExit>(
        early_exit.load(std::memory_order_relaxed));
  }
};

// Number of records in a record-aligned block: delimiter occurrences, plus
// one for a trailing unterminated record (only the stream's final block can
// carry one, so summing per-block counts is exact).
std::uint64_t count_records(std::string_view data, char delimiter);

}  // namespace kq::obs
