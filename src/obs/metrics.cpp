#include "obs/metrics.h"

#include <cstring>

namespace kq::obs {

const char* early_exit_name(EarlyExit cause) {
  switch (cause) {
    case EarlyExit::kNone: return "";
    case EarlyExit::kPrefixSatisfied: return "prefix-satisfied";
    case EarlyExit::kDownstreamClosed: return "downstream-closed";
  }
  return "";
}

std::uint64_t count_records(std::string_view data, char delimiter) {
  if (data.empty()) return 0;
  std::uint64_t n = 0;
  const char* p = data.data();
  std::size_t remaining = data.size();
  while (remaining > 0) {
    const char* hit =
        static_cast<const char*>(std::memchr(p, delimiter, remaining));
    if (hit == nullptr) break;
    ++n;
    remaining -= static_cast<std::size_t>(hit - p) + 1;
    p = hit + 1;
  }
  if (data.back() != delimiter) ++n;  // trailing partial record
  return n;
}

}  // namespace kq::obs
