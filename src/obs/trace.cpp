#include "obs/trace.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <ostream>
#include <thread>

namespace kq::obs {
namespace {

// Small dense thread ordinals: stable per thread for the process lifetime,
// used both as the shard key and as the Chrome "tid" (real TIDs would work
// but make shard selection a hash away; ordinals keep shards balanced and
// traces readable).
std::uint32_t current_tid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void write_escaped(std::ostream& out, std::string_view text) {
  out << '"';
  for (char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

// Microseconds with sub-microsecond precision: Chrome's "ts"/"dur" accept
// doubles, and dataflow spans are often shorter than 1 us.
void write_us(std::ostream& out, std::uint64_t ns) {
  out << ns / 1000 << '.' << static_cast<char>('0' + (ns % 1000) / 100)
      << static_cast<char>('0' + (ns % 100) / 10)
      << static_cast<char>('0' + ns % 10);
}

}  // namespace

Tracer::Span::Span(Tracer* tracer, std::string name, const char* cat)
    : tracer_(tracer), name_(std::move(name)), cat_(cat),
      start_ns_(tracer->now_ns()) {}

void Tracer::Span::finish() {
  if (!tracer_) return;
  Event event;
  event.name = std::move(name_);
  event.cat = cat_;
  event.phase = 'X';
  event.ts_ns = start_ns_;
  event.dur_ns = tracer_->now_ns() - start_ns_;
  event.args = args_;
  event.n_args = n_args_;
  tracer_->record(std::move(event));
  tracer_ = nullptr;
}

Tracer::Tracer(std::size_t shards)
    : epoch_(std::chrono::steady_clock::now()) {
  if (shards == 0) {
    shards = 2 * std::thread::hardware_concurrency();
    shards = std::max<std::size_t>(4, std::min<std::size_t>(64, shards));
  }
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

std::uint64_t Tracer::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

Tracer::Span Tracer::span(std::string name, const char* cat) {
  return Span(this, std::move(name), cat);
}

void Tracer::instant(std::string name, const char* cat) {
  Event event;
  event.name = std::move(name);
  event.cat = cat;
  event.phase = 'i';
  event.ts_ns = now_ns();
  record(std::move(event));
}

void Tracer::set_thread_name(std::string name) {
  sync::MutexLock lock(names_mu_);
  thread_names_.emplace_back(current_tid(), std::move(name));
}

void Tracer::record(Event event) {
  event.tid = current_tid();
  Shard& shard = *shards_[event.tid % shards_.size()];
  sync::MutexLock lock(shard.mu);
  shard.events.push_back(std::move(event));
}

std::size_t Tracer::event_count() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    sync::MutexLock lock(shard->mu);
    n += shard->events.size();
  }
  return n;
}

void Tracer::write_chrome_json(std::ostream& out) const {
  std::vector<Event> events;
  for (const auto& shard : shards_) {
    sync::MutexLock lock(shard->mu);
    events.insert(events.end(), shard->events.begin(), shard->events.end());
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     return a.ts_ns < b.ts_ns;
                   });

  const long pid = static_cast<long>(::getpid());
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  auto comma = [&] {
    if (!first) out << ",\n";
    first = false;
  };

  comma();
  out << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << pid
      << ", \"tid\": 0, \"args\": {\"name\": \"kumquat\"}}";
  {
    sync::MutexLock lock(names_mu_);
    for (const auto& [tid, name] : thread_names_) {
      comma();
      out << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": " << pid
          << ", \"tid\": " << tid << ", \"args\": {\"name\": ";
      write_escaped(out, name);
      out << "}}";
    }
  }

  for (const Event& event : events) {
    comma();
    out << "{\"name\": ";
    write_escaped(out, event.name);
    out << ", \"cat\": \"" << event.cat << "\", \"ph\": \"" << event.phase
        << "\", \"pid\": " << pid << ", \"tid\": " << event.tid
        << ", \"ts\": ";
    write_us(out, event.ts_ns);
    if (event.phase == 'X') {
      out << ", \"dur\": ";
      write_us(out, event.dur_ns);
    } else if (event.phase == 'i') {
      out << ", \"s\": \"t\"";
    }
    if (event.n_args > 0) {
      out << ", \"args\": {";
      for (std::size_t i = 0; i < event.n_args; ++i) {
        if (i) out << ", ";
        out << '"' << event.args[i].key << "\": " << event.args[i].value;
      }
      out << '}';
    }
    out << '}';
  }
  out << "\n]}\n";
}

}  // namespace kq::obs
