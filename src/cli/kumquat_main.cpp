// The `kumquat` command-line driver: the end-user interface to the
// library (Figure 2's workflow as a tool).
//
//   kumquat synthesize '<command>'          synthesize and print combiners
//   kumquat compile '<pipeline>'            print the parallel plan
//   kumquat run [-k N] [--no-opt] '<pipeline>'
//                                           execute data-parallel,
//                                           stdin -> stdout
//
// Commands resolve to built-ins when known, otherwise to real binaries
// through fork/exec — new commands work without any registry change,
// which is the point of the paper.

#include <cstring>
#include <iostream>
#include <sstream>

#include "compile/optimize.h"
#include "compile/plan.h"
#include "procexec/external_command.h"
#include "text/shellwords.h"
#include "unixcmd/registry.h"

namespace {

using namespace kq;

cmd::CommandPtr resolve(const std::vector<std::string>& argv,
                        std::string* how) {
  std::string error;
  if (cmd::CommandPtr c = cmd::make_command(argv, &error)) {
    *how = "built-in";
    return c;
  }
  if (!argv.empty() && procexec::program_exists(argv[0])) {
    *how = "external binary";
    return std::make_shared<procexec::ExternalCommand>(argv);
  }
  *how = error;
  return nullptr;
}

int cmd_synthesize(const std::string& command_line) {
  auto argv = text::shell_split(command_line);
  if (!argv || argv->empty()) {
    std::cerr << "kumquat: cannot parse command line\n";
    return 2;
  }
  std::string how;
  cmd::CommandPtr command = resolve(*argv, &how);
  if (!command) {
    std::cerr << "kumquat: " << how << "\n";
    return 2;
  }
  std::cerr << "command:   " << command->display_name() << " (" << how
            << ")\n";
  synth::SynthesisResult result = synth::synthesize(*command, *argv);
  if (!result.success) {
    std::cerr << "no combiner: " << result.failure_reason << "\n";
    return 1;
  }
  std::cerr << "space:     " << result.space.total() << " candidates ("
            << result.space.rec << " RecOp + " << result.space.strct
            << " StructOp + " << result.space.run << " RunOp)\n"
            << "rounds:    " << result.rounds << ", "
            << result.observation_count << " observations, "
            << result.seconds << " s\n"
            << "certify:   " << result.sufficiency.verdict << "\n"
            << "plausible combiners:\n";
  for (const auto& g : result.plausible)
    std::cout << "  " << dsl::to_string(g) << "\n";
  std::cout << "selected: " << result.combiner.to_string() << "\n";
  return 0;
}

struct CompiledPipeline {
  compile::Plan plan;
  std::vector<exec::ExecStage> stages;
};

std::optional<CompiledPipeline> compile_line(const std::string& pipeline) {
  std::string error;
  auto parsed = compile::parse_pipeline(pipeline, &error);
  if (!parsed) {
    std::cerr << "kumquat: " << error << "\n";
    return std::nullopt;
  }
  static synth::SynthesisCache cache;
  CompiledPipeline out{compile::compile_pipeline(*parsed, cache), {}};
  compile::eliminate_intermediate_combiners(out.plan);
  out.stages = compile::lower_plan(out.plan);
  return out;
}

int cmd_compile(const std::string& pipeline) {
  auto compiled = compile_line(pipeline);
  if (!compiled) return 2;
  std::cout << "plan: " << compiled->plan.parallelized() << "/"
            << compiled->plan.total() << " stages parallel, "
            << compiled->plan.eliminated() << " combiner(s) eliminated\n";
  for (const auto& stage : compiled->plan.stages) {
    std::cout << "  " << stage.parsed.display << "\n    combiner: "
              << (stage.synthesis && stage.synthesis->success
                      ? stage.synthesis->combiner.to_string()
                      : "none")
              << "\n    mode:     "
              << (!stage.parallel
                      ? (stage.sequential_rerun
                             ? "sequential (rerun does not reduce)"
                             : "sequential")
                      : (stage.eliminate ? "parallel (combiner eliminated)"
                                         : "parallel"))
              << "\n";
  }
  return 0;
}

int cmd_run(const std::string& pipeline, int k, bool optimize) {
  auto compiled = compile_line(pipeline);
  if (!compiled) return 2;
  std::ostringstream buffer;
  buffer << std::cin.rdbuf();
  std::string input = buffer.str();
  exec::ThreadPool pool(k);
  exec::RunResult result =
      exec::run_pipeline(compiled->stages, input, pool, {k, optimize});
  std::cout << result.output;
  std::cerr << "kumquat: " << result.seconds << " s at k=" << k << "\n";
  return 0;
}

void usage() {
  std::cerr << "usage:\n"
               "  kumquat synthesize '<command>'\n"
               "  kumquat compile '<pipeline>'\n"
               "  kumquat run [-k N] [--no-opt] '<pipeline>'  (stdin -> "
               "stdout)\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    usage();
    return 2;
  }
  std::string verb = argv[1];
  if (verb == "synthesize") return cmd_synthesize(argv[2]);
  if (verb == "compile") return cmd_compile(argv[2]);
  if (verb == "run") {
    int k = 4;
    bool optimize = true;
    std::string pipeline;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "-k") == 0 && i + 1 < argc) {
        k = std::atoi(argv[++i]);
      } else if (std::strcmp(argv[i], "--no-opt") == 0) {
        optimize = false;
      } else {
        pipeline = argv[i];
      }
    }
    if (pipeline.empty() || k < 1) {
      usage();
      return 2;
    }
    return cmd_run(pipeline, k, optimize);
  }
  usage();
  return 2;
}
