// The `kumquat` command-line driver: the end-user interface to the
// library (Figure 2's workflow as a tool).
//
//   kumquat synthesize '<command>'          synthesize and print combiners
//   kumquat compile '<pipeline>'            print the parallel plan
//   kumquat check [--json] '<pipeline>'     static diagnostics, no execution
//   kumquat run [--jobs N] [--no-opt] [--stream|--batch] [--block-size N]
//               '<pipeline>'                execute data-parallel,
//                                           stdin -> stdout
//
// `run` executes through kq::Executor (exec/executor.h), defaulting to the
// streaming dataflow runtime (src/stream/): stdin is consumed in
// record-aligned blocks and never materialized whole, so memory stays
// bounded on arbitrarily large inputs; eligible parallel segments run
// sharded (per-shard stream sub-chains feeding an incremental combining
// tree). `--batch` selects the original in-memory staged runner through
// the same facade. --jobs (alias -k) defaults to the hardware thread
// count, capped at 16, identically in both modes.
//
// Commands resolve to built-ins when known, otherwise to real binaries
// through fork/exec — new commands work without any registry change,
// which is the point of the paper.

#include <malloc.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "bench_support/catalog.h"
#include "check/check.h"
#include "compile/optimize.h"
#include "compile/plan.h"
#include "exec/executor.h"
#include "obs/trace.h"
#include "procexec/external_command.h"
#include "text/shellwords.h"
#include "unixcmd/registry.h"

namespace {

using namespace kq;

cmd::CommandPtr resolve(const std::vector<std::string>& argv,
                        std::string* how) {
  std::string error;
  if (cmd::CommandPtr c = cmd::make_command(argv, &error)) {
    *how = "built-in";
    return c;
  }
  if (!argv.empty() && procexec::program_exists(argv[0])) {
    *how = "external binary";
    return std::make_shared<procexec::ExternalCommand>(argv);
  }
  *how = error;
  return nullptr;
}

int cmd_synthesize(const std::string& command_line) {
  auto argv = text::shell_split(command_line);
  if (!argv || argv->empty()) {
    std::cerr << "kumquat: cannot parse command line\n";
    return 2;
  }
  std::string how;
  cmd::CommandPtr command = resolve(*argv, &how);
  if (!command) {
    std::cerr << "kumquat: " << how << "\n";
    return 2;
  }
  std::cerr << "command:   " << command->display_name() << " (" << how
            << ")\n";
  synth::SynthesisResult result = synth::synthesize(*command, *argv);
  if (!result.success) {
    std::cerr << "no combiner: " << result.failure_reason << "\n";
    return 1;
  }
  std::cerr << "space:     " << result.space.total() << " candidates ("
            << result.space.rec << " RecOp + " << result.space.strct
            << " StructOp + " << result.space.run << " RunOp)\n"
            << "rounds:    " << result.rounds << ", "
            << result.observation_count << " observations, "
            << result.seconds << " s\n"
            << "certify:   " << result.sufficiency.verdict << "\n"
            << "plausible combiners:\n";
  for (const auto& g : result.plausible)
    std::cout << "  " << dsl::to_string(g) << "\n";
  std::cout << "selected: " << result.combiner.to_string() << "\n";
  return 0;
}

struct CompiledPipeline {
  compile::Plan plan;
  std::vector<exec::ExecStage> stages;
};

std::optional<CompiledPipeline> compile_line(const std::string& pipeline,
                                             bool rewrite,
                                             obs::Tracer* tracer = nullptr) {
  std::string error;
  auto parsed = compile::parse_pipeline(pipeline, &error);
  if (!parsed) {
    std::cerr << "kumquat: " << error << "\n";
    return std::nullopt;
  }
  static synth::SynthesisCache cache;
  compile::PlanOptions options;
  options.tracer = tracer;  // records "synthesize <cmd>" compile spans
  CompiledPipeline out{compile::compile_pipeline(*parsed, cache, options),
                       {}};
  // Whole-pipeline rewrites (sort|head -> bounded top-n) run before
  // combiner elimination: a fused stage is sequential and ends an
  // elimination chain. --no-rewrite restores the per-stage plan.
  if (rewrite) compile::rewrite_bounded_windows(out.plan);
  compile::eliminate_intermediate_combiners(out.plan);
  out.stages = compile::lower_plan(out.plan);
  return out;
}

// `compile` prints the plan with the analyzer's diagnostics inline next to
// the memory:/rewritten-from: annotations — the diagnostics come from the
// same check::analyze call `kumquat check` renders, so the two verbs can
// never disagree. With --check the verdict also drives the exit code
// (0 clean, 1 warnings, 2 errors); without it compile keeps exit 0.
int cmd_compile(const std::string& pipeline, bool rewrite, bool with_check) {
  auto compiled = compile_line(pipeline, rewrite);
  if (!compiled) return 2;
  check::Options check_options;
  check_options.rewrites_enabled = rewrite;
  check::Report report =
      check::analyze(compiled->plan, compiled->stages, check_options);
  std::cout << "plan: " << compiled->plan.parallelized() << "/"
            << compiled->plan.total() << " stages parallel, "
            << compiled->plan.eliminated() << " combiner(s) eliminated\n";
  for (std::size_t i = 0; i < compiled->plan.stages.size(); ++i) {
    const auto& stage = compiled->plan.stages[i];
    // lower_plan produces one ExecStage per planned stage, so the memory
    // class (how the streaming runtime bounds this stage) indexes 1:1.
    const exec::ExecStage& lowered = compiled->stages[i];
    std::cout << "  " << stage.parsed.display << "\n    combiner: "
              << (stage.synthesis && stage.synthesis->success
                      ? stage.synthesis->combiner.to_string()
                      : "none")
              << "\n    mode:     "
              << (!stage.parallel
                      ? (!stage.rewritten_from.empty()
                             ? "sequential (fused bounded window)"
                             : (stage.sequential_rerun
                                    ? "sequential (rerun does not reduce)"
                                    : "sequential"))
                      : (stage.eliminate ? "parallel (combiner eliminated)"
                                         : "parallel"))
              << "\n";
    if (!stage.rewritten_from.empty())
      std::cout << "    rewritten-from: " << stage.rewritten_from << "\n";
    std::cout << "    memory:   "
              << exec::memory_class_name(lowered.memory_class) << "\n";
    // A multi-stage diagnostic (a rewrite near-miss span) prints once, at
    // the first stage of its span.
    for (const check::Diagnostic& d : report.diagnostics)
      if (d.stage_begin == static_cast<int>(i))
        std::cout << "    check:    " << check::format_diagnostic(d) << "\n";
  }
  if (with_check) {
    std::cout << "check: " << report.status() << " (" << report.errors()
              << " error(s), " << report.warnings() << " warning(s), "
              << report.infos() << " info)\n";
    return report.exit_code();
  }
  return 0;
}

// `check`: the static analyzer as a verb. Analyzes the compiled plan
// without executing anything; --catalog sweeps every pipeline of the
// 70-script crossval catalog instead of one operand. Exit code: 0 clean
// (at most info), 1 warnings, 2 errors.
int cmd_check(const std::string& pipeline, bool rewrite, bool json,
              std::size_t spill_threshold, bool catalog) {
  check::Options options;
  options.spill_threshold = spill_threshold;
  options.rewrites_enabled = rewrite;
  std::vector<check::PipelineReport> reports;
  if (catalog) {
    // The catalog's file-consuming stages (comm, xargs, cat operands) need
    // their fixtures installed in a VFS before make_command resolves them.
    vfs::Vfs fs;
    synth::SynthesisCache cache;
    for (const bench::Script& script : bench::all_scripts()) {
      bench::prepare_input(script, 1 << 10, 1, fs);
      for (const std::string& line : script.pipelines) {
        std::string error;
        auto parsed = compile::parse_pipeline(line, &error);
        if (!parsed) {
          std::cerr << "kumquat: " << script.suite << "/" << script.name
                    << ": " << error << "\n";
          return 2;
        }
        compile::Plan plan =
            compile::compile_pipeline(*parsed, cache, {}, &fs);
        if (rewrite) compile::rewrite_bounded_windows(plan);
        compile::eliminate_intermediate_combiners(plan);
        std::vector<exec::ExecStage> stages = compile::lower_plan(plan);
        check::PipelineReport entry;
        entry.name = script.suite + "/" + script.name;
        entry.pipeline = line;
        entry.report = check::analyze(plan, stages, options);
        reports.push_back(std::move(entry));
      }
    }
  } else {
    auto compiled = compile_line(pipeline, rewrite);
    if (!compiled) return 2;
    check::PipelineReport entry;
    entry.name = pipeline;
    entry.pipeline = pipeline;
    entry.report = check::analyze(compiled->plan, compiled->stages, options);
    reports.push_back(std::move(entry));
  }
  if (json) {
    check::write_json(reports, std::cout);
  } else {
    for (const check::PipelineReport& entry : reports) {
      if (catalog) std::cout << "== " << entry.name << "\n";
      check::render_human(entry.report, entry.pipeline, std::cout);
    }
  }
  return check::exit_code(reports);
}

// Human-readable ns -> "12.3ms"-style duration for the --stats table.
std::string format_ms(std::uint64_t ns) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(1)
      << static_cast<double>(ns) / 1e6 << "ms";
  return out.str();
}

// The per-stage --stats table (stderr). One row per dataflow node:
//
//   stage  memory  blocks  records in/out  bytes in/out  blocked(send/recv)
//   pool(hit/miss)  spill(runs/bytes)  early-exit
//
// Counter semantics are documented in docs/OBSERVABILITY.md.
void print_stream_stats(const kq::ExecResult& result) {
  std::cerr << "kumquat stats: " << result.nodes.size() << " node(s), peak "
            << result.peak_inflight_bytes << " bytes in flight, read "
            << result.bytes_read << " input bytes\n";
  for (std::size_t i = 0; i < result.nodes.size(); ++i) {
    const stream::NodeMetrics& n = result.nodes[i];
    std::cerr << "  [" << i << "] " << n.commands << "\n"
              << "      memory=" << n.memory
              << (n.parallel ? " parallel" : "")
              << (n.sharded ? " sharded" : "")
              << (n.streamed_combine ? " streamed-combine" : "") << "\n"
              << "      blocks=" << n.chunks << " records=" << n.records_in
              << "/" << n.records_out << " bytes=" << n.in_bytes << "/"
              << n.out_bytes << "\n"
              << "      blocked send=" << format_ms(n.send_blocked_ns)
              << " recv=" << format_ms(n.recv_blocked_ns)
              << " pool=" << n.pool_hits << "/"
              << (n.pool_hits + n.pool_misses);
    if (n.spill_runs != 0 || n.spilled_bytes != 0)
      std::cerr << " spill=" << n.spill_runs << " runs/" << n.spilled_bytes
                << " bytes";
    if (!n.early_exit.empty())
      std::cerr << " early-exit=" << n.early_exit;
    std::cerr << "\n";
    if (n.sharded)
      std::cerr << "      shard slice=" << n.shard_slice_bytes
                << " bytes slices=" << n.shard_slices
                << " worker-busy=" << format_ms(n.worker_busy_ns) << "\n";
    // io_uring submission activity (source reads + spill writes routed
    // through this node's engines); always zero on the poll backend.
    if (n.sqe_batches != 0 || n.cqe_waits != 0)
      std::cerr << "      io sqe-batches=" << n.sqe_batches
                << " cqe-waits=" << n.cqe_waits << "\n";
  }
}

// Batch-path --stats: the staged runner's per-stage metrics, carried in the
// same unified NodeMetrics rows the facade returns for stream runs.
void print_batch_stats(const kq::ExecResult& result) {
  std::cerr << "kumquat stats: " << result.nodes.size()
            << " stage(s), batch\n";
  for (std::size_t i = 0; i < result.nodes.size(); ++i) {
    const stream::NodeMetrics& n = result.nodes[i];
    std::cerr << "  [" << i << "] " << n.commands << "\n"
              << "      " << (n.parallel ? "parallel" : "sequential")
              << (n.combiner_eliminated ? " (combiner eliminated)" : "")
              << (n.combine_fallback ? " (combine fallback)" : "")
              << " chunks=" << n.chunks << " bytes=" << n.in_bytes << "/"
              << n.out_bytes << " seconds=" << n.seconds << "\n";
  }
}

int cmd_run(const std::string& pipeline, int k, bool optimize, bool streaming,
            std::size_t block_size, std::size_t spill_threshold,
            char delimiter, bool rewrite, bool stats,
            const std::string& trace_path, bool check_only,
            io::Backend io_backend) {
  // --check: static analysis of the exact plan this run would execute,
  // then exit with the analyzer's verdict instead of reading stdin.
  if (check_only) {
    auto compiled = compile_line(pipeline, rewrite);
    if (!compiled) return 2;
    check::Options options;
    options.spill_threshold = spill_threshold;
    options.rewrites_enabled = rewrite;
    check::Report report =
        check::analyze(compiled->plan, compiled->stages, options);
    check::render_human(report, pipeline, std::cout);
    return report.exit_code();
  }
  // Fail on an unwritable trace path *before* compiling or consuming any
  // input: a run whose trace silently vanished is worse than no run.
  std::ofstream trace_out;
  std::unique_ptr<obs::Tracer> tracer;
  if (!trace_path.empty()) {
    trace_out.open(trace_path, std::ios::out | std::ios::trunc);
    if (!trace_out) {
      std::cerr << "kumquat: cannot open trace file '" << trace_path
                << "' for writing\n";
      return 2;
    }
    tracer = std::make_unique<obs::Tracer>();
  }

  auto compiled = compile_line(pipeline, rewrite, tracer.get());
  if (!compiled) return 2;

  // One facade for both modes: --jobs/-k, elimination, and the streaming
  // knobs resolve identically whether the staged runner or the dataflow
  // runtime executes the plan. k == 0 resolves the hardware default.
  kq::ExecOptions options;
  options.mode = streaming ? kq::ExecMode::kStream : kq::ExecMode::kBatch;
  options.parallelism = k;
  options.use_elimination = optimize;
  options.block_size = block_size;
  options.spill_threshold = spill_threshold;
  options.delimiter = delimiter;
  options.io_backend = io_backend;
  options.stats = stats;
  options.tracer = tracer.get();
  kq::Executor executor(options);
  const int resolved_k = executor.options().parallelism;

  // Serializes the trace (if any); returns false when the write failed.
  auto write_trace = [&]() -> bool {
    if (!tracer) return true;
    tracer->write_chrome_json(trace_out);
    trace_out.flush();
    if (!trace_out) {
      std::cerr << "kumquat: failed writing trace file '" << trace_path
                << "'\n";
      return false;
    }
    std::cerr << "kumquat: wrote " << tracer->event_count()
              << " trace events to " << trace_path << "\n";
    return true;
  };

  if (streaming) {
#ifdef __GLIBC__
    // Keep block-sized chunk strings mmap-backed: glibc's dynamic mmap
    // threshold would otherwise grow past the block size and retire freed
    // chunks into resident arena pages, inflating RSS by O(100 MiB) on
    // long runs — allocator slack, but indistinguishable from a leak to
    // anyone watching the bounded-memory runtime. Costs a few percent of
    // throughput; chunk pooling would recover it (see ROADMAP).
    mallopt(M_MMAP_THRESHOLD, 128 << 10);
#endif
    std::ios::sync_with_stdio(false);
  }
  // Read stdin by fd, not istream: in stream mode the fd source is
  // poll(2)-driven, so an early exit (a satisfied `head`) wakes a read
  // blocked on an idle pipe promptly instead of at the next block
  // boundary; in batch mode the facade slurps the fd whole.
  kq::ExecResult result = executor.run(
      compiled->stages, kq::Source::from_fd(STDIN_FILENO), std::cout);
  std::cout.flush();
  bool trace_ok = write_trace();
  if (!result.ok) {
    std::cerr << "kumquat: " << (streaming ? "streaming " : "") << "run failed: "
              << result.error << (streaming ? " (rerun with --batch)" : "")
              << "\n";
    return 1;
  }
  std::cerr << "kumquat: " << result.seconds << " s at k=" << resolved_k;
  if (streaming) {
    std::cerr << ", streaming";
    if (!result.io_backend.empty())
      std::cerr << " (io=" << result.io_backend << ")";
    std::cerr << ", read " << result.bytes_read
              << " input bytes, peak " << result.peak_inflight_bytes
              << " bytes in flight";
    if (result.spilled_bytes != 0)
      std::cerr << ", spilled " << result.spilled_bytes << " bytes to disk";
    std::cerr << "\n";
    if (stats) print_stream_stats(result);
  } else {
    std::cerr << ", batch\n";
    if (stats) print_batch_stats(result);
  }
  return trace_ok ? 0 : 1;
}

// Parses a one-byte record delimiter: a single character, or one of the
// escapes \t \n \0 \\. Multi-byte delimiters are rejected with a message
// (the block reader realigns on exactly one byte).
bool parse_delimiter(const char* text, char* out, std::string* error) {
  std::size_t len = std::strlen(text);
  if (len == 1) {
    *out = text[0];
    return true;
  }
  if (len == 2 && text[0] == '\\') {
    switch (text[1]) {
      case 't': *out = '\t'; return true;
      case 'n': *out = '\n'; return true;
      case '0': *out = '\0'; return true;
      case '\\': *out = '\\'; return true;
    }
  }
  *error = len == 0 ? "--delimiter requires a byte argument"
                    : "--delimiter takes a single byte (got \"" +
                          std::string(text) +
                          "\"); multi-byte delimiters are not supported";
  return false;
}

// Parses "1048576", "64K", "4M", "1G" (case-insensitive suffixes).
// Returns 0 (rejected) on trailing garbage or sizes outside [1, 1 TiB].
std::size_t parse_block_size(const char* text) {
  char* end = nullptr;
  double value = std::strtod(text, &end);
  if (end == text || value <= 0) return 0;
  double unit = 1;
  if (*end == 'k' || *end == 'K') unit = 1024, ++end;
  else if (*end == 'm' || *end == 'M') unit = 1024.0 * 1024, ++end;
  else if (*end == 'g' || *end == 'G') unit = 1024.0 * 1024 * 1024, ++end;
  if (*end != '\0') return 0;
  double bytes = value * unit;
  if (bytes < 1 || bytes > 1099511627776.0) return 0;  // cast-safe bound
  return static_cast<std::size_t>(bytes);
}

void usage() {
  std::cerr << "usage:\n"
               "  kumquat synthesize '<command>'\n"
               "  kumquat compile [--no-rewrite] [--check] '<pipeline>'\n"
               "  kumquat check [--json] [--no-rewrite] "
               "[--spill-threshold N[K|M|G]|0]\n"
               "                [--catalog | '<pipeline>']\n"
               "  kumquat run [--jobs N|-k N] [--no-opt] [--no-rewrite] "
               "[--stream|--batch]\n"
               "              [--block-size N[K|M|G]] "
               "[--spill-threshold N[K|M|G]|0]\n"
               "              [--delimiter C] [--io-backend auto|uring|poll]\n"
               "              [--stats] [--trace-json FILE]\n"
               "              [--check] '<pipeline>'  (stdin -> stdout)\n"
               "\n"
               "  run executes through kq::Executor: the streaming dataflow\n"
               "  runtime by default (bounded memory, default 1M blocks;\n"
               "  eligible parallel stages run sharded). Nodes that would\n"
               "  accumulate more than --spill-threshold (default 64M) spill\n"
               "  to disk; 0 disables spilling. --delimiter sets the record\n"
               "  byte the streaming reader realigns on (default \\n; accepts\n"
               "  \\t \\n \\0 escapes). --batch selects the in-memory staged\n"
               "  runner, which ignores the streaming-only flags. --jobs\n"
               "  (alias -k) defaults to the hardware thread count (max 16)\n"
               "  and applies identically in both modes. --io-backend picks\n"
               "  the stream-mode I/O engine for the stdin source and spill\n"
               "  files (default auto: io_uring where the kernel supports\n"
               "  it, else poll; KQ_IO_BACKEND overrides auto — see\n"
               "  docs/IO.md).\n"
               "\n"
               "  compile and run fuse bounded top-N patterns by default\n"
               "  ('sort | head -n N', 'uniq -c | sort -rn | head -n K')\n"
               "  into O(N) window stages; --no-rewrite keeps the original\n"
               "  per-stage plan.\n"
               "\n"
               "  --stats prints a per-stage telemetry table to stderr\n"
               "  (records, bytes, blocked time, spill activity). "
               "--trace-json\n"
               "  writes a Chrome trace-event file loadable in Perfetto\n"
               "  (see docs/OBSERVABILITY.md).\n"
               "\n"
               "  check analyzes the compiled plan without executing it and\n"
               "  emits coded diagnostics (KQ-MEM, KQ-PROBE, KQ-ORDER,\n"
               "  KQ-DEAD, KQ-REWRITE, KQ-EXEC — see docs/CHECKS.md); exit\n"
               "  code 0 = clean, 1 = warnings, 2 = errors. --json emits the\n"
               "  versioned machine-readable document; --catalog sweeps the\n"
               "  70-pipeline crossval catalog. `run --check` and `compile\n"
               "  --check` apply the same analyzer to the plan those verbs\n"
               "  would use.\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    usage();
    return 2;
  }
  std::string verb = argv[1];
  if (verb == "synthesize") return cmd_synthesize(argv[2]);
  if (verb == "compile") {
    bool rewrite = true;
    bool with_check = false;
    std::string pipeline;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--no-rewrite") == 0) {
        rewrite = false;
      } else if (std::strcmp(argv[i], "--check") == 0) {
        with_check = true;
      } else if (std::strncmp(argv[i], "--", 2) == 0) {
        // A typo'd flag silently compiled as the pipeline would mislead
        // anyone comparing rewritten vs unrewritten plans.
        std::cerr << "kumquat: compile: unknown option " << argv[i] << "\n";
        return 2;
      } else if (!pipeline.empty()) {
        // An unquoted pipeline arrives as several operands; keeping only
        // the last would silently compile the wrong thing.
        std::cerr << "kumquat: compile: unexpected operand '" << argv[i]
                  << "' (quote the pipeline)\n";
        return 2;
      } else {
        pipeline = argv[i];
      }
    }
    if (pipeline.empty()) {
      usage();
      return 2;
    }
    return cmd_compile(pipeline, rewrite, with_check);
  }
  if (verb == "check") {
    bool rewrite = true;
    bool json = false;
    bool catalog = false;
    std::size_t spill_threshold = 64 << 20;
    std::string pipeline;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--no-rewrite") == 0) {
        rewrite = false;
      } else if (std::strcmp(argv[i], "--json") == 0) {
        json = true;
      } else if (std::strcmp(argv[i], "--catalog") == 0) {
        catalog = true;
      } else if (std::strcmp(argv[i], "--spill-threshold") == 0 &&
                 i + 1 < argc) {
        ++i;
        if (std::strcmp(argv[i], "0") == 0) {
          spill_threshold = 0;
        } else {
          spill_threshold = parse_block_size(argv[i]);
          if (spill_threshold == 0) {
            usage();
            return 2;
          }
        }
      } else if (std::strncmp(argv[i], "--", 2) == 0) {
        // A typo'd flag silently analyzed as the pipeline would report
        // diagnostics for the wrong thing.
        std::cerr << "kumquat: check: unknown option " << argv[i] << "\n";
        return 2;
      } else if (!pipeline.empty()) {
        std::cerr << "kumquat: check: unexpected operand '" << argv[i]
                  << "' (quote the pipeline)\n";
        return 2;
      } else {
        pipeline = argv[i];
      }
    }
    if (catalog != pipeline.empty()) {
      // Exactly one of --catalog / a pipeline operand must be given.
      usage();
      return 2;
    }
    return cmd_check(pipeline, rewrite, json, spill_threshold, catalog);
  }
  if (verb == "run") {
    int k = 0;  // 0 = the hardware default (kq::default_parallelism())
    bool optimize = true;
    bool streaming = true;
    bool rewrite = true;
    std::size_t block_size = 1 << 20;
    std::size_t spill_threshold = 64 << 20;
    char delimiter = '\n';
    io::Backend io_backend = io::Backend::kAuto;
    bool stats = false;
    bool check_only = false;
    std::string trace_path;
    std::string pipeline;
    for (int i = 2; i < argc; ++i) {
      if ((std::strcmp(argv[i], "-k") == 0 ||
           std::strcmp(argv[i], "--jobs") == 0) &&
          i + 1 < argc) {
        k = std::atoi(argv[++i]);
        if (k < 1) {
          std::cerr << "kumquat: " << argv[i - 1]
                    << " requires a positive integer\n";
          return 2;
        }
      } else if (std::strcmp(argv[i], "--no-opt") == 0) {
        optimize = false;
      } else if (std::strcmp(argv[i], "--no-rewrite") == 0) {
        rewrite = false;
      } else if (std::strcmp(argv[i], "--check") == 0) {
        check_only = true;
      } else if (std::strcmp(argv[i], "--stream") == 0) {
        streaming = true;
      } else if (std::strcmp(argv[i], "--batch") == 0) {
        streaming = false;
      } else if (std::strcmp(argv[i], "--block-size") == 0 && i + 1 < argc) {
        block_size = parse_block_size(argv[++i]);
      } else if (std::strcmp(argv[i], "--spill-threshold") == 0 &&
                 i + 1 < argc) {
        ++i;
        if (std::strcmp(argv[i], "0") == 0) {
          spill_threshold = 0;  // spilling (and the record cap) off
        } else {
          spill_threshold = parse_block_size(argv[i]);
          if (spill_threshold == 0) {
            usage();
            return 2;
          }
        }
      } else if (std::strcmp(argv[i], "--delimiter") == 0 && i + 1 < argc) {
        std::string error;
        if (!parse_delimiter(argv[++i], &delimiter, &error)) {
          std::cerr << "kumquat: " << error << "\n";
          return 2;
        }
      } else if (std::strcmp(argv[i], "--io-backend") == 0 && i + 1 < argc) {
        if (!io::parse_backend(argv[++i], &io_backend)) {
          std::cerr << "kumquat: --io-backend must be auto, uring, or poll "
                       "(got '" << argv[i] << "')\n";
          return 2;
        }
      } else if (std::strcmp(argv[i], "--stats") == 0) {
        stats = true;
      } else if (std::strcmp(argv[i], "--trace-json") == 0 && i + 1 < argc) {
        trace_path = argv[++i];
        if (trace_path.empty()) {
          std::cerr << "kumquat: --trace-json requires a file path\n";
          return 2;
        }
      } else if (std::strncmp(argv[i], "--", 2) == 0) {
        // A typo'd --no-rewrite silently running WITH the rewrite would
        // make an A/B comparison pass vacuously.
        std::cerr << "kumquat: run: unknown option " << argv[i] << "\n";
        return 2;
      } else if (!pipeline.empty()) {
        std::cerr << "kumquat: run: unexpected operand '" << argv[i]
                  << "' (quote the pipeline)\n";
        return 2;
      } else {
        pipeline = argv[i];
      }
    }
    if (pipeline.empty() || k < 0 || block_size == 0) {
      usage();
      return 2;
    }
    return cmd_run(pipeline, k, optimize, streaming, block_size,
                   spill_threshold, delimiter, rewrite, stats, trace_path,
                   check_only, io_backend);
  }
  usage();
  return 2;
}
