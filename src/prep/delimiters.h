// Per-command delimiter-alphabet inference. The candidate space is built
// over the delimiters that actually appear in the command's outputs
// ('\n' always; '\t', ' ', ',' when observed), capped at three — matching
// the three space sizes of the paper's Table 10 (see DESIGN.md §3).
#pragma once

#include <string_view>
#include <vector>

namespace kq::prep {

// Infers the delimiter alphabet from sample command outputs.
std::vector<char> infer_delims(const std::vector<std::string_view>& outputs,
                               std::size_t cap = 3);

}  // namespace kq::prep
