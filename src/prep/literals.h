// Literal extraction from command scripts (§3.2 "Preprocessing"). The
// preprocessor scans a command's argv for regular expressions and numeric
// literals:
//  * regex patterns (grep PATTERN, sed s/RE/../, awk comparisons) yield a
//    dictionary of matching strings so that generated inputs exercise the
//    command's selecting behaviour;
//  * numeric literals (sed 100q, head -n N, awk "$1 >= 1000") seed input
//    shapes whose dimensions straddle the number.
#pragma once

#include <string>
#include <vector>

namespace kq::prep {

struct CommandLiterals {
  // Strings that match extracted patterns (fed into the input dictionary).
  std::vector<std::string> dictionary;
  // Numeric literals found in the script.
  std::vector<long> numbers;
};

CommandLiterals extract_literals(const std::vector<std::string>& argv,
                                 std::uint64_t seed = 17);

}  // namespace kq::prep
