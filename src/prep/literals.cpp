#include "prep/literals.h"

#include <cctype>

#include "regex/regex.h"
#include "unixcmd/builtins.h"

namespace kq::prep {
namespace {

void add_pattern_samples(const std::string& pattern, std::uint64_t seed,
                         std::vector<std::string>& dictionary) {
  auto re = regex::Regex::compile(pattern);
  if (!re) return;
  for (std::string& s : re->sample_matches(8, seed))
    if (!s.empty()) dictionary.push_back(std::move(s));
}

// Extracts the pattern part of a sed `s<D>pattern<D>replacement<D>` script
// and any numeric address (e.g. `100q`).
void scan_sed_script(const std::string& script, std::uint64_t seed,
                     CommandLiterals& out) {
  std::size_t i = 0;
  while (i < script.size() &&
         std::isdigit(static_cast<unsigned char>(script[i])))
    ++i;
  // Saturating parse: a user can write `sed 99999999999999999999q` and a
  // throwing std::stol would abort synthesis instead of probing "huge".
  if (i > 0) out.numbers.push_back(*cmd::parse_count(script.substr(0, i)));
  if (i < script.size() && script[i] == 's' && i + 1 < script.size()) {
    char delim = script[i + 1];
    std::size_t start = i + 2;
    std::size_t end = start;
    std::string pattern;
    while (end < script.size() && script[end] != delim) {
      if (script[end] == '\\' && end + 1 < script.size()) {
        pattern.push_back(script[end]);
        pattern.push_back(script[end + 1]);
        end += 2;
        continue;
      }
      pattern.push_back(script[end]);
      ++end;
    }
    if (!pattern.empty() && pattern != "^" && pattern != "$")
      add_pattern_samples(pattern, seed, out.dictionary);
  }
}

void scan_numbers(const std::string& word, CommandLiterals& out) {
  std::size_t i = 0;
  while (i < word.size()) {
    if (std::isdigit(static_cast<unsigned char>(word[i]))) {
      std::size_t start = i;
      while (i < word.size() &&
             std::isdigit(static_cast<unsigned char>(word[i])))
        ++i;
      // Skip degenerate single digits used as awk truthy patterns. The
      // parse saturates: `head -c 99999999999999999999` probes LONG_MAX
      // rather than throwing out_of_range mid-synthesis.
      if (i - start >= 1) {
        long v = *cmd::parse_count(word.substr(start, i - start));
        if (v > 1) out.numbers.push_back(v);
      }
    } else {
      ++i;
    }
  }
}

}  // namespace

CommandLiterals extract_literals(const std::vector<std::string>& argv,
                                 std::uint64_t seed) {
  CommandLiterals out;
  if (argv.empty()) return out;
  std::string prog = argv[0];
  if (auto slash = prog.rfind('/'); slash != std::string::npos)
    prog = prog.substr(slash + 1);

  if (prog == "grep") {
    for (std::size_t i = 1; i < argv.size(); ++i) {
      if (!argv[i].empty() && argv[i][0] == '-') continue;
      add_pattern_samples(argv[i], seed, out.dictionary);
      break;
    }
  } else if (prog == "sed") {
    for (std::size_t i = 1; i < argv.size(); ++i) {
      if (argv[i] == "-e") continue;
      if (!argv[i].empty() && argv[i][0] == '-') continue;
      scan_sed_script(argv[i], seed, out);
      break;
    }
  } else if (prog == "awk" || prog == "gawk" || prog == "mawk") {
    for (std::size_t i = 1; i < argv.size(); ++i) {
      if (argv[i] == "-v") {
        ++i;
        continue;
      }
      scan_numbers(argv[i], out);
    }
  } else if (prog == "head" || prog == "tail" || prog == "sed") {
    for (std::size_t i = 1; i < argv.size(); ++i) scan_numbers(argv[i], out);
  }
  return out;
}

}  // namespace kq::prep
