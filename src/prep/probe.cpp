#include "prep/probe.h"

namespace kq::prep {

const char* to_string(InputClass c) {
  switch (c) {
    case InputClass::kAnyText: return "any-text";
    case InputClass::kSortedText: return "sorted-text";
    case InputClass::kFileNames: return "file-names";
  }
  return "?";
}

InputClass classify_inputs(const cmd::Command& f, const vfs::Vfs& fs) {
  static const char kUnsorted[] = "melon\napple\nzebra\nberry\nkiwi\n";
  static const char kSorted[] = "apple\nberry\nkiwi\nmelon\nzebra\n";

  if (f.execute(kUnsorted).ok()) return InputClass::kAnyText;
  if (f.execute(kSorted).ok()) return InputClass::kSortedText;

  std::string file_list;
  for (const std::string& name : fs.names()) {
    file_list += name;
    file_list.push_back('\n');
  }
  if (!file_list.empty() && f.execute(file_list).ok())
    return InputClass::kFileNames;
  return InputClass::kAnyText;
}

}  // namespace kq::prep
