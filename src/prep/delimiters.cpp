#include "prep/delimiters.h"

#include <algorithm>
#include <array>
#include <cstdint>

namespace kq::prep {

std::vector<char> infer_delims(const std::vector<std::string_view>& outputs,
                               std::size_t cap) {
  // Count candidate delimiters across outputs.
  constexpr std::array<char, 3> kOptional = {' ', '\t', ','};
  std::array<std::uint64_t, 3> counts{};
  for (std::string_view out : outputs) {
    for (char c : out) {
      for (std::size_t i = 0; i < kOptional.size(); ++i)
        if (c == kOptional[i]) ++counts[i];
    }
  }
  std::vector<std::pair<std::uint64_t, char>> present;
  for (std::size_t i = 0; i < kOptional.size(); ++i)
    if (counts[i] > 0) present.push_back({counts[i], kOptional[i]});
  std::stable_sort(present.begin(), present.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });

  std::vector<char> delims = {'\n'};
  for (const auto& [count, c] : present) {
    if (delims.size() >= cap) break;
    delims.push_back(c);
  }
  return delims;
}

}  // namespace kq::prep
