// Probe-input classification (§3.2 "Preprocessing"): KumQuat checks whether
// a command can process three test inputs without errors — an unsorted word
// list, the same list sorted, and a list of file names — and configures the
// input generator accordingly (e.g. only sorted streams for `comm`, file
// name dictionaries for `xargs`).
#pragma once

#include "unixcmd/command.h"
#include "vfs/vfs.h"

namespace kq::prep {

enum class InputClass {
  kAnyText,    // all probes succeed: unconstrained generation
  kSortedText, // only the sorted probe succeeds (comm-style commands)
  kFileNames,  // only the file-name probe succeeds (xargs-style commands)
};

const char* to_string(InputClass c);

InputClass classify_inputs(const cmd::Command& f, const vfs::Vfs& fs);

}  // namespace kq::prep
