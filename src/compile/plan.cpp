#include "compile/plan.h"

#include "obs/trace.h"

#include "dsl/ast.h"
#include "unixcmd/registry.h"
#include "unixcmd/sort_cmd.h"
#include "unixcmd/topn.h"

namespace kq::compile {

int Plan::parallelized() const {
  int n = 0;
  for (const PlannedStage& s : stages)
    if (s.parallel) ++n;
  return n;
}

const char* seq_reason_name(SeqReason reason) {
  switch (reason) {
    case SeqReason::kParallel: return "parallel";
    case SeqReason::kUnknownCommand: return "unknown-command";
    case SeqReason::kSynthesisFailed: return "synthesis-failed";
    case SeqReason::kRerunNoReduce: return "rerun-no-reduce";
    case SeqReason::kProbeGuard: return "probe-guard";
    case SeqReason::kFusedWindow: return "fused-window";
  }
  return "?";
}

int Plan::eliminated() const {
  int n = 0;
  for (const PlannedStage& s : stages)
    if (s.eliminate) ++n;
  return n;
}

Plan compile_pipeline(const ParsedPipeline& parsed,
                      synth::SynthesisCache& cache, const PlanOptions& options,
                      const vfs::Vfs* fs) {
  Plan plan;
  for (const ParsedStage& parsed_stage : parsed.stages) {
    PlannedStage stage;
    stage.parsed = parsed_stage;
    std::string error;
    stage.command = cmd::make_command(parsed_stage.argv, &error, fs);
    if (!stage.command) {
      // Unknown command: keep the stage but it can only run serially.
      stage.seq_reason = SeqReason::kUnknownCommand;
      stage.seq_detail = error;
      plan.stages.push_back(std::move(stage));
      continue;
    }
    auto span = obs::span(options.tracer,
                          "synthesize " + stage.command->display_name(),
                          "compile");
    const synth::SynthesisResult& synth_result = cache.get_or_synthesize(
        *stage.command, parsed_stage.argv, options.synthesis, fs);
    span.arg("rounds", static_cast<std::uint64_t>(synth_result.rounds));
    span.arg("observations", synth_result.observation_count);
    span.arg("success", synth_result.success ? 1 : 0);
    span.finish();
    stage.synthesis = &synth_result;
    if (synth_result.success) {
      bool rerun_only = synth_result.combiner.rerun_only();
      bool reduces = synth_result.reduction_ratio <=
                     options.rerun_reduction_threshold;
      if (rerun_only && !reduces) {
        stage.sequential_rerun = true;
        stage.parallel = false;
        stage.seq_reason = SeqReason::kRerunNoReduce;
        stage.seq_detail =
            "only combiner is rerun and the command does not reduce "
            "(output/input ratio " +
            std::to_string(synth_result.reduction_ratio) + " above " +
            std::to_string(options.rerun_reduction_threshold) + ")";
      } else {
        stage.parallel = true;
        stage.seq_reason = SeqReason::kParallel;
      }
      // Probe-coverage guard: a command whose declared scale bound (a
      // head/tail count, a sed line address) exceeds every certification
      // probe (synth::kProbeCountCap) is observationally identical to its
      // below-bound twin — `tail -n 1000000` looks like cat, `sed 5000d`
      // like an unaddressed script — so the certified combiner is wrong
      // exactly on the inputs too big to probe. Keep such stages
      // sequential; their declared streaming lowering is exact at any
      // size.
      auto bound = stage.command->scale_bound();
      if (bound && *bound > synth::kProbeCountCap) {
        stage.parallel = false;
        stage.sequential_rerun = false;
        stage.seq_reason = SeqReason::kProbeGuard;
        stage.probe_bound = *bound;
        stage.seq_detail =
            "declared scale bound " + std::to_string(*bound) +
            " exceeds the certification probe cap " +
            std::to_string(synth::kProbeCountCap);
      }
    } else {
      stage.seq_reason = SeqReason::kSynthesisFailed;
      stage.seq_detail = synth_result.failure_reason;
    }
    plan.stages.push_back(std::move(stage));
  }
  return plan;
}

std::vector<exec::ExecStage> lower_plan(const Plan& plan) {
  std::vector<exec::ExecStage> stages;
  stages.reserve(plan.stages.size());
  for (const PlannedStage& p : plan.stages) {
    exec::ExecStage stage;
    if (p.command) {
      stage.command = p.command;
    } else {
      // Unknown command: a pass-through stage would silently corrupt
      // results, so surface the failure loudly at run time instead.
      std::string name = p.parsed.display;
      stage.command = cmd::make_lambda_command(
          name, [name](std::string_view) -> std::string {
            return "kumquat: cannot execute unknown stage: " + name + "\n";
          });
    }
    stage.parallel = p.parallel;
    stage.eliminate_combiner = p.eliminate;
    if (p.synthesis && p.synthesis->success) {
      stage.concat_combiner = p.synthesis->combiner.concat_equivalent() &&
                              p.synthesis->outputs_newline_terminated;
      stage.defer_combine = !p.synthesis->combiner.combiners().empty();
      for (const dsl::Combiner& g : p.synthesis->combiner.combiners()) {
        if (g.node->op != dsl::Op::kMerge && g.node->op != dsl::Op::kRerun)
          stage.defer_combine = false;
      }
      stage.combiner_name = p.synthesis->combiner.to_string();
      synth::CompositeCombiner combiner = p.synthesis->combiner;
      cmd::CommandPtr command = p.command;
      stage.combine =
          [combiner, command](const std::vector<std::string>& parts) {
            dsl::EvalContext ctx{command.get()};
            return combiner.apply_k(parts, ctx);
          };
    }
    // Memory class: how the streaming runtime may bound this stage. A
    // declared-streamable command runs per block through a fused
    // stream-chain node: every prefix-bounded stage (head — early exit and
    // upstream cancellation beat data parallelism on a command whose output
    // is a bounded prefix) and any per-record stage the plan left
    // sequential (synthesis failed, rerun does not reduce, or k = 1). A
    // sequential window-bounded stage (tail -n N, uniq, wc, sort -u) runs
    // as the window-terminated tail of a stream chain, holding O(window)
    // instead of materializing; a sort -u window additionally carries the
    // command's own comparator so an outsized distinct set can spill as
    // sorted runs. A parallel merge-combined stage spills its sorted chunk
    // outputs as runs (comparator = the combiner's merge spec); a
    // sequential built-in sort externalizes with its own spec; parallel
    // concat/fold stages are bounded already; everything else must
    // materialize.
    const dsl::Combiner* primary =
        p.synthesis && p.synthesis->success ? p.synthesis->combiner.primary()
                                            : nullptr;
    stage.rerun_combiner = primary && primary->node->op == dsl::Op::kRerun;
    const cmd::Streamability streamable =
        p.command ? p.command->streamability() : cmd::Streamability::kNone;
    if (streamable == cmd::Streamability::kPrefix ||
        (streamable == cmd::Streamability::kPerRecord && !stage.parallel)) {
      stage.memory_class = exec::MemoryClass::kStatelessStream;
    } else if (streamable == cmd::Streamability::kWindow && !stage.parallel) {
      stage.memory_class = exec::MemoryClass::kWindowStream;
      // The comparator an outsized window spills sorted runs under: the
      // command's own spec for sort -u, the fused spec for a rewritten
      // top-n/top-k stage, null (no spill) for tail -n/uniq/wc.
      stage.sort_spec = cmd::sort_spec_of(*p.command);
      if (!stage.sort_spec)
        stage.sort_spec = cmd::fused_sort_spec_of(*p.command);
    } else if (stage.parallel && primary &&
               primary->node->op == dsl::Op::kMerge && primary->merge_spec) {
      stage.memory_class = exec::MemoryClass::kSortableSpill;
      stage.sort_spec = primary->merge_spec;
    } else if (stage.parallel &&
               (stage.concat_combiner || !stage.defer_combine) &&
               stage.combine) {
      stage.memory_class = exec::MemoryClass::kStreaming;
    } else if (!stage.parallel && p.command) {
      if (auto spec = cmd::sort_spec_of(*p.command)) {
        stage.memory_class = exec::MemoryClass::kSortableSpill;
        stage.sort_spec = std::move(spec);
      }
    }
    // Shard eligibility: a parallel combined stage whose command executes
    // through a stream/window processor can run as a per-shard stream
    // sub-chain (exec::run_slice_fused) instead of whole-slice Command::run
    // hops, bounding each shard worker at O(block + window). Prefix-bounded
    // stages are deliberately excluded — their streaming early exit (head
    // reads O(blocks)) beats any data parallelism.
    stage.shardable = stage.parallel && stage.combine != nullptr &&
                      (streamable == cmd::Streamability::kPerRecord ||
                       streamable == cmd::Streamability::kWindow);
    stages.push_back(std::move(stage));
  }
  return stages;
}

}  // namespace kq::compile
