#include "compile/optimize.h"

#include <string>

#include "unixcmd/builtins.h"
#include "unixcmd/sort_cmd.h"
#include "unixcmd/topn.h"

namespace kq::compile {

int eliminate_intermediate_combiners(Plan& plan) {
  int eliminated = 0;
  for (std::size_t i = 0; i + 1 < plan.stages.size(); ++i) {
    PlannedStage& stage = plan.stages[i];
    const PlannedStage& next = plan.stages[i + 1];
    if (!stage.parallel || !next.parallel) continue;
    if (!stage.synthesis || !stage.synthesis->success) continue;
    // Theorem 5 preconditions: the combiner is concat and f1's outputs are
    // streams (newline-terminated). `tr -d '\n'` fails the second check.
    if (!stage.synthesis->combiner.concat_equivalent()) continue;
    if (!stage.synthesis->outputs_newline_terminated) continue;
    stage.eliminate = true;
    ++eliminated;
  }
  return eliminated;
}

namespace {

// The sort spec of a built-in `sort` stage usable as a top-n comparator
// (merge-mode sort never reaches a plan: make_sort rejects it).
std::shared_ptr<const cmd::SortSpec> sort_stage_spec(const PlannedStage& s) {
  if (!s.command) return nullptr;
  return cmd::sort_spec_of(*s.command);
}

// The line count of a `head` stage eligible for fusion (line mode only —
// a byte-mode head cuts mid-record, which no sorted window reproduces).
std::optional<long> head_stage_count(const PlannedStage& s) {
  if (!s.command) return std::nullopt;
  return cmd::head_line_count(*s.command);
}

PlannedStage make_fused_stage(const Plan& plan, std::size_t first,
                              std::size_t count, cmd::CommandPtr command) {
  PlannedStage fused;
  std::string from;
  for (std::size_t j = first; j < first + count; ++j) {
    if (!from.empty()) from += " | ";
    from += plan.stages[j].parsed.display;
  }
  fused.parsed.display = command->display_name();
  fused.command = std::move(command);
  fused.rewritten_from = std::move(from);
  fused.seq_reason = SeqReason::kFusedWindow;
  return fused;  // sequential, no synthesis: lowers to kWindowStream
}

}  // namespace

int rewrite_bounded_windows(Plan& plan) {
  int fused = 0;
  std::vector<PlannedStage> out;
  out.reserve(plan.stages.size());
  std::size_t i = 0;
  while (i < plan.stages.size()) {
    // uniq … | sort <spec> | head -n N  ->  one bounded top-k stage.
    if (i + 2 < plan.stages.size() && plan.stages[i].command &&
        cmd::is_uniq_command(*plan.stages[i].command)) {
      auto spec = sort_stage_spec(plan.stages[i + 1]);
      auto n = head_stage_count(plan.stages[i + 2]);
      if (spec && n) {
        std::string display = "top-k(" + std::to_string(*n) + "): " +
                              plan.stages[i].parsed.display + " | " +
                              plan.stages[i + 1].parsed.display;
        out.push_back(make_fused_stage(
            plan, i, 3,
            cmd::make_window_top_n_command(plan.stages[i].command,
                                           std::move(spec), *n,
                                           std::move(display))));
        ++fused;
        i += 3;
        continue;
      }
    }
    // sort <spec> | head -n N  ->  one bounded top-n stage.
    if (i + 1 < plan.stages.size()) {
      auto spec = sort_stage_spec(plan.stages[i]);
      auto n = head_stage_count(plan.stages[i + 1]);
      if (spec && n) {
        std::string display = "top-n(" + std::to_string(*n) + "): " +
                              plan.stages[i].parsed.display;
        out.push_back(make_fused_stage(
            plan, i, 2,
            cmd::make_top_n_command(std::move(spec), *n,
                                    std::move(display))));
        ++fused;
        i += 2;
        continue;
      }
    }
    out.push_back(plan.stages[i]);
    ++i;
  }
  if (fused > 0) plan.stages = std::move(out);
  return fused;
}

}  // namespace kq::compile
