#include "compile/optimize.h"

namespace kq::compile {

int eliminate_intermediate_combiners(Plan& plan) {
  int eliminated = 0;
  for (std::size_t i = 0; i + 1 < plan.stages.size(); ++i) {
    PlannedStage& stage = plan.stages[i];
    const PlannedStage& next = plan.stages[i + 1];
    if (!stage.parallel || !next.parallel) continue;
    if (!stage.synthesis || !stage.synthesis->success) continue;
    // Theorem 5 preconditions: the combiner is concat and f1's outputs are
    // streams (newline-terminated). `tr -d '\n'` fails the second check.
    if (!stage.synthesis->combiner.concat_equivalent()) continue;
    if (!stage.synthesis->outputs_newline_terminated) continue;
    stage.eliminate = true;
    ++eliminated;
  }
  return eliminated;
}

}  // namespace kq::compile
