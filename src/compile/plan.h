// Plan construction (Figure 2, steps 2-3): synthesize a combiner for every
// stage, decide which stages run data-parallel, and lower the plan to the
// runtime's ExecStage form.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "compile/pipeline.h"
#include "exec/runner.h"
#include "synth/synthesize.h"

namespace kq::obs {
class Tracer;
}

namespace kq::compile {

struct PlanOptions {
  synth::SynthesisConfig synthesis;
  // A stage whose only combiners are rerun is parallelized only when the
  // command shrinks its input by at least this factor; otherwise the rerun
  // dominates and the stage stays sequential (§2's `tr -cs` decision).
  double rerun_reduction_threshold = 0.5;
  // When non-null, compile_pipeline records one "synthesize <cmd>" span
  // per stage (category "compile", with rounds/observation args) so
  // --trace-json shows synthesis cost alongside the run (src/obs/trace.h).
  obs::Tracer* tracer = nullptr;
};

// Why the planner classified a stage the way it did. compile_pipeline
// records the rationale alongside the decision so the static analyzer
// (`kumquat check`, src/check/) and `kumquat compile` can explain the plan
// instead of re-deriving it from bare flags — the two renderings can never
// disagree because both read the same record.
enum class SeqReason {
  kParallel,         // not sequential: the stage runs data-parallel
  kUnknownCommand,   // make_command failed (parse error in seq_detail)
  kSynthesisFailed,  // no plausible combiner (reason in seq_detail)
  kRerunNoReduce,    // rerun-only combiner and the command does not reduce
  kProbeGuard,       // declared scale bound exceeds every certification probe
  kFusedWindow,      // created sequential by rewrite_bounded_windows
};

const char* seq_reason_name(SeqReason reason);

struct PlannedStage {
  ParsedStage parsed;
  cmd::CommandPtr command;
  // Owned by the SynthesisCache passed to compile_pipeline.
  const synth::SynthesisResult* synthesis = nullptr;
  bool parallel = false;
  bool sequential_rerun = false;  // combiner exists but stage kept serial
  bool eliminate = false;         // set by the optimizer (Theorem 5)
  // Set by the pipeline-rewrite pass (rewrite_bounded_windows): the
  // original stage chain this fused stage replaced, " | "-joined (empty
  // for ordinary stages). `kumquat compile` prints it as the
  // `rewritten-from:` annotation.
  std::string rewritten_from;
  // Classification rationale (see SeqReason). `seq_detail` carries the
  // human-readable specifics: the registry's parse error, the synthesis
  // failure reason, or the measured reduction ratio. For kProbeGuard,
  // `probe_bound` is the command's declared scale bound that outran the
  // probe cap (synth::kProbeCountCap).
  SeqReason seq_reason = SeqReason::kParallel;
  std::string seq_detail;
  long probe_bound = 0;
};

struct Plan {
  std::vector<PlannedStage> stages;

  int total() const { return static_cast<int>(stages.size()); }
  int parallelized() const;
  int eliminated() const;
};

// Builds the plan, synthesizing (or reusing cached) combiners per stage.
// Stages whose commands are unknown or whose synthesis fails run serially.
Plan compile_pipeline(const ParsedPipeline& parsed,
                      synth::SynthesisCache& cache,
                      const PlanOptions& options = {},
                      const vfs::Vfs* fs = nullptr);

// Lowers a plan to runtime stages, binding each stage's composite combiner.
std::vector<exec::ExecStage> lower_plan(const Plan& plan);

}  // namespace kq::compile
