// Pipeline parsing: split a shell pipeline script into stages (Figure 2,
// step 1). A leading `cat FILE` stage is recorded but excluded from the
// stage list, matching the paper's stage accounting (footnote 3).
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace kq::compile {

struct ParsedStage {
  std::vector<std::string> argv;
  std::string display;
};

struct ParsedPipeline {
  std::vector<ParsedStage> stages;
  bool had_leading_cat = false;
  std::string leading_cat_operand;  // e.g. "$IN"
};

std::optional<ParsedPipeline> parse_pipeline(std::string_view script,
                                             std::string* error = nullptr);

}  // namespace kq::compile
