// Whole-pipeline optimizations over the compiled plan. Two passes:
//
//   - Intermediate-combiner elimination (§3.5, Theorem 5): when a parallel
//     stage's combiner is concatenation and its outputs are
//     newline-terminated streams, the combiner can be dropped and the
//     output substreams fed directly into the next parallel stage's input
//     substreams.
//
//   - Bounded-window rewriting (the PaSh-style observation that
//     whole-pipeline rewrites beat per-command parallelization): adjacent
//     stages whose composition needs only a bounded window of state are
//     replaced by one fused kWindow stage (src/unixcmd/topn.*):
//
//       sort <spec> | head -n N           ->  top-n(N) of sort <spec>
//       uniq … | sort <spec> | head -n N  ->  top-k(N) of uniq … | sort
//
//     O(N) resident state instead of materializing or external-merge-
//     sorting the whole input; output byte-identical by construction (the
//     fused window reproduces stable_sort order, -u dedup, and head's
//     bound — see topn.h). The pass is semantics-preserving for *any*
//     input, sorted or not: the top-k form keeps uniq's run semantics by
//     composing uniq's own window processor in front of the top-n window.
#pragma once

#include "compile/plan.h"

namespace kq::compile {

// Marks eliminable stages in-place; returns the number eliminated.
int eliminate_intermediate_combiners(Plan& plan);

// Replaces matching stage runs with fused bounded top-n/top-k stages
// (annotated via PlannedStage::rewritten_from); returns the number of
// fused stages created. Run before eliminate_intermediate_combiners —
// fused stages are sequential and end elimination chains. The CLI's
// --no-rewrite skips this pass.
int rewrite_bounded_windows(Plan& plan);

}  // namespace kq::compile
