// Intermediate-combiner elimination (§3.5, Theorem 5): when a parallel
// stage's combiner is concatenation and its outputs are newline-terminated
// streams, the combiner can be dropped and the output substreams fed
// directly into the next parallel stage's input substreams.
#pragma once

#include "compile/plan.h"

namespace kq::compile {

// Marks eliminable stages in-place; returns the number eliminated.
int eliminate_intermediate_combiners(Plan& plan);

}  // namespace kq::compile
