#include "compile/pipeline.h"

#include "text/shellwords.h"
#include "text/strings.h"

namespace kq::compile {

std::optional<ParsedPipeline> parse_pipeline(std::string_view script,
                                             std::string* error) {
  auto stage_lines = text::split_pipeline(script);
  if (!stage_lines) {
    if (error) *error = "unterminated quote in pipeline";
    return std::nullopt;
  }
  ParsedPipeline out;
  for (std::size_t i = 0; i < stage_lines->size(); ++i) {
    auto words = text::shell_split((*stage_lines)[i]);
    if (!words) {
      if (error) *error = "unterminated quote in stage";
      return std::nullopt;
    }
    if (words->empty()) {
      if (error) *error = "empty pipeline stage";
      return std::nullopt;
    }
    if (i == 0 && (*words)[0] == "cat" && words->size() <= 2) {
      out.had_leading_cat = true;
      if (words->size() == 2) out.leading_cat_operand = (*words)[1];
      continue;
    }
    ParsedStage stage;
    stage.display = std::string(text::trim((*stage_lines)[i]));
    stage.argv = std::move(*words);
    out.stages.push_back(std::move(stage));
  }
  if (out.stages.empty()) {
    if (error) *error = "pipeline has no processing stages";
    return std::nullopt;
  }
  return out;
}

}  // namespace kq::compile
