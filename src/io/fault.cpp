#include "io/fault.h"

namespace kq::io {

FaultDecision FaultPlan::next(FaultOp op) {
  std::function<void()> hook;
  FaultDecision decision;
  {
    sync::MutexLock lock(mu_);
    std::size_t attempt = attempts_[static_cast<int>(op)]++;
    for (const Fault& fault : faults_) {
      if (fault.op != op) continue;
      if (attempt < fault.at || attempt >= fault.at + fault.repeat) continue;
      ++fired_;
      switch (fault.kind) {
        case Fault::Kind::kShortOp:
          decision.action = FaultDecision::Action::kShortOp;
          decision.cap = fault.cap;
          break;
        case Fault::Kind::kEintr:
        case Fault::Kind::kEagain:
          decision.action = FaultDecision::Action::kRetry;
          break;
        case Fault::Kind::kErrno:
          decision.action = FaultDecision::Action::kFail;
          decision.err = fault.err;
          break;
        case Fault::Kind::kCancel:
          // The hook (typically BlockReader::cancel) runs outside the
          // lock; the attempt then retries so the engine's own
          // cancellation check observes the flag.
          decision.action = FaultDecision::Action::kRetry;
          hook = fault.hook;
          break;
      }
      break;  // first matching fault wins for this attempt
    }
  }
  if (hook) hook();
  return decision;
}

}  // namespace kq::io
