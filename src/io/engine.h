// Async I/O backend abstraction for the streaming runtime. A kq::io::Engine
// owns the syscall layer under one dataflow node's I/O: source reads for
// BlockReader fds, and spill-run writes / merge-phase reads for the spill
// machinery (stream/spill.cpp). Two implementations:
//
//   - PollEngine (poll_engine.cpp): the portability fallback — the
//     poll(2)+read source loop the runtime always had, plus synchronous
//     pwrite/pread spill I/O. Works on every kernel.
//   - UringEngine (uring_engine.cpp): io_uring via raw syscalls (no
//     liburing dependency). Source reads are submitted as READ chained to
//     a LINK_TIMEOUT (the cancellation tick), spill writes are copied
//     into registered buffers and submitted as batched async
//     WRITE_FIXED/WRITE SQEs that complete while the node keeps sorting,
//     and merge reads are plain offset READs. Built only where
//     <linux/io_uring.h> exists; selected only when the runtime kernel
//     probe succeeds.
//
// Backend selection (resolve_backend): explicit > KQ_IO_BACKEND env >
// probe. `--io-backend {auto,uring,poll}` on the CLI and
// ExecOptions::io_backend feed the explicit layer; kAuto consults the env
// var and then picks uring when the kernel supports it. An explicit uring
// request on a kernel without it degrades to poll with a one-time stderr
// note rather than failing the run.
//
// Both engines route every I/O attempt through the same FaultPlan seam
// (io/fault.h), so fault scenarios are replayable and backend-equivalent
// by construction.
//
// Thread safety: an Engine is thread-COMPATIBLE, owned by exactly one
// node thread (the single-owner convention of docs/CONCURRENCY.md) — an
// io_uring ring is per-owner and never shared. The one cross-thread edge,
// set_counters after the owner thread started, is covered by an atomic
// pointer like BlockReader's tracer.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

namespace kq::obs {
struct StageCounters;
}

namespace kq::stream {
class BufferPool;
}

namespace kq::io {

class FaultPlan;

enum class Backend { kAuto, kPoll, kUring };

// "auto" / "poll" / "uring" for flags, env, and telemetry labels.
const char* backend_name(Backend backend);
// Parses a --io-backend / KQ_IO_BACKEND value; false on unknown text.
bool parse_backend(std::string_view text, Backend* out);

// Runtime kernel probe: true when io_uring_setup succeeds on this kernel
// (not gated off by seccomp, CONFIG_IO_URING=n, or a pre-5.x kernel).
// Probed once, cached.
bool uring_supported();

// Resolves kAuto through KQ_IO_BACKEND and the kernel probe; degrades an
// unsupported explicit kUring to kPoll (one-time stderr note). Never
// returns kAuto.
Backend resolve_backend(Backend requested);

// Per-run I/O configuration, carried in stream::StreamConfig and
// exec::ExecOptions. `faults` is a test-only seam (see io/fault.h);
// production runs leave it null.
struct IoOptions {
  Backend backend = Backend::kAuto;
  FaultPlan* faults = nullptr;
};

// Shared flags between a BlockReader and its engine's source-read loop —
// the same shared state the poll source lambda always captured, passed by
// pointer so the loop can honor cancellation, report idleness and errors,
// and charge opt-in wait time. All pointers outlive the read (they live in
// the BlockReader's shared_ptr state).
struct SourceCtl {
  const std::atomic<bool>* cancel = nullptr;   // consumer asked us to stop
  std::atomic<bool>* idle = nullptr;           // out: source has no more *now*
  const std::atomic<bool>* time_waits = nullptr;  // opt-in wait timing
  std::atomic<std::uint64_t>* wait_ns = nullptr;  // out: idle-wait total
  int* error = nullptr;                        // out: errno on hard failure
};

// Counters an engine reports without a StageCounters sink attached (unit
// tests); with one attached the same increments land there too.
struct EngineStats {
  std::uint64_t sqe_batches = 0;  // submission batches entered (uring only)
  std::uint64_t cqe_waits = 0;    // blocking completion waits (uring only)
};

class Engine {
 public:
  virtual ~Engine();

  virtual const char* name() const = 0;  // "poll" or "uring"

  // Source read for BlockReader: up to `n` bytes into `buf`, returning the
  // count. 0 means end of input, cancellation, or a hard error (then
  // *ctl.error is the errno). Honors the cancellation tick: a cancel()
  // while the producer is idle is noticed within ~50 ms, and in-flight
  // uring SQEs are timed out and re-armed rather than left blocking.
  virtual std::size_t read_source(int fd, char* buf, std::size_t n,
                                  const SourceCtl& ctl) = 0;

  // Spill-run write of `bytes` at `offset`. The uring engine queues the
  // write asynchronously (the data is staged in registered buffers, so the
  // caller's buffer is free immediately) and surfaces completion errors on
  // the next write/flush/read; the poll engine completes synchronously.
  // False on a hard error, with a coded "[KQ-IO] ..." message in *error.
  virtual bool write_at(int fd, std::string_view bytes, std::size_t offset,
                        std::string* error) = 0;

  // Waits until every queued write has fully completed. False surfaces any
  // asynchronous write failure (ENOSPC mid-run, short-write-then-EIO).
  virtual bool flush(int fd, std::string* error) = 0;

  // Merge-phase read: exactly `n` bytes at `offset`. False on error or
  // unexpected EOF, with a coded message in *error.
  virtual bool read_at(int fd, char* buf, std::size_t n, std::size_t offset,
                       std::string* error) = 0;

  // Attaches the owning node's stats counters (sqe_batches / cqe_waits).
  // Atomic for the same reason as BlockReader::set_tracer.
  void set_counters(obs::StageCounters* counters) {
    counters_.store(counters, std::memory_order_release);
  }

  const EngineStats& stats() const { return stats_; }

 protected:
  void count_sqe_batch();
  void count_cqe_wait();

  EngineStats stats_;

 private:
  std::atomic<obs::StageCounters*> counters_{nullptr};
};

// Builds the engine for `options` (resolving kAuto). A uring engine whose
// ring setup fails at construction (RLIMIT_MEMLOCK, seccomp) degrades to
// poll. `pool` (optional) supplies the uring engine's registered staging
// buffer from the runtime's block-buffer pool budget.
std::unique_ptr<Engine> make_engine(const IoOptions& options = {},
                                    stream::BufferPool* pool = nullptr);

// Coded diagnostic for I/O failures, e.g.
//   "[KQ-IO] spill write: No space left on device (ENOSPC)".
// The KQ-IO code is documented in docs/CHECKS.md alongside the static
// checker's KQ-S/KQ-W codes.
std::string coded_error(const char* op, int err);
std::string coded_error(const char* op, const std::string& detail);

}  // namespace kq::io
