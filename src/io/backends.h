// Internal factory seams between engine.cpp and the backend translation
// units. Not part of the public kq::io surface — include io/engine.h.
#pragma once

#include <memory>

#include "io/engine.h"

namespace kq::stream {
class BufferPool;
}

namespace kq::io {

std::unique_ptr<Engine> make_poll_engine(FaultPlan* faults);

// Null when the kernel lacks io_uring or ring setup fails (the caller
// falls back to poll). Compiled to always-null where <linux/io_uring.h>
// is unavailable.
std::unique_ptr<Engine> make_uring_engine(FaultPlan* faults,
                                          stream::BufferPool* pool);

// The raw probe behind uring_supported() (uncached).
bool probe_uring();

}  // namespace kq::io
