// io_uring backend, built on raw syscalls (the container carries no
// liburing; the ABI below is the stable kernel interface from
// <linux/io_uring.h>). One ring per engine, one engine per owning node
// thread — the single-owner convention of docs/CONCURRENCY.md, so ring
// head/tail handling needs the kernel-facing barriers only, never
// cross-thread locking.
//
// Shapes used:
//   - Source reads: IORING_OP_READ chained to IORING_OP_LINK_TIMEOUT with
//     the runtime's 50 ms cancellation tick — the read either completes
//     with data/EOF or comes back -ECANCELED when the tick fires, at which
//     point the cancel flag is rechecked and the read re-armed. This is
//     the uring equivalent of the poll engine's timeout poll, and it is
//     what makes downstream close cancel an in-flight SQE instead of
//     leaving a reader parked in the kernel. Regular files never block
//     indefinitely, so their reads skip the timeout chain (one SQE per
//     block instead of two — the saturating-read fast path).
//   - Spill writes: copied into a slot of a registered staging buffer
//     (drawn from stream::BufferPool when the runtime provides one) and
//     submitted as IORING_OP_WRITE_FIXED batches; the caller's run buffer
//     is reusable immediately and the node keeps sorting while the device
//     drains. Short writes are re-armed for the remainder; completion
//     errors (ENOSPC, EIO) stick and surface as coded [KQ-IO] errors on
//     the next write/flush/read. IORING_REGISTER_BUFFERS failing (memlock
//     rlimit) degrades to plain IORING_OP_WRITE through the same staging.
//   - Merge reads: IORING_OP_READ at an explicit offset, waited
//     synchronously (the merge heap needs the bytes before it can pick a
//     winner, so there is nothing useful to overlap).

#include "io/backends.h"

#if defined(__linux__) && __has_include(<linux/io_uring.h>)

#include <fcntl.h>
#include <linux/io_uring.h>
#include <poll.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "io/fault.h"
#include "stream/channel.h"

namespace kq::io {
namespace {

int sys_io_uring_setup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}
int sys_io_uring_enter(int fd, unsigned to_submit, unsigned min_complete,
                       unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}
int sys_io_uring_register(int fd, unsigned opcode, void* arg, unsigned nr) {
  return static_cast<int>(::syscall(__NR_io_uring_register, fd, opcode, arg,
                                    nr));
}

// Cancellation tick for pipe-source reads, matching the poll engine's
// interval (see kCancelPollMs there): the LINK_TIMEOUT below is the same
// 50 ms bound on how long a cancel() can go unnoticed.
constexpr long long kCancelTickNs = 50LL * 1000 * 1000;

constexpr unsigned kSqEntries = 32;
// Write staging: kWriteSlots in-flight spill-write chunks of up to
// kSlotBytes each. 8 x 128 KiB = 1 MiB, the same order as one block
// buffer, drawn from the runtime's BufferPool budget when available.
constexpr std::size_t kSlotBytes = 128 * 1024;
constexpr unsigned kWriteSlots = 8;
// Queued-but-unsubmitted SQE count that triggers a batched submit.
constexpr unsigned kSubmitBatch = 4;

struct KernelTimespec {  // struct __kernel_timespec without linux/time_types.h
  long long tv_sec;
  long long tv_nsec;
};

class UringEngine : public Engine {
 public:
  UringEngine(FaultPlan* faults, stream::BufferPool* pool)
      : faults_(faults), pool_(pool) {
    io_uring_params p{};
    ring_fd_ = sys_io_uring_setup(kSqEntries, &p);
    if (ring_fd_ < 0) return;

    sq_size_ = p.sq_off.array + p.sq_entries * sizeof(unsigned);
    cq_size_ = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
    single_mmap_ = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
    std::size_t sq_map = single_mmap_ ? std::max(sq_size_, cq_size_)
                                      : sq_size_;
    sq_ring_ = ::mmap(nullptr, sq_map, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
    if (sq_ring_ == MAP_FAILED) {
      teardown();
      return;
    }
    if (single_mmap_) {
      cq_ring_ = sq_ring_;
    } else {
      cq_ring_ = ::mmap(nullptr, cq_size_, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_POPULATE, ring_fd_,
                        IORING_OFF_CQ_RING);
      if (cq_ring_ == MAP_FAILED) {
        cq_ring_ = nullptr;
        teardown();
        return;
      }
    }
    sqes_ = static_cast<io_uring_sqe*>(
        ::mmap(nullptr, p.sq_entries * sizeof(io_uring_sqe),
               PROT_READ | PROT_WRITE, MAP_SHARED | MAP_POPULATE, ring_fd_,
               IORING_OFF_SQES));
    if (sqes_ == MAP_FAILED) {
      sqes_ = nullptr;
      teardown();
      return;
    }
    sq_entries_ = p.sq_entries;

    auto* sq = static_cast<char*>(sq_ring_);
    sq_head_ = reinterpret_cast<unsigned*>(sq + p.sq_off.head);
    sq_tail_ = reinterpret_cast<unsigned*>(sq + p.sq_off.tail);
    sq_mask_ = *reinterpret_cast<unsigned*>(sq + p.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<unsigned*>(sq + p.sq_off.array);
    auto* cq = static_cast<char*>(cq_ring_);
    cq_head_ = reinterpret_cast<unsigned*>(cq + p.cq_off.head);
    cq_tail_ = reinterpret_cast<unsigned*>(cq + p.cq_off.tail);
    cq_mask_ = *reinterpret_cast<unsigned*>(cq + p.cq_off.ring_mask);
    cqes_ = reinterpret_cast<io_uring_cqe*>(cq + p.cq_off.cqes);
    local_tail_ = *sq_tail_;

    staging_ = pool_ ? pool_->acquire() : std::string();
    staging_.resize(kWriteSlots * kSlotBytes);
    iovec iov{staging_.data(), staging_.size()};
    fixed_ok_ = sys_io_uring_register(ring_fd_, IORING_REGISTER_BUFFERS, &iov,
                                      1) == 0;
    for (unsigned i = 0; i < kWriteSlots; ++i) slot_busy_[i] = false;
    valid_ = true;
  }

  ~UringEngine() override {
    if (valid_) {
      // Drain in-flight writes before unmapping: their completions point
      // into staging_ and the ring pages. Errors are already sticky; a
      // failed drain here has nowhere better to report.
      std::string ignored;
      (void)drain_writes(&ignored);
    }
    teardown();
    if (pool_ && !staging_.empty()) pool_->release(std::move(staging_));
  }

  bool valid() const { return valid_; }
  const char* name() const override { return "uring"; }

  std::size_t read_source(int fd, char* buf, std::size_t n,
                          const SourceCtl& ctl) override {
    bool regular = is_regular(fd);
    while (true) {
      if (ctl.cancel->load()) return 0;  // consumer-side stop, not error
      std::size_t want = n;
      switch (consult(FaultOp::kSourceRead, &want)) {
        case FaultDecision::Action::kProceed:
        case FaultDecision::Action::kShortOp:
          break;
        case FaultDecision::Action::kRetry:
          continue;
        case FaultDecision::Action::kFail:
          *ctl.error = fault_err_;
          return 0;
      }

      std::uint64_t id = next_id_++;
      io_uring_sqe* sqe = get_sqe();
      if (sqe == nullptr) {
        *ctl.error = enter_errno_;
        return 0;
      }
      std::memset(sqe, 0, sizeof(*sqe));
      sqe->opcode = IORING_OP_READ;
      sqe->fd = fd;
      sqe->addr = reinterpret_cast<std::uint64_t>(buf);
      sqe->len = static_cast<unsigned>(want);
      sqe->off = static_cast<std::uint64_t>(-1);  // read(2) file-position
      sqe->user_data = id;
      pending_.emplace(id, Pending{Pending::Kind::kSync});
      if (!regular) {
        // Chain the cancellation tick: the read completes -ECANCELED when
        // the timeout fires first, and the timeout completes -ECANCELED
        // when the read wins. Regular files always complete promptly, so
        // they skip the chain (and the extra SQE).
        sqe->flags |= IOSQE_IO_LINK;
        std::uint64_t tid = next_id_++;
        io_uring_sqe* tsqe = get_sqe();
        if (tsqe == nullptr) {
          *ctl.error = enter_errno_;
          return 0;
        }
        std::memset(tsqe, 0, sizeof(*tsqe));
        tsqe->opcode = IORING_OP_LINK_TIMEOUT;
        tsqe->addr = reinterpret_cast<std::uint64_t>(&tick_);
        tsqe->len = 1;
        tsqe->user_data = tid;
        pending_.emplace(tid, Pending{Pending::Kind::kTimeout});
      }

      bool timing =
          !regular && ctl.time_waits->load(std::memory_order_relaxed);
      std::chrono::steady_clock::time_point t0;
      if (timing) t0 = std::chrono::steady_clock::now();
      int res;
      if (!wait_sync(id, &res)) {
        *ctl.error = enter_errno_;
        return 0;
      }
      if (res > 0) {
        // Source gone idle? Same zero-timeout readability probe (and
        // EINTR retry) as the poll engine — the flush heuristic in
        // BlockReader::next must behave identically on both backends.
        if (regular) {
          ctl.idle->store(false);
        } else {
          struct pollfd pfd{fd, POLLIN, 0};
          int now;
          do {
            pfd.revents = 0;
            now = ::poll(&pfd, 1, 0);
          } while (now < 0 && errno == EINTR);
          ctl.idle->store(now == 0);
        }
        return static_cast<std::size_t>(res);
      }
      if (res == 0) return 0;  // end of input
      if (res == -ECANCELED) {
        // The cancellation tick fired while the producer was idle: this
        // was a real wait, charged like the poll engine's timed-out poll.
        if (timing) {
          ctl.wait_ns->fetch_add(
              static_cast<std::uint64_t>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count()),
              std::memory_order_relaxed);
        }
        continue;  // recheck cancellation, re-arm the read
      }
      if (res == -EINTR || res == -EAGAIN) continue;
      *ctl.error = -res;
      return 0;
    }
  }

  bool write_at(int fd, std::string_view bytes, std::size_t offset,
                std::string* error) override {
    if (!write_error_.empty()) {
      *error = write_error_;
      return false;
    }
    while (!bytes.empty()) {
      std::size_t want = std::min(bytes.size(), kSlotBytes);
      switch (consult(FaultOp::kSpillWrite, &want)) {
        case FaultDecision::Action::kProceed:
        case FaultDecision::Action::kShortOp:
          break;
        case FaultDecision::Action::kRetry:
          continue;
        case FaultDecision::Action::kFail:
          write_error_ = coded_error("spill write", fault_err_);
          *error = write_error_;
          return false;
      }
      int slot = acquire_slot(error);
      if (slot < 0) return false;
      char* stage = staging_.data() + slot * kSlotBytes;
      std::memcpy(stage, bytes.data(), want);
      if (!queue_write(fd, slot, stage, static_cast<unsigned>(want), offset,
                       error))
        return false;
      bytes.remove_prefix(want);
      offset += want;
      if (queued_ >= kSubmitBatch && !submit(0, error)) return false;
    }
    return true;
  }

  bool flush(int, std::string* error) override { return drain_writes(error); }

  bool read_at(int fd, char* buf, std::size_t n, std::size_t offset,
               std::string* error) override {
    // Merge reads see the file the writes built: all queued writes must
    // land first (they may cover the very extent being read).
    if (!drain_writes(error)) return false;
    while (n > 0) {
      std::size_t want = n;
      switch (consult(FaultOp::kSpillRead, &want)) {
        case FaultDecision::Action::kProceed:
        case FaultDecision::Action::kShortOp:
          break;
        case FaultDecision::Action::kRetry:
          continue;
        case FaultDecision::Action::kFail:
          *error = coded_error("spill read", fault_err_);
          return false;
      }
      std::uint64_t id = next_id_++;
      io_uring_sqe* sqe = get_sqe();
      if (sqe == nullptr) {
        *error = coded_error("spill read", enter_errno_);
        return false;
      }
      std::memset(sqe, 0, sizeof(*sqe));
      sqe->opcode = IORING_OP_READ;
      sqe->fd = fd;
      sqe->addr = reinterpret_cast<std::uint64_t>(buf);
      sqe->len = static_cast<unsigned>(want);
      sqe->off = offset;
      sqe->user_data = id;
      pending_.emplace(id, Pending{Pending::Kind::kSync});
      int res;
      if (!wait_sync(id, &res)) {
        *error = coded_error("spill read", enter_errno_);
        return false;
      }
      if (res < 0) {
        if (res == -EINTR || res == -EAGAIN) continue;
        *error = coded_error("spill read", -res);
        return false;
      }
      if (res == 0) {
        *error = coded_error("spill read", "unexpected end of spill file");
        return false;
      }
      buf += res;
      offset += static_cast<std::size_t>(res);
      n -= static_cast<std::size_t>(res);
    }
    return true;
  }

 private:
  struct Pending {
    enum class Kind { kSync, kTimeout, kWrite };
    Kind kind = Kind::kSync;
    bool done = false;
    int res = 0;
    // kWrite bookkeeping for short-write re-arming.
    int fd = -1;
    unsigned slot = 0;
    const char* data = nullptr;
    unsigned len = 0;
    std::size_t offset = 0;
  };

  FaultDecision::Action consult(FaultOp op, std::size_t* want) {
    if (faults_ == nullptr) return FaultDecision::Action::kProceed;
    FaultDecision d = faults_->next(op);
    if (d.action == FaultDecision::Action::kShortOp)
      *want = std::min(*want, std::max<std::size_t>(1, d.cap));
    fault_err_ = d.err;
    return d.action;
  }

  bool is_regular(int fd) {
    if (fd != cached_fd_) {
      struct stat st{};
      cached_regular_ = ::fstat(fd, &st) == 0 && S_ISREG(st.st_mode);
      cached_fd_ = fd;
    }
    return cached_regular_;
  }

  // A free SQE slot, or null after a hard io_uring_enter failure (then
  // enter_errno_ holds the errno). The SQ frees as the kernel consumes
  // entries at submit, so making space never requires reaping completions.
  io_uring_sqe* get_sqe() {
    while (local_tail_ - __atomic_load_n(sq_head_, __ATOMIC_ACQUIRE) >=
           sq_entries_) {
      std::string ignored;
      if (!submit(0, &ignored)) return nullptr;
    }
    unsigned idx = local_tail_ & sq_mask_;
    sq_array_[idx] = idx;
    ++local_tail_;
    ++queued_;
    return &sqes_[idx];
  }

  // Publishes queued SQEs and submits them, optionally blocking for
  // `wait_n` completions. False only on a hard enter failure.
  bool submit(unsigned wait_n, std::string* error) {
    __atomic_store_n(sq_tail_, local_tail_, __ATOMIC_RELEASE);
    while (true) {
      unsigned flags = wait_n > 0 ? IORING_ENTER_GETEVENTS : 0;
      if (queued_ == 0 && wait_n == 0) return true;
      if (wait_n > 0) count_cqe_wait();
      int ret = sys_io_uring_enter(ring_fd_, queued_, wait_n, flags);
      if (ret < 0) {
        if (errno == EINTR) continue;
        enter_errno_ = errno;
        *error = coded_error("io_uring_enter", errno);
        return false;
      }
      if (ret > 0) count_sqe_batch();
      queued_ -= static_cast<unsigned>(ret);
      return true;
    }
  }

  // Drains the completion queue, re-arming short writes and recording
  // write errors sticky. Never blocks.
  void reap() {
    unsigned head = *cq_head_;
    unsigned tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
    bool any = head != tail;
    while (head != tail) {
      const io_uring_cqe& cqe = cqes_[head & cq_mask_];
      handle_cqe(cqe.user_data, cqe.res);
      ++head;
    }
    if (any) __atomic_store_n(cq_head_, head, __ATOMIC_RELEASE);
    // Re-arm outside the CQ drain so a rearm's own submit never races the
    // head publication above.
    for (const Rearm& r : rearm_) {
      io_uring_sqe* sqe = get_sqe();
      if (sqe == nullptr) {
        if (write_error_.empty())
          write_error_ = coded_error("spill write", enter_errno_);
        slot_busy_[rearm_slot(r)] = false;
        continue;
      }
      std::memset(sqe, 0, sizeof(*sqe));
      sqe->opcode = fixed_ok_ ? IORING_OP_WRITE_FIXED : IORING_OP_WRITE;
      sqe->fd = r.p.fd;
      sqe->addr = reinterpret_cast<std::uint64_t>(r.p.data);
      sqe->len = r.p.len;
      sqe->off = r.p.offset;
      sqe->buf_index = 0;
      sqe->user_data = r.id;
      pending_.emplace(r.id, r.p);
    }
    rearm_.clear();
  }

  struct Rearm {
    std::uint64_t id;
    Pending p;
  };
  static unsigned rearm_slot(const Rearm& r) { return r.p.slot; }

  void handle_cqe(std::uint64_t id, int res) {
    auto it = pending_.find(id);
    if (it == pending_.end()) return;  // already-consumed stray (none known)
    Pending& p = it->second;
    switch (p.kind) {
      case Pending::Kind::kSync:
        p.done = true;
        p.res = res;
        return;  // consumed by wait_sync
      case Pending::Kind::kTimeout:
        pending_.erase(it);  // -ETIME or -ECANCELED; the read CQE decides
        return;
      case Pending::Kind::kWrite:
        break;
    }
    Pending w = p;
    pending_.erase(it);
    if (res == -EINTR || res == -EAGAIN) {
      rearm_.push_back({next_id_++, w});
      return;
    }
    if (res < 0) {
      if (write_error_.empty())
        write_error_ = coded_error("spill write", -res);
      slot_busy_[w.slot] = false;
      return;
    }
    if (res == 0) {
      if (write_error_.empty())
        write_error_ =
            coded_error("spill write", "wrote 0 bytes (device full?)");
      slot_busy_[w.slot] = false;
      return;
    }
    if (static_cast<unsigned>(res) < w.len) {
      // Short write: the device took a prefix — re-arm the remainder at
      // the advanced offset (the truncated-run bug this engine must never
      // reintroduce).
      Pending rest = w;
      rest.data += res;
      rest.len -= static_cast<unsigned>(res);
      rest.offset += static_cast<std::size_t>(res);
      rearm_.push_back({next_id_++, rest});
      return;
    }
    slot_busy_[w.slot] = false;
  }

  // Blocks until the kSync op `id` completes. False on enter failure.
  bool wait_sync(std::uint64_t id, int* res) {
    while (true) {
      reap();
      auto it = pending_.find(id);
      if (it != pending_.end() && it->second.done) {
        *res = it->second.res;
        pending_.erase(it);
        return true;
      }
      std::string ignored;
      if (!submit(1, &ignored)) return false;
    }
  }

  int acquire_slot(std::string* error) {
    while (true) {
      reap();
      if (!write_error_.empty()) {
        *error = write_error_;
        return -1;
      }
      for (unsigned i = 0; i < kWriteSlots; ++i)
        if (!slot_busy_[i]) {
          slot_busy_[i] = true;
          return static_cast<int>(i);
        }
      if (!submit(1, error)) return -1;
    }
  }

  bool queue_write(int fd, int slot, const char* data, unsigned len,
                   std::size_t offset, std::string* error) {
    std::uint64_t id = next_id_++;
    io_uring_sqe* sqe = get_sqe();
    if (sqe == nullptr) {
      *error = coded_error("spill write", enter_errno_);
      slot_busy_[slot] = false;
      return false;
    }
    std::memset(sqe, 0, sizeof(*sqe));
    sqe->opcode = fixed_ok_ ? IORING_OP_WRITE_FIXED : IORING_OP_WRITE;
    sqe->fd = fd;
    sqe->addr = reinterpret_cast<std::uint64_t>(data);
    sqe->len = len;
    sqe->off = offset;
    sqe->buf_index = 0;
    sqe->user_data = id;
    Pending p;
    p.kind = Pending::Kind::kWrite;
    p.fd = fd;
    p.slot = static_cast<unsigned>(slot);
    p.data = data;
    p.len = len;
    p.offset = offset;
    pending_.emplace(id, p);
    return true;
  }

  bool writes_inflight() const {
    for (unsigned i = 0; i < kWriteSlots; ++i)
      if (slot_busy_[i]) return true;
    return false;
  }

  bool drain_writes(std::string* error) {
    while (true) {
      reap();
      if (!writes_inflight()) break;
      if (!submit(1, error)) return false;
    }
    if (queued_ > 0 && !submit(0, error)) return false;
    if (!write_error_.empty()) {
      *error = write_error_;
      return false;
    }
    return true;
  }

  void teardown() {
    if (sqes_ != nullptr)
      ::munmap(sqes_, sq_entries_ * sizeof(io_uring_sqe));
    if (sq_ring_ != nullptr && sq_ring_ != MAP_FAILED) {
      std::size_t sq_map = single_mmap_ ? std::max(sq_size_, cq_size_)
                                        : sq_size_;
      ::munmap(sq_ring_, sq_map);
    }
    if (!single_mmap_ && cq_ring_ != nullptr) ::munmap(cq_ring_, cq_size_);
    if (ring_fd_ >= 0) ::close(ring_fd_);
    sqes_ = nullptr;
    sq_ring_ = cq_ring_ = nullptr;
    ring_fd_ = -1;
    valid_ = false;
  }

  FaultPlan* const faults_;
  stream::BufferPool* const pool_;
  int fault_err_ = 0;

  bool valid_ = false;
  int ring_fd_ = -1;
  bool single_mmap_ = false;
  std::size_t sq_size_ = 0, cq_size_ = 0;
  void* sq_ring_ = nullptr;
  void* cq_ring_ = nullptr;
  io_uring_sqe* sqes_ = nullptr;
  unsigned sq_entries_ = 0;
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned* sq_array_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;
  unsigned local_tail_ = 0;  // our copy of *sq_tail_ (single owner)
  unsigned queued_ = 0;      // published-but-unsubmitted SQEs
  int enter_errno_ = 0;

  KernelTimespec tick_{0, kCancelTickNs};
  std::uint64_t next_id_ = 1;
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::vector<Rearm> rearm_;

  std::string staging_;
  bool fixed_ok_ = false;
  bool slot_busy_[kWriteSlots];
  std::string write_error_;

  int cached_fd_ = -1;
  bool cached_regular_ = false;
};

}  // namespace

std::unique_ptr<Engine> make_uring_engine(FaultPlan* faults,
                                          stream::BufferPool* pool) {
  auto engine = std::make_unique<UringEngine>(faults, pool);
  if (!engine->valid()) return nullptr;
  return engine;
}

bool probe_uring() {
  io_uring_params p{};
  int fd = sys_io_uring_setup(2, &p);
  if (fd < 0) return false;
  ::close(fd);
  // LINK_TIMEOUT (5.5) is the oldest opcode the engine leans on; kernels
  // new enough to ship io_uring features flags all have it. Treat a
  // successful setup as support — a per-op failure would surface as an
  // -EINVAL CQE and the engine degrades per-run via make_engine's
  // poll fallback on construction failure only, so keep the probe cheap.
  return true;
}

}  // namespace kq::io

#else  // no <linux/io_uring.h>

namespace kq::io {

std::unique_ptr<Engine> make_uring_engine(FaultPlan*, stream::BufferPool*) {
  return nullptr;
}

bool probe_uring() { return false; }

}  // namespace kq::io

#endif
