// Deterministic fault injection for the I/O engines (src/io/engine.h).
//
// Both backends — the poll(2) fallback and io_uring — consult one
// FaultPlan at the same logical point: immediately before each I/O
// *attempt* (a source read, a spill write chunk, a spill read chunk).
// A matching fault then replaces or perturbs that attempt:
//
//   - kShortOp clamps the attempt's byte count, forcing the short-read /
//     partial-write continuation paths that real kernels exercise rarely.
//   - kEintr and kEagain make the attempt behave exactly as if the
//     syscall had returned that errno (no syscall is issued), so EINTR
//     storms and readability-evaporated retries are replayable.
//   - kErrno surfaces a hard errno (ENOSPC, EIO, ...) from the attempt.
//   - kCancel invokes a caller-provided hook (typically
//     BlockReader::cancel) and then retries, landing a cancellation at an
//     exact mid-fill attempt index.
//
// Because the consultation point is *inside* kq::io and shared by both
// engines, a scenario scripted once in tests/io_fault_test.cpp asserts
// identical observable behavior on poll and uring — fault parity is the
// backend-equivalence contract, not integration luck.
//
// Thread safety: next() is fully synchronized (engines on different
// threads may share one plan); the hooks run outside the lock. The lock
// is a leaf — next() never calls back into locked kq code — so it takes
// LockRank::kNone.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "stream/sync.h"

namespace kq::io {

// Which logical operation an attempt belongs to. Attempt indices count
// per-op, so a plan can say "the 3rd spill write fails" independently of
// how many source reads happened first.
enum class FaultOp { kSourceRead, kSpillWrite, kSpillRead };

struct Fault {
  enum class Kind { kShortOp, kEintr, kEagain, kErrno, kCancel };

  FaultOp op = FaultOp::kSourceRead;
  Kind kind = Kind::kEintr;
  // Fires on attempt indices [at, at + repeat) of `op` (0-based);
  // repeat > 1 models bursts (e.g. 50 consecutive EINTRs).
  std::size_t at = 0;
  std::size_t repeat = 1;
  std::size_t cap = 0;   // kShortOp: clamp the attempt to this many bytes
  int err = 0;           // kErrno: the errno to surface
  std::function<void()> hook;  // kCancel: invoked when the fault fires
};

// What the engine should do with the current attempt.
struct FaultDecision {
  enum class Action {
    kProceed,  // no fault: issue the real syscall
    kShortOp,  // issue the syscall, but for at most `cap` bytes
    kRetry,    // behave as EINTR/EAGAIN: skip the syscall, loop again
    kFail,     // surface `err` as a hard error without a syscall
  };
  Action action = Action::kProceed;
  std::size_t cap = 0;
  int err = 0;
};

class FaultPlan {
 public:
  FaultPlan() = default;

  void add(Fault fault) {
    sync::MutexLock lock(mu_);
    faults_.push_back(std::move(fault));
  }

  // Called by an engine once per I/O attempt. Increments the per-op
  // attempt counter, fires at most one matching fault (first match in
  // add() order), and runs its kCancel hook outside the lock.
  FaultDecision next(FaultOp op);

  // How many faults have fired so far — lets a test assert a scenario
  // actually exercised its failpoints instead of silently missing them.
  std::size_t fired() const {
    sync::MutexLock lock(mu_);
    return fired_;
  }

 private:
  mutable sync::Mutex mu_{sync::LockRank::kNone};
  std::vector<Fault> faults_ GUARDED_BY(mu_);
  std::size_t attempts_[3] GUARDED_BY(mu_) = {0, 0, 0};
  std::size_t fired_ GUARDED_BY(mu_) = 0;
};

}  // namespace kq::io
