// The portability backend: the poll(2)+read source loop the streaming
// runtime always used (see the history of stream/block_reader.cpp), now
// behind kq::io::Engine, plus synchronous pwrite/pread spill I/O. This is
// the semantic reference the uring engine is cross-validated against
// (tests/io_backend_test.cpp, tests/io_fault_test.cpp).

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>

#include "io/backends.h"
#include "io/fault.h"

namespace kq::io {
namespace {

// Poll interval for the source's cancellation check: short enough that a
// cancelled reader blocked on an idle pipe wakes promptly, long enough
// that an active stream pays one cheap always-ready poll per read.
constexpr int kCancelPollMs = 50;

class PollEngine : public Engine {
 public:
  explicit PollEngine(FaultPlan* faults) : faults_(faults) {}

  const char* name() const override { return "poll"; }

  std::size_t read_source(int fd, char* buf, std::size_t n,
                          const SourceCtl& ctl) override {
    while (true) {
      if (ctl.cancel->load()) return 0;  // consumer-side stop, not error
      std::size_t want = n;
      switch (consult(FaultOp::kSourceRead, &want)) {
        case FaultDecision::Action::kProceed:
        case FaultDecision::Action::kShortOp:
          break;
        case FaultDecision::Action::kRetry:
          continue;  // injected EINTR/EAGAIN: recheck cancel, re-poll
        case FaultDecision::Action::kFail:
          *ctl.error = fault_err_;
          return 0;
      }
      // Wait for readability with a timeout instead of blocking in
      // read(2): a cancel() while the producer pipe is idle is noticed at
      // the next poll tick, not at the next (possibly never-arriving)
      // block boundary. Regular files are always readable, so the poll is
      // one cheap syscall on the non-pipe path.
      struct pollfd pfd{fd, POLLIN, 0};
      // Wait timing is opt-in (BlockReader::enable_wait_timing): only then
      // is the clock consulted, and only a timed-out poll — an actual wait
      // for the producer — is charged, so the saturated path stays
      // clock-free apart from one relaxed flag load per read.
      bool timing = ctl.time_waits->load(std::memory_order_relaxed);
      std::chrono::steady_clock::time_point t0;
      if (timing) t0 = std::chrono::steady_clock::now();
      int ready = ::poll(&pfd, 1, kCancelPollMs);
      if (timing && ready == 0) {
        ctl.wait_ns->fetch_add(
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count()),
            std::memory_order_relaxed);
      }
      if (ready < 0) {
        if (errno == EINTR) continue;
        *ctl.error = errno;
        return 0;
      }
      if (ready == 0) continue;  // timeout: recheck cancellation
      ssize_t got = ::read(fd, buf, want);
      if (got > 0) {
        // Source gone idle? (zero-timeout poll after a successful read).
        // A pipe read returns at most the pipe capacity (~64 KiB), so a
        // short read alone cannot distinguish "producer is saturating the
        // pipe" (keep batching toward a full block) from "producer went
        // quiet" (flush what we have — see BlockReader::next). The poll
        // must retry EINTR: a signal landing here would otherwise read as
        // "idle" (poll() == -1 != 0) and trigger a spurious early flush —
        // harmless for correctness but it shrinks blocks under signal
        // load. A non-EINTR poll failure reports not-idle (keep batching);
        // the main loop's poll will surface any persistent error.
        int now;
        do {
          pfd.revents = 0;
          now = ::poll(&pfd, 1, 0);
        } while (now < 0 && errno == EINTR);
        ctl.idle->store(now == 0);
        return static_cast<std::size_t>(got);
      }
      if (got == 0) return 0;
      if (errno == EINTR) continue;  // signal mid-read: re-poll and retry
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // O_NONBLOCK fd whose readability evaporated between poll and read
        // (another consumer, or a spurious wakeup): wait again rather than
        // misreporting a transient condition as a hard stream error.
        continue;
      }
      *ctl.error = errno;  // hard error: flag it, end the stream
      return 0;
    }
  }

  bool write_at(int fd, std::string_view bytes, std::size_t offset,
                std::string* error) override {
    while (!bytes.empty()) {
      std::size_t want = bytes.size();
      switch (consult(FaultOp::kSpillWrite, &want)) {
        case FaultDecision::Action::kProceed:
        case FaultDecision::Action::kShortOp:
          break;
        case FaultDecision::Action::kRetry:
          continue;
        case FaultDecision::Action::kFail:
          *error = coded_error("spill write", fault_err_);
          return false;
      }
      ssize_t wrote =
          ::pwrite(fd, bytes.data(), want, static_cast<off_t>(offset));
      if (wrote < 0) {
        if (errno == EINTR) continue;
        *error = coded_error("spill write", errno);
        return false;
      }
      if (wrote == 0) {
        // A zero-byte pwrite with a nonzero count is a stuck device;
        // retrying would spin forever and a silent return would leave the
        // run truncated (the old ENOSPC-adjacent bug).
        *error = coded_error("spill write", "wrote 0 bytes (device full?)");
        return false;
      }
      bytes.remove_prefix(static_cast<std::size_t>(wrote));
      offset += static_cast<std::size_t>(wrote);
    }
    return true;
  }

  bool flush(int, std::string*) override {
    return true;  // synchronous writes: nothing in flight
  }

  bool read_at(int fd, char* buf, std::size_t n, std::size_t offset,
               std::string* error) override {
    while (n > 0) {
      std::size_t want = n;
      switch (consult(FaultOp::kSpillRead, &want)) {
        case FaultDecision::Action::kProceed:
        case FaultDecision::Action::kShortOp:
          break;
        case FaultDecision::Action::kRetry:
          continue;
        case FaultDecision::Action::kFail:
          *error = coded_error("spill read", fault_err_);
          return false;
      }
      ssize_t got = ::pread(fd, buf, want, static_cast<off_t>(offset));
      if (got < 0) {
        if (errno == EINTR) continue;
        *error = coded_error("spill read", errno);
        return false;
      }
      if (got == 0) {
        *error = coded_error("spill read", "unexpected end of spill file");
        return false;
      }
      buf += got;
      offset += static_cast<std::size_t>(got);
      n -= static_cast<std::size_t>(got);
    }
    return true;
  }

 private:
  // Consults the fault seam for one attempt; kShortOp clamps *want (a cap
  // of 0 is treated as 1 so a clamped attempt still makes progress).
  FaultDecision::Action consult(FaultOp op, std::size_t* want) {
    if (faults_ == nullptr) return FaultDecision::Action::kProceed;
    FaultDecision d = faults_->next(op);
    if (d.action == FaultDecision::Action::kShortOp)
      *want = std::min(*want, std::max<std::size_t>(1, d.cap));
    fault_err_ = d.err;
    return d.action;
  }

  FaultPlan* const faults_;
  int fault_err_ = 0;
};

}  // namespace

std::unique_ptr<Engine> make_poll_engine(FaultPlan* faults) {
  return std::make_unique<PollEngine>(faults);
}

}  // namespace kq::io
