#include "io/engine.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "io/backends.h"
#include "obs/metrics.h"

namespace kq::io {
namespace {

const char* errno_name(int err) {
  switch (err) {
    case EINTR: return "EINTR";
    case EAGAIN: return "EAGAIN";
    case EBADF: return "EBADF";
    case EIO: return "EIO";
    case ENOSPC: return "ENOSPC";
    case EFBIG: return "EFBIG";
    case EINVAL: return "EINVAL";
    case ENOMEM: return "ENOMEM";
    case EMSGSIZE: return "EMSGSIZE";
    case EDQUOT: return "EDQUOT";
    case EPIPE: return "EPIPE";
    default: return nullptr;
  }
}

}  // namespace

const char* backend_name(Backend backend) {
  switch (backend) {
    case Backend::kAuto: return "auto";
    case Backend::kPoll: return "poll";
    case Backend::kUring: return "uring";
  }
  return "?";
}

bool parse_backend(std::string_view text, Backend* out) {
  if (text == "auto") {
    *out = Backend::kAuto;
  } else if (text == "poll") {
    *out = Backend::kPoll;
  } else if (text == "uring" || text == "io_uring") {
    *out = Backend::kUring;
  } else {
    return false;
  }
  return true;
}

bool uring_supported() {
  static const bool supported = probe_uring();
  return supported;
}

Backend resolve_backend(Backend requested) {
  if (requested == Backend::kAuto) {
    // The env override sits under the explicit flag: a CI job exports
    // KQ_IO_BACKEND=poll to pin the fallback without touching every
    // invocation, but a test that passes an explicit backend still wins.
    if (const char* env = std::getenv("KQ_IO_BACKEND")) {
      Backend parsed;
      if (*env != '\0' && parse_backend(env, &parsed) &&
          parsed != Backend::kAuto) {
        requested = parsed;
      }
    }
  }
  if (requested == Backend::kAuto)
    return uring_supported() ? Backend::kUring : Backend::kPoll;
  if (requested == Backend::kUring && !uring_supported()) {
    static const bool warned = [] {
      std::fprintf(stderr,
                   "kumquat: io_uring requested but unavailable on this "
                   "kernel; falling back to poll\n");
      return true;
    }();
    (void)warned;
    return Backend::kPoll;
  }
  return requested;
}

Engine::~Engine() = default;

void Engine::count_sqe_batch() {
  ++stats_.sqe_batches;
  if (obs::StageCounters* c = counters_.load(std::memory_order_acquire))
    c->sqe_batches.fetch_add(1, std::memory_order_relaxed);
}

void Engine::count_cqe_wait() {
  ++stats_.cqe_waits;
  if (obs::StageCounters* c = counters_.load(std::memory_order_acquire))
    c->cqe_waits.fetch_add(1, std::memory_order_relaxed);
}

std::unique_ptr<Engine> make_engine(const IoOptions& options,
                                    stream::BufferPool* pool) {
  Backend backend = resolve_backend(options.backend);
  if (backend == Backend::kUring) {
    if (auto engine = make_uring_engine(options.faults, pool)) return engine;
    // Probe said yes but this ring failed to come up (e.g. memlock limits
    // hit under load): degrade quietly — the poll path is always correct.
  }
  return make_poll_engine(options.faults);
}

std::string coded_error(const char* op, int err) {
  std::string message = "[KQ-IO] ";
  message += op;
  message += ": ";
  message += std::strerror(err);
  if (const char* name = errno_name(err)) {
    message += " (";
    message += name;
    message += ")";
  }
  return message;
}

std::string coded_error(const char* op, const std::string& detail) {
  std::string message = "[KQ-IO] ";
  message += op;
  message += ": ";
  message += detail;
  return message;
}

}  // namespace kq::io
