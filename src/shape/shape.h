// Input shapes (Definition 3.11): a shape constrains three dimensions of a
// generated input stream — lines per stream, words per line, characters per
// word — each with ⟨min count, max count, distinct %⟩. Shapes are the state
// of the gradient-style input search (Algorithm 2).
#pragma once

#include <cstdint>
#include <random>
#include <string>

namespace kq::shape {

struct DimConfig {
  int min_count = 1;
  int max_count = 4;
  int distinct_pct = 60;  // percentage of distinct elements in [1,100]
};

struct Shape {
  DimConfig lines{1, 6, 60};
  DimConfig words{0, 4, 60};  // min 0: empty lines probe delimiter edges
  DimConfig chars{1, 5, 50};

  std::string to_string() const;
};

// The predefined seed shape the search starts from (§3.2).
Shape seed_shape();

// A randomized perturbation of the seed shape (Algorithm 1's RandomShape()).
Shape random_shape(std::mt19937_64& rng);

// A seed shape whose line dimension straddles `n` — used when preprocessing
// extracts a numeric literal such as `sed 100q` (§3.2 "Preprocessing").
Shape seed_shape_near_count(long n);

}  // namespace kq::shape
