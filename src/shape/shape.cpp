#include "shape/shape.h"

#include <algorithm>

namespace kq::shape {

std::string Shape::to_string() const {
  // Built by appending into one buffer rather than chained string
  // operator+: the temporaries of the chained form trip GCC 12's
  // -Wrestrict false positive inside libstdc++ (GCC PR 105329), which
  // used to need a blanket -Wno-restrict in the -Werror build.
  std::string out;
  auto dim = [&out](const char* label, const DimConfig& d) {
    out += label;
    out += '<';
    out += std::to_string(d.min_count);
    out += ',';
    out += std::to_string(d.max_count);
    out += ',';
    out += std::to_string(d.distinct_pct);
    out += "%>";
  };
  dim("lines", lines);
  dim(" words", words);
  dim(" chars", chars);
  return out;
}

Shape seed_shape() { return Shape{}; }

Shape random_shape(std::mt19937_64& rng) {
  Shape s = seed_shape();
  auto jitter = [&rng](DimConfig& d, int max_hi) {
    std::uniform_int_distribution<int> hi(std::max(1, d.min_count + 1),
                                          max_hi);
    d.max_count = hi(rng);
    std::uniform_int_distribution<int> pct(10, 100);
    d.distinct_pct = pct(rng);
  };
  jitter(s.lines, 10);
  jitter(s.words, 6);
  jitter(s.chars, 8);
  return s;
}

Shape seed_shape_near_count(long n) {
  // Straddle the literal from above: totals in [n, n+3] make truncating
  // behaviour (e.g. `sed 100q` dropping trailing lines) show up in most
  // generated pairs while f(x1) and f(x2) individually stay untruncated.
  Shape s = seed_shape();
  s.lines.min_count = static_cast<int>(std::max<long>(1, n));
  s.lines.max_count = static_cast<int>(n + 3);
  return s;
}

}  // namespace kq::shape
