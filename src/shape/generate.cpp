#include "shape/generate.h"

#include <algorithm>

namespace kq::shape {
namespace {

// Alphabet used for random words: letters plus digits so that numeric
// fragments appear (needed to distinguish add from concat), weighted
// towards lowercase letters.
constexpr std::string_view kAlphabet =
    "aabcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";

int draw_count(const DimConfig& d, std::mt19937_64& rng) {
  int lo = std::min(d.min_count, d.max_count);
  int hi = std::max(d.min_count, d.max_count);
  std::uniform_int_distribution<int> dist(lo, hi);
  return dist(rng);
}

// Pool size implementing the distinct-% knob: at least one element, at most
// `total`, approximately total * pct / 100.
std::size_t pool_size(std::size_t total, int pct) {
  if (total == 0) return 1;
  std::size_t size = (total * static_cast<std::size_t>(std::max(1, pct))) / 100;
  return std::clamp<std::size_t>(size, 1, total);
}

std::string random_word(const DimConfig& chars, std::mt19937_64& rng,
                        std::size_t alphabet_pool) {
  int len = std::max(1, draw_count(chars, rng));
  std::uniform_int_distribution<std::size_t> pick(0, alphabet_pool - 1);
  std::string w;
  w.reserve(static_cast<std::size_t>(len));
  for (int i = 0; i < len; ++i) w.push_back(kAlphabet[pick(rng)]);
  return w;
}

}  // namespace

std::string generate_stream(const Shape& shape, const GenOptions& options,
                            std::mt19937_64& rng) {
  int n_lines = std::max(1, draw_count(shape.lines, rng));

  // Character pool: restrict the alphabet prefix according to distinct %.
  std::size_t alphabet_pool =
      pool_size(kAlphabet.size(), shape.chars.distinct_pct);

  // Word pool: either dictionary entries or random words.
  std::size_t approx_word_slots = static_cast<std::size_t>(n_lines) *
      static_cast<std::size_t>(std::max(1, shape.words.max_count));
  std::size_t n_words = pool_size(approx_word_slots, shape.words.distinct_pct);
  std::vector<std::string> word_pool;
  word_pool.reserve(n_words);
  if (!options.dictionary.empty()) {
    std::uniform_int_distribution<std::size_t> pick(
        0, options.dictionary.size() - 1);
    for (std::size_t i = 0; i < n_words; ++i)
      word_pool.push_back(options.dictionary[pick(rng)]);
  } else {
    for (std::size_t i = 0; i < n_words; ++i)
      word_pool.push_back(random_word(shape.chars, rng, alphabet_pool));
  }

  // Line pool: distinct lines assembled from the word pool.
  std::size_t n_distinct_lines =
      pool_size(static_cast<std::size_t>(n_lines), shape.lines.distinct_pct);
  std::vector<std::string> line_pool;
  line_pool.reserve(n_distinct_lines);
  std::uniform_int_distribution<std::size_t> pick_word(0,
                                                       word_pool.size() - 1);
  for (std::size_t i = 0; i < n_distinct_lines; ++i) {
    int n_line_words = draw_count(shape.words, rng);
    std::string line;
    for (int w = 0; w < n_line_words; ++w) {
      if (w != 0) line.push_back(' ');
      line += word_pool[pick_word(rng)];
    }
    line_pool.push_back(std::move(line));
  }

  std::vector<std::string_view> chosen;
  chosen.reserve(static_cast<std::size_t>(n_lines));
  std::uniform_int_distribution<std::size_t> pick_line(0,
                                                       line_pool.size() - 1);
  for (int i = 0; i < n_lines; ++i) chosen.push_back(line_pool[pick_line(rng)]);
  if (options.sorted) std::sort(chosen.begin(), chosen.end());

  std::string out;
  for (std::string_view l : chosen) {
    out += l;
    out.push_back('\n');
  }
  return out;
}

InputPair generate_pair(const Shape& shape, const GenOptions& options,
                        std::mt19937_64& rng) {
  std::string full = generate_stream(shape, options, rng);
  // Split at a line boundary, keeping both halves non-empty streams when
  // possible (a half is at minimum "\n"-terminated content of one line).
  std::vector<std::size_t> boundaries;
  for (std::size_t i = 0; i < full.size(); ++i)
    if (full[i] == '\n') boundaries.push_back(i + 1);
  InputPair pair;
  if (boundaries.size() <= 1) {
    // One line: duplicate a one-line stream so both halves are streams.
    pair.x1 = full;
    pair.x2 = full;
    return pair;
  }
  std::uniform_int_distribution<std::size_t> pick(0, boundaries.size() - 2);
  std::size_t cut = boundaries[pick(rng)];
  pair.x1 = full.substr(0, cut);
  pair.x2 = full.substr(cut);
  return pair;
}

}  // namespace kq::shape
