// The twelve shape mutations of Algorithm 2: three dimensions (lines,
// words, characters) × four directions (more elements, fewer elements,
// more varied, less varied).
#pragma once

#include "shape/shape.h"

namespace kq::shape {

inline constexpr int kMutationCount = 12;

// Returns `s` mutated along mutation index j ∈ [0, kMutationCount).
Shape mutate_shape(const Shape& s, int j);

// Human-readable mutation name ("lines+", "words~less-varied", ...).
const char* mutation_name(int j);

}  // namespace kq::shape
