// Random input-stream generation from shapes (§3.2 "Input Generation").
// The generator draws units (lines / words / characters) from bounded pools
// whose sizes implement the shape's distinct-% knobs: a small pool produces
// many duplicate units (the counterexample shape for `uniq`), a large pool
// produces mostly-unique units.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "shape/shape.h"

namespace kq::shape {

struct GenOptions {
  // Unit dictionary: when non-empty, words are drawn from it instead of
  // being random character strings (regex dictionaries, file names; §3.2
  // "Preprocessing").
  std::vector<std::string> dictionary;
  // Generate sorted streams (for commands like comm that reject unsorted
  // input; the split point keeps x1, x2, and x1++x2 all sorted).
  bool sorted = false;
};

struct InputPair {
  std::string x1;
  std::string x2;
  std::string joined() const { return x1 + x2; }
};

// Generates one newline-terminated stream satisfying `shape`.
std::string generate_stream(const Shape& shape, const GenOptions& options,
                            std::mt19937_64& rng);

// Generates an input stream pair ⟨x1,x2⟩ with (x1 ++ x2) ~ shape
// (Definition 3.12): the full stream is generated and split at a random
// line boundary so both halves are themselves streams.
InputPair generate_pair(const Shape& shape, const GenOptions& options,
                        std::mt19937_64& rng);

}  // namespace kq::shape
