#include "shape/mutate.h"

#include <algorithm>

namespace kq::shape {
namespace {

void more_elements(DimConfig& d, int cap) {
  d.max_count = std::min(cap, std::max(d.max_count * 2, d.max_count + 2));
  d.min_count = std::min(d.min_count + 1, d.max_count);
}

void fewer_elements(DimConfig& d, int floor_min) {
  d.max_count = std::max(floor_min, d.max_count / 2);
  d.min_count = std::max(std::min(d.min_count, d.max_count), floor_min);
}

void more_varied(DimConfig& d) {
  d.distinct_pct = std::min(100, d.distinct_pct + 30);
}

void less_varied(DimConfig& d) {
  d.distinct_pct = std::max(5, d.distinct_pct - 30);
}

}  // namespace

Shape mutate_shape(const Shape& s, int j) {
  Shape out = s;
  DimConfig* dim = nullptr;
  int cap = 0, floor_min = 0;
  switch (j / 4) {
    case 0: dim = &out.lines; cap = 64; floor_min = 1; break;
    case 1: dim = &out.words; cap = 12; floor_min = 0; break;
    default: dim = &out.chars; cap = 16; floor_min = 1; break;
  }
  switch (j % 4) {
    case 0: more_elements(*dim, cap); break;
    case 1: fewer_elements(*dim, floor_min); break;
    case 2: more_varied(*dim); break;
    default: less_varied(*dim); break;
  }
  return out;
}

const char* mutation_name(int j) {
  static const char* kNames[kMutationCount] = {
      "lines+", "lines-", "lines~more-varied", "lines~less-varied",
      "words+", "words-", "words~more-varied", "words~less-varied",
      "chars+", "chars-", "chars~more-varied", "chars~less-varied",
  };
  if (j < 0 || j >= kMutationCount) return "?";
  return kNames[j];
}

}  // namespace kq::shape
