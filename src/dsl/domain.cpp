#include "dsl/domain.h"

#include "text/numbers.h"
#include "text/padding.h"
#include "text/streams.h"
#include "text/strings.h"

namespace kq::dsl {

TableLine parse_table_line(std::string_view line, char d,
                           bool require_padding) {
  text::Unpadded unpadded = text::del_pad(line);
  if (require_padding && unpadded.pad == 0) return {};
  auto split = text::split_first(unpadded.rest, d);
  if (!split.tail.has_value()) return {};
  TableLine out;
  out.ok = true;
  out.pad = unpadded.pad;
  out.head = split.head;
  out.tail = *split.tail;
  return out;
}

bool legal_rec(const Node& b, std::string_view y) {
  switch (b.op) {
    case Op::kAdd:
      return text::is_all_digits(y);
    case Op::kConcat:
    case Op::kFirst:
    case Op::kSecond:
      return true;
    case Op::kFront:
      return !y.empty() && y.front() == b.delim &&
             legal_rec(*b.child1, y.substr(1));
    case Op::kBack:
      return !y.empty() && y.back() == b.delim &&
             legal_rec(*b.child1, y.substr(0, y.size() - 1));
    case Op::kFuse: {
      auto parts = text::split(y, b.delim);
      if (parts.size() < 2) return false;
      if (parts.front().empty() || parts.back().empty()) return false;
      for (std::string_view p : parts)
        if (!legal_rec(*b.child1, p)) return false;
      return true;
    }
    default:
      return false;  // not a RecOp
  }
}

namespace {

bool legal_struct(const Node& s, std::string_view y) {
  if (y == "\n") return true;
  if (!text::is_stream(y)) return false;
  auto ls = text::lines(y);
  switch (s.op) {
    case Op::kStitch:
      for (std::string_view l : ls)
        if (!legal_rec(*s.child1, l)) return false;
      return true;
    case Op::kStitch2:
      for (std::string_view l : ls) {
        TableLine t = parse_table_line(l, s.delim, /*require_padding=*/true);
        if (!t.ok) return false;
        if (!legal_rec(*s.child1, t.head)) return false;
        if (!legal_rec(*s.child2, t.tail)) return false;
      }
      return true;
    case Op::kOffset:
      for (std::string_view l : ls) {
        if (l.empty()) continue;  // nil lines are allowed
        TableLine t = parse_table_line(l, s.delim, /*require_padding=*/false);
        if (!t.ok) return false;
        if (!legal_rec(*s.child1, t.head)) return false;
      }
      return true;
    default:
      return false;
  }
}

}  // namespace

bool legal(const Combiner& g, std::string_view y) {
  switch (op_class(g.node->op)) {
    case OpClass::kRec:
      return legal_rec(*g.node, y);
    case OpClass::kStruct:
      return legal_struct(*g.node, y);
    case OpClass::kRun:
      if (g.node->op == Op::kRerun) return true;
      // merge: legal inputs are streams already sorted under the flags.
      if (!g.merge_spec) return false;
      if (y.empty()) return true;
      if (!text::is_stream(y)) return false;
      return g.merge_spec->is_sorted_stream(y);
  }
  return false;
}

}  // namespace kq::dsl
