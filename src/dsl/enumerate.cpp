#include "dsl/enumerate.h"

namespace kq::dsl {

CandidateSpace enumerate_candidates(const SpaceSpec& spec) {
  const int P = spec.max_ops;
  // rec_by_ops[p]: all RecOp trees with exactly p operator productions.
  std::vector<std::vector<NodeRef>> rec_by_ops(
      static_cast<std::size_t>(P) + 1);
  if (P >= 1) {
    rec_by_ops[1] = {make_leaf(Op::kAdd), make_leaf(Op::kConcat),
                     make_leaf(Op::kFirst), make_leaf(Op::kSecond)};
  }
  for (int p = 2; p <= P; ++p) {
    auto& out = rec_by_ops[static_cast<std::size_t>(p)];
    for (Op op : {Op::kFront, Op::kBack, Op::kFuse}) {
      for (char d : spec.delims) {
        for (const NodeRef& child :
             rec_by_ops[static_cast<std::size_t>(p - 1)]) {
          out.push_back(make_unary(op, d, child));
        }
      }
    }
  }

  std::vector<NodeRef> rec_trees;
  for (int p = 1; p <= P; ++p)
    for (const NodeRef& t : rec_by_ops[static_cast<std::size_t>(p)])
      rec_trees.push_back(t);

  std::vector<NodeRef> struct_trees;
  // stitch b: 1 + ops(b) <= P.
  for (int p = 1; p <= P - 1; ++p)
    for (const NodeRef& b : rec_by_ops[static_cast<std::size_t>(p)])
      struct_trees.push_back(make_stitch(b));
  // offset d b.
  for (char d : spec.delims)
    for (int p = 1; p <= P - 1; ++p)
      for (const NodeRef& b : rec_by_ops[static_cast<std::size_t>(p)])
        struct_trees.push_back(make_unary(Op::kOffset, d, b));
  // stitch2 d b1 b2: 1 + ops(b1) + ops(b2) <= P.
  for (char d : spec.delims) {
    for (int p1 = 1; p1 <= P - 2; ++p1) {
      for (const NodeRef& b1 : rec_by_ops[static_cast<std::size_t>(p1)]) {
        for (int p2 = 1; p2 <= P - 1 - p1; ++p2) {
          for (const NodeRef& b2 :
               rec_by_ops[static_cast<std::size_t>(p2)]) {
            struct_trees.push_back(make_stitch2(d, b1, b2));
          }
        }
      }
    }
  }

  CandidateSpace space;
  auto add_both_orders = [&space](Combiner g) {
    space.candidates.push_back(g);
    space.candidates.push_back(swapped(std::move(g)));
  };
  for (const NodeRef& t : rec_trees)
    add_both_orders(Combiner{t, false, nullptr, ""});
  for (const NodeRef& t : struct_trees)
    add_both_orders(Combiner{t, false, nullptr, ""});
  space.rec_count = rec_trees.size() * 2;
  space.struct_count = struct_trees.size() * 2;

  add_both_orders(combiner_rerun());
  add_both_orders(combiner_merge(spec.merge_flags));
  space.run_count = 4;
  return space;
}

SpaceCounts count_candidates(std::size_t delim_count, int max_ops) {
  const std::size_t D = delim_count;
  const int P = max_ops;
  // rec(p) = 4 * (3D)^(p-1); Rec(k) = sum_{p<=k} rec(p).
  std::vector<std::size_t> rec(static_cast<std::size_t>(P) + 1, 0);
  std::vector<std::size_t> rec_cum(static_cast<std::size_t>(P) + 1, 0);
  for (int p = 1; p <= P; ++p) {
    rec[static_cast<std::size_t>(p)] =
        p == 1 ? 4 : rec[static_cast<std::size_t>(p - 1)] * 3 * D;
    rec_cum[static_cast<std::size_t>(p)] =
        rec_cum[static_cast<std::size_t>(p - 1)] +
        rec[static_cast<std::size_t>(p)];
  }
  std::size_t rec_trees = rec_cum[static_cast<std::size_t>(P)];
  std::size_t stitch = P >= 2 ? rec_cum[static_cast<std::size_t>(P - 1)] : 0;
  std::size_t offset = D * stitch;
  std::size_t stitch2 = 0;
  for (int p1 = 1; p1 <= P - 2; ++p1)
    stitch2 += rec[static_cast<std::size_t>(p1)] *
               rec_cum[static_cast<std::size_t>(P - 1 - p1)];
  stitch2 *= D;
  SpaceCounts counts;
  counts.rec = 2 * rec_trees;
  counts.strct = 2 * (stitch + offset + stitch2);
  counts.run = 4;
  return counts;
}

}  // namespace kq::dsl
