// Big-step evaluation of combiners (Figure 6 / Appendix A). `eval` returns
// nullopt when the operands fall outside the combiner's legal domain or no
// semantic rule applies; the synthesizer eliminates a candidate on any
// observation for which eval does not produce exactly the serial output
// (Definition 3.9).
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "dsl/ast.h"
#include "unixcmd/command.h"

namespace kq::dsl {

struct EvalContext {
  // The black-box command, required by rerun_f. May be null for
  // rerun-free combiners.
  const cmd::Command* command = nullptr;
};

// Evaluates g(y1, y2) (argument order already encoded in g.swapped).
std::optional<std::string> eval(const Combiner& g, std::string_view y1,
                                std::string_view y2,
                                const EvalContext& ctx = {});

}  // namespace kq::dsl
