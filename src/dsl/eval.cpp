#include "dsl/eval.h"

#include "dsl/domain.h"
#include "text/numbers.h"
#include "text/padding.h"
#include "text/streams.h"
#include "text/strings.h"

namespace kq::dsl {
namespace {

std::optional<std::string> eval_rec(const Node& b, std::string_view y1,
                                    std::string_view y2);

// fuse d b: apply b piecewise to the d-separated elements of both operands.
// Requires the same element count on both sides (Lemma B.3) with non-empty
// first/last elements.
std::optional<std::string> eval_fuse(const Node& b, std::string_view y1,
                                     std::string_view y2) {
  auto parts1 = text::split(y1, b.delim);
  auto parts2 = text::split(y2, b.delim);
  if (parts1.size() < 2 || parts1.size() != parts2.size()) return std::nullopt;
  if (parts1.front().empty() || parts1.back().empty()) return std::nullopt;
  if (parts2.front().empty() || parts2.back().empty()) return std::nullopt;
  std::string out;
  for (std::size_t i = 0; i < parts1.size(); ++i) {
    auto piece = eval_rec(*b.child1, parts1[i], parts2[i]);
    if (!piece) return std::nullopt;
    if (i != 0) out.push_back(b.delim);
    out += *piece;
  }
  return out;
}

std::optional<std::string> eval_rec(const Node& b, std::string_view y1,
                                    std::string_view y2) {
  switch (b.op) {
    case Op::kAdd:
      return text::add_digit_strings(y1, y2);
    case Op::kConcat: {
      std::string out;
      out.reserve(y1.size() + y2.size());
      out.append(y1);
      out.append(y2);
      return out;
    }
    case Op::kFirst:
      return std::string(y1);
    case Op::kSecond:
      return std::string(y2);
    case Op::kFront: {
      if (y1.empty() || y1.front() != b.delim) return std::nullopt;
      if (y2.empty() || y2.front() != b.delim) return std::nullopt;
      auto v = eval_rec(*b.child1, y1.substr(1), y2.substr(1));
      if (!v) return std::nullopt;
      return std::string(1, b.delim) + *v;
    }
    case Op::kBack: {
      if (y1.empty() || y1.back() != b.delim) return std::nullopt;
      if (y2.empty() || y2.back() != b.delim) return std::nullopt;
      auto v = eval_rec(*b.child1, y1.substr(0, y1.size() - 1),
                        y2.substr(0, y2.size() - 1));
      if (!v) return std::nullopt;
      return *v + std::string(1, b.delim);
    }
    case Op::kFuse:
      return eval_fuse(b, y1, y2);
    default:
      return std::nullopt;
  }
}

// stitch b: compare y1's last line with y2's first line; on equality, join
// them through b. Reassembly note (DESIGN.md §6): we emit
// head1 ++ v ++ '\n' ++ tail2, which agrees with the paper's
// y1' ++ '\n' ++ v ++ '\n' ++ y2' on multi-line operands and handles
// single-line operands without a spurious empty line.
//
// Deviation from Figure 6: the paper's first stitch rule concatenates
// whenever an operand is exactly "\n". An empty line is an ordinary line
// value, and treating it specially makes stitch *incorrect* for `uniq`
// when the split boundary carries empty lines on both sides (uniq merges
// them; the special rule would not). We therefore treat "\n" uniformly,
// which preserves the paper's synthesis results and fixes that corner.
std::optional<std::string> eval_stitch(const Node& s, std::string_view y1,
                                       std::string_view y2) {
  for (std::string_view y : {y1, y2}) {
    if (!text::is_stream(y)) return std::nullopt;
    for (std::string_view l : text::lines(y))
      if (!legal_rec(*s.child1, l)) return std::nullopt;
  }
  auto last = text::split_last_line(y1);
  auto first = text::split_first_line(y2);
  if (!last.ok || !first.ok) return std::nullopt;
  if (last.line != first.line) {
    std::string out(y1);
    out.append(y2);
    return out;
  }
  auto v = eval_rec(*s.child1, last.line, first.line);
  if (!v) return std::nullopt;
  std::string out(last.head);
  out += *v;
  out.push_back('\n');
  out.append(first.tail);
  return out;
}

// stitch2 d b1 b2: table-shaped stitch. Lines look like
// `pad head d tail` (the uniq -c shape); on equal tails the heads are
// combined with b1 and re-padded to the first operand's column width.
std::optional<std::string> eval_stitch2(const Node& s, std::string_view y1,
                                        std::string_view y2) {
  for (std::string_view y : {y1, y2}) {
    if (y == "\n") continue;
    if (!text::is_stream(y)) return std::nullopt;
    for (std::string_view l : text::lines(y)) {
      TableLine t = parse_table_line(l, s.delim, /*require_padding=*/true);
      if (!t.ok || !legal_rec(*s.child1, t.head) ||
          !legal_rec(*s.child2, t.tail))
        return std::nullopt;
    }
  }
  if (y1 == "\n" || y2 == "\n") {
    std::string out(y1);
    out.append(y2);
    return out;
  }
  auto last = text::split_last_line(y1);
  auto first = text::split_first_line(y2);
  if (!last.ok || !first.ok) return std::nullopt;
  TableLine t1 = parse_table_line(last.line, s.delim, true);
  TableLine t2 = parse_table_line(first.line, s.delim, true);
  if (!t1.ok || !t2.ok) return std::nullopt;
  if (t1.tail != t2.tail) {
    std::string out(y1);
    out.append(y2);
    return out;
  }
  auto head = eval_rec(*s.child1, t1.head, t2.head);
  if (!head) return std::nullopt;
  auto tail = eval_rec(*s.child2, t1.tail, t2.tail);
  if (!tail) return std::nullopt;
  std::string combined =
      text::pad_to_width(*head, *tail, s.delim, t1.pad + t1.head.size());
  std::string out(last.head);
  out += combined;
  out.push_back('\n');
  out.append(first.tail);
  return out;
}

// offset d b: use the first field of y1's last non-empty line to adjust the
// first field of every line of y2 via b (the `xargs -L1 wc -l` line-number
// adjustment shape).
std::optional<std::string> eval_offset(const Node& s, std::string_view y1,
                                       std::string_view y2) {
  for (std::string_view y : {y1, y2}) {
    if (y == "\n") continue;
    if (!text::is_stream(y)) return std::nullopt;
    for (std::string_view l : text::lines(y)) {
      if (l.empty()) continue;
      TableLine t = parse_table_line(l, s.delim, /*require_padding=*/false);
      if (!t.ok || !legal_rec(*s.child1, t.head)) return std::nullopt;
    }
  }
  auto last = text::split_last_nonempty_line(y1);
  if (!last.ok) return std::nullopt;
  TableLine t1 = parse_table_line(last.line, s.delim, false);
  if (!t1.ok) return std::nullopt;
  std::string out(y1);
  for (std::string_view l : text::lines(y2)) {
    if (l.empty()) {
      out.push_back('\n');
      continue;
    }
    TableLine t2 = parse_table_line(l, s.delim, false);
    if (!t2.ok) return std::nullopt;
    auto head = eval_rec(*s.child1, t1.head, t2.head);
    if (!head) return std::nullopt;
    out += text::pad_to_width(*head, t2.tail, s.delim,
                              t2.pad + t2.head.size());
    out.push_back('\n');
  }
  return out;
}

}  // namespace

std::optional<std::string> eval(const Combiner& g, std::string_view y1,
                                std::string_view y2, const EvalContext& ctx) {
  if (g.swapped) std::swap(y1, y2);
  const Node& n = *g.node;
  switch (n.op) {
    case Op::kStitch:
      return eval_stitch(n, y1, y2);
    case Op::kStitch2:
      return eval_stitch2(n, y1, y2);
    case Op::kOffset:
      return eval_offset(n, y1, y2);
    case Op::kRerun: {
      if (!ctx.command) return std::nullopt;
      std::string joined;
      joined.reserve(y1.size() + y2.size());
      joined.append(y1);
      joined.append(y2);
      cmd::Result r = ctx.command->execute(joined);
      if (!r.ok()) return std::nullopt;
      return std::move(r.out);
    }
    case Op::kMerge: {
      if (!g.merge_spec) return std::nullopt;
      for (std::string_view y : {y1, y2}) {
        if (y.empty()) continue;
        if (!text::is_stream(y)) return std::nullopt;
        if (!g.merge_spec->is_sorted_stream(y)) return std::nullopt;
      }
      return g.merge_spec->merge_streams({y1, y2});
    }
    default:
      return eval_rec(n, y1, y2);
  }
}

}  // namespace kq::dsl
