#include "dsl/ast.h"

namespace kq::dsl {

OpClass op_class(Op op) noexcept {
  switch (op) {
    case Op::kAdd:
    case Op::kConcat:
    case Op::kFirst:
    case Op::kSecond:
    case Op::kFront:
    case Op::kBack:
    case Op::kFuse:
      return OpClass::kRec;
    case Op::kStitch:
    case Op::kStitch2:
    case Op::kOffset:
      return OpClass::kStruct;
    case Op::kRerun:
    case Op::kMerge:
      return OpClass::kRun;
  }
  return OpClass::kRun;
}

NodeRef make_leaf(Op op) { return std::make_shared<Node>(Node{op, 0, {}, {}}); }

NodeRef make_unary(Op op, char delim, NodeRef child) {
  return std::make_shared<Node>(Node{op, delim, std::move(child), {}});
}

NodeRef make_stitch(NodeRef child) {
  return std::make_shared<Node>(Node{Op::kStitch, 0, std::move(child), {}});
}

NodeRef make_stitch2(char delim, NodeRef b1, NodeRef b2) {
  return std::make_shared<Node>(
      Node{Op::kStitch2, delim, std::move(b1), std::move(b2)});
}

int node_ops(const Node& n) noexcept {
  int ops = 1;
  if (n.child1) ops += node_ops(*n.child1);
  if (n.child2) ops += node_ops(*n.child2);
  return ops;
}

int size(const Combiner& g) noexcept { return 2 + node_ops(*g.node); }

namespace {

std::string delim_to_string(char d) {
  switch (d) {
    case '\n': return "'\\n'";
    case '\t': return "'\\t'";
    case ' ': return "' '";
    default: return std::string("'") + d + "'";
  }
}

}  // namespace

std::string node_to_string(const Node& n) {
  switch (n.op) {
    case Op::kAdd: return "add";
    case Op::kConcat: return "concat";
    case Op::kFirst: return "first";
    case Op::kSecond: return "second";
    case Op::kFront:
      return "(front " + delim_to_string(n.delim) + " " +
             node_to_string(*n.child1) + ")";
    case Op::kBack:
      return "(back " + delim_to_string(n.delim) + " " +
             node_to_string(*n.child1) + ")";
    case Op::kFuse:
      return "(fuse " + delim_to_string(n.delim) + " " +
             node_to_string(*n.child1) + ")";
    case Op::kStitch:
      return "(stitch " + node_to_string(*n.child1) + ")";
    case Op::kStitch2:
      return "(stitch2 " + delim_to_string(n.delim) + " " +
             node_to_string(*n.child1) + " " + node_to_string(*n.child2) +
             ")";
    case Op::kOffset:
      return "(offset " + delim_to_string(n.delim) + " " +
             node_to_string(*n.child1) + ")";
    case Op::kRerun: return "rerun";
    case Op::kMerge: return "merge";
  }
  return "?";
}

std::string to_string(const Combiner& g) {
  std::string head = node_to_string(*g.node);
  if (g.node->op == Op::kMerge && !g.merge_flags.empty())
    head = "merge('" + g.merge_flags + "')";
  return "(" + head + (g.swapped ? " b a)" : " a b)");
}

Combiner combiner_add() { return {make_leaf(Op::kAdd), false, nullptr, ""}; }
Combiner combiner_concat() {
  return {make_leaf(Op::kConcat), false, nullptr, ""};
}
Combiner combiner_first() {
  return {make_leaf(Op::kFirst), false, nullptr, ""};
}
Combiner combiner_second() {
  return {make_leaf(Op::kSecond), false, nullptr, ""};
}
Combiner combiner_back_add(char d) {
  return {make_unary(Op::kBack, d, make_leaf(Op::kAdd)), false, nullptr, ""};
}
Combiner combiner_fuse_add(char d) {
  return {make_unary(Op::kFuse, d, make_leaf(Op::kAdd)), false, nullptr, ""};
}
Combiner combiner_front_concat(char d) {
  return {make_unary(Op::kFront, d, make_leaf(Op::kConcat)), false, nullptr,
          ""};
}
Combiner combiner_stitch_first() {
  return {make_stitch(make_leaf(Op::kFirst)), false, nullptr, ""};
}
Combiner combiner_stitch2_add_first(char d) {
  return {make_stitch2(d, make_leaf(Op::kAdd), make_leaf(Op::kFirst)), false,
          nullptr, ""};
}
Combiner combiner_offset_add(char d) {
  return {make_unary(Op::kOffset, d, make_leaf(Op::kAdd)), false, nullptr,
          ""};
}
Combiner combiner_rerun() {
  return {make_leaf(Op::kRerun), false, nullptr, ""};
}
Combiner combiner_merge(const std::string& flags) {
  Combiner g{make_leaf(Op::kMerge), false, nullptr, flags};
  std::vector<std::string> flag_words;
  if (!flags.empty()) {
    std::string cur;
    for (char c : flags) {
      if (c == ' ') {
        if (!cur.empty()) flag_words.push_back(cur);
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
    if (!cur.empty()) flag_words.push_back(cur);
  }
  auto spec = cmd::SortSpec::parse(flag_words);
  g.merge_spec = spec ? std::make_shared<const cmd::SortSpec>(*spec) : nullptr;
  return g;
}

Combiner swapped(Combiner g) {
  g.swapped = !g.swapped;
  return g;
}

}  // namespace kq::dsl
