#include "dsl/kway.h"

#include "text/streams.h"

namespace kq::dsl {

std::optional<std::string> combine_k(const Combiner& g,
                                     const std::vector<std::string>& parts,
                                     const EvalContext& ctx) {
  if (parts.empty()) return std::string();
  if (parts.size() == 1) return parts.front();

  switch (g.node->op) {
    case Op::kConcat: {
      // `cat $*` (respecting a swapped argument order by reversing).
      std::string out;
      std::size_t total = 0;
      for (const std::string& p : parts) total += p.size();
      out.reserve(total);
      if (g.swapped) {
        for (auto it = parts.rbegin(); it != parts.rend(); ++it) out += *it;
      } else {
        for (const std::string& p : parts) out += p;
      }
      return out;
    }
    case Op::kMerge: {
      if (!g.merge_spec) return std::nullopt;
      std::vector<std::string_view> views;
      views.reserve(parts.size());
      for (const std::string& p : parts) {
        if (!p.empty() &&
            (!text::is_stream(p) || !g.merge_spec->is_sorted_stream(p)))
          return std::nullopt;
        views.push_back(p);
      }
      return g.merge_spec->merge_streams(views);
    }
    case Op::kRerun: {
      if (!ctx.command) return std::nullopt;
      std::string joined;
      std::size_t total = 0;
      for (const std::string& p : parts) total += p.size();
      joined.reserve(total);
      for (const std::string& p : parts) joined += p;
      cmd::Result r = ctx.command->execute(joined);
      if (!r.ok()) return std::nullopt;
      return std::move(r.out);
    }
    default: {
      std::string acc = parts.front();
      for (std::size_t i = 1; i < parts.size(); ++i) {
        auto next = eval(g, acc, parts[i], ctx);
        if (!next) return std::nullopt;
        acc = std::move(*next);
      }
      return acc;
    }
  }
}

}  // namespace kq::dsl
