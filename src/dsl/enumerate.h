// Candidate-space enumeration (§3.2). The initial search space contains
// every DSL tree with at most `max_ops` operator productions (|g| ≤
// max_ops + 2; the paper uses "seven or fewer nodes", i.e. max_ops = 5)
// over a per-command delimiter alphabet, each in both argument orders,
// plus the four RunOp candidates (rerun and merge in both orders).
//
// With max_ops = 5 this reproduces the paper's Table 10 space sizes
// exactly: |D|=1 -> 2700, |D|=2 -> 26404, |D|=3 -> 110444
// (see DESIGN.md §3 for the closed form).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dsl/ast.h"

namespace kq::dsl {

struct SpaceSpec {
  std::vector<char> delims = {'\n'};  // per-command delimiter alphabet
  int max_ops = 5;                    // P; |g| <= P + 2
  std::string merge_flags;            // flags for the merge candidate
};

struct CandidateSpace {
  std::vector<Combiner> candidates;  // RecOp, then StructOp, then RunOp
  std::size_t rec_count = 0;         // counts include both argument orders
  std::size_t struct_count = 0;
  std::size_t run_count = 0;

  std::size_t total() const { return rec_count + struct_count + run_count; }
};

CandidateSpace enumerate_candidates(const SpaceSpec& spec);

// Closed-form candidate counts; must equal enumerate_candidates' sizes.
struct SpaceCounts {
  std::size_t rec = 0;
  std::size_t strct = 0;
  std::size_t run = 0;
  std::size_t total() const { return rec + strct + run; }
};
SpaceCounts count_candidates(std::size_t delim_count, int max_ops);

}  // namespace kq::dsl
