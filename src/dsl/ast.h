// The combiner DSL of Figure 3:
//
//   g ∈ Combiner_f := b | s | r
//   b ∈ RecOp      := add | concat | first | second
//                   | front d b | back d b | fuse d b
//   s ∈ StructOp   := stitch b | stitch2 d b1 b2 | offset d b
//   r ∈ RunOp_f    := rerun_f | merge <flags>
//   d ∈ Delim      := '\n' | '\t' | ' ' | ','
//
// A candidate combiner is a DSL tree plus an argument order: the searcher
// considers both g(y1,y2) and g(y2,y1) (visible in Table 10, where e.g.
// `(back '\n' add) b a` appears alongside `(back '\n' add) a b`).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "unixcmd/sort_cmd.h"

namespace kq::dsl {

enum class Op {
  kAdd,
  kConcat,
  kFirst,
  kSecond,
  kFront,
  kBack,
  kFuse,
  kStitch,
  kStitch2,
  kOffset,
  kRerun,
  kMerge,
};

enum class OpClass { kRec, kStruct, kRun };

// Returns the grammar class of an operator (RecOp / StructOp / RunOp_f).
OpClass op_class(Op op) noexcept;

// The default delimiter alphabet of the DSL (Figure 3).
inline constexpr char kDelims[] = {'\n', '\t', ' ', ','};

// One node of a combiner tree. Nodes are immutable and shared: the
// enumerator builds ~10^5 candidates that reuse subtrees.
struct Node {
  Op op;
  char delim = 0;                  // front/back/fuse/stitch2/offset
  std::shared_ptr<const Node> child1;  // RecOp child (b / b1)
  std::shared_ptr<const Node> child2;  // stitch2's b2
};

using NodeRef = std::shared_ptr<const Node>;

NodeRef make_leaf(Op op);
NodeRef make_unary(Op op, char delim, NodeRef child);
NodeRef make_stitch(NodeRef child);
NodeRef make_stitch2(char delim, NodeRef b1, NodeRef b2);

// A candidate combiner: tree + argument order + (for merge) the
// pre-parsed sort comparator.
struct Combiner {
  NodeRef node;
  bool swapped = false;  // evaluate as g(y2, y1)
  std::shared_ptr<const cmd::SortSpec> merge_spec;  // kMerge only
  std::string merge_flags;                          // display form

  OpClass cls() const { return op_class(node->op); }
};

// Combiner size |g| of Definition 3.6: two plus the number of operator
// productions in the tree (delimiters are free). |add| == 3,
// |front d (back d (fuse d add))| == 6, |stitch2 d add first| == 5.
int size(const Combiner& g) noexcept;
int node_ops(const Node& n) noexcept;

// Prints in the Table 10 style: "(concat a b)", "((back '\n' add) b a)",
// "(merge('-rn') a b)". Stable across runs; used as the dedup key.
std::string to_string(const Combiner& g);
std::string node_to_string(const Node& n);

// Convenience constructors for the representative combiners of
// Definition B.11 (used heavily in tests).
Combiner combiner_add();
Combiner combiner_concat();
Combiner combiner_first();
Combiner combiner_second();
Combiner combiner_back_add(char d);
Combiner combiner_fuse_add(char d);
Combiner combiner_front_concat(char d);
Combiner combiner_stitch_first();
Combiner combiner_stitch2_add_first(char d);
Combiner combiner_offset_add(char d);
Combiner combiner_rerun();
Combiner combiner_merge(const std::string& flags);

// Returns a copy of `g` with the argument order flipped.
Combiner swapped(Combiner g);

}  // namespace kq::dsl
