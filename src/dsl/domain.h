// Legal domains L(g) of Definition B.1. A combiner is only defined on
// operands in its domain; plausibility (Definition 3.9) requires every
// observation to fall inside the domain *and* evaluate to the serial
// output, so domain checks are the first elimination filter.
//
// Two documented deviations from the appendix text (see DESIGN.md §6):
//  * stitch2 requires at least one padding character per line (the
//    `uniq -c` table shape the operator models);
//  * offset accepts zero padding (the `wc -l FILE` shape it models).
#pragma once

#include <string_view>

#include "dsl/ast.h"

namespace kq::dsl {

// True iff `y` ∈ L(b) for a RecOp subtree `b`.
bool legal_rec(const Node& b, std::string_view y);

// True iff `y` ∈ L(g) for any combiner node (RecOp, StructOp, or RunOp;
// `merge_spec` supplies the comparator for kMerge).
bool legal(const Combiner& g, std::string_view y);

// A line of the form  pad ++ head ++ d ++ tail  with head ∈ L(b1) and
// d ∉ head; used by stitch2/offset legality and evaluation.
struct TableLine {
  bool ok = false;
  std::size_t pad = 0;          // columns of padding before head
  std::string_view head;
  std::string_view tail;
};
TableLine parse_table_line(std::string_view line, char d,
                           bool require_padding);

}  // namespace kq::dsl
