// k-way generalization of binary combiners (§3.5 "Combining Multiple
// Substreams"): merge becomes a k-way `sort -m`, concat becomes `cat $*`,
// rerun concatenates all substreams and reruns the command once, and every
// other combiner is applied pairwise as a left fold.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dsl/eval.h"

namespace kq::dsl {

std::optional<std::string> combine_k(const Combiner& g,
                                     const std::vector<std::string>& parts,
                                     const EvalContext& ctx = {});

}  // namespace kq::dsl
