// Unit tests for the text substrate: splitting, streams, padding, numbers,
// shell words.

#include <gtest/gtest.h>

#include "text/numbers.h"
#include "text/padding.h"
#include "text/shellwords.h"
#include "text/streams.h"
#include "text/strings.h"

namespace kq::text {
namespace {

TEST(Split, KeepsEmptyFields) {
  auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Split, EmptyString) {
  auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Split, NoDelimiter) {
  auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Split, TrailingDelimiter) {
  auto parts = split("a,b,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "");
}

TEST(Join, RoundTripsSplit) {
  std::vector<std::string> parts = {"x", "", "yz"};
  EXPECT_EQ(join(parts, ':'), "x::yz");
}

TEST(CountChar, CountsOccurrences) {
  EXPECT_EQ(count_char("a,b,,c", ','), 3u);
  EXPECT_EQ(count_char("", ','), 0u);
  EXPECT_TRUE(contains_char("ab\nc", '\n'));
  EXPECT_FALSE(contains_char("abc", '\n'));
}

TEST(Case, ToLowerUpper) {
  EXPECT_EQ(to_lower("MiXeD 123"), "mixed 123");
  EXPECT_EQ(to_upper("MiXeD 123"), "MIXED 123");
}

TEST(ReplaceAll, ReplacesEveryOccurrence) {
  EXPECT_EQ(replace_all("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(replace_all("none", "x", "y"), "none");
}

TEST(Trim, StripsDefaultSet) {
  EXPECT_EQ(trim("  hi \n"), "hi");
  EXPECT_EQ(trim("\t\t"), "");
}

TEST(StartsEndsWith, Basic) {
  EXPECT_TRUE(starts_with("hello", "he"));
  EXPECT_FALSE(starts_with("h", "he"));
  EXPECT_TRUE(ends_with("hello", "lo"));
  EXPECT_FALSE(ends_with("o", "lo"));
}

TEST(Streams, IsStream) {
  EXPECT_TRUE(is_stream("a\n"));
  EXPECT_TRUE(is_stream("\n"));
  EXPECT_FALSE(is_stream(""));
  EXPECT_FALSE(is_stream("a"));
}

TEST(Streams, Lines) {
  auto ls = lines("a\nb\n");
  ASSERT_EQ(ls.size(), 2u);
  EXPECT_EQ(ls[0], "a");
  EXPECT_EQ(ls[1], "b");
  EXPECT_TRUE(lines("").empty());
  ASSERT_EQ(lines("\n").size(), 1u);
  EXPECT_EQ(lines("\n")[0], "");
}

TEST(Streams, LinesWithUnterminatedTail) {
  auto ls = lines("a\nb");
  ASSERT_EQ(ls.size(), 2u);
  EXPECT_EQ(ls[1], "b");
}

TEST(Streams, UnlinesInvertsLines) {
  std::vector<std::string> ls = {"x", "", "y"};
  EXPECT_EQ(unlines(ls), "x\n\ny\n");
}

TEST(Streams, SplitFirst) {
  auto r = split_first("a b c", ' ');
  EXPECT_EQ(r.head, "a");
  ASSERT_TRUE(r.tail.has_value());
  EXPECT_EQ(*r.tail, "b c");

  auto none = split_first("abc", ' ');
  EXPECT_EQ(none.head, "abc");
  EXPECT_FALSE(none.tail.has_value());
}

TEST(Streams, SplitLast) {
  auto r = split_last("a b c", ' ');
  EXPECT_EQ(r.head, "a b");
  ASSERT_TRUE(r.tail.has_value());
  EXPECT_EQ(*r.tail, "c");
}

TEST(Streams, SplitLastLineMultiline) {
  auto r = split_last_line("a\nbb\n");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.head, "a\n");
  EXPECT_EQ(r.line, "bb");
}

TEST(Streams, SplitLastLineSingleLine) {
  auto r = split_last_line("abc\n");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.head, "");
  EXPECT_EQ(r.line, "abc");
}

TEST(Streams, SplitLastLineRejectsNonStream) {
  EXPECT_FALSE(split_last_line("abc").ok);
  EXPECT_FALSE(split_last_line("").ok);
}

TEST(Streams, SplitFirstLine) {
  auto r = split_first_line("a\nb\n");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.line, "a");
  EXPECT_EQ(r.tail, "b\n");
  EXPECT_FALSE(split_first_line("abc").ok);
}

TEST(Streams, SplitLastNonemptyLine) {
  auto r = split_last_nonempty_line("a\nb\n\n\n");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.line, "b");
  EXPECT_EQ(r.head, "a\n");

  auto all_empty = split_last_nonempty_line("\n\n");
  EXPECT_FALSE(all_empty.ok);
}

TEST(Padding, DelPadSpaces) {
  auto u = del_pad("   42 abc");
  EXPECT_EQ(u.pad, 3u);
  EXPECT_FALSE(u.tab);
  EXPECT_EQ(u.rest, "42 abc");
}

TEST(Padding, DelPadTab) {
  auto u = del_pad("\t42");
  EXPECT_EQ(u.pad, 1u);
  EXPECT_TRUE(u.tab);
  EXPECT_EQ(u.rest, "42");
}

TEST(Padding, DelPadNone) {
  auto u = del_pad("42");
  EXPECT_EQ(u.pad, 0u);
  EXPECT_EQ(u.rest, "42");
}

TEST(Padding, AddPadRightAligns) {
  EXPECT_EQ(add_pad("7", 7), "      7");
  EXPECT_EQ(add_pad("1234567", 7), "1234567");
  EXPECT_EQ(add_pad("12345678", 7), "12345678");
}

TEST(Padding, PadToWidthPreservesColumn) {
  // uniq -c style: "      1 word" + "      1 word" -> count 2 keeps width.
  EXPECT_EQ(pad_to_width("2", "word", ' ', 7), "      2 word");
  EXPECT_EQ(pad_to_width("100", "word", ' ', 7), "    100 word");
}

TEST(Numbers, IsAllDigits) {
  EXPECT_TRUE(is_all_digits("0123"));
  EXPECT_FALSE(is_all_digits(""));
  EXPECT_FALSE(is_all_digits("12a"));
  EXPECT_FALSE(is_all_digits("-1"));
}

TEST(Numbers, ParseDigits) {
  EXPECT_EQ(parse_digits("42").value(), 42u);
  EXPECT_EQ(parse_digits("000").value(), 0u);
  EXPECT_FALSE(parse_digits("1e3").has_value());
  EXPECT_FALSE(parse_digits("99999999999999999999999").has_value());
}

TEST(Numbers, AddDigitStrings) {
  EXPECT_EQ(add_digit_strings("2", "3").value(), "5");
  // Canonical rendering: no leading zeros survive.
  EXPECT_EQ(add_digit_strings("007", "01").value(), "8");
  EXPECT_FALSE(add_digit_strings("a", "1").has_value());
}

TEST(ShellWords, BasicSplit) {
  auto w = shell_split("tr -cs A-Za-z '\\n'");
  ASSERT_TRUE(w.has_value());
  ASSERT_EQ(w->size(), 4u);
  EXPECT_EQ((*w)[0], "tr");
  EXPECT_EQ((*w)[1], "-cs");
  EXPECT_EQ((*w)[2], "A-Za-z");
  EXPECT_EQ((*w)[3], "\\n");  // single quotes keep the backslash literal
}

TEST(ShellWords, DoubleQuotes) {
  auto w = shell_split("awk \"length >= 16\"");
  ASSERT_TRUE(w.has_value());
  ASSERT_EQ(w->size(), 2u);
  EXPECT_EQ((*w)[1], "length >= 16");
}

TEST(ShellWords, EscapedDollarInDoubleQuotes) {
  auto w = shell_split("awk \"\\$1 >= 2\"");
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ((*w)[1], "$1 >= 2");
}

TEST(ShellWords, UnterminatedQuoteFails) {
  EXPECT_FALSE(shell_split("echo 'oops").has_value());
  EXPECT_FALSE(shell_split("echo \"oops").has_value());
}

TEST(ShellWords, BackslashOutsideQuotes) {
  auto w = shell_split("grep \\(x\\)");
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ((*w)[1], "(x)");
}

TEST(SplitPipeline, RespectsQuotes) {
  auto stages = split_pipeline("cut -d '|' -f 1 | sort");
  ASSERT_TRUE(stages.has_value());
  ASSERT_EQ(stages->size(), 2u);
  EXPECT_EQ((*stages)[0], "cut -d '|' -f 1 ");
  EXPECT_EQ((*stages)[1], " sort");
}

TEST(SplitPipeline, SingleStage) {
  auto stages = split_pipeline("sort -rn");
  ASSERT_TRUE(stages.has_value());
  EXPECT_EQ(stages->size(), 1u);
}

}  // namespace
}  // namespace kq::text
