// GNU-compat golden tests for the window-bounded built-ins (ISSUE 4):
// `tail -n N`, `uniq`/`-c`/`-d`/`-u` (and combinations), `wc` count
// selections including -m, and `sort -u` under numeric/key/fold/reverse
// comparators. Every expected string below is the byte output of the real
// GNU tool (coreutils, LC_ALL=C.UTF-8 for -m), and every case executes
// through three runtimes: the batch staged runner, the streaming dataflow
// runtime with the stage lowered as a window node (kWindowStream), and the
// streaming runtime with spilling forced (threshold 1), which drives the
// sort -u window through its export-sorted-runs path.
//
// Also cross-validates the full 70-script catalog with window streaming
// forced on (every stage sequential, tiny blocks, tiny spill threshold) —
// the window twin of stream_test's forced-sequential crossval.

#include <gtest/gtest.h>

#include "bench_support/catalog.h"
#include "compile/optimize.h"
#include "compile/plan.h"
#include "exec/runner.h"
#include "exec/thread_pool.h"
#include "stream/dataflow.h"
#include "unixcmd/registry.h"
#include "unixcmd/sort_cmd.h"

namespace kq {
namespace {

struct GoldenCase {
  const char* command;
  const char* input;
  const char* expected;  // GNU-verified bytes
};

// Mirrors compile::lower_plan's streamability classification for a
// hand-built sequential stage.
exec::ExecStage make_stage(const cmd::CommandPtr& command) {
  exec::ExecStage stage;
  stage.command = command;
  if (command->streamability() == cmd::Streamability::kWindow) {
    stage.memory_class = exec::MemoryClass::kWindowStream;
    stage.sort_spec = cmd::sort_spec_of(*command);
  } else if (command->streamability() != cmd::Streamability::kNone) {
    stage.memory_class = exec::MemoryClass::kStatelessStream;
  }
  return stage;
}

class WindowGolden : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(WindowGolden, BatchStreamAndSpillAgree) {
  const GoldenCase& c = GetParam();
  std::string error;
  cmd::CommandPtr command = cmd::make_command_line(c.command, &error);
  ASSERT_NE(command, nullptr) << c.command << ": " << error;
  ASSERT_EQ(command->streamability(), cmd::Streamability::kWindow)
      << c.command << " should be window-bounded";
  ASSERT_NE(command->window_processor(), nullptr) << c.command;

  // Direct execution (the batch runner's sequential floor).
  EXPECT_EQ(command->run(c.input), c.expected) << c.command;

  std::vector<exec::ExecStage> stages{make_stage(command)};
  exec::ThreadPool pool(2);
  EXPECT_EQ(exec::run_serial(stages, c.input).output, c.expected)
      << c.command << " (serial)";

  // Tiny blocks force many pushes per window; tiny thresholds force the
  // sort -u export path. (spill also caps oversized records, so the
  // tiny-block runs pair with a threshold above the longest test record.)
  struct RunCfg {
    std::size_t block, spill;
  };
  for (RunCfg rc : {RunCfg{4, 64 << 20}, RunCfg{std::size_t(1) << 20,
                                                std::size_t(64) << 20},
                    RunCfg{4, 32}, RunCfg{std::size_t(1) << 20, 1}}) {
    stream::StreamConfig config;
    config.parallelism = 2;
    config.block_size = rc.block;
    config.spill_threshold = rc.spill;
    std::string streamed;
    stream::StreamResult r =
        stream::run_streaming_string(stages, c.input, &streamed, pool, config);
    ASSERT_TRUE(r.ok) << c.command << ": " << r.error;
    EXPECT_FALSE(r.batch_fallback) << c.command;
    ASSERT_EQ(r.nodes.size(), 1u);
    EXPECT_TRUE(r.nodes[0].window)
        << c.command << " should run as a window node";
    EXPECT_EQ(streamed, c.expected)
        << c.command << " (stream, block=" << rc.block
        << ", spill=" << rc.spill << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    TailLastN, WindowGolden,
    ::testing::Values(
        GoldenCase{"tail -n 3", "a\nb\nc\nd\ne\n", "c\nd\ne\n"},
        GoldenCase{"tail -3", "a\nb\nc\nd\ne\n", "c\nd\ne\n"},
        // GNU tail copies the input's bytes: an unterminated last line
        // stays unterminated.
        GoldenCase{"tail -n 3", "a\nb\nc\nd\ne", "c\nd\ne"},
        GoldenCase{"tail -n 0", "a\nb\nc\nd\ne\n", ""},
        GoldenCase{"tail -n 1", "\n\n", "\n"},
        GoldenCase{"tail -n 2", "x", "x"},
        GoldenCase{"tail -n 10", "a\nb\n", "a\nb\n"},
        GoldenCase{"tail -n 2", "", ""}));

INSTANTIATE_TEST_SUITE_P(
    Uniq, WindowGolden,
    ::testing::Values(
        GoldenCase{"uniq", "a\na\nb\nc\nc\nc\nb\n", "a\nb\nc\nb\n"},
        GoldenCase{"uniq -c", "a\na\nb\nc\nc\nc\nb\n",
                   "      2 a\n      1 b\n      3 c\n      1 b\n"},
        GoldenCase{"uniq -d", "a\na\nb\nc\nc\nc\nb\n", "a\nc\n"},
        GoldenCase{"uniq -u", "a\na\nb\nc\nc\nc\nb\n", "b\nb\n"},
        GoldenCase{"uniq -cd", "a\na\nb\nc\nc\nc\nb\n",
                   "      2 a\n      3 c\n"},
        GoldenCase{"uniq -cu", "a\na\nb\nc\nc\nc\nb\n",
                   "      1 b\n      1 b\n"},
        // -d -u together prints nothing, matching GNU.
        GoldenCase{"uniq -du", "a\na\nb\nc\nc\nc\nb\n", ""},
        // GNU uniq re-terminates an unterminated final line.
        GoldenCase{"uniq", "a\na", "a\n"},
        GoldenCase{"uniq -c", "z\nz\nz\nz\nz\nz\nz\nz\nz\nz\nz\nz\n",
                   "     12 z\n"},
        GoldenCase{"uniq", "", ""}));

INSTANTIATE_TEST_SUITE_P(
    Wc, WindowGolden,
    ::testing::Values(
        GoldenCase{"wc -l", "one two\nthree\n", "2\n"},
        GoldenCase{"wc -w", "one two\nthree\n", "3\n"},
        GoldenCase{"wc -c", "one two\nthree\n", "14\n"},
        GoldenCase{"wc", "one two\nthree\n", "      2       3      14\n"},
        GoldenCase{"wc -lw", "one two\nthree\n", "      2       3\n"},
        GoldenCase{"wc", "", "      0       0       0\n"},
        // -m counts UTF-8 code points (GNU under a UTF-8 locale): é and ö
        // are two bytes but one character each.
        GoldenCase{"wc -m", "h\xc3\xa9llo w\xc3\xb6rld\n", "12\n"},
        // GNU's fixed column order: lines, words, chars, bytes.
        GoldenCase{"wc -lwmc", "h\xc3\xa9llo w\xc3\xb6rld\n",
                   "      1       2      12      14\n"},
        // Word boundaries are isspace, not just blanks.
        GoldenCase{"wc -w", "tab\tsep\rends\x0b\x0c \n", "3\n"},
        GoldenCase{"wc -l", "no newline", "0\n"},
        GoldenCase{"wc -c", "no newline", "10\n"}));

INSTANTIATE_TEST_SUITE_P(
    SortUnique, WindowGolden,
    ::testing::Values(
        GoldenCase{"sort -u", "b\na\nc\nb\na\n", "a\nb\nc\n"},
        // Equal keys keep the first occurrence (GNU -u after a stable
        // sort): 10 beats 010, 9 beats 9.0.
        GoldenCase{"sort -nu", "10\n9\n010\n9.0\n", "9\n10\n"},
        GoldenCase{"sort -k1,1 -u", "b x\nb y\na z\nb x\n", "a z\nb x\n"},
        GoldenCase{"sort -fu", "A\na\nB\nb\na\n", "A\nB\n"},
        GoldenCase{"sort -ru", "b\na\nc\nb\n", "c\nb\na\n"},
        GoldenCase{"sort -k1n -u", "3 a\n03 b\n2 c\n", "2 c\n3 a\n"},
        // sort re-terminates an unterminated final line.
        GoldenCase{"sort -u", "b\na", "a\nb\n"},
        GoldenCase{"sort -u", "", ""}));

// Plain `sort` (no -u) must NOT be window-classified: without dedup the
// window is the whole input, and the external merge sort already bounds it.
TEST(WindowClassification, PlainSortStaysSortableSpill) {
  cmd::CommandPtr sort = cmd::make_command_line("sort");
  ASSERT_NE(sort, nullptr);
  EXPECT_EQ(sort->streamability(), cmd::Streamability::kNone);
  EXPECT_EQ(sort->window_processor(), nullptr);

  synth::SynthesisCache cache;
  auto parsed = compile::parse_pipeline("uniq -c | tail -n 2 | wc -l");
  ASSERT_TRUE(parsed.has_value());
  compile::Plan plan = compile::compile_pipeline(*parsed, cache);
  for (auto& stage : plan.stages) stage.parallel = false;
  auto stages = compile::lower_plan(plan);
  ASSERT_EQ(stages.size(), 3u);
  for (const auto& stage : stages)
    EXPECT_EQ(stage.memory_class, exec::MemoryClass::kWindowStream)
        << stage.command->display_name();

  auto sorted = compile::parse_pipeline("sort -u");
  ASSERT_TRUE(sorted.has_value());
  compile::Plan splan = compile::compile_pipeline(*sorted, cache);
  for (auto& stage : splan.stages) stage.parallel = false;
  auto sstages = compile::lower_plan(splan);
  ASSERT_EQ(sstages.size(), 1u);
  EXPECT_EQ(sstages[0].memory_class, exec::MemoryClass::kWindowStream);
  // The sort -u window carries its comparator so an outsized distinct set
  // can spill as sorted runs.
  EXPECT_NE(sstages[0].sort_spec, nullptr);
}

// A stream chain absorbs per-record stages *before* the window terminal
// (`grep | uniq` is one fused node) and a window stage ends the fusion
// (`uniq | wc -l` is two nodes: finish() reorders emission).
TEST(WindowFusion, WindowTerminatesAFusedChain) {
  synth::SynthesisCache cache;
  auto parsed = compile::parse_pipeline("grep a | uniq | wc -l");
  ASSERT_TRUE(parsed.has_value());
  compile::Plan plan = compile::compile_pipeline(*parsed, cache);
  for (auto& stage : plan.stages) stage.parallel = false;
  auto stages = compile::lower_plan(plan);

  std::string input = "ab\nab\ncd\nax\nax\nax\nab\n";
  exec::ThreadPool pool(2);
  stream::StreamConfig config;
  config.parallelism = 2;
  config.block_size = 4;
  std::string out;
  stream::StreamResult r =
      stream::run_streaming_string(stages, input, &out, pool, config);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(out, "3\n");  // ab, ax, ab survive uniq
  ASSERT_EQ(r.nodes.size(), 2u);
  EXPECT_EQ(r.nodes[0].commands, "grep a | uniq");
  EXPECT_TRUE(r.nodes[0].window);
  EXPECT_EQ(r.nodes[1].commands, "wc -l");
  EXPECT_TRUE(r.nodes[1].window);
}

// The sort -u window past the spill threshold exports sorted runs and
// re-streams the external merge: byte-identical to batch, with spill
// metrics on the window node.
TEST(WindowSpill, SortUniqueWindowSpillsSortedRuns) {
  cmd::CommandPtr command = cmd::make_command_line("sort -u");
  ASSERT_NE(command, nullptr);
  std::vector<exec::ExecStage> stages{make_stage(command)};

  std::string input;
  for (int i = 0; i < 4000; ++i)
    input += "line-" + std::to_string((i * 37) % 1000) + "\n";

  exec::ThreadPool pool(2);
  stream::StreamConfig config;
  config.parallelism = 2;
  config.block_size = 512;
  config.spill_threshold = 4096;  // far below the ~10 KB distinct set
  std::string out;
  stream::StreamResult r =
      stream::run_streaming_string(stages, input, &out, pool, config);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(out, exec::run_serial(stages, input).output);
  ASSERT_EQ(r.nodes.size(), 1u);
  EXPECT_TRUE(r.nodes[0].window);
  EXPECT_GT(r.nodes[0].spilled_bytes, 0u);
  EXPECT_GT(r.nodes[0].spill_runs, 1);
}

// A plan-parallel sort -u stage forced sequential at k = 1 carries its
// *combiner's* merge spec in sort_spec (it orders f's outputs, not raw
// input); the window spill must re-derive the command's own spec, like
// run_sequential does. Hand-build the hazard with a deliberately wrong
// sort_spec and check the spilled window still matches serial output.
TEST(WindowSpill, ParallelPlannedSortUniqueUsesOwnSpecAtKOne) {
  cmd::CommandPtr command = cmd::make_command_line("sort -nu");
  ASSERT_NE(command, nullptr);
  exec::ExecStage stage;
  stage.command = command;
  stage.parallel = true;  // plan said parallel; runtime k=1 forces window
  stage.memory_class = exec::MemoryClass::kSortableSpill;
  auto wrong = cmd::SortSpec::parse({"-r"});  // not the command's order
  ASSERT_TRUE(wrong.has_value());
  stage.sort_spec = std::make_shared<const cmd::SortSpec>(*wrong);
  stage.combine = [](const std::vector<std::string>& parts)
      -> std::optional<std::string> {
    std::string joined;
    for (const std::string& p : parts) joined += p;
    return joined;  // never reached at k=1; presence marks "parallel-able"
  };
  std::vector<exec::ExecStage> stages{std::move(stage)};

  std::string input;
  for (int i = 4000; i > 0; --i)
    input += std::to_string(i % 500) + "\n";

  exec::ThreadPool pool(1);
  stream::StreamConfig config;
  config.parallelism = 1;  // forces the sequential window lowering
  config.block_size = 512;
  config.spill_threshold = 2048;  // forces the window to export runs
  std::string out;
  stream::StreamResult r =
      stream::run_streaming_string(stages, input, &out, pool, config);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(out, command->run(input));
  ASSERT_EQ(r.nodes.size(), 1u);
  EXPECT_TRUE(r.nodes[0].window);
  EXPECT_GT(r.nodes[0].spilled_bytes, 0u);
}

// ------------------------------------------------ catalog cross-validation --

// Window streaming forced on across the whole 70-script catalog: every
// stage sequential (so uniq/wc/tail -n/sort -u all lower to kWindowStream),
// blocks small enough to force many pushes per window, and the spill
// threshold far below the inputs so sort -u windows export runs. Output
// must stay byte-identical to the batch runner.
class WindowCatalogCrossval
    : public ::testing::TestWithParam<const bench::Script*> {
 protected:
  static synth::SynthesisCache& cache() {
    static synth::SynthesisCache c;
    return c;
  }
  static vfs::Vfs& fs() {
    static vfs::Vfs v;
    return v;
  }
};

TEST_P(WindowCatalogCrossval, ForcedWindowMatchesBatch) {
  const bench::Script& script = *GetParam();
  std::string input = bench::prepare_input(script, 24 * 1024, 7, fs());
  exec::ThreadPool pool(4);

  for (const std::string& pipeline : script.pipelines) {
    auto parsed = compile::parse_pipeline(pipeline);
    ASSERT_TRUE(parsed.has_value()) << pipeline;
    compile::Plan plan =
        compile::compile_pipeline(*parsed, cache(), {}, &fs());
    auto stages = compile::lower_plan(plan);
    exec::RunConfig batch_config{4, /*use_elimination=*/true};
    std::string batch =
        exec::run_pipeline(stages, input, pool, batch_config).output;

    compile::Plan seq_plan =
        compile::compile_pipeline(*parsed, cache(), {}, &fs());
    for (auto& stage : seq_plan.stages) stage.parallel = false;
    auto seq_stages = compile::lower_plan(seq_plan);
    bool windowed = false;
    for (const auto& stage : seq_stages)
      if (stage.memory_class == exec::MemoryClass::kWindowStream)
        windowed = true;

    stream::StreamConfig config;
    config.parallelism = 4;
    config.block_size = 2048;
    config.spill_threshold = 4096;  // forces the window/merge spill paths
    std::string streamed;
    stream::StreamResult r = stream::run_streaming_string(
        seq_stages, input, &streamed, pool, config);
    EXPECT_TRUE(r.ok) << pipeline << ": " << r.error;
    EXPECT_EQ(streamed, batch)
        << script.suite << "/" << script.name
        << (windowed ? " (window)" : "") << ": " << pipeline;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllScripts, WindowCatalogCrossval,
    ::testing::ValuesIn([] {
      std::vector<const bench::Script*> ptrs;
      for (const bench::Script& s : bench::all_scripts()) ptrs.push_back(&s);
      return ptrs;
    }()),
    [](const ::testing::TestParamInfo<const bench::Script*>& info) {
      std::string name = info.param->suite + "_" + info.param->name;
      std::string out;
      for (char c : name)
        out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
      return out;
    });

}  // namespace
}  // namespace kq
