// Backend-equivalence tests for the I/O engine layer (src/io/): the whole
// 70-script crossval catalog runs under BOTH backends (poll and io_uring)
// at k in {1, 4} from a real file descriptor source — so source reads AND
// spill I/O route through the engine under test — and every run must be
// byte-identical to the serial oracle. A telemetry leg reconciles the
// per-node counters across backends (bytes/records are deterministic and
// must match exactly; sqe_batches/cqe_waits are uring-only and must stay
// zero on poll), and a static-analysis leg pins the check::analyze RSS
// model as backend-independent: switching the syscall strategy must not
// move the memory model. The uring legs skip with a logged reason when the
// kernel probe fails.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cctype>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_support/catalog.h"
#include "check/check.h"
#include "compile/optimize.h"
#include "compile/plan.h"
#include "exec/executor.h"
#include "exec/runner.h"
#include "io/engine.h"
#include "unixcmd/registry.h"

namespace kq {
namespace {

synth::SynthesisCache& shared_cache() {
  static synth::SynthesisCache c;
  return c;
}

vfs::Vfs& shared_fs() {
  static vfs::Vfs v;
  return v;
}

// An unlinked temp file holding `content`; rewind() re-arms it for the
// next run (the engines read via file-position semantics, so a reset
// offset replays the same stream).
class FdInput {
 public:
  explicit FdInput(const std::string& content) {
    char path[] = "/tmp/kq-io-backend-XXXXXX";
    fd_ = ::mkstemp(path);
    EXPECT_GE(fd_, 0);
    ::unlink(path);
    EXPECT_EQ(::write(fd_, content.data(), content.size()),
              static_cast<ssize_t>(content.size()));
  }
  ~FdInput() {
    if (fd_ >= 0) ::close(fd_);
  }
  int rewind() {
    EXPECT_EQ(::lseek(fd_, 0, SEEK_SET), 0);
    return fd_;
  }

 private:
  int fd_ = -1;
};

std::vector<io::Backend> available_backends() {
  std::vector<io::Backend> backends{io::Backend::kPoll};
  if (io::uring_supported()) backends.push_back(io::Backend::kUring);
  return backends;
}

kq::ExecOptions backend_options(io::Backend backend, int k,
                                std::size_t spill_threshold = 64 << 20) {
  kq::ExecOptions o;
  o.mode = kq::ExecMode::kStream;
  o.parallelism = k;
  o.block_size = 2048;
  o.spill_threshold = spill_threshold;
  o.io_backend = backend;
  return o;
}

// ------------------------------------------------------- catalog crossval --

class IoBackendCrossval
    : public ::testing::TestWithParam<const bench::Script*> {};

TEST_P(IoBackendCrossval, PollAndUringAreByteIdenticalToSerial) {
  const bench::Script& script = *GetParam();
  std::string input = bench::prepare_input(script, 24 * 1024, 7, shared_fs());
  if (!io::uring_supported())
    std::fprintf(stderr,
                 "io_backend_test: io_uring unavailable on this kernel; "
                 "crossval covers poll only\n");

  for (const std::string& pipeline : script.pipelines) {
    auto parsed = compile::parse_pipeline(pipeline);
    ASSERT_TRUE(parsed.has_value()) << pipeline;
    compile::Plan plan =
        compile::compile_pipeline(*parsed, shared_cache(), {}, &shared_fs());
    compile::eliminate_intermediate_combiners(plan);
    auto stages = compile::lower_plan(plan);

    std::string serial = exec::run_serial(stages, input).output;
    FdInput fd(input);
    for (io::Backend backend : available_backends()) {
      for (int k : {1, 4}) {
        kq::Executor executor(backend_options(backend, k));
        kq::ExecResult r = executor.run_collect(
            stages, kq::Source::from_fd(fd.rewind()));
        ASSERT_TRUE(r.ok) << pipeline << " backend="
                          << io::backend_name(backend) << " k=" << k << ": "
                          << r.error;
        EXPECT_EQ(r.io_backend, io::backend_name(backend));
        EXPECT_EQ(r.output, serial)
            << script.suite << "/" << script.name << ": " << pipeline
            << " backend=" << io::backend_name(backend) << " k=" << k;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllScripts, IoBackendCrossval,
    ::testing::ValuesIn([] {
      std::vector<const bench::Script*> ptrs;
      for (const bench::Script& s : bench::all_scripts()) ptrs.push_back(&s);
      return ptrs;
    }()),
    [](const ::testing::TestParamInfo<const bench::Script*>& info) {
      std::string name = info.param->suite + "_" + info.param->name;
      std::string out;
      for (char c : name)
        out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
      return out;
    });

// ------------------------------------------------- counter reconciliation --

std::vector<exec::ExecStage> compile_stages(const std::string& pipeline) {
  auto parsed = compile::parse_pipeline(pipeline);
  EXPECT_TRUE(parsed.has_value()) << pipeline;
  compile::Plan plan = compile::compile_pipeline(*parsed, shared_cache(), {});
  compile::rewrite_bounded_windows(plan);
  compile::eliminate_intermediate_combiners(plan);
  return compile::lower_plan(plan);
}

std::string crossval_input(int n) {
  std::string out;
  for (int i = 0; i < n; ++i)
    out += "w-" + std::to_string(i * 2654435761u % 977) + "\n";
  return out;
}

TEST(IoBackendCounters, TelemetryReconcilesAcrossBackends) {
  auto stages = compile_stages("sort | uniq -c");
  const std::string input = crossval_input(4000);
  FdInput fd(input);

  std::vector<kq::ExecResult> results;
  for (io::Backend backend : available_backends()) {
    kq::ExecOptions options =
        backend_options(backend, 2, /*spill_threshold=*/4096);
    options.stats = true;
    kq::Executor executor(options);
    kq::ExecResult r =
        executor.run_collect(stages, kq::Source::from_fd(fd.rewind()));
    ASSERT_TRUE(r.ok) << io::backend_name(backend) << ": " << r.error;
    // The whole input went through on every backend.
    EXPECT_EQ(r.bytes_read, input.size()) << io::backend_name(backend);
    for (const stream::NodeMetrics& n : r.nodes) {
      if (backend == io::Backend::kPoll) {
        // The submission counters are io_uring-only by contract.
        EXPECT_EQ(n.sqe_batches, 0u) << n.commands;
        EXPECT_EQ(n.cqe_waits, 0u) << n.commands;
      }
    }
    if (backend == io::Backend::kUring) {
      // Forced spilling routed writes through the ring somewhere: at least
      // one node must show submission activity.
      std::uint64_t total_batches = 0;
      for (const stream::NodeMetrics& n : r.nodes)
        total_batches += n.sqe_batches;
      EXPECT_GT(total_batches, 0u);
    }
    results.push_back(std::move(r));
  }
  if (results.size() < 2) {
    GTEST_SKIP() << "io_uring unavailable on this kernel; nothing to "
                    "reconcile against poll";
  }
  // Deterministic per-node counters must agree exactly between backends:
  // the engine changes *how* bytes move, never how many or where.
  const kq::ExecResult& poll = results[0];
  const kq::ExecResult& uring = results[1];
  ASSERT_EQ(poll.nodes.size(), uring.nodes.size());
  EXPECT_EQ(poll.output, uring.output);
  EXPECT_EQ(poll.spilled_bytes, uring.spilled_bytes);
  for (std::size_t i = 0; i < poll.nodes.size(); ++i) {
    EXPECT_EQ(poll.nodes[i].records_in, uring.nodes[i].records_in)
        << poll.nodes[i].commands;
    EXPECT_EQ(poll.nodes[i].records_out, uring.nodes[i].records_out)
        << poll.nodes[i].commands;
    EXPECT_EQ(poll.nodes[i].in_bytes, uring.nodes[i].in_bytes)
        << poll.nodes[i].commands;
    EXPECT_EQ(poll.nodes[i].out_bytes, uring.nodes[i].out_bytes)
        << poll.nodes[i].commands;
    EXPECT_EQ(poll.nodes[i].spilled_bytes, uring.nodes[i].spilled_bytes)
        << poll.nodes[i].commands;
  }
}

// ------------------------------------------------ rss model independence --

TEST(IoBackendCheck, RssModelIsBackendIndependent) {
  // The static analyzer models node residency from the plan alone — the
  // I/O backend moves syscalls, not memory classes. Pin that: the report
  // (including every stage's rss_model) is identical no matter which
  // backend the environment selects.
  auto parsed = compile::parse_pipeline("tr A-Z a-z | sort | uniq -c");
  ASSERT_TRUE(parsed.has_value());
  compile::Plan plan = compile::compile_pipeline(*parsed, shared_cache(), {});
  compile::rewrite_bounded_windows(plan);
  compile::eliminate_intermediate_combiners(plan);
  auto stages = compile::lower_plan(plan);

  auto analyze_with_env = [&](const char* backend) {
    ::setenv("KQ_IO_BACKEND", backend, 1);
    check::Report report = check::analyze(plan, stages, {});
    ::unsetenv("KQ_IO_BACKEND");
    return report;
  };
  check::Report under_poll = analyze_with_env("poll");
  check::Report under_uring = analyze_with_env("uring");
  ASSERT_EQ(under_poll.stages.size(), under_uring.stages.size());
  for (std::size_t i = 0; i < under_poll.stages.size(); ++i) {
    EXPECT_EQ(under_poll.stages[i].rss_model,
              under_uring.stages[i].rss_model)
        << "stage " << i;
  }
  EXPECT_EQ(under_poll.diagnostics.size(), under_uring.diagnostics.size());
}

}  // namespace
}  // namespace kq
