// Tests for the observability layer (src/obs/ plus the telemetry plumbed
// through the streaming executor): record counting, concurrent span
// recording (the TSan job drives this test under -fsanitize=thread), JSON
// escaping, and — the metrics-correctness core — per-node counters
// cross-validated against goldens derived from the batch runner for the
// stream-chain, forced-spill, window, and rewritten top-N node shapes,
// plus blocked-time accrual and early-exit cause attribution.

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "compile/optimize.h"
#include "compile/plan.h"
#include "exec/runner.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stream/dataflow.h"
#include "unixcmd/registry.h"

namespace kq {
namespace {

synth::SynthesisCache& cache() {
  static synth::SynthesisCache c;
  return c;
}

// Compiles a pipeline the way the CLI does; force_sequential reproduces
// k=1 lowering (streamable stages fuse into per-block chains, window
// stages become kWindowStream tails).
std::vector<exec::ExecStage> stages_for(const std::string& pipeline,
                                        bool rewrite = false,
                                        bool force_sequential = false) {
  auto parsed = compile::parse_pipeline(pipeline);
  EXPECT_TRUE(parsed.has_value()) << pipeline;
  compile::Plan plan = compile::compile_pipeline(*parsed, cache());
  if (rewrite) compile::rewrite_bounded_windows(plan);
  if (force_sequential)
    for (auto& stage : plan.stages) stage.parallel = false;
  compile::eliminate_intermediate_combiners(plan);
  return compile::lower_plan(plan);
}

std::string mixed_lines(int n) {
  std::string input;
  for (int i = 0; i < n; ++i)
    input += (i % 3 ? "alpha beta gamma\n" : "omega\n");
  return input;
}

// ------------------------------------------------------- record counting --

TEST(CountRecords, DelimiterOccurrencesPlusTrailingPartial) {
  EXPECT_EQ(obs::count_records("", '\n'), 0u);
  EXPECT_EQ(obs::count_records("a\nb\nc\n", '\n'), 3u);
  EXPECT_EQ(obs::count_records("a\nb\nc", '\n'), 3u);  // unterminated tail
  EXPECT_EQ(obs::count_records("\n\n\n", '\n'), 3u);
  EXPECT_EQ(obs::count_records("no delimiter at all", '\n'), 1u);
  EXPECT_EQ(obs::count_records("a,b,", ','), 2u);
  EXPECT_EQ(obs::count_records(std::string_view("a\0b\0", 4), '\0'), 2u);
}

// ------------------------------------------------------------- tracer --

TEST(Tracer, ConcurrentRecordingLosesNothing) {
  // 8 threads hammer the sharded recorder; the TSan CI job compiles this
  // test with -fsanitize=thread, so any unsynchronized access to a shard
  // or the thread-name table fails there.
  obs::Tracer tracer(/*shards=*/4);  // fewer shards than threads: contend
  constexpr int kThreads = 8;
  constexpr int kSpans = 400;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      tracer.set_thread_name("worker " + std::to_string(t));
      for (int i = 0; i < kSpans; ++i) {
        auto span = tracer.span("unit of work", "test");
        span.arg("thread", static_cast<std::uint64_t>(t));
        span.arg("i", static_cast<std::uint64_t>(i));
      }
      tracer.instant("done", "test");
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(tracer.event_count(), kThreads * (kSpans + 1));

  std::ostringstream out;
  tracer.write_chrome_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"worker 3\""), std::string::npos);
  EXPECT_EQ(json.back(), '\n');
}

TEST(Tracer, EscapesJsonSpecialsInNames) {
  obs::Tracer tracer;
  { auto span = tracer.span("quote\" back\\slash \n tab\t ctl\x01", "test"); }
  tracer.set_thread_name("name \"with\" quotes");
  std::ostringstream out;
  tracer.write_chrome_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("quote\\\" back\\\\slash \\n tab\\t ctl\\u0001"),
            std::string::npos);
  EXPECT_NE(json.find("name \\\"with\\\" quotes"), std::string::npos);
  for (char c : json)
    EXPECT_GE(static_cast<unsigned char>(c), 0x09) << "raw control byte";
}

TEST(Tracer, InertSpanAndNullHelpersAreSafe) {
  // The disabled fast path: null tracer, inert spans, no recording.
  auto span = obs::span(nullptr, "never recorded", "test");
  span.arg("ignored", 1);
  span.finish();
  obs::instant(nullptr, "never recorded", "test");
  obs::Tracer tracer;
  { auto moved = std::move(span); }  // moving an inert span records nothing
  EXPECT_EQ(tracer.event_count(), 0u);
}

// ----------------------------------------- counters vs batch-run goldens --

TEST(Counters, StreamChainMatchesGolden) {
  // grep a | tr a-z A-Z fuses into one per-block stream chain; its counters
  // must reconcile exactly with the input and the batch runner's output.
  auto stages = stages_for("grep a | tr a-z A-Z", /*rewrite=*/false,
                           /*force_sequential=*/true);
  const std::string input = mixed_lines(3000);
  const std::string golden = exec::run_serial(stages, input).output;

  exec::ThreadPool pool(2);
  stream::StreamConfig config;
  config.parallelism = 2;
  config.block_size = 512;
  config.stats = true;
  std::string output;
  stream::StreamResult r =
      stream::run_streaming_string(stages, input, &output, pool, config);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(output, golden);
  ASSERT_EQ(r.nodes.size(), 1u);
  const stream::NodeMetrics& node = r.nodes[0];
  EXPECT_EQ(node.memory, "stateless-stream");
  EXPECT_EQ(node.in_bytes, input.size());
  EXPECT_EQ(node.records_in, obs::count_records(input, '\n'));
  EXPECT_EQ(node.out_bytes, golden.size());
  EXPECT_EQ(node.records_out, obs::count_records(golden, '\n'));
  EXPECT_GT(node.pool_hits + node.pool_misses, 0u);
  EXPECT_EQ(node.early_exit, "");
}

TEST(Counters, ForcedSpillSortMatchesGolden) {
  // A parallel merge-combined sort pushed over its spill threshold: the
  // node's spill counters must show the external runs, and records/bytes
  // must still reconcile exactly (sort permutes, never drops).
  auto stages = stages_for("tr A-Z a-z | sort");
  std::string input;
  for (int i = 20000; i > 0; --i)
    input += "Key" + std::to_string(i) + "\n";
  const std::string golden = exec::run_serial(stages, input).output;

  exec::ThreadPool pool(4);
  stream::StreamConfig config;
  config.parallelism = 4;
  config.block_size = 2048;
  config.spill_threshold = 8192;  // force sorted runs onto disk
  config.stats = true;
  std::string output;
  stream::StreamResult r =
      stream::run_streaming_string(stages, input, &output, pool, config);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(output, golden);
  ASSERT_EQ(r.nodes.size(), 1u);
  const stream::NodeMetrics& node = r.nodes[0];
  EXPECT_EQ(node.memory, "sortable-spill");
  EXPECT_EQ(node.in_bytes, input.size());
  EXPECT_EQ(node.records_in, obs::count_records(input, '\n'));
  EXPECT_EQ(node.out_bytes, golden.size());
  EXPECT_EQ(node.records_out, node.records_in);
  EXPECT_GT(node.spill_runs, 0);
  EXPECT_GT(node.spilled_bytes, 0u);
  EXPECT_EQ(node.spilled_bytes, r.spilled_bytes);
}

TEST(Counters, WindowStageMatchesGolden) {
  // tail -n 10 as a window-terminated chain: absorbs everything, emits
  // exactly the 10-record window.
  auto stages = stages_for("tail -n 10", /*rewrite=*/false,
                           /*force_sequential=*/true);
  ASSERT_EQ(stages.size(), 1u);
  ASSERT_EQ(stages[0].memory_class, exec::MemoryClass::kWindowStream);
  const std::string input = mixed_lines(5000);
  const std::string golden = exec::run_serial(stages, input).output;

  exec::ThreadPool pool(2);
  stream::StreamConfig config;
  config.parallelism = 2;
  config.block_size = 256;
  config.stats = true;
  std::string output;
  stream::StreamResult r =
      stream::run_streaming_string(stages, input, &output, pool, config);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(output, golden);
  ASSERT_EQ(r.nodes.size(), 1u);
  const stream::NodeMetrics& node = r.nodes[0];
  EXPECT_EQ(node.memory, "window-stream");
  EXPECT_EQ(node.in_bytes, input.size());
  EXPECT_EQ(node.records_in, obs::count_records(input, '\n'));
  EXPECT_EQ(node.records_out, 10u);
  EXPECT_EQ(node.out_bytes, golden.size());
}

TEST(Counters, RewrittenTopNMatchesGolden) {
  // The rewrite pass fuses sort | head -n 10 into one O(N) window node;
  // its counters must show full consumption and a 10-record emission.
  auto stages = stages_for("sort | head -n 10", /*rewrite=*/true);
  ASSERT_EQ(stages.size(), 1u);
  ASSERT_EQ(stages[0].memory_class, exec::MemoryClass::kWindowStream);
  std::string input;
  // Appends, not chained operator+: GCC 12 -Wrestrict false positive
  // (GCC PR 105329) under -O3 -Werror.
  for (int i = 5000; i > 0; --i) {
    input += "k";
    input += std::to_string(i);
    input += "\n";
  }
  const std::string golden = exec::run_serial(stages, input).output;

  exec::ThreadPool pool(2);
  stream::StreamConfig config;
  config.parallelism = 2;
  config.block_size = 512;
  config.stats = true;
  std::string output;
  stream::StreamResult r =
      stream::run_streaming_string(stages, input, &output, pool, config);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(output, golden);
  ASSERT_EQ(r.nodes.size(), 1u);
  EXPECT_EQ(r.nodes[0].memory, "window-stream");
  EXPECT_EQ(r.nodes[0].records_in, obs::count_records(input, '\n'));
  EXPECT_EQ(r.nodes[0].records_out, 10u);
  EXPECT_EQ(r.nodes[0].out_bytes, golden.size());
}

TEST(Counters, StatsOffLeavesMetricsZero) {
  // Counters exist only under --stats; the default path must not pay for
  // (or fabricate) them.
  auto stages = stages_for("grep a | tr a-z A-Z", /*rewrite=*/false,
                           /*force_sequential=*/true);
  const std::string input = mixed_lines(500);
  exec::ThreadPool pool(2);
  stream::StreamConfig config;
  config.parallelism = 2;
  config.block_size = 512;
  std::string output;
  stream::StreamResult r =
      stream::run_streaming_string(stages, input, &output, pool, config);
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.nodes.size(), 1u);
  // in_bytes/out_bytes predate the telemetry layer and stay on; the
  // stats-only counters must remain untouched.
  EXPECT_EQ(r.nodes[0].records_in, 0u);
  EXPECT_EQ(r.nodes[0].records_out, 0u);
  EXPECT_EQ(r.nodes[0].memory, "");
  EXPECT_EQ(r.nodes[0].early_exit, "");
}

// ------------------------------------- blocked time and early-exit cause --

TEST(Counters, SendBlockedTimeAccruesAgainstSlowConsumer) {
  // A parallel concat node feeding a stream chain whose sink sleeps per
  // block: the chain pulls at sink speed, the bounded link fills, and the
  // upstream node's pushes must wait — the send-blocked counter is exactly
  // that wait. (The final node's push *is* the sink call, so only an
  // inter-node channel can accrue send-blocked time.)
  std::vector<exec::ExecStage> stages;
  {
    exec::ExecStage s;
    s.command = cmd::make_command_line("tr a-z A-Z");
    s.parallel = true;
    s.concat_combiner = true;
    s.combiner_name = "(concat a b)";
    s.combine = [](const std::vector<std::string>& parts)
        -> std::optional<std::string> {
      std::string out;
      for (const auto& p : parts) out += p;
      return out;
    };
    stages.push_back(std::move(s));
  }
  {
    exec::ExecStage s;
    s.command = cmd::make_command_line("grep ALPHA");
    ASSERT_NE(s.command, nullptr);
    s.memory_class = exec::MemoryClass::kStatelessStream;
    stages.push_back(std::move(s));
  }
  const std::string input = mixed_lines(2000);
  exec::ThreadPool pool(4);
  stream::StreamConfig config;
  config.parallelism = 4;
  config.block_size = 256;  // ~140 blocks
  config.max_inflight = 2;
  config.stats = true;
  std::istringstream in(input);
  std::string output;
  stream::Sink sink = [&output](std::string_view bytes) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    output.append(bytes);
    return true;
  };
  stream::StreamResult r =
      stream::run_streaming(stages, in, sink, pool, config);
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.nodes.size(), 2u);
  EXPECT_EQ(output, exec::run_serial(stages, input).output);
  EXPECT_GT(r.nodes[0].send_blocked_ns, 0u);
}

TEST(Counters, PrefixEarlyExitCauseAttributed) {
  // head satisfies its prefix and stops consuming: the node must report
  // prefix-satisfied and the reader must stop long before end of input.
  auto stages = stages_for("head -n 3", /*rewrite=*/false,
                           /*force_sequential=*/true);
  const std::string input = mixed_lines(100000);  // ~1.5 MB
  exec::ThreadPool pool(2);
  stream::StreamConfig config;
  config.parallelism = 2;
  config.block_size = 4096;
  config.stats = true;
  std::string output;
  stream::StreamResult r =
      stream::run_streaming_string(stages, input, &output, pool, config);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(output, exec::run_serial(stages, input).output);
  ASSERT_EQ(r.nodes.size(), 1u);
  EXPECT_EQ(r.nodes[0].early_exit, "prefix-satisfied");
  EXPECT_LT(r.bytes_read, input.size() / 4);
}

TEST(Counters, DownstreamClosedCauseAttributed) {
  // awk materializes and re-emits many blocks; head -n 1 closes after the
  // first, so the upstream node's early exit is downstream-closed.
  auto stages = stages_for("awk '{print $1}' | head -n 1",
                           /*rewrite=*/false, /*force_sequential=*/true);
  ASSERT_EQ(stages.size(), 2u);
  const std::string input = mixed_lines(20000);
  exec::ThreadPool pool(2);
  stream::StreamConfig config;
  config.parallelism = 2;
  config.block_size = 256;
  config.stats = true;
  std::string output;
  stream::StreamResult r =
      stream::run_streaming_string(stages, input, &output, pool, config);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(output, exec::run_serial(stages, input).output);
  ASSERT_EQ(r.nodes.size(), 2u);
  EXPECT_EQ(r.nodes[0].early_exit, "downstream-closed");
}

// -------------------------------------------------- batch-mode metrics --

TEST(Counters, BatchStageMetricsReconcile) {
  // The batch runner's per-stage byte accounting (surfaced by
  // `kumquat run --batch --stats`) must chain: each stage's output bytes
  // are the next stage's input bytes, ends anchored at the real sizes.
  auto stages = stages_for("tr A-Z a-z | sort | uniq -c");
  const std::string input = mixed_lines(2000);
  exec::ThreadPool pool(4);
  exec::RunConfig config{4, /*use_elimination=*/true};
  exec::RunResult result = exec::run_pipeline(stages, input, pool, config);
  ASSERT_EQ(result.stages.size(), stages.size());
  EXPECT_EQ(result.stages.front().in_bytes, input.size());
  EXPECT_EQ(result.stages.back().out_bytes, result.output.size());
  for (std::size_t i = 0; i + 1 < result.stages.size(); ++i)
    EXPECT_EQ(result.stages[i].out_bytes, result.stages[i + 1].in_bytes)
        << "stage " << i;
}

// --------------------------------------------- end-to-end trace content --

TEST(Tracer, StreamingRunEmitsTaxonomySpans) {
  // A spilling pipeline with the tracer attached must record the documented
  // span names (docs/OBSERVABILITY.md): source fills, node lifetimes,
  // per-block work, and spill runs — and serialize to well-formed JSON.
  auto stages = stages_for("tr A-Z a-z | sort");
  std::string input;
  for (int i = 8000; i > 0; --i) input += "Key" + std::to_string(i) + "\n";
  exec::ThreadPool pool(4);
  stream::StreamConfig config;
  config.parallelism = 4;
  config.block_size = 2048;
  config.spill_threshold = 8192;
  config.stats = true;
  obs::Tracer tracer;
  config.tracer = &tracer;
  std::string output;
  stream::StreamResult r =
      stream::run_streaming_string(stages, input, &output, pool, config);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(output, exec::run_serial(stages, input).output);
  EXPECT_GT(tracer.event_count(), 0u);
  std::ostringstream out;
  tracer.write_chrome_json(out);
  const std::string json = out.str();
  for (const char* name :
       {"\"source-fill\"", "\"node: ", "worker-chunk", "spill-run",
        "spill-merge"}) {
    EXPECT_NE(json.find(name), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace kq
