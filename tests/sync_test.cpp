// Tests for the annotated sync primitives (src/stream/sync.h) and
// TSan-targeted stress tests for the concurrent runtime's teardown edges:
// Channel close_read/abort racing blocked producers and consumers,
// Semaphore cancel racing blocked acquirers, and ThreadPool destruction
// racing queued work. The stress cases are deliberately short on asserts
// and heavy on interleavings — their job is to give TSan (and the
// lock-rank checker) something to chew on in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <future>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "exec/thread_pool.h"
#include "stream/channel.h"
#include "stream/sync.h"

namespace kq::sync {
namespace {

// ------------------------------------------------------- Mutex/MutexLock --

TEST(Mutex, MutualExclusionUnderContention) {
  Mutex mu;
  long counter = 0;  // deliberately non-atomic: mu is the only protection
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TEST(Mutex, TryLockReportsHeldState) {
  Mutex mu;
  ASSERT_TRUE(mu.try_lock());
  std::thread other([&] { EXPECT_FALSE(mu.try_lock()); });
  other.join();
  mu.unlock();
  ASSERT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(CondVar, WaitWakesOnPredicate) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.wait(lock);
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.notify_one();
  waiter.join();  // completes only if the wait actually woke
}

TEST(SharedMutex, ReadersShareWritersExclude) {
  SharedMutex mu;
  // Two readers must be able to hold the lock at once: reader A holds it
  // until reader B proves it got in too.
  std::promise<void> b_in;
  std::future<void> b_in_f = b_in.get_future();
  std::thread a([&] {
    ReaderLock lock(mu);
    b_in_f.wait();  // would deadlock if readers excluded each other
  });
  std::thread b([&] {
    ReaderLock lock(mu);
    b_in.set_value();
  });
  a.join();
  b.join();

  // Writer excludes: a reader that arrives while a writer holds the lock
  // must still be waiting after a generous grace period, and must get in
  // once the writer releases.
  std::atomic<bool> reader_got_in{false};
  std::thread probe;
  {
    WriterLock w(mu);
    probe = std::thread([&] {
      ReaderLock r(mu);
      reader_got_in.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(reader_got_in.load());
  }  // writer released here
  probe.join();
  EXPECT_TRUE(reader_got_in.load());
}

// ------------------------------------------------------------ lock ranks --

#if KQ_LOCK_RANK_CHECKS_ENABLED

TEST(LockRank, AscendingOrderIsAllowed) {
  Mutex channel(LockRank::kChannel);
  Mutex shard(LockRank::kTracerShard);
  MutexLock a(channel);
  MutexLock b(shard);  // channel < tracer-shard: fine
  SUCCEED();
}

TEST(LockRankDeathTest, DescendingOrderAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex channel(LockRank::kChannel);
  Mutex shard(LockRank::kTracerShard);
  EXPECT_DEATH(
      {
        MutexLock a(shard);
        MutexLock b(channel);  // tracer-shard then channel: inverted
      },
      "lock-rank violation");
}

TEST(LockRankDeathTest, EqualRankAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex a(LockRank::kChannel);
  Mutex b(LockRank::kChannel);
  EXPECT_DEATH(
      {
        MutexLock la(a);
        MutexLock lb(b);  // two channel-rank locks at once: no defined order
      },
      "lock-rank violation");
}

TEST(LockRank, CondVarWaitReleasesRankForTheWaitDuration) {
  // While a waiter sleeps inside CondVar::wait its channel-rank mutex is
  // genuinely released, so the waker may take the same-rank lock without
  // tripping the checker — and the waiter reacquires cleanly on wake.
  Mutex mu(LockRank::kChannel);
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.wait(lock);
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.notify_one();
  waiter.join();
}

TEST(LockRank, UnrankedLocksNestFreely) {
  Mutex leaf;  // kNone
  Mutex shard(LockRank::kTracerShard);
  MutexLock a(shard);
  MutexLock b(leaf);  // unranked under ranked: exempt from checking
  SUCCEED();
}

#endif  // KQ_LOCK_RANK_CHECKS_ENABLED

// ------------------------------------------------- teardown stress races --

// close_read and abort racing blocked producers AND blocked consumers:
// every push/pop must return (false/nullopt), nothing may deadlock, and
// under TSan nothing may race. Runs several rounds to vary interleavings.
TEST(ChannelStress, CloseReadRacesBlockedSendAndRecv) {
  constexpr int kRounds = 25;
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  for (int round = 0; round < kRounds; ++round) {
    stream::Channel ch(2);  // tiny capacity: producers block fast
    std::atomic<int> done{0};
    std::vector<std::thread> threads;
    for (int p = 0; p < kProducers; ++p) {
      threads.emplace_back([&] {
        stream::Chunk c;
        c.bytes = std::string(1024, 'x');
        while (ch.push(stream::Chunk(c))) {
        }
        done.fetch_add(1);
      });
    }
    for (int c = 0; c < kConsumers; ++c) {
      threads.emplace_back([&] {
        // Consumers drain slowly enough that producers hit the wait path.
        while (ch.pop()) {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
        done.fetch_add(1);
      });
    }
    // Let the graph reach a steady blocked state, then tear down from a
    // third party — alternating the consumer-side close and the error
    // abort across rounds.
    std::this_thread::sleep_for(std::chrono::microseconds(200 * (round % 4)));
    if (round % 2 == 0) {
      ch.close_read();
    } else {
      ch.abort();
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(done.load(), kProducers + kConsumers);
    if (round % 2 == 0) {
      EXPECT_TRUE(ch.read_closed());
    }
  }
}

TEST(ChannelStress, CloseRacesPushersThenDrainCompletes) {
  // close() (not abort) keeps queued chunks poppable: after the race the
  // consumer must still observe a clean drain with no stuck threads.
  constexpr int kRounds = 25;
  for (int round = 0; round < kRounds; ++round) {
    stream::Channel ch(4);
    std::vector<std::thread> producers;
    for (int p = 0; p < 3; ++p) {
      producers.emplace_back([&] {
        stream::Chunk c;
        c.bytes = "payload";
        while (ch.push(stream::Chunk(c))) {
        }
      });
    }
    std::thread closer([&] { ch.close(); });
    std::size_t drained = 0;
    while (ch.pop()) ++drained;  // must terminate once closed and empty
    closer.join();
    for (auto& t : producers) t.join();
    EXPECT_EQ(ch.pop(), std::nullopt);  // stays drained
  }
}

TEST(SemaphoreStress, CancelRacesBlockedAcquirers) {
  constexpr int kRounds = 50;
  for (int round = 0; round < kRounds; ++round) {
    stream::Semaphore sem(1);
    ASSERT_TRUE(sem.acquire());  // exhaust the slot: acquirers now block
    std::atomic<int> refused{0};
    std::vector<std::thread> acquirers;
    for (int a = 0; a < 4; ++a) {
      acquirers.emplace_back([&] {
        while (sem.acquire()) sem.release();
        refused.fetch_add(1);
      });
    }
    std::this_thread::sleep_for(std::chrono::microseconds(100 * (round % 3)));
    sem.cancel();
    for (auto& t : acquirers) t.join();
    EXPECT_EQ(refused.load(), 4);
    EXPECT_FALSE(sem.acquire());  // cancelled stays cancelled
  }
}

TEST(ThreadPoolStress, ShutdownRacesQueuedWork) {
  // Destroy the pool while submitters are still feeding it. The destructor
  // contract is: every task whose submit() returned gets RUN (the workers
  // drain the backlog before exiting), so every future must become ready
  // — none may throw broken_promise.
  constexpr int kRounds = 20;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::future<int>> futures;
    std::atomic<int> executed{0};
    {
      exec::ThreadPool pool(3);
      for (int i = 0; i < 64; ++i) {
        futures.push_back(pool.submit([&executed, i] {
          executed.fetch_add(1);
          return i;
        }));
      }
      // Pool destructor runs here, racing the queued backlog.
    }
    int sum = 0;
    for (auto& f : futures) sum += f.get();  // throws if any task was lost
    EXPECT_EQ(executed.load(), 64);
    EXPECT_EQ(sum, 64 * 63 / 2);
  }
}

TEST(ThreadPoolStress, ConcurrentSubmittersDuringShutdown) {
  // Submitters racing the destructor from other threads: submissions that
  // land before the stop flag run; the pool must never crash or hang. The
  // submitters stop once their futures start resolving exceptionally or
  // the flag flips.
  std::atomic<bool> stop{false};
  auto pool = std::make_unique<exec::ThreadPool>(2);
  std::atomic<int> submitted{0};
  std::vector<std::thread> submitters;
  std::vector<std::vector<std::future<void>>> futs(3);
  for (int s = 0; s < 3; ++s) {
    submitters.emplace_back([&, s] {
      while (!stop.load()) {
        futs[s].push_back(pool->submit([] {
          std::this_thread::sleep_for(std::chrono::microseconds(10));
        }));
        submitted.fetch_add(1);
      }
    });
  }
  while (submitted.load() < 100) std::this_thread::yield();
  stop.store(true);
  for (auto& t : submitters) t.join();
  pool.reset();  // drains the backlog
  for (auto& fs : futs) {
    for (auto& f : fs) f.get();  // all accepted work completed
  }
}

}  // namespace
}  // namespace kq::sync
