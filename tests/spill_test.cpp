// Tests for the spill-to-disk subsystem (stream/spill.*): temp-file
// plumbing, raw spooling, external merge sort and sorted-part merging
// against their in-memory references, the dataflow runtime's spill-backed
// nodes, and cross-validation of forced-spill streaming against `--batch`
// on every catalog pipeline.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "bench_support/catalog.h"
#include "compile/optimize.h"
#include "compile/plan.h"
#include "exec/runner.h"
#include "stream/dataflow.h"
#include "stream/spill.h"
#include "unixcmd/registry.h"
#include "unixcmd/sort_cmd.h"

namespace kq::stream {
namespace {

std::shared_ptr<const cmd::SortSpec> spec_of(
    const std::vector<std::string>& flags) {
  auto spec = cmd::SortSpec::parse(flags);
  EXPECT_TRUE(spec.has_value());
  return std::make_shared<const cmd::SortSpec>(*spec);
}

// Drives a SpillMerger over `pieces` and returns the concatenated pushes.
std::string merged_output(SpillMerger& merger,
                          std::vector<std::string> pieces,
                          std::size_t block_size = 64) {
  for (std::string& p : pieces) EXPECT_TRUE(merger.add(std::move(p)));
  std::string out;
  EXPECT_TRUE(merger.finish(
      [&out](std::string&& block) {
        out += block;
        return true;
      },
      block_size));
  return out;
}

std::vector<std::string> shuffled_lines(int n, std::uint64_t seed) {
  std::vector<std::string> lines;
  for (int i = 0; i < n; ++i)
    lines.push_back("line-" + std::to_string(i % (n / 4 + 1)) + "-" +
                    std::to_string(i) + "\n");
  std::mt19937_64 rng(seed);
  std::shuffle(lines.begin(), lines.end(), rng);
  return lines;
}

// -------------------------------------------------------------- SpillFile --

TEST(SpillFile, AppendAndPositionedReadRoundtrip) {
  SpillFile file;
  ASSERT_TRUE(file.valid()) << file.error();
  ASSERT_TRUE(file.append("hello "));
  ASSERT_TRUE(file.append("world"));
  EXPECT_EQ(file.size(), 11u);

  std::string buf(5, '\0');
  ASSERT_TRUE(file.read_exact(6, buf.data(), 5));
  EXPECT_EQ(buf, "world");
  ASSERT_TRUE(file.read_exact(0, buf.data(), 5));
  EXPECT_EQ(buf, "hello");
}

TEST(SpillFile, ReadPastEndFails) {
  SpillFile file;
  ASSERT_TRUE(file.append("abc"));
  std::string buf(8, '\0');
  EXPECT_FALSE(file.read_exact(0, buf.data(), 8));
  EXPECT_FALSE(file.error().empty());
}

// --------------------------------------------------------------- RawSpool --

TEST(RawSpool, StaysInMemoryBelowThreshold) {
  RawSpool spool(1024);
  ASSERT_TRUE(spool.add("alpha\n"));
  ASSERT_TRUE(spool.add("beta\n"));
  EXPECT_FALSE(spool.spilled());
  std::string all;
  ASSERT_TRUE(spool.take(&all));
  EXPECT_EQ(all, "alpha\nbeta\n");
}

TEST(RawSpool, SpillsPastThresholdAndReplaysAllBytes) {
  RawSpool spool(64);
  std::string expect;
  for (int i = 0; i < 100; ++i) {
    std::string piece = "piece-" + std::to_string(i) + "\n";
    expect += piece;
    ASSERT_TRUE(spool.add(piece));
  }
  EXPECT_TRUE(spool.spilled());
  EXPECT_GT(spool.spilled_bytes(), 0u);
  std::string all;
  ASSERT_TRUE(spool.take(&all));
  EXPECT_EQ(all, expect);
}

TEST(RawSpool, ZeroThresholdNeverSpills) {
  RawSpool spool(0);
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(spool.add("data data data\n"));
  EXPECT_FALSE(spool.spilled());
}

// ---------------------------------------------- SpillMerger: external sort --

TEST(SpillMerger, ExternalSortMatchesSortStream) {
  auto spec = spec_of({});
  auto lines = shuffled_lines(500, 7);
  std::string whole;
  for (const std::string& l : lines) whole += l;

  SpillMerger merger(spec, SpillMerger::Input::kUnsortedBlocks, 256);
  std::string out = merged_output(merger, lines);
  EXPECT_GT(merger.runs_spilled(), 1);
  EXPECT_EQ(out, spec->sort_stream(whole));
}

TEST(SpillMerger, ExternalSortNumericReverseUnique) {
  const std::vector<std::vector<std::string>> cases = {
      {"-n"}, {"-r"}, {"-u"}, {"-nu"}, {"-nr"}};
  for (const std::vector<std::string>& flags : cases) {
    auto spec = spec_of(flags);
    std::vector<std::string> pieces;
    std::mt19937_64 rng(13);
    std::string whole;
    for (int i = 0; i < 400; ++i) {
      std::string line = std::to_string(rng() % 50) + " payload-" +
                         std::to_string(i % 3) + "\n";
      whole += line;
      pieces.push_back(std::move(line));
    }
    SpillMerger merger(spec, SpillMerger::Input::kUnsortedBlocks, 128);
    std::string out = merged_output(merger, pieces);
    EXPECT_GT(merger.runs_spilled(), 1);
    EXPECT_EQ(out, spec->sort_stream(whole)) << "flags " << flags.front();
  }
}

TEST(SpillMerger, ExternalSortStableTiesKeepInputOrder) {
  // -ns: all keys compare equal (non-numeric prefixes are 0) and -s
  // disables the last-resort bytewise tiebreak, so output preserves input
  // order across spilled run boundaries.
  auto spec = spec_of({"-n", "-s"});
  std::vector<std::string> pieces;
  std::string whole;
  for (int i = 0; i < 200; ++i) {
    std::string line = "tie-payload-" + std::to_string(i) + "\n";
    whole += line;
    pieces.push_back(std::move(line));
  }
  SpillMerger merger(spec, SpillMerger::Input::kUnsortedBlocks, 128);
  std::string out = merged_output(merger, pieces);
  EXPECT_GT(merger.runs_spilled(), 1);
  EXPECT_EQ(out, whole);  // stable: byte-identical to the input order
  EXPECT_EQ(out, spec->sort_stream(whole));
}

TEST(SpillMerger, ZeroThresholdSingleResidentRun) {
  auto spec = spec_of({});
  auto lines = shuffled_lines(100, 3);
  std::string whole;
  for (const std::string& l : lines) whole += l;
  SpillMerger merger(spec, SpillMerger::Input::kUnsortedBlocks, 0);
  std::string out = merged_output(merger, lines);
  EXPECT_EQ(merger.runs_spilled(), 0);
  EXPECT_EQ(merger.spilled_bytes(), 0u);
  EXPECT_EQ(out, spec->sort_stream(whole));
}

TEST(SpillMerger, EmptyInputProducesEmptyOutput) {
  auto spec = spec_of({});
  SpillMerger merger(spec, SpillMerger::Input::kUnsortedBlocks, 64);
  std::string out = merged_output(merger, {});
  EXPECT_EQ(out, "");
}

TEST(SpillMerger, UnterminatedFinalRecordSortsLikeSortStream) {
  auto spec = spec_of({});
  SpillMerger merger(spec, SpillMerger::Input::kUnsortedBlocks, 0);
  std::string out = merged_output(merger, {"b\nc\na"});
  EXPECT_EQ(out, spec->sort_stream("b\nc\na"));
  EXPECT_EQ(out, "a\nb\nc\n");
}

// --------------------------------------------- SpillMerger: sorted parts --

TEST(SpillMerger, SortedPartsMatchMergeStreams) {
  auto spec = spec_of({});
  std::vector<std::string> parts;
  std::mt19937_64 rng(21);
  for (int p = 0; p < 40; ++p) {
    std::vector<std::string> chunk;
    for (int i = 0; i < 20; ++i) {
      // Append form: GCC PR 105329 (-Wrestrict).
      std::string word = "w";
      word += std::to_string(rng() % 1000);
      chunk.push_back(std::move(word));
    }
    std::string part;
    for (std::string& c : chunk) part += c + "\n";
    parts.push_back(spec->sort_stream(part));  // each part pre-sorted
  }
  std::vector<std::string_view> views(parts.begin(), parts.end());
  std::string expect = spec->merge_streams(views);

  SpillMerger merger(spec, SpillMerger::Input::kSortedParts, 512);
  std::string out = merged_output(merger, parts);
  EXPECT_GT(merger.runs_spilled(), 1);
  EXPECT_EQ(out, expect);
}

TEST(SpillMerger, SortedPartsUniqueDedupesAcrossRuns) {
  auto spec = spec_of({"-u"});
  // Every part carries the same keys: -u must keep exactly one copy even
  // though the duplicates live in different spilled runs.
  std::vector<std::string> parts(20, "a\nb\nc\n");
  std::vector<std::string_view> views(parts.begin(), parts.end());
  std::string expect = spec->merge_streams(views);

  SpillMerger merger(spec, SpillMerger::Input::kSortedParts, 16);
  std::string out = merged_output(merger, parts);
  EXPECT_GT(merger.runs_spilled(), 1);
  EXPECT_EQ(out, expect);
  EXPECT_EQ(out, "a\nb\nc\n");
}

TEST(SpillMerger, SortedPartsEmptyPartsAreSkipped) {
  auto spec = spec_of({});
  SpillMerger merger(spec, SpillMerger::Input::kSortedParts, 16);
  std::string out = merged_output(merger, {"", "b\n", "", "a\n", ""});
  EXPECT_EQ(out, "a\nb\n");
}

// ----------------------------------------------------- dataflow with spill --

TEST(SpillDataflow, SequentialSortNodeExternalSorts) {
  std::vector<exec::ExecStage> stages;
  exec::ExecStage s;
  s.command = cmd::make_command_line("sort");
  ASSERT_NE(s.command, nullptr);
  s.parallel = false;  // force the sequential node
  s.memory_class = exec::MemoryClass::kSortableSpill;
  s.sort_spec = cmd::sort_spec_of(*s.command);
  ASSERT_NE(s.sort_spec, nullptr);
  stages.push_back(std::move(s));

  std::string input;
  auto lines = shuffled_lines(2000, 11);
  for (const std::string& l : lines) input += l;

  exec::ThreadPool pool(2);
  StreamConfig config;
  config.parallelism = 2;
  config.block_size = 256;
  config.spill_threshold = 2048;
  std::string output;
  StreamResult r = run_streaming_string(stages, input, &output, pool, config);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(output, exec::run_serial(stages, input).output);
  ASSERT_EQ(r.nodes.size(), 1u);
  EXPECT_GT(r.nodes[0].spill_runs, 1);
  EXPECT_GT(r.spilled_bytes, 0u);
}

TEST(SpillDataflow, ParallelMergeCombinerSpillsChunkOutputs) {
  std::vector<exec::ExecStage> stages;
  exec::ExecStage s;
  s.command = cmd::make_command_line("sort");
  s.parallel = true;
  s.defer_combine = true;
  s.memory_class = exec::MemoryClass::kSortableSpill;
  s.sort_spec = cmd::sort_spec_of(*s.command);
  s.combiner_name = "(merge a b)";
  auto spec = s.sort_spec;
  s.combine = [spec](const std::vector<std::string>& parts)
      -> std::optional<std::string> {
    std::vector<std::string_view> views(parts.begin(), parts.end());
    return spec->merge_streams(views);
  };
  stages.push_back(std::move(s));

  std::string input;
  auto lines = shuffled_lines(3000, 17);
  for (const std::string& l : lines) input += l;

  exec::ThreadPool pool(4);
  StreamConfig config;
  config.parallelism = 4;
  config.block_size = 512;
  config.spill_threshold = 4096;
  std::string output;
  StreamResult r = run_streaming_string(stages, input, &output, pool, config);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.batch_fallback);
  EXPECT_EQ(output, exec::run_serial(stages, input).output);
  ASSERT_EQ(r.nodes.size(), 1u);
  EXPECT_GT(r.nodes[0].spilled_bytes, 0u);
}

TEST(SpillDataflow, ParallelRerunCombinerSpoolsThroughDisk) {
  // A rerun-combined parallel stage: chunk outputs spool to disk past the
  // threshold and the command reruns once over their concatenation —
  // byte-identical to the in-memory k-way rerun.
  std::vector<exec::ExecStage> stages;
  exec::ExecStage s;
  s.command = cmd::make_command_line("uniq");
  ASSERT_NE(s.command, nullptr);
  s.parallel = true;
  s.defer_combine = true;
  s.rerun_combiner = true;
  s.combiner_name = "(rerun a b)";
  auto command = s.command;
  s.combine = [command](const std::vector<std::string>& parts)
      -> std::optional<std::string> {
    std::string joined;
    for (const std::string& p : parts) joined += p;
    cmd::Result r = command->execute(joined);
    if (!r.ok()) return std::nullopt;
    return std::move(r.out);
  };
  stages.push_back(std::move(s));

  std::string input;
  for (int i = 0; i < 2000; ++i)
    input += "run-" + std::to_string(i / 7) + "\n";  // adjacent duplicates

  exec::ThreadPool pool(4);
  StreamConfig config;
  config.parallelism = 4;
  config.block_size = 256;
  config.spill_threshold = 2048;
  std::string output;
  StreamResult r = run_streaming_string(stages, input, &output, pool, config);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.batch_fallback);
  EXPECT_EQ(output, exec::run_serial(stages, input).output);
  ASSERT_EQ(r.nodes.size(), 1u);
  EXPECT_GT(r.nodes[0].spilled_bytes, 0u);
}

TEST(SpillDataflow, MaterializeNodeSpoolsThroughDisk) {
  // An unknown-to-synthesis sequential stage must still produce exact
  // output when its drain spools through the temp file. uniq itself now
  // window-streams (kWindowStream), so wrap it as an opaque lambda — same
  // semantics, no streamability declaration — to keep a true materialize
  // witness.
  std::vector<exec::ExecStage> stages;
  exec::ExecStage s;
  cmd::CommandPtr uniq = cmd::make_command_line("uniq -c");
  ASSERT_NE(uniq, nullptr);
  s.command = cmd::make_lambda_command(
      uniq->display_name(),
      [uniq](std::string_view in) { return uniq->run(in); });
  s.parallel = false;
  stages.push_back(std::move(s));

  std::string input;
  for (int i = 0; i < 500; ++i)
    input += "dup-" + std::to_string(i / 5) + "\n";

  exec::ThreadPool pool(2);
  StreamConfig config;
  config.parallelism = 2;
  config.block_size = 128;
  config.spill_threshold = 1024;
  std::string output;
  StreamResult r = run_streaming_string(stages, input, &output, pool, config);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(output, exec::run_serial(stages, input).output);
  ASSERT_EQ(r.nodes.size(), 1u);
  EXPECT_GT(r.nodes[0].spilled_bytes, 0u);
}

TEST(SpillDataflow, OversizedRecordFailsWithDiagnostic) {
  std::vector<exec::ExecStage> stages;
  exec::ExecStage s;
  s.command = cmd::make_command_line("wc -c");
  s.parallel = false;
  stages.push_back(std::move(s));

  // One delimiter-free record far larger than the spill threshold.
  std::string input(64 * 1024, 'x');
  exec::ThreadPool pool(2);
  StreamConfig config;
  config.parallelism = 2;
  config.block_size = 1024;
  config.spill_threshold = 8 * 1024;
  std::string output;
  StreamResult r = run_streaming_string(stages, input, &output, pool, config);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("spill threshold"), std::string::npos) << r.error;
}

TEST(SpillDataflow, LowerPlanAssignsMemoryClasses) {
  synth::SynthesisCache cache;
  auto parsed = compile::parse_pipeline("sort | wc -l | frobnicate");
  ASSERT_TRUE(parsed.has_value());
  compile::Plan plan = compile::compile_pipeline(*parsed, cache);
  auto stages = compile::lower_plan(plan);
  ASSERT_EQ(stages.size(), 3u);
  // sort: parallel, merge-combined -> sortable spill with a comparator.
  EXPECT_EQ(stages[0].memory_class, exec::MemoryClass::kSortableSpill);
  EXPECT_NE(stages[0].sort_spec, nullptr);
  // wc -l: parallel fold (add) -> bounded by construction.
  EXPECT_EQ(stages[1].memory_class, exec::MemoryClass::kStreaming);
  // unknown command -> sequential materialize.
  EXPECT_EQ(stages[2].memory_class, exec::MemoryClass::kMaterialize);
  EXPECT_EQ(stages[2].sort_spec, nullptr);
}

// ------------------------------------------------ catalog cross-validation --

// Forced-spill streaming (threshold far below the input) must stay
// byte-identical to the batch runner on every catalog pipeline — the same
// contract stream_test checks, now exercised through the spill paths.
class SpillCatalogCrossval
    : public ::testing::TestWithParam<const bench::Script*> {
 protected:
  static synth::SynthesisCache& cache() {
    static synth::SynthesisCache c;
    return c;
  }
  static vfs::Vfs& fs() {
    static vfs::Vfs v;
    return v;
  }
};

TEST_P(SpillCatalogCrossval, ForcedSpillMatchesBatch) {
  const bench::Script& script = *GetParam();
  std::string input = bench::prepare_input(script, 24 * 1024, 7, fs());
  exec::ThreadPool pool(4);

  for (const std::string& pipeline : script.pipelines) {
    auto parsed = compile::parse_pipeline(pipeline);
    ASSERT_TRUE(parsed.has_value()) << pipeline;
    compile::Plan plan =
        compile::compile_pipeline(*parsed, cache(), {}, &fs());
    compile::eliminate_intermediate_combiners(plan);
    auto stages = compile::lower_plan(plan);

    exec::RunConfig batch_config{4, /*use_elimination=*/true};
    std::string batch =
        exec::run_pipeline(stages, input, pool, batch_config).output;

    StreamConfig config;
    config.parallelism = 4;
    config.block_size = 2048;
    config.spill_threshold = 1024;  // force every spillable node to spill
    std::string streamed;
    StreamResult r =
        run_streaming_string(stages, input, &streamed, pool, config);
    EXPECT_TRUE(r.ok) << pipeline << ": " << r.error;
    EXPECT_FALSE(r.batch_fallback)
        << pipeline << ": incremental combine bailed: " << r.error;
    EXPECT_EQ(streamed, batch)
        << script.suite << "/" << script.name << ": " << pipeline;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllScripts, SpillCatalogCrossval,
    ::testing::ValuesIn([] {
      std::vector<const bench::Script*> ptrs;
      for (const bench::Script& s : bench::all_scripts()) ptrs.push_back(&s);
      return ptrs;
    }()),
    [](const ::testing::TestParamInfo<const bench::Script*>& info) {
      std::string name = info.param->suite + "_" + info.param->name;
      std::string out;
      for (char c : name)
        out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
      return out;
    });

}  // namespace
}  // namespace kq::stream
