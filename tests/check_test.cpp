// Tests for the static pipeline analyzer (src/check/): one golden scenario
// per diagnostic family (KQ-EXEC, KQ-MEM, KQ-PROBE, KQ-ORDER, KQ-DEAD,
// KQ-REWRITE), the exit-code contract (0 clean/info, 1 warnings,
// 2 errors), the JSON document structure, and a sweep of the full
// 70-script crossval catalog asserting the checked-in benchmarks carry no
// error-severity diagnostic.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "bench_support/catalog.h"
#include "check/check.h"
#include "compile/optimize.h"
#include "compile/pipeline.h"
#include "compile/plan.h"

namespace kq::check {
namespace {

synth::SynthesisCache& shared_cache() {
  static synth::SynthesisCache cache;
  return cache;
}

struct Analyzed {
  compile::Plan plan;
  std::vector<exec::ExecStage> stages;
  Report report;
};

Analyzed analyze_line(const std::string& script, Options options = {},
                      bool rewrite = true) {
  auto parsed = compile::parse_pipeline(script);
  EXPECT_TRUE(parsed.has_value()) << script;
  Analyzed out;
  out.plan = compile::compile_pipeline(*parsed, shared_cache());
  if (rewrite) compile::rewrite_bounded_windows(out.plan);
  compile::eliminate_intermediate_combiners(out.plan);
  out.stages = compile::lower_plan(out.plan);
  options.rewrites_enabled = rewrite;
  out.report = analyze(out.plan, out.stages, options);
  return out;
}

std::vector<const Diagnostic*> with_code(const Report& report,
                                         const std::string& code) {
  std::vector<const Diagnostic*> out;
  for (const Diagnostic& d : report.diagnostics)
    if (d.code == code) out.push_back(&d);
  return out;
}

// ------------------------------------------------------------ verdicts --

TEST(Check, CleanPipelineIsClean) {
  auto a = analyze_line("tr A-Z a-z");
  EXPECT_TRUE(a.report.diagnostics.empty())
      << format_diagnostic(a.report.diagnostics.front());
  EXPECT_EQ(a.report.exit_code(), 0);
  EXPECT_STREQ(a.report.status(), "clean");
  ASSERT_EQ(a.report.stages.size(), 1u);
  EXPECT_EQ(a.report.stages[0].mode, "parallel");
  EXPECT_EQ(a.report.stages[0].seq_reason, "parallel");
}

TEST(Check, InfoOnlyExitsZero) {
  // A parallel sort recombines by k-way merge: order note, info severity.
  auto a = analyze_line("sort | uniq");
  EXPECT_EQ(a.report.errors(), 0);
  EXPECT_EQ(a.report.warnings(), 0);
  EXPECT_GE(a.report.infos(), 1);
  EXPECT_EQ(a.report.exit_code(), 0);
  EXPECT_STREQ(a.report.status(), "info");
}

TEST(Check, WarningsExitOne) {
  auto a = analyze_line("sort | sort");
  EXPECT_EQ(a.report.errors(), 0);
  EXPECT_GE(a.report.warnings(), 1);
  EXPECT_EQ(a.report.exit_code(), 1);
  EXPECT_STREQ(a.report.status(), "warnings");
}

TEST(Check, ErrorsExitTwo) {
  auto a = analyze_line("frobnicate | sort");
  EXPECT_GE(a.report.errors(), 1);
  EXPECT_EQ(a.report.exit_code(), 2);
  EXPECT_STREQ(a.report.status(), "errors");
}

// ---------------------------------------------------------- per family --

TEST(Check, KqExecOnUnresolvableStage) {
  auto a = analyze_line("frobnicate | sort");
  auto diags = with_code(a.report, "KQ-EXEC");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0]->severity, Severity::kError);
  EXPECT_EQ(diags[0]->stage_begin, 0);
  EXPECT_EQ(diags[0]->stage_end, 0);
  EXPECT_EQ(diags[0]->stage, "frobnicate");
  EXPECT_NE(diags[0]->message.find("cannot execute"), std::string::npos);
}

TEST(Check, KqMemOnMaterializeStage) {
  // sed '$d' needs the last line, so it declares no streamable form and
  // the runtime materializes: O(input) RSS whichever way it parallelizes.
  auto a = analyze_line("sed '$d'");
  auto diags = with_code(a.report, "KQ-MEM");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0]->severity, Severity::kWarning);
  EXPECT_NE(diags[0]->message.find("O(input)"), std::string::npos);
  ASSERT_EQ(a.report.stages.size(), 1u);
  EXPECT_EQ(a.report.stages[0].memory_class, "materialize");
}

TEST(Check, KqMemOnSortWithSpillingDisabled) {
  Options options;
  options.spill_threshold = 0;
  auto a = analyze_line("sort", options);
  auto diags = with_code(a.report, "KQ-MEM");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0]->message.find("--spill-threshold 0"),
            std::string::npos);
  // With the default threshold the same stage is bounded: no KQ-MEM.
  auto bounded = analyze_line("sort");
  EXPECT_TRUE(with_code(bounded.report, "KQ-MEM").empty());
}

TEST(Check, KqMemOnDistinctWindowWithSpillingDisabled) {
  // A *parallel* sort -u recombines by merge (sortable-spill); the
  // distinct-set window is its sequential lowering — the plan the runtime
  // falls back to at k=1. Force that lowering and analyze it.
  auto parsed = compile::parse_pipeline("sort -u");
  ASSERT_TRUE(parsed.has_value());
  compile::Plan plan = compile::compile_pipeline(*parsed, shared_cache());
  plan.stages[0].parallel = false;
  auto stages = compile::lower_plan(plan);
  ASSERT_EQ(stages[0].memory_class, exec::MemoryClass::kWindowStream);
  Options options;
  options.spill_threshold = 0;
  Report report = analyze(plan, stages, options);
  auto diags = with_code(report, "KQ-MEM");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0]->message.find("distinct"), std::string::npos);
  // With spilling on, the window exports sorted runs: bounded, no KQ-MEM.
  EXPECT_TRUE(with_code(analyze(plan, stages), "KQ-MEM").empty());
  // The parallel plan with spilling off is the sort-class warning instead.
  auto par = analyze_line("sort -u", options);
  auto par_diags = with_code(par.report, "KQ-MEM");
  ASSERT_EQ(par_diags.size(), 1u);
  EXPECT_NE(par_diags[0]->message.find("--spill-threshold 0"),
            std::string::npos);
}

TEST(Check, KqProbeOnBoundPastCap) {
  // tail -n 5000 declares a scale bound past synth::kProbeCountCap
  // (4096), so the probe guard keeps it sequential; the analyzer explains
  // the guard instead of leaving a bare "sequential".
  auto a = analyze_line("tail -n 5000");
  auto diags = with_code(a.report, "KQ-PROBE");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0]->severity, Severity::kWarning);
  EXPECT_NE(diags[0]->message.find("5000"), std::string::npos);
  EXPECT_NE(diags[0]->message.find("4096"), std::string::npos);
  EXPECT_NE(diags[0]->hint.find("4096"), std::string::npos);
  ASSERT_EQ(a.report.stages.size(), 1u);
  EXPECT_EQ(a.report.stages[0].mode, "sequential");
  EXPECT_EQ(a.report.stages[0].seq_reason, "probe-guard");
  // Below the cap the same command parallelizes without the lint.
  auto below = analyze_line("tail -n 100");
  EXPECT_TRUE(with_code(below.report, "KQ-PROBE").empty());
}

TEST(Check, KqOrderWarningOnCollationSensitiveSort) {
  auto a = analyze_line("sort -f");
  auto diags = with_code(a.report, "KQ-ORDER");
  ASSERT_GE(diags.size(), 1u);
  EXPECT_EQ(diags[0]->severity, Severity::kWarning);
  EXPECT_NE(diags[0]->message.find("LC_ALL=C"), std::string::npos);
}

TEST(Check, KqOrderInfoOnParallelMerge) {
  auto a = analyze_line("sort");
  auto diags = with_code(a.report, "KQ-ORDER");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0]->severity, Severity::kInfo);
  EXPECT_NE(diags[0]->message.find("merge"), std::string::npos);
}

TEST(Check, KqDeadOnMidPipelineCat) {
  // A *leading* cat folds into the input source (not flagged); a
  // mid-pipeline bare cat is the identity and is.
  auto a = analyze_line("grep a | cat | wc -l");
  auto diags = with_code(a.report, "KQ-DEAD");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0]->stage_begin, 1);
  EXPECT_NE(diags[0]->message.find("identity"), std::string::npos);
  EXPECT_TRUE(
      with_code(analyze_line("cat $IN | grep a | wc -l").report, "KQ-DEAD")
          .empty());
}

TEST(Check, KqDeadOnDoubleSort) {
  auto a = analyze_line("sort | sort");
  auto diags = with_code(a.report, "KQ-DEAD");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0]->stage_begin, 1);
  // Different comparators are not dead: sort | sort -n re-orders.
  EXPECT_TRUE(
      with_code(analyze_line("sort | sort -n").report, "KQ-DEAD").empty());
}

TEST(Check, KqDeadOnUniqAfterSortU) {
  auto a = analyze_line("sort -u | uniq");
  auto diags = with_code(a.report, "KQ-DEAD");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0]->stage_begin, 1);
  // uniq -c still does work after sort -u (it prepends counts).
  EXPECT_TRUE(
      with_code(analyze_line("sort -u | uniq -c").report, "KQ-DEAD")
          .empty());
}

TEST(Check, KqRewriteNamesBlockingPrecondition) {
  // head -c is byte mode: the top-n fusion cannot reproduce a mid-record
  // cut, and the diagnostic must say exactly that, spanning both stages.
  auto a = analyze_line("sort | head -c 80");
  auto diags = with_code(a.report, "KQ-REWRITE");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0]->severity, Severity::kInfo);
  EXPECT_EQ(diags[0]->stage_begin, 0);
  EXPECT_EQ(diags[0]->stage_end, 1);
  EXPECT_NE(diags[0]->message.find("byte mode"), std::string::npos);
}

TEST(Check, KqRewriteOnDisabledPass) {
  // The pattern matches fully; the only blocker is --no-rewrite.
  auto a = analyze_line("sort | head -n 10", {}, /*rewrite=*/false);
  ASSERT_EQ(a.report.stages.size(), 2u);
  auto diags = with_code(a.report, "KQ-REWRITE");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0]->message.find("--no-rewrite"), std::string::npos);
}

TEST(Check, FusedRewriteLeavesNoDiagnostic) {
  // Fully fused: one window stage, rewrite rationale recorded, no
  // KQ-REWRITE (the pattern no longer exists in the plan).
  auto a = analyze_line("sort | head -n 10");
  ASSERT_EQ(a.report.stages.size(), 1u);
  EXPECT_EQ(a.report.stages[0].mode, "sequential");
  EXPECT_EQ(a.report.stages[0].seq_reason, "fused-window");
  EXPECT_EQ(a.report.stages[0].memory_class, "window-stream");
  EXPECT_NE(a.report.stages[0].rss_model.find("top-N"), std::string::npos);
  EXPECT_TRUE(with_code(a.report, "KQ-REWRITE").empty());
  EXPECT_EQ(a.report.exit_code(), 0);
}

// -------------------------------------------------------------- output --

TEST(Check, FormatDiagnosticCarriesCodeSeverityAndHint) {
  Diagnostic d;
  d.code = "KQ-MEM";
  d.severity = Severity::kWarning;
  d.message = "stage materializes";
  d.hint = "bound it upstream";
  EXPECT_EQ(format_diagnostic(d),
            "KQ-MEM warning: stage materializes (fix: bound it upstream)");
  d.hint.clear();
  EXPECT_EQ(format_diagnostic(d), "KQ-MEM warning: stage materializes");
}

TEST(Check, RenderHumanShowsStagesAndVerdict) {
  auto a = analyze_line("sort | sort");
  std::ostringstream out;
  render_human(a.report, "sort | sort", out);
  const std::string text = out.str();
  EXPECT_NE(text.find("kumquat check: sort | sort"), std::string::npos);
  EXPECT_NE(text.find("[0] sort"), std::string::npos);
  EXPECT_NE(text.find("KQ-DEAD"), std::string::npos);
  EXPECT_NE(text.find("verdict: warnings"), std::string::npos);
}

TEST(Check, JsonDocumentStructure) {
  auto a = analyze_line("sort | sort");
  PipelineReport entry;
  entry.name = "unit/double-sort";
  entry.pipeline = "sort | sort";
  entry.report = a.report;
  std::ostringstream out;
  write_json({entry}, out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"kumquat_check_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"status\": \"warnings\""), std::string::npos);
  EXPECT_NE(json.find("\"exit_code\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"unit/double-sort\""), std::string::npos);
  EXPECT_NE(json.find("\"code\": \"KQ-DEAD\""), std::string::npos);
  EXPECT_NE(json.find("\"seq_reason\""), std::string::npos);
  EXPECT_NE(json.find("\"rss_model\""), std::string::npos);
  // Exactly balanced braces/brackets — cheap structural sanity that the
  // hand-rolled writer cannot drift on (full schema validation runs in CI
  // via bench/check_diag_json.py).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(Check, JsonEscapesQuotesAndBackslashes) {
  auto a = analyze_line("grep '\"' | wc -l");
  PipelineReport entry;
  entry.name = "unit/escape";
  entry.pipeline = "grep '\"' | wc -l";
  entry.report = a.report;
  std::ostringstream out;
  write_json({entry}, out);
  EXPECT_NE(out.str().find("grep '\\\"' | wc -l"), std::string::npos);
}

TEST(Check, WorstExitCodeAcrossReports) {
  PipelineReport clean, warn;
  warn.report.diagnostics.push_back(
      {"KQ-DEAD", Severity::kWarning, 0, 0, "sort", "m", "h"});
  EXPECT_EQ(exit_code({}), 0);
  EXPECT_EQ(exit_code({clean}), 0);
  EXPECT_EQ(exit_code({clean, warn}), 1);
}

// ------------------------------------------------------- catalog sweep --

TEST(Check, CatalogSweepHasNoErrors) {
  // Self-lint: every pipeline of the 70-script crossval catalog must
  // analyze without a single error-severity diagnostic — a KQ-EXEC on a
  // checked-in benchmark means the catalog and the registry drifted
  // apart. Warnings are expected (collation-sensitive sorts, materialize
  // stages are real properties of the scripts).
  vfs::Vfs fs;
  int pipelines = 0;
  for (const bench::Script& script : bench::all_scripts()) {
    bench::prepare_input(script, 1 << 10, 1, fs);
    for (const std::string& line : script.pipelines) {
      auto parsed = compile::parse_pipeline(line);
      ASSERT_TRUE(parsed.has_value())
          << script.suite << "/" << script.name << ": " << line;
      compile::Plan plan =
          compile::compile_pipeline(*parsed, shared_cache(), {}, &fs);
      compile::rewrite_bounded_windows(plan);
      compile::eliminate_intermediate_combiners(plan);
      auto stages = compile::lower_plan(plan);
      Report report = analyze(plan, stages);
      for (const Diagnostic& d : report.diagnostics)
        EXPECT_NE(d.severity, Severity::kError)
            << script.suite << "/" << script.name << ": " << line << ": "
            << format_diagnostic(d);
      EXPECT_EQ(report.stages.size(), plan.stages.size());
      ++pipelines;
    }
  }
  EXPECT_GE(pipelines, 70);
}

}  // namespace
}  // namespace kq::check
