// Integration tests over the full 70-script benchmark catalog: every
// pipeline must parse, compile, and produce byte-identical output under
// serial, unoptimized-parallel, and optimized-parallel execution.

#include <gtest/gtest.h>

#include <cctype>
#include <map>

#include "bench_support/catalog.h"
#include "bench_support/harness.h"
#include "unixcmd/registry.h"

namespace kq::bench {
namespace {

synth::SynthesisCache& shared_cache() {
  static synth::SynthesisCache cache;
  return cache;
}

vfs::Vfs& shared_fs() {
  static vfs::Vfs fs;
  return fs;
}

TEST(Catalog, HasSeventyScripts) {
  const auto& scripts = all_scripts();
  EXPECT_EQ(scripts.size(), 70u);
  std::map<std::string, int> per_suite;
  for (const Script& s : scripts) per_suite[s.suite]++;
  EXPECT_EQ(per_suite["analytics-mts"], 4);
  EXPECT_EQ(per_suite["oneliners"], 10);
  EXPECT_EQ(per_suite["poets"], 22);
  EXPECT_EQ(per_suite["unix50"], 34);
}

TEST(Catalog, AllPipelinesParse) {
  for (const Script& s : all_scripts()) {
    for (const std::string& pipeline : s.pipelines) {
      std::string error;
      auto parsed = compile::parse_pipeline(pipeline, &error);
      EXPECT_TRUE(parsed.has_value())
          << s.suite << "/" << s.name << ": " << pipeline << ": " << error;
    }
  }
}

TEST(Catalog, AllStagesResolveToBuiltins) {
  vfs::Vfs fs;
  // Install fixtures so file-consuming commands construct successfully.
  generate_workload(Workload::kBookList, 1 << 12, 1, fs);
  generate_workload(Workload::kScriptList, 1 << 12, 1, fs);
  install_spell_dictionary(fs, 1);
  for (const Script& s : all_scripts()) {
    for (const std::string& pipeline : s.pipelines) {
      auto parsed = compile::parse_pipeline(pipeline);
      ASSERT_TRUE(parsed.has_value());
      for (const auto& stage : parsed->stages) {
        std::string error;
        cmd::CommandPtr c = cmd::make_command(stage.argv, &error, &fs);
        EXPECT_NE(c, nullptr)
            << s.suite << "/" << s.name << " stage '" << stage.display
            << "': " << error;
      }
    }
  }
}

TEST(Catalog, HeadlineAndLongSubsetsResolve) {
  EXPECT_EQ(headline_scripts().size(), 8u);
  EXPECT_EQ(long_scripts().size(), 33u);
}

TEST(Catalog, UniqueCommandUniverse) {
  auto commands = unique_commands();
  // The paper reports 121 unique data-processing command/flag combinations
  // across its 70 scripts; our reconstruction has the same order of
  // magnitude (exact identity of every script is not public).
  EXPECT_GE(commands.size(), 80u);
  EXPECT_LE(commands.size(), 140u);
}

class CatalogEquivalence
    : public ::testing::TestWithParam<const Script*> {};

TEST_P(CatalogEquivalence, ParallelMatchesSerial) {
  const Script& script = *GetParam();
  HarnessOptions options;
  options.input_bytes = 24 * 1024;  // small but multi-chunk
  options.parallelism = {2, 5};
  options.measure_original = false;
  ScriptReport report =
      run_script(script, shared_cache(), options, shared_fs());
  EXPECT_TRUE(report.outputs_match) << script.suite << "/" << script.name;
  EXPECT_EQ(report.pipelines.size(), script.pipelines.size());
  EXPECT_GT(report.stages_total(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllScripts, CatalogEquivalence,
    ::testing::ValuesIn([] {
      std::vector<const Script*> ptrs;
      for (const Script& s : all_scripts()) ptrs.push_back(&s);
      return ptrs;
    }()),
    [](const ::testing::TestParamInfo<const Script*>& info) {
      std::string name =
          info.param->suite + "_" + info.param->name;
      std::string out;
      for (char c : name)
        out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
      return out;
    });

TEST(Harness, WordFrequencyParallelizationCounts) {
  // The §2 example: 4 of 5 stages parallel, 1 combiner eliminated.
  const Script* wf = find_script("oneliners", "wf.sh");
  ASSERT_NE(wf, nullptr);
  HarnessOptions options;
  options.input_bytes = 32 * 1024;
  options.parallelism = {2};
  options.measure_original = false;
  ScriptReport report =
      run_script(*wf, shared_cache(), options, shared_fs());
  EXPECT_EQ(report.parallelized_cell(), "4/5");
  EXPECT_EQ(report.eliminated_cell(), "1");
  EXPECT_TRUE(report.outputs_match);
}

TEST(Harness, OriginalScriptMeasurement) {
  // T_orig through a real shell (skipped when sh/coreutils are absent).
  const Script* sort_script = find_script("oneliners", "sort.sh");
  ASSERT_NE(sort_script, nullptr);
  vfs::Vfs fs;
  std::string input = prepare_input(*sort_script, 4096, 3, fs);
  auto t = run_original_script(*sort_script, input, fs);
  if (!t.has_value()) GTEST_SKIP() << "no usable /bin/sh environment";
  EXPECT_GT(*t, 0.0);
}

}  // namespace
}  // namespace kq::bench
