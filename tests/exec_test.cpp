// Tests for the parallel runtime: newline-aligned splitting, the thread
// pool, chunk mapping, and the staged pipeline runner (optimized and
// unoptimized modes, combine-failure fallback).

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "dsl/kway.h"
#include "exec/parallel.h"
#include "exec/runner.h"
#include "exec/splitter.h"
#include "exec/thread_pool.h"
#include "text/streams.h"
#include "unixcmd/registry.h"
#include "unixcmd/sort_cmd.h"

namespace kq::exec {
namespace {

// ------------------------------------------------------------- splitter --

TEST(Splitter, ChunksCoverInputExactly) {
  std::string input;
  for (int i = 0; i < 100; ++i) input += "line" + std::to_string(i) + "\n";
  for (int k : {1, 2, 3, 7, 16}) {
    auto chunks = split_stream(input, k);
    std::string joined;
    for (auto c : chunks) joined += std::string(c);
    EXPECT_EQ(joined, input) << "k=" << k;
    EXPECT_LE(chunks.size(), static_cast<std::size_t>(k));
  }
}

TEST(Splitter, ChunksEndAtLineBoundaries) {
  std::string input;
  for (int i = 0; i < 57; ++i) input += "abcdefg\n";
  auto chunks = split_stream(input, 8);
  for (auto c : chunks) {
    ASSERT_FALSE(c.empty());
    EXPECT_EQ(c.back(), '\n');
  }
}

TEST(Splitter, FewerLinesThanChunks) {
  auto chunks = split_stream("a\nb\n", 16);
  EXPECT_LE(chunks.size(), 2u);
  std::string joined;
  for (auto c : chunks) joined += std::string(c);
  EXPECT_EQ(joined, "a\nb\n");
}

TEST(Splitter, SingleLongLine) {
  std::string input(100000, 'x');
  input.push_back('\n');
  auto chunks = split_stream(input, 4);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], input);
}

TEST(Splitter, RoughlyBalanced) {
  std::string input;
  for (int i = 0; i < 10000; ++i) input += "0123456789\n";
  auto chunks = split_stream(input, 4);
  ASSERT_EQ(chunks.size(), 4u);
  for (auto c : chunks) {
    EXPECT_GT(c.size(), input.size() / 8);
    EXPECT_LT(c.size(), input.size() / 2);
  }
}

// ------------------------------------------------------------ threadpool --

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i)
    futures.push_back(pool.submit([i] { return i * i; }));
  int sum = 0;
  for (auto& f : futures) sum += f.get();
  int expect = 0;
  for (int i = 0; i < 64; ++i) expect += i * i;
  EXPECT_EQ(sum, expect);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, DestructorJoinsCleanly) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 10; ++i)
      pool.submit([&ran] { ++ran; }).wait();
  }
  EXPECT_EQ(ran.load(), 10);
}

// ------------------------------------------------------------ map chunks --

TEST(MapChunks, PreservesOrder) {
  ThreadPool pool(4);
  cmd::CommandPtr upper = cmd::make_command_line("tr a-z A-Z");
  std::vector<std::string_view> chunks = {"a\n", "b\n", "c\n", "d\n"};
  auto outputs = map_chunks(*upper, chunks, pool);
  ASSERT_EQ(outputs.size(), 4u);
  EXPECT_EQ(outputs[0], "A\n");
  EXPECT_EQ(outputs[3], "D\n");
}

TEST(MapChunksChain, AppliesStagesInOrder) {
  ThreadPool pool(2);
  cmd::CommandPtr upper = cmd::make_command_line("tr a-z A-Z");
  cmd::CommandPtr rev = cmd::make_command_line("rev");
  std::vector<const cmd::Command*> chain = {upper.get(), rev.get()};
  auto outputs = map_chunks_chain(chain, {"abc\n"}, pool);
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(outputs[0], "CBA\n");
}

// --------------------------------------------------------------- runner --

std::vector<ExecStage> word_count_stages() {
  // tr A-Z a-z | sort | uniq -c  with hand-built combiners.
  std::vector<ExecStage> stages;
  {
    ExecStage s;
    s.command = cmd::make_command_line("tr A-Z a-z");
    s.parallel = true;
    s.eliminate_combiner = true;
    s.combiner_name = "(concat a b)";
    s.combine = [](const std::vector<std::string>& parts)
        -> std::optional<std::string> {
      std::string out;
      for (const auto& p : parts) out += p;
      return out;
    };
    stages.push_back(std::move(s));
  }
  {
    ExecStage s;
    s.command = cmd::make_command_line("sort");
    s.parallel = true;
    s.combiner_name = "(merge a b)";
    s.combine = [](const std::vector<std::string>& parts)
        -> std::optional<std::string> {
      auto spec = cmd::SortSpec::parse({});
      std::vector<std::string_view> views(parts.begin(), parts.end());
      return spec->merge_streams(views);
    };
    stages.push_back(std::move(s));
  }
  {
    ExecStage s;
    s.command = cmd::make_command_line("uniq -c");
    s.parallel = true;
    s.combiner_name = "((stitch2 ' ' add first) a b)";
    dsl::Combiner saf = dsl::combiner_stitch2_add_first(' ');
    s.combine = [saf](const std::vector<std::string>& parts) {
      return dsl::combine_k(saf, parts);
    };
    stages.push_back(std::move(s));
  }
  return stages;
}

std::string sample_words() {
  std::string input;
  const char* words[] = {"apple", "Pear", "fig", "apple", "FIG", "plum"};
  for (int rep = 0; rep < 50; ++rep)
    for (const char* w : words) input += std::string(w) + "\n";
  return input;
}

TEST(Runner, SerialMatchesDirectComposition) {
  auto stages = word_count_stages();
  std::string input = sample_words();
  RunResult serial = run_serial(stages, input);
  std::string expect = input;
  for (const auto& s : stages) expect = s.command->run(expect);
  EXPECT_EQ(serial.output, expect);
  EXPECT_EQ(serial.stages.size(), 3u);
}

TEST(Runner, ParallelUnoptimizedMatchesSerial) {
  auto stages = word_count_stages();
  std::string input = sample_words();
  RunResult serial = run_serial(stages, input);
  ThreadPool pool(4);
  for (int k : {2, 3, 8}) {
    RunConfig config{k, /*use_elimination=*/false};
    RunResult parallel = run_pipeline(stages, input, pool, config);
    EXPECT_EQ(parallel.output, serial.output) << "k=" << k;
    for (const auto& m : parallel.stages) {
      EXPECT_FALSE(m.combiner_eliminated);
      EXPECT_FALSE(m.combine_fallback) << m.command;
    }
  }
}

TEST(Runner, ParallelOptimizedMatchesSerial) {
  auto stages = word_count_stages();
  std::string input = sample_words();
  RunResult serial = run_serial(stages, input);
  ThreadPool pool(4);
  RunConfig config{4, /*use_elimination=*/true};
  RunResult parallel = run_pipeline(stages, input, pool, config);
  EXPECT_EQ(parallel.output, serial.output);
  EXPECT_TRUE(parallel.stages[0].combiner_eliminated);
  EXPECT_FALSE(parallel.stages[1].combiner_eliminated);
}

TEST(Runner, SequentialStageAfterEliminatedConcat) {
  // An eliminated combiner followed by a sequential stage must restore the
  // stream by concatenation.
  auto stages = word_count_stages();
  stages[1].parallel = false;  // force sort sequential
  std::string input = sample_words();
  RunResult serial = run_serial(stages, input);
  ThreadPool pool(2);
  RunResult parallel = run_pipeline(stages, input, pool, {4, true});
  EXPECT_EQ(parallel.output, serial.output);
}

TEST(Runner, CombineFailureFallsBackToSerial) {
  std::vector<ExecStage> stages;
  ExecStage s;
  s.command = cmd::make_command_line("tr a-z A-Z");
  s.parallel = true;
  s.combiner_name = "(broken)";
  s.combine = [](const std::vector<std::string>&)
      -> std::optional<std::string> { return std::nullopt; };
  stages.push_back(std::move(s));
  ThreadPool pool(2);
  RunResult r = run_pipeline(stages, "ab\ncd\nef\ngh\n", pool, {2, true});
  EXPECT_EQ(r.output, "AB\nCD\nEF\nGH\n");
  EXPECT_TRUE(r.stages[0].combine_fallback);
}

TEST(Runner, ParallelismOneIsSerial) {
  auto stages = word_count_stages();
  std::string input = sample_words();
  ThreadPool pool(2);
  RunResult r = run_pipeline(stages, input, pool, {1, true});
  EXPECT_EQ(r.output, run_serial(stages, input).output);
  for (const auto& m : r.stages) EXPECT_FALSE(m.parallel);
}

TEST(Runner, MetricsAccounting) {
  auto stages = word_count_stages();
  std::string input = sample_words();
  ThreadPool pool(2);
  RunResult r = run_pipeline(stages, input, pool, {2, true});
  ASSERT_EQ(r.stages.size(), 3u);
  EXPECT_EQ(r.stages[0].in_bytes, input.size());
  EXPECT_GT(r.stages[2].out_bytes, 0u);
  EXPECT_EQ(r.stages[0].chunks, 2);
}

}  // namespace
}  // namespace kq::exec
