// Cross-validation: the built-in command substrate must be byte-identical
// to the real GNU coreutils on the benchmark command lines, across random
// inputs. This is what justifies swapping the paper's real-process
// substrate for our hermetic in-process one (DESIGN.md §2). Tests skip
// automatically when a binary is unavailable.

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <thread>
#include <random>

#include "procexec/external_command.h"
#include "text/shellwords.h"
#include "unixcmd/registry.h"

namespace kq {
namespace {

std::string random_text(std::uint64_t seed, int lines, bool words) {
  std::mt19937_64 rng(seed);
  constexpr std::string_view alphabet =
      "abcdefghij KLMNO123,.!?";
  std::uniform_int_distribution<int> len(0, 12);
  std::uniform_int_distribution<std::size_t> pick(0, alphabet.size() - 1);
  std::string out;
  for (int i = 0; i < lines; ++i) {
    int n = len(rng);
    for (int j = 0; j < n; ++j) out.push_back(alphabet[pick(rng)]);
    if (words && i % 3 == 0) out += " zz";
    out.push_back('\n');
  }
  return out;
}

class CrossValidation : public ::testing::TestWithParam<const char*> {};

TEST_P(CrossValidation, BuiltinMatchesRealBinary) {
  const std::string command_line = GetParam();
  std::string error;
  cmd::CommandPtr builtin = cmd::make_command_line(command_line, &error);
  ASSERT_NE(builtin, nullptr) << error;

  auto words = text::shell_split(command_line);
  ASSERT_TRUE(words.has_value());
  if (!procexec::program_exists((*words)[0]))
    GTEST_SKIP() << (*words)[0] << " not installed";
  procexec::ExternalCommand real(*words);

  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    std::string input = random_text(seed, 40, true);
    cmd::Result ours = builtin->execute(input);
    cmd::Result theirs = real.execute(input);
    if (theirs.status == 127) GTEST_SKIP() << "binary failed to exec";
    EXPECT_EQ(ours.out, theirs.out)
        << "command: " << command_line << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    BenchmarkCommands, CrossValidation,
    ::testing::Values(
        "cat",
        "tr A-Z a-z",
        "tr -cs A-Za-z '\\n'",
        "tr -d '[:punct:]'",
        "tr -s ' ' '\\n'",
        "tr '[a-z]' 'P'",
        "sort",
        "sort -n",
        "sort -rn",
        "sort -u",
        "sort -f",
        "uniq",
        "uniq -c",
        "wc -l",
        "wc -w",
        "grep -c K",
        "grep -v '^$'",
        "grep '[0-9]'",
        "grep -i 'kl'",
        "cut -c 1-4",
        "cut -d ',' -f 1",
        "cut -d ' ' -f 2",
        "sed s/a/b/",
        "sed 's/a/b/g'",
        "sed 2q",
        "sed 1d",
        "head -n 3",
        "head -c 17",
        "tail -n 2",
        "tail -n +2",
        "tail -c 9",
        "tail -c +5",
        "rev",
        "awk '{print NF}'",
        "awk '{print $2, $0}'",
        "awk 'length >= 8'",
        "awk '{$1=$1};1'"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      std::string name = info.param;
      std::string out;
      for (char c : name)
        out += (std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
      return out + "_" + std::to_string(info.index);
    });

TEST(CrossValidationFmt, MatchesRealFmtOnCleanText) {
  // GNU fmt applies indentation-sensitive paragraph logic; our builtin
  // models the refill behaviour for the non-indented machine-generated
  // text the benchmark pipelines produce, so compare on that shape.
  if (!procexec::program_exists("fmt")) GTEST_SKIP();
  procexec::ExternalCommand real({"fmt", "-w1"});
  cmd::CommandPtr builtin = cmd::make_command_line("fmt -w1");
  ASSERT_NE(builtin, nullptr);
  for (std::uint64_t seed : {10u, 11u, 12u}) {
    std::string input;
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<int> wlen(1, 8);
    std::uniform_int_distribution<int> nwords(1, 5);
    for (int i = 0; i < 30; ++i) {
      int k = nwords(rng);
      for (int w = 0; w < k; ++w) {
        if (w) input.push_back(' ');
        int n = wlen(rng);
        for (int c = 0; c < n; ++c)
          input.push_back(static_cast<char>('a' + (rng() % 26)));
      }
      input.push_back('\n');
    }
    cmd::Result theirs = real.execute(input);
    if (theirs.status == 127) GTEST_SKIP();
    EXPECT_EQ(builtin->run(input), theirs.out) << "seed " << seed;
  }
}

TEST(ProcExec, RunsRealProcess) {
  if (!procexec::program_exists("tr")) GTEST_SKIP();
  auto cmd = procexec::make_external_command("tr a-z A-Z");
  ASSERT_NE(cmd, nullptr);
  EXPECT_EQ(cmd->run("hello\n"), "HELLO\n");
}

TEST(ProcExec, ReportsExitStatus) {
  if (!procexec::program_exists("false")) GTEST_SKIP();
  auto cmd = procexec::make_external_command("false");
  ASSERT_NE(cmd, nullptr);
  EXPECT_NE(cmd->execute("").status, 0);
}

TEST(ProcExec, MissingBinaryReturns127) {
  auto cmd = procexec::make_external_command("definitely-not-a-binary-xyz");
  ASSERT_NE(cmd, nullptr);
  EXPECT_EQ(cmd->execute("").status, 127);
}

TEST(ProcExec, LargeInputDoesNotDeadlock) {
  if (!procexec::program_exists("cat")) GTEST_SKIP();
  auto cmd = procexec::make_external_command("cat");
  std::string big(4 * 1024 * 1024, 'x');
  big.push_back('\n');
  EXPECT_EQ(cmd->run(big).size(), big.size());
}

TEST(ProcExec, ConcurrentSpawnsDoNotLeakPipes) {
  // Regression: without O_CLOEXEC pipes, a child forked concurrently
  // inherits a sibling's stdin write end and the sibling never sees EOF.
  if (!procexec::program_exists("wc")) GTEST_SKIP();
  auto cmd = procexec::make_external_command("wc -l");
  std::string input = "a\nb\nc\n";
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5; ++i)
        if (cmd->run(input) != "3\n") ++failures;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ProcExec, ChildClosingStdinEarly) {
  if (!procexec::program_exists("head")) GTEST_SKIP();
  auto cmd = procexec::make_external_command("head -n 1");
  std::string big;
  for (int i = 0; i < 200000; ++i) big += "line\n";
  EXPECT_EQ(cmd->run(big), "line\n");
}

}  // namespace
}  // namespace kq
