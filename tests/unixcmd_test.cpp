// Unit tests for the built-in command substrate: every command/flag
// combination that appears in the paper's benchmark suite (Table 10 and
// Table 9), plus edge cases around empty input, missing trailing newlines,
// and error statuses.

#include <gtest/gtest.h>

#include "unixcmd/registry.h"
#include "unixcmd/sort_cmd.h"
#include "vfs/vfs.h"

namespace kq::cmd {
namespace {

std::string run(const std::string& command_line, std::string_view input,
                const vfs::Vfs* fs = nullptr) {
  std::string error;
  CommandPtr c = make_command_line(command_line, &error, fs);
  EXPECT_NE(c, nullptr) << command_line << ": " << error;
  if (!c) return "<make_command failed>";
  return c->run(input);
}

Result exec(const std::string& command_line, std::string_view input,
            const vfs::Vfs* fs = nullptr) {
  std::string error;
  CommandPtr c = make_command_line(command_line, &error, fs);
  EXPECT_NE(c, nullptr) << command_line << ": " << error;
  if (!c) return {"", 255, error};
  return c->execute(input);
}

// ------------------------------------------------------------------ cat --

TEST(Cat, Identity) {
  EXPECT_EQ(run("cat", "a\nb\n"), "a\nb\n");
  EXPECT_EQ(run("cat", ""), "");
}

TEST(Cat, ReadsVfsFiles) {
  vfs::Vfs fs;
  fs.write("f1", "one\n");
  fs.write("f2", "two\n");
  EXPECT_EQ(run("cat f1 f2", "ignored", &fs), "one\ntwo\n");
}

TEST(Cat, MissingFileSetsStatus) {
  vfs::Vfs fs;
  Result r = exec("cat nope", "", &fs);
  EXPECT_NE(r.status, 0);
}

// ------------------------------------------------------------------- tr --

TEST(Tr, SimpleTranslate) {
  EXPECT_EQ(run("tr A-Z a-z", "Hello World\n"), "hello world\n");
}

TEST(Tr, BracketedSets) {
  EXPECT_EQ(run("tr '[A-Z]' '[a-z]'", "ABC[]\n"), "abc[]\n");
  EXPECT_EQ(run("tr '[a-z]' 'P'", "abc XY\n"), "PPP XY\n");
}

TEST(Tr, SpaceToNewline) {
  EXPECT_EQ(run("tr ' ' '\\n'", "a b\n"), "a\nb\n");
}

TEST(Tr, ComplementSqueezeToNewline) {
  // The §2 example command: break into words, squeezing delimiters.
  EXPECT_EQ(run("tr -cs A-Za-z '\\n'", "one, two!!three\n"),
            "one\ntwo\nthree\n");
}

TEST(Tr, ComplementSqueezeLeadingSeparator) {
  // A leading non-letter becomes a single leading newline.
  EXPECT_EQ(run("tr -cs A-Za-z '\\n'", "  lead\n"), "\nlead\n");
}

TEST(Tr, DeleteNewlines) {
  EXPECT_EQ(run("tr -d '\\n'", "a\nb\nc\n"), "abc");
}

TEST(Tr, DeleteComma) {
  EXPECT_EQ(run("tr -d ','", "1,2,3\n"), "123\n");
}

TEST(Tr, DeletePunct) {
  EXPECT_EQ(run("tr -d '[:punct:]'", "a.b,c!d\n"), "abcd\n");
}

TEST(Tr, SqueezeOnly) {
  EXPECT_EQ(run("tr -s ' ' '\\n'", "a  b\n"), "a\nb\n");
}

TEST(Tr, OctalFillSet) {
  // poets: tr -sc '[A-Z][a-z]' '[\012*]' — complement to newlines, squeeze.
  EXPECT_EQ(run("tr -sc '[A-Z][a-z]' '[\\012*]'", "It's 42 words\n"),
            "It\ns\nwords\n");
}

TEST(Tr, VowelSqueeze) {
  EXPECT_EQ(run("tr -sc 'AEIOUaeiou' '[\\012*]'", "banana\n"),
            "\na\na\na\n");
}

TEST(Tr, NamedClasses) {
  EXPECT_EQ(run("tr '[:lower:]' '[:upper:]'", "mixed Case\n"),
            "MIXED CASE\n");
}

TEST(Tr, UnsupportedFlagRejected) {
  std::string error;
  EXPECT_EQ(make_command_line("tr -z a b", &error), nullptr);
}

// ----------------------------------------------------------------- sort --

TEST(Sort, Bytewise) {
  EXPECT_EQ(run("sort", "b\na\nc\n"), "a\nb\nc\n");
}

TEST(Sort, EmptyInput) { EXPECT_EQ(run("sort", ""), ""); }

TEST(Sort, Numeric) {
  EXPECT_EQ(run("sort -n", "10\n9\n-2\n"), "-2\n9\n10\n");
}

TEST(Sort, NumericEqualKeysFallBackToBytewise) {
  // GNU last-resort comparison orders equal numeric keys bytewise.
  EXPECT_EQ(run("sort -n", "0b\n0a\n"), "0a\n0b\n");
}

TEST(Sort, ReverseNumeric) {
  EXPECT_EQ(run("sort -rn", "1 x\n10 y\n2 z\n"), "10 y\n2 z\n1 x\n");
}

TEST(Sort, FoldCase) {
  EXPECT_EQ(run("sort -f", "b\nA\n"), "A\nb\n");
}

TEST(Sort, Unique) {
  EXPECT_EQ(run("sort -u", "b\na\nb\na\n"), "a\nb\n");
}

TEST(Sort, KeyNumeric) {
  EXPECT_EQ(run("sort -k1n", "10 a\n2 b\n"), "2 b\n10 a\n");
}

// GNU-compat -n edge cases: parse_numeric skips leading blanks, reads an
// optional '-' and digits, and treats anything non-numeric as 0. These lock
// in the tie orders the external merge (stream/spill.*) must reproduce.

TEST(Sort, NumericLeadingBlanksIgnored) {
  // "  10" parses as 10 despite the indent, like GNU sort -n (implicit -b).
  EXPECT_EQ(run("sort -n", "  10\n9\n 2\n"), " 2\n9\n  10\n");
}

TEST(Sort, NumericBareMinusCountsAsZero) {
  // A bare "-" has a sign but no digits: value 0, not negative infinity.
  // Ties against other zeros break bytewise ('-' 0x2D < '0' 0x30).
  EXPECT_EQ(run("sort -n", "1\n-\n0\n-1\n"), "-1\n-\n0\n1\n");
}

TEST(Sort, NumericNonNumericPrefixesTieAsZero) {
  // "abc" and "xyz" both parse as 0: they tie with "0" numerically and the
  // last-resort bytewise comparison orders the group.
  EXPECT_EQ(run("sort -n", "xyz\n1\nabc\n0\n"), "0\nabc\nxyz\n1\n");
}

TEST(Sort, NumericStableKeepsTieInputOrder) {
  // -s drops the last-resort comparison: all-zero keys keep input order.
  EXPECT_EQ(run("sort -ns", "xyz\nabc\n0\nmno\n"), "xyz\nabc\n0\nmno\n");
}

TEST(Sort, NumericStableStillSortsDistinctKeys) {
  // Distinct keys sort; the two 2-keyed lines keep their input order.
  EXPECT_EQ(run("sort -ns", "2 b\n1 z\n2 a\n"), "1 z\n2 b\n2 a\n");
}

TEST(Sort, NumericUniqueCollapsesZeroTies) {
  // -u compares keys only: every non-numeric line is "0", so one survivor —
  // the first in sorted order (stable, so the first zero-key line seen).
  EXPECT_EQ(run("sort -nu", "xyz\nabc\n1\n0\n"), "xyz\n1\n");
}

TEST(Sort, ParallelFlagIgnored) {
  EXPECT_EQ(run("sort --parallel=1", "b\na\n"), "a\nb\n");
}

TEST(SortSpec, MergePreSortedStreams) {
  auto spec = SortSpec::parse({});
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->merge_streams({"a\nc\n", "b\nd\n"}), "a\nb\nc\nd\n");
}

TEST(SortSpec, MergeNumeric) {
  auto spec = SortSpec::parse({"-n"});
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->merge_streams({"2\n10\n", "3\n"}), "2\n3\n10\n");
}

TEST(SortSpec, IsSortedStream) {
  auto spec = SortSpec::parse({"-n"});
  EXPECT_TRUE(spec->is_sorted_stream("2\n10\n"));
  EXPECT_FALSE(spec->is_sorted_stream("10\n2\n"));
}

// ----------------------------------------------------------------- uniq --

TEST(Uniq, CollapsesAdjacent) {
  EXPECT_EQ(run("uniq", "a\na\nb\na\n"), "a\nb\na\n");
}

TEST(Uniq, CountFormatsWidth7) {
  EXPECT_EQ(run("uniq -c", "a\na\nb\n"), "      2 a\n      1 b\n");
}

TEST(Uniq, CountEmptyLines) {
  EXPECT_EQ(run("uniq -c", "\n\n\n"), "      3 \n");
}

TEST(Uniq, EmptyInput) { EXPECT_EQ(run("uniq -c", ""), ""); }

// ------------------------------------------------------------------- wc --

TEST(Wc, CountLines) {
  EXPECT_EQ(run("wc -l", "a\nb\nc\n"), "3\n");
  EXPECT_EQ(run("wc -l", ""), "0\n");
}

TEST(Wc, CountWords) {
  EXPECT_EQ(run("wc -w", "one two\nthree\n"), "3\n");
}

TEST(Wc, CountBytes) {
  EXPECT_EQ(run("wc -c", "abc\n"), "4\n");
}

TEST(Wc, DefaultThreeColumns) {
  EXPECT_EQ(run("wc", "a b\n"), "      1       2       4\n");
}

// ----------------------------------------------------------------- grep --

TEST(Grep, SelectsMatchingLines) {
  EXPECT_EQ(run("grep light", "daylight\ndark\nlights\n"),
            "daylight\nlights\n");
}

TEST(Grep, CountFlag) {
  EXPECT_EQ(run("grep -c light", "daylight\ndark\n"), "1\n");
  EXPECT_EQ(run("grep -c light", "dark\n"), "0\n");
}

TEST(Grep, InvertFlag) {
  EXPECT_EQ(run("grep -v '^0$'", "1\n0\n02\n"), "1\n02\n");
}

TEST(Grep, InvertCount) {
  EXPECT_EQ(run("grep -vc x", "x\ny\nz\n"), "2\n");
}

TEST(Grep, CaseInsensitive) {
  EXPECT_EQ(run("grep -i '[aeiou]'", "SKY\nAloud\n"), "Aloud\n");
}

TEST(Grep, ExitStatusReflectsSelection) {
  EXPECT_EQ(exec("grep x", "x\n").status, 0);
  EXPECT_EQ(exec("grep x", "y\n").status, 1);
}

TEST(Grep, FourLetterWords) {
  EXPECT_EQ(run("grep -c '^....$'", "word\nabcde\nfour\n"), "2\n");
}

// ------------------------------------------------------------------ cut --

TEST(Cut, CharacterRanges) {
  EXPECT_EQ(run("cut -c 1-4", "abcdefg\nxy\n"), "abcd\nxy\n");
  EXPECT_EQ(run("cut -c 1-1", "abc\n"), "a\n");
  EXPECT_EQ(run("cut -c 3-3", "abc\n"), "c\n");
}

TEST(Cut, FieldsWithDelimiter) {
  EXPECT_EQ(run("cut -d ',' -f 1", "a,b,c\n"), "a\n");
  EXPECT_EQ(run("cut -d ',' -f 2", "a,b,c\n"), "b\n");
}

TEST(Cut, FieldListOutputsInInputOrder) {
  // GNU cut ignores the order in the -f list.
  EXPECT_EQ(run("cut -d ',' -f 3,1", "a,b,c\n"), "a,c\n");
  EXPECT_EQ(run("cut -d ',' -f 1,3", "a,b,c\n"), "a,c\n");
}

TEST(Cut, LineWithoutDelimiterPassesThrough) {
  EXPECT_EQ(run("cut -d ',' -f 2", "nodelim\n"), "nodelim\n");
}

TEST(Cut, MissingFieldsAreEmpty) {
  EXPECT_EQ(run("cut -d ',' -f 5", "a,b\n"), "\n");
}

TEST(Cut, TabIsDefaultDelimiter) {
  EXPECT_EQ(run("cut -f 2", "a\tb\tc\n"), "b\n");
}

TEST(Cut, QuoteDelimiter) {
  EXPECT_EQ(run("cut -d '\"' -f 2", "say \"hello world\" now\n"),
            "hello world\n");
}

// ------------------------------------------------------------------ sed --

TEST(Sed, SubstituteFirst) {
  EXPECT_EQ(run("sed s/o/0/", "foo\n"), "f0o\n");
}

TEST(Sed, SubstituteGlobal) {
  EXPECT_EQ(run("sed s/o/0/g", "foo\n"), "f00\n");
}

TEST(Sed, StripTimeOfDay) {
  // analytics-mts: sed 's/T..:..:..//'
  EXPECT_EQ(run("sed 's/T..:..:..//'", "2020-01-05T08:31:22,v1\n"),
            "2020-01-05,v1\n");
}

TEST(Sed, CaptureGroupReplacement) {
  EXPECT_EQ(run("sed 's/T\\(..\\):..:../,\\1/'", "2020-01-05T08:31:22,v1\n"),
            "2020-01-05,08,v1\n");
}

TEST(Sed, PrefixWithSemicolonDelimiter) {
  EXPECT_EQ(run("sed 's;^;pg/;'", "book.txt\n"), "pg/book.txt\n");
}

TEST(Sed, AppendAtEndOfLine) {
  EXPECT_EQ(run("sed s/$/0s/", "196\n197\n"), "1960s\n1970s\n");
}

TEST(Sed, QuitAfterN) {
  EXPECT_EQ(run("sed 2q", "a\nb\nc\nd\n"), "a\nb\n");
  EXPECT_EQ(run("sed 100q", "a\nb\n"), "a\nb\n");
}

TEST(Sed, DeleteLineN) {
  EXPECT_EQ(run("sed 1d", "a\nb\nc\n"), "b\nc\n");
  EXPECT_EQ(run("sed 3d", "a\nb\nc\n"), "a\nb\n");
}

TEST(Sed, DeleteLastLine) {
  EXPECT_EQ(run("sed '$d'", "a\nb\nc\n"), "a\nb\n");
}

// ------------------------------------------------------------------ awk --

TEST(Awk, NumericPatternSelectsLines) {
  EXPECT_EQ(run("awk \"\\$1 >= 1000\"", "1500 x\n30 y\n2000 z\n"),
            "1500 x\n2000 z\n");
}

TEST(Awk, PatternWithPrintAction) {
  EXPECT_EQ(run("awk \"\\$1 >= 2 {print \\$2}\"", "3 cats\n1 dog\n"),
            "cats\n");
}

TEST(Awk, LengthPattern) {
  EXPECT_EQ(run("awk \"length >= 16\"", "short\nthis-is-a-very-long-word\n"),
            "this-is-a-very-long-word\n");
}

TEST(Awk, RebuildRecordSqueezesBlanks) {
  // awk "{$1=$1};1" canonicalizes whitespace.
  EXPECT_EQ(run("awk '{$1=$1};1'", "  a   b \n"), "a b\n");
}

TEST(Awk, PrintSecondThenWhole) {
  EXPECT_EQ(run("awk '{print $2, $0}'", "one two\n"), "two one two\n");
}

TEST(Awk, PrintNf) {
  EXPECT_EQ(run("awk '{print NF}'", "a b c\n\nx\n"), "3\n0\n1\n");
}

TEST(Awk, OfsVariable) {
  EXPECT_EQ(run("awk -v OFS=\"\\t\" '{print $2,$1}'", "a b\n"), "b\ta\n");
}

TEST(Awk, EqualityPattern) {
  EXPECT_EQ(run("awk \"\\$1 == 2 {print \\$2, \\$3}\"", "2 x y\n3 a b\n"),
            "x y\n");
}

TEST(Awk, TruthyConstantRule) {
  EXPECT_EQ(run("awk 1", "a\nb\n"), "a\nb\n");
}

// ----------------------------------------------------------- head / tail --

TEST(Head, DefaultTen) {
  std::string in;
  for (int i = 0; i < 15; ++i) in += std::to_string(i) + "\n";
  std::string expect;
  for (int i = 0; i < 10; ++i) expect += std::to_string(i) + "\n";
  EXPECT_EQ(run("head", in), expect);
}

TEST(Head, DashN) {
  EXPECT_EQ(run("head -n 1", "a\nb\n"), "a\n");
  EXPECT_EQ(run("head -15", "a\nb\n"), "a\nb\n");
  EXPECT_EQ(run("head -n 3", "a\nb\nc\nd\n"), "a\nb\nc\n");
}

TEST(Tail, LastN) {
  EXPECT_EQ(run("tail -n 1", "a\nb\nc\n"), "c\n");
  EXPECT_EQ(run("tail -n 2", "a\nb\nc\n"), "b\nc\n");
}

TEST(Tail, FromLineN) {
  EXPECT_EQ(run("tail +2", "a\nb\nc\n"), "b\nc\n");
  EXPECT_EQ(run("tail +3", "a\nb\nc\n"), "c\n");
  EXPECT_EQ(run("tail -n +2", "a\nb\nc\n"), "b\nc\n");
}

// ----------------------------------------------------------------- comm --

TEST(Comm, SuppressColumns23) {
  vfs::Vfs fs;
  fs.write("dict", "apple\nberry\n");
  EXPECT_EQ(run("comm -23 - dict", "apple\nzebra\n", &fs), "zebra\n");
}

TEST(Comm, ErrorsOnUnsortedInput) {
  vfs::Vfs fs;
  fs.write("dict", "a\nb\n");
  Result r = exec("comm -23 - dict", "z\na\n", &fs);
  EXPECT_NE(r.status, 0);
}

TEST(Comm, AllColumns) {
  vfs::Vfs fs;
  fs.write("dict", "b\nc\n");
  EXPECT_EQ(run("comm - dict", "a\nb\n", &fs), "a\n\t\tb\n\tc\n");
}

// ---------------------------------------------------------------- xargs --

TEST(Xargs, CatConcatenatesFiles) {
  vfs::Vfs fs;
  fs.write("f1", "one\n");
  fs.write("f2", "two\n");
  EXPECT_EQ(run("xargs cat", "f1\nf2\n", &fs), "one\ntwo\n");
}

TEST(Xargs, FileReportsTypes) {
  vfs::Vfs fs;
  fs.write("a.txt", "hello\n");
  EXPECT_EQ(run("xargs file", "a.txt\n", &fs), "a.txt: ASCII text\n");
}

TEST(Xargs, WcPerLine) {
  vfs::Vfs fs;
  fs.write("f1", "x\ny\n");
  fs.write("f2", "z\n");
  EXPECT_EQ(run("xargs -L 1 wc -l", "f1\nf2\n", &fs), "2 f1\n1 f2\n");
}

TEST(Xargs, MissingFileErrors) {
  vfs::Vfs fs;
  EXPECT_NE(exec("xargs cat", "ghost\n", &fs).status, 0);
}

// ----------------------------------------------------------------- misc --

TEST(Rev, ReversesEachLine) {
  EXPECT_EQ(run("rev", "abc\nxy\n"), "cba\nyx\n");
}

TEST(Col, RemovesBackspaceOverstrikes) {
  EXPECT_EQ(run("col -bx", "a\bb\n"), "b\n");
}

TEST(Col, ExpandsTabs) {
  EXPECT_EQ(run("col -bx", "a\tb\n"), "a       b\n");
}

TEST(Fmt, OneWordPerLine) {
  EXPECT_EQ(run("fmt -w1", "one two  three\n"), "one\ntwo\nthree\n");
}

TEST(Fmt, WrapsAtWidth) {
  EXPECT_EQ(run("fmt -w7", "aa bb cc\n"), "aa bb\ncc\n");
}

TEST(Iconv, TransliteratesAccents) {
  EXPECT_EQ(run("iconv -f utf-8 -t ascii//translit", "caf\xC3\xA9\n"),
            "cafe\n");
}

TEST(Iconv, PassesAsciiThrough) {
  EXPECT_EQ(run("iconv -f utf-8 -t ascii//translit", "plain\n"), "plain\n");
}

// ------------------------------------------------------------- registry --

TEST(Registry, UnknownCommandFails) {
  std::string error;
  EXPECT_EQ(make_command_line("frobnicate -x", &error), nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(Registry, StripsLeadingPath) {
  EXPECT_NE(make_command_line("/usr/bin/sort -n"), nullptr);
}

TEST(Registry, IsBuiltin) {
  EXPECT_TRUE(is_builtin("sort"));
  EXPECT_TRUE(is_builtin("/usr/bin/tr"));
  EXPECT_FALSE(is_builtin("python3"));
}

TEST(Registry, DisplayNameRoundTrips) {
  CommandPtr c = make_command_line("tr -cs A-Za-z '\\n'");
  ASSERT_NE(c, nullptr);
  CommandPtr again = make_command_line(c->display_name());
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(again->run("a  b\n"), c->run("a  b\n"));
}

}  // namespace
}  // namespace kq::cmd
