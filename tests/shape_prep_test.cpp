// Tests for input shapes, stream generation, the 12 mutations
// (Algorithm 2's state space), and the preprocessing passes (literal
// extraction, probe classification, delimiter inference).

#include <gtest/gtest.h>

#include <set>

#include "dsl/enumerate.h"
#include "prep/delimiters.h"
#include "prep/literals.h"
#include "prep/probe.h"
#include "shape/generate.h"
#include "shape/mutate.h"
#include "text/shellwords.h"
#include "text/streams.h"
#include "text/strings.h"
#include "unixcmd/registry.h"

namespace kq {
namespace {

// --------------------------------------------------------------- shapes --

TEST(Shape, GeneratedStreamsRespectLineBounds) {
  std::mt19937_64 rng(1);
  shape::Shape s;
  s.lines = {3, 7, 80};
  for (int i = 0; i < 50; ++i) {
    std::string stream = shape::generate_stream(s, {}, rng);
    ASSERT_TRUE(text::is_stream(stream));
    auto n = text::lines(stream).size();
    EXPECT_GE(n, 3u);
    EXPECT_LE(n, 7u);
  }
}

TEST(Shape, DistinctPercentControlsDuplicates) {
  std::mt19937_64 rng(2);
  shape::Shape low;   // heavy duplication
  low.lines = {40, 40, 5};
  shape::Shape high;  // mostly distinct
  high.lines = {40, 40, 100};
  std::size_t low_distinct = 0, high_distinct = 0;
  for (int i = 0; i < 20; ++i) {
    auto count_distinct = [](const std::string& s) {
      auto ls = text::lines(s);
      return std::set<std::string_view>(ls.begin(), ls.end()).size();
    };
    low_distinct += count_distinct(shape::generate_stream(low, {}, rng));
    high_distinct += count_distinct(shape::generate_stream(high, {}, rng));
  }
  EXPECT_LT(low_distinct * 2, high_distinct);
}

TEST(Shape, PairSplitsAtLineBoundary) {
  std::mt19937_64 rng(3);
  shape::Shape s;
  s.lines = {4, 10, 70};
  for (int i = 0; i < 50; ++i) {
    shape::InputPair pair = shape::generate_pair(s, {}, rng);
    EXPECT_TRUE(text::is_stream(pair.x1));
    EXPECT_TRUE(text::is_stream(pair.x2));
  }
}

TEST(Shape, SortedOptionKeepsConcatenationSorted) {
  std::mt19937_64 rng(4);
  shape::GenOptions gen;
  gen.sorted = true;
  shape::Shape s;
  s.lines = {5, 12, 90};
  for (int i = 0; i < 30; ++i) {
    shape::InputPair pair = shape::generate_pair(s, gen, rng);
    std::string joined = pair.joined();
    auto ls = text::lines(joined);
    for (std::size_t j = 1; j < ls.size(); ++j)
      EXPECT_LE(ls[j - 1], ls[j]);
  }
}

TEST(Shape, DictionaryWordsAreUsed) {
  std::mt19937_64 rng(5);
  shape::GenOptions gen;
  gen.dictionary = {"alpha", "beta"};
  shape::Shape s;
  s.words = {1, 3, 100};
  std::string stream = shape::generate_stream(s, gen, rng);
  for (std::string_view line : text::lines(stream)) {
    if (line.empty()) continue;
    for (std::string_view w : text::split(line, ' '))
      EXPECT_TRUE(w == "alpha" || w == "beta") << w;
  }
}

TEST(Mutate, TwelveDistinctMutations) {
  shape::Shape s = shape::seed_shape();
  std::set<std::string> results;
  for (int j = 0; j < shape::kMutationCount; ++j)
    results.insert(shape::mutate_shape(s, j).to_string());
  // All mutations produce a change; most are distinct states.
  EXPECT_GE(results.size(), 10u);
  for (int j = 0; j < shape::kMutationCount; ++j)
    EXPECT_NE(shape::mutate_shape(s, j).to_string(), s.to_string())
        << shape::mutation_name(j);
}

TEST(Mutate, DirectionsMoveTheRightKnob) {
  shape::Shape s = shape::seed_shape();
  EXPECT_GT(shape::mutate_shape(s, 0).lines.max_count, s.lines.max_count);
  EXPECT_LT(shape::mutate_shape(s, 1).lines.max_count, s.lines.max_count);
  EXPECT_GT(shape::mutate_shape(s, 2).lines.distinct_pct,
            s.lines.distinct_pct);
  EXPECT_LT(shape::mutate_shape(s, 3).lines.distinct_pct,
            s.lines.distinct_pct);
  EXPECT_GT(shape::mutate_shape(s, 4).words.max_count, s.words.max_count);
  EXPECT_GT(shape::mutate_shape(s, 8).chars.max_count, s.chars.max_count);
}

TEST(Mutate, BoundsAreClamped) {
  shape::Shape s = shape::seed_shape();
  for (int i = 0; i < 20; ++i) s = shape::mutate_shape(s, 3);
  EXPECT_GE(s.lines.distinct_pct, 5);
  for (int i = 0; i < 20; ++i) s = shape::mutate_shape(s, 1);
  EXPECT_GE(s.lines.max_count, 1);
}

// --------------------------------------------------------------- literals --

TEST(Literals, GrepPatternYieldsMatchingDictionary) {
  auto argv = text::shell_split("grep 'light.light'");
  auto lit = prep::extract_literals(*argv);
  ASSERT_FALSE(lit.dictionary.empty());
  for (const std::string& w : lit.dictionary) {
    EXPECT_EQ(w.size(), 11u);
    EXPECT_EQ(w.substr(0, 5), "light");
  }
}

TEST(Literals, SedQuitYieldsNumber) {
  auto argv = text::shell_split("sed 100q");
  auto lit = prep::extract_literals(*argv);
  ASSERT_EQ(lit.numbers.size(), 1u);
  EXPECT_EQ(lit.numbers[0], 100);
}

TEST(Literals, SedSubstituteYieldsPatternSamples) {
  auto argv = text::shell_split("sed 's/T..:..:..//'");
  auto lit = prep::extract_literals(*argv);
  ASSERT_FALSE(lit.dictionary.empty());
  for (const std::string& w : lit.dictionary) {
    EXPECT_EQ(w[0], 'T');
    EXPECT_EQ(w[3], ':');
  }
}

TEST(Literals, AwkComparisonYieldsNumber) {
  auto argv = text::shell_split("awk '$1 >= 1000'");
  auto lit = prep::extract_literals(*argv);
  ASSERT_FALSE(lit.numbers.empty());
  EXPECT_EQ(lit.numbers[0], 1000);
}

TEST(Literals, HeadCountExtracted) {
  auto argv = text::shell_split("head -n 15");
  auto lit = prep::extract_literals(*argv);
  ASSERT_FALSE(lit.numbers.empty());
  EXPECT_EQ(lit.numbers[0], 15);
}

// ----------------------------------------------------------------- probe --

TEST(Probe, PlainCommandsAcceptAnyText) {
  auto c = cmd::make_command_line("tr A-Z a-z");
  EXPECT_EQ(prep::classify_inputs(*c, vfs::Vfs::global()),
            prep::InputClass::kAnyText);
}

TEST(Probe, CommRequiresSortedText) {
  vfs::Vfs fs;
  fs.write("dict", "apple\nzebra\n");
  auto c = cmd::make_command_line("comm -23 - dict", nullptr, &fs);
  EXPECT_EQ(prep::classify_inputs(*c, fs), prep::InputClass::kSortedText);
}

TEST(Probe, XargsRequiresFileNames) {
  vfs::Vfs fs;
  fs.write("f1", "data\n");
  auto c = cmd::make_command_line("xargs cat", nullptr, &fs);
  EXPECT_EQ(prep::classify_inputs(*c, fs), prep::InputClass::kFileNames);
}

// ------------------------------------------------------------- delimiters --

TEST(Delims, NewlineAlwaysPresent) {
  auto d = prep::infer_delims({"abc\n"});
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0], '\n');
}

TEST(Delims, DetectsSpacesAndCommas) {
  auto d = prep::infer_delims({"a b\n", "1,2\n"});
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d[0], '\n');
}

TEST(Delims, CapAtThreeByFrequency) {
  auto d = prep::infer_delims({"a b\tc,d e f\n"});
  ASSERT_EQ(d.size(), 3u);
  EXPECT_EQ(d[0], '\n');
  EXPECT_EQ(d[1], ' ');  // most frequent optional delimiter
}

TEST(Delims, MatchesPaperSpaceSizes) {
  // wc -l outputs only digits + newline -> D=1 -> 2700 candidates;
  // uniq -c outputs "  count word" -> D=2 -> 26404.
  auto wc = prep::infer_delims({"42\n"});
  EXPECT_EQ(dsl::count_candidates(wc.size(), 5).total(), 2700u);
  auto uniq = prep::infer_delims({"      2 apple\n"});
  EXPECT_EQ(dsl::count_candidates(uniq.size(), 5).total(), 26404u);
}

}  // namespace
}  // namespace kq
