// Tests for sharded streaming execution: eligible parallel segments run as
// per-shard stream sub-chains (exec::run_slice_fused) feeding the
// incremental combining tree. Cross-validates the whole 70-script catalog
// at k in {2, 4, 8} against the serial oracle, plus a forced-spill sharded
// run, a downstream-close (`| head`) early exit that cancels in-flight
// shards, and the shard-eligibility/telemetry contracts.

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "bench_support/catalog.h"
#include "compile/optimize.h"
#include "compile/plan.h"
#include "exec/executor.h"
#include "exec/runner.h"
#include "unixcmd/registry.h"

namespace kq {
namespace {

synth::SynthesisCache& shared_cache() {
  static synth::SynthesisCache c;
  return c;
}

vfs::Vfs& shared_fs() {
  static vfs::Vfs v;
  return v;
}

std::vector<exec::ExecStage> compile_stages(const std::string& pipeline,
                                            vfs::Vfs* fs = nullptr) {
  auto parsed = compile::parse_pipeline(pipeline);
  EXPECT_TRUE(parsed.has_value()) << pipeline;
  compile::Plan plan =
      compile::compile_pipeline(*parsed, shared_cache(), {}, fs);
  compile::rewrite_bounded_windows(plan);
  compile::eliminate_intermediate_combiners(plan);
  return compile::lower_plan(plan);
}

kq::ExecOptions stream_options(int k, std::size_t block_size) {
  kq::ExecOptions o;
  o.mode = kq::ExecMode::kStream;
  o.parallelism = k;
  o.block_size = block_size;
  return o;
}

// ---------------------------------------------------- shard eligibility --

TEST(ShardPlan, LowerPlanMarksShardableStages) {
  auto stages = compile_stages("tr A-Z a-z | sort -u | wc -l");
  ASSERT_EQ(stages.size(), 3u);
  // tr: parallel per-record with a concat combiner -> shardable.
  EXPECT_TRUE(stages[0].shardable);
  // sort -u: parallel window command (the distinct set is the bounded
  // window) with a merge combiner -> shardable.
  EXPECT_TRUE(stages[1].shardable);
  // wc -l: parallel per-record fold -> shardable.
  EXPECT_TRUE(stages[2].shardable);

  // Plain sort declares Streamability::kNone — its state is the whole
  // input, so it keeps the whole-slice worker path.
  auto whole = compile_stages("tr A-Z a-z | sort | wc -l");
  ASSERT_EQ(whole.size(), 3u);
  EXPECT_TRUE(whole[0].shardable);
  EXPECT_FALSE(whole[1].shardable);
  EXPECT_TRUE(whole[2].shardable);

  // head: prefix-bounded — early exit beats data parallelism, by design
  // never sharded.
  auto prefix = compile_stages("grep line | head -n 10");
  ASSERT_EQ(prefix.size(), 2u);
  EXPECT_TRUE(prefix[0].shardable);
  EXPECT_FALSE(prefix[1].shardable);
}

TEST(ShardPlan, SequentialAndUnknownStagesAreNotShardable) {
  auto stages = compile_stages("frobnicate | tail -n 3");
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_FALSE(stages[0].shardable);  // unknown command, sequential
  EXPECT_FALSE(stages[1].shardable);  // sequential window
}

// ------------------------------------------------------ sharded telemetry --

TEST(ShardDataflow, EligibleSegmentRunsShardedWithSliceTelemetry) {
  auto stages = compile_stages("tr a-z A-Z | grep A");
  std::string input;
  for (int i = 0; i < 4000; ++i)
    input += "alpha beta gamma line " + std::to_string(i) + "\n";

  kq::ExecOptions options = stream_options(4, 2048);
  options.stats = true;
  kq::Executor executor(options);
  kq::ExecResult r = executor.run_collect(stages, input);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.batch_fallback);
  EXPECT_EQ(r.output, exec::run_serial(stages, input).output);
  ASSERT_EQ(r.nodes.size(), 1u);  // fused into one parallel segment
  EXPECT_TRUE(r.nodes[0].sharded);
  EXPECT_GT(r.nodes[0].shard_slice_bytes, 0u);
  EXPECT_GT(r.nodes[0].shard_slices, 0u);
  EXPECT_GT(r.nodes[0].worker_busy_ns, 0u);
}

TEST(ShardDataflow, ShardSliceOverrideIsHonored) {
  auto stages = compile_stages("tr a-z A-Z");
  std::string input;
  for (int i = 0; i < 2000; ++i) input += "line number " + std::to_string(i) + "\n";

  kq::ExecOptions options = stream_options(2, 1024);
  options.shard_slice = 8192;
  options.stats = true;
  kq::Executor executor(options);
  kq::ExecResult r = executor.run_collect(stages, input);
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.nodes.size(), 1u);
  EXPECT_TRUE(r.nodes[0].sharded);
  EXPECT_EQ(r.nodes[0].shard_slice_bytes, 8192u);
  EXPECT_EQ(r.output, exec::run_serial(stages, input).output);
}

// ---------------------------------------------------- forced-spill shards --

TEST(ShardDataflow, ForcedSpillShardedSortMatchesSerial) {
  // sort -u is the spillable *and* shardable sort form: the distinct set
  // is its window, and when that window outgrows the spill threshold the
  // sharded node drains it as sorted runs for the external merge.
  auto stages = compile_stages("tr A-Z a-z | sort -u");
  std::string input;
  for (int i = 0; i < 3000; ++i)
    input += "Word-" + std::to_string((i * 7919) % 997) + " Tail-" +
             std::to_string(i) + "\n";

  kq::ExecOptions options = stream_options(4, 1024);
  options.spill_threshold = 2048;  // force the merge node onto disk
  options.stats = true;
  kq::Executor executor(options);
  kq::ExecResult r = executor.run_collect(stages, input);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.batch_fallback);
  EXPECT_EQ(r.output, exec::run_serial(stages, input).output);
  EXPECT_GT(r.spilled_bytes, 0u);
  bool any_sharded_spill = false;
  for (const stream::NodeMetrics& n : r.nodes)
    if (n.sharded && n.spill_runs > 0) any_sharded_spill = true;
  EXPECT_TRUE(any_sharded_spill)
      << "expected a sharded node with sorted spill runs";
}

// ------------------------------------------------- downstream-close early --

TEST(ShardDataflow, DownstreamHeadCancelsInflightShards) {
  auto stages = compile_stages("grep line | head -n 10");
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_TRUE(stages[0].shardable);
  std::string input;
  for (int i = 0; i < 200000; ++i)
    input += "line " + std::to_string(i) + " padding padding padding\n";

  kq::ExecOptions options = stream_options(4, 4096);
  kq::Executor executor(options);
  kq::ExecResult r = executor.run_collect(stages, input);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.output, exec::run_serial(stages, input).output);
  // head satisfied after 10 records: upstream cancellation must stop the
  // reader long before the ~6 MiB input drains.
  EXPECT_LT(r.bytes_read, input.size() / 4)
      << "early exit did not cancel in-flight shards";
}

// ------------------------------------------------ catalog cross-validation --

// Every catalog pipeline, streamed through the sharded runtime at k in
// {2, 4, 8} with small blocks (so parallel segments see many slices), must
// stay byte-identical to the serial oracle.
class ShardCatalogCrossval
    : public ::testing::TestWithParam<const bench::Script*> {};

TEST_P(ShardCatalogCrossval, ShardedStreamingMatchesSerial) {
  const bench::Script& script = *GetParam();
  std::string input = bench::prepare_input(script, 24 * 1024, 7, shared_fs());

  for (const std::string& pipeline : script.pipelines) {
    auto parsed = compile::parse_pipeline(pipeline);
    ASSERT_TRUE(parsed.has_value()) << pipeline;
    compile::Plan plan =
        compile::compile_pipeline(*parsed, shared_cache(), {}, &shared_fs());
    compile::eliminate_intermediate_combiners(plan);
    auto stages = compile::lower_plan(plan);

    std::string serial = exec::run_serial(stages, input).output;
    for (int k : {2, 4, 8}) {
      kq::Executor executor(stream_options(k, 2048));
      kq::ExecResult r = executor.run_collect(stages, input);
      EXPECT_TRUE(r.ok) << pipeline << " k=" << k << ": " << r.error;
      EXPECT_FALSE(r.batch_fallback)
          << pipeline << " k=" << k << ": incremental combine bailed";
      EXPECT_EQ(r.output, serial)
          << script.suite << "/" << script.name << ": " << pipeline
          << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllScripts, ShardCatalogCrossval,
    ::testing::ValuesIn([] {
      std::vector<const bench::Script*> ptrs;
      for (const bench::Script& s : bench::all_scripts()) ptrs.push_back(&s);
      return ptrs;
    }()),
    [](const ::testing::TestParamInfo<const bench::Script*>& info) {
      std::string name = info.param->suite + "_" + info.param->name;
      std::string out;
      for (char c : name)
        out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
      return out;
    });

}  // namespace
}  // namespace kq
