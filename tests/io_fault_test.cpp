// Fault-injection tests for the I/O engine layer (src/io/). Every scenario
// is a scripted io::FaultPlan — short reads, EINTR storms, EAGAIN, hard
// ENOSPC/EIO on spill writes, cancellation landing mid-fill — replayed as
// a deterministic unit test and asserted on BOTH backends: the whole suite
// is parameterized over {poll, uring}, with the uring leg skipping (and
// logging why) only when the kernel probe fails. Fault parity is the
// backend-equivalence contract: the seam sits inside kq::io, so a scenario
// scripted once must produce byte-identical output or the same coded
// [KQ-IO] error regardless of which engine ran it.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "compile/optimize.h"
#include "compile/plan.h"
#include "exec/executor.h"
#include "exec/runner.h"
#include "io/engine.h"
#include "io/fault.h"
#include "stream/block_reader.h"
#include "stream/spill.h"
#include "unixcmd/registry.h"

namespace kq {
namespace {

synth::SynthesisCache& shared_cache() {
  static synth::SynthesisCache c;
  return c;
}

std::vector<exec::ExecStage> compile_stages(const std::string& pipeline) {
  auto parsed = compile::parse_pipeline(pipeline);
  EXPECT_TRUE(parsed.has_value()) << pipeline;
  compile::Plan plan = compile::compile_pipeline(*parsed, shared_cache(), {});
  compile::rewrite_bounded_windows(plan);
  compile::eliminate_intermediate_combiners(plan);
  return compile::lower_plan(plan);
}

// An unlinked temp file pre-loaded with `content`, rewound for reading.
class TempInput {
 public:
  explicit TempInput(const std::string& content) {
    char path[] = "/tmp/kq-io-fault-XXXXXX";
    fd_ = ::mkstemp(path);
    EXPECT_GE(fd_, 0);
    ::unlink(path);
    EXPECT_EQ(::write(fd_, content.data(), content.size()),
              static_cast<ssize_t>(content.size()));
    EXPECT_EQ(::lseek(fd_, 0, SEEK_SET), 0);
  }
  ~TempInput() {
    if (fd_ >= 0) ::close(fd_);
  }
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

std::string lines(int n) {
  std::string out;
  for (int i = 0; i < n; ++i)
    out += "record-" + std::to_string(i * 7919 % 101) + "-" +
           std::to_string(i) + "\n";
  return out;
}

// Drains a BlockReader, concatenating every delivered block.
std::string drain(stream::BlockReader& reader) {
  std::string out;
  while (auto block = reader.next()) out += *block;
  return out;
}

io::Fault fault(io::FaultOp op, io::Fault::Kind kind, std::size_t at,
                std::size_t repeat = 1, std::size_t cap = 0, int err = 0) {
  io::Fault f;
  f.op = op;
  f.kind = kind;
  f.at = at;
  f.repeat = repeat;
  f.cap = cap;
  f.err = err;
  return f;
}

class IoFaultTest : public ::testing::TestWithParam<io::Backend> {
 protected:
  void SetUp() override {
    if (GetParam() == io::Backend::kUring && !io::uring_supported())
      GTEST_SKIP() << "io_uring unavailable on this kernel "
                      "(io_uring_setup probe failed); skipping uring leg";
  }

  io::IoOptions opts(io::FaultPlan* plan) const {
    io::IoOptions o;
    o.backend = GetParam();
    o.faults = plan;
    return o;
  }
};

// ------------------------------------------------------- source failpoints --

TEST_P(IoFaultTest, ShortReadsDeliverByteIdenticalStream) {
  const std::string content = lines(400);
  TempInput input(content);
  io::FaultPlan plan;
  // Clamp the first 8 source reads to a few bytes each: blocks must still
  // realign on record boundaries and nothing may be dropped or duplicated.
  plan.add(fault(io::FaultOp::kSourceRead, io::Fault::Kind::kShortOp,
            /*at=*/0, /*repeat=*/8, /*cap=*/5));
  auto engine = io::make_engine(opts(&plan));
  EXPECT_STREQ(engine->name(), io::backend_name(GetParam()));
  stream::BlockReader reader(input.fd(), engine.get(), {/*block_size=*/64});
  EXPECT_EQ(drain(reader), content);
  EXPECT_EQ(reader.error(), 0);
  EXPECT_EQ(plan.fired(), 8u);
}

TEST_P(IoFaultTest, EintrStormIsInvisibleToTheStream) {
  const std::string content = lines(100);
  TempInput input(content);
  io::FaultPlan plan;
  // 50 consecutive EINTRs before the first byte, then another burst mid
  // stream: both must be retried without surfacing an error.
  plan.add(fault(io::FaultOp::kSourceRead, io::Fault::Kind::kEintr,
            /*at=*/0, /*repeat=*/50));
  plan.add(fault(io::FaultOp::kSourceRead, io::Fault::Kind::kEintr,
            /*at=*/55, /*repeat=*/10));
  auto engine = io::make_engine(opts(&plan));
  stream::BlockReader reader(input.fd(), engine.get(), {/*block_size=*/128});
  EXPECT_EQ(drain(reader), content);
  EXPECT_EQ(reader.error(), 0);
  EXPECT_GE(plan.fired(), 50u);
}

TEST_P(IoFaultTest, EagainRetriesWithoutDataLoss) {
  const std::string content = lines(60);
  TempInput input(content);
  io::FaultPlan plan;
  plan.add(fault(io::FaultOp::kSourceRead, io::Fault::Kind::kEagain,
            /*at=*/1, /*repeat=*/4));
  auto engine = io::make_engine(opts(&plan));
  stream::BlockReader reader(input.fd(), engine.get(), {/*block_size=*/64});
  EXPECT_EQ(drain(reader), content);
  EXPECT_EQ(reader.error(), 0);
  EXPECT_EQ(plan.fired(), 4u);
}

TEST_P(IoFaultTest, HardReadErrorSurfacesErrnoAndTruncates) {
  const std::string content = lines(200);
  TempInput input(content);
  io::FaultPlan plan;
  plan.add(fault(io::FaultOp::kSourceRead, io::Fault::Kind::kErrno,
            /*at=*/2, /*repeat=*/1, /*cap=*/0, /*err=*/EIO));
  auto engine = io::make_engine(opts(&plan));
  stream::BlockReader reader(input.fd(), engine.get(), {/*block_size=*/64});
  std::string got = drain(reader);
  EXPECT_EQ(reader.error(), EIO);
  // The delivered stream is a strict prefix of the input, never garbage.
  EXPECT_LT(got.size(), content.size());
  EXPECT_EQ(content.compare(0, got.size(), got), 0);
}

TEST_P(IoFaultTest, CancellationLandsMidFillAsCleanEof) {
  const std::string content = lines(500);
  TempInput input(content);
  io::FaultPlan plan;
  auto engine = io::make_engine(opts(&plan));
  stream::BlockReader reader(input.fd(), engine.get(), {/*block_size=*/64});
  // The 4th read attempt cancels the reader from "another thread" (the
  // hook runs synchronously, which pins the cancellation to an exact
  // attempt index — the replayable version of a racing downstream close).
  io::Fault cancel;
  cancel.op = io::FaultOp::kSourceRead;
  cancel.kind = io::Fault::Kind::kCancel;
  cancel.at = 3;
  cancel.hook = [&reader] { reader.cancel(); };
  plan.add(std::move(cancel));
  std::string got = drain(reader);
  EXPECT_EQ(reader.error(), 0) << "cancellation is a clean EOF, not an error";
  EXPECT_TRUE(reader.cancelled());
  EXPECT_LT(got.size(), content.size());
  EXPECT_EQ(content.compare(0, got.size(), got), 0);
  EXPECT_EQ(plan.fired(), 1u);
}

// -------------------------------------------------------- spill failpoints --

TEST_P(IoFaultTest, SpillWriteEnospcSurfacesCodedError) {
  io::FaultPlan plan;
  plan.add(fault(io::FaultOp::kSpillWrite, io::Fault::Kind::kErrno,
            /*at=*/0, /*repeat=*/1, /*cap=*/0, /*err=*/ENOSPC));
  stream::SpillFile file(opts(&plan));
  ASSERT_TRUE(file.valid());
  EXPECT_FALSE(file.append("doomed bytes\n"));
  EXPECT_NE(file.error().find("[KQ-IO]"), std::string::npos) << file.error();
  EXPECT_NE(file.error().find("ENOSPC"), std::string::npos) << file.error();
  EXPECT_EQ(plan.fired(), 1u);
}

TEST_P(IoFaultTest, PartialWriteThenEnospcNeverTruncatesSilently) {
  io::FaultPlan plan;
  // First chunk lands short (3 bytes), the continuation hits ENOSPC: the
  // run must surface the coded error — the historical bug was ignoring the
  // partial write(2) result and recording a truncated run as complete.
  plan.add(fault(io::FaultOp::kSpillWrite, io::Fault::Kind::kShortOp,
            /*at=*/0, /*repeat=*/1, /*cap=*/3));
  plan.add(fault(io::FaultOp::kSpillWrite, io::Fault::Kind::kErrno,
            /*at=*/1, /*repeat=*/1, /*cap=*/0, /*err=*/ENOSPC));
  stream::SpillFile file(opts(&plan));
  ASSERT_TRUE(file.valid());
  bool ok = file.append("twelve bytes\n");
  if (ok) {
    // The uring engine may queue the faulted chunks and surface the
    // completion error at the flush barrier instead — either way the
    // error is coded, never swallowed.
    char buf[13];
    ok = file.read_exact(0, buf, sizeof buf);
  }
  EXPECT_FALSE(ok);
  EXPECT_NE(file.error().find("[KQ-IO]"), std::string::npos) << file.error();
  EXPECT_EQ(plan.fired(), 2u);
}

TEST_P(IoFaultTest, ShortWritesRoundTripByteIdentical) {
  io::FaultPlan plan;
  // Every one of the first 20 write attempts is clamped to 7 bytes: the
  // engines' continuation paths must reassemble the exact byte sequence.
  plan.add(fault(io::FaultOp::kSpillWrite, io::Fault::Kind::kShortOp,
            /*at=*/0, /*repeat=*/20, /*cap=*/7));
  stream::SpillFile file(opts(&plan));
  ASSERT_TRUE(file.valid());
  const std::string payload = lines(40);
  ASSERT_TRUE(file.append(payload)) << file.error();
  EXPECT_EQ(file.size(), payload.size());
  std::string back(payload.size(), '\0');
  ASSERT_TRUE(file.read_exact(0, back.data(), back.size())) << file.error();
  EXPECT_EQ(back, payload);
  EXPECT_GT(plan.fired(), 0u);
}

TEST_P(IoFaultTest, SpillReadEioSurfacesCodedError) {
  io::FaultPlan plan;
  stream::SpillFile file(opts(&plan));
  ASSERT_TRUE(file.valid());
  ASSERT_TRUE(file.append("some spilled bytes\n"));
  plan.add(fault(io::FaultOp::kSpillRead, io::Fault::Kind::kErrno,
            /*at=*/0, /*repeat=*/1, /*cap=*/0, /*err=*/EIO));
  char buf[8];
  EXPECT_FALSE(file.read_exact(0, buf, sizeof buf));
  EXPECT_NE(file.error().find("[KQ-IO]"), std::string::npos) << file.error();
  EXPECT_NE(file.error().find("EIO"), std::string::npos) << file.error();
}

TEST_P(IoFaultTest, SpillReadEintrRetriesToFullRead) {
  io::FaultPlan plan;
  stream::SpillFile file(opts(&plan));
  ASSERT_TRUE(file.valid());
  const std::string payload = lines(30);
  ASSERT_TRUE(file.append(payload));
  plan.add(fault(io::FaultOp::kSpillRead, io::Fault::Kind::kEintr,
            /*at=*/0, /*repeat=*/6));
  std::string back(payload.size(), '\0');
  ASSERT_TRUE(file.read_exact(0, back.data(), back.size())) << file.error();
  EXPECT_EQ(back, payload);
  EXPECT_EQ(plan.fired(), 6u);
}

TEST_P(IoFaultTest, RawSpoolSurvivesShortWriteStorm) {
  io::FaultPlan plan;
  plan.add(fault(io::FaultOp::kSpillWrite, io::Fault::Kind::kShortOp,
            /*at=*/0, /*repeat=*/64, /*cap=*/11));
  plan.add(fault(io::FaultOp::kSpillWrite, io::Fault::Kind::kEintr,
            /*at=*/64, /*repeat=*/8));
  stream::RawSpool spool(/*threshold=*/256, nullptr, opts(&plan));
  const std::string payload = lines(120);
  for (std::size_t i = 0; i < payload.size(); i += 100)
    ASSERT_TRUE(spool.add(payload.substr(i, 100))) << spool.error();
  EXPECT_TRUE(spool.spilled());
  std::string back;
  ASSERT_TRUE(spool.take(&back)) << spool.error();
  EXPECT_EQ(back, payload);
  EXPECT_GT(plan.fired(), 0u);
}

TEST_P(IoFaultTest, SpillMergerEnospcFailsCleanly) {
  io::FaultPlan plan;
  plan.add(fault(io::FaultOp::kSpillWrite, io::Fault::Kind::kErrno,
            /*at=*/0, /*repeat=*/1, /*cap=*/0, /*err=*/ENOSPC));
  auto spec = cmd::SortSpec::parse({});
  ASSERT_TRUE(spec.has_value());
  stream::SpillMerger merger(std::make_shared<const cmd::SortSpec>(*spec),
                             stream::SpillMerger::Input::kUnsortedBlocks,
                             /*threshold=*/64, nullptr, opts(&plan));
  bool ok = true;
  for (int i = 0; i < 64 && ok; ++i)
    ok = merger.add("zw-" + std::to_string(i) + "\n");
  if (ok)
    ok = merger.finish([](std::string&&) { return true; }, 4096);
  EXPECT_FALSE(ok);
  EXPECT_NE(merger.error().find("[KQ-IO]"), std::string::npos)
      << merger.error();
}

// --------------------------------------------------- whole-pipeline faults --

TEST_P(IoFaultTest, PipelineSurvivesSourceFaultStorm) {
  const std::string content = lines(3000);
  const std::string expect =
      exec::run_serial(compile_stages("sort | uniq -c"), content).output;

  TempInput input(content);
  io::FaultPlan plan;
  plan.add(fault(io::FaultOp::kSourceRead, io::Fault::Kind::kEintr,
            /*at=*/0, /*repeat=*/20));
  plan.add(fault(io::FaultOp::kSourceRead, io::Fault::Kind::kShortOp,
            /*at=*/25, /*repeat=*/10, /*cap=*/13));
  plan.add(fault(io::FaultOp::kSpillWrite, io::Fault::Kind::kShortOp,
            /*at=*/0, /*repeat=*/16, /*cap=*/37));

  kq::ExecOptions options;
  options.mode = kq::ExecMode::kStream;
  options.parallelism = 2;
  options.block_size = 1024;
  options.spill_threshold = 4096;  // force the spill path under the faults
  options.io_backend = GetParam();
  options.fault_plan = &plan;
  kq::Executor executor(options);
  kq::ExecResult result = executor.run_collect(
      compile_stages("sort | uniq -c"), kq::Source::from_fd(input.fd()));
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.output, expect);
  EXPECT_EQ(result.io_backend, io::backend_name(GetParam()));
  EXPECT_GT(plan.fired(), 0u);
}

TEST_P(IoFaultTest, PipelineEnospcFailsWithCodedErrorNotTruncation) {
  const std::string content = lines(3000);
  TempInput input(content);
  io::FaultPlan plan;
  plan.add(fault(io::FaultOp::kSpillWrite, io::Fault::Kind::kErrno,
            /*at=*/2, /*repeat=*/1, /*cap=*/0, /*err=*/ENOSPC));

  kq::ExecOptions options;
  options.mode = kq::ExecMode::kStream;
  options.parallelism = 2;
  options.block_size = 1024;
  options.spill_threshold = 2048;
  options.io_backend = GetParam();
  options.fault_plan = &plan;
  kq::Executor executor(options);
  kq::ExecResult result = executor.run_collect(
      compile_stages("sort"), kq::Source::from_fd(input.fd()));
  ASSERT_FALSE(result.ok)
      << "a spill device running out of space must fail the run, not "
         "silently emit a truncated sort";
  EXPECT_NE(result.error.find("[KQ-IO]"), std::string::npos) << result.error;
  EXPECT_EQ(plan.fired(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Backends, IoFaultTest,
                         ::testing::Values(io::Backend::kPoll,
                                           io::Backend::kUring),
                         [](const auto& info) {
                           return std::string(io::backend_name(info.param));
                         });

}  // namespace
}  // namespace kq
