// Tests for the BRE-subset engine, covering every pattern in the benchmark
// suite plus the generator used for preprocessing dictionaries.

#include <gtest/gtest.h>

#include "regex/regex.h"

namespace kq::regex {
namespace {

bool matches(const std::string& pattern, const std::string& line) {
  auto re = Regex::compile(pattern);
  EXPECT_TRUE(re.has_value()) << "pattern failed to compile: " << pattern;
  return re && re->search(line);
}

TEST(Compile, RejectsBadPatterns) {
  EXPECT_FALSE(Regex::compile("[abc").has_value());
  EXPECT_FALSE(Regex::compile("\\(x").has_value());
  EXPECT_FALSE(Regex::compile("a\\").has_value());
}

TEST(Match, Literals) {
  EXPECT_TRUE(matches("1969", "in 1969 unix"));
  EXPECT_FALSE(matches("1969", "in 1970 unix"));
  EXPECT_TRUE(matches("AT&T", "from AT&T labs"));
}

TEST(Match, Dot) {
  EXPECT_TRUE(matches("light.light", "lightXlight"));
  EXPECT_FALSE(matches("light.light", "lightlight"));
}

TEST(Match, Star) {
  EXPECT_TRUE(matches("light.*light", "light and moonlight"));
  EXPECT_TRUE(matches("ab*c", "ac"));
  EXPECT_TRUE(matches("ab*c", "abbbc"));
  EXPECT_FALSE(matches("ab*c", "adc"));
}

TEST(Match, Anchors) {
  EXPECT_TRUE(matches("^....$", "word"));
  EXPECT_FALSE(matches("^....$", "words"));
  EXPECT_TRUE(matches("^0$", "0"));
  EXPECT_FALSE(matches("^0$", "10"));
  // '$' not at the end is a literal.
  EXPECT_TRUE(matches("a$b", "a$b"));
}

TEST(Match, BracketExpressions) {
  EXPECT_TRUE(matches("[KQRBN]", "Qxe5"));
  EXPECT_FALSE(matches("[KQRBN]", "exd5"));
  EXPECT_TRUE(matches("^[A-Z]", "Word"));
  EXPECT_FALSE(matches("^[A-Z]", "word"));
  EXPECT_TRUE(matches("[a-z]", "X y"));
}

TEST(Match, NegatedClass) {
  EXPECT_TRUE(matches("^[^aeiou]*$", "rhythm"));
  EXPECT_FALSE(matches("^[^aeiou]*$", "vowel"));
}

TEST(Match, VowelSandwich) {
  // poets 1syllable_words: ^[^aeiou]*[aeiou][^aeiou]*$
  const std::string p = "^[^aeiou]*[aeiou][^aeiou]*$";
  EXPECT_TRUE(matches(p, "cat"));
  EXPECT_TRUE(matches(p, "a"));
  EXPECT_FALSE(matches(p, "beer"));
  EXPECT_FALSE(matches(p, "audio"));
}

TEST(Match, EscapedDot) {
  EXPECT_TRUE(matches("\\.", "a.b"));
  EXPECT_FALSE(matches("\\.", "ab"));
}

TEST(Match, NamedClasses) {
  EXPECT_TRUE(matches("[[:digit:]]", "a1"));
  EXPECT_FALSE(matches("[[:digit:]]", "abc"));
  EXPECT_TRUE(matches("^[[:upper:]][[:lower:]]*$", "Hello"));
}

TEST(Match, Backreferences) {
  // oneliners nfa-regex: \(.\).*\1\(.\).*\2\(.\).*\3\(.\).*\4
  // The repeats are sequential: c1 ... c1 c2 ... c2 (verified against GNU
  // grep: "aabb" matches, "abab" does not).
  const std::string p = "\\(.\\).*\\1\\(.\\).*\\2";
  EXPECT_TRUE(matches(p, "aabb"));
  EXPECT_TRUE(matches(p, "xa_x_aybyb"));
  EXPECT_FALSE(matches(p, "abab"));
  EXPECT_FALSE(matches(p, "abcd"));
}

TEST(Match, FourfoldBackreference) {
  const std::string p =
      "\\(.\\).*\\1\\(.\\).*\\2\\(.\\).*\\3\\(.\\).*\\4";
  EXPECT_TRUE(matches(p, "aabbccdd"));
  EXPECT_TRUE(matches(p, "xxyyzzww"));
  EXPECT_FALSE(matches(p, "abcdabcd"));
  EXPECT_FALSE(matches(p, "abcdefgh"));
}

TEST(Match, GnuExtensions) {
  EXPECT_TRUE(matches("ab\\+c", "abbc"));
  EXPECT_FALSE(matches("ab\\+c", "ac"));
  EXPECT_TRUE(matches("ab\\?c", "ac"));
  EXPECT_TRUE(matches("cat\\|dog", "hotdog"));
  EXPECT_FALSE(matches("cat\\|dog", "bird"));
}

TEST(Find, ReportsLeftmostMatch) {
  auto re = Regex::compile("b+*");  // '*' after '+' literal: stays literal
  ASSERT_TRUE(re.has_value());
  auto re2 = Regex::compile("ab");
  auto m = re2->find("xxabyab");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->begin, 2u);
  EXPECT_EQ(m->end, 4u);
}

TEST(Find, GreedyStar) {
  auto re = Regex::compile("a.*b");
  auto m = re->find("aXbYb");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->begin, 0u);
  EXPECT_EQ(m->end, 5u);  // greedy reaches the last b
}

TEST(Replace, FirstOnly) {
  auto re = Regex::compile("o");
  EXPECT_EQ(re->replace("foo", "0"), "f0o");
}

TEST(Replace, Global) {
  auto re = Regex::compile("o");
  EXPECT_EQ(re->replace("foo", "0", /*global=*/true), "f00");
}

TEST(Replace, BackrefInReplacement) {
  // analytics-mts: sed 's/T\(..\):..:../,\1/'
  auto re = Regex::compile("T\\(..\\):..:..");
  EXPECT_EQ(re->replace("2020-01-05T08:31:22,v1", ",\\1"),
            "2020-01-05,08,v1");
}

TEST(Replace, WholeMatchAmpersand) {
  auto re = Regex::compile("ab");
  EXPECT_EQ(re->replace("ab", "[&]"), "[ab]");
}

TEST(Replace, EmptyMatchAtLineStart) {
  // sed "s;^;PREFIX;" prepends to the line.
  auto re = Regex::compile("^");
  EXPECT_EQ(re->replace("file.txt", "dir/"), "dir/file.txt");
}

TEST(Replace, DollarAppends) {
  // unix50: sed s/$/0s/ appends to each line.
  auto re = Regex::compile("$");
  EXPECT_EQ(re->replace("196", "0s"), "1960s");
}

TEST(Generator, SamplesMatchPattern) {
  auto re = Regex::compile("light.light");
  auto samples = re->sample_matches(6, 42);
  ASSERT_FALSE(samples.empty());
  for (const std::string& s : samples) {
    EXPECT_TRUE(re->search(s)) << s;
    EXPECT_EQ(s.size(), 11u);
  }
}

TEST(Generator, SamplesDistinct) {
  auto re = Regex::compile("[a-z][a-z][a-z]");
  auto samples = re->sample_matches(8, 7);
  for (std::size_t i = 0; i < samples.size(); ++i)
    for (std::size_t j = i + 1; j < samples.size(); ++j)
      EXPECT_NE(samples[i], samples[j]);
}

TEST(Generator, HandlesBackrefs) {
  auto re = Regex::compile("\\(ab\\)x\\1");
  auto samples = re->sample_matches(2, 3);
  ASSERT_FALSE(samples.empty());
  EXPECT_EQ(samples[0], "abxab");
}

TEST(Generator, LiteralPattern) {
  auto re = Regex::compile("AT&T");
  auto samples = re->sample_matches(3, 1);
  ASSERT_EQ(samples.size(), 1u);  // only one distinct match exists
  EXPECT_EQ(samples[0], "AT&T");
}

}  // namespace
}  // namespace kq::regex
