// Property tests for the paper's theorems:
//
//  * Theorems 1/2 (RecOp): with sufficient observations, every surviving
//    RecOp candidate is equivalent-by-intersection to the correct
//    combiner — checked extensionally on held-out observation streams.
//  * Theorems 3/4 (StructOp): same for table-shaped commands.
//  * Theorem 5: eliminating a concat combiner preserves the final output.
//  * Proposition B.5: plausible sets grow monotonically with the size cap.

#include <gtest/gtest.h>

#include <random>

#include "dsl/enumerate.h"
#include "exec/splitter.h"
#include "shape/generate.h"
#include "synth/filter.h"
#include "synth/synthesize.h"
#include "text/shellwords.h"
#include "unixcmd/registry.h"

namespace kq {
namespace {

std::vector<synth::Observation> observe_random(const cmd::Command& f,
                                               int count,
                                               std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<shape::InputPair> pairs;
  for (int i = 0; i < count; ++i) {
    shape::Shape s = shape::random_shape(rng);
    pairs.push_back(shape::generate_pair(s, {}, rng));
  }
  return synth::observe_all(f, pairs);
}

struct TheoremCase {
  const char* command;
  // The representative correct combiner (Definition B.11) expected to
  // survive filtering.
  const char* representative;
};

class SurvivorEquivalence : public ::testing::TestWithParam<TheoremCase> {};

// For every surviving candidate g', and fresh observations with operands
// in both domains, g' and the correct representative agree (the
// ≡∩ conclusion of Theorems 2 and 4, checked extensionally).
TEST_P(SurvivorEquivalence, SurvivorsAgreeOnHeldOutData) {
  const TheoremCase& tc = GetParam();
  auto argv = text::shell_split(tc.command);
  cmd::CommandPtr f = cmd::make_command(*argv);
  ASSERT_NE(f, nullptr);
  dsl::EvalContext ctx{f.get()};

  synth::SynthesisResult result = synth::synthesize(*f, *argv);
  ASSERT_TRUE(result.success) << tc.command;

  bool found_representative = false;
  for (const auto& g : result.plausible)
    if (dsl::to_string(g) == tc.representative) found_representative = true;
  ASSERT_TRUE(found_representative)
      << tc.command << " lost " << tc.representative;

  // Held-out data: the survivors must agree with each other wherever
  // both are defined.
  auto held_out = observe_random(*f, 30, 0xfeed);
  ASSERT_FALSE(held_out.empty());
  for (const auto& obs : held_out) {
    std::optional<std::string> reference;
    for (const auto& g : result.plausible) {
      auto v = dsl::eval(g, obs.y1, obs.y2, ctx);
      if (!v) continue;  // outside this candidate's domain
      if (!reference) {
        reference = v;
        EXPECT_EQ(*v, obs.y12) << dsl::to_string(g) << " on " << tc.command;
      } else {
        EXPECT_EQ(*v, *reference)
            << dsl::to_string(g) << " disagrees on " << tc.command;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Theorems2And4, SurvivorEquivalence,
    ::testing::Values(
        TheoremCase{"wc -l", "((back '\\n' add) a b)"},
        TheoremCase{"grep -c a", "((back '\\n' add) a b)"},
        TheoremCase{"tr A-Z a-z", "(concat a b)"},
        TheoremCase{"cut -c 1-4", "(concat a b)"},
        TheoremCase{"sed s/a/b/", "(concat a b)"},
        TheoremCase{"uniq", "((stitch first) a b)"},
        TheoremCase{"uniq -c", "((stitch2 ' ' add first) a b)"}),
    [](const ::testing::TestParamInfo<TheoremCase>& info) {
      std::string out;
      for (char c : std::string(info.param.command))
        out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
      return out + "_" + std::to_string(info.index);
    });

// Theorem 5: for a concat-combined stage f1 feeding f2, combining after f2
// equals combining between the stages.
TEST(Theorem5, EliminationPreservesOutputs) {
  cmd::CommandPtr f1 = cmd::make_command_line("tr A-Z a-z");
  cmd::CommandPtr f2 = cmd::make_command_line("grep -c a");
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 40; ++trial) {
    shape::Shape s = shape::random_shape(rng);
    std::string x = shape::generate_stream(s, {}, rng);
    auto chunks = exec::split_stream(x, 4);

    // With intermediate combiner: concat f1 outputs, then run f2 split
    // again... the unoptimized pipeline runs f2 on a fresh split of the
    // combined stream. The optimized pipeline feeds f1's substreams
    // directly to f2. Both must equal serial composition after f2's
    // combiner.
    std::string serial = f2->run(f1->run(x));

    std::vector<std::string> mid;
    for (auto c : chunks) mid.push_back(f1->run(c));
    // Optimized: no combine between stages.
    dsl::Combiner back_add = dsl::combiner_back_add('\n');
    std::vector<std::string> counts;
    for (const auto& m : mid) counts.push_back(f2->run(m));
    auto combined = dsl::combine_k(back_add, counts);
    ASSERT_TRUE(combined.has_value());
    EXPECT_EQ(*combined, serial);
  }
}

// Proposition B.5: P_k1(Y) ⊆ P_k2(Y) for k1 < k2.
TEST(PropositionB5, PlausibleSetsMonotoneInSizeCap) {
  cmd::CommandPtr f = cmd::make_command_line("wc -l");
  auto observations = observe_random(*f, 10, 0xabc);
  dsl::EvalContext ctx{f.get()};
  std::size_t previous = 0;
  for (int max_ops : {1, 2, 3, 4, 5}) {
    dsl::SpaceSpec spec;
    spec.delims = {'\n'};
    spec.max_ops = max_ops;
    auto space = dsl::enumerate_candidates(spec);
    auto surviving =
        synth::filter_candidates(space.candidates, observations, ctx);
    EXPECT_GE(surviving.size(), previous) << "max_ops=" << max_ops;
    previous = surviving.size();
  }
}

// The divide-and-conquer equation holds for the synthesized combiner on
// k-way splits (not just pairs), exercising the §3.5 generalization.
class KWaySweep : public ::testing::TestWithParam<int> {};

TEST_P(KWaySweep, DivideAndConquerAtWidthK) {
  int k = GetParam();
  const char* kCommands[] = {"wc -l", "tr A-Z a-z", "sort", "uniq",
                             "uniq -c", "sort -rn"};
  std::mt19937_64 rng(static_cast<std::uint64_t>(k) * 77);
  for (const char* line : kCommands) {
    auto argv = text::shell_split(line);
    cmd::CommandPtr f = cmd::make_command(*argv);
    synth::SynthesisResult r = synth::synthesize(*f, *argv);
    ASSERT_TRUE(r.success) << line;
    dsl::EvalContext ctx{f.get()};
    for (int trial = 0; trial < 5; ++trial) {
      shape::Shape s = shape::random_shape(rng);
      s.lines.min_count = std::max(s.lines.min_count, k);
      s.lines.max_count = std::max(s.lines.max_count, 4 * k);
      std::string x = shape::generate_stream(s, {}, rng);
      auto chunks = exec::split_stream(x, k);
      std::vector<std::string> outputs;
      for (auto c : chunks) outputs.push_back(f->run(c));
      auto combined = r.combiner.apply_k(outputs, ctx);
      ASSERT_TRUE(combined.has_value()) << line << " k=" << k;
      EXPECT_EQ(*combined, f->run(x)) << line << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, KWaySweep, ::testing::Values(2, 3, 5, 8, 16),
                         [](const ::testing::TestParamInfo<int>& info) {
                           // Append form: GCC PR 105329 (-Wrestrict).
                           std::string name = "k";
                           name += std::to_string(info.param);
                           return name;
                         });

}  // namespace
}  // namespace kq
