// Property tests for the paper's theorems:
//
//  * Theorems 1/2 (RecOp): with sufficient observations, every surviving
//    RecOp candidate is equivalent-by-intersection to the correct
//    combiner — checked extensionally on held-out observation streams.
//  * Theorems 3/4 (StructOp): same for table-shaped commands.
//  * Theorem 5: eliminating a concat combiner preserves the final output.
//  * Proposition B.5: plausible sets grow monotonically with the size cap.
//
// Plus an I/O-layer property rider: randomized record lengths straddling
// the block size and max_record_size caps, round-tripped through the spill
// path on both engine backends (src/io/) — byte identity and the EMSGSIZE
// contract must not depend on which syscall strategy moved the bytes.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <random>

#include "dsl/enumerate.h"
#include "exec/splitter.h"
#include "io/engine.h"
#include "shape/generate.h"
#include "stream/block_reader.h"
#include "stream/spill.h"
#include "synth/filter.h"
#include "synth/synthesize.h"
#include "text/shellwords.h"
#include "unixcmd/registry.h"

namespace kq {
namespace {

std::vector<synth::Observation> observe_random(const cmd::Command& f,
                                               int count,
                                               std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<shape::InputPair> pairs;
  for (int i = 0; i < count; ++i) {
    shape::Shape s = shape::random_shape(rng);
    pairs.push_back(shape::generate_pair(s, {}, rng));
  }
  return synth::observe_all(f, pairs);
}

struct TheoremCase {
  const char* command;
  // The representative correct combiner (Definition B.11) expected to
  // survive filtering.
  const char* representative;
};

class SurvivorEquivalence : public ::testing::TestWithParam<TheoremCase> {};

// For every surviving candidate g', and fresh observations with operands
// in both domains, g' and the correct representative agree (the
// ≡∩ conclusion of Theorems 2 and 4, checked extensionally).
TEST_P(SurvivorEquivalence, SurvivorsAgreeOnHeldOutData) {
  const TheoremCase& tc = GetParam();
  auto argv = text::shell_split(tc.command);
  cmd::CommandPtr f = cmd::make_command(*argv);
  ASSERT_NE(f, nullptr);
  dsl::EvalContext ctx{f.get()};

  synth::SynthesisResult result = synth::synthesize(*f, *argv);
  ASSERT_TRUE(result.success) << tc.command;

  bool found_representative = false;
  for (const auto& g : result.plausible)
    if (dsl::to_string(g) == tc.representative) found_representative = true;
  ASSERT_TRUE(found_representative)
      << tc.command << " lost " << tc.representative;

  // Held-out data: the survivors must agree with each other wherever
  // both are defined.
  auto held_out = observe_random(*f, 30, 0xfeed);
  ASSERT_FALSE(held_out.empty());
  for (const auto& obs : held_out) {
    std::optional<std::string> reference;
    for (const auto& g : result.plausible) {
      auto v = dsl::eval(g, obs.y1, obs.y2, ctx);
      if (!v) continue;  // outside this candidate's domain
      if (!reference) {
        reference = v;
        EXPECT_EQ(*v, obs.y12) << dsl::to_string(g) << " on " << tc.command;
      } else {
        EXPECT_EQ(*v, *reference)
            << dsl::to_string(g) << " disagrees on " << tc.command;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Theorems2And4, SurvivorEquivalence,
    ::testing::Values(
        TheoremCase{"wc -l", "((back '\\n' add) a b)"},
        TheoremCase{"grep -c a", "((back '\\n' add) a b)"},
        TheoremCase{"tr A-Z a-z", "(concat a b)"},
        TheoremCase{"cut -c 1-4", "(concat a b)"},
        TheoremCase{"sed s/a/b/", "(concat a b)"},
        TheoremCase{"uniq", "((stitch first) a b)"},
        TheoremCase{"uniq -c", "((stitch2 ' ' add first) a b)"}),
    [](const ::testing::TestParamInfo<TheoremCase>& info) {
      std::string out;
      for (char c : std::string(info.param.command))
        out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
      return out + "_" + std::to_string(info.index);
    });

// Theorem 5: for a concat-combined stage f1 feeding f2, combining after f2
// equals combining between the stages.
TEST(Theorem5, EliminationPreservesOutputs) {
  cmd::CommandPtr f1 = cmd::make_command_line("tr A-Z a-z");
  cmd::CommandPtr f2 = cmd::make_command_line("grep -c a");
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 40; ++trial) {
    shape::Shape s = shape::random_shape(rng);
    std::string x = shape::generate_stream(s, {}, rng);
    auto chunks = exec::split_stream(x, 4);

    // With intermediate combiner: concat f1 outputs, then run f2 split
    // again... the unoptimized pipeline runs f2 on a fresh split of the
    // combined stream. The optimized pipeline feeds f1's substreams
    // directly to f2. Both must equal serial composition after f2's
    // combiner.
    std::string serial = f2->run(f1->run(x));

    std::vector<std::string> mid;
    for (auto c : chunks) mid.push_back(f1->run(c));
    // Optimized: no combine between stages.
    dsl::Combiner back_add = dsl::combiner_back_add('\n');
    std::vector<std::string> counts;
    for (const auto& m : mid) counts.push_back(f2->run(m));
    auto combined = dsl::combine_k(back_add, counts);
    ASSERT_TRUE(combined.has_value());
    EXPECT_EQ(*combined, serial);
  }
}

// Proposition B.5: P_k1(Y) ⊆ P_k2(Y) for k1 < k2.
TEST(PropositionB5, PlausibleSetsMonotoneInSizeCap) {
  cmd::CommandPtr f = cmd::make_command_line("wc -l");
  auto observations = observe_random(*f, 10, 0xabc);
  dsl::EvalContext ctx{f.get()};
  std::size_t previous = 0;
  for (int max_ops : {1, 2, 3, 4, 5}) {
    dsl::SpaceSpec spec;
    spec.delims = {'\n'};
    spec.max_ops = max_ops;
    auto space = dsl::enumerate_candidates(spec);
    auto surviving =
        synth::filter_candidates(space.candidates, observations, ctx);
    EXPECT_GE(surviving.size(), previous) << "max_ops=" << max_ops;
    previous = surviving.size();
  }
}

// The divide-and-conquer equation holds for the synthesized combiner on
// k-way splits (not just pairs), exercising the §3.5 generalization.
class KWaySweep : public ::testing::TestWithParam<int> {};

TEST_P(KWaySweep, DivideAndConquerAtWidthK) {
  int k = GetParam();
  const char* kCommands[] = {"wc -l", "tr A-Z a-z", "sort", "uniq",
                             "uniq -c", "sort -rn"};
  std::mt19937_64 rng(static_cast<std::uint64_t>(k) * 77);
  for (const char* line : kCommands) {
    auto argv = text::shell_split(line);
    cmd::CommandPtr f = cmd::make_command(*argv);
    synth::SynthesisResult r = synth::synthesize(*f, *argv);
    ASSERT_TRUE(r.success) << line;
    dsl::EvalContext ctx{f.get()};
    for (int trial = 0; trial < 5; ++trial) {
      shape::Shape s = shape::random_shape(rng);
      s.lines.min_count = std::max(s.lines.min_count, k);
      s.lines.max_count = std::max(s.lines.max_count, 4 * k);
      std::string x = shape::generate_stream(s, {}, rng);
      auto chunks = exec::split_stream(x, k);
      std::vector<std::string> outputs;
      for (auto c : chunks) outputs.push_back(f->run(c));
      auto combined = r.combiner.apply_k(outputs, ctx);
      ASSERT_TRUE(combined.has_value()) << line << " k=" << k;
      EXPECT_EQ(*combined, f->run(x)) << line << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, KWaySweep, ::testing::Values(2, 3, 5, 8, 16),
                         [](const ::testing::TestParamInfo<int>& info) {
                           // Append form: GCC PR 105329 (-Wrestrict).
                           std::string name = "k";
                           name += std::to_string(info.param);
                           return name;
                         });

// ------------------------------------------------ I/O backend properties --

std::vector<io::Backend> available_backends() {
  std::vector<io::Backend> backends{io::Backend::kPoll};
  if (io::uring_supported()) backends.push_back(io::Backend::kUring);
  return backends;
}

// Random record lengths chosen to straddle the interesting boundaries:
// well under the block size, exactly at it, just over it, and past the
// max_record_size cap when `allow_oversized`.
std::string random_records(std::mt19937_64& rng, std::size_t block_size,
                           std::size_t record_cap, bool allow_oversized,
                           int count) {
  std::uniform_int_distribution<int> shape(0, allow_oversized ? 5 : 4);
  std::string out;
  for (int i = 0; i < count; ++i) {
    std::size_t len = 0;
    switch (shape(rng)) {
      case 0: len = 1 + rng() % 8; break;               // tiny
      case 1: len = block_size / 2 + rng() % 8; break;  // mid-block
      case 2: len = block_size - 1; break;              // exactly one block
      case 3: len = block_size + rng() % 16; break;     // just over a block
      case 4: len = record_cap - 1 - rng() % 4; break;  // grazing the cap
      case 5: len = record_cap + 1 + rng() % 32; break; // past the cap
    }
    out.append(len, static_cast<char>('a' + (rng() % 26)));
    out += '\n';
  }
  return out;
}

// Spill round-trip: appends of random sizes, positioned reads of random
// extents — the reassembled bytes are identical on every backend, so the
// uring engine's chunking/queuing and the poll engine's synchronous loop
// are observationally the same function.
TEST(IoSpillProperty, RandomRecordLengthsRoundTripOnBothBackends) {
  for (io::Backend backend : available_backends()) {
    std::mt19937_64 rng(0x5eed ^ static_cast<std::uint64_t>(backend));
    for (int trial = 0; trial < 12; ++trial) {
      const std::size_t block = 64 + rng() % 192;
      std::string payload =
          random_records(rng, block, /*record_cap=*/4 * block,
                         /*allow_oversized=*/false, 40);
      io::IoOptions opts;
      opts.backend = backend;
      stream::SpillFile file(opts);
      ASSERT_TRUE(file.valid());
      // Appends sliced at random offsets, including mid-record cuts.
      for (std::size_t at = 0; at < payload.size();) {
        std::size_t n =
            std::min<std::size_t>(1 + rng() % (2 * block),
                                  payload.size() - at);
        ASSERT_TRUE(file.append(payload.substr(at, n))) << file.error();
        at += n;
      }
      ASSERT_EQ(file.size(), payload.size());
      // Positioned reads of random extents, in random order.
      std::string back(payload.size(), '\0');
      for (std::size_t at = 0; at < payload.size();) {
        std::size_t n =
            std::min<std::size_t>(1 + rng() % (3 * block),
                                  payload.size() - at);
        ASSERT_TRUE(file.read_exact(at, back.data() + at, n))
            << file.error();
        at += n;
      }
      EXPECT_EQ(back, payload)
          << "backend=" << io::backend_name(backend) << " trial=" << trial;
    }
  }
}

// BlockReader record-cap contract: a stream whose records all fit under
// max_record_size is delivered byte-identically; one oversized record
// ends the stream with EMSGSIZE — on both backends, at the same record.
TEST(IoSpillProperty, RecordCapContractIsBackendIndependent) {
  for (io::Backend backend : available_backends()) {
    std::mt19937_64 rng(0xca9 ^ static_cast<std::uint64_t>(backend));
    for (int trial = 0; trial < 8; ++trial) {
      const std::size_t block = 64;
      const std::size_t cap = 256;
      const bool oversized = (trial % 2) == 1;
      std::string payload =
          random_records(rng, block, cap, oversized, 24);
      if (oversized)  // guarantee at least one cap-busting record
        payload += std::string(cap + 40, 'Z') + "\n";

      char path[] = "/tmp/kq-prop-io-XXXXXX";
      int fd = ::mkstemp(path);
      ASSERT_GE(fd, 0);
      ::unlink(path);
      ASSERT_EQ(::write(fd, payload.data(), payload.size()),
                static_cast<ssize_t>(payload.size()));
      ASSERT_EQ(::lseek(fd, 0, SEEK_SET), 0);

      io::IoOptions opts;
      opts.backend = backend;
      auto engine = io::make_engine(opts);
      stream::BlockReader reader(fd, engine.get(), {block, '\n', cap});
      std::string got;
      while (auto b = reader.next()) got += *b;
      if (oversized) {
        EXPECT_EQ(reader.error(), EMSGSIZE)
            << "backend=" << io::backend_name(backend);
      } else {
        EXPECT_EQ(reader.error(), 0)
            << "backend=" << io::backend_name(backend);
        EXPECT_EQ(got, payload)
            << "backend=" << io::backend_name(backend) << " trial=" << trial;
      }
      ::close(fd);
    }
  }
}

}  // namespace
}  // namespace kq
